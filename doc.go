// Package smtflex reproduces "The Benefit of SMT in the Multi-Core Era:
// Flexibility towards Degrees of Thread-Level Parallelism" (Eyerman &
// Eeckhout, ASPLOS 2014): a multi-core design-space study comparing
// homogeneous, heterogeneous and dynamic multi-cores — with and without
// SMT — under workloads whose active thread count varies over time.
//
// The library lives under internal/: package core is the facade, the
// simulation substrates (cycle-level cores, caches, DRAM, interval engine,
// contention solver, power model, workload models) are one package each,
// and package study regenerates every table and figure of the paper. See
// README.md for the layout and DESIGN.md for the substitution decisions.
//
// The root package intentionally exports nothing; it anchors the module and
// hosts the repository-level benchmark harness (bench_test.go), which has
// one benchmark per table and figure of the paper.
package smtflex

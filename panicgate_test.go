package smtflex

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoPanicsInEngineCode is the panic gate: the engine's failure model is
// typed errors contained at the worker-pool and HTTP boundaries, so no
// non-test file under internal/ may call panic(). The single deliberate
// exception — the fault registry's injected panic, which exists to exercise
// those containment boundaries — is marked with a "panicgate:allow" comment
// on its line.
func TestNoPanicsInEngineCode(t *testing.T) {
	var violations []string
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for n := 1; sc.Scan(); n++ {
			line := sc.Text()
			trimmed := strings.TrimSpace(line)
			if strings.HasPrefix(trimmed, "//") {
				continue
			}
			if !strings.Contains(line, "panic(") {
				continue
			}
			if strings.Contains(line, "panicgate:allow") {
				continue
			}
			violations = append(violations, fmt.Sprintf("%s:%d: %s", path, n, trimmed))
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) > 0 {
		t.Errorf("panic() in engine code — return a typed error instead, or mark a deliberate site with // panicgate:allow:\n  %s",
			strings.Join(violations, "\n  "))
	}
}

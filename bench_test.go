// Repository-level benchmark harness: one benchmark per table and figure of
// the paper. Each benchmark regenerates its figure through the library
// facade; the first iteration pays the full simulation campaign, later
// iterations hit the study caches (reported time therefore approaches the
// pure table-assembly cost — run with -benchtime=1x to time cold
// regeneration).
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFigure8 -benchtime=1x
//
// Additional engine microbenchmarks (trace generation, cycle engine,
// contention solver, stack profiler) quantify the simulator itself.
package smtflex

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/core"
	"smtflex/internal/cpu"
	"smtflex/internal/interval"
	"smtflex/internal/multicore"
	"smtflex/internal/obs"
	"smtflex/internal/profiler"
	"smtflex/internal/sched"
	"smtflex/internal/server"
	"smtflex/internal/study"
	"smtflex/internal/trace"
	"smtflex/internal/workload"
)

var (
	benchOnce sync.Once
	benchSim  *core.Simulator
)

// simulator returns the shared Simulator: profiles and design sweeps are
// cached across all figure benchmarks, matching how the paper derives every
// figure from one simulation campaign.
func simulator() *core.Simulator {
	benchOnce.Do(func() { benchSim = core.NewSimulator(core.WithUopCount(100_000)) })
	return benchSim
}

// benchFigure regenerates one figure per iteration.
func benchFigure(b *testing.B, id string) {
	sim := simulator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := sim.Figure(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- One benchmark per table/figure of the paper ---

func BenchmarkTable1(b *testing.B)    { benchFigure(b, "table1") }
func BenchmarkFigure1(b *testing.B)   { benchFigure(b, "fig1") }
func BenchmarkFigure2(b *testing.B)   { benchFigure(b, "fig2") }
func BenchmarkFigure3a(b *testing.B)  { benchFigure(b, "fig3a") }
func BenchmarkFigure3b(b *testing.B)  { benchFigure(b, "fig3b") }
func BenchmarkFigure4a(b *testing.B)  { benchFigure(b, "fig4a") }
func BenchmarkFigure4b(b *testing.B)  { benchFigure(b, "fig4b") }
func BenchmarkFigure5(b *testing.B)   { benchFigure(b, "fig5") }
func BenchmarkFigure6(b *testing.B)   { benchFigure(b, "fig6") }
func BenchmarkFigure7(b *testing.B)   { benchFigure(b, "fig7") }
func BenchmarkFigure8(b *testing.B)   { benchFigure(b, "fig8") }
func BenchmarkFigure9(b *testing.B)   { benchFigure(b, "fig9") }
func BenchmarkFigure10a(b *testing.B) { benchFigure(b, "fig10a") }
func BenchmarkFigure10b(b *testing.B) { benchFigure(b, "fig10b") }
func BenchmarkFigure11(b *testing.B)  { benchFigure(b, "fig11") }
func BenchmarkFigure12a(b *testing.B) { benchFigure(b, "fig12a") }
func BenchmarkFigure12b(b *testing.B) { benchFigure(b, "fig12b") }
func BenchmarkFigure13a(b *testing.B) { benchFigure(b, "fig13a") }
func BenchmarkFigure13b(b *testing.B) { benchFigure(b, "fig13b") }
func BenchmarkFigure14(b *testing.B)  { benchFigure(b, "fig14") }
func BenchmarkFigure15(b *testing.B)  { benchFigure(b, "fig15") }
func BenchmarkFigure16(b *testing.B)  { benchFigure(b, "fig16") }
func BenchmarkFigure17a(b *testing.B) { benchFigure(b, "fig17a") }
func BenchmarkFigure17b(b *testing.B) { benchFigure(b, "fig17b") }

// --- Parallel engine benchmarks ---

var (
	sweepSrcOnce sync.Once
	sweepSrc     *profiler.Source
)

// sweepSource returns a shared, pre-warmed profile source so the sweep
// benchmarks time the experiment engine itself, not the one-time profiling.
func sweepSource() *profiler.Source {
	sweepSrcOnce.Do(func() {
		sweepSrc = profiler.NewSource(30_000)
		for _, name := range workload.Names() {
			spec, err := workload.ByName(name)
			if err != nil {
				panic(err)
			}
			for _, ct := range []config.CoreType{config.Big, config.Medium, config.Small} {
				if _, err := sweepSrc.Profile(spec, ct); err != nil {
					panic(err)
				}
			}
		}
	})
	return sweepSrc
}

// benchMultiDesignSweep sweeps four designs over both workload kinds from
// cold sweep caches, the hot path of every figure. Comparing the Serial and
// Parallel variants quantifies the worker-pool speedup; the tables produced
// are bit-for-bit identical (see TestParallelMatchesSerial).
func benchMultiDesignSweep(b *testing.B, parallelism int) {
	src := sweepSource()
	designs := config.NineDesigns(true)[:4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := study.New(src)
		st.MixesPerCount = 4
		st.Parallelism = parallelism
		for _, d := range designs {
			for _, k := range []study.Kind{study.Homogeneous, study.Heterogeneous} {
				if _, err := st.SweepDesign(context.Background(), d, k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkMultiDesignSweepSerial(b *testing.B)   { benchMultiDesignSweep(b, 1) }
func BenchmarkMultiDesignSweepParallel(b *testing.B) { benchMultiDesignSweep(b, 0) }

// --- Server benchmarks ---

// benchServerSweep measures one /v1/sweep round-trip over HTTP against a
// warm engine — the steady-state cost of serving a cached sweep: routing,
// admission, cache lookup and JSON encoding. traceBuffer selects the
// server's tracing mode (0 = default-on, negative = disabled); the tracing
// gate is process-global, so the disabled variant forces it off in case an
// earlier benchmark's server enabled it.
func benchServerSweep(b *testing.B, traceBuffer int) {
	if traceBuffer < 0 {
		obs.Disable()
	}
	srv, err := server.New(server.Config{
		Sim:         simulator(),
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
		TraceBuffer: traceBuffer,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := []byte(`{"design":"4B","kind":"homogeneous"}`)
	post := func() error {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}
	// Warm the sweep cache outside the timed region.
	if err := post(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := post(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerSweep(b *testing.B)        { benchServerSweep(b, 0) }
func BenchmarkServerSweepNoTrace(b *testing.B) { benchServerSweep(b, -1) }

// --- Engine microbenchmarks ---

// BenchmarkTraceGeneration measures synthetic µop stream throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	spec, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkCycleEngine measures detailed-simulation throughput: µops per
// second of a 4-thread workload on the 4B chip.
func BenchmarkCycleEngine(b *testing.B) {
	d, err := config.DesignByName("4B", true)
	if err != nil {
		b.Fatal(err)
	}
	chip, err := multicore.New(d, cpu.Ideal{})
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.Mix{ID: "bench", Programs: []string{"tonto", "mcf", "gcc", "hmmer"}}
	readers, err := mix.Readers(1)
	if err != nil {
		b.Fatal(err)
	}
	for i, r := range readers {
		if _, err := chip.AttachThread(i, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	chip.Run(uint64(b.N))
}

// BenchmarkContentionSolve measures the interval engine's fixed-point solve
// for a fully loaded 24-thread 4B chip.
func BenchmarkContentionSolve(b *testing.B) {
	src := profiler.NewSource(60_000)
	d, err := config.DesignByName("4B", true)
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]string, 24)
	names := workload.Names()
	for i := range progs {
		progs[i] = names[i%len(names)]
	}
	placement, err := sched.Place(d, workload.Mix{ID: "bench", Programs: progs}, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := contention.Solve(placement); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionSolveReused measures the same 24-thread solve through a
// reused Solver — the hot path of studies and refinement. The allocs/op here
// is the headline of the regression gate: steady-state solves must report 0.
func BenchmarkContentionSolveReused(b *testing.B) {
	src := profiler.NewSource(60_000)
	d, err := config.DesignByName("4B", true)
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]string, 24)
	names := workload.Names()
	for i := range progs {
		progs[i] = names[i%len(names)]
	}
	placement, err := sched.Place(d, workload.Mix{ID: "bench", Programs: progs}, src)
	if err != nil {
		b.Fatal(err)
	}
	s := contention.NewSolver()
	if _, err := s.Solve(placement); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(placement); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentionSolveQuantized is the reused solve with miss curves
// quantized onto the profiler's own 16-point grid — same numbers (see
// TestSolveQuantizedBitIdenticalOnProfilerGrid), O(1) curve lookups.
func BenchmarkContentionSolveQuantized(b *testing.B) {
	src := profiler.NewSource(60_000)
	d, err := config.DesignByName("4B", true)
	if err != nil {
		b.Fatal(err)
	}
	progs := make([]string, 24)
	names := workload.Names()
	for i := range progs {
		progs[i] = names[i%len(names)]
	}
	placement, err := sched.Place(d, workload.Mix{ID: "bench", Programs: progs}, src)
	if err != nil {
		b.Fatal(err)
	}
	m := contention.DefaultModel()
	m.QuantizeCurves = 16
	s := contention.NewSolver()
	if _, err := s.SolveModel(placement, m); err != nil { // build tables + warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveModel(placement, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPlace measures offline schedule construction.
func BenchmarkSchedulerPlace(b *testing.B) {
	src := profiler.NewSource(60_000)
	d, err := config.DesignByName("3B5s", true)
	if err != nil {
		b.Fatal(err)
	}
	mix := workload.HeterogeneousMixes(16, 1, 42)[0]
	// Warm the profile cache outside the timed region.
	if _, err := sched.Place(d, mix, src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Place(d, mix, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStackProfiler measures reuse-distance profiling throughput.
func BenchmarkStackProfiler(b *testing.B) {
	p := cache.NewStackProfiler(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(uint64(i % 100000))
	}
}

// BenchmarkIntervalEvaluate measures one CPI-stack evaluation.
func BenchmarkIntervalEvaluate(b *testing.B) {
	src := profiler.NewSource(60_000)
	spec, err := workload.ByName("soplex")
	if err != nil {
		b.Fatal(err)
	}
	p, err := src.Profile(spec, config.Big)
	if err != nil {
		b.Fatal(err)
	}
	cc := config.BigCore()
	sh := interval.Shares{L1I: 32 << 10, L1D: 16 << 10, L2: 128 << 10, LLC: 2 << 20, MemLatencyCycles: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := p.Evaluate(cc, 64, sh)
		if st.Total() <= 0 {
			b.Fatal("bad stack")
		}
	}
}

// BenchmarkProfileMeasurement measures the one-time cost of characterizing
// one benchmark on one core type (cycle-engine idealization runs + curves).
func BenchmarkProfileMeasurement(b *testing.B) {
	spec, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		src := profiler.NewSource(60_000) // fresh cache every iteration
		p, err := src.Profile(spec, config.Medium)
		if err != nil {
			b.Fatal(err)
		}
		if p.DataAPKU <= 0 {
			b.Fatal("bad profile")
		}
	}
}

module smtflex

go 1.22

// Quickstart: compare a four-program workload on the two extreme design
// points — four big SMT cores (4B) versus twenty small cores (20s) — and
// print system throughput, turnaround time and power for each.
package main

import (
	"fmt"
	"log"

	"smtflex/internal/core"
)

func main() {
	// A small profiling source keeps the first run fast; raise the µop count
	// for better-calibrated profiles.
	sim := core.NewSimulator(core.WithUopCount(100_000))

	// One memory-bound, one compute-bound, one branchy, one cache-sensitive.
	programs := []string{"mcf", "tonto", "gobmk", "soplex"}

	for _, design := range []string{"4B", "20s"} {
		res, err := sim.RunMix(design, true, programs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  STP=%.2f  ANTT=%.2f  power=%.1fW  bus=%.0f%%\n",
			design, res.STP, res.ANTT, res.Watts, 100*res.BusUtilization)
	}

	// The same workload through the detailed cycle engine (slower), for
	// per-thread inspection.
	stats, err := sim.RunCycleAccurate("4B", true, programs, 50_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncycle engine, 4B, one thread per core:")
	for i, st := range stats {
		fmt.Printf("  %-7s ipc=%.2f branches=%d mispredicted=%d\n",
			programs[i], st.IPC(), st.Branches, st.Mispredicts)
	}
}

// PARSEC-like study: run a multi-threaded application across designs and
// thread counts, reporting ROI and whole-program times and the distribution
// of active thread counts — the behaviour behind Figures 1, 11 and 12.
package main

import (
	"fmt"
	"log"

	"smtflex/internal/core"
)

func main() {
	sim := core.NewSimulator(core.WithUopCount(100_000))

	app := "ferret" // pipeline-parallel, limited scaling, varying thread count
	fmt.Printf("application: %s\n\n", app)

	// Sweep thread counts on the 4B SMT design.
	fmt.Println("threads on 4B (SMT): ROI and whole-program time (ms)")
	base := 0.0
	for _, n := range []int{4, 8, 12, 16, 20, 24} {
		res, err := sim.RunParallel("4B", true, app, n)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.ROINs
		}
		fmt.Printf("  %2d threads  roi=%7.1f  whole=%7.1f  speedup=%.2f\n",
			n, res.ROINs/1e6, res.TotalNs/1e6, base/res.ROINs)
	}

	// Active-thread-count distribution with 20 threads on twenty cores.
	res, err := sim.RunParallel("20s", false, app, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nactive-thread distribution, 20 threads on 20s (fraction of ROI time):")
	for k := 1; k <= 20; k++ {
		frac := res.Active[k-1]
		if frac < 0.005 {
			continue
		}
		fmt.Printf("  %2d active: %5.1f%%  %s\n", k, 100*frac, bar(frac))
	}
}

func bar(f float64) string {
	n := int(f * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

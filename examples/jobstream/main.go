// Job-stream study: simulate jobs arriving and departing over time — the
// paper's motivating "multi-programmed workloads" scenario — and compare
// how the design points handle the resulting time-varying thread count.
package main

import (
	"fmt"
	"log"

	"smtflex/internal/config"
	"smtflex/internal/core"
	"smtflex/internal/timeline"
)

func main() {
	sim := core.NewSimulator(core.WithUopCount(100_000))

	// Forty jobs, ~1.5 ms mean inter-arrival, ~20M µops each: load hovers
	// around a handful of active jobs with idle valleys and bursts.
	jobs := timeline.PoissonWorkload(40, 1.5e6, 20e6, 2014)

	fmt.Println("design   makespan(ms)  mean-turnaround(ms)  mean-active  energy(J)")
	for _, name := range []string{"4B", "8m", "20s", "3B5s", "1B6m"} {
		d, err := config.DesignByName(name, true)
		if err != nil {
			log.Fatal(err)
		}
		res, err := timeline.Simulate(d, jobs, sim.Source())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %12.2f %20.2f %12.2f %10.3f\n",
			name, res.MakespanNs/1e6, res.MeanTurnaroundNs/1e6, res.MeanActive, res.EnergyJoules)
	}
}

// Datacenter study: evaluate all nine power-equivalent designs under the
// datacenter active-thread-count distribution (peaks near idle and at
// 30-40% utilization) and its mirror, with and without SMT — the Figure 10
// experiment, exposed as a library workflow.
package main

import (
	"context"

	"fmt"
	"log"

	"smtflex/internal/config"
	"smtflex/internal/core"
	"smtflex/internal/dist"
	"smtflex/internal/study"
)

func main() {
	sim := core.NewSimulator(core.WithUopCount(100_000))
	st := sim.Study()

	for _, d := range []dist.Distribution{dist.Datacenter(), dist.MirroredDatacenter()} {
		fmt.Printf("distribution %-20s (mean %.1f threads)\n", d.Name, d.Mean())
		for _, smt := range []bool{false, true} {
			fmt.Printf("  SMT=%-5t ", smt)
			bestName, bestSTP := "", 0.0
			var fourB float64
			for _, design := range config.NineDesigns(smt) {
				sw, err := st.SweepDesign(context.Background(), design, study.Heterogeneous)
				if err != nil {
					log.Fatal(err)
				}
				stp, err := study.DistributionSTP(sw, d)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%s=%.2f ", design.Name, stp)
				if stp > bestSTP {
					bestName, bestSTP = design.Name, stp
				}
				if design.Name == "4B" {
					fourB = stp
				}
			}
			fmt.Printf("\n    best=%s; 4B within %.1f%% of best\n", bestName, 100*(bestSTP-fourB)/bestSTP)
		}
	}
}

// Dynamic multi-core comparison: pit the homogeneous 4B design with SMT
// against an ideal dynamic multi-core that morphs, free of overhead, into
// the best of the nine designs at every thread count — the Figure 13
// experiment, with a per-thread-count winner report.
package main

import (
	"context"

	"fmt"
	"log"

	"smtflex/internal/config"
	"smtflex/internal/core"
	"smtflex/internal/study"
)

func main() {
	sim := core.NewSimulator(core.WithUopCount(100_000))
	st := sim.Study()

	tab, err := st.Figure13(context.Background(), study.Heterogeneous)
	if err != nil {
		log.Fatal(err)
	}

	// Which static design would the ideal dynamic core pick at each count?
	sweeps := map[string]*study.Sweep{}
	for _, d := range config.NineDesigns(false) {
		sw, err := st.SweepDesign(context.Background(), d, study.Heterogeneous)
		if err != nil {
			log.Fatal(err)
		}
		sweeps[d.Name] = sw
	}

	fmt.Println("threads  4B+SMT  dyn(noSMT)  dyn(SMT)  dyn picks")
	r4 := tab.Row("4B_SMT")
	rd := tab.Row("dynamic_noSMT")
	rs := tab.Row("dynamic_SMT")
	for n := 1; n <= study.MaxThreads; n++ {
		best, bestV := "", 0.0
		for name, sw := range sweeps {
			if v := sw.STP[n-1]; v > bestV {
				best, bestV = name, v
			}
		}
		fmt.Printf("%7d  %6.2f  %10.2f  %8.2f  %s\n",
			n, tab.Get(r4, n-1), tab.Get(rd, n-1), tab.Get(rs, n-1), best)
	}
}

// Command jobsim simulates a stream of arriving and departing jobs — the
// paper's motivating dynamic multiprogramming scenario — on one or more
// design points and reports makespan, turnaround, mean active thread count
// and energy.
//
// Usage:
//
//	jobsim -designs 4B,20s -jobs 40 -interarrival 1.5e6 -work 2e7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"smtflex/internal/config"
	"smtflex/internal/profiler"
	"smtflex/internal/timeline"
)

func main() {
	designs := flag.String("designs", "4B,8m,20s,3B5s,1B6m", "comma-separated design names")
	smt := flag.Bool("smt", true, "enable SMT")
	nJobs := flag.Int("jobs", 40, "number of jobs")
	inter := flag.Float64("interarrival", 1.5e6, "mean inter-arrival time in ns")
	work := flag.Float64("work", 2e7, "mean job work in µops")
	seed := flag.Uint64("seed", 2014, "workload seed")
	uops := flag.Uint64("profile-uops", 200_000, "µops per profiling run")
	flag.Parse()

	src := profiler.NewSource(*uops)
	jobs := timeline.PoissonWorkload(*nJobs, *inter, *work, *seed)

	fmt.Println("design   makespan(ms)  mean-turnaround(ms)  mean-active  energy(J)")
	for _, name := range strings.Split(*designs, ",") {
		name = strings.TrimSpace(name)
		d, err := config.DesignByName(name, *smt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jobsim: %v\n", err)
			os.Exit(1)
		}
		res, err := timeline.Simulate(d, jobs, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jobsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-6s %12.2f %20.2f %12.2f %10.3f\n",
			name, res.MakespanNs/1e6, res.MeanTurnaroundNs/1e6, res.MeanActive, res.EnergyJoules)
	}
}

// Command jobsim simulates a stream of arriving and departing jobs — the
// paper's motivating dynamic multiprogramming scenario — on one or more
// design points and reports makespan, turnaround, mean active thread count
// and energy. Designs are simulated in parallel (-j), sharing one profiled
// engine with the other tools.
//
// Usage:
//
//	jobsim -designs 4B,20s -jobs 40 -interarrival 1.5e6 -work 2e7 -j 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"smtflex/internal/buildinfo"
	"smtflex/internal/core"
	"smtflex/internal/timeline"
)

func main() {
	designs := flag.String("designs", "4B,8m,20s,3B5s,1B6m", "comma-separated design names")
	smt := flag.Bool("smt", true, "enable SMT")
	nJobs := flag.Int("jobs", 40, "number of jobs")
	inter := flag.Float64("interarrival", 1.5e6, "mean inter-arrival time in ns")
	work := flag.Float64("work", 2e7, "mean job work in µops")
	seed := flag.Uint64("seed", 2014, "workload seed")
	uops := flag.Uint64("profile-uops", 200_000, "µops per profiling run")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "designs simulated in parallel (1 = serial)")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("jobsim", buildinfo.Get())
		return
	}

	sim := core.NewSimulator(core.WithUopCount(*uops), core.WithParallelism(*workers))
	jobs := timeline.PoissonWorkload(*nJobs, *inter, *work, *seed)

	var names []string
	for _, name := range strings.Split(*designs, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	runs, err := sim.JobStream(context.Background(), names, *smt, jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jobsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("design   makespan(ms)  mean-turnaround(ms)  mean-active  energy(J)")
	for _, run := range runs {
		res := run.Result
		fmt.Printf("%-6s %12.2f %20.2f %12.2f %10.3f\n",
			run.Design, res.MakespanNs/1e6, res.MeanTurnaroundNs/1e6, res.MeanActive, res.EnergyJoules)
	}
}

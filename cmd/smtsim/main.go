// Command smtsim simulates one multi-program workload on one multi-core
// design point and prints per-thread and system-level results.
//
// Usage:
//
//	smtsim -design 4B -programs mcf,tonto,hmmer,libquantum
//	smtsim -design 2B10s -smt=false -programs mcf,mcf,mcf
//	smtsim -design 4B -engine cycle -uops 100000 -programs tonto,mcf
//	smtsim -design 4B -xcheck -programs tonto,hmmer
//	smtsim -design 4B -machstats /tmp/ms -programs tonto,mcf
//
// Exit codes: 0 success; 1 an engine error (bad design point, profiling or
// solver failure) or a cross-check tolerance violation; 2 a usage error
// (unknown flag or engine).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"smtflex/internal/buildinfo"
	"smtflex/internal/core"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
	"smtflex/internal/validate"
)

// fail prints a one-line diagnostic and exits: code 1 for engine errors,
// code 2 for usage errors (matching the flag package's own convention).
func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smtsim: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	design := flag.String("design", "4B", "design point (4B, 8m, 20s, 3B2m, 3B5s, 2B4m, 2B10s, 1B6m, 1B15s)")
	smt := flag.Bool("smt", true, "enable SMT")
	programs := flag.String("programs", "tonto,mcf", "comma-separated benchmark names, one per thread")
	engine := flag.String("engine", "interval", "engine: interval or cycle")
	uops := flag.Uint64("uops", 100_000, "µops per thread for the cycle engine")
	profUops := flag.Uint64("profile-uops", 200_000, "µops per profiling run for the interval engine")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) of the run here and print a time-stack report to stderr")
	machPath := flag.String("machstats", "", "arm the machine-counter registry and write its snapshot to <path>.json, <path>.stacks.csv and <path>.counters.csv")
	perfsnapDir := flag.String("perfsnap", "", "arm tracing, machine counters and engine histograms, and write a perf snapshot (for perfdiff) into this directory after the run")
	xcheck := flag.Bool("xcheck", false, "cross-validate the interval engine against the cycle engine on this workload, print the component-by-component CPI-stack delta table, and exit 1 if any delta exceeds -xcheck-tol")
	xcheckTol := flag.Float64("xcheck-tol", validate.DefaultTolerance, "cross-check tolerance: max |cycle-interval| per CPI-stack component, as a fraction of total CPI")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: smtsim [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nExit codes:\n  0  success\n  1  engine error (bad design, profiling or solver failure) or cross-check violation\n  2  usage error (bad flag or engine)\n")
	}
	flag.Parse()

	if *showVersion {
		fmt.Println("smtsim", buildinfo.Get())
		return
	}

	sim := core.NewSimulator(core.WithUopCount(*profUops))
	progs := strings.Split(*programs, ",")
	for i := range progs {
		progs[i] = strings.TrimSpace(progs[i])
	}

	if *machPath != "" {
		machstats.Enable()
	}

	var col *obs.Collector
	if *tracePath != "" || *perfsnapDir != "" {
		obs.Enable()
		col = obs.NewCollector(1)
	}
	// With -perfsnap, every snapshot source is armed and a perf snapshot
	// (the `perfdiff` input) lands in the directory after the run. Arming
	// never changes the results.
	var perfArm *perfdiff.CLIArm
	if *perfsnapDir != "" {
		perfArm = perfdiff.ArmCLI("smtsim", sim.Study(), col)
	}
	tctx, root := obs.StartTrace(context.Background(), col, "smtsim")

	switch {
	case *xcheck:
		src := sim.Source()
		ck, err := validate.RunCrossCheck(src, *design, *smt, progs, src.Warmup, src.UopCount, *xcheckTol)
		if err != nil {
			fail(1, "%v", err)
		}
		fmt.Print(ck.Render())
		if !ck.OK() {
			root.End()
			dumpMachStats(*machPath)
			fail(1, "cross-check failed: %d component delta(s) exceed %.1f%% of total CPI",
				len(ck.Failures()), 100*ck.Tolerance)
		}
	case *engine == "interval":
		res, err := sim.RunMixCtx(tctx, *design, *smt, progs)
		if err != nil {
			fail(1, "%v", err)
		}
		fmt.Printf("design=%s smt=%t threads=%d\n", *design, *smt, len(progs))
		fmt.Printf("STP              %.3f\n", res.STP)
		fmt.Printf("ANTT             %.3f\n", res.ANTT)
		fmt.Printf("power (gated)    %.1f W\n", res.Watts)
		fmt.Printf("power (ungated)  %.1f W\n", res.WattsUngated)
		fmt.Printf("bus utilization  %.1f %%\n", 100*res.BusUtilization)
		fmt.Printf("solver           %d iterations, residual %.2e, converged=%t\n",
			res.Diag.Iterations, res.Diag.Residual, res.Diag.Converged)
		for i, th := range res.Threads {
			st := th.Stack
			fmt.Printf("thread %2d %-12s core=%d ipc=%.3f uops/ns=%.3f cpi=%.3f base=%.3f branch=%.3f icache=%.3f l2=%.3f llc=%.3f mem=%.3f\n",
				i, th.Program, th.Core, th.IPC, th.UopsPerNs,
				st.Total(), st.Base, st.Branch, st.ICache, st.L2, st.LLC, st.Mem)
		}
	case *engine == "cycle":
		stats, err := sim.RunCycleAccurate(*design, *smt, progs, *uops)
		if err != nil {
			fail(1, "%v", err)
		}
		fmt.Printf("design=%s smt=%t threads=%d engine=cycle uops/thread=%d\n", *design, *smt, len(progs), *uops)
		for i, st := range stats {
			fmt.Printf("thread %2d %-12s ipc=%.3f cpi=%.3f mem-stall=%.2f br-stall=%.3f fetch-stall=%.3f mispredicts=%d\n",
				i, progs[i], st.IPC(), st.CPI(), st.MemStallCPI(), st.BranchStallCPI(), st.FetchStallCPI(), st.Mispredicts)
		}
	default:
		fail(2, "unknown engine %q", *engine)
	}

	root.End()
	if col != nil && *tracePath != "" {
		report, err := col.DumpFile(*tracePath)
		if err != nil {
			fail(1, "%v", err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: wrote trace to %s\n\n%s", *tracePath, report)
	}
	dumpMachStats(*machPath)
	if perfArm != nil {
		path, err := perfArm.WriteDir(*perfsnapDir)
		if err != nil {
			fail(1, "perfsnap: %v", err)
		}
		fmt.Fprintf(os.Stderr, "smtsim: wrote perf snapshot %s\n", path)
	}
}

// dumpMachStats writes the armed registry's snapshot next to prefix and
// prints a one-line summary; a no-op with an empty prefix.
func dumpMachStats(prefix string) {
	if prefix == "" {
		return
	}
	snap := machstats.Default().Snapshot()
	paths, err := snap.WriteFiles(prefix)
	if err != nil {
		fail(1, "machstats export: %v", err)
	}
	fmt.Fprintf(os.Stderr, "smtsim: %s\nsmtsim: wrote %s\n", snap.FormatSummary(), strings.Join(paths, ", "))
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smtflex/internal/benchjson"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
)

// writeSnap writes a snapshot with one time-stack group whose solve phase
// has the given mean self time per trace.
func writeSnap(t *testing.T, dir, name string, solveNs int64) string {
	t.Helper()
	s := perfdiff.Capture(perfdiff.CaptureOpts{Role: "test"})
	s.TimeStacks = []obs.TimeStack{{
		Name: "sweep", Traces: 1, WallNs: solveNs,
		ByNs:    map[string]int64{obs.CatSolve: solveNs},
		Percent: map[string]float64{obs.CatSolve: 100},
	}}
	path := filepath.Join(dir, name)
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSelfCleanExitZero(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 10_000_000)
	cur := writeSnap(t, dir, "cur.json", 10_500_000) // +5%: under floor
	var out, errb bytes.Buffer
	if code := run([]string{base, cur}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s stdout %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("output missing clean verdict: %s", out.String())
	}
}

func TestRunRegressionExitTwoAndReport(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 10_000_000)
	cur := writeSnap(t, dir, "cur.json", 100_000_000) // 10x
	report := filepath.Join(dir, "report.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"-report", report, base, cur}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, errb.String())
	}
	for _, want := range []string{"REGRESSED", obs.CatSolve, "OVER", "+900.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out.String() {
		t.Errorf("-report file differs from stdout")
	}
}

func TestRunJSONFormat(t *testing.T) {
	dir := t.TempDir()
	base := writeSnap(t, dir, "base.json", 10_000_000)
	cur := writeSnap(t, dir, "cur.json", 100_000_000)
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "json", base, cur}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	rep := &perfdiff.Report{}
	if err := json.Unmarshal(out.Bytes(), rep); err != nil {
		t.Fatalf("json output: %v\n%s", err, out.String())
	}
	if rep.Exceeded == 0 || len(rep.Deltas) == 0 {
		t.Errorf("report %+v", rep)
	}
	if rep.Deltas[0].Metric != obs.CatSolve {
		t.Errorf("top delta %+v, want solve", rep.Deltas[0])
	}
}

func TestRunRawBenchReports(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, ns float64) string {
		rep := benchjson.Report{Results: []benchjson.Result{{
			Name: "BenchmarkSolve", Procs: 1, Iterations: 10, NsPerOp: ns,
			Metrics: map[string]float64{"allocs/op": 0},
		}}}
		data, _ := json.Marshal(rep)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base, cur := mk("base.json", 10_000), mk("cur.json", 100_000)
	var out, errb bytes.Buffer
	if code := run([]string{base, cur}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2; stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "bench") || !strings.Contains(out.String(), "ns/op") {
		t.Errorf("bench attribution missing:\n%s", out.String())
	}
	// Identical reports are clean.
	if code := run([]string{base, base}, &out, &errb); code != 0 {
		t.Fatalf("identical bench reports exit %d, want 0", code)
	}
}

func TestRunBadInputsExitOne(t *testing.T) {
	dir := t.TempDir()
	good := writeSnap(t, dir, "good.json", 1000)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	var out, errb bytes.Buffer
	if code := run([]string{bad, good}, &out, &errb); code != 1 {
		t.Errorf("bad baseline exit %d, want 1", code)
	}
	if code := run([]string{good}, &out, &errb); code != 1 {
		t.Errorf("one arg exit %d, want 1", code)
	}
	if code := run([]string{"-format", "yaml", good, good}, &out, &errb); code != 1 {
		t.Errorf("bad format exit %d, want 1", code)
	}
	// Schema-mismatched snapshot.
	old := filepath.Join(dir, "old.json")
	os.WriteFile(old, []byte(`{"schema_version": 99}`), 0o644)
	if code := run([]string{old, good}, &out, &errb); code != 1 {
		t.Errorf("schema mismatch exit %d, want 1", code)
	}
}

// Command perfdiff attributes the performance difference between two perf
// snapshots — the differential half of the performance-observability layer.
//
//	perfdiff baseline.json current.json
//
// Each input is a perf snapshot (captured via /debug/perfsnap or a CLI's
// -perfsnap flag) or a raw benchjson report (the bench job's trajectory
// documents work unmodified, so a bench-gate failure can be attributed
// without a conversion step). The output is a ranked report: per-phase
// self-time deltas, per-component CPI deltas per engine, histogram quantile
// shifts (p50/p95/p99), and bench ns/allocs deltas when both snapshots embed
// results — worst first, regressions over threshold flagged OVER.
//
// Flags tune the noise floors: -phase-pct/-phase-min-ns (engine-phase mean
// self time per trace), -cpi-pct/-cpi-min (CPI-stack components),
// -quantile-pct/-quantile-min (histogram quantiles), and the bench gate's
// -ns-pct/-allocs-pct/-allocs-slack/-min-ns with the same meanings as
// `benchjson -compare`. -format json emits the report document instead of
// text; -report FILE also writes the text report for CI artifacts.
//
// Exit codes mirror benchjson: 0 no deltas over threshold; 1 unreadable or
// schema-mismatched input; 2 at least one delta over threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smtflex/internal/benchjson"
	"smtflex/internal/perfdiff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: perfdiff [flags] baseline.json current.json\n")
		fs.PrintDefaults()
	}
	def := perfdiff.DefaultThresholds()
	var (
		format      = fs.String("format", "text", "output format: text or json")
		reportPath  = fs.String("report", "", "also write the text report to this file")
		phasePct    = fs.Float64("phase-pct", def.PhasePct, "allowed %% increase in a phase's mean self time per trace")
		phaseMinNs  = fs.Float64("phase-min-ns", def.PhaseMinNs, "phase mean self-time floor in ns; quieter phases are not gated")
		cpiPct      = fs.Float64("cpi-pct", def.CPIPct, "allowed %% increase in a CPI-stack component")
		cpiMin      = fs.Float64("cpi-min", def.CPIMin, "absolute CPI-delta floor")
		quantPct    = fs.Float64("quantile-pct", def.QuantilePct, "allowed %% increase in a histogram quantile")
		quantMin    = fs.Float64("quantile-min", def.QuantileMin, "absolute quantile-delta floor")
		nsPct       = fs.Float64("ns-pct", def.Bench.Default.NsPerOpPct, "bench gate: allowed ns/op increase in percent")
		allocsPct   = fs.Float64("allocs-pct", def.Bench.Default.AllocsPerOpPct, "bench gate: allowed allocs/op increase in percent")
		allocsSlack = fs.Float64("allocs-slack", def.Bench.Default.AllocsPerOpSlack, "bench gate: absolute allocs/op allowance")
		minNs       = fs.Float64("min-ns", def.Bench.MinNsPerOp, "bench gate: baseline ns/op noise floor")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 1
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "perfdiff: unknown -format %q (want text or json)\n", *format)
		return 1
	}

	base, err := perfdiff.ReadAuto(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "perfdiff: baseline: %v\n", err)
		return 1
	}
	cur, err := perfdiff.ReadAuto(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "perfdiff: current: %v\n", err)
		return 1
	}

	th := perfdiff.Thresholds{
		PhasePct: *phasePct, PhaseMinNs: *phaseMinNs,
		CPIPct: *cpiPct, CPIMin: *cpiMin,
		QuantilePct: *quantPct, QuantileMin: *quantMin,
		Bench: benchjson.Thresholds{
			Default: benchjson.Limit{
				NsPerOpPct:       *nsPct,
				AllocsPerOpPct:   *allocsPct,
				AllocsPerOpSlack: *allocsSlack,
			},
			MinNsPerOp: *minNs,
		},
	}
	rep, err := perfdiff.Diff(base, cur, th)
	if err != nil {
		fmt.Fprintf(stderr, "perfdiff: %v\n", err)
		return 1
	}

	text := rep.RenderText()
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(text), 0o644); err != nil {
			fmt.Fprintf(stderr, "perfdiff: %v\n", err)
			return 1
		}
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "perfdiff: %v\n", err)
			return 1
		}
	default:
		io.WriteString(stdout, text)
	}
	if rep.Exceeded > 0 {
		return 2
	}
	return 0
}

// Command report runs the full simulation campaign, evaluates every finding
// of the paper against the measured results, and emits a Markdown report —
// the machine-generated core of EXPERIMENTS.md.
//
// Usage:
//
//	report -uops 200000 > EXPERIMENTS-generated.md
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"smtflex/internal/core"
)

func main() {
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	figures := flag.Bool("figures", false, "append every figure table to the report")
	flag.Parse()

	sim := core.NewSimulator(core.WithUopCount(*uops), core.WithParallelism(*workers))
	start := time.Now()

	findings, err := sim.Study().CheckFindings(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("# Findings report")
	fmt.Println()
	fmt.Printf("Profiling fidelity: %d µops per measurement run. Campaign time: %.0f s.\n\n",
		*uops, time.Since(start).Seconds())
	fmt.Println("| # | Claim | Reproduced | Measured |")
	fmt.Println("|---|-------|------------|----------|")
	reproduced := 0
	for _, f := range findings {
		mark := "yes"
		if f.Reproduced {
			reproduced++
		} else {
			mark = "NO"
		}
		fmt.Printf("| %d | %s | %s | %s |\n", f.ID, f.Claim, mark, f.Detail)
	}
	fmt.Printf("\n%d of %d findings reproduced.\n", reproduced, len(findings))

	if *figures {
		fmt.Println()
		for _, id := range core.FigureIDs() {
			tab, err := sim.Figure(context.Background(), id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Printf("## %s\n\n```\n%s```\n\n", id, tab)
		}
	}
}

// Command report runs the full simulation campaign, evaluates every finding
// of the paper against the measured results, and emits a Markdown report —
// the machine-generated core of EXPERIMENTS.md.
//
// Usage:
//
//	report -uops 200000 > EXPERIMENTS-generated.md
//	report -figures -checkpoint run.ckpt > EXPERIMENTS-generated.md
//
// With -checkpoint, the measured profile cache and every completed figure
// table are persisted crash-safely; re-running after a crash resumes the
// campaign, skipping finished work and reproducing byte-identical tables.
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"smtflex/internal/buildinfo"
	"smtflex/internal/checkpoint"
	"smtflex/internal/core"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
)

func main() {
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	figures := flag.Bool("figures", false, "append every figure table to the report")
	ckptPath := flag.String("checkpoint", "", "persist completed figures to this file and resume from it on restart")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) of the campaign here and print a time-stack report to stderr")
	machPath := flag.String("machstats", "", "arm the machine-counter registry and write its snapshot to <path>.json, <path>.stacks.csv and <path>.counters.csv after the campaign")
	perfsnapDir := flag.String("perfsnap", "", "arm tracing, machine counters and engine histograms, and write a perf snapshot (for perfdiff) into this directory after the campaign")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("report", buildinfo.Get())
		return
	}

	sim := core.NewSimulator(core.WithUopCount(*uops), core.WithParallelism(*workers))

	// With -machstats, the machine-counter registry collects CPI stacks and
	// event counters across the whole campaign; arming it never changes the
	// report.
	if *machPath != "" {
		machstats.Enable()
	}

	// With -trace, the findings campaign and every figure run under root
	// spans; the collected traces become one Chrome trace-event file and the
	// aggregated time stack lands on stderr.
	var col *obs.Collector
	if *tracePath != "" || *perfsnapDir != "" {
		obs.Enable()
		col = obs.NewCollector(len(core.FigureIDs()) + 1)
	}

	// With -perfsnap, every snapshot source is armed for the campaign and a
	// perf snapshot (the `perfdiff` input) lands in the directory at exit.
	// Arming never changes the report.
	var perfArm *perfdiff.CLIArm
	if *perfsnapDir != "" {
		perfArm = perfdiff.ArmCLI("report", sim.Study(), col)
	}

	var ckpt *checkpoint.Manager
	if *ckptPath != "" {
		var err error
		ckpt, _, err = checkpoint.Open(*ckptPath, checkpoint.Fingerprint{UopCount: *uops, Mixes: 12})
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		profPath := checkpoint.ProfilesPath(*ckptPath)
		if _, statErr := os.Stat(profPath); statErr == nil {
			if _, err := sim.Source().LoadJSONFile(profPath); err != nil {
				fmt.Fprintf(os.Stderr, "report: %v\n", err)
				os.Exit(1)
			}
		}
	}
	start := time.Now()

	fctx, froot := obs.StartTrace(context.Background(), col, "findings")
	findings, err := sim.Study().CheckFindings(fctx)
	froot.End()
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	if ckpt != nil {
		// The findings campaign has measured every profile it needs; persist
		// them so a later crash in the figures loop resumes cheaply.
		if err := sim.Source().SaveJSONFile(checkpoint.ProfilesPath(*ckptPath)); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Println("# Findings report")
	fmt.Println()
	fmt.Printf("Profiling fidelity: %d µops per measurement run. Campaign time: %.0f s.\n\n",
		*uops, time.Since(start).Seconds())
	fmt.Println("| # | Claim | Reproduced | Measured |")
	fmt.Println("|---|-------|------------|----------|")
	reproduced := 0
	for _, f := range findings {
		mark := "yes"
		if f.Reproduced {
			reproduced++
		} else {
			mark = "NO"
		}
		fmt.Printf("| %d | %s | %s | %s |\n", f.ID, f.Claim, mark, f.Detail)
	}
	fmt.Printf("\n%d of %d findings reproduced.\n", reproduced, len(findings))

	if *figures {
		fmt.Println()
		for _, id := range core.FigureIDs() {
			if ckpt != nil {
				if tab, ok := ckpt.Table(id); ok {
					fmt.Printf("## %s\n\n```\n%s```\n\n", id, tab)
					continue
				}
			}
			tctx, root := obs.StartTrace(context.Background(), col, id)
			tab, err := sim.Figure(tctx, id)
			root.End()
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", id, err)
				os.Exit(1)
			}
			if ckpt != nil {
				if err := ckpt.Put(id, tab); err != nil {
					fmt.Fprintf(os.Stderr, "report: %v\n", err)
					os.Exit(1)
				}
				if err := sim.Source().SaveJSONFile(checkpoint.ProfilesPath(*ckptPath)); err != nil {
					fmt.Fprintf(os.Stderr, "report: %v\n", err)
					os.Exit(1)
				}
			}
			fmt.Printf("## %s\n\n```\n%s```\n\n", id, tab)
		}
	}

	if col != nil && *tracePath != "" {
		report, err := col.DumpFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report: wrote %d trace(s) to %s\n\n%s", col.Len(), *tracePath, report)
	}
	if *machPath != "" {
		snap := machstats.Default().Snapshot()
		paths, err := snap.WriteFiles(*machPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: machstats export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report: %s\nreport: wrote %s\n", snap.FormatSummary(), strings.Join(paths, ", "))
	}
	if perfArm != nil {
		path, err := perfArm.WriteDir(*perfsnapDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: perfsnap: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report: wrote perf snapshot %s\n", path)
	}
}

// Command profiler measures and prints the interval profile of a benchmark
// on a core type: the base-CPI-versus-window curve, the branch and I-cache
// CPI components, the visible-latency calibration, and the reuse curves.
//
// Usage:
//
//	profiler -bench mcf -core big
//	profiler -bench all -core all -uops 300000
//
// Exit codes: 0 success; 1 an engine error (measurement, profile I/O);
// 2 a usage error (unknown flag, benchmark or core type).
package main

import (
	"flag"
	"fmt"
	"os"

	"smtflex/internal/buildinfo"
	"smtflex/internal/config"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

// fail prints a one-line diagnostic and exits: code 1 for engine errors,
// code 2 for usage errors (matching the flag package's own convention).
func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "profiler: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	coreType := flag.String("core", "all", "core type: big, medium, small or 'all'")
	uops := flag.Uint64("uops", 200_000, "µops per measurement run")
	curves := flag.Bool("curves", false, "also print the miss-ratio curves")
	load := flag.String("load", "", "load previously saved profiles from this JSON file")
	save := flag.String("save", "", "save all measured profiles to this JSON file")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: profiler [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nExit codes:\n  0  success\n  1  engine error (measurement or profile I/O failed)\n  2  usage error (bad flag, benchmark or core type)\n")
	}
	flag.Parse()

	if *showVersion {
		fmt.Println("profiler", buildinfo.Get())
		return
	}

	src := profiler.NewSource(*uops)
	if *load != "" {
		n, err := src.LoadJSONFile(*load)
		if err != nil {
			fail(1, "%v", err)
		}
		fmt.Fprintf(os.Stderr, "loaded %d profiles from %s\n", n, *load)
	}

	benches := workload.Names()
	if *bench != "all" {
		benches = []string{*bench}
	}
	var types []config.CoreType
	switch *coreType {
	case "all":
		types = []config.CoreType{config.Big, config.Medium, config.Small}
	case "big":
		types = []config.CoreType{config.Big}
	case "medium":
		types = []config.CoreType{config.Medium}
	case "small":
		types = []config.CoreType{config.Small}
	default:
		fail(2, "unknown core type %q", *coreType)
	}

	for _, b := range benches {
		spec, err := workload.ByName(b)
		if err != nil {
			fail(2, "%v", err)
		}
		for _, ct := range types {
			p, err := src.Profile(spec, ct)
			if err != nil {
				fail(1, "measuring %s on %s: %v", b, ct, err)
			}
			fmt.Printf("%s on %s core:\n", b, ct)
			fmt.Printf("  base CPI by window: ")
			for i, w := range p.BaseWindows {
				fmt.Printf("%d:%.3f ", w, p.BaseCPIs[i])
			}
			fmt.Println()
			fmt.Printf("  branch CPI %.4f (%.2f mispredicts/kµop)\n", p.BrCPI, p.BrMPKU)
			fmt.Printf("  icache CPI %.4f (%.1f block transitions/kµop)\n", p.L1ICPI, p.IBlockAPKU)
			fmt.Printf("  memory CPI %.4f (visible %.2f..%.2f, const %.4f)\n",
				p.BaselineMemCPI, p.Visible, p.VisibleMin, p.MemConstCPI)
			fmt.Printf("  data accesses/kµop %.1f\n", p.DataAPKU)
			if *curves {
				fmt.Printf("  data miss curve:")
				for i, c := range p.DCurve.Capacities {
					fmt.Printf(" %dKB:%.3f", c*64/1024, p.DCurve.Ratios[i])
				}
				fmt.Println()
			}
		}
	}

	if *save != "" {
		// Crash-safe: temp file in the same directory + atomic rename, so an
		// interrupted run never truncates an existing profile file.
		if err := src.SaveJSONFile(*save); err != nil {
			fail(1, "%v", err)
		}
		fmt.Fprintf(os.Stderr, "saved profiles to %s\n", *save)
	}
}

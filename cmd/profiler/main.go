// Command profiler measures and prints the interval profile of a benchmark
// on a core type: the base-CPI-versus-window curve, the branch and I-cache
// CPI components, the visible-latency calibration, and the reuse curves.
//
// Usage:
//
//	profiler -bench mcf -core big
//	profiler -bench all -core all -uops 300000
package main

import (
	"flag"
	"fmt"
	"os"

	"smtflex/internal/config"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	coreType := flag.String("core", "all", "core type: big, medium, small or 'all'")
	uops := flag.Uint64("uops", 200_000, "µops per measurement run")
	curves := flag.Bool("curves", false, "also print the miss-ratio curves")
	load := flag.String("load", "", "load previously saved profiles from this JSON file")
	save := flag.String("save", "", "save all measured profiles to this JSON file")
	flag.Parse()

	src := profiler.NewSource(*uops)
	if *load != "" {
		n, err := src.LoadJSONFile(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded %d profiles from %s\n", n, *load)
	}

	benches := workload.Names()
	if *bench != "all" {
		benches = []string{*bench}
	}
	var types []config.CoreType
	switch *coreType {
	case "all":
		types = []config.CoreType{config.Big, config.Medium, config.Small}
	case "big":
		types = []config.CoreType{config.Big}
	case "medium":
		types = []config.CoreType{config.Medium}
	case "small":
		types = []config.CoreType{config.Small}
	default:
		fmt.Fprintf(os.Stderr, "profiler: unknown core type %q\n", *coreType)
		os.Exit(1)
	}

	for _, b := range benches {
		spec, err := workload.ByName(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
		for _, ct := range types {
			p := src.Profile(spec, ct)
			fmt.Printf("%s on %s core:\n", b, ct)
			fmt.Printf("  base CPI by window: ")
			for i, w := range p.BaseWindows {
				fmt.Printf("%d:%.3f ", w, p.BaseCPIs[i])
			}
			fmt.Println()
			fmt.Printf("  branch CPI %.4f (%.2f mispredicts/kµop)\n", p.BrCPI, p.BrMPKU)
			fmt.Printf("  icache CPI %.4f (%.1f block transitions/kµop)\n", p.L1ICPI, p.IBlockAPKU)
			fmt.Printf("  memory CPI %.4f (visible %.2f..%.2f, const %.4f)\n",
				p.BaselineMemCPI, p.Visible, p.VisibleMin, p.MemConstCPI)
			fmt.Printf("  data accesses/kµop %.1f\n", p.DataAPKU)
			if *curves {
				fmt.Printf("  data miss curve:")
				for i, c := range p.DCurve.Capacities {
					fmt.Printf(" %dKB:%.3f", c*64/1024, p.DCurve.Ratios[i])
				}
				fmt.Println()
			}
		}
	}

	if *save != "" {
		// Crash-safe: temp file in the same directory + atomic rename, so an
		// interrupted run never truncates an existing profile file.
		if err := src.SaveJSONFile(*save); err != nil {
			fmt.Fprintf(os.Stderr, "profiler: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saved profiles to %s\n", *save)
	}
}

// Command figures regenerates the tables and figures of the paper as
// aligned text tables (and optionally CSV files).
//
// Usage:
//
//	figures -exp all
//	figures -exp fig8,fig11 -uops 300000
//	figures -exp all -csv out/
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"smtflex/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated figure ids (see -list), or 'all'")
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	mixes := flag.Int("mixes", 12, "random heterogeneous mixes per thread count")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	list := flag.Bool("list", false, "list available figure ids and exit")
	flag.Parse()

	if *list {
		for _, id := range core.FigureIDs() {
			fmt.Println(id)
		}
		return
	}

	// Validate every requested id before running anything: a typo must fail
	// fast, not abort a multi-minute campaign halfway through its output.
	ids := core.FigureIDs()
	if *exp != "all" {
		known := make(map[string]bool, len(ids))
		for _, id := range ids {
			known[id] = true
		}
		ids = strings.Split(*exp, ",")
		var bad []string
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
			if !known[ids[i]] {
				bad = append(bad, ids[i])
			}
		}
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "figures: unknown figure id(s): %s (see -list)\n", strings.Join(bad, ", "))
			os.Exit(2)
		}
	}

	sim := core.NewSimulator(core.WithUopCount(*uops), core.WithMixesPerCount(*mixes), core.WithParallelism(*workers))

	for _, id := range ids {
		start := time.Now()
		tab, err := sim.Figure(context.Background(), id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), tab)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

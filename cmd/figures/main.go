// Command figures regenerates the tables and figures of the paper as
// aligned text tables (and optionally CSV files).
//
// Usage:
//
//	figures -exp all
//	figures -exp fig8,fig11 -uops 300000
//	figures -exp all -csv out/
//	figures -exp all -checkpoint run.ckpt   # resumable campaign
//
// With -checkpoint, every completed figure (and the measured profile cache)
// is persisted crash-safely after it finishes; re-running the same command
// after a crash resumes the campaign, skipping finished figures and reusing
// measured profiles, and reproduces byte-identical tables.
package main

import (
	"context"

	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"smtflex/internal/buildinfo"
	"smtflex/internal/checkpoint"
	"smtflex/internal/core"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
	"smtflex/internal/study"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated figure ids (see -list), or 'all'")
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	mixes := flag.Int("mixes", 12, "random heterogeneous mixes per thread count")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	ckptPath := flag.String("checkpoint", "", "persist completed figures to this file and resume from it on restart")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file (chrome://tracing, Perfetto) of the campaign here and print a time-stack report to stderr")
	machPath := flag.String("machstats", "", "arm the machine-counter registry and write its snapshot to <path>.json, <path>.stacks.csv and <path>.counters.csv after the campaign")
	perfsnapDir := flag.String("perfsnap", "", "arm tracing, machine counters and engine histograms, and write a perf snapshot (for perfdiff) into this directory after the campaign")
	list := flag.Bool("list", false, "list available figure ids and exit")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("figures", buildinfo.Get())
		return
	}

	if *list {
		for _, id := range core.FigureIDs() {
			fmt.Println(id)
		}
		return
	}

	// Validate every requested id before running anything: a typo must fail
	// fast, not abort a multi-minute campaign halfway through its output.
	ids := core.FigureIDs()
	if *exp != "all" {
		known := make(map[string]bool, len(ids))
		for _, id := range ids {
			known[id] = true
		}
		ids = strings.Split(*exp, ",")
		var bad []string
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
			if !known[ids[i]] {
				bad = append(bad, ids[i])
			}
		}
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "figures: unknown figure id(s): %s (see -list)\n", strings.Join(bad, ", "))
			os.Exit(2)
		}
	}

	sim := core.NewSimulator(core.WithUopCount(*uops), core.WithMixesPerCount(*mixes), core.WithParallelism(*workers))

	// With -machstats, the machine-counter registry collects CPI stacks and
	// event counters across the whole campaign and exports them on exit.
	// Arming it never changes the tables.
	if *machPath != "" {
		machstats.Enable()
	}

	// With -trace, every figure runs under its own root span; on exit the
	// collected traces become one Chrome trace-event file and the aggregated
	// time stack lands on stderr. Tracing never changes the tables.
	var col *obs.Collector
	if *tracePath != "" || *perfsnapDir != "" {
		obs.Enable()
		col = obs.NewCollector(len(ids) + 1)
	}

	// With -perfsnap, every snapshot source is armed for the campaign and a
	// perf snapshot (the `perfdiff` input) lands in the directory at exit.
	// Arming never changes the tables.
	var perfArm *perfdiff.CLIArm
	if *perfsnapDir != "" {
		perfArm = perfdiff.ArmCLI("figures", sim.Study(), col)
	}

	var ckpt *checkpoint.Manager
	if *ckptPath != "" {
		var resumed int
		var err error
		ckpt, resumed, err = checkpoint.Open(*ckptPath, checkpoint.Fingerprint{UopCount: *uops, Mixes: *mixes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if resumed > 0 {
			fmt.Fprintf(os.Stderr, "figures: resuming from %s: %d figure(s) already complete\n", *ckptPath, resumed)
		}
		// The measured profiles are the expensive state inside an unfinished
		// figure: reload them so a resumed campaign re-solves but never
		// re-measures.
		profPath := checkpoint.ProfilesPath(*ckptPath)
		if _, statErr := os.Stat(profPath); statErr == nil {
			n, err := sim.Source().LoadJSONFile(profPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "figures: reloaded %d measured profile(s) from %s\n", n, profPath)
		}
	}

	for _, id := range ids {
		start := time.Now()
		var tab *study.Table
		if ckpt != nil {
			if t, ok := ckpt.Table(id); ok {
				fmt.Printf("== %s (resumed) ==\n%s\n", id, t)
				writeCSV(*csvDir, id, t)
				continue
			}
		}
		tctx, root := obs.StartTrace(context.Background(), col, id)
		tab, err := sim.Figure(tctx, id)
		root.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		if ckpt != nil {
			if err := ckpt.Put(id, tab); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
			if err := sim.Source().SaveJSONFile(checkpoint.ProfilesPath(*ckptPath)); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", id, time.Since(start).Seconds(), tab)
		writeCSV(*csvDir, id, tab)
	}

	if col != nil && *tracePath != "" {
		report, err := col.DumpFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote %d trace(s) to %s\n\n%s", col.Len(), *tracePath, report)
	}
	if *machPath != "" {
		snap := machstats.Default().Snapshot()
		paths, err := snap.WriteFiles(*machPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: machstats export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: %s\nfigures: wrote %s\n", snap.FormatSummary(), strings.Join(paths, ", "))
	}
	if perfArm != nil {
		path, err := perfArm.WriteDir(*perfsnapDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: perfsnap: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "figures: wrote perf snapshot %s\n", path)
	}
}

// writeCSV writes the table as <dir>/<id>.csv; a no-op when dir is empty.
func writeCSV(dir, id string, tab *study.Table) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

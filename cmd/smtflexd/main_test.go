package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smtflex/internal/perfdiff"
)

func TestClusterPeersValidation(t *testing.T) {
	cases := []struct {
		name      string
		role      string
		workers   string
		wantPeers []string
		wantErr   string // substring; empty means success
	}{
		{name: "solo default", role: "solo", wantPeers: nil},
		{name: "worker role", role: "worker", wantPeers: nil},
		{name: "bogus role", role: "boss", wantErr: "invalid -role"},
		{name: "bogus role names valid ones", role: "boss", wantErr: "solo, coordinator, worker"},
		{name: "workers without coordinator role", role: "worker", workers: "http://a:1", wantErr: "-workers only applies"},
		{name: "coordinator without workers", role: "coordinator", wantErr: "requires -workers"},
		{
			name: "coordinator two workers", role: "coordinator",
			workers:   "http://a:8081, http://b:8082",
			wantPeers: []string{"http://a:8081", "http://b:8082"},
		},
		{name: "trailing slash normalized", role: "coordinator", workers: "http://a:8081/", wantPeers: []string{"http://a:8081"}},
		{name: "empty entry", role: "coordinator", workers: "http://a:1,,http://b:2", wantErr: "empty entry"},
		{name: "relative URL", role: "coordinator", workers: "localhost:8081", wantErr: "absolute http(s) URL"},
		{name: "bad scheme", role: "coordinator", workers: "ftp://a:1", wantErr: "absolute http(s) URL"},
		{name: "duplicate", role: "coordinator", workers: "http://a:1,http://a:1", wantErr: "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			peers, err := clusterPeers(tc.role, tc.workers)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(peers) != len(tc.wantPeers) {
				t.Fatalf("peers = %v, want %v", peers, tc.wantPeers)
			}
			for i := range peers {
				if peers[i] != tc.wantPeers[i] {
					t.Fatalf("peers = %v, want %v", peers, tc.wantPeers)
				}
			}
		})
	}
}

func TestPerfFlagsValidation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "baseline.json")
	if err := perfdiff.Capture(perfdiff.CaptureOpts{Role: "test"}).WriteFile(good); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		interval time.Duration
		ring     int
		baseline string
		wantBase bool
		wantErr  string // substring; empty means success
	}{
		{name: "all off", ring: perfdiff.DefaultProfRingCap},
		{name: "profiling armed", interval: 30 * time.Second, ring: 4},
		{name: "baseline armed", ring: 8, baseline: good, wantBase: true},
		{name: "negative interval", interval: -time.Second, ring: 8, wantErr: "negative"},
		{name: "sub-second interval", interval: 100 * time.Millisecond, ring: 8, wantErr: "1s floor"},
		{name: "zero ring", interval: time.Minute, ring: 0, wantErr: "-prof-ring"},
		{name: "missing baseline", ring: 8, baseline: filepath.Join(dir, "nope.json"), wantErr: "-perf-baseline"},
		{name: "schema mismatch baseline", ring: 8, baseline: bad, wantErr: "-perf-baseline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := perfFlags(tc.interval, tc.ring, tc.baseline)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if (base != nil) != tc.wantBase {
				t.Fatalf("baseline = %v, want present=%v", base, tc.wantBase)
			}
		})
	}
}

func TestDurabilityFlagsValidation(t *testing.T) {
	cases := []struct {
		name      string
		role      string
		journal   string
		auditFrac float64
		wantErr   string // substring; empty means success
	}{
		{name: "solo defaults", role: "solo"},
		{name: "coordinator defaults", role: "coordinator"},
		{name: "coordinator journal", role: "coordinator", journal: "/tmp/j"},
		{name: "coordinator audit", role: "coordinator", auditFrac: 0.05},
		{name: "coordinator full audit", role: "coordinator", auditFrac: 1},
		{name: "journal on solo", role: "solo", journal: "/tmp/j", wantErr: "-journal only applies"},
		{name: "journal on worker", role: "worker", journal: "/tmp/j", wantErr: "-journal only applies"},
		{name: "audit on worker", role: "worker", auditFrac: 0.1, wantErr: "-audit-frac only applies"},
		{name: "audit negative", role: "coordinator", auditFrac: -0.1, wantErr: "outside [0,1]"},
		{name: "audit above one", role: "coordinator", auditFrac: 1.5, wantErr: "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := durabilityFlags(tc.role, tc.journal, tc.auditFrac)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// Command smtflexd serves the experiment engine as a long-running HTTP/JSON
// service: design sweeps, placement queries, figure tables and job-stream
// simulation, with admission control, per-request deadlines, request
// coalescing, Prometheus-style metrics and graceful shutdown.
//
// Usage:
//
//	smtflexd -addr :8080 -concurrency 8 -queue 64 -cache-cap 256
//
// Endpoints:
//
//	POST /v1/sweep        {"design":"4B","kind":"homogeneous"}
//	POST /v1/place        {"design":"4B","programs":["tonto","calculix"]}
//	GET  /v1/figures/{id} e.g. /v1/figures/fig7
//	POST /v1/jobsim       {"designs":["4B","20s"],"jobs":40}
//	GET  /healthz
//	GET  /metrics
//
// SIGINT/SIGTERM drains in-flight requests (up to -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smtflex/internal/core"
	"smtflex/internal/faults"
	"smtflex/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := flag.Int("queue", 64, "max requests waiting for an execution slot; beyond this, shed with 503")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested ?timeout_ms= deadlines")
	drain := flag.Duration("drain", 2*time.Minute, "how long graceful shutdown waits for in-flight requests")
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	mixes := flag.Int("mixes", 12, "random heterogeneous mixes per thread count")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	cacheCap := flag.Int("cache-cap", 512, "max cached sweeps before LRU eviction (0 = unbounded)")
	logJSON := flag.Bool("log-json", false, "log in JSON instead of text")
	faultSpec := flag.String("faults", "", "DEV ONLY: arm fault injection, e.g. 'solver=error,profiler=latency:50ms,handler=panic:3'")
	flag.Parse()

	if *faultSpec != "" {
		if err := faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "smtflexd: WARNING: fault injection armed (-faults %q); never use in production\n", *faultSpec)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	sim := core.NewSimulator(
		core.WithUopCount(*uops),
		core.WithMixesPerCount(*mixes),
		core.WithParallelism(*workers),
		core.WithCacheCap(*cacheCap),
	)
	queueDepth := *queue
	if queueDepth == 0 {
		queueDepth = -1 // flag 0 means "no waiting room", not the default
	}
	srv, err := server.New(server.Config{
		Sim:            sim,
		MaxConcurrent:  *concurrency,
		QueueDepth:     queueDepth,
		DefaultTimeout: *deadline,
		MaxTimeout:     *maxDeadline,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("smtflexd listening", "addr", *addr, "concurrency", *concurrency, "queue", *queue)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "drain", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}
	logger.Info("smtflexd stopped")
}

// Command smtflexd serves the experiment engine as a long-running HTTP/JSON
// service: design sweeps, placement queries, figure tables and job-stream
// simulation, with admission control, per-request deadlines, request
// coalescing, Prometheus-style metrics and graceful shutdown.
//
// Usage:
//
//	smtflexd -addr :8080 -concurrency 8 -queue 64 -cache-cap 256
//
// Cluster mode shards sweeps across a fleet: start workers, then a
// coordinator pointing at them:
//
//	smtflexd -role=worker -addr :8081
//	smtflexd -role=worker -addr :8082
//	smtflexd -role=coordinator -workers http://localhost:8081,http://localhost:8082
//
// The coordinator serves the same API; /v1/sweep fans out across the fleet
// and returns tables bit-identical to a solo daemon. Workers additionally
// serve POST /cluster/v1/cell; /debug/cluster dumps assignment state.
// Dispatches propagate the coordinator's request ID and trace context, and
// worker spans are stitched back into one trace per sweep — see
// /debug/traces, /debug/fleet and /debug/flight below.
//
// With -journal DIR the coordinator write-ahead-journals every completed
// cell; a coordinator killed mid-sweep replays the journal on restart and
// re-dispatches only the remainder, producing byte-identical tables. With
// -audit-frac F a sampled fraction of cells is double-dispatched to
// independent workers and the result digests compared — divergence fails
// the sweep hard rather than assembling an untrustworthy table.
//
// Endpoints:
//
//	POST /v1/sweep        {"design":"4B","kind":"homogeneous"}
//	POST /v1/place        {"design":"4B","programs":["tonto","calculix"]}
//	GET  /v1/figures/{id} e.g. /v1/figures/fig7
//	POST /v1/jobsim       {"designs":["4B","20s"],"jobs":40}
//	GET  /healthz
//	GET  /metrics
//	GET  /debug/traces            recent request traces (ring buffer)
//	GET  /debug/traces/{id}       one trace; ?format=chrome for Perfetto
//	GET  /debug/timestack         per-route wall-time breakdown; ?format=text
//	GET  /debug/fleet             coordinator: merged worker scrape; ?format=text
//	GET  /debug/flight            coordinator: recent sweeps' cell lifecycles
//	GET  /debug/flight/{sweep}    one flight record (>=8-char prefixes resolve)
//	GET  /debug/perfsnap          versioned perf snapshot for perfdiff; ?pprof=1 attaches profiles
//	GET  /debug/perfsnap/ring     continuous profiler's CPU-profile ring (-prof-interval)
//
// With -prof-interval a bounded ring of periodic CPU profiles is kept in
// memory (off by default; the disabled path is one atomic load). With
// -perf-baseline FILE the daemon watches its engine histograms for drift
// against a committed snapshot: a quantile shifting past tolerance bumps
// smtflexd_perf_drift_total and auto-captures a full perf snapshot next to
// the journal for later `perfdiff baseline.json drift.json` attribution.
//
// With -debug-addr, a second loopback listener additionally serves Go's
// pprof profiles under /debug/pprof/. Every request carries an X-Request-ID
// (client-supplied or generated) echoed in the response and attached to each
// log line and trace.
//
// SIGINT/SIGTERM begins a graceful drain: in-flight requests finish (up to
// -drain) while new work is refused with 503 and the X-Smtflexd-Draining
// header, so fabric coordinators reroute instead of hedging into a dying
// worker; /healthz turns 503 "draining" so load balancers steer away.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"smtflex/internal/buildinfo"
	"smtflex/internal/cluster"
	"smtflex/internal/core"
	"smtflex/internal/faults"
	"smtflex/internal/journal"
	"smtflex/internal/machstats"
	"smtflex/internal/perfdiff"
	"smtflex/internal/server"
)

// clusterPeers validates the fabric flags eagerly and returns the parsed
// worker URLs (nil for non-coordinator roles). Every failure names the flag,
// the offending value and what would be valid.
func clusterPeers(role, workers string) ([]string, error) {
	switch role {
	case "solo", "coordinator", "worker":
	default:
		return nil, fmt.Errorf("invalid -role %q (valid roles: solo, coordinator, worker)", role)
	}
	if role != "coordinator" {
		if workers != "" {
			return nil, fmt.Errorf("-workers only applies to -role=coordinator (got -role=%s)", role)
		}
		return nil, nil
	}
	if strings.TrimSpace(workers) == "" {
		return nil, errors.New("-role=coordinator requires -workers, e.g. -workers http://host1:8080,http://host2:8080")
	}
	var peers []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(workers, ",") {
		w := strings.TrimSpace(raw)
		if w == "" {
			return nil, fmt.Errorf("-workers has an empty entry in %q", workers)
		}
		u, err := url.Parse(w)
		if err != nil {
			return nil, fmt.Errorf("invalid worker URL %q in -workers: %v", w, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("invalid worker URL %q in -workers: need an absolute http(s) URL like http://host:8080", w)
		}
		w = strings.TrimRight(w, "/")
		if seen[w] {
			return nil, fmt.Errorf("duplicate worker URL %q in -workers", w)
		}
		seen[w] = true
		peers = append(peers, w)
	}
	return peers, nil
}

// perfFlags validates the performance-observability flags eagerly and loads
// the drift baseline when one is armed: an unreadable or schema-mismatched
// baseline must fail at startup, not be discovered at the first drift check.
func perfFlags(profInterval time.Duration, profRing int, baselinePath string) (*perfdiff.Snapshot, error) {
	if profInterval < 0 {
		return nil, fmt.Errorf("-prof-interval %v is negative (0 disables continuous profiling)", profInterval)
	}
	if profInterval > 0 && profInterval < time.Second {
		return nil, fmt.Errorf("-prof-interval %v below the 1s floor (each capture profiles for up to half the interval)", profInterval)
	}
	if profRing < 1 {
		return nil, fmt.Errorf("-prof-ring %d must be at least 1", profRing)
	}
	if baselinePath == "" {
		return nil, nil
	}
	base, err := perfdiff.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("-perf-baseline: %v", err)
	}
	return base, nil
}

// durabilityFlags validates the coordinator durability flags eagerly, in the
// same spirit as clusterPeers: fail fast with an actionable message instead
// of surfacing mid-sweep.
func durabilityFlags(role, journalDir string, auditFrac float64) error {
	if journalDir != "" && role != "coordinator" {
		return fmt.Errorf("-journal only applies to -role=coordinator (got -role=%s)", role)
	}
	if auditFrac != 0 && role != "coordinator" {
		return fmt.Errorf("-audit-frac only applies to -role=coordinator (got -role=%s)", role)
	}
	if auditFrac < 0 || auditFrac > 1 {
		return fmt.Errorf("-audit-frac %g outside [0,1]", auditFrac)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := flag.Int("queue", 64, "max requests waiting for an execution slot; beyond this, shed with 503")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested ?timeout_ms= deadlines")
	drain := flag.Duration("drain", 2*time.Minute, "how long graceful shutdown waits for in-flight requests")
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	mixes := flag.Int("mixes", 12, "random heterogeneous mixes per thread count")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	cacheCap := flag.Int("cache-cap", 512, "max cached sweeps before LRU eviction (0 = unbounded)")
	logJSON := flag.Bool("log-json", false, "log in JSON instead of text")
	faultSpec := flag.String("faults", "", "DEV ONLY: arm fault injection, e.g. 'solver=error,profiler=latency:50ms,handler=panic:3'")
	debugAddr := flag.String("debug-addr", "", "serve pprof and trace debug endpoints on this extra address (e.g. 127.0.0.1:6060); keep it loopback-only")
	traceBuf := flag.Int("trace-buf", 128, "completed request traces kept for /debug/traces (negative disables tracing)")
	machStats := flag.Bool("machstats", true, "collect simulated-hardware counters and CPI stacks, served at /debug/machstats")
	role := flag.String("role", "solo", "fabric role: solo, coordinator (shard sweeps across -workers) or worker (serve cell dispatches)")
	workerList := flag.String("workers", "", "comma-separated worker base URLs for -role=coordinator, e.g. http://host1:8080,http://host2:8080")
	cellCap := flag.Int("cell-cache-cap", 65536, "max cached sweep cells in the fabric result store before LRU eviction (0 = unbounded)")
	journalDir := flag.String("journal", "", "coordinator only: write-ahead journal directory for completed sweep cells; a restarted coordinator replays it and re-dispatches only the remainder")
	auditFrac := flag.Float64("audit-frac", 0, "coordinator only: fraction of cells in [0,1] double-dispatched to independent workers and digest-compared; divergence fails the sweep")
	profInterval := flag.Duration("prof-interval", 0, "continuous profiling: capture a CPU profile at this cadence into a bounded ring served at /debug/perfsnap/ring (0 disables; min 1s)")
	profRing := flag.Int("prof-ring", perfdiff.DefaultProfRingCap, "continuous profiling: profiles kept in the ring")
	perfBaseline := flag.String("perf-baseline", "", "perf snapshot file to watch for drift: engine histogram quantiles shifting past tolerance bump smtflexd_perf_drift_total and auto-capture a snapshot next to the journal")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("smtflexd", buildinfo.Get())
		return
	}

	// Validate the fabric flags before building anything: a typo'd role or a
	// malformed worker URL must fail fast with an actionable message, not
	// surface as dispatch errors after minutes of engine profiling.
	peers, err := clusterPeers(*role, *workerList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(2)
	}
	if err := durabilityFlags(*role, *journalDir, *auditFrac); err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(2)
	}
	baseline, err := perfFlags(*profInterval, *profRing, *perfBaseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(2)
	}

	if *machStats {
		machstats.Enable()
	}

	if *faultSpec != "" {
		if err := faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "smtflexd: WARNING: fault injection armed (-faults %q); never use in production\n", *faultSpec)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	sim := core.NewSimulator(
		core.WithUopCount(*uops),
		core.WithMixesPerCount(*mixes),
		core.WithParallelism(*workers),
		core.WithCacheCap(*cacheCap),
	)
	queueDepth := *queue
	if queueDepth == 0 {
		queueDepth = -1 // flag 0 means "no waiting room", not the default
	}
	cfg := server.Config{
		Sim:            sim,
		MaxConcurrent:  *concurrency,
		QueueDepth:     queueDepth,
		DefaultTimeout: *deadline,
		MaxTimeout:     *maxDeadline,
		Logger:         logger,
		TraceBuffer:    *traceBuf,
		ProfInterval:   *profInterval,
		ProfRingCap:    *profRing,
		PerfBaseline:   baseline,
	}
	if *journalDir != "" {
		// Drift snapshots land next to the journal: the durable directory an
		// operator already watches for this daemon's state.
		cfg.PerfDumpDir = *journalDir
	}
	switch *role {
	case "coordinator":
		copts := cluster.Options{
			Logger:        logger,
			StoreCap:      *cellCap,
			SweepCap:      *cacheCap,
			AuditFraction: *auditFrac,
		}
		if *journalDir != "" {
			jnl, n, err := journal.Open(*journalDir, sim.Study().Fingerprint())
			if err != nil {
				fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
				os.Exit(2)
			}
			copts.Journal = jnl
			logger.Info("cell journal open", "dir", *journalDir, "records", n)
		}
		coord, err := cluster.NewCoordinator(sim.Study(), peers, copts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
			os.Exit(2)
		}
		cfg.Coordinator = coord
		logger.Info("fabric coordinator", "workers", len(peers), "audit_frac", *auditFrac)
	case "worker":
		cfg.ClusterWorker = cluster.NewWorker(sim.Study(), *cellCap)
		logger.Info("fabric worker, serving " + cluster.CellPath)
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The perf loops (continuous profiling ring, drift watcher) run for the
	// daemon's lifetime and stop with the signal context at drain time.
	srv.StartPerfLoops(ctx)

	if *debugAddr != "" {
		dbgSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		// The debug listener is best-effort: it must never take the daemon
		// down, so its errors are logged rather than fatal.
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener (pprof, traces, timestack)", "addr", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("smtflexd listening", "addr", *addr, "concurrency", *concurrency, "queue", *queue, "build", buildinfo.Get().String())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "drain", *drain, "inflight", srv.Inflight())
	// Flip to draining before closing the listener: while in-flight work
	// finishes, new engine requests — including a coordinator's cell
	// dispatches to a dying worker — get 503 with the draining header, so
	// fabric peers reroute immediately instead of hedging into this process.
	srv.BeginDrain()
	drainBy := time.Now().Add(*drain)
	for srv.Inflight() > 0 && time.Now().Before(drainBy) {
		time.Sleep(50 * time.Millisecond)
	}
	shutdownCtx, cancel := context.WithDeadline(context.Background(), drainBy)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}
	logger.Info("smtflexd stopped")
}

// Command smtflexd serves the experiment engine as a long-running HTTP/JSON
// service: design sweeps, placement queries, figure tables and job-stream
// simulation, with admission control, per-request deadlines, request
// coalescing, Prometheus-style metrics and graceful shutdown.
//
// Usage:
//
//	smtflexd -addr :8080 -concurrency 8 -queue 64 -cache-cap 256
//
// Endpoints:
//
//	POST /v1/sweep        {"design":"4B","kind":"homogeneous"}
//	POST /v1/place        {"design":"4B","programs":["tonto","calculix"]}
//	GET  /v1/figures/{id} e.g. /v1/figures/fig7
//	POST /v1/jobsim       {"designs":["4B","20s"],"jobs":40}
//	GET  /healthz
//	GET  /metrics
//	GET  /debug/traces            recent request traces (ring buffer)
//	GET  /debug/traces/{id}       one trace; ?format=chrome for Perfetto
//	GET  /debug/timestack         per-route wall-time breakdown; ?format=text
//
// With -debug-addr, a second loopback listener additionally serves Go's
// pprof profiles under /debug/pprof/. Every request carries an X-Request-ID
// (client-supplied or generated) echoed in the response and attached to each
// log line and trace.
//
// SIGINT/SIGTERM drains in-flight requests (up to -drain) before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smtflex/internal/buildinfo"
	"smtflex/internal/core"
	"smtflex/internal/faults"
	"smtflex/internal/machstats"
	"smtflex/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", runtime.GOMAXPROCS(0), "max concurrently executing requests")
	queue := flag.Int("queue", 64, "max requests waiting for an execution slot; beyond this, shed with 503")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-request deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested ?timeout_ms= deadlines")
	drain := flag.Duration("drain", 2*time.Minute, "how long graceful shutdown waits for in-flight requests")
	uops := flag.Uint64("uops", 200_000, "cycle-engine µops per profiling run")
	mixes := flag.Int("mixes", 12, "random heterogeneous mixes per thread count")
	workers := flag.Int("j", runtime.GOMAXPROCS(0), "parallel workers for the experiment engine (1 = serial)")
	cacheCap := flag.Int("cache-cap", 512, "max cached sweeps before LRU eviction (0 = unbounded)")
	logJSON := flag.Bool("log-json", false, "log in JSON instead of text")
	faultSpec := flag.String("faults", "", "DEV ONLY: arm fault injection, e.g. 'solver=error,profiler=latency:50ms,handler=panic:3'")
	debugAddr := flag.String("debug-addr", "", "serve pprof and trace debug endpoints on this extra address (e.g. 127.0.0.1:6060); keep it loopback-only")
	traceBuf := flag.Int("trace-buf", 128, "completed request traces kept for /debug/traces (negative disables tracing)")
	machStats := flag.Bool("machstats", true, "collect simulated-hardware counters and CPI stacks, served at /debug/machstats")
	showVersion := flag.Bool("version", false, "print version information and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println("smtflexd", buildinfo.Get())
		return
	}

	if *machStats {
		machstats.Enable()
	}

	if *faultSpec != "" {
		if err := faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "smtflexd: WARNING: fault injection armed (-faults %q); never use in production\n", *faultSpec)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	sim := core.NewSimulator(
		core.WithUopCount(*uops),
		core.WithMixesPerCount(*mixes),
		core.WithParallelism(*workers),
		core.WithCacheCap(*cacheCap),
	)
	queueDepth := *queue
	if queueDepth == 0 {
		queueDepth = -1 // flag 0 means "no waiting room", not the default
	}
	srv, err := server.New(server.Config{
		Sim:            sim,
		MaxConcurrent:  *concurrency,
		QueueDepth:     queueDepth,
		DefaultTimeout: *deadline,
		MaxTimeout:     *maxDeadline,
		Logger:         logger,
		TraceBuffer:    *traceBuf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		dbgSrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		// The debug listener is best-effort: it must never take the daemon
		// down, so its errors are logged rather than fatal.
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug listener (pprof, traces, timestack)", "addr", *debugAddr)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("smtflexd listening", "addr", *addr, "concurrency", *concurrency, "queue", *queue, "build", buildinfo.Get().String())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "drain", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "smtflexd: shutdown: %v\n", err)
		os.Exit(1)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smtflexd: %v\n", err)
		os.Exit(1)
	}
	logger.Info("smtflexd stopped")
}

// Command benchjson converts `go test -bench` text output into the stable
// JSON perf-trajectory document, and gates one run against another.
//
// Convert (default): read bench text on stdin, write JSON on stdout — the
// format the CI bench job archives as BENCH_<date>.json. A run that parses to
// zero benchmark results is an error, not an empty document: that is what a
// panicking benchmark binary leaves behind, and the pipeline must notice.
//
//	go test -bench . -benchmem -benchtime=1x | benchjson > BENCH_$(date +%F).json
//
// Compare: gate a current run against a committed baseline and exit non-zero
// on any regression. The current run is a JSON document (-current file, or
// raw bench text on stdin which is converted first).
//
//	benchjson -compare BENCH_baseline.json -current BENCH_2026-08-08.json
//	go test -bench . -benchmem | benchjson -compare BENCH_baseline.json
//
// Flags tune the gate: -ns-pct / -allocs-pct (allowed % increase),
// -allocs-slack (absolute allocs/op allowance on top of the percentage),
// -min-ns (ns/op noise floor below which wall time is not gated), and
// -report (also write the human-readable comparison to a file for CI
// artifacts).
//
// To refresh the committed baseline after an intentional perf change:
//
//	go test -bench . -benchmem -benchtime=1x -run '^$' -timeout 3000s . | benchjson > BENCH_baseline.json
//
// Exit codes: 0 success / no regressions; 1 malformed or empty input;
// 2 regressions detected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"smtflex/internal/benchjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		compare     = fs.String("compare", "", "baseline JSON file to gate against; exits 2 on regression")
		current     = fs.String("current", "", "current-run JSON file (with -compare); default reads bench text from stdin")
		reportPath  = fs.String("report", "", "also write the comparison report to this file")
		nsPct       = fs.Float64("ns-pct", 300, "allowed ns/op increase in percent")
		allocsPct   = fs.Float64("allocs-pct", 10, "allowed allocs/op increase in percent")
		allocsSlack = fs.Float64("allocs-slack", 64, "absolute allocs/op allowance on top of -allocs-pct")
		minNs       = fs.Float64("min-ns", 1000, "baseline ns/op below this floor is not wall-time gated")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *compare == "" {
		return convert(stdin, stdout, stderr)
	}

	baseline, err := decodeFile(*compare)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
		return 1
	}
	cur, err := loadCurrent(*current, stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: current: %v\n", err)
		return 1
	}
	th := benchjson.Thresholds{
		Default: benchjson.Limit{
			NsPerOpPct:       *nsPct,
			AllocsPerOpPct:   *allocsPct,
			AllocsPerOpSlack: *allocsSlack,
		},
		MinNsPerOp: *minNs,
	}
	regs, err := benchjson.Compare(baseline, cur, th)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}

	out := stdout
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		out = io.MultiWriter(stdout, f)
	}
	if len(regs) == 0 {
		fmt.Fprintf(out, "benchjson: %d benchmark(s) vs %s: no regressions\n\n%s",
			len(baseline.Results), *compare, benchjson.FormatComparison(baseline, cur, regs))
		return 0
	}
	fmt.Fprintf(out, "benchjson: %d regression(s) vs %s:\n", len(regs), *compare)
	for _, r := range regs {
		fmt.Fprintf(out, "  %s\n", r)
	}
	fmt.Fprintf(out, "\n%s", benchjson.FormatComparison(baseline, cur, regs))
	return 2
}

// convert is the default mode: bench text in, JSON document out.
func convert(stdin io.Reader, stdout, stderr io.Writer) int {
	rep, err := benchjson.Parse(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(stderr, "benchjson: %v (did the bench run crash before producing output?)\n",
			benchjson.ErrNoResults)
		return 1
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmark result(s)\n", len(rep.Results))
	return 0
}

func decodeFile(path string) (*benchjson.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return benchjson.DecodeJSON(f)
}

// loadCurrent resolves the current-run report: a JSON file when -current is
// given, otherwise bench text from stdin (so the gate can sit directly after
// a `go test -bench | benchjson -compare ...` pipe).
func loadCurrent(path string, stdin io.Reader) (*benchjson.Report, error) {
	if path != "" {
		return decodeFile(path)
	}
	rep, err := benchjson.Parse(stdin)
	if err != nil {
		return nil, err
	}
	if len(rep.Results) == 0 {
		return nil, benchjson.ErrNoResults
	}
	return rep, nil
}

// Command benchjson converts `go test -bench` text output on stdin into the
// stable JSON perf-trajectory document on stdout — the format the CI bench
// job archives as BENCH_<date>.json.
//
// Usage:
//
//	go test -bench . -benchtime=1x | benchjson > BENCH_$(date +%F).json
//
// Exit codes: 0 success; 1 malformed benchmark input.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"smtflex/internal/benchjson"
)

func main() {
	rep, err := benchjson.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmark result(s)\n", len(rep.Results))
}

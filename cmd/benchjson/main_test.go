package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: smtflex
BenchmarkContentionSolve-8   	      10	   1200000 ns/op	     128 B/op	       2 allocs/op
BenchmarkStudySweep-8        	       2	  90000000 ns/op	 5000000 B/op	   40000 allocs/op
PASS
`

// regressedText is benchText with BenchmarkContentionSolve 10x slower and
// allocating 100x more — the injected regression the gate must catch.
const regressedText = `goos: linux
goarch: amd64
pkg: smtflex
BenchmarkContentionSolve-8   	      10	  12000000 ns/op	   12800 B/op	     200 allocs/op
BenchmarkStudySweep-8        	       2	  90000000 ns/op	 5000000 B/op	   40000 allocs/op
PASS
`

// runCLI invokes run() and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

// convertJSON converts bench text to a JSON file via the CLI itself.
func convertJSON(t *testing.T, text string) string {
	t.Helper()
	code, out, errb := runCLI(t, nil, text)
	if code != 0 {
		t.Fatalf("convert exited %d: %s", code, errb)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertEmptyInputFails(t *testing.T) {
	for _, in := range []string{"", "PASS\nok  \tsmtflex\t0.01s\n"} {
		code, out, errb := runCLI(t, nil, in)
		if code != 1 {
			t.Errorf("empty input %q: exit %d, want 1", in, code)
		}
		if out != "" {
			t.Errorf("empty input wrote a document: %q", out)
		}
		if !strings.Contains(errb, "no benchmark results parsed") {
			t.Errorf("stderr = %q, want a no-results explanation", errb)
		}
	}
}

func TestConvertProducesDocument(t *testing.T) {
	code, out, errb := runCLI(t, nil, benchText)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, `"BenchmarkContentionSolve"`) || !strings.Contains(out, `"allocs/op": 2`) {
		t.Errorf("document missing expected results:\n%s", out)
	}
}

func TestCompareSelfIsClean(t *testing.T) {
	base := convertJSON(t, benchText)
	code, out, _ := runCLI(t, []string{"-compare", base, "-current", base}, "")
	if code != 0 {
		t.Fatalf("self-compare exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("output = %q", out)
	}
	// The full delta table prints even on a clean run, with signed deltas.
	if !strings.Contains(out, "BenchmarkStudySweep") || !strings.Contains(out, "+0.0%") {
		t.Errorf("clean output missing the per-benchmark delta table:\n%s", out)
	}
}

func TestCompareInjectedRegressionFails(t *testing.T) {
	base := convertJSON(t, benchText)
	report := filepath.Join(t.TempDir(), "compare.txt")
	// Current comes in as raw bench text on stdin, as in the CI pipe.
	code, out, _ := runCLI(t, []string{"-compare", base, "-report", report}, regressedText)
	if code != 2 {
		t.Fatalf("injected regression exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkContentionSolve") || !strings.Contains(out, "allocs/op") {
		t.Errorf("report does not name the regression:\n%s", out)
	}
	// The delta table follows the regression lines, with the signed jump and
	// the over-threshold flags on the regressed row.
	if !strings.Contains(out, "+900.0%") || !strings.Contains(out, "allocs/op OVER") {
		t.Errorf("delta table missing signed deltas or flags:\n%s", out)
	}
	saved, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if string(saved) != out {
		t.Errorf("-report file differs from stdout:\n%s\nvs\n%s", saved, out)
	}
}

func TestCompareThresholdFlags(t *testing.T) {
	base := convertJSON(t, benchText)
	cur := convertJSON(t, regressedText)
	// Thresholds opened wide enough to admit the 10x/100x jump.
	code, out, _ := runCLI(t, []string{
		"-compare", base, "-current", cur,
		"-ns-pct", "2000", "-allocs-pct", "100000", "-allocs-slack", "0",
	}, "")
	if code != 0 {
		t.Fatalf("widened thresholds still exited %d:\n%s", code, out)
	}
}

func TestCompareEmptyCurrentFails(t *testing.T) {
	base := convertJSON(t, benchText)
	code, _, errb := runCLI(t, []string{"-compare", base}, "PASS\n")
	if code != 1 {
		t.Fatalf("empty current exited %d, want 1: %s", code, errb)
	}
	if !strings.Contains(errb, "no benchmark results parsed") {
		t.Errorf("stderr = %q", errb)
	}
}

func TestCompareMissingBaselineFileFails(t *testing.T) {
	code, _, errb := runCLI(t, []string{"-compare", filepath.Join(t.TempDir(), "nope.json")}, benchText)
	if code != 1 {
		t.Fatalf("missing baseline exited %d, want 1: %s", code, errb)
	}
}

// TestCommittedBaselineIsSelfClean is the acceptance check for the committed
// gate: the baseline at the repo root must compare clean against itself with
// the exact thresholds CI uses.
func TestCommittedBaselineIsSelfClean(t *testing.T) {
	base := filepath.Join("..", "..", "BENCH_baseline.json")
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	code, out, errb := runCLI(t, []string{
		"-compare", base, "-current", base,
		"-ns-pct", "400", "-allocs-pct", "10", "-allocs-slack", "64", "-min-ns", "1000",
	}, "")
	if code != 0 {
		t.Fatalf("committed baseline vs itself exited %d:\n%s%s", code, out, errb)
	}
}

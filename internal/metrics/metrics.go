// Package metrics implements the system-level performance metrics of the
// study: system throughput (STP, also called weighted speedup), average
// normalized turnaround time (ANTT), harmonic and arithmetic means, speedup
// and the energy-delay product.
package metrics

import (
	"fmt"
	"math"
)

// STP returns the system throughput of a multi-program workload: the sum of
// per-program progress rates normalized to each program's isolated rate on
// the reference (big) core. rates and soloRates are in the same units
// (e.g. µops per nanosecond).
func STP(rates, soloRates []float64) (float64, error) {
	if len(rates) != len(soloRates) {
		return 0, fmt.Errorf("metrics: %d rates vs %d solo rates", len(rates), len(soloRates))
	}
	var stp float64
	for i := range rates {
		if soloRates[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive solo rate for program %d", i)
		}
		stp += rates[i] / soloRates[i]
	}
	return stp, nil
}

// ANTT returns the average normalized turnaround time: the arithmetic mean
// of per-program slowdowns versus isolated execution on the reference core.
// A value of 1 means no slowdown; larger is worse.
func ANTT(rates, soloRates []float64) (float64, error) {
	if len(rates) != len(soloRates) {
		return 0, fmt.Errorf("metrics: %d rates vs %d solo rates", len(rates), len(soloRates))
	}
	if len(rates) == 0 {
		return 0, fmt.Errorf("metrics: empty workload")
	}
	var sum float64
	for i := range rates {
		if rates[i] <= 0 {
			return 0, fmt.Errorf("metrics: non-positive rate for program %d", i)
		}
		sum += soloRates[i] / rates[i]
	}
	return sum / float64(len(rates)), nil
}

// HarmonicMean returns the harmonic mean of vs; it is the correct average
// for rate metrics such as STP. It returns an error on empty or non-positive
// input.
func HarmonicMean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("metrics: harmonic mean of empty slice")
	}
	var inv float64
	for i, v := range vs {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: harmonic mean with non-positive value at %d", i)
		}
		inv += 1 / v
	}
	return float64(len(vs)) / inv, nil
}

// Mean returns the arithmetic mean, or zero for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Speedup returns newTime-based speedup given baseline and improved
// execution times.
func Speedup(baselineSeconds, improvedSeconds float64) (float64, error) {
	if baselineSeconds <= 0 || improvedSeconds <= 0 {
		return 0, fmt.Errorf("metrics: non-positive times %g/%g", baselineSeconds, improvedSeconds)
	}
	return baselineSeconds / improvedSeconds, nil
}

// EDP returns the energy-delay product.
func EDP(energyJoules, delaySeconds float64) float64 { return energyJoules * delaySeconds }

// WeightedAverage returns Σ w[i]·v[i] / Σ w[i]. Weights must be finite and
// non-negative with a positive sum; values must be finite, so a NaN or Inf
// produced upstream fails loudly instead of silently poisoning a result
// table.
func WeightedAverage(values, weights []float64) (float64, error) {
	if len(values) != len(weights) {
		return 0, fmt.Errorf("metrics: %d values vs %d weights", len(values), len(weights))
	}
	var num, den float64
	for i := range values {
		if weights[i] < 0 || math.IsNaN(weights[i]) || math.IsInf(weights[i], 0) {
			return 0, fmt.Errorf("metrics: bad weight %g at %d", weights[i], i)
		}
		if math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return 0, fmt.Errorf("metrics: non-finite value %g at %d", values[i], i)
		}
		num += values[i] * weights[i]
		den += weights[i]
	}
	if den <= 0 {
		return 0, fmt.Errorf("metrics: zero total weight")
	}
	return num / den, nil
}

// WeightedHarmonicMean returns the weighted harmonic mean of values, used to
// average STP across thread-count distributions (STP is a rate metric).
// Weights must be finite and non-negative with a positive sum; values with
// non-zero weight must be positive and finite.
func WeightedHarmonicMean(values, weights []float64) (float64, error) {
	if len(values) != len(weights) {
		return 0, fmt.Errorf("metrics: %d values vs %d weights", len(values), len(weights))
	}
	var inv, den float64
	for i := range values {
		if weights[i] < 0 || math.IsNaN(weights[i]) || math.IsInf(weights[i], 0) {
			return 0, fmt.Errorf("metrics: bad weight %g at %d", weights[i], i)
		}
		if weights[i] == 0 {
			continue
		}
		if values[i] <= 0 || math.IsNaN(values[i]) || math.IsInf(values[i], 0) {
			return 0, fmt.Errorf("metrics: non-positive or non-finite value %g at %d", values[i], i)
		}
		inv += weights[i] / values[i]
		den += weights[i]
	}
	if den <= 0 {
		return 0, fmt.Errorf("metrics: zero total weight")
	}
	return den / inv, nil
}

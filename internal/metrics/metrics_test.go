package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSTP(t *testing.T) {
	stp, err := STP([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(stp, 1.5) {
		t.Fatalf("STP = %g, want 1.5", stp)
	}
}

func TestSTPErrors(t *testing.T) {
	if _, err := STP([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := STP([]float64{1}, []float64{0}); err == nil {
		t.Error("zero solo rate accepted")
	}
}

func TestANTT(t *testing.T) {
	antt, err := ANTT([]float64{1, 1}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(antt, 3) { // slowdowns 2 and 4, mean 3
		t.Fatalf("ANTT = %g, want 3", antt)
	}
	if _, err := ANTT(nil, nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := ANTT([]float64{0}, []float64{1}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSTPAndANTTIdentityAtIsolation(t *testing.T) {
	// Running each program at its solo rate: STP = n, ANTT = 1.
	rates := []float64{1.5, 2.5, 0.5}
	stp, _ := STP(rates, rates)
	antt, _ := ANTT(rates, rates)
	if !almost(stp, 3) || !almost(antt, 1) {
		t.Fatalf("isolation identity violated: stp=%g antt=%g", stp, antt)
	}
}

func TestHarmonicMean(t *testing.T) {
	h, err := HarmonicMean([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(h, 3/(1+0.5+0.25)) {
		t.Fatalf("harmonic mean %g", h)
	}
	if _, err := HarmonicMean(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := HarmonicMean([]float64{1, 0}); err == nil {
		t.Error("zero value accepted")
	}
}

func TestHarmonicLEArithmeticProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r) + 1 // positive
		}
		h, err := HarmonicMean(vs)
		if err != nil {
			return false
		}
		return h <= Mean(vs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(10, 5)
	if err != nil || !almost(s, 2) {
		t.Fatalf("speedup %g err %v", s, err)
	}
	if _, err := Speedup(0, 5); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := Speedup(5, 0); err == nil {
		t.Error("zero improved accepted")
	}
}

func TestEDP(t *testing.T) {
	if !almost(EDP(10, 2), 20) {
		t.Fatal("EDP wrong")
	}
}

func TestWeightedAverage(t *testing.T) {
	v, err := WeightedAverage([]float64{1, 3}, []float64{1, 1})
	if err != nil || !almost(v, 2) {
		t.Fatalf("weighted average %g err %v", v, err)
	}
	v, err = WeightedAverage([]float64{1, 3}, []float64{3, 1})
	if err != nil || !almost(v, 1.5) {
		t.Fatalf("weighted average %g err %v", v, err)
	}
	if _, err := WeightedAverage([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedAverage([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedAverage([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestWeightedHarmonicMean(t *testing.T) {
	// Equal weights reduce to the plain harmonic mean.
	vs := []float64{1, 2, 4}
	w := []float64{1, 1, 1}
	wh, err := WeightedHarmonicMean(vs, w)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := HarmonicMean(vs)
	if !almost(wh, h) {
		t.Fatalf("weighted %g vs plain %g", wh, h)
	}
	// Zero-weight entries are ignored even if their value would be invalid.
	wh, err = WeightedHarmonicMean([]float64{2, -1}, []float64{1, 0})
	if err != nil || !almost(wh, 2) {
		t.Fatalf("zero-weight skip: %g err %v", wh, err)
	}
	if _, err := WeightedHarmonicMean([]float64{0}, []float64{1}); err == nil {
		t.Error("non-positive value with positive weight accepted")
	}
	if _, err := WeightedHarmonicMean([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestWeightedAverageRejectsNonFiniteValues(t *testing.T) {
	// A NaN or Inf value must error out, not silently propagate into the
	// result table.
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := WeightedAverage([]float64{1, bad}, []float64{1, 1}); err == nil {
			t.Errorf("value %g accepted", bad)
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := WeightedAverage([]float64{1, 1}, []float64{1, bad}); err == nil {
			t.Errorf("weight %g accepted", bad)
		}
	}
}

func TestWeightedHarmonicMeanRejectsNonFiniteValues(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := WeightedHarmonicMean([]float64{1, bad}, []float64{1, 1}); err == nil {
			t.Errorf("value %g accepted", bad)
		}
		if _, err := WeightedHarmonicMean([]float64{1, 1}, []float64{1, bad}); err == nil {
			t.Errorf("weight %g accepted", bad)
		}
	}
	// A non-finite value under zero weight is still skipped.
	if v, err := WeightedHarmonicMean([]float64{2, math.NaN()}, []float64{1, 0}); err != nil || !almost(v, 2) {
		t.Errorf("zero-weight NaN value: %g err %v", v, err)
	}
}

func TestWeightedHarmonicWeightShift(t *testing.T) {
	// Shifting weight toward the smaller value must lower the mean.
	lo, _ := WeightedHarmonicMean([]float64{1, 4}, []float64{3, 1})
	hi, _ := WeightedHarmonicMean([]float64{1, 4}, []float64{1, 3})
	if lo >= hi {
		t.Fatalf("weight shift had no effect: %g >= %g", lo, hi)
	}
}

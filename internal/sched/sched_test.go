package sched

import (
	"sync"
	"testing"

	"smtflex/internal/contention"

	"smtflex/internal/config"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(60_000) })
	return src
}

func mix(benches ...string) workload.Mix {
	return workload.Mix{ID: "test", Programs: benches}
}

func homogMix(bench string, n int) workload.Mix {
	progs := make([]string, n)
	for i := range progs {
		progs[i] = bench
	}
	return mix(progs...)
}

func mustPlace(t *testing.T, design string, smt bool, m workload.Mix) (config.Design, []int) {
	t.Helper()
	d, err := config.DesignByName(design, smt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(d, m, source())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	return d, p.CoreOf
}

func occupancy(coreOf []int, cores int) []int {
	occ := make([]int, cores)
	for _, c := range coreOf {
		occ[c]++
	}
	return occ
}

func TestSpreadBeforeSMT(t *testing.T) {
	// With as many threads as cores, every thread gets its own core.
	d, coreOf := mustPlace(t, "4B", true, homogMix("tonto", 4))
	occ := occupancy(coreOf, d.NumCores())
	for c, n := range occ {
		if n != 1 {
			t.Fatalf("core %d has %d threads: %v", c, occ, coreOf)
		}
	}
}

func TestBalancedSMTOverflow(t *testing.T) {
	// Eight identical threads on 4 big cores: 2 per core (no piling).
	d, coreOf := mustPlace(t, "4B", true, homogMix("hmmer", 8))
	occ := occupancy(coreOf, d.NumCores())
	for c, n := range occ {
		if n != 2 {
			t.Fatalf("core %d has %d threads, want 2: %v", c, n, occ)
		}
	}
}

func TestBigCoresFirst(t *testing.T) {
	// Fewer threads than cores on a heterogeneous design: the big cores
	// (lowest indices) fill before small ones.
	d, coreOf := mustPlace(t, "3B5s", true, homogMix("gcc", 3))
	occ := occupancy(coreOf, d.NumCores())
	for c := 0; c < 3; c++ {
		if occ[c] != 1 {
			t.Fatalf("big core %d empty: %v", c, occ)
		}
	}
	for c := 3; c < d.NumCores(); c++ {
		if occ[c] != 0 {
			t.Fatalf("small core %d used with big cores free: %v", c, occ)
		}
	}
}

func TestBigCoreSensitiveThreadGetsBigCore(t *testing.T) {
	// tonto gains far more from the big core than mcf does; with one big
	// core and both threads placed, tonto must land on it.
	d, coreOf := mustPlace(t, "1B15s", true, mix("mcf", "tonto"))
	_ = d
	tontoCore := coreOf[1]
	if tontoCore != 0 {
		t.Fatalf("tonto on core %d, want the big core 0 (mcf on %d)", tontoCore, coreOf[0])
	}
}

func TestProfilesMatchCoreTypes(t *testing.T) {
	d, err := config.DesignByName("2B10s", true)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(d, homogMix("soplex", 12), source())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p.CoreOf {
		if p.Profiles[i].Core != d.Cores[c].Type {
			t.Fatalf("thread %d: profile for %v on %v core", i, p.Profiles[i].Core, d.Cores[c].Type)
		}
	}
}

func TestEmptyMixRejected(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	if _, err := Place(d, workload.Mix{ID: "empty"}, source()); err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	if _, err := Place(d, mix("quake3"), source()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNoSMTTimeSharing(t *testing.T) {
	// 8 threads on 4 cores without SMT: time sharing, 2 per core.
	d, coreOf := mustPlace(t, "4B", false, homogMix("bzip2", 8))
	occ := occupancy(coreOf, d.NumCores())
	for c, n := range occ {
		if n != 2 {
			t.Fatalf("core %d has %d threads, want 2: %v", c, n, occ)
		}
	}
}

func TestFullChipPlacement(t *testing.T) {
	// 24 threads on every design: all threads placed, no core beyond its
	// context count by more than the inevitable time-sharing overflow.
	for _, name := range []string{"4B", "8m", "20s", "3B2m", "1B15s"} {
		d, coreOf := mustPlace(t, name, true, homogMix("gobmk", 24))
		occ := occupancy(coreOf, d.NumCores())
		total := 0
		for _, n := range occ {
			total += n
		}
		if total != 24 {
			t.Fatalf("%s: %d threads placed", name, total)
		}
	}
}

func TestHeterogeneousMixUsesSMTComplementarity(t *testing.T) {
	// Five threads on 4B: someone shares a core. The placement must still
	// give every thread a finite positive marginal estimate (no panic, all
	// cores valid).
	d, coreOf := mustPlace(t, "4B", true, mix("mcf", "tonto", "hmmer", "libquantum", "soplex"))
	occ := occupancy(coreOf, d.NumCores())
	max := 0
	for _, n := range occ {
		if n > max {
			max = n
		}
	}
	if max > 2 {
		t.Fatalf("5 threads on 4 cores should pair at most once: %v", occ)
	}
}

func TestPlaceRefinedNeverWorse(t *testing.T) {
	d, err := config.DesignByName("3B5s", true)
	if err != nil {
		t.Fatal(err)
	}
	m := mix("mcf", "tonto", "hmmer", "libquantum", "soplex", "gobmk")

	greedy, err := Place(d, m, source())
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := contention.Solve(greedy)
	if err != nil {
		t.Fatal(err)
	}
	var baseScore float64
	for _, th := range baseRes.Threads {
		baseScore += th.UopsPerNs
	}

	refined, score, err := PlaceRefined(d, m, source(), RefineBudget{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Validate(); err != nil {
		t.Fatalf("refined placement invalid: %v", err)
	}
	if score < baseScore*0.999 {
		t.Fatalf("refinement regressed: %.4f -> %.4f", baseScore, score)
	}
}

func TestPlaceRefinedCustomObjective(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	m := homogMix("bzip2", 5)
	// Objective: fairness (max-min rate). Must still produce a valid result.
	_, score, err := PlaceRefined(d, m, source(), RefineBudget{
		MaxPasses: 1,
		Objective: func(r contention.Result) float64 {
			min := r.Threads[0].UopsPerNs
			for _, th := range r.Threads {
				if th.UopsPerNs < min {
					min = th.UopsPerNs
				}
			}
			return min
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("fairness objective %g", score)
	}
}

package sched

import (
	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/interval"
	"smtflex/internal/workload"
)

// RefineBudget bounds the local-search effort of PlaceRefined.
type RefineBudget struct {
	// MaxPasses is the number of full improvement sweeps (default 2).
	MaxPasses int
	// Objective scores a solved placement; the default is raw chip
	// throughput (sum of per-thread rates). The paper's offline analysis
	// picks the best-performing schedule, which for identical normalization
	// is the same ordering as STP.
	Objective func(contention.Result) float64
}

func (b RefineBudget) passes() int {
	if b.MaxPasses <= 0 {
		return 2
	}
	return b.MaxPasses
}

func (b RefineBudget) objective() func(contention.Result) float64 {
	if b.Objective != nil {
		return b.Objective
	}
	return func(r contention.Result) float64 {
		var sum float64
		for _, th := range r.Threads {
			sum += th.UopsPerNs
		}
		return sum
	}
}

// PlaceRefined runs Place and then improves the assignment by local search:
// each pass tries, for every thread, moving it to every other core and, for
// every pair of threads on different cores, swapping them — keeping any
// change that raises the objective under the full contention solve. This is
// the paper's offline best-schedule analysis made explicit; it is much more
// expensive than Place and intended for small studies and validation of the
// greedy heuristic.
func PlaceRefined(d config.Design, mix workload.Mix, src ProfileSource, budget RefineBudget) (contention.Placement, float64, error) {
	p, err := Place(d, mix, src)
	if err != nil {
		return contention.Placement{}, 0, err
	}
	objective := budget.objective()
	// One reused solver for the whole local search: refinement solves
	// O(passes × threads × cores) candidate placements, and the scratch
	// reuse keeps that loop allocation-free. The Result seen by Objective
	// aliases the solver's buffers and is valid only during the call.
	solver := contention.NewSolver()
	score := func(pl contention.Placement) (float64, error) {
		res, err := solver.Solve(pl)
		if err != nil {
			return 0, err
		}
		return objective(res), nil
	}

	// Profiles per thread per core type, for re-assignments.
	profiles, err := profilesByType(d, mix, src)
	if err != nil {
		return contention.Placement{}, 0, err
	}

	best, err := score(p)
	if err != nil {
		return contention.Placement{}, 0, err
	}
	n := len(p.CoreOf)
	for pass := 0; pass < budget.passes(); pass++ {
		improved := false

		// Moves: thread i -> core c.
		for i := 0; i < n; i++ {
			orig := p.CoreOf[i]
			for c := 0; c < d.NumCores(); c++ {
				if c == orig {
					continue
				}
				cand := clonePlacement(p)
				cand.CoreOf[i] = c
				cand.Profiles[i] = profiles[i][d.Cores[c].Type]
				v, err := score(cand)
				if err != nil {
					return contention.Placement{}, 0, err
				}
				if v > best*(1+1e-9) {
					p, best, improved = cand, v, true
					break
				}
			}
		}

		// Swaps: threads i and j exchange cores.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if p.CoreOf[i] == p.CoreOf[j] {
					continue
				}
				cand := clonePlacement(p)
				cand.CoreOf[i], cand.CoreOf[j] = p.CoreOf[j], p.CoreOf[i]
				cand.Profiles[i] = profiles[i][d.Cores[cand.CoreOf[i]].Type]
				cand.Profiles[j] = profiles[j][d.Cores[cand.CoreOf[j]].Type]
				v, err := score(cand)
				if err != nil {
					return contention.Placement{}, 0, err
				}
				if v > best*(1+1e-9) {
					p, best = cand, v
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return p, best, nil
}

func clonePlacement(p contention.Placement) contention.Placement {
	out := p
	out.CoreOf = append([]int(nil), p.CoreOf...)
	out.Profiles = append([]*interval.Profile(nil), p.Profiles...)
	return out
}

// profilesByType resolves each thread's profile for every core type present
// in the design.
func profilesByType(d config.Design, mix workload.Mix, src ProfileSource) ([]map[config.CoreType]*interval.Profile, error) {
	out := make([]map[config.CoreType]*interval.Profile, mix.NumThreads())
	for i, name := range mix.Programs {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out[i] = make(map[config.CoreType]*interval.Profile)
		for _, cc := range d.Cores {
			if _, ok := out[i][cc.Type]; !ok {
				p, err := src.Profile(spec, cc.Type)
				if err != nil {
					return nil, err
				}
				out[i][cc.Type] = p
			}
		}
	}
	return out, nil
}

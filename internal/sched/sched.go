// Package sched maps the threads of a workload onto the cores of a design
// point, following the paper's scheduling principles: schedule threads on
// the big cores before the small ones, spread threads across cores before
// engaging SMT, and use offline analysis (here: the interval model) to pick
// which thread goes to which core and which threads co-run on an SMT core.
package sched

import (
	"context"
	"fmt"
	"sort"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/interval"
	"smtflex/internal/obs"
	"smtflex/internal/trace"
	"smtflex/internal/workload"
)

// ProfileSource provides benchmark profiles per core type; package profiler
// implements it. A failed measurement reports an error instead of a profile;
// the scheduler propagates it to the caller.
type ProfileSource interface {
	Profile(spec trace.Spec, ct config.CoreType) (*interval.Profile, error)
}

// CtxProfileSource is implemented by profile sources whose lookups accept a
// context for observability (package profiler). PlaceCtx uses it when the
// source offers it, so profile spans nest under the placement span.
type CtxProfileSource interface {
	ProfileCtx(ctx context.Context, spec trace.Spec, ct config.CoreType) (*interval.Profile, error)
}

// ctxSource adapts a CtxProfileSource back to ProfileSource with a fixed
// context, so Place's single code path serves both entry points. The stored
// context is purely observational (never used for cancellation).
type ctxSource struct {
	ctx context.Context
	cs  CtxProfileSource
}

func (c ctxSource) Profile(spec trace.Spec, ct config.CoreType) (*interval.Profile, error) {
	return c.cs.ProfileCtx(c.ctx, spec, ct)
}

// PlaceCtx is Place with tracing: when ctx carries an active trace the
// placement is recorded as a "sched.place" span, with the profile lookups it
// triggers nested inside when src implements CtxProfileSource. The placement
// returned is identical to Place's.
func PlaceCtx(ctx context.Context, d config.Design, mix workload.Mix, src ProfileSource) (contention.Placement, error) {
	ctx, sp := obs.StartSpan(ctx, "sched.place")
	sp.SetAttr("design", d.Name)
	sp.SetAttr("mix", mix.ID)
	sp.SetAttr("threads", mix.NumThreads())
	defer sp.End()
	if cs, ok := src.(CtxProfileSource); ok {
		src = ctxSource{ctx: ctx, cs: cs}
	}
	return Place(d, mix, src)
}

// soloIPC estimates a thread's isolated IPC on core cc with a full window
// and uncontended memory — the "offline analysis" signal.
func soloIPC(p *interval.Profile, cc config.Core) float64 {
	sh := interval.Shares{
		L1I: float64(cc.L1I.SizeBytes),
		L1D: float64(cc.L1D.SizeBytes),
		L2:  float64(cc.L2.SizeBytes),
		LLC: float64(config.LLCConfig().SizeBytes),
		// Uncontended: 45ns at the core's frequency plus one bus transfer.
		MemLatencyCycles: 45*cc.FrequencyGHz + 64/(8.0/cc.FrequencyGHz),
	}
	w := cc.ROBSize
	if !cc.OutOfOrder {
		w = 2 * cc.Width
	}
	return 1 / p.Evaluate(cc, w, sh).Total()
}

// Place builds a contention.Placement for the mix on the design.
//
// Phase 1 gives each thread its own core while cores remain, big cores
// first, assigning the threads that benefit most from a big core (highest
// big-to-own-type IPC ratio) to the biggest cores. Phase 2 (more threads
// than cores) adds each remaining thread to the core where the projected
// marginal chip throughput is highest, respecting SMT context limits; with
// SMT disabled, excess threads time-share, filling big cores first.
func Place(d config.Design, mix workload.Mix, src ProfileSource) (contention.Placement, error) {
	if err := d.Validate(); err != nil {
		return contention.Placement{}, err
	}
	n := mix.NumThreads()
	if n == 0 {
		return contention.Placement{}, fmt.Errorf("sched: empty mix %s", mix.ID)
	}

	// Resolve specs and profiles per core type present in the design.
	specs := make([]trace.Spec, n)
	for i, name := range mix.Programs {
		s, err := workload.ByName(name)
		if err != nil {
			return contention.Placement{}, err
		}
		specs[i] = s
	}
	types := map[config.CoreType]bool{}
	for _, cc := range d.Cores {
		types[cc.Type] = true
	}
	prof := make([]map[config.CoreType]*interval.Profile, n)
	for i := range prof {
		prof[i] = make(map[config.CoreType]*interval.Profile)
		for t := range types {
			p, err := src.Profile(specs[i], t)
			if err != nil {
				return contention.Placement{}, fmt.Errorf("sched: profiling %s on %s: %w", specs[i].Name, t, err)
			}
			prof[i][t] = p
		}
	}

	// Offline signal: solo IPC of each thread on each core of the design.
	ipcOn := make([]map[config.CoreType]float64, n)
	typeCfg := map[config.CoreType]config.Core{}
	for _, cc := range d.Cores {
		if _, ok := typeCfg[cc.Type]; !ok {
			typeCfg[cc.Type] = cc
		}
	}
	for i := range ipcOn {
		ipcOn[i] = make(map[config.CoreType]float64)
		for t, cc := range typeCfg {
			ipcOn[i][t] = soloIPC(prof[i][t], cc)
		}
	}

	coreOf := make([]int, n)
	for i := range coreOf {
		coreOf[i] = -1
	}
	perCore := make([][]int, len(d.Cores))

	// Phase 1: one thread per core, big cores first. Order threads by how
	// much they gain from the biggest core type relative to the smallest
	// present, so big-core-sensitive threads land on big cores.
	smallest := d.Cores[len(d.Cores)-1].Type
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := order[a], order[b]
		ra := ipcOn[ta][d.Cores[0].Type] / ipcOn[ta][smallest]
		rb := ipcOn[tb][d.Cores[0].Type] / ipcOn[tb][smallest]
		return ra > rb
	})
	phase1 := n
	if phase1 > len(d.Cores) {
		phase1 = len(d.Cores)
	}
	for k := 0; k < phase1; k++ {
		ti := order[k]
		coreOf[ti] = k
		perCore[k] = append(perCore[k], ti)
	}

	// Phase 2: place remaining threads by best marginal throughput. The
	// tiny occupancy penalty breaks exact ties (identical threads under
	// time sharing have zero marginal gain everywhere) toward the least
	// loaded core, i.e. round-robin.
	const tieBreak = 1e-6
	for k := phase1; k < n; k++ {
		ti := order[k]
		best, bestGain := -1, 0.0
		for c := 0; c < len(d.Cores); c++ {
			gain := marginalGain(d, c, perCore[c], ti, ipcOn, prof) -
				tieBreak*float64(len(perCore[c]))
			if best < 0 || gain > bestGain {
				best, bestGain = c, gain
			}
		}
		coreOf[ti] = best
		perCore[best] = append(perCore[best], ti)
	}

	profiles := make([]*interval.Profile, n)
	for i := range profiles {
		profiles[i] = prof[i][d.Cores[coreOf[i]].Type]
	}
	return contention.Placement{Design: d, CoreOf: coreOf, Profiles: profiles}, nil
}

// marginalGain projects the change in core throughput (µops per ns) from
// adding thread ti to core c.
func marginalGain(d config.Design, c int, residents []int, ti int,
	ipcOn []map[config.CoreType]float64,
	prof []map[config.CoreType]*interval.Profile) float64 {

	cc := d.Cores[c]
	before := coreThroughput(d, cc, residents, nil, ipcOn, prof)
	after := coreThroughput(d, cc, residents, &ti, ipcOn, prof)
	return after - before
}

// coreThroughput estimates the summed IPC×timeShare of the residents (plus
// an optional extra thread) on core cc, accounting for ROB partitioning,
// width sharing and time sharing.
func coreThroughput(d config.Design, cc config.Core, residents []int, extra *int,
	ipcOn []map[config.CoreType]float64,
	prof []map[config.CoreType]*interval.Profile) float64 {

	ths := residents
	if extra != nil {
		ths = append(append([]int(nil), residents...), *extra)
	}
	k := len(ths)
	if k == 0 {
		return 0
	}
	if !d.SMTEnabled {
		// Time sharing: the core delivers the average of its threads' solo
		// throughputs.
		var sum float64
		for _, t := range ths {
			sum += ipcOn[t][cc.Type]
		}
		return sum / float64(k)
	}
	coRunners := k
	timeShare := 1.0
	if k > cc.SMTContexts {
		coRunners = cc.SMTContexts
		timeShare = float64(cc.SMTContexts) / float64(k)
	}
	part := interval.Partition(cc, coRunners)
	ipcs := make([]float64, k)
	for i, t := range ths {
		sh := interval.Shares{
			L1I:              float64(cc.L1I.SizeBytes) / float64(coRunners),
			L1D:              float64(cc.L1D.SizeBytes) / float64(coRunners),
			L2:               float64(cc.L2.SizeBytes) / float64(coRunners),
			LLC:              float64(config.LLCConfig().SizeBytes) / 8,
			MemLatencyCycles: 45 * cc.FrequencyGHz * 1.5,
		}
		ipcs[i] = 1 / prof[t][cc.Type].Evaluate(cc, part, sh).Total()
	}
	if coRunners > 1 {
		interval.ShareWidth(ipcs, cc.Width)
	}
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	return sum * timeShare * cc.FrequencyGHz
}

package dist

import (
	"math"
	"testing"
)

func TestAllDistributionsValid(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestUniform(t *testing.T) {
	u := Uniform()
	for n := 1; n <= MaxThreads; n++ {
		if w := u.Weight(n); math.Abs(w-1.0/MaxThreads) > 1e-12 {
			t.Fatalf("uniform weight(%d) = %g", n, w)
		}
	}
	if math.Abs(u.Mean()-12.5) > 1e-9 {
		t.Fatalf("uniform mean %g, want 12.5", u.Mean())
	}
}

func TestWeightOutOfRange(t *testing.T) {
	u := Uniform()
	if u.Weight(0) != 0 || u.Weight(25) != 0 || u.Weight(-3) != 0 {
		t.Fatal("out-of-range weights must be zero")
	}
}

func TestDatacenterShape(t *testing.T) {
	d := Datacenter()
	// Low-utilization peak: 1 thread is the most likely single count.
	for n := 2; n <= MaxThreads; n++ {
		if d.Weight(n) > d.Weight(1) {
			t.Fatalf("weight(%d)=%g exceeds weight(1)=%g", n, d.Weight(n), d.Weight(1))
		}
	}
	// Second peak around 7-9 threads: weight(8) above the valley at 5.
	if d.Weight(8) <= d.Weight(5) {
		t.Fatal("datacenter distribution lacks the 30-40% utilization bump")
	}
	// Skewed low: mean well below the midpoint.
	if d.Mean() >= 12 {
		t.Fatalf("datacenter mean %g not skewed low", d.Mean())
	}
}

func TestMirroredDatacenter(t *testing.T) {
	dc, mir := Datacenter(), MirroredDatacenter()
	for n := 1; n <= MaxThreads; n++ {
		if math.Abs(dc.Weight(n)-mir.Weight(MaxThreads+1-n)) > 1e-12 {
			t.Fatalf("mirror broken at %d", n)
		}
	}
	if math.Abs(dc.Mean()+mir.Mean()-(MaxThreads+1)) > 1e-9 {
		t.Fatalf("means %g + %g should sum to 25", dc.Mean(), mir.Mean())
	}
	if mir.Mean() <= 12.5 {
		t.Fatalf("mirrored mean %g not skewed high", mir.Mean())
	}
}

func TestValidateRejects(t *testing.T) {
	var d Distribution
	d.Name = "zero"
	if err := d.Validate(); err == nil {
		t.Error("all-zero distribution accepted")
	}
	d = Uniform()
	d.Weights[0] = -d.Weights[0]
	if err := d.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

// Package dist provides the active-thread-count distributions used to
// aggregate performance across varying degrees of thread-level parallelism:
// uniform over 1..24 threads, the datacenter utilization distribution
// adapted from Barroso & Hölzle (a peak at one thread and one around 7–9
// threads), and the mirrored datacenter distribution modelling a heavily
// loaded server park.
package dist

import "fmt"

// MaxThreads is the study's maximum active thread count.
const MaxThreads = 24

// Distribution is a probability mass over thread counts 1..MaxThreads.
// Weights[i] is the probability of i+1 active threads.
type Distribution struct {
	Name    string
	Weights [MaxThreads]float64
}

// Validate checks normalization.
func (d Distribution) Validate() error {
	var sum float64
	for i, w := range d.Weights {
		if w < 0 {
			return fmt.Errorf("dist %s: negative weight at %d threads", d.Name, i+1)
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("dist %s: weights sum to %g, want 1", d.Name, sum)
	}
	return nil
}

// Weight returns the probability of exactly n active threads.
func (d Distribution) Weight(n int) float64 {
	if n < 1 || n > MaxThreads {
		return 0
	}
	return d.Weights[n-1]
}

// Mean returns the expected thread count.
func (d Distribution) Mean() float64 {
	var m float64
	for i, w := range d.Weights {
		m += float64(i+1) * w
	}
	return m
}

// Uniform returns the uniform distribution over 1..24 threads.
func Uniform() Distribution {
	d := Distribution{Name: "uniform"}
	for i := range d.Weights {
		d.Weights[i] = 1.0 / MaxThreads
	}
	return d
}

// Datacenter returns the datacenter CPU-utilization distribution of
// Figure 10(a): a peak at 1 thread (near-idle machines) and a second peak at
// 7–9 threads (~30–40% utilization), with a thin tail to full utilization.
// The shape follows Barroso & Hölzle's reported utilization histogram
// adapted to a 24-thread workload.
func Datacenter() Distribution {
	d := Distribution{Name: "datacenter"}
	// Hand-digitized shape: bimodal with the low-utilization peak dominant.
	shape := [MaxThreads]float64{
		// 1..6 threads: near-idle peak decaying
		0.105, 0.075, 0.062, 0.058, 0.060, 0.068,
		// 7..9: the 30-40% utilization peak
		0.080, 0.088, 0.082,
		// 10..16: decay
		0.068, 0.055, 0.044, 0.035, 0.028, 0.022, 0.017,
		// 17..24: thin high-utilization tail
		0.013, 0.010, 0.008, 0.007, 0.006, 0.004, 0.003, 0.002,
	}
	var sum float64
	for _, w := range shape {
		sum += w
	}
	for i, w := range shape {
		d.Weights[i] = w / sum
	}
	return d
}

// MirroredDatacenter returns the datacenter distribution mirrored around the
// center (thread count n maps to 25-n): peaks at 24 and around 16–18
// threads, modelling a heavily loaded server park.
func MirroredDatacenter() Distribution {
	dc := Datacenter()
	d := Distribution{Name: "mirrored-datacenter"}
	for i := range d.Weights {
		d.Weights[i] = dc.Weights[MaxThreads-1-i]
	}
	return d
}

// All returns every distribution the study uses.
func All() []Distribution {
	return []Distribution{Uniform(), Datacenter(), MirroredDatacenter()}
}

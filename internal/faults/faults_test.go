package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestDisabledCheckPasses(t *testing.T) {
	Reset()
	for _, s := range Sites() {
		if err := Check(s); err != nil {
			t.Fatalf("disabled site %q returned %v", s, err)
		}
		if v := Corrupt(s, 1.5); v != 1.5 {
			t.Fatalf("disabled Corrupt changed value to %g", v)
		}
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeError})
	err := Check(SiteSolver)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed site returned %v, want ErrInjected", err)
	}
	// Other sites remain clean.
	if err := Check(SiteProfiler); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if Triggered(SiteSolver) != 1 {
		t.Fatalf("trigger count %d, want 1", Triggered(SiteSolver))
	}
	Disable(SiteSolver)
	if err := Check(SiteSolver); err != nil {
		t.Fatalf("disabled site still fires: %v", err)
	}
	if Triggered(SiteSolver) != 1 {
		t.Fatal("Disable cleared the trigger count; only Reset should")
	}
}

func TestCountLimitedSelfDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteWorker, Injection{Mode: ModeError, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Check(SiteWorker); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Check(SiteWorker); err != nil {
		t.Fatalf("site fired beyond its count: %v", err)
	}
	if Triggered(SiteWorker) != 2 {
		t.Fatalf("triggered %d, want 2", Triggered(SiteWorker))
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteHandler, Injection{Mode: ModePanic, Count: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic site did not panic")
			}
		}()
		Check(SiteHandler)
	}()
	if err := Check(SiteHandler); err != nil {
		t.Fatalf("panic site did not disarm after count: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteProfiler, Injection{Mode: ModeLatency, Latency: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Check(SiteProfiler); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
}

func TestNaNCorruption(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeNaN, Count: 1})
	// Check must not consume a NaN arming: the value path owns it.
	if err := Check(SiteSolver); err != nil {
		t.Fatalf("Check consumed/failed on a NaN arming: %v", err)
	}
	if v := Corrupt(SiteSolver, 42); !math.IsNaN(v) {
		t.Fatalf("Corrupt returned %g, want NaN", v)
	}
	if v := Corrupt(SiteSolver, 42); v != 42 {
		t.Fatalf("NaN injection did not disarm after count: %g", v)
	}
}

func TestCorruptIgnoresOtherModes(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeError, Count: 1})
	if v := Corrupt(SiteSolver, 7); v != 7 {
		t.Fatalf("Corrupt fired on an error arming: %g", v)
	}
	// The error arming must still be intact for Check.
	if err := Check(SiteSolver); !errors.Is(err, ErrInjected) {
		t.Fatalf("Corrupt consumed the error arming: %v", err)
	}
}

func TestMangleModes(t *testing.T) {
	Reset()
	defer Reset()
	payload := []byte(`{"stp":1.5,"antt":2.0}`)

	cases := []struct {
		mode Mode
		want func(got []byte) bool
	}{
		{ModeBitflip, func(got []byte) bool {
			return len(got) == len(payload) && string(got) != string(payload)
		}},
		{ModeTruncate, func(got []byte) bool {
			return len(got) == len(payload)/2 && string(got) == string(payload[:len(payload)/2])
		}},
		{ModeDuplicate, func(got []byte) bool {
			return len(got) == 2*len(payload) && string(got) == string(payload)+string(payload)
		}},
	}
	for _, tc := range cases {
		Reset()
		Enable(SiteWire, Injection{Mode: tc.mode, Count: 1})
		// Check must not consume a mangle arming: the byte path owns it.
		if err := Check(SiteWire); err != nil {
			t.Fatalf("%s: Check consumed/failed on a mangle arming: %v", tc.mode, err)
		}
		got := Mangle(SiteWire, payload)
		if !tc.want(got) {
			t.Fatalf("%s: Mangle returned %q from %q", tc.mode, got, payload)
		}
		if string(payload) != `{"stp":1.5,"antt":2.0}` {
			t.Fatalf("%s: Mangle mutated its input: %q", tc.mode, payload)
		}
		// Count-limited arming self-disarms after one firing.
		if again := Mangle(SiteWire, payload); string(again) != string(payload) {
			t.Fatalf("%s: mangle did not disarm after count: %q", tc.mode, again)
		}
		if Triggered(SiteWire) != 1 {
			t.Fatalf("%s: triggered %d, want 1", tc.mode, Triggered(SiteWire))
		}
	}
}

func TestMangleIgnoresOtherModesAndDisabled(t *testing.T) {
	Reset()
	defer Reset()
	payload := []byte(`{"v":1}`)
	if got := Mangle(SiteWire, payload); &got[0] != &payload[0] {
		t.Fatal("disabled Mangle did not return the input unchanged")
	}
	Enable(SiteWire, Injection{Mode: ModeError, Count: 1})
	if got := Mangle(SiteWire, payload); string(got) != string(payload) {
		t.Fatalf("Mangle fired on an error arming: %q", got)
	}
	// The error arming must still be intact for Check.
	if err := Check(SiteWire); !errors.Is(err, ErrInjected) {
		t.Fatalf("Mangle consumed the error arming: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := ParseSpec("solver=error,profiler=latency:50ms,handler=panic:3, memo=nan"); err != nil {
		t.Fatal(err)
	}
	if err := Check(SiteSolver); !errors.Is(err, ErrInjected) {
		t.Fatalf("spec did not arm solver: %v", err)
	}
	if v := Corrupt(SiteMemo, 1); !math.IsNaN(v) {
		t.Fatal("spec did not arm memo NaN")
	}
	Reset()

	if err := ParseSpec("wire=bitflip:2"); err != nil {
		t.Fatalf("mangle spec rejected: %v", err)
	}
	if got := Mangle(SiteWire, []byte("abcd")); string(got) == "abcd" {
		t.Fatal("spec did not arm wire bitflip")
	}
	Reset()

	for _, bad := range []string{
		"bogus=error",         // unknown site
		"solver",              // no mode
		"solver=explode",      // unknown mode
		"solver=latency",      // latency without duration
		"solver=latency:soon", // bad duration
		"solver=error:zero",   // bad count
		"solver=error:-1",     // non-positive count
		"solver=panic:0",      // zero count
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		Reset()
	}

	if err := ParseSpec("  "); err != nil {
		t.Fatalf("blank spec rejected: %v", err)
	}
}

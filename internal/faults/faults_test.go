package faults

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestDisabledCheckPasses(t *testing.T) {
	Reset()
	for _, s := range Sites() {
		if err := Check(s); err != nil {
			t.Fatalf("disabled site %q returned %v", s, err)
		}
		if v := Corrupt(s, 1.5); v != 1.5 {
			t.Fatalf("disabled Corrupt changed value to %g", v)
		}
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeError})
	err := Check(SiteSolver)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("armed site returned %v, want ErrInjected", err)
	}
	// Other sites remain clean.
	if err := Check(SiteProfiler); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if Triggered(SiteSolver) != 1 {
		t.Fatalf("trigger count %d, want 1", Triggered(SiteSolver))
	}
	Disable(SiteSolver)
	if err := Check(SiteSolver); err != nil {
		t.Fatalf("disabled site still fires: %v", err)
	}
	if Triggered(SiteSolver) != 1 {
		t.Fatal("Disable cleared the trigger count; only Reset should")
	}
}

func TestCountLimitedSelfDisarm(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteWorker, Injection{Mode: ModeError, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Check(SiteWorker); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: %v", i, err)
		}
	}
	if err := Check(SiteWorker); err != nil {
		t.Fatalf("site fired beyond its count: %v", err)
	}
	if Triggered(SiteWorker) != 2 {
		t.Fatalf("triggered %d, want 2", Triggered(SiteWorker))
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteHandler, Injection{Mode: ModePanic, Count: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("armed panic site did not panic")
			}
		}()
		Check(SiteHandler)
	}()
	if err := Check(SiteHandler); err != nil {
		t.Fatalf("panic site did not disarm after count: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteProfiler, Injection{Mode: ModeLatency, Latency: 20 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Check(SiteProfiler); err != nil {
		t.Fatalf("latency mode returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
}

func TestNaNCorruption(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeNaN, Count: 1})
	// Check must not consume a NaN arming: the value path owns it.
	if err := Check(SiteSolver); err != nil {
		t.Fatalf("Check consumed/failed on a NaN arming: %v", err)
	}
	if v := Corrupt(SiteSolver, 42); !math.IsNaN(v) {
		t.Fatalf("Corrupt returned %g, want NaN", v)
	}
	if v := Corrupt(SiteSolver, 42); v != 42 {
		t.Fatalf("NaN injection did not disarm after count: %g", v)
	}
}

func TestCorruptIgnoresOtherModes(t *testing.T) {
	Reset()
	defer Reset()
	Enable(SiteSolver, Injection{Mode: ModeError, Count: 1})
	if v := Corrupt(SiteSolver, 7); v != 7 {
		t.Fatalf("Corrupt fired on an error arming: %g", v)
	}
	// The error arming must still be intact for Check.
	if err := Check(SiteSolver); !errors.Is(err, ErrInjected) {
		t.Fatalf("Corrupt consumed the error arming: %v", err)
	}
}

func TestParseSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := ParseSpec("solver=error,profiler=latency:50ms,handler=panic:3, memo=nan"); err != nil {
		t.Fatal(err)
	}
	if err := Check(SiteSolver); !errors.Is(err, ErrInjected) {
		t.Fatalf("spec did not arm solver: %v", err)
	}
	if v := Corrupt(SiteMemo, 1); !math.IsNaN(v) {
		t.Fatal("spec did not arm memo NaN")
	}
	Reset()

	for _, bad := range []string{
		"bogus=error",         // unknown site
		"solver",              // no mode
		"solver=explode",      // unknown mode
		"solver=latency",      // latency without duration
		"solver=latency:soon", // bad duration
		"solver=error:zero",   // bad count
		"solver=error:-1",     // non-positive count
		"solver=panic:0",      // zero count
	} {
		if err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
		Reset()
	}

	if err := ParseSpec("  "); err != nil {
		t.Fatalf("blank spec rejected: %v", err)
	}
}

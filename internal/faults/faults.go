// Package faults is the engine's fault-injection registry: a small set of
// named sites inside the experiment engine (profiler measurement, solver
// iteration, memo compute, worker task, HTTP handler) at which tests and the
// daemon's -faults dev flag can inject failures — returned errors, panics,
// added latency, or NaN corruption of a numeric value.
//
// The registry exists to *prove* the fault-tolerance layer: the chaos test
// suite arms one site at a time and asserts that the daemon keeps serving,
// maps the failure to the right status code, increments its failure metrics,
// and leaks neither goroutines nor poisoned cache entries.
//
// Injection is globally disabled by default and the disabled fast path is a
// single atomic load, so production code can leave Check calls in place at
// full fidelity with no measurable cost.
package faults

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point inside the engine.
type Site string

// The engine's injection sites.
const (
	// SiteProfiler fires at the start of a profile measurement
	// (profiler.Source.measure).
	SiteProfiler Site = "profiler"
	// SiteSolver fires at every contention-solver iteration; NaN mode
	// corrupts the solver's memory-latency state instead.
	SiteSolver Site = "solver"
	// SiteMemo fires at the start of every memo.Cache compute.
	SiteMemo Site = "memo"
	// SiteWorker fires before every task the study's worker pool hands out.
	SiteWorker Site = "worker"
	// SiteHandler fires at the start of every engine-backed HTTP handler.
	SiteHandler Site = "handler"
	// SiteDispatch fires before every cell dispatch the cluster coordinator
	// makes to a worker; error mode simulates a lost worker, latency mode a
	// slow network path (exercising hedged re-dispatch).
	SiteDispatch Site = "dispatch"
	// SiteWire fires on the coordinator's receive path, corrupting cell
	// response bytes as a faulty network or lying worker would: bitflip,
	// truncate and duplicate modes (via Mangle) prove that the integrity
	// layer quarantines every corrupted response before assembly.
	SiteWire Site = "wire"
)

// Sites lists every known injection site.
func Sites() []Site {
	return []Site{SiteProfiler, SiteSolver, SiteMemo, SiteWorker, SiteHandler, SiteDispatch, SiteWire}
}

// Mode selects what an armed site does.
type Mode string

const (
	// ModeError makes Check return ErrInjected.
	ModeError Mode = "error"
	// ModePanic makes Check panic, exercising the recover boundaries.
	ModePanic Mode = "panic"
	// ModeLatency makes Check sleep for the injection's Latency, then pass.
	ModeLatency Mode = "latency"
	// ModeNaN makes Corrupt return NaN; Check passes.
	ModeNaN Mode = "nan"
	// ModeBitflip makes Mangle flip one bit mid-payload; Check passes.
	ModeBitflip Mode = "bitflip"
	// ModeTruncate makes Mangle drop the second half of the payload; Check
	// passes.
	ModeTruncate Mode = "truncate"
	// ModeDuplicate makes Mangle append a second copy of the payload; Check
	// passes.
	ModeDuplicate Mode = "duplicate"
)

// mangleMode reports whether m is one of the byte-corruption modes consumed
// by Mangle rather than Check.
func mangleMode(m Mode) bool {
	return m == ModeBitflip || m == ModeTruncate || m == ModeDuplicate
}

// ErrInjected is the sentinel wrapped by every error Check returns.
var ErrInjected = errors.New("faults: injected failure")

// Injection arms one site.
type Injection struct {
	// Mode is what happens when the site fires.
	Mode Mode
	// Latency is the added delay for ModeLatency.
	Latency time.Duration
	// Count limits how many times the site fires before disarming itself;
	// zero means unlimited.
	Count int64
}

// armed is one active injection plus its trigger accounting.
type armed struct {
	inj       Injection
	remaining int64 // <0 = unlimited
	triggered int64
}

var (
	// active is the disabled-path gate: true only while any site is armed.
	active atomic.Bool

	mu        sync.Mutex
	sites     map[Site]*armed
	triggered map[Site]int64
)

// Enable arms site with the injection, replacing any previous arming.
func Enable(site Site, inj Injection) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[Site]*armed)
	}
	rem := int64(-1)
	if inj.Count > 0 {
		rem = inj.Count
	}
	sites[site] = &armed{inj: inj, remaining: rem}
	active.Store(true)
}

// Disable disarms site. Trigger counts are retained until Reset.
func Disable(site Site) {
	mu.Lock()
	defer mu.Unlock()
	delete(sites, site)
	active.Store(len(sites) > 0)
}

// Reset disarms every site and clears trigger counts.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	sites = nil
	triggered = nil
	active.Store(false)
}

// Triggered reports how many times site has fired since the last Reset.
func Triggered(site Site) int64 {
	mu.Lock()
	defer mu.Unlock()
	return triggered[site]
}

// take consumes one firing of site if it is armed, returning the injection.
func take(site Site) (Injection, bool) {
	mu.Lock()
	defer mu.Unlock()
	a := sites[site]
	if a == nil {
		return Injection{}, false
	}
	if a.remaining == 0 {
		delete(sites, site)
		active.Store(len(sites) > 0)
		return Injection{}, false
	}
	if a.remaining > 0 {
		a.remaining--
		if a.remaining == 0 {
			delete(sites, site)
			active.Store(len(sites) > 0)
		}
	}
	if triggered == nil {
		triggered = make(map[Site]int64)
	}
	triggered[site]++
	return a.inj, true
}

// Check fires site if armed: ModeError returns an error wrapping
// ErrInjected, ModePanic panics, and ModeLatency sleeps and returns nil.
// A ModeNaN arming is left for Corrupt (the value path), and the byte
// corruption modes are left for Mangle; neither consumes a firing here.
// Disabled sites cost one atomic load.
func Check(site Site) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	a := sites[site]
	skip := a == nil || a.inj.Mode == ModeNaN || mangleMode(a.inj.Mode)
	mu.Unlock()
	if skip {
		return nil
	}
	inj, ok := take(site)
	if !ok {
		return nil
	}
	switch inj.Mode {
	case ModePanic:
		panic(fmt.Sprintf("faults: injected panic at site %q", site)) // panicgate:allow deliberate injection
	case ModeLatency:
		time.Sleep(inj.Latency)
		return nil
	case ModeNaN:
		return nil
	default:
		return fmt.Errorf("%w at site %q", ErrInjected, site)
	}
}

// Corrupt returns NaN in place of v when site is armed in ModeNaN; any other
// arming (or none) leaves v untouched and does not consume a firing.
func Corrupt(site Site, v float64) float64 {
	if !active.Load() {
		return v
	}
	mu.Lock()
	a := sites[site]
	isNaN := a != nil && a.inj.Mode == ModeNaN && a.remaining != 0
	mu.Unlock()
	if !isNaN {
		return v
	}
	if _, ok := take(site); !ok {
		return v
	}
	return math.NaN()
}

// Mangle corrupts b when site is armed in a byte-corruption mode, modeling
// a wire-level fault: ModeBitflip flips one bit in the middle of the
// payload (which may still parse — only a content digest catches it),
// ModeTruncate drops the second half (torn read), and ModeDuplicate appends
// a second copy (duplicated frame). Any other arming (or none) returns b
// untouched and does not consume a firing. The input slice is never
// modified; corruption happens on a copy.
func Mangle(site Site, b []byte) []byte {
	if !active.Load() {
		return b
	}
	mu.Lock()
	a := sites[site]
	mode := Mode("")
	if a != nil && mangleMode(a.inj.Mode) && a.remaining != 0 {
		mode = a.inj.Mode
	}
	mu.Unlock()
	if mode == "" || len(b) == 0 {
		return b
	}
	if _, ok := take(site); !ok {
		return b
	}
	switch mode {
	case ModeBitflip:
		out := append([]byte(nil), b...)
		out[len(out)/2] ^= 0x01
		return out
	case ModeTruncate:
		return append([]byte(nil), b[:len(b)/2]...)
	default: // ModeDuplicate
		out := append([]byte(nil), b...)
		return append(out, b...)
	}
}

// ParseSpec arms sites from a comma-separated spec like
// "solver=error,profiler=latency:50ms,handler=panic:3" — each entry is
// site=mode, optionally followed by :duration (latency) or :count (other
// modes). It is the parser behind the daemon's -faults dev flag.
func ParseSpec(spec string) error {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	known := make(map[Site]bool)
	for _, s := range Sites() {
		known[s] = true
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, rest, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("faults: bad spec entry %q (want site=mode)", part)
		}
		if !known[Site(site)] {
			return fmt.Errorf("faults: unknown site %q (known: %v)", site, Sites())
		}
		modeStr, arg, hasArg := strings.Cut(rest, ":")
		inj := Injection{Mode: Mode(modeStr)}
		switch inj.Mode {
		case ModeError, ModePanic, ModeNaN, ModeBitflip, ModeTruncate, ModeDuplicate:
			if hasArg {
				n, err := parseCount(arg)
				if err != nil {
					return fmt.Errorf("faults: entry %q: %v", part, err)
				}
				inj.Count = n
			}
		case ModeLatency:
			if !hasArg {
				return fmt.Errorf("faults: entry %q: latency needs a duration (e.g. latency:50ms)", part)
			}
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faults: entry %q: %v", part, err)
			}
			inj.Latency = d
		default:
			return fmt.Errorf("faults: entry %q: unknown mode %q (want error, panic, latency, nan, bitflip, truncate or duplicate)", part, modeStr)
		}
		Enable(Site(site), inj)
	}
	return nil
}

func parseCount(s string) (int64, error) {
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n <= 0 {
		return 0, fmt.Errorf("bad count %q", s)
	}
	return n, nil
}

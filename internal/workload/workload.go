// Package workload defines the multi-program workloads of the study: twelve
// synthetic benchmark specifications named after the SPEC CPU 2006 programs
// whose behaviour they imitate, plus the homogeneous and heterogeneous mix
// construction the paper uses (balanced random sampling per Velasquez et
// al., with every benchmark included an equal number of times per thread
// count).
//
// The twelve specs are chosen the way the paper chose its twelve SPEC
// benchmark/input pairs: to cover the full range of relative performance
// across the three core types — from high-ILP compute-bound codes that love
// the big core's width and window (tonto-, calculix-like) to streaming
// bandwidth-bound codes whose performance flattens across core types once
// the memory bus saturates (libquantum-, lbm-like), with branchy,
// cache-sensitive and pointer-chasing behaviour in between.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"smtflex/internal/isa"
	"smtflex/internal/trace"
)

// mix builds an instruction-mix array from per-class fractions; the
// remainder after the named classes is assigned to IntAlu.
func mix(load, store, branch, fpAdd, fpMul, intMul float64) [isa.NumClasses]float64 {
	var m [isa.NumClasses]float64
	m[isa.Load] = load
	m[isa.Store] = store
	m[isa.Branch] = branch
	m[isa.FpAdd] = fpAdd
	m[isa.FpMul] = fpMul
	m[isa.IntMul] = intMul
	m[isa.Jump] = 0.01
	rest := 1.0
	for _, f := range m {
		rest -= f
	}
	m[isa.IntAlu] = rest
	return m
}

const (
	kb = 1 << 10
	mb = 1 << 20
)

// Benchmarks returns the twelve benchmark specifications, sorted by name.
func Benchmarks() []trace.Spec {
	specs := []trace.Spec{
		{
			// High-ILP floating-point compute; scales with core width/window.
			Name:               "tonto",
			Mix:                mix(0.24, 0.10, 0.05, 0.15, 0.12, 0.02),
			MeanDepDist:        14,
			SecondSrcProb:      0.55,
			BranchRandomFrac:   0.03,
			CodeFootprintBytes: 24 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.85, WorkingSetBytes: 8 * kb},
				{Weight: 0.15, WorkingSetBytes: 192 * kb, Sequential: true, StrideBytes: 16},
			},
			Seed: 0x01,
		},
		{
			// FP matrix code, very regular, compute-bound.
			Name:               "calculix",
			Mix:                mix(0.26, 0.09, 0.04, 0.18, 0.15, 0.01),
			MeanDepDist:        16,
			SecondSrcProb:      0.6,
			BranchRandomFrac:   0.02,
			CodeFootprintBytes: 16 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.8, WorkingSetBytes: 8 * kb},
				{Weight: 0.2, WorkingSetBytes: 128 * kb, Sequential: true, StrideBytes: 8},
			},
			Seed: 0x02,
		},
		{
			// Video encode: integer compute with moderate ILP, hot code.
			Name:               "h264ref",
			Mix:                mix(0.28, 0.12, 0.06, 0.02, 0.01, 0.04),
			MeanDepDist:        10,
			SecondSrcProb:      0.5,
			BranchRandomFrac:   0.06,
			CodeFootprintBytes: 32 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.7, WorkingSetBytes: 8 * kb},
				{Weight: 0.3, WorkingSetBytes: 320 * kb, Sequential: true, StrideBytes: 16},
			},
			Seed: 0x03,
		},
		{
			// hmmer: tight integer loops, very predictable, tiny footprint.
			Name:               "hmmer",
			Mix:                mix(0.30, 0.12, 0.07, 0.0, 0.0, 0.03),
			MeanDepDist:        12,
			SecondSrcProb:      0.6,
			BranchRandomFrac:   0.02,
			CodeFootprintBytes: 8 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.9, WorkingSetBytes: 6 * kb},
				{Weight: 0.1, WorkingSetBytes: 96 * kb, Sequential: true, StrideBytes: 16},
			},
			Seed: 0x04,
		},
		{
			// Game tree search: branch-misprediction dominated.
			Name:               "gobmk",
			Mix:                mix(0.25, 0.11, 0.13, 0.0, 0.0, 0.02),
			MeanDepDist:        7,
			SecondSrcProb:      0.45,
			BranchRandomFrac:   0.22,
			CodeFootprintBytes: 64 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.75, WorkingSetBytes: 10 * kb},
				{Weight: 0.25, WorkingSetBytes: 512 * kb, Sequential: true, StrideBytes: 16},
			},
			Seed: 0x05,
		},
		{
			// Chess search: branchy with modest working set.
			Name:               "sjeng",
			Mix:                mix(0.23, 0.09, 0.14, 0.0, 0.0, 0.02),
			MeanDepDist:        8,
			SecondSrcProb:      0.45,
			BranchRandomFrac:   0.18,
			CodeFootprintBytes: 48 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.7, WorkingSetBytes: 8 * kb},
				{Weight: 0.3, WorkingSetBytes: 1 * mb, Sequential: true, StrideBytes: 16},
			},
			Seed: 0x06,
		},
		{
			// Compression: mid memory intensity, medium working set.
			Name:               "bzip2",
			Mix:                mix(0.29, 0.13, 0.10, 0.0, 0.0, 0.01),
			MeanDepDist:        9,
			SecondSrcProb:      0.5,
			BranchRandomFrac:   0.10,
			CodeFootprintBytes: 20 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.52, WorkingSetBytes: 8 * kb},
				{Weight: 0.38, WorkingSetBytes: 640 * kb, Sequential: true, StrideBytes: 16},
				{Weight: 0.10, WorkingSetBytes: 6 * mb, Sequential: true, StrideBytes: 32},
			},
			Seed: 0x07,
		},
		{
			// Compiler: large code footprint, irregular data.
			Name:               "gcc",
			Mix:                mix(0.27, 0.14, 0.11, 0.0, 0.0, 0.01),
			MeanDepDist:        8,
			SecondSrcProb:      0.5,
			BranchRandomFrac:   0.09,
			CodeFootprintBytes: 96 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.58, WorkingSetBytes: 10 * kb},
				{Weight: 0.34, WorkingSetBytes: 1536 * kb, Sequential: true, StrideBytes: 16},
				{Weight: 0.08, WorkingSetBytes: 12 * mb},
			},
			Seed: 0x08,
		},
		{
			// LP solver: cache-capacity sensitive; lives or dies on the LLC.
			Name:               "soplex",
			Mix:                mix(0.30, 0.09, 0.07, 0.08, 0.05, 0.01),
			MeanDepDist:        9,
			SecondSrcProb:      0.5,
			BranchRandomFrac:   0.07,
			CodeFootprintBytes: 32 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.42, WorkingSetBytes: 8 * kb},
				{Weight: 0.42, WorkingSetBytes: 3 * mb, Sequential: true, StrideBytes: 16},
				{Weight: 0.16, WorkingSetBytes: 24 * mb, Sequential: true, StrideBytes: 32},
			},
			Seed: 0x09,
		},
		{
			// Discrete event simulation: pointer-heavy, large footprint.
			Name:               "omnetpp",
			Mix:                mix(0.31, 0.14, 0.09, 0.0, 0.0, 0.01),
			MeanDepDist:        7,
			SecondSrcProb:      0.45,
			BranchRandomFrac:   0.10,
			CodeFootprintBytes: 64 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.5, WorkingSetBytes: 8 * kb},
				{Weight: 0.38, WorkingSetBytes: 4 * mb, PointerChase: true},
				{Weight: 0.12, WorkingSetBytes: 32 * mb},
			},
			Seed: 0x0A,
		},
		{
			// mcf: dominated by pointer-chasing DRAM latency, huge footprint.
			Name:               "mcf",
			Mix:                mix(0.34, 0.10, 0.08, 0.0, 0.0, 0.0),
			MeanDepDist:        5,
			SecondSrcProb:      0.4,
			BranchRandomFrac:   0.12,
			CodeFootprintBytes: 12 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.62, WorkingSetBytes: 8 * kb},
				{Weight: 0.14, WorkingSetBytes: 64 * mb, PointerChase: true},
				{Weight: 0.24, WorkingSetBytes: 12 * mb},
			},
			Seed: 0x0B,
		},
		{
			// libquantum: pure streaming, bandwidth-bound at scale.
			Name:               "libquantum",
			Mix:                mix(0.26, 0.12, 0.08, 0.0, 0.0, 0.01),
			MeanDepDist:        13,
			SecondSrcProb:      0.4,
			BranchRandomFrac:   0.01,
			CodeFootprintBytes: 6 * kb,
			Streams: []trace.MemStream{
				{Weight: 0.15, WorkingSetBytes: 4 * kb},
				{Weight: 0.85, WorkingSetBytes: 64 * mb, Sequential: true, StrideBytes: 8},
			},
			Seed: 0x0C,
		},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// ByName returns the named benchmark spec.
func ByName(name string) (trace.Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return trace.Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in sorted order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// Mix is one multi-program workload: an ordered list of benchmark names, one
// per thread.
type Mix struct {
	// ID distinguishes mixes with the same composition.
	ID string
	// Programs lists one benchmark name per thread.
	Programs []string
}

// NumThreads returns the thread count of the mix.
func (m Mix) NumThreads() int { return len(m.Programs) }

// HomogeneousMixes returns, for each benchmark, a mix of n copies of it.
func HomogeneousMixes(n int) []Mix {
	var out []Mix
	for _, name := range Names() {
		progs := make([]string, n)
		for i := range progs {
			progs[i] = name
		}
		out = append(out, Mix{ID: fmt.Sprintf("homog-%s-%d", name, n), Programs: progs})
	}
	return out
}

// HeterogeneousMixes returns mixesPerCount random n-program combinations
// using balanced random sampling: across the returned mixes every benchmark
// appears an equal number of times (up to rounding), as in Velasquez et al.
// The construction is deterministic for a given (n, mixesPerCount, seed).
func HeterogeneousMixes(n, mixesPerCount int, seed int64) []Mix {
	names := Names()
	rng := rand.New(rand.NewSource(seed + int64(n)*1009))
	// Build a pool with every benchmark repeated ceil(n*mixes/len) times,
	// shuffle, then deal into mixes. This balances benchmark frequency.
	total := n * mixesPerCount
	reps := (total + len(names) - 1) / len(names)
	pool := make([]string, 0, reps*len(names))
	for r := 0; r < reps; r++ {
		pool = append(pool, names...)
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	pool = pool[:total]

	out := make([]Mix, mixesPerCount)
	for i := range out {
		progs := append([]string(nil), pool[i*n:(i+1)*n]...)
		out[i] = Mix{ID: fmt.Sprintf("heterog-%d-%d", n, i), Programs: progs}
	}
	return out
}

// Readers builds one trace reader per program in the mix, each with a
// distinct address offset so co-running copies of one benchmark touch
// disjoint memory, as separate processes would.
func (m Mix) Readers(uopSeed uint64) ([]trace.Reader, error) {
	readers := make([]trace.Reader, len(m.Programs))
	for i, name := range m.Programs {
		spec, err := ByName(name)
		if err != nil {
			return nil, err
		}
		g, err := trace.NewGenerator(spec, uopSeed+uint64(i)*0x9E37)
		if err != nil {
			return nil, err
		}
		readers[i] = trace.OffsetAddresses(g, uint64(i+1)<<40)
	}
	return readers, nil
}

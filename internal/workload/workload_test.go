package workload

import (
	"sort"
	"testing"

	"smtflex/internal/isa"
)

func TestBenchmarksValid(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("%d benchmarks, want 12 (the paper's selection size)", len(bs))
	}
	for _, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	if !sort.SliceIsSorted(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name }) {
		t.Error("benchmarks not sorted")
	}
}

func TestNamesUniqueAndSeedsDistinct(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[uint64]bool{}
	for _, b := range Benchmarks() {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		if seeds[b.Seed] {
			t.Errorf("duplicate seed %#x", b.Seed)
		}
		seeds[b.Seed] = true
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mcf")
	if err != nil || b.Name != "mcf" {
		t.Fatalf("ByName(mcf): %v %v", b.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBehaviouralSpread(t *testing.T) {
	// The selection must cover the full behavioural range, as the paper's
	// did: at least one streaming bandwidth-bound benchmark, one
	// pointer-chasing benchmark, one branchy benchmark and one compute
	// benchmark with near-zero far-memory traffic.
	var streaming, chasing, branchy, compute bool
	for _, b := range Benchmarks() {
		var farWeight, w float64
		var seq, chase bool
		for _, s := range b.Streams {
			w += s.Weight
			if s.WorkingSetBytes > 8<<20 {
				farWeight += s.Weight
				if s.Sequential {
					seq = true
				}
				if s.PointerChase {
					chase = true
				}
			}
		}
		farFrac := farWeight / w
		switch {
		case seq && farFrac > 0.5:
			streaming = true
		case chase && farFrac > 0.1:
			chasing = true
		}
		if b.BranchRandomFrac >= 0.15 {
			branchy = true
		}
		if farFrac == 0 && b.Mix[isa.FpAdd] > 0.1 {
			compute = true
		}
	}
	if !streaming || !chasing || !branchy || !compute {
		t.Fatalf("selection lacks coverage: streaming=%t chasing=%t branchy=%t compute=%t",
			streaming, chasing, branchy, compute)
	}
}

func TestHomogeneousMixes(t *testing.T) {
	ms := HomogeneousMixes(5)
	if len(ms) != 12 {
		t.Fatalf("%d homogeneous mixes", len(ms))
	}
	for _, m := range ms {
		if m.NumThreads() != 5 {
			t.Fatalf("%s has %d threads", m.ID, m.NumThreads())
		}
		for _, p := range m.Programs {
			if p != m.Programs[0] {
				t.Fatalf("%s not homogeneous", m.ID)
			}
		}
	}
}

func TestHeterogeneousMixesBalanced(t *testing.T) {
	const n, per = 6, 12
	ms := HeterogeneousMixes(n, per, 1)
	if len(ms) != per {
		t.Fatalf("%d mixes", len(ms))
	}
	counts := map[string]int{}
	for _, m := range ms {
		if m.NumThreads() != n {
			t.Fatalf("%s has %d threads", m.ID, m.NumThreads())
		}
		for _, p := range m.Programs {
			counts[p]++
		}
	}
	// Balanced random sampling: every benchmark appears 72/12 = 6 times.
	for _, name := range Names() {
		if counts[name] != n*per/12 {
			t.Errorf("%s appears %d times, want %d", name, counts[name], n*per/12)
		}
	}
}

func TestHeterogeneousMixesDeterministic(t *testing.T) {
	a := HeterogeneousMixes(4, 12, 99)
	b := HeterogeneousMixes(4, 12, 99)
	for i := range a {
		for j := range a[i].Programs {
			if a[i].Programs[j] != b[i].Programs[j] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
	c := HeterogeneousMixes(4, 12, 100)
	same := true
	for i := range a {
		for j := range a[i].Programs {
			if a[i].Programs[j] != c[i].Programs[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical mixes")
	}
}

func TestReadersDisjointAddresses(t *testing.T) {
	m := Mix{ID: "x", Programs: []string{"mcf", "mcf"}}
	readers, err := m.Readers(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(readers) != 2 {
		t.Fatalf("%d readers", len(readers))
	}
	// Collect data addresses from both and check the regions don't overlap.
	seen0 := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		u := readers[0].Next()
		if u.Class.IsMem() {
			seen0[u.Addr>>40] = true
		}
	}
	for i := 0; i < 3000; i++ {
		u := readers[1].Next()
		if u.Class.IsMem() && seen0[u.Addr>>40] {
			t.Fatal("co-runner address regions overlap")
		}
	}
}

func TestReadersUnknownBenchmark(t *testing.T) {
	m := Mix{ID: "x", Programs: []string{"nope"}}
	if _, err := m.Readers(1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

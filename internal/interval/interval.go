// Package interval implements the analytic interval model used for the
// design-space sweeps: given a benchmark's measured profile, it predicts the
// thread's CPI on any core type, at any SMT level (static ROB partitioning,
// shared dispatch width, shared private caches) and under any shared-LLC
// capacity and memory latency, without re-running the cycle engine.
//
// This mirrors the original study's methodology: Sniper itself is built on
// interval simulation, and the CPI-stack decomposition used here follows the
// first author's published interval models. Profiles are measured once per
// (benchmark, core type) with the cycle engine (see package profiler) by
// successive idealization, and the interval model is calibrated so that at
// the measurement baseline it reproduces the cycle engine's CPI exactly.
package interval

import (
	"fmt"
	"math"

	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/isa"
	"smtflex/internal/machstats"
)

// Profile characterizes one benchmark on one core microarchitecture.
type Profile struct {
	// Benchmark is the workload name.
	Benchmark string
	// Core is the core type the calibration ran on.
	Core config.CoreType

	// BaseWindows and BaseCPIs tabulate the base CPI (perfect branch
	// prediction, perfect caches) as a function of the ROB partition size.
	// In-order cores have a single entry. Windows ascend.
	BaseWindows []int
	BaseCPIs    []float64

	// BrCPI is the measured CPI contribution of real branch prediction.
	BrCPI float64
	// BrMPKU is mispredicts per kilo-µop with the real predictor.
	BrMPKU float64

	// L1ICPI is the measured CPI contribution of the real I-cache at the
	// baseline I-cache capacity.
	L1ICPI float64
	// IBlockAPKU is I-cache block transitions per kilo-µop.
	IBlockAPKU float64
	// ICurve is the code stream's miss-ratio-versus-capacity curve.
	ICurve cache.MissCurve

	// DataAPKU is data accesses (loads+stores) per kilo-µop.
	DataAPKU float64
	// DCurve is the data stream's miss-ratio-versus-capacity curve; the
	// hierarchy is modelled as capacity thresholds on this single curve.
	DCurve cache.MissCurve

	// Visible is the calibrated fraction of raw memory-hierarchy latency
	// that appears in the CPI (out-of-order overlap and MLP hide the rest;
	// pointer-chasing plus queueing can push it slightly above 1). It is
	// calibrated at the full ROB (VisibleWindow).
	Visible float64
	// VisibleWindow is the window Visible was calibrated at.
	VisibleWindow int
	// VisibleMin is the visible fraction at the smallest ROB partition
	// (VisibleMinWindow); a smaller partition holds fewer outstanding
	// misses, so less latency is hidden. Zero means "same as Visible".
	VisibleMin       float64
	VisibleMinWindow int

	// MemConstCPI is the part of the measured baseline memory CPI the
	// curve model cannot attribute (set conflicts the fully-associative
	// curves miss). It is charged as a constant, so it never amplifies
	// capacity-sharing effects.
	MemConstCPI float64

	// WritebackFraction is the measured ratio of DRAM writebacks to DRAM
	// fills at calibration; the contention solver scales bus traffic by
	// 1+WritebackFraction.
	WritebackFraction float64

	// BaselineMemCPI is the measured memory-hierarchy CPI at calibration
	// (for reporting and tests).
	BaselineMemCPI float64

	// dtab and itab, when non-nil, replace DCurve/ICurve lookups with the
	// quantized O(1) tables built by Quantized. They are derived state and
	// deliberately unexported: JSON round-trips (checkpoint sidecars, saved
	// profiles) carry only the exact curves, and a freshly decoded profile
	// uses them until Quantized is called again.
	dtab, itab *cache.MissTable
}

// Quantized returns a copy of p whose miss-curve lookups (Evaluate,
// DMissAt/IMissAt, DRAMAccessesPerUop, LLCAccessesPerUop) go through
// n-point quantized tables with O(1) At instead of the exact
// piecewise-linear curves' binary search. The exact curves are retained
// unchanged. With n >= the number of curve breakpoints the profiler's
// log-uniform curves quantize losslessly (see cache.MissTable), so results
// are bit-identical; a smaller n trades accuracy for an even smaller table.
func (p *Profile) Quantized(n int) *Profile {
	cp := *p
	dt, it := p.DCurve.Quantize(n), p.ICurve.Quantize(n)
	cp.dtab, cp.itab = &dt, &it
	return &cp
}

// DMissAt returns the data stream's miss ratio at a capacity in blocks —
// through the quantized table when armed (see Quantized), the exact DCurve
// otherwise. The contention solver's inner loop funnels every data-curve
// lookup through here.
func (p *Profile) DMissAt(capacityBlocks float64) float64 {
	if p.dtab != nil {
		return p.dtab.At(capacityBlocks)
	}
	return p.DCurve.At(capacityBlocks)
}

// IMissAt is DMissAt for the instruction stream's ICurve.
func (p *Profile) IMissAt(capacityBlocks float64) float64 {
	if p.itab != nil {
		return p.itab.At(capacityBlocks)
	}
	return p.ICurve.At(capacityBlocks)
}

// Validate reports structural problems.
func (p *Profile) Validate() error {
	if p.Benchmark == "" {
		return fmt.Errorf("interval: profile without benchmark name")
	}
	if len(p.BaseWindows) == 0 || len(p.BaseWindows) != len(p.BaseCPIs) {
		return fmt.Errorf("interval: profile %s: bad base curve", p.Benchmark)
	}
	for i := 1; i < len(p.BaseWindows); i++ {
		if p.BaseWindows[i] <= p.BaseWindows[i-1] {
			return fmt.Errorf("interval: profile %s: base windows not ascending", p.Benchmark)
		}
	}
	if !p.DCurve.Valid() || !p.ICurve.Valid() {
		return fmt.Errorf("interval: profile %s: invalid miss curve", p.Benchmark)
	}
	if p.Visible < 0 {
		return fmt.Errorf("interval: profile %s: negative visible fraction", p.Benchmark)
	}
	return nil
}

// BaseCPI interpolates the base CPI at ROB partition w. Outside the sampled
// range it clamps. Smaller windows have higher CPI.
func (p *Profile) BaseCPI(w int) float64 {
	ws := p.BaseWindows
	n := len(ws)
	if n == 1 || w <= ws[0] {
		return p.BaseCPIs[0]
	}
	if w >= ws[n-1] {
		return p.BaseCPIs[n-1]
	}
	i := 1
	for ws[i] < w {
		i++
	}
	lo, hi := float64(ws[i-1]), float64(ws[i])
	f := (float64(w) - lo) / (hi - lo)
	return p.BaseCPIs[i-1] + f*(p.BaseCPIs[i]-p.BaseCPIs[i-1])
}

// Shares describes the capacity fractions a thread receives of the shared
// structures, in bytes, plus the contended memory latency it observes.
type Shares struct {
	// L1I, L1D and L2 are the thread's byte shares of the core-private
	// caches (the full capacity when running alone on the core).
	L1I, L1D, L2 float64
	// LLC is the thread's byte share of the shared last-level cache.
	LLC float64
	// MemLatencyCycles is the contended DRAM latency in core cycles,
	// including queueing.
	MemLatencyCycles float64
}

// crossbarLatency mirrors the cycle engine's interconnect hop cost.
const crossbarLatency = 3

// CPIStack is the decomposed cycles-per-µop prediction.
type CPIStack struct {
	Base   float64
	Branch float64
	ICache float64
	L2     float64 // L1D misses serviced by the private L2
	LLC    float64 // L2 misses serviced by the shared LLC
	Mem    float64 // LLC misses serviced by DRAM
}

// Total returns the full CPI.
func (s CPIStack) Total() float64 {
	return s.Base + s.Branch + s.ICache + s.L2 + s.LLC + s.Mem
}

// Components returns the stack in machstats' canonical component vocabulary
// and order. Summing the components left to right reproduces Total() exactly
// (same additions, same order) — the conservation property the
// counter-conservation test pins.
func (s CPIStack) Components() []machstats.Component {
	return []machstats.Component{
		{Name: machstats.CompBase, CPI: s.Base},
		{Name: machstats.CompBranch, CPI: s.Branch},
		{Name: machstats.CompICache, CPI: s.ICache},
		{Name: machstats.CompL2, CPI: s.L2},
		{Name: machstats.CompLLC, CPI: s.LLC},
		{Name: machstats.CompMem, CPI: s.Mem},
	}
}

// blocks converts a byte capacity to cache blocks for curve lookups.
func blocks(bytes float64) float64 { return bytes / isa.MemBlockSize }

// VisibleAt interpolates the visible-latency fraction at ROB partition w:
// smaller partitions expose more of the memory latency because fewer misses
// fit in flight.
func (p *Profile) VisibleAt(w int) float64 {
	if p.VisibleMin == 0 || p.VisibleMinWindow == 0 ||
		p.VisibleWindow <= p.VisibleMinWindow {
		return p.Visible
	}
	if w >= p.VisibleWindow {
		return p.Visible
	}
	if w <= p.VisibleMinWindow {
		return p.VisibleMin
	}
	f := float64(w-p.VisibleMinWindow) / float64(p.VisibleWindow-p.VisibleMinWindow)
	return p.VisibleMin + f*(p.Visible-p.VisibleMin)
}

// Evaluate predicts the thread's CPI stack on core cc with ROB partition
// window w and the given shares. The hierarchy is modelled as capacity
// thresholds on the data reuse curve: accesses missing in the L1D share go
// to the L2, those missing in L1D+L2 go to the LLC, and those missing in
// L1D+L2+LLC go to DRAM.
func (p *Profile) Evaluate(cc config.Core, w int, sh Shares) CPIStack {
	var st CPIStack
	st.Base = p.BaseCPI(w)
	st.Branch = p.BrCPI
	v := p.VisibleAt(w)

	// I-cache: rescale the measured baseline contribution by the miss-count
	// ratio at the thread's I-cache share.
	baseIMiss := p.IMissAt(blocks(float64(cc.L1I.SizeBytes)))
	curIMiss := p.IMissAt(blocks(sh.L1I))
	if baseIMiss > 1e-12 {
		st.ICache = p.L1ICPI * (curIMiss / baseIMiss)
	} else if curIMiss > 1e-12 {
		// The baseline had essentially no I-misses; charge raw latency.
		st.ICache = v * p.IBlockAPKU / 1000 * curIMiss * float64(cc.L2.LatencyCycles)
	}

	apu := p.DataAPKU / 1000
	mL1 := p.DMissAt(blocks(sh.L1D))
	mL2 := p.DMissAt(blocks(sh.L1D + sh.L2))
	mLLC := p.DMissAt(blocks(sh.L1D + sh.L2 + sh.LLC))
	// Monotonicity guard: capacities stack, so deeper levels see fewer misses.
	mL2 = math.Min(mL2, mL1)
	mLLC = math.Min(mLLC, mL2)

	l2Accesses := apu * mL1
	llcAccesses := apu * mL2
	dramAccesses := apu * mLLC
	st.L2 = v*(l2Accesses-llcAccesses)*float64(cc.L2.LatencyCycles) + p.MemConstCPI
	st.LLC = v * (llcAccesses - dramAccesses) * float64(cc.L2.LatencyCycles+crossbarLatency+30)
	st.Mem = v * dramAccesses * (float64(cc.L2.LatencyCycles+crossbarLatency+30) + sh.MemLatencyCycles)
	return st
}

// DRAMAccessesPerUop returns the thread's DRAM block transfers per µop at
// the given shares, used by the contention solver to compute bus traffic.
func (p *Profile) DRAMAccessesPerUop(sh Shares) float64 {
	m := p.DMissAt(blocks(sh.L1D + sh.L2 + sh.LLC))
	return p.DataAPKU / 1000 * m
}

// LLCAccessesPerUop returns LLC accesses per µop at the given shares, used
// to weight LLC capacity competition.
func (p *Profile) LLCAccessesPerUop(sh Shares) float64 {
	m := p.DMissAt(blocks(sh.L1D + sh.L2))
	return p.DataAPKU / 1000 * m
}

// SMTIssueEfficiency is the fraction of the core's dispatch width usable
// when multiple SMT threads compete for it; it models fetch fragmentation
// and partitioning overheads not captured by the per-thread CPI stacks.
// Calibrated against the cycle engine: co-running width-bound threads
// sustain ≈97-98% of the dispatch width under round-robin fetch (multiple
// ready threads fill nearly every slot).
const SMTIssueEfficiency = 0.97

// ShareWidth scales per-thread IPCs so their sum does not exceed the core's
// effective dispatch width. ipcs is modified in place and returned. Threads
// below their fair share keep their full IPC; the scaling is proportional,
// which approximates round-robin dispatch with full slot reuse.
func ShareWidth(ipcs []float64, width int) []float64 {
	return ShareWidthEff(ipcs, width, SMTIssueEfficiency)
}

// ShareWidthEff is ShareWidth with an explicit issue efficiency, used by the
// ablation studies.
func ShareWidthEff(ipcs []float64, width int, efficiency float64) []float64 {
	var sum float64
	for _, v := range ipcs {
		sum += v
	}
	capacity := efficiency * float64(width)
	if len(ipcs) <= 1 || sum <= capacity {
		return ipcs
	}
	scale := capacity / sum
	for i := range ipcs {
		ipcs[i] *= scale
	}
	return ipcs
}

// Partition returns the per-thread ROB partition for n threads on core cc.
func Partition(cc config.Core, n int) int {
	if !cc.OutOfOrder || n <= 0 {
		return 1
	}
	p := cc.ROBSize / n
	if p < cc.Width {
		p = cc.Width
	}
	return p
}

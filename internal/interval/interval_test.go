package interval

import (
	"math"
	"testing"
	"testing/quick"

	"smtflex/internal/cache"
	"smtflex/internal/config"
)

// testProfile builds a hand-crafted profile with known curves.
func testProfile() *Profile {
	return &Profile{
		Benchmark:   "synthetic",
		Core:        config.Big,
		BaseWindows: []int{21, 64, 128},
		BaseCPIs:    []float64{0.6, 0.45, 0.4},
		BrCPI:       0.05,
		BrMPKU:      3,
		L1ICPI:      0.02,
		IBlockAPKU:  80,
		ICurve: cache.MissCurve{
			Capacities: []int{64, 512, 4096},
			Ratios:     []float64{0.5, 0.05, 0.0},
		},
		DataAPKU: 400,
		DCurve: cache.MissCurve{
			Capacities: []int{128, 512, 4096, 131072},
			Ratios:     []float64{0.5, 0.3, 0.1, 0.01},
		},
		Visible:          0.4,
		VisibleWindow:    128,
		VisibleMin:       0.7,
		VisibleMinWindow: 21,
	}
}

func baseShares() Shares {
	return Shares{
		L1I: 32 << 10, L1D: 32 << 10, L2: 256 << 10, LLC: 8 << 20,
		MemLatencyCycles: 140,
	}
}

func TestProfileValidate(t *testing.T) {
	if err := testProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	p := testProfile()
	p.Benchmark = ""
	if err := p.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	p = testProfile()
	p.BaseWindows = []int{64, 21}
	p.BaseCPIs = []float64{1, 2}
	if err := p.Validate(); err == nil {
		t.Error("descending windows accepted")
	}
	p = testProfile()
	p.BaseCPIs = p.BaseCPIs[:1]
	if err := p.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	p = testProfile()
	p.Visible = -1
	if err := p.Validate(); err == nil {
		t.Error("negative visible accepted")
	}
}

func TestBaseCPIInterpolation(t *testing.T) {
	p := testProfile()
	cases := []struct {
		w    int
		want float64
	}{
		{10, 0.6}, {21, 0.6}, {64, 0.45}, {128, 0.4}, {200, 0.4},
	}
	for _, tc := range cases {
		if got := p.BaseCPI(tc.w); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("BaseCPI(%d) = %g, want %g", tc.w, got, tc.want)
		}
	}
	// Midpoint between 21 and 64.
	mid := p.BaseCPI(42)
	if mid <= 0.45 || mid >= 0.6 {
		t.Errorf("BaseCPI(42) = %g, want between the endpoints", mid)
	}
}

func TestVisibleAt(t *testing.T) {
	p := testProfile()
	if got := p.VisibleAt(128); got != 0.4 {
		t.Errorf("VisibleAt(full) = %g", got)
	}
	if got := p.VisibleAt(21); got != 0.7 {
		t.Errorf("VisibleAt(min) = %g", got)
	}
	mid := p.VisibleAt(74) // halfway between 21 and 128 ≈ 0.55
	if mid <= 0.4 || mid >= 0.7 {
		t.Errorf("VisibleAt(74) = %g not interpolated", mid)
	}
	// Without a min calibration, the fraction is constant.
	p.VisibleMin = 0
	if got := p.VisibleAt(21); got != 0.4 {
		t.Errorf("VisibleAt without min = %g", got)
	}
}

func TestEvaluateComponents(t *testing.T) {
	p := testProfile()
	cc := config.BigCore()
	st := p.Evaluate(cc, 128, baseShares())
	if st.Base != 0.4 {
		t.Errorf("base %g", st.Base)
	}
	if st.Branch != 0.05 {
		t.Errorf("branch %g", st.Branch)
	}
	if st.Total() <= st.Base+st.Branch {
		t.Error("memory components missing")
	}
	// Sum identity.
	sum := st.Base + st.Branch + st.ICache + st.L2 + st.LLC + st.Mem
	if math.Abs(sum-st.Total()) > 1e-12 {
		t.Error("Total() != sum of components")
	}
}

func TestEvaluateMoreCacheNeverHurts(t *testing.T) {
	p := testProfile()
	cc := config.BigCore()
	sh := baseShares()
	base := p.Evaluate(cc, 128, sh).Total()
	sh.LLC *= 2
	bigger := p.Evaluate(cc, 128, sh).Total()
	if bigger > base+1e-12 {
		t.Fatalf("more LLC increased CPI: %g -> %g", base, bigger)
	}
	sh = baseShares()
	sh.L1D /= 4
	sh.L2 /= 4
	smaller := p.Evaluate(cc, 128, sh).Total()
	if smaller < base-1e-12 {
		t.Fatalf("less private cache decreased CPI: %g -> %g", base, smaller)
	}
}

func TestEvaluateMemLatencyMonotone(t *testing.T) {
	p := testProfile()
	cc := config.BigCore()
	sh := baseShares()
	lo := p.Evaluate(cc, 128, sh).Total()
	sh.MemLatencyCycles *= 4
	hi := p.Evaluate(cc, 128, sh).Total()
	if hi <= lo {
		t.Fatalf("higher memory latency did not raise CPI: %g vs %g", lo, hi)
	}
}

func TestEvaluateSmallerWindowCostsMore(t *testing.T) {
	p := testProfile()
	cc := config.BigCore()
	sh := baseShares()
	full := p.Evaluate(cc, 128, sh).Total()
	part := p.Evaluate(cc, 21, sh).Total()
	if part <= full {
		t.Fatalf("partitioned window should cost cycles: %g vs %g", full, part)
	}
}

func TestMemConstCPIAdded(t *testing.T) {
	p := testProfile()
	cc := config.BigCore()
	base := p.Evaluate(cc, 128, baseShares()).Total()
	p.MemConstCPI = 0.25
	withConst := p.Evaluate(cc, 128, baseShares()).Total()
	if math.Abs(withConst-base-0.25) > 1e-9 {
		t.Fatalf("const CPI not applied: %g vs %g", base, withConst)
	}
}

func TestDRAMAndLLCAccessRates(t *testing.T) {
	p := testProfile()
	sh := baseShares()
	dram := p.DRAMAccessesPerUop(sh)
	llc := p.LLCAccessesPerUop(sh)
	if dram <= 0 || llc <= 0 {
		t.Fatal("zero access rates")
	}
	if dram > llc {
		t.Fatalf("DRAM accesses (%g) exceed LLC accesses (%g)", dram, llc)
	}
	// Shrinking the LLC share raises DRAM traffic.
	sh.LLC = 64 << 10
	if p.DRAMAccessesPerUop(sh) <= dram {
		t.Fatal("smaller LLC share did not raise DRAM traffic")
	}
}

func TestShareWidth(t *testing.T) {
	// Demand below capacity: untouched.
	ipcs := []float64{1, 1.5}
	ShareWidth(ipcs, 4)
	if ipcs[0] != 1 || ipcs[1] != 1.5 {
		t.Fatalf("under-capacity demand scaled: %v", ipcs)
	}
	// Demand above capacity: proportional scaling to η·width.
	ipcs = []float64{3, 3}
	ShareWidth(ipcs, 4)
	sum := ipcs[0] + ipcs[1]
	want := SMTIssueEfficiency * 4
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("scaled sum %g, want %g", sum, want)
	}
	if math.Abs(ipcs[0]-ipcs[1]) > 1e-12 {
		t.Fatal("equal demands scaled unequally")
	}
	// Single thread is never scaled.
	ipcs = []float64{9}
	ShareWidth(ipcs, 4)
	if ipcs[0] != 9 {
		t.Fatal("single thread scaled")
	}
}

func TestShareWidthProportionalProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := float64(a)+1, float64(b)+1
		in := []float64{x, y}
		ShareWidth(in, 2)
		// Ratios preserved.
		return math.Abs(in[0]/in[1]-x/y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	big := config.BigCore()
	if got := Partition(big, 1); got != 128 {
		t.Errorf("Partition(big,1) = %d", got)
	}
	if got := Partition(big, 6); got != 21 {
		t.Errorf("Partition(big,6) = %d", got)
	}
	if got := Partition(big, 1000); got != big.Width {
		t.Errorf("Partition floors at width, got %d", got)
	}
	small := config.SmallCore()
	if got := Partition(small, 2); got != 1 {
		t.Errorf("Partition(in-order) = %d, want 1", got)
	}
}

func TestCPIStackTotal(t *testing.T) {
	st := CPIStack{Base: 1, Branch: 2, ICache: 3, L2: 4, LLC: 5, Mem: 6}
	if st.Total() != 21 {
		t.Fatalf("Total %g", st.Total())
	}
}

package trace

import (
	"math"
	"testing"
	"testing/quick"

	"smtflex/internal/isa"
)

func testSpec() Spec {
	var m [isa.NumClasses]float64
	m[isa.Load] = 0.25
	m[isa.Store] = 0.10
	m[isa.Branch] = 0.10
	m[isa.Jump] = 0.01
	m[isa.FpAdd] = 0.05
	m[isa.IntAlu] = 0.49
	return Spec{
		Name:               "test",
		Mix:                m,
		MeanDepDist:        8,
		SecondSrcProb:      0.5,
		BranchRandomFrac:   0.2,
		CodeFootprintBytes: 8 << 10,
		Streams: []MemStream{
			{Weight: 0.7, WorkingSetBytes: 16 << 10},
			{Weight: 0.3, WorkingSetBytes: 1 << 20, Sequential: true, StrideBytes: 16},
		},
		Seed: 0x42,
	}
}

func mustGen(t *testing.T, spec Spec, seed uint64) *Generator {
	t.Helper()
	g, err := NewGenerator(spec, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := testSpec()
	bad.Mix[isa.IntAlu] = 0 // mix no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Error("bad mix accepted")
	}
	bad = testSpec()
	bad.MeanDepDist = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("bad dep dist accepted")
	}
	bad = testSpec()
	bad.BranchRandomFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad branch frac accepted")
	}
	bad = testSpec()
	bad.CodeFootprintBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero code footprint accepted")
	}
	bad = testSpec()
	bad.Streams = nil
	if err := bad.Validate(); err == nil {
		t.Error("no streams accepted")
	}
	bad = testSpec()
	bad.Streams[1].StrideBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := mustGen(t, testSpec(), 7)
	b := mustGen(t, testSpec(), 7)
	for i := 0; i < 10000; i++ {
		ua, ub := a.Next(), b.Next()
		if ua != ub {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := mustGen(t, testSpec(), 1)
	b := mustGen(t, testSpec(), 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical µops", same)
	}
}

func TestResetReproduces(t *testing.T) {
	g := mustGen(t, testSpec(), 3)
	first := make([]isa.Uop, 1000)
	for i := range first {
		first[i] = g.Next()
	}
	g.Reset()
	if g.Count() != 0 {
		t.Fatal("count not reset")
	}
	for i := range first {
		if u := g.Next(); u != first[i] {
			t.Fatalf("reset stream diverged at %d", i)
		}
	}
}

func TestMixFractions(t *testing.T) {
	spec := testSpec()
	g := mustGen(t, spec, 11)
	var counts [isa.NumClasses]int
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		got := float64(counts[c]) / n
		if math.Abs(got-spec.Mix[c]) > 0.01 {
			t.Errorf("%v: fraction %.3f, want %.3f", c, got, spec.Mix[c])
		}
	}
}

func TestDependencyDistanceMean(t *testing.T) {
	spec := testSpec()
	g := mustGen(t, spec, 13)
	var sum, n float64
	for i := 0; i < 100000; i++ {
		u := g.Next()
		if u.SrcDist[0] > 0 && u.Class != isa.Load {
			sum += float64(u.SrcDist[0])
			n++
		}
	}
	mean := sum / n
	if math.Abs(mean-spec.MeanDepDist) > 1.0 {
		t.Errorf("mean dep dist %.2f, want ~%.1f", mean, spec.MeanDepDist)
	}
}

func TestAddressesWithinWorkingSets(t *testing.T) {
	spec := testSpec()
	g := mustGen(t, spec, 17)
	for i := 0; i < 50000; i++ {
		u := g.Next()
		if !u.Class.IsMem() {
			continue
		}
		// Each stream lives in its own 1 GiB region; the offset within the
		// region must stay below the stream's working set.
		region := u.Addr >> 30
		if region < 1 || region > uint64(len(spec.Streams)) {
			t.Fatalf("address %#x outside stream regions", u.Addr)
		}
		off := u.Addr - (region << 30)
		ws := uint64(spec.Streams[region-1].WorkingSetBytes)
		if off >= ws {
			t.Fatalf("offset %d beyond working set %d of stream %d", off, ws, region-1)
		}
	}
}

func TestPCWithinCodeFootprint(t *testing.T) {
	spec := testSpec()
	g := mustGen(t, spec, 19)
	base := uint64(1) << 62
	for i := 0; i < 50000; i++ {
		u := g.Next()
		if u.PC < base || u.PC >= base+uint64(spec.CodeFootprintBytes) {
			t.Fatalf("PC %#x outside code footprint", u.PC)
		}
	}
}

func TestBranchBiasConsistency(t *testing.T) {
	// Non-random branches at the same PC always take the same direction, so
	// a per-PC predictor can learn them.
	spec := testSpec()
	spec.BranchRandomFrac = 0
	g := mustGen(t, spec, 23)
	dirs := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		u := g.Next()
		if u.Class != isa.Branch {
			continue
		}
		if prev, ok := dirs[u.PC]; ok && prev != u.Taken {
			t.Fatalf("biased branch at %#x changed direction", u.PC)
		}
		dirs[u.PC] = u.Taken
	}
}

func TestSequentialStreamStrides(t *testing.T) {
	var m [isa.NumClasses]float64
	m[isa.Load] = 0.5
	m[isa.IntAlu] = 0.5
	spec := Spec{
		Name: "seq", Mix: m, MeanDepDist: 4, CodeFootprintBytes: 1024,
		Streams: []MemStream{{Weight: 1, WorkingSetBytes: 1 << 20, Sequential: true, StrideBytes: 64}},
	}
	g := mustGen(t, spec, 29)
	var last uint64
	seen := false
	for i := 0; i < 1000; i++ {
		u := g.Next()
		if u.Class != isa.Load {
			continue
		}
		if seen && u.Addr != last+64 && u.Addr >= last {
			t.Fatalf("stride violated: %#x -> %#x", last, u.Addr)
		}
		last, seen = u.Addr, true
	}
}

func TestPointerChaseSerializes(t *testing.T) {
	var m [isa.NumClasses]float64
	m[isa.Load] = 1.0
	spec := Spec{
		Name: "chase", Mix: m, MeanDepDist: 100, CodeFootprintBytes: 1024,
		Streams: []MemStream{{Weight: 1, WorkingSetBytes: 1 << 20, PointerChase: true}},
	}
	g := mustGen(t, spec, 31)
	for i := 0; i < 100; i++ {
		if u := g.Next(); u.SrcDist[0] != 1 {
			t.Fatalf("pointer-chase load has dep dist %d, want 1", u.SrcDist[0])
		}
	}
}

func TestOffsetAddresses(t *testing.T) {
	g1 := mustGen(t, testSpec(), 37)
	g2 := mustGen(t, testSpec(), 37)
	r := OffsetAddresses(g2, 1<<40)
	for i := 0; i < 1000; i++ {
		u1, u2 := g1.Next(), r.Next()
		if u1.Class.IsMem() {
			if u2.Addr != u1.Addr+1<<40 {
				t.Fatalf("offset not applied: %#x vs %#x", u1.Addr, u2.Addr)
			}
		} else if u2.Addr != u1.Addr {
			t.Fatalf("non-mem address changed")
		}
	}
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("offset reader reset failed")
	}
}

func TestGeneratorCount(t *testing.T) {
	g := mustGen(t, testSpec(), 41)
	for i := 0; i < 55; i++ {
		g.Next()
	}
	if g.Count() != 55 {
		t.Fatalf("count %d", g.Count())
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Property: for any seed, two generators agree on the first 200 µops.
	f := func(seed uint64) bool {
		a := mustGen(t, testSpec(), seed)
		b := mustGen(t, testSpec(), seed)
		for i := 0; i < 200; i++ {
			if a.Next() != b.Next() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Package trace generates deterministic synthetic µop streams from
// statistical benchmark specifications.
//
// The original study drives Sniper with SPEC CPU 2006 SimPoint traces. We do
// not have those traces, so each benchmark is described by a Spec — its
// instruction mix, dependency-distance distribution, branch predictability,
// code footprint and a memory access mixture over working sets of different
// sizes — and a seeded Generator expands the Spec into an unbounded µop
// stream. Two generators with the same Spec and seed produce identical
// streams, making every experiment reproducible.
package trace

import (
	"errors"
	"fmt"

	"smtflex/internal/isa"
)

// ErrBadTrace is wrapped by every spec-validation failure, so callers up the
// stack (and the daemon's error mapper) can classify bad benchmark
// descriptions without matching message strings.
var ErrBadTrace = errors.New("trace: invalid benchmark spec")

// MemStream describes one component of a benchmark's memory access mixture.
type MemStream struct {
	// Weight is the relative probability that a memory µop uses this stream.
	Weight float64
	// WorkingSetBytes is the footprint of the stream. Random streams pick
	// uniformly within it; sequential streams wrap around it.
	WorkingSetBytes int
	// Sequential streams advance by StrideBytes per access; non-sequential
	// streams pick a uniformly random block within the working set.
	Sequential bool
	// StrideBytes is the advance per access for sequential streams.
	StrideBytes int
	// PointerChase marks loads whose address depends on the previous load of
	// this stream, serializing their memory-level parallelism.
	PointerChase bool
}

// Spec statistically describes a benchmark.
type Spec struct {
	// Name identifies the benchmark (e.g. "libquantum-like").
	Name string
	// Mix gives the fraction of µops per class; it must sum to ~1.
	Mix [isa.NumClasses]float64
	// MeanDepDist is the mean register dependency distance in µops. Short
	// distances produce dependency chains (low ILP); long distances expose
	// instruction-level parallelism.
	MeanDepDist float64
	// SecondSrcProb is the probability a µop has a second register source.
	SecondSrcProb float64
	// BranchRandomFrac is the fraction of dynamic branches with an
	// unpredictable 50/50 direction; the rest are strongly biased and
	// near-perfectly predictable. Mispredict rate ≈ BranchRandomFrac/2.
	BranchRandomFrac float64
	// CodeFootprintBytes is the static code size driving I-cache behaviour.
	CodeFootprintBytes int
	// Streams is the memory access mixture; weights are normalized.
	Streams []MemStream
	// Seed differentiates benchmarks that share a Spec shape.
	Seed uint64
}

// Validate reports structural problems in the Spec. Every failure wraps
// ErrBadTrace.
func (s Spec) Validate() error {
	if err := s.validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	return nil
}

func (s Spec) validate() error {
	var sum float64
	for _, f := range s.Mix {
		if f < 0 {
			return fmt.Errorf("spec %s: negative mix fraction", s.Name)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("spec %s: mix sums to %g, want 1", s.Name, sum)
	}
	if s.MeanDepDist < 1 {
		return fmt.Errorf("spec %s: mean dependency distance %g < 1", s.Name, s.MeanDepDist)
	}
	if s.BranchRandomFrac < 0 || s.BranchRandomFrac > 1 {
		return fmt.Errorf("spec %s: branch random fraction %g outside [0,1]", s.Name, s.BranchRandomFrac)
	}
	if s.CodeFootprintBytes <= 0 {
		return fmt.Errorf("spec %s: non-positive code footprint", s.Name)
	}
	if len(s.Streams) == 0 {
		return fmt.Errorf("spec %s: no memory streams", s.Name)
	}
	var w float64
	for i, st := range s.Streams {
		if st.Weight < 0 {
			return fmt.Errorf("spec %s: stream %d has negative weight", s.Name, i)
		}
		if st.WorkingSetBytes < isa.MemBlockSize {
			return fmt.Errorf("spec %s: stream %d working set smaller than a block", s.Name, i)
		}
		if st.Sequential && st.StrideBytes <= 0 {
			return fmt.Errorf("spec %s: sequential stream %d has stride %d", s.Name, i, st.StrideBytes)
		}
		w += st.Weight
	}
	if w <= 0 {
		return fmt.Errorf("spec %s: stream weights sum to %g", s.Name, w)
	}
	return nil
}

// rng is a splitmix64 generator: tiny, fast and deterministic.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generator expands a Spec into a deterministic µop stream.
type Generator struct {
	spec Spec
	rng  rng
	seed uint64

	// cumulative class and stream distributions for fast sampling
	classCDF  [isa.NumClasses]float64
	streamCDF []float64

	// per-stream cursors for sequential and pointer-chase streams
	cursor []uint64
	// per-stream base addresses keep streams in disjoint regions
	base []uint64

	// code region walker
	pc       uint64
	codeBase uint64

	// branch bias state: per static branch slot, a biased direction
	biasDirs []bool

	count uint64
}

// codeBlockBytes is the distance between successive basic-block starts in
// the synthetic code layout.
const codeBlockBytes = 32

// NewGenerator builds a generator for spec. Invalid specs fail with an error
// wrapping ErrBadTrace; a malformed benchmark description must fail the one
// evaluation that references it, never the process.
func NewGenerator(spec Spec, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{spec: spec, seed: seed ^ spec.Seed}
	var c float64
	for i, f := range spec.Mix {
		c += f
		g.classCDF[i] = c
	}
	var w float64
	for _, st := range spec.Streams {
		w += st.Weight
	}
	g.streamCDF = make([]float64, len(spec.Streams))
	var acc float64
	for i, st := range spec.Streams {
		acc += st.Weight / w
		g.streamCDF[i] = acc
	}
	g.Reset()
	return g, nil
}

// Spec returns the generator's benchmark specification.
func (g *Generator) Spec() Spec { return g.spec }

// Count returns the number of µops generated since the last Reset.
func (g *Generator) Count() uint64 { return g.count }

// Reset restarts the stream from the beginning; the regenerated stream is
// identical to the original. The paper restarts programs that finish their
// 750M-instruction SimPoint before the slowest co-runner.
func (g *Generator) Reset() {
	g.rng = rng{state: g.seed}
	g.count = 0
	n := len(g.spec.Streams)
	g.cursor = make([]uint64, n)
	g.base = make([]uint64, n)
	// Lay streams out in disjoint 1 GiB-aligned regions per stream, offset
	// by a benchmark-specific hash so co-running copies of the same
	// benchmark still map to distinct addresses via their thread's offset.
	for i := range g.base {
		g.base[i] = (uint64(i) + 1) << 30
	}
	g.codeBase = 1 << 62
	g.pc = g.codeBase
	// Static branch bias directions, deterministic per benchmark.
	nSlots := g.spec.CodeFootprintBytes / codeBlockBytes
	if nSlots < 1 {
		nSlots = 1
	}
	g.biasDirs = make([]bool, nSlots)
	r := rng{state: g.seed ^ 0xB1A5}
	for i := range g.biasDirs {
		g.biasDirs[i] = r.next()&1 == 0
	}
}

func (g *Generator) sampleClass() isa.Class {
	f := g.rng.float()
	for i := isa.Class(0); i < isa.NumClasses; i++ {
		if f < g.classCDF[i] {
			return i
		}
	}
	return isa.IntAlu
}

func (g *Generator) sampleStream() int {
	f := g.rng.float()
	for i, c := range g.streamCDF {
		if f < c {
			return i
		}
	}
	return len(g.streamCDF) - 1
}

// depDist draws a geometric dependency distance with the spec's mean.
func (g *Generator) depDist() int32 {
	mean := g.spec.MeanDepDist
	// Geometric with success prob 1/mean, minimum 1.
	p := 1 / mean
	d := 1
	for g.rng.float() > p && d < 512 {
		d++
	}
	return int32(d)
}

func (g *Generator) memAddr(si int) uint64 {
	st := &g.spec.Streams[si]
	ws := uint64(st.WorkingSetBytes)
	var off uint64
	if st.Sequential {
		off = g.cursor[si] % ws
		g.cursor[si] += uint64(st.StrideBytes)
	} else {
		blocks := int(ws / isa.MemBlockSize)
		off = uint64(g.rng.intn(blocks)) * isa.MemBlockSize
	}
	return g.base[si] + off
}

// Next generates the next µop in the stream.
func (g *Generator) Next() isa.Uop {
	g.count++
	class := g.sampleClass()
	u := isa.Uop{Class: class, PC: g.pc}

	// Advance the code walker: sequential fall-through with occasional jumps
	// around the code footprint to exercise the I-cache.
	g.pc += 4
	span := uint64(g.spec.CodeFootprintBytes)
	if g.pc >= g.codeBase+span {
		g.pc = g.codeBase
	}

	u.SrcDist[0] = g.depDist()
	if g.rng.float() < g.spec.SecondSrcProb {
		u.SrcDist[1] = g.depDist()
	}

	switch {
	case class.IsMem():
		si := g.sampleStream()
		u.Addr = g.memAddr(si)
		if g.spec.Streams[si].PointerChase && class == isa.Load {
			// Serialize on the previous load: distance 1 in load ordering is
			// approximated by a short register dependency.
			u.SrcDist[0] = 1
		}
	case class == isa.Branch:
		slot := int((g.pc/codeBlockBytes)%uint64(len(g.biasDirs))) % len(g.biasDirs)
		if g.rng.float() < g.spec.BranchRandomFrac {
			u.Taken = g.rng.next()&1 == 0
			u.Mispredict = g.rng.next()&1 == 0
		} else {
			u.Taken = g.biasDirs[slot]
			u.Mispredict = false
		}
		if u.Taken {
			g.jump()
		}
	case class == isa.Jump:
		g.jump()
	}
	return u
}

// farJumpFrac is the fraction of control transfers that target a uniformly
// random block of the code footprint; the rest are short jumps (loops and
// nearby calls), matching the strong spatial locality of real code.
const farJumpFrac = 0.05

// localJumpSpanBlocks bounds the reach of a short jump.
const localJumpSpanBlocks = 32

// jump redirects the code walker to a control-transfer target.
func (g *Generator) jump() {
	blocks := g.spec.CodeFootprintBytes / codeBlockBytes
	if blocks < 1 {
		blocks = 1
	}
	var target int
	cur := int((g.pc - g.codeBase) / codeBlockBytes)
	if g.rng.float() < farJumpFrac {
		target = g.rng.intn(blocks)
	} else {
		span := localJumpSpanBlocks
		if span > blocks {
			span = blocks
		}
		// Mostly backwards (loops), within the local span.
		target = cur - g.rng.intn(span)
		if target < 0 {
			target += blocks
		}
	}
	g.pc = g.codeBase + uint64(target%blocks)*codeBlockBytes
}

// OffsetAddresses returns a Reader that relocates all data addresses by the
// given offset, so multiple copies of one benchmark touch disjoint memory.
func OffsetAddresses(g *Generator, offset uint64) Reader {
	return &offsetReader{g: g, off: offset}
}

// Reader is the stream interface the core models consume.
type Reader interface {
	// Next returns the next µop.
	Next() isa.Uop
	// Reset restarts the stream.
	Reset()
	// Count reports µops produced since the last Reset.
	Count() uint64
}

type offsetReader struct {
	g   *Generator
	off uint64
}

// Next implements Reader, relocating data addresses by the offset.
func (r *offsetReader) Next() isa.Uop {
	u := r.g.Next()
	if u.Class.IsMem() {
		u.Addr += r.off
	}
	return u
}

// Reset implements Reader.
func (r *offsetReader) Reset() { r.g.Reset() }

// Count implements Reader.
func (r *offsetReader) Count() uint64 { return r.g.Count() }

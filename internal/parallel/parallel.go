// Package parallel models multi-threaded applications in the style of the
// PARSEC benchmarks: a sequential initialization/finalization phase, a
// parallel region of interest (ROI) structured as barrier intervals with
// per-thread work imbalance, serialized sections inside the ROI, and a
// per-application limit on useful parallelism. These are the mechanisms the
// paper identifies as the sources of time-varying active thread counts in
// multi-threaded workloads (threads blocked on barriers and locks yield the
// processor).
//
// Each application names a kernel benchmark spec whose measured profile
// provides per-thread execution rates on any core type; the fork-join model
// then computes ROI and whole-program execution times and the
// time-in-active-thread-count histogram of Figure 1.
package parallel

import (
	"fmt"
	"math"
	"sort"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// App describes one multi-threaded application.
type App struct {
	// Name is the PARSEC benchmark the model imitates.
	Name string
	// Kernel is the workload-package benchmark whose profile describes the
	// per-thread computation.
	Kernel string
	// SeqFraction is the fraction of whole-program work in the sequential
	// initialization/finalization phases (outside the ROI).
	SeqFraction float64
	// ROISerialFraction is the fraction of ROI work that is serialized
	// (critical sections and serial sections between parallel intervals).
	ROISerialFraction float64
	// Intervals is the number of barrier intervals in the ROI.
	Intervals int
	// Imbalance is the coefficient of variation of per-thread work within a
	// barrier interval; bigger values mean threads finish at more spread-out
	// times and wait longer at barriers.
	Imbalance float64
	// MaxParallelism caps the number of threads that receive work; extra
	// threads stay idle (the application does not scale further).
	MaxParallelism int
	// OverheadAlpha models parallelization overhead: with w workers the
	// total ROI work inflates by a factor 1+OverheadAlpha·(w-1) (redundant
	// computation, communication, lock spinning). Threads stay active but
	// speedup saturates — the "scales well up to 8 threads, not beyond"
	// behaviour of the paper's benchmarks.
	OverheadAlpha float64
	// WorkUops is the total ROI work.
	WorkUops float64
	// Seed drives the deterministic imbalance noise.
	Seed uint64
}

// Validate reports parameter errors.
func (a App) Validate() error {
	switch {
	case a.Name == "" || a.Kernel == "":
		return fmt.Errorf("parallel: app needs name and kernel")
	case a.SeqFraction < 0 || a.SeqFraction >= 1:
		return fmt.Errorf("parallel: app %s: seq fraction %g", a.Name, a.SeqFraction)
	case a.ROISerialFraction < 0 || a.ROISerialFraction >= 1:
		return fmt.Errorf("parallel: app %s: ROI serial fraction %g", a.Name, a.ROISerialFraction)
	case a.Intervals <= 0:
		return fmt.Errorf("parallel: app %s: intervals %d", a.Name, a.Intervals)
	case a.Imbalance < 0 || a.Imbalance > 1:
		return fmt.Errorf("parallel: app %s: imbalance %g", a.Name, a.Imbalance)
	case a.OverheadAlpha < 0 || a.OverheadAlpha > 1:
		return fmt.Errorf("parallel: app %s: overhead alpha %g", a.Name, a.OverheadAlpha)
	case a.MaxParallelism <= 0:
		return fmt.Errorf("parallel: app %s: max parallelism %d", a.Name, a.MaxParallelism)
	case a.WorkUops <= 0:
		return fmt.Errorf("parallel: app %s: work %g", a.Name, a.WorkUops)
	}
	return nil
}

// barrierNs is the fixed synchronization cost per barrier crossing.
const barrierNs = 500

// Result is the outcome of executing an app on a design.
type Result struct {
	// ROINs is the parallel region execution time.
	ROINs float64
	// TotalNs includes the sequential init/finalize phases.
	TotalNs float64
	// Active[k-1] is the fraction of ROI time with exactly k runnable
	// threads (length 24; counts above 24 clamp).
	Active [24]float64
}

// Evaluate runs app with the given software thread count on design d,
// using pinned scheduling (threads stay on their cores) and executing
// serial phases on the first (biggest) core.
func Evaluate(app App, d config.Design, threads int, src sched.ProfileSource) (Result, error) {
	if err := app.Validate(); err != nil {
		return Result{}, err
	}
	if threads < 1 {
		return Result{}, fmt.Errorf("parallel: need at least one thread")
	}

	// Per-thread steady-state rates with all workers active.
	workers := threads
	if workers > app.MaxParallelism {
		workers = app.MaxParallelism
	}
	progs := make([]string, workers)
	for i := range progs {
		progs[i] = app.Kernel
	}
	mix := workload.Mix{ID: fmt.Sprintf("par-%s-%d", app.Name, workers), Programs: progs}
	placement, err := sched.Place(d, mix, src)
	if err != nil {
		return Result{}, err
	}
	solved, err := contention.Solve(placement)
	if err != nil {
		return Result{}, err
	}
	rates := make([]float64, workers)
	for i := range rates {
		rates[i] = solved.Threads[i].UopsPerNs
		if rates[i] <= 0 {
			return Result{}, fmt.Errorf("parallel: thread %d has zero rate", i)
		}
	}

	// Serial work runs alone on the first core (the biggest).
	serialRate, err := soloRate(app.Kernel, d, src)
	if err != nil {
		return Result{}, err
	}

	var res Result
	inflate := 1 + app.OverheadAlpha*float64(workers-1)
	parWork := app.WorkUops * (1 - app.ROISerialFraction) * inflate
	serialWork := app.WorkUops * app.ROISerialFraction
	perInterval := parWork / float64(app.Intervals) / float64(workers)
	serialPerInterval := serialWork / float64(app.Intervals)

	noise := noiseSource{seed: app.Seed}
	finish := make([]float64, workers)
	for k := 0; k < app.Intervals; k++ {
		// Parallel section: each worker gets imbalanced work.
		for i := range finish {
			w := perInterval * noise.factor(k, i, app.Imbalance)
			finish[i] = w / rates[i]
		}
		sort.Float64s(finish)
		intervalTime := finish[workers-1]
		// Accumulate active-thread time: between the (j-1)-th and j-th
		// ordered completion, workers-j+... threads are still running.
		prev := 0.0
		for j, t := range finish {
			activeCount := workers - j
			res.addActive(activeCount, t-prev)
			prev = t
		}
		res.ROINs += intervalTime + barrierNs
		res.addActive(1, barrierNs) // barrier exit is serialized briefly
		// Serialized section between intervals runs on the big core alone.
		if serialPerInterval > 0 {
			t := serialPerInterval / serialRate
			res.ROINs += t
			res.addActive(1, t)
		}
	}

	// Whole program: sequential init/finalize on the big core.
	seqWork := app.WorkUops * app.SeqFraction / (1 - app.SeqFraction)
	res.TotalNs = res.ROINs + seqWork/serialRate

	// Normalize the histogram to fractions of ROI time.
	var total float64
	for _, v := range res.Active {
		total += v
	}
	if total > 0 {
		for i := range res.Active {
			res.Active[i] /= total
		}
	}
	return res, nil
}

func (r *Result) addActive(count int, duration float64) {
	if duration <= 0 {
		return
	}
	if count < 1 {
		count = 1
	}
	if count > len(r.Active) {
		count = len(r.Active)
	}
	r.Active[count-1] += duration
}

// soloRate is the kernel's isolated rate on the design's first core.
func soloRate(kernel string, d config.Design, src sched.ProfileSource) (float64, error) {
	mix := workload.Mix{ID: "par-solo", Programs: []string{kernel}}
	placement, err := sched.Place(d, mix, src)
	if err != nil {
		return 0, err
	}
	// Pin to core 0 explicitly: Place puts a single thread there already
	// (cores are ordered big first).
	solved, err := contention.Solve(placement)
	if err != nil {
		return 0, err
	}
	return solved.Threads[0].UopsPerNs, nil
}

// noiseSource produces deterministic per-(interval,thread) work factors
// with mean 1 and the requested coefficient of variation.
type noiseSource struct{ seed uint64 }

func (n noiseSource) factor(interval, thread int, cv float64) float64 {
	if cv == 0 {
		return 1
	}
	x := n.seed ^ uint64(interval)*0x9E3779B97F4A7C15 ^ uint64(thread)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 27
	u := float64(x>>11) / (1 << 53) // uniform [0,1)
	// Uniform on [1-√3·cv, 1+√3·cv] has mean 1 and stddev cv.
	f := 1 + math.Sqrt(3)*cv*(2*u-1)
	if f < 0.05 {
		f = 0.05
	}
	return f
}

package parallel

import (
	"fmt"
	"sort"
)

// Apps returns the PARSEC-like application models, sorted by name. The
// parameters place each application in the qualitative class the paper
// reports: blackscholes, canneal and raytrace keep all threads active most
// of the time; bodytrack and swaptions alternate between one and all
// threads; dedup, ferret and freqmine have strongly varying active thread
// counts and limited scaling; streamcluster and fluidanimate are
// barrier-heavy; canneal and streamcluster are memory-bound.
func Apps() []App {
	const work = 400e6
	apps := []App{
		{Name: "blackscholes", Kernel: "calculix", SeqFraction: 0.12, ROISerialFraction: 0.003,
			Intervals: 10, Imbalance: 0.04, MaxParallelism: 24, OverheadAlpha: 0.02, WorkUops: work, Seed: 0x11},
		{Name: "bodytrack", Kernel: "h264ref", SeqFraction: 0.08, ROISerialFraction: 0.06,
			Intervals: 40, Imbalance: 0.10, MaxParallelism: 24, OverheadAlpha: 0.06, WorkUops: work, Seed: 0x12},
		{Name: "canneal", Kernel: "omnetpp", SeqFraction: 0.20, ROISerialFraction: 0.004,
			Intervals: 12, Imbalance: 0.07, MaxParallelism: 24, OverheadAlpha: 0.04, WorkUops: work, Seed: 0x13},
		{Name: "dedup", Kernel: "bzip2", SeqFraction: 0.08, ROISerialFraction: 0.035,
			Intervals: 30, Imbalance: 0.45, MaxParallelism: 16, OverheadAlpha: 0.10, WorkUops: work, Seed: 0x14},
		{Name: "facesim", Kernel: "calculix", SeqFraction: 0.14, ROISerialFraction: 0.012,
			Intervals: 25, Imbalance: 0.15, MaxParallelism: 20, OverheadAlpha: 0.07, WorkUops: work, Seed: 0x15},
		{Name: "ferret", Kernel: "gcc", SeqFraction: 0.08, ROISerialFraction: 0.05,
			Intervals: 30, Imbalance: 0.40, MaxParallelism: 12, OverheadAlpha: 0.12, WorkUops: work, Seed: 0x16},
		{Name: "fluidanimate", Kernel: "soplex", SeqFraction: 0.10, ROISerialFraction: 0.008,
			Intervals: 60, Imbalance: 0.12, MaxParallelism: 24, OverheadAlpha: 0.06, WorkUops: work, Seed: 0x17},
		{Name: "freqmine", Kernel: "gobmk", SeqFraction: 0.10, ROISerialFraction: 0.08,
			Intervals: 25, Imbalance: 0.30, MaxParallelism: 10, OverheadAlpha: 0.15, WorkUops: work, Seed: 0x18},
		{Name: "raytrace", Kernel: "hmmer", SeqFraction: 0.22, ROISerialFraction: 0.003,
			Intervals: 15, Imbalance: 0.05, MaxParallelism: 24, OverheadAlpha: 0.02, WorkUops: work, Seed: 0x19},
		{Name: "streamcluster", Kernel: "libquantum", SeqFraction: 0.03, ROISerialFraction: 0.012,
			Intervals: 80, Imbalance: 0.10, MaxParallelism: 24, OverheadAlpha: 0.05, WorkUops: work, Seed: 0x1A},
		{Name: "swaptions", Kernel: "tonto", SeqFraction: 0.02, ROISerialFraction: 0.01,
			Intervals: 8, Imbalance: 0.55, MaxParallelism: 24, OverheadAlpha: 0.03, WorkUops: work, Seed: 0x1B},
		{Name: "vips", Kernel: "h264ref", SeqFraction: 0.07, ROISerialFraction: 0.025,
			Intervals: 30, Imbalance: 0.20, MaxParallelism: 18, OverheadAlpha: 0.08, WorkUops: work, Seed: 0x1C},
		{Name: "x264", Kernel: "h264ref", SeqFraction: 0.05, ROISerialFraction: 0.028,
			Intervals: 40, Imbalance: 0.35, MaxParallelism: 16, OverheadAlpha: 0.08, WorkUops: work, Seed: 0x1D},
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	return apps
}

// AppByName returns the named application model.
func AppByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("parallel: unknown app %q", name)
}

// AppNames returns the application names in sorted order.
func AppNames() []string {
	as := Apps()
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

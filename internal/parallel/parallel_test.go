package parallel

import (
	"math"
	"sync"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/profiler"
)

var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(60_000) })
	return src
}

func mustApp(t *testing.T, name string) App {
	t.Helper()
	a, err := AppByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustEval(t *testing.T, app App, design string, smt bool, threads int) Result {
	t.Helper()
	d, err := config.DesignByName(design, smt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(app, d, threads, source())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAppsValid(t *testing.T) {
	apps := Apps()
	if len(apps) != 13 {
		t.Fatalf("%d apps, want 13 (the PARSEC suite)", len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestAppByName(t *testing.T) {
	if _, err := AppByName("ferret"); err != nil {
		t.Fatal(err)
	}
	if _, err := AppByName("fortnite"); err == nil {
		t.Fatal("unknown app accepted")
	}
	names := AppNames()
	if len(names) != 13 {
		t.Fatalf("%d names", len(names))
	}
}

func TestValidateRejects(t *testing.T) {
	base := mustApp(t, "ferret")
	mutations := []func(*App){
		func(a *App) { a.Name = "" },
		func(a *App) { a.SeqFraction = 1 },
		func(a *App) { a.ROISerialFraction = -0.1 },
		func(a *App) { a.Intervals = 0 },
		func(a *App) { a.Imbalance = 2 },
		func(a *App) { a.OverheadAlpha = -1 },
		func(a *App) { a.MaxParallelism = 0 },
		func(a *App) { a.WorkUops = 0 },
	}
	for i, mutate := range mutations {
		a := base
		mutate(&a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSpeedupWithThreads(t *testing.T) {
	// A well-scaling app gets faster with more threads on 20s.
	app := mustApp(t, "blackscholes")
	t4 := mustEval(t, app, "20s", false, 4).ROINs
	t16 := mustEval(t, app, "20s", false, 16).ROINs
	if t16 >= t4 {
		t.Fatalf("no scaling: 4 threads %g ns, 16 threads %g ns", t4, t16)
	}
	if sp := t4 / t16; sp < 2 {
		t.Fatalf("blackscholes speedup 4->16 threads only %.2f", sp)
	}
}

func TestLimitedScalingSaturates(t *testing.T) {
	// ferret (MaxParallelism 12): 24 threads no better than 12.
	app := mustApp(t, "ferret")
	t12 := mustEval(t, app, "20s", false, 12).ROINs
	t24 := mustEval(t, app, "20s", true, 24).ROINs
	if t24 < t12*0.95 {
		t.Fatalf("ferret should not scale past 12 threads: %g vs %g", t12, t24)
	}
}

func TestROILessThanTotal(t *testing.T) {
	for _, name := range AppNames() {
		res := mustEval(t, mustApp(t, name), "4B", true, 8)
		if res.TotalNs <= res.ROINs {
			t.Errorf("%s: whole-program time %g <= ROI %g", name, res.TotalNs, res.ROINs)
		}
	}
}

func TestActiveHistogramNormalized(t *testing.T) {
	res := mustEval(t, mustApp(t, "fluidanimate"), "20s", false, 20)
	var sum float64
	for _, v := range res.Active {
		if v < 0 {
			t.Fatal("negative histogram entry")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %g", sum)
	}
}

func TestWellScalingAppMostlyAllActive(t *testing.T) {
	res := mustEval(t, mustApp(t, "blackscholes"), "20s", false, 20)
	if res.Active[19] < 0.5 {
		t.Fatalf("blackscholes 20-active fraction %.2f, want most of the time", res.Active[19])
	}
}

func TestSerialAppOftenSingleActive(t *testing.T) {
	res := mustEval(t, mustApp(t, "freqmine"), "20s", false, 20)
	if res.Active[0] < 0.1 {
		t.Fatalf("freqmine 1-active fraction %.2f, want substantial serial time", res.Active[0])
	}
	if res.Active[19] > 0.1 {
		t.Fatalf("freqmine should not keep 20 threads active (max parallelism 10), got %.2f", res.Active[19])
	}
}

func TestDeterministic(t *testing.T) {
	a := mustEval(t, mustApp(t, "dedup"), "1B6m", true, 12)
	b := mustEval(t, mustApp(t, "dedup"), "1B6m", true, 12)
	if a.ROINs != b.ROINs || a.TotalNs != b.TotalNs {
		t.Fatal("evaluation not deterministic")
	}
}

func TestImbalanceCostsTime(t *testing.T) {
	app := mustApp(t, "blackscholes")
	app.Imbalance = 0
	balanced := mustEval(t, app, "20s", false, 20).ROINs
	app.Imbalance = 0.5
	app.Seed = 0x77
	imbalanced := mustEval(t, app, "20s", false, 20).ROINs
	if imbalanced <= balanced {
		t.Fatalf("imbalance free: %g vs %g", balanced, imbalanced)
	}
}

func TestSerialPhaseRunsFasterOnBigCore(t *testing.T) {
	// Same app, same thread count: a design with a big core finishes the
	// whole program (with its serial phases) faster than 20s when the ROI
	// time is comparable.
	app := mustApp(t, "raytrace") // large sequential init
	on20s := mustEval(t, app, "20s", false, 16)
	on1B := mustEval(t, app, "1B15s", false, 16)
	seq20s := on20s.TotalNs - on20s.ROINs
	seq1B := on1B.TotalNs - on1B.ROINs
	if seq1B >= seq20s {
		t.Fatalf("serial phase not faster on the big core: %g vs %g", seq1B, seq20s)
	}
}

func TestBadInput(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	if _, err := Evaluate(App{}, d, 4, source()); err == nil {
		t.Fatal("invalid app accepted")
	}
	if _, err := Evaluate(mustApp(t, "vips"), d, 0, source()); err == nil {
		t.Fatal("zero threads accepted")
	}
}

func TestOverheadAlphaSlowsScaling(t *testing.T) {
	app := mustApp(t, "blackscholes")
	app.OverheadAlpha = 0
	ideal := mustEval(t, app, "20s", false, 20).ROINs
	app.OverheadAlpha = 0.2
	heavy := mustEval(t, app, "20s", false, 20).ROINs
	if heavy <= ideal*1.5 {
		t.Fatalf("overhead alpha had little effect: %g vs %g", ideal, heavy)
	}
}

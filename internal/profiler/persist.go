package profiler

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"smtflex/internal/config"
	"smtflex/internal/interval"
)

// profileFile is the on-disk format: a versioned list of profiles with
// their keys, so a profile set measured once (e.g. at high fidelity on a
// build server) can be reused across runs.
type profileFile struct {
	// Version guards against format drift.
	Version int `json:"version"`
	// UopCount and Warmup record the measurement fidelity.
	UopCount uint64          `json:"uop_count"`
	Warmup   uint64          `json:"warmup"`
	Profiles []storedProfile `json:"profiles"`
}

type storedProfile struct {
	Benchmark string           `json:"benchmark"`
	Core      string           `json:"core"`
	Profile   interval.Profile `json:"profile"`
}

const persistVersion = 1

// SaveJSON writes every profile measured so far.
func (s *Source) SaveJSON(w io.Writer) error {
	file := profileFile{Version: persistVersion, UopCount: s.UopCount, Warmup: s.Warmup}
	s.profiles.Range(func(key profileKey, p *interval.Profile) {
		file.Profiles = append(file.Profiles, storedProfile{
			Benchmark: key.bench,
			Core:      key.core.String(),
			Profile:   *p,
		})
	})
	sort.Slice(file.Profiles, func(i, j int) bool {
		a, b := file.Profiles[i], file.Profiles[j]
		if a.Benchmark != b.Benchmark {
			return a.Benchmark < b.Benchmark
		}
		return a.Core < b.Core
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(file)
}

// SaveJSONFile writes the profiles to path crash-safely: the data goes to a
// temporary file in the same directory, is fsynced, and then atomically
// renamed over the destination. A crash mid-write leaves the previous file
// intact rather than a truncated JSON document.
func (s *Source) SaveJSONFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("profiler: saving profiles: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = s.SaveJSON(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("profiler: saving profiles: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("profiler: saving profiles: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("profiler: saving profiles: %w", err)
	}
	return nil
}

// LoadJSONFile loads profiles from path; see LoadJSON.
func (s *Source) LoadJSONFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("profiler: loading profiles: %w", err)
	}
	defer f.Close()
	return s.LoadJSON(f)
}

// LoadJSON populates the cache with previously saved profiles; subsequent
// Profile calls for those keys return the loaded data without simulation.
// It returns the number of profiles loaded.
func (s *Source) LoadJSON(r io.Reader) (int, error) {
	var file profileFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return 0, fmt.Errorf("profiler: decoding profiles: %w", err)
	}
	if file.Version != persistVersion {
		return 0, fmt.Errorf("profiler: profile file version %d, want %d", file.Version, persistVersion)
	}
	n := 0
	for _, sp := range file.Profiles {
		ct, err := coreTypeByName(sp.Core)
		if err != nil {
			return n, err
		}
		p := sp.Profile
		if err := p.Validate(); err != nil {
			return n, fmt.Errorf("profiler: stored profile %s/%s: %w", sp.Benchmark, sp.Core, err)
		}
		if p.Core != ct {
			return n, fmt.Errorf("profiler: stored profile %s: key says %s, body says %v", sp.Benchmark, sp.Core, p.Core)
		}
		s.profiles.Put(profileKey{bench: sp.Benchmark, core: ct}, &p)
		n++
	}
	return n, nil
}

func coreTypeByName(name string) (config.CoreType, error) {
	for ct := config.Big; ct < config.NumCoreTypes; ct++ {
		if ct.String() == name {
			return ct, nil
		}
	}
	return 0, fmt.Errorf("profiler: unknown core type %q", name)
}

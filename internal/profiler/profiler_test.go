package profiler

import (
	"sync"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/interval"
	"smtflex/internal/trace"
	"smtflex/internal/workload"
)

var (
	srcOnce sync.Once
	shared  *Source
)

func source() *Source {
	srcOnce.Do(func() { shared = NewSource(60_000) })
	return shared
}

func spec(t *testing.T, name string) trace.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustProfile(t *testing.T, s *Source, sp trace.Spec, ct config.CoreType) *interval.Profile {
	t.Helper()
	p, err := s.Profile(sp, ct)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileConcurrentMissesMeasureOnce(t *testing.T) {
	// Regression: the old check-then-compute cache let N concurrent misses
	// for the same key each run the full measurement. With singleflight
	// suppression exactly one measurement (and one curve pass) runs.
	s := NewSource(20_000)
	sp := spec(t, "tonto")
	const goroutines = 8
	var wg sync.WaitGroup
	profiles := make([]*interval.Profile, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := s.Profile(sp, config.Big)
			if err != nil {
				t.Error(err)
			}
			profiles[g] = p
		}(g)
	}
	wg.Wait()
	if n := s.measureRuns.Load(); n != 1 {
		t.Errorf("%d measurements for one key under concurrent access, want 1", n)
	}
	if n := s.curveRuns.Load(); n != 1 {
		t.Errorf("%d curve passes, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if profiles[g] != profiles[0] {
			t.Fatalf("goroutine %d got a different profile pointer", g)
		}
	}

	// Distinct core types share the curve pass but measure separately.
	s.Profile(sp, config.Small)
	if n, c := s.measureRuns.Load(), s.curveRuns.Load(); n != 2 || c != 1 {
		t.Errorf("after second core type: %d measurements (want 2), %d curve passes (want 1)", n, c)
	}
}

func TestProfileValidAndCached(t *testing.T) {
	s := source()
	p1 := mustProfile(t, s, spec(t, "tonto"), config.Big)
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	p2 := mustProfile(t, s, spec(t, "tonto"), config.Big)
	if p1 != p2 {
		t.Fatal("profile not cached (pointer identity expected)")
	}
}

func TestBaseCPIWindowMonotone(t *testing.T) {
	// Base CPI never improves when the window shrinks.
	p := mustProfile(t, source(), spec(t, "calculix"), config.Big)
	for i := 1; i < len(p.BaseCPIs); i++ {
		if p.BaseCPIs[i] > p.BaseCPIs[i-1]+1e-9 {
			t.Fatalf("base CPI increased with window: %v @ %v", p.BaseCPIs, p.BaseWindows)
		}
	}
	if len(p.BaseWindows) < 4 {
		t.Fatalf("big core should sample several partitions, got %v", p.BaseWindows)
	}
}

func TestInOrderSingleWindow(t *testing.T) {
	p := mustProfile(t, source(), spec(t, "hmmer"), config.Small)
	if len(p.BaseWindows) != 1 {
		t.Fatalf("in-order core has %d windows", len(p.BaseWindows))
	}
	if p.VisibleMinWindow != 0 {
		t.Fatal("in-order core should not have a min-window calibration")
	}
}

func TestVisibleBounds(t *testing.T) {
	for _, name := range []string{"tonto", "mcf", "libquantum"} {
		for _, ct := range []config.CoreType{config.Big, config.Medium, config.Small} {
			p := mustProfile(t, source(), spec(t, name), ct)
			if p.Visible < 0 || p.Visible > 1 {
				t.Errorf("%s/%v: visible %g outside [0,1]", name, ct, p.Visible)
			}
			if p.MemConstCPI < 0 {
				t.Errorf("%s/%v: negative const CPI", name, ct)
			}
			if p.VisibleMin != 0 && p.VisibleMin < p.Visible-1e-9 {
				t.Errorf("%s/%v: smaller window hides more latency (%g < %g)",
					name, ct, p.VisibleMin, p.Visible)
			}
		}
	}
}

func TestMemoryBoundVsComputeBound(t *testing.T) {
	s := source()
	mcf := mustProfile(t, s, spec(t, "mcf"), config.Big)
	tonto := mustProfile(t, s, spec(t, "tonto"), config.Big)
	if mcf.BaselineMemCPI < 5*tonto.BaselineMemCPI {
		t.Fatalf("mcf (%.2f) should be far more memory bound than tonto (%.2f)",
			mcf.BaselineMemCPI, tonto.BaselineMemCPI)
	}
	sh := baselineShares(config.BigCore())
	if mcf.DRAMAccessesPerUop(sh) < 10*tonto.DRAMAccessesPerUop(sh) {
		t.Fatal("mcf DRAM traffic should dwarf tonto's")
	}
}

func TestBranchyBenchmarkHasBranchCPI(t *testing.T) {
	s := source()
	gobmk := mustProfile(t, s, spec(t, "gobmk"), config.Big)
	libq := mustProfile(t, s, spec(t, "libquantum"), config.Big)
	if gobmk.BrCPI < 5*libq.BrCPI {
		t.Fatalf("gobmk branch CPI %.3f should dwarf libquantum's %.3f",
			gobmk.BrCPI, libq.BrCPI)
	}
	if gobmk.BrMPKU < 5 {
		t.Fatalf("gobmk mispredicts %.1f/kµop too low", gobmk.BrMPKU)
	}
}

func TestCurvesSharedAcrossCoreTypes(t *testing.T) {
	// The reuse curves are a property of the benchmark, not the core.
	s := source()
	big := mustProfile(t, s, spec(t, "soplex"), config.Big)
	small := mustProfile(t, s, spec(t, "soplex"), config.Small)
	if len(big.DCurve.Ratios) != len(small.DCurve.Ratios) {
		t.Fatal("curve lengths differ")
	}
	for i := range big.DCurve.Ratios {
		if big.DCurve.Ratios[i] != small.DCurve.Ratios[i] {
			t.Fatal("data curves differ across core types")
		}
	}
}

func TestBigCoreFasterThanSmall(t *testing.T) {
	// Isolated performance ordering: big <= medium <= small CPI for every
	// benchmark (the premise of the design space).
	s := source()
	for _, name := range workload.Names() {
		sp := spec(t, name)
		var cpis [3]float64
		for i, ct := range []config.CoreType{config.Big, config.Medium, config.Small} {
			p := mustProfile(t, s, sp, ct)
			cc := config.CoreOfType(ct)
			cpis[i] = p.Evaluate(cc, fullWindow(cc), baselineShares(cc)).Total()
		}
		if cpis[0] > cpis[1]*1.02 || cpis[1] > cpis[2]*1.02 {
			t.Errorf("%s: CPI ordering violated: big %.2f medium %.2f small %.2f",
				name, cpis[0], cpis[1], cpis[2])
		}
	}
}

func TestCalibrationReproducesMeasuredCPI(t *testing.T) {
	// At the calibration point, the interval model must reproduce the
	// cycle-engine memory CPI (that is the definition of Visible).
	s := source()
	for _, name := range []string{"bzip2", "soplex", "gcc"} {
		p := mustProfile(t, s, spec(t, name), config.Big)
		cc := config.BigCore()
		st := p.Evaluate(cc, fullWindow(cc), baselineShares(cc))
		memModel := st.L2 + st.LLC + st.Mem
		if p.BaselineMemCPI > 0.05 {
			ratio := memModel / p.BaselineMemCPI
			if ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%s: model mem CPI %.3f vs measured %.3f", name, memModel, p.BaselineMemCPI)
			}
		}
	}
}

func TestDefaultSource(t *testing.T) {
	s := NewSource(0)
	if s.UopCount == 0 || s.Warmup == 0 || s.CurveUops == 0 {
		t.Fatal("default source not initialized")
	}
}

func TestWritebackFractionBounded(t *testing.T) {
	// At this test source's short window the LLC may not fill (so the
	// fraction can legitimately be zero); the invariant is the bound.
	// Longer windows (the default source) produce positive fractions for
	// store-heavy DRAM-bound benchmarks, which the multicore tests verify
	// at the mechanism level.
	for _, name := range []string{"mcf", "hmmer", "libquantum"} {
		p := mustProfile(t, source(), spec(t, name), config.Big)
		if p.WritebackFraction < 0 || p.WritebackFraction > 1.5 {
			t.Fatalf("%s writeback fraction %g out of bounds", name, p.WritebackFraction)
		}
	}
}

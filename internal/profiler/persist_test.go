package profiler

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"smtflex/internal/config"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	src := source()
	orig := mustProfile(t, src, spec(t, "tonto"), config.Big)
	origSmall := mustProfile(t, src, spec(t, "mcf"), config.Small)

	var buf bytes.Buffer
	if err := src.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewSource(1) // tiny source: loaded profiles must shadow measurement
	n, err := fresh.LoadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("loaded %d profiles", n)
	}
	got := mustProfile(t, fresh, spec(t, "tonto"), config.Big)
	if !reflect.DeepEqual(*got, *orig) {
		t.Fatal("tonto profile did not survive the roundtrip")
	}
	gotSmall := mustProfile(t, fresh, spec(t, "mcf"), config.Small)
	if !reflect.DeepEqual(*gotSmall, *origSmall) {
		t.Fatal("mcf profile did not survive the roundtrip")
	}
}

func TestSaveJSONFileAtomic(t *testing.T) {
	src := source()
	orig := mustProfile(t, src, spec(t, "tonto"), config.Big)

	dir := t.TempDir()
	path := filepath.Join(dir, "profiles.json")
	// Pre-existing good content must survive a failed save attempt: saving
	// into an unwritable directory must not touch the destination.
	if err := src.SaveJSONFile(path); err != nil {
		t.Fatal(err)
	}
	if err := src.SaveJSONFile(filepath.Join(dir, "nosuchdir", "p.json")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}

	// No temp files may be left behind, whether the save succeeded or failed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "profiles.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}

	fresh := NewSource(1)
	if _, err := fresh.LoadJSONFile(path); err != nil {
		t.Fatal(err)
	}
	got := mustProfile(t, fresh, spec(t, "tonto"), config.Big)
	if !reflect.DeepEqual(*got, *orig) {
		t.Fatal("profile did not survive the file roundtrip")
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	s := NewSource(1)
	if _, err := s.LoadJSON(strings.NewReader(`{"version":99,"profiles":[]}`)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := NewSource(1)
	if _, err := s.LoadJSON(strings.NewReader(`{"version":1,`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := s.LoadJSON(strings.NewReader(
		`{"version":1,"profiles":[{"benchmark":"x","core":"giant","profile":{}}]}`)); err == nil {
		t.Fatal("unknown core type accepted")
	}
	if _, err := s.LoadJSON(strings.NewReader(
		`{"version":1,"profiles":[{"benchmark":"x","core":"big","profile":{}}]}`)); err == nil {
		t.Fatal("invalid profile body accepted")
	}
}

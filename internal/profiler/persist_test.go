package profiler

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"smtflex/internal/config"
)

func TestSaveLoadRoundtrip(t *testing.T) {
	src := source()
	orig := src.Profile(spec(t, "tonto"), config.Big)
	origSmall := src.Profile(spec(t, "mcf"), config.Small)

	var buf bytes.Buffer
	if err := src.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}

	fresh := NewSource(1) // tiny source: loaded profiles must shadow measurement
	n, err := fresh.LoadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("loaded %d profiles", n)
	}
	got := fresh.Profile(spec(t, "tonto"), config.Big)
	if !reflect.DeepEqual(*got, *orig) {
		t.Fatal("tonto profile did not survive the roundtrip")
	}
	gotSmall := fresh.Profile(spec(t, "mcf"), config.Small)
	if !reflect.DeepEqual(*gotSmall, *origSmall) {
		t.Fatal("mcf profile did not survive the roundtrip")
	}
}

func TestLoadRejectsBadVersion(t *testing.T) {
	s := NewSource(1)
	if _, err := s.LoadJSON(strings.NewReader(`{"version":99,"profiles":[]}`)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := NewSource(1)
	if _, err := s.LoadJSON(strings.NewReader(`{"version":1,`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := s.LoadJSON(strings.NewReader(
		`{"version":1,"profiles":[{"benchmark":"x","core":"giant","profile":{}}]}`)); err == nil {
		t.Fatal("unknown core type accepted")
	}
	if _, err := s.LoadJSON(strings.NewReader(
		`{"version":1,"profiles":[{"benchmark":"x","core":"big","profile":{}}]}`)); err == nil {
		t.Fatal("invalid profile body accepted")
	}
}

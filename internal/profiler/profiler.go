// Package profiler measures interval.Profile characterizations by running
// the cycle engine on a benchmark in isolation with successively idealized
// machine components, plus a single stack-distance pass over the benchmark's
// address streams for the capacity curves.
//
// The decomposition: run A perfects branches, I-cache and data hierarchy to
// expose the base CPI (repeated at every ROB partition size the design space
// can produce); run B restores the real branch predictor; run C restores the
// real I-cache; run D restores the full data hierarchy. Successive CPI
// deltas give the branch, I-cache and memory components, and the memory
// component calibrates the interval model's visible-latency fraction.
package profiler

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/cpu"
	"smtflex/internal/faults"
	"smtflex/internal/interval"
	"smtflex/internal/isa"
	"smtflex/internal/mem"
	"smtflex/internal/memo"
	"smtflex/internal/multicore"
	"smtflex/internal/obs"
	"smtflex/internal/trace"
)

// profileSeed makes profiling traces independent of experiment traces.
const profileSeed = 0xF00D

// curveCapacities samples the miss curves from 4 KB to 128 MB.
var curveCapacities = func() []int {
	var caps []int
	for b := 4 << 10; b <= 128<<20; b *= 2 {
		caps = append(caps, b/isa.MemBlockSize)
	}
	return caps
}()

// maxCurveDist bounds the stack profiler's resolution (128 MB of blocks).
const maxCurveDist = (128 << 20) / isa.MemBlockSize

// baseWindows returns the ROB partition sizes to sample for a core type:
// every partition the SMT levels of the study can produce.
func baseWindows(cc config.Core) []int {
	if !cc.OutOfOrder {
		return []int{2 * cc.Width}
	}
	seen := map[int]bool{}
	var ws []int
	// Iterating thread count from high to low yields ascending partitions.
	for n := cc.SMTContexts; n >= 1; n-- {
		w := interval.Partition(cc, n)
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	return ws
}

// Source measures and caches profiles. It is safe for concurrent use.
type Source struct {
	// UopCount is the number of µops per measurement run.
	UopCount uint64
	// Warmup is the number of µops executed before measurement starts, so
	// cold caches and untrained predictors do not distort the components.
	Warmup uint64
	// CurveUops is the length of the (cheap) stack-distance pass for the
	// miss curves; a longer window resolves reuse at LLC-scale capacities.
	CurveUops uint64
	// CurveWarmup is the portion of the curve pass excluded from the curve.
	CurveWarmup uint64

	// profiles and curves memoize measurements with singleflight duplicate
	// suppression: concurrent misses for the same key measure once.
	profiles memo.Cache[profileKey, *interval.Profile]
	curves   memo.Cache[string, *curvePair]

	// measureRuns and curveRuns count underlying measurements — test
	// instrumentation for the stampede regression tests.
	measureRuns atomic.Int64
	curveRuns   atomic.Int64
}

type profileKey struct {
	bench string
	core  config.CoreType
}

type curvePair struct {
	data, code cache.MissCurve
	dataAPKU   float64
	iBlockAPKU float64
}

// NewSource returns a Source measuring runs of uopCount µops each.
func NewSource(uopCount uint64) *Source {
	if uopCount == 0 {
		uopCount = 200_000
	}
	s := &Source{
		UopCount:    uopCount,
		Warmup:      2 * uopCount,
		CurveUops:   8 * uopCount,
		CurveWarmup: 2 * uopCount,
	}
	s.profiles.Name = "profiles"
	s.curves.Name = "curves"
	return s
}

// CacheCounters snapshots the profile and curve cache counters for the
// daemon's per-cache metrics.
func (s *Source) CacheCounters() []memo.Counters {
	return []memo.Counters{s.profiles.Counters(), s.curves.Counters()}
}

// Profile returns the (cached) profile of spec on core type ct. Concurrent
// calls for the same (benchmark, core type) measure once; the callers that
// lose the race block and share the winner's profile. A failed measurement is
// not cached: a later call retries it.
func (s *Source) Profile(spec trace.Spec, ct config.CoreType) (*interval.Profile, error) {
	return s.ProfileCtx(context.Background(), spec, ct)
}

// ProfileCtx is Profile with tracing: when ctx carries an active trace, an
// actual measurement (a cache miss) is recorded as a "profiler.profile" span
// nested under the cache's memo.get span. Cache hits — the overwhelming
// majority once the engine is warm — are not spanned; see memo.GetTraced.
// The profile returned is identical to Profile's; the context is
// observational only and does not cancel a measurement.
func (s *Source) ProfileCtx(ctx context.Context, spec trace.Spec, ct config.CoreType) (*interval.Profile, error) {
	return s.profiles.GetTraced(ctx, profileKey{bench: spec.Name, core: ct}, func(ctx context.Context) (*interval.Profile, error) {
		ctx, sp := obs.StartSpan(ctx, "profiler.profile")
		sp.SetAttr("benchmark", spec.Name)
		sp.SetAttr("core", ct.String())
		defer sp.End()
		return s.measure(ctx, spec, ct)
	})
}

// curvesFor computes (or returns cached) reuse curves for the benchmark,
// with the same duplicate suppression as Profile.
func (s *Source) curvesFor(ctx context.Context, spec trace.Spec) (*curvePair, error) {
	return s.curves.GetTraced(ctx, spec.Name, func(ctx context.Context) (*curvePair, error) {
		_, sp := obs.StartSpan(ctx, "profiler.curves")
		sp.SetAttr("benchmark", spec.Name)
		defer sp.End()
		return s.measureCurves(spec)
	})
}

// measureCurves runs the stack-distance pass behind curvesFor's cache.
func (s *Source) measureCurves(spec trace.Spec) (*curvePair, error) {
	s.curveRuns.Add(1)
	g, err := trace.NewGenerator(spec, profileSeed)
	if err != nil {
		return nil, err
	}
	dataProf := cache.NewStackProfiler(maxCurveDist)
	codeProf := cache.NewStackProfiler(maxCurveDist)
	var dataAccesses, iBlocks uint64
	var lastBlock uint64
	var dataSnap, codeSnap cache.Snapshot
	for i := uint64(0); i < s.CurveWarmup+s.CurveUops; i++ {
		if i == s.CurveWarmup {
			dataSnap = dataProf.Checkpoint()
			codeSnap = codeProf.Checkpoint()
			dataAccesses, iBlocks = 0, 0
		}
		u := g.Next()
		if u.Class.IsMem() {
			dataAccesses++
			dataProf.Touch(cache.BlockAddr(u.Addr))
		}
		if blk := cache.BlockAddr(u.PC); blk != lastBlock {
			lastBlock = blk
			iBlocks++
			codeProf.Touch(blk)
		}
	}
	kilo := float64(s.CurveUops) / 1000
	return &curvePair{
		data:       dataProf.MissRatioCurve(dataSnap, curveCapacities),
		code:       codeProf.MissRatioCurve(codeSnap, curveCapacities),
		dataAPKU:   float64(dataAccesses) / kilo,
		iBlockAPKU: float64(iBlocks) / kilo,
	}, nil
}

// measured holds the warm-window measurement of one run.
type measured struct {
	cpi         float64
	mispredicts float64 // per µop
	wbFraction  float64 // DRAM writebacks per DRAM fill
}

// runOnce simulates spec alone on a single core with configuration cc and
// the given ideal flags, discarding a warmup window before measuring.
func (s *Source) runOnce(spec trace.Spec, cc config.Core, ideal cpu.Ideal) (measured, error) {
	d := config.Design{Name: "profiling", SMTEnabled: false, MemBandwidthGBps: 8}
	d.Cores = []config.Core{cc}
	llc := config.LLCConfig()
	d.LLC.SizeBytes = llc.SizeBytes
	d.LLC.Assoc = llc.Assoc
	d.LLC.LatencyCycles = llc.LatencyCycles

	chip, err := multicore.New(d, ideal)
	if err != nil {
		return measured{}, err
	}
	g, err := trace.NewGenerator(spec, profileSeed)
	if err != nil {
		return measured{}, err
	}
	id, err := chip.AttachThread(0, g)
	if err != nil {
		return measured{}, err
	}
	chip.Run(s.Warmup)
	warm := chip.ThreadStats(id)
	warmDram := chip.DRAMStats()
	chip.Run(s.Warmup + s.UopCount)
	final := chip.ThreadStats(id)
	finalDram := chip.DRAMStats()

	duops := float64(final.Uops - warm.Uops)
	m := measured{
		cpi:         (final.FinishTime - warm.FinishTime) / duops,
		mispredicts: float64(final.Mispredicts-warm.Mispredicts) / duops,
	}
	if fills := finalDram.Accesses - warmDram.Accesses; fills > 0 {
		m.wbFraction = float64(finalDram.Writebacks-warmDram.Writebacks) / float64(fills)
	}
	return m, nil
}

func (s *Source) measure(ctx context.Context, spec trace.Spec, ct config.CoreType) (*interval.Profile, error) {
	ctx, sp := obs.StartSpan(ctx, "profiler.measure")
	sp.SetAttr("benchmark", spec.Name)
	sp.SetAttr("core", ct.String())
	defer sp.End()
	s.measureRuns.Add(1)
	if err := faults.Check(faults.SiteProfiler); err != nil {
		return nil, err
	}
	cc := config.CoreOfType(ct)
	curves, err := s.curvesFor(ctx, spec)
	if err != nil {
		return nil, err
	}

	p := &interval.Profile{
		Benchmark:  spec.Name,
		Core:       ct,
		DataAPKU:   curves.dataAPKU,
		IBlockAPKU: curves.iBlockAPKU,
		DCurve:     curves.data,
		ICurve:     curves.code,
	}

	// Base CPI at every reachable ROB partition (perfect everything).
	allIdeal := cpu.Ideal{Branch: true, ICache: true, DCache: true}
	for _, w := range baseWindows(cc) {
		wcc := cc
		if cc.OutOfOrder {
			wcc.ROBSize = w
		}
		st, err := s.runOnce(spec, wcc, allIdeal)
		if err != nil {
			return nil, err
		}
		p.BaseWindows = append(p.BaseWindows, w)
		p.BaseCPIs = append(p.BaseCPIs, st.cpi)
	}
	cpiA := p.BaseCPIs[len(p.BaseCPIs)-1] // full-window base CPI

	// Real branches.
	stB, err := s.runOnce(spec, cc, cpu.Ideal{ICache: true, DCache: true})
	if err != nil {
		return nil, err
	}
	p.BrCPI = clampNonNeg(stB.cpi - cpiA)
	p.BrMPKU = stB.mispredicts * 1000

	// Real I-cache.
	stC, err := s.runOnce(spec, cc, cpu.Ideal{DCache: true})
	if err != nil {
		return nil, err
	}
	p.L1ICPI = clampNonNeg(stC.cpi - stB.cpi)

	// Real data hierarchy.
	stD, err := s.runOnce(spec, cc, cpu.Ideal{})
	if err != nil {
		return nil, err
	}
	memCPI := clampNonNeg(stD.cpi - stC.cpi)
	p.BaselineMemCPI = memCPI
	p.WritebackFraction = stD.wbFraction

	// Calibrate the visible-latency fraction so that Evaluate reproduces the
	// measured memory CPI at the baseline configuration.
	base := baselineShares(cc)
	rawMem := rawMemCost(p, cc, fullWindow(cc), base)
	p.Visible = 1
	p.VisibleWindow = fullWindow(cc)
	if rawMem > 1e-9 {
		p.Visible = memCPI / rawMem
	}
	// Latency overlap can only hide latency: a visible fraction above one
	// means the curve model under-predicts baseline misses (set conflicts);
	// charge the unexplained remainder as a constant instead of letting it
	// amplify capacity-sharing effects.
	if p.Visible > 1 {
		p.Visible = 1
		p.MemConstCPI = memCPI - rawMem
	}

	// For out-of-order cores, repeat the real-hierarchy run at the smallest
	// SMT partition: the shrunken window holds fewer outstanding misses, so
	// more of the latency becomes visible. The interval model interpolates
	// between the two calibration points.
	if cc.OutOfOrder && cc.SMTContexts > 1 {
		wmin := interval.Partition(cc, cc.SMTContexts)
		wcc := cc
		wcc.ROBSize = wmin
		stDmin, err := s.runOnce(spec, wcc, cpu.Ideal{})
		if err != nil {
			return nil, err
		}
		memCPImin := clampNonNeg(stDmin.cpi - p.BaseCPI(wmin) - p.BrCPI - p.L1ICPI - p.MemConstCPI)
		p.VisibleMinWindow = wmin
		p.VisibleMin = p.Visible
		if rawMem > 1e-9 {
			p.VisibleMin = memCPImin / rawMem
		}
		if p.VisibleMin > 1 {
			p.VisibleMin = 1
		}
		// A smaller window never hides more latency than the full one.
		if p.VisibleMin < p.Visible {
			p.VisibleMin = p.Visible
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: %s on %s: %w", spec.Name, ct, err)
	}
	return p, nil
}

// rawMemCost evaluates the un-calibrated (visible=1) memory CPI of p on cc.
func rawMemCost(p *interval.Profile, cc config.Core, w int, sh interval.Shares) float64 {
	probe := *p
	probe.Visible = 1
	probe.VisibleMin = 0
	raw := probe.Evaluate(cc, w, sh)
	return raw.L2 + raw.LLC + raw.Mem
}

// baselineShares returns the capacity shares of a thread running alone on
// core cc with the whole LLC and uncontended memory.
func baselineShares(cc config.Core) interval.Shares {
	mc := config.MemConfig(8)
	return interval.Shares{
		L1I:              float64(cc.L1I.SizeBytes),
		L1D:              float64(cc.L1D.SizeBytes),
		L2:               float64(cc.L2.SizeBytes),
		LLC:              float64(config.LLCConfig().SizeBytes),
		MemLatencyCycles: uncontendedMemLatency(mc),
	}
}

func uncontendedMemLatency(mc mem.Config) float64 {
	return float64(mc.AccessTimeCycles) + mc.BusCyclesPerBlock()
}

func fullWindow(cc config.Core) int {
	if !cc.OutOfOrder {
		return 2 * cc.Width
	}
	return cc.ROBSize
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Package checkpoint persists the progress of a long simulation campaign so
// that a crashed or killed run can resume without repeating finished work.
//
// A checkpoint is a single JSON file holding every completed figure table,
// tagged with a fingerprint of the campaign parameters that determine the
// numbers (profiling fidelity, mix count). Writes are crash-safe: the file
// goes to a temporary name in the same directory, is fsynced, and is then
// atomically renamed over the destination — a crash mid-write leaves the
// previous checkpoint intact rather than a truncated document.
//
// Tables round-trip exactly: encoding/json renders float64 values with the
// shortest representation that parses back to the same bits, so a table
// restored from a checkpoint renders byte-identically to the run that
// computed it.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"smtflex/internal/study"
)

// Fingerprint identifies the campaign parameters that determine every cell
// value. A checkpoint written under a different fingerprint is discarded on
// open: resuming it would mix numbers from incompatible runs.
type Fingerprint struct {
	// UopCount is the cycle-engine measurement length per profiling run.
	UopCount uint64 `json:"uop_count"`
	// Mixes is the number of random heterogeneous mixes per thread count.
	Mixes int `json:"mixes"`
}

// storedTable is the wire form of study.Table.
type storedTable struct {
	Title     string      `json:"title"`
	Rows      []string    `json:"rows"`
	Cols      []string    `json:"cols"`
	Cells     [][]float64 `json:"cells"`
	Precision int         `json:"precision"`
}

// checkpointFile is the on-disk format.
type checkpointFile struct {
	// Version guards against format drift.
	Version     int                     `json:"version"`
	Fingerprint Fingerprint             `json:"fingerprint"`
	Tables      map[string]*storedTable `json:"tables"`
}

const version = 1

// Manager accumulates completed tables and persists them after every
// addition. It is safe for concurrent use.
type Manager struct {
	path string
	mu   sync.Mutex
	file checkpointFile
}

// Open loads the checkpoint at path, or starts a fresh one if the file does
// not exist. An existing checkpoint whose fingerprint differs from fp is
// discarded (the stale file is left on disk until the first Put overwrites
// it). It returns the manager and the number of tables resumed.
func Open(path string, fp Fingerprint) (*Manager, int, error) {
	m := &Manager{
		path: path,
		file: checkpointFile{Version: version, Fingerprint: fp, Tables: map[string]*storedTable{}},
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return m, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	var prev checkpointFile
	if err := json.Unmarshal(data, &prev); err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %s is not a valid checkpoint (delete it to start over): %w", path, err)
	}
	if prev.Version != version || prev.Fingerprint != fp || prev.Tables == nil {
		// Parameters changed (or format drifted): the old cells are not
		// comparable, so start over.
		return m, 0, nil
	}
	m.file = prev
	return m, len(prev.Tables), nil
}

// Table returns the completed table stored under id, or (nil, false).
func (m *Manager) Table(id string) (*study.Table, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.file.Tables[id]
	if !ok {
		return nil, false
	}
	return &study.Table{
		Title:     st.Title,
		Rows:      st.Rows,
		Cols:      st.Cols,
		Cells:     st.Cells,
		Precision: st.Precision,
	}, true
}

// Put records a completed table and persists the checkpoint crash-safely.
func (m *Manager) Put(id string, t *study.Table) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.file.Tables[id] = &storedTable{
		Title:     t.Title,
		Rows:      t.Rows,
		Cols:      t.Cols,
		Cells:     t.Cells,
		Precision: t.Precision,
	}
	return m.save()
}

// Len reports the number of completed tables.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.file.Tables)
}

// save writes the checkpoint atomically. Callers hold m.mu.
func (m *Manager) save() (err error) {
	dir := filepath.Dir(m.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(m.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: saving: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", " ")
	if err = enc.Encode(m.file); err != nil {
		return fmt.Errorf("checkpoint: saving: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: saving: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: saving: %w", err)
	}
	if err = os.Rename(tmp.Name(), m.path); err != nil {
		return fmt.Errorf("checkpoint: saving: %w", err)
	}
	return nil
}

// ProfilesPath is the conventional sidecar path for the profiler cache that
// accompanies a checkpoint: the measured profiles are the expensive state
// inside a partially-finished figure, so campaigns save them alongside the
// finished tables (via profiler.Source.SaveJSONFile, which uses the same
// atomic-rename discipline).
func ProfilesPath(checkpointPath string) string {
	return checkpointPath + ".profiles"
}

package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"smtflex/internal/study"
)

func fp() Fingerprint { return Fingerprint{UopCount: 200_000, Mixes: 12} }

// awkwardTable builds a table with float values that stress JSON round-trip
// exactness: non-terminating binary fractions, huge, tiny and negative.
func awkwardTable(title string) *study.Table {
	t := study.NewTable(title, []string{"r0", "r1"}, []string{"c0", "c1", "c2"})
	vals := [][]float64{
		{1.0 / 3.0, 0.1, 1e300},
		{-2.5e-17, math.Pi, 0.30000000000000004},
	}
	for r := range vals {
		for c := range vals[r] {
			t.Set(r, c, vals[r][c])
		}
	}
	t.Precision = 5
	return t
}

func TestRoundTripByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, resumed, err := Open(path, fp())
	if err != nil || resumed != 0 {
		t.Fatalf("fresh open: resumed=%d err=%v", resumed, err)
	}
	orig := awkwardTable("Figure X")
	if err := m.Put("figx", orig); err != nil {
		t.Fatal(err)
	}

	m2, resumed, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d tables, want 1", resumed)
	}
	got, ok := m2.Table("figx")
	if !ok {
		t.Fatal("table lost across reopen")
	}
	if got.String() != orig.String() {
		t.Fatalf("text render differs after resume:\n%q\nvs\n%q", got.String(), orig.String())
	}
	if got.CSV() != orig.CSV() {
		t.Fatalf("CSV render differs after resume:\n%q\nvs\n%q", got.CSV(), orig.CSV())
	}
}

func TestMissingTableNotReported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, _, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Table("nope"); ok {
		t.Fatal("empty manager reported a table")
	}
}

func TestFingerprintMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m, _, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("figx", awkwardTable("t")); err != nil {
		t.Fatal(err)
	}

	other := Fingerprint{UopCount: 300_000, Mixes: 12}
	m2, resumed, err := Open(path, other)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 || m2.Len() != 0 {
		t.Fatalf("stale checkpoint resumed under a different fingerprint (resumed=%d)", resumed)
	}
}

func TestCorruptFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, fp()); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestSaveAtomicNoTempResidue(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	m, _, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a", awkwardTable("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("b", awkwardTable("b")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean after saves: %v", names)
	}
}

func TestSaveIntoMissingDirFails(t *testing.T) {
	m, _, err := Open(filepath.Join(t.TempDir(), "nosuchdir", "run.ckpt"), fp())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put("a", awkwardTable("a")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}

func TestInterruptedCampaignResumesByteIdentical(t *testing.T) {
	// The acceptance scenario in miniature: a campaign killed mid-run is
	// re-run and must produce the same bytes for every table as an
	// uninterrupted campaign.
	ids := []string{"fig1", "fig2", "fig3"}
	tables := map[string]*study.Table{}
	for _, id := range ids {
		tables[id] = awkwardTable("Table " + id)
	}
	render := func(m *Manager) string {
		var out string
		for _, id := range ids {
			tab, ok := m.Table(id)
			if !ok {
				t.Fatalf("%s missing", id)
			}
			out += tab.String() + tab.CSV()
		}
		return out
	}

	// Uninterrupted reference run.
	refPath := filepath.Join(t.TempDir(), "ref.ckpt")
	ref, _, err := Open(refPath, fp())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := ref.Put(id, tables[id]); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted run: two tables complete, then the process "dies".
	path := filepath.Join(t.TempDir(), "run.ckpt")
	m1, _, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:2] {
		if err := m1.Put(id, tables[id]); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: finished work is skipped, only fig3 is recomputed.
	m2, resumed, err := Open(path, fp())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 2 {
		t.Fatalf("resumed %d, want 2", resumed)
	}
	if _, ok := m2.Table("fig3"); ok {
		t.Fatal("unfinished table reported as complete")
	}
	if err := m2.Put("fig3", tables["fig3"]); err != nil {
		t.Fatal(err)
	}

	if render(m2) != render(ref) {
		t.Fatal("resumed campaign differs from uninterrupted campaign")
	}
}

func TestProfilesPath(t *testing.T) {
	if got := ProfilesPath("run.ckpt"); got != "run.ckpt.profiles" {
		t.Fatalf("profiles path %q", got)
	}
}

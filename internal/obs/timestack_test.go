package obs

import (
	"math"
	"strings"
	"testing"
)

// trace builds a TraceJSON by hand: a 100ms root with a pool task that
// waited 10ms in queue, a 40ms solve and a 20ms profile lookup inside the
// task, and a 5ms serialize step.
func handMadeTrace(name string) TraceJSON {
	const ms = int64(1e6)
	return TraceJSON{
		ID:    "t-1",
		Name:  name,
		DurNs: 100 * ms,
		Spans: []SpanJSON{
			{ID: "s0", Name: name, StartNs: 0, DurNs: 100 * ms},
			{ID: "s1", Parent: "s0", Name: "pool.task", StartNs: 0, DurNs: 90 * ms,
				Attrs: map[string]any{"queue_ns": 10 * ms}},
			{ID: "s2", Parent: "s1", Name: "contention.solve", StartNs: 15 * ms, DurNs: 40 * ms},
			{ID: "s3", Parent: "s1", Name: "profiler.profile", StartNs: 60 * ms, DurNs: 20 * ms},
			{ID: "s4", Parent: "s0", Name: "http.serialize", StartNs: 92 * ms, DurNs: 5 * ms},
		},
	}
}

func TestTimeStackSelfTimeAttribution(t *testing.T) {
	const ms = int64(1e6)
	stacks := TimeStacks([]TraceJSON{handMadeTrace("/v1/sweep")})
	if len(stacks) != 1 {
		t.Fatalf("got %d stacks, want 1", len(stacks))
	}
	s := stacks[0]
	if s.Name != "/v1/sweep" || s.Traces != 1 || s.WallNs != 100*ms {
		t.Fatalf("stack header: %+v", s)
	}
	// Self times: root 100-90-5=5 (other); task 90-40-20=30, minus 10 queue
	// → 20 other + 10 queue; solve 40; profile 20; serialize 5.
	want := map[string]int64{
		CatOther:     25 * ms,
		CatQueue:     10 * ms,
		CatSolve:     40 * ms,
		CatProfile:   20 * ms,
		CatSerialize: 5 * ms,
	}
	for cat, ns := range want {
		if s.ByNs[cat] != ns {
			t.Errorf("ByNs[%s]=%d, want %d", cat, s.ByNs[cat], ns)
		}
	}
	var pct float64
	for _, p := range s.Percent {
		pct += p
	}
	if math.Abs(pct-100) > 1e-9 {
		t.Fatalf("percentages sum to %g, want 100", pct)
	}
	if want := 40.0; s.Percent[CatSolve] != want {
		t.Fatalf("solve%% = %g, want %g", s.Percent[CatSolve], want)
	}
}

func TestTimeStacksGroupByName(t *testing.T) {
	stacks := TimeStacks([]TraceJSON{
		handMadeTrace("/v1/sweep"),
		handMadeTrace("/v1/sweep"),
		handMadeTrace("/v1/place"),
	})
	if len(stacks) != 2 {
		t.Fatalf("got %d groups, want 2", len(stacks))
	}
	// Sorted by name: /v1/place first.
	if stacks[0].Name != "/v1/place" || stacks[0].Traces != 1 {
		t.Fatalf("group 0: %+v", stacks[0])
	}
	if stacks[1].Name != "/v1/sweep" || stacks[1].Traces != 2 {
		t.Fatalf("group 1: %+v", stacks[1])
	}
	if stacks[1].WallNs != 2*stacks[0].WallNs {
		t.Fatalf("wall time not summed: %d vs %d", stacks[1].WallNs, stacks[0].WallNs)
	}
}

func TestCategoryOf(t *testing.T) {
	cases := map[string]string{
		"profiler.profile": CatProfile,
		"profiler.measure": CatProfile,
		"contention.solve": CatSolve,
		"memo.get":         CatCache,
		"http.serialize":   CatSerialize,
		"queue.wait":       CatQueue,
		"study.sweep":      CatOther,
		"pool.task":        CatOther,
	}
	for name, want := range cases {
		if got := CategoryOf(name); got != want {
			t.Errorf("CategoryOf(%q)=%q, want %q", name, got, want)
		}
	}
}

func TestRenderTimeStacks(t *testing.T) {
	out := RenderTimeStacks(TimeStacks([]TraceJSON{handMadeTrace("/v1/sweep")}))
	for _, want := range []string{"group", "/v1/sweep", "solve%", "queue%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered stack missing %q:\n%s", want, out)
		}
	}
}

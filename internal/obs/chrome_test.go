package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// TestChromeExportSchema validates the trace-event export structurally, the
// way chrome://tracing and Perfetto parse it: a top-level object with a
// traceEvents array of complete ("ph":"X") events whose ts/dur are
// non-negative microseconds and whose pid/tid are integers.
func TestChromeExportSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, handMadeTrace("/v1/sweep"), handMadeTrace("/v1/place")); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file["displayTimeUnit"] != "ms" {
		t.Fatalf("displayTimeUnit=%v", file["displayTimeUnit"])
	}
	events, ok := file["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents is %T, want array", file["traceEvents"])
	}
	if len(events) != 10 { // 5 spans per trace, 2 traces
		t.Fatalf("got %d events, want 10", len(events))
	}
	pids := map[float64]bool{}
	for i, raw := range events {
		ev, ok := raw.(map[string]any)
		if !ok {
			t.Fatalf("event %d is %T", i, raw)
		}
		if name, _ := ev["name"].(string); name == "" {
			t.Fatalf("event %d has no name", i)
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d ph=%v, want X", i, ev["ph"])
		}
		for _, k := range []string{"ts", "dur", "pid", "tid"} {
			v, ok := ev[k].(float64)
			if !ok || v < 0 {
				t.Fatalf("event %d field %s = %v", i, k, ev[k])
			}
			if (k == "pid" || k == "tid") && v != float64(int64(v)) {
				t.Fatalf("event %d %s=%v not integral", i, k, v)
			}
		}
		pids[ev["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("merged traces share pids: %v", pids)
	}
}

// TestChromeLaneAssignment checks the greedy lane layout: a child nests in
// its parent's lane, and overlapping siblings get distinct lanes so they
// render side by side instead of stacking.
func TestChromeLaneAssignment(t *testing.T) {
	const ms = int64(1e6)
	tr := TraceJSON{
		ID: "t", Name: "root", DurNs: 100 * ms,
		Spans: []SpanJSON{
			{ID: "s0", Name: "root", StartNs: 0, DurNs: 100 * ms},
			// Two overlapping pool tasks: same window, distinct lanes.
			{ID: "s1", Parent: "s0", Name: "task.a", StartNs: 10 * ms, DurNs: 50 * ms},
			{ID: "s2", Parent: "s0", Name: "task.b", StartNs: 10 * ms, DurNs: 50 * ms},
		},
	}
	events := ChromeEvents(tr, 1)
	tidOf := map[string]int{}
	for _, ev := range events {
		tidOf[ev.Name] = ev.TID
	}
	if tidOf["task.a"] == tidOf["task.b"] {
		t.Fatalf("overlapping siblings share lane %d", tidOf["task.a"])
	}
}

// TestChromeRoundTripFromLiveTrace exports a trace built through the real
// span API and checks span attributes and the request ID survive into args.
func TestChromeRoundTripFromLiveTrace(t *testing.T) {
	withTracing(t)
	col := NewCollector(1)
	ctx, root := StartTrace(WithRequestID(context.Background(), "rid-7"), col, "req")
	_, sp := StartSpan(ctx, "contention.solve")
	sp.SetAttr("iterations", 9)
	sp.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, col.Traces()[0].Snapshot()); err != nil {
		t.Fatal(err)
	}
	var file ChromeFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range file.TraceEvents {
		if ev.Name != "contention.solve" {
			continue
		}
		found = true
		if ev.Args["iterations"] != float64(9) {
			t.Fatalf("iterations arg = %v", ev.Args["iterations"])
		}
		if ev.Args["request_id"] != "rid-7" {
			t.Fatalf("request_id arg = %v", ev.Args["request_id"])
		}
	}
	if !found {
		t.Fatal("solve event missing from export")
	}
}

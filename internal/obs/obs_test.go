package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// withTracing arms tracing for one test and disarms it afterwards. The
// enabled gate is process-global, so these tests must not run in parallel.
func withTracing(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestDisabledPathIsNoop(t *testing.T) {
	Disable()
	col := NewCollector(4)
	ctx, root := StartTrace(context.Background(), col, "req")
	if root != nil {
		t.Fatalf("StartTrace returned a span with tracing disabled")
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("StartSpan not a no-op with tracing disabled")
	}
	// Every method must tolerate the nil span.
	sp.SetAttr("k", 1)
	sp.End()
	root.End()
	if col.Len() != 0 {
		t.Fatalf("collector got %d traces with tracing disabled", col.Len())
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	withTracing(t)
	_, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("StartSpan minted a span with no trace in the context")
	}
}

func TestTraceSpanTree(t *testing.T) {
	withTracing(t)
	col := NewCollector(4)
	ctx, root := StartTrace(WithRequestID(context.Background(), "r-42"), col, "sweep")
	if root == nil {
		t.Fatal("no root span")
	}
	cctx, a := StartSpan(ctx, "profiler.profile")
	a.SetAttr("benchmark", "mcf")
	_, b := StartSpan(cctx, "contention.solve")
	b.SetAttr("iterations", 7)
	b.End()
	a.End()
	if col.Len() != 0 {
		t.Fatal("trace published before root ended")
	}
	root.End()
	if col.Len() != 1 {
		t.Fatalf("collector has %d traces, want 1", col.Len())
	}

	tr := col.Traces()[0]
	if tr.Name != "sweep" || tr.RequestID != "r-42" {
		t.Fatalf("trace identity: %q / %q", tr.Name, tr.RequestID)
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanJSON{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
		if s.DurNs < 0 || s.StartNs < 0 {
			t.Fatalf("span %q has negative times: %+v", s.Name, s)
		}
	}
	if byName["profiler.profile"].Parent != byName["sweep"].ID {
		t.Fatalf("profile span parent %q != root %q", byName["profiler.profile"].Parent, byName["sweep"].ID)
	}
	if byName["contention.solve"].Parent != byName["profiler.profile"].ID {
		t.Fatal("solve span not nested under profile span")
	}
	if got := byName["contention.solve"].Attrs["iterations"]; got != 7 {
		t.Fatalf("iterations attr = %v, want 7", got)
	}
	if snap.DurNs <= 0 {
		t.Fatalf("completed trace has DurNs %d", snap.DurNs)
	}
	meta := tr.Meta()
	if meta.Spans != 3 || meta.ID != tr.ID || meta.DurNs != snap.DurNs {
		t.Fatalf("Meta mismatch: %+v vs snapshot %d spans / %d ns", meta, len(snap.Spans), snap.DurNs)
	}
}

func TestDoubleEndIgnored(t *testing.T) {
	withTracing(t)
	col := NewCollector(4)
	_, root := StartTrace(context.Background(), col, "t")
	root.End()
	root.End()
	if col.Len() != 1 {
		t.Fatalf("double End published %d traces", col.Len())
	}
	if got := col.Traces()[0].Meta().Spans; got != 1 {
		t.Fatalf("double End recorded %d spans, want 1", got)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	withTracing(t)
	col := NewCollector(3)
	var ids []string
	for i := 0; i < 7; i++ {
		_, root := StartTrace(context.Background(), col, "t")
		ids = append(ids, rootTraceID(root))
		root.End()
	}
	if col.Len() != 3 {
		t.Fatalf("Len=%d, want 3", col.Len())
	}
	got := col.Traces()
	// Newest first: traces 6, 5, 4.
	for i, want := range []string{ids[6], ids[5], ids[4]} {
		if got[i].ID != want {
			t.Fatalf("trace[%d].ID=%s, want %s", i, got[i].ID, want)
		}
	}
	if _, ok := col.Find(ids[0]); ok {
		t.Fatal("evicted trace still findable")
	}
	if tr, ok := col.Find(ids[6]); !ok || tr.ID != ids[6] {
		t.Fatal("newest trace not findable")
	}
}

func rootTraceID(root *Span) string { return root.tr.ID }

func TestSpanCapDropsExcess(t *testing.T) {
	withTracing(t)
	col := NewCollector(1)
	ctx, root := StartTrace(context.Background(), col, "big")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	root.End()
	snap := col.Traces()[0].Snapshot()
	// The cap keeps the first maxSpansPerTrace children plus the root, which
	// is exempt so an over-budget trace still has its anchor span.
	if len(snap.Spans) != maxSpansPerTrace+1 {
		t.Fatalf("kept %d spans, want cap+root = %d", len(snap.Spans), maxSpansPerTrace+1)
	}
	if snap.DroppedSpans != 10 {
		t.Fatalf("DroppedSpans=%d, want 10", snap.DroppedSpans)
	}
	var hasRoot bool
	for _, s := range snap.Spans {
		if s.Parent == "" {
			hasRoot = true
		}
	}
	if !hasRoot {
		t.Fatal("root span dropped by the cap")
	}
}

func TestRequestIDFlow(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context has a request ID")
	}
	ctx = WithRequestID(ctx, "abc")
	if RequestID(ctx) != "abc" {
		t.Fatalf("RequestID=%q", RequestID(ctx))
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || a == "" {
		t.Fatalf("NewRequestID not unique: %q %q", a, b)
	}
}

func TestDetachKeepsObservabilityDropsDeadline(t *testing.T) {
	withTracing(t)
	col := NewCollector(1)
	ctx, root := StartTrace(WithRequestID(context.Background(), "rid-1"), col, "t")
	dctx, cancel := context.WithTimeout(ctx, time.Hour)
	defer cancel()

	out := Detach(dctx)
	if _, ok := out.Deadline(); ok {
		t.Fatal("Detach kept the deadline")
	}
	if RequestID(out) != "rid-1" {
		t.Fatalf("Detach lost the request ID: %q", RequestID(out))
	}
	// A span opened on the detached context still lands in the same trace.
	_, sp := StartSpan(out, "late")
	sp.End()
	root.End()
	snap := col.Traces()[0].Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("detached span lost: %d spans", len(snap.Spans))
	}
}

func TestConcurrentSpansSameTrace(t *testing.T) {
	withTracing(t)
	col := NewCollector(1)
	ctx, root := StartTrace(context.Background(), col, "pool")
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, sp := StartSpan(ctx, "pool.task")
			_, inner := StartSpan(cctx, "contention.solve")
			inner.End()
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	snap := col.Traces()[0].Snapshot()
	if len(snap.Spans) != 2*workers+1 {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), 2*workers+1)
	}
	ids := map[string]bool{}
	for _, s := range snap.Spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %s", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("Count=%d, want 5", s.Count)
	}
	if want := 562.5; s.Sum != want {
		t.Fatalf("Sum=%g, want %g", s.Sum, want)
	}
	// Cumulative per bound: ≤1: 1, ≤10: 3, ≤100: 4; 500 only in +Inf.
	for i, want := range []int64{1, 3, 4} {
		if s.Cumulative[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, s.Cumulative[i], want)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(3) // must not panic
	if s := h.Snapshot(); s.Count != 0 || len(s.Bounds) != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{0.5})
	const n, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != n*per || s.Cumulative[0] != n*per {
		t.Fatalf("count=%d bucket=%d, want %d", s.Count, s.Cumulative[0], n*per)
	}
	if want := float64(n*per) * 0.25; s.Sum != want {
		t.Fatalf("sum=%g, want %g", s.Sum, want)
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Time-stack categories, in render order. The time stack is the engine's
// analog of the paper's CPI stacks: instead of decomposing cycles per
// instruction into base/miss components, it decomposes a request's wall time
// into the engine phases that spent it.
const (
	CatProfile   = "profile"
	CatSolve     = "solve"
	CatQueue     = "queue"
	CatCache     = "cache"
	CatSerialize = "serialize"
	CatOther     = "other"
)

// Categories lists the time-stack components in presentation order.
var Categories = []string{CatProfile, CatSolve, CatQueue, CatCache, CatSerialize, CatOther}

// CategoryOf maps a span to its time-stack component by name prefix. Pool
// tasks contribute their queue wait (the queue_ns attribute) to the queue
// component; their remaining self time is engine work attributed to "other"
// unless a child claims it.
func CategoryOf(name string) string {
	switch {
	case strings.HasPrefix(name, "profiler."):
		return CatProfile
	case strings.HasPrefix(name, "contention.solve"):
		return CatSolve
	case strings.HasPrefix(name, "memo."):
		return CatCache
	case strings.HasPrefix(name, "http.serialize"):
		return CatSerialize
	case strings.HasPrefix(name, "queue.wait"):
		return CatQueue
	default:
		return CatOther
	}
}

// Fleet time-stack categories, in render order. Where the engine stack
// decomposes one process's request time into engine phases, the fleet stack
// decomposes a distributed sweep's time into the fabric phases that spent it —
// the cluster-level analog of the paper's per-thread CPI stacks.
const (
	FleetCatQueue      = "queue"          // admission waits, local and remote, plus pool queue_ns credits
	FleetCatWire       = "dispatch-wire"  // dispatch RTT minus the worker-reported subtree, plus dispatcher overhead
	FleetCatRemote     = "remote-compute" // grafted worker spans, and local engine work on the fallback path
	FleetCatSteal      = "steal"          // bookkeeping on cells completed off their ring owner
	FleetCatHedge      = "hedge"          // duplicate dispatches racing a slow worker
	FleetCatRetry      = "retry"          // re-dispatches after a failed or quarantined attempt
	FleetCatReassembly = "reassembly"     // sweep decompose/assemble, store bookkeeping, response serialization
	FleetCatOther      = "other"
)

// FleetCategories lists the fleet time-stack components in presentation order.
var FleetCategories = []string{
	FleetCatQueue, FleetCatWire, FleetCatRemote, FleetCatSteal,
	FleetCatHedge, FleetCatRetry, FleetCatReassembly, FleetCatOther,
}

// FleetCategoryOf maps a span to its fleet time-stack component. Spans
// carrying the lane attribute were grafted from a worker and count as remote
// compute (their admission waits still count as queue); cluster.* spans map
// to the fabric phase they instrument; local engine spans (the fallback path)
// count as compute wherever it ran; a root span's self time on a coordinator
// is decompose/assemble/respond work.
func FleetCategoryOf(s SpanJSON) string {
	if _, remote := s.Attrs[LaneAttr]; remote {
		if strings.HasPrefix(s.Name, "queue.wait") {
			return FleetCatQueue
		}
		return FleetCatRemote
	}
	switch {
	case strings.HasPrefix(s.Name, "cluster.dispatch"):
		if a, ok := numAttr(s.Attrs, "attempt"); ok && a > 1 {
			return FleetCatRetry
		}
		return FleetCatWire
	case strings.HasPrefix(s.Name, "cluster.hedge"):
		return FleetCatHedge
	case strings.HasPrefix(s.Name, "cluster.cell"):
		if stolen, ok := s.Attrs["stolen"].(bool); ok && stolen {
			return FleetCatSteal
		}
		return FleetCatWire
	case strings.HasPrefix(s.Name, "cluster.fallback"):
		return FleetCatRemote
	case strings.HasPrefix(s.Name, "cluster."):
		return FleetCatReassembly
	case strings.HasPrefix(s.Name, "queue.wait"):
		return FleetCatQueue
	case strings.HasPrefix(s.Name, "http.serialize"):
		return FleetCatReassembly
	case strings.HasPrefix(s.Name, "profiler."),
		strings.HasPrefix(s.Name, "contention."),
		strings.HasPrefix(s.Name, "memo."),
		strings.HasPrefix(s.Name, "study."):
		return FleetCatRemote
	case s.Parent == "":
		return FleetCatReassembly
	default:
		return FleetCatOther
	}
}

// FleetTimeStacks aggregates traces into fleet time stacks: the same
// self-time fold as TimeStacks, grouped by trace name, but attributed to
// FleetCategories via FleetCategoryOf. Run it over a coordinator's stitched
// sweep traces to see where a distributed sweep's time went.
func FleetTimeStacks(traces []TraceJSON) []TimeStack {
	return timeStacksBy(traces, FleetCategoryOf, FleetCatQueue)
}

// TimeStack is the aggregated breakdown for one group of traces (one route,
// or one figure): thread-time attributed to each category, plus the wall
// time and trace count it was aggregated over.
type TimeStack struct {
	Name    string             `json:"name"`
	Traces  int                `json:"traces"`
	WallNs  int64              `json:"wall_ns"`
	ByNs    map[string]int64   `json:"by_ns"`
	Percent map[string]float64 `json:"percent"`
}

// stackOne folds a single trace into byNs using self-time attribution: each
// span contributes its duration minus the duration of its direct children
// (clamped at zero — concurrent children can sum past the parent), under the
// category catOf assigns to it. Pool-task queue waits, recorded as a queue_ns
// attribute rather than a span (the wait precedes the task's goroutine), are
// credited to queueCat and debited from the task's self time.
func stackOne(t TraceJSON, byNs map[string]int64, catOf func(SpanJSON) string, queueCat string) int64 {
	childNs := make(map[string]int64, len(t.Spans))
	for _, s := range t.Spans {
		if s.Parent != "" {
			childNs[s.Parent] += s.DurNs
		}
	}
	for _, s := range t.Spans {
		self := s.DurNs - childNs[s.ID]
		if self < 0 {
			self = 0
		}
		if q, ok := numAttr(s.Attrs, "queue_ns"); ok && q > 0 {
			if q > self {
				q = self
			}
			byNs[queueCat] += q
			self -= q
		}
		byNs[catOf(s)] += self
	}
	return t.DurNs
}

// numAttr extracts an integer attribute that may have round-tripped through
// JSON (float64) or not (int/int64).
func numAttr(attrs map[string]any, key string) (int64, bool) {
	switch v := attrs[key].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// TimeStacks aggregates traces grouped by trace name (the server names root
// spans after their route, the CLIs after the figure). Percentages are of
// the total attributed thread time per group, so concurrent pool work —
// where thread time legitimately exceeds wall time — still sums to 100%.
func TimeStacks(traces []TraceJSON) []TimeStack {
	return timeStacksBy(traces, func(s SpanJSON) string { return CategoryOf(s.Name) }, CatQueue)
}

// timeStacksBy is the shared aggregation behind TimeStacks and
// FleetTimeStacks, parameterized on the span categorizer.
func timeStacksBy(traces []TraceJSON, catOf func(SpanJSON) string, queueCat string) []TimeStack {
	groups := make(map[string][]TraceJSON)
	for _, t := range traces {
		groups[t.Name] = append(groups[t.Name], t)
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)

	out := make([]TimeStack, 0, len(names))
	for _, n := range names {
		ts := TimeStack{Name: n, ByNs: make(map[string]int64), Percent: make(map[string]float64)}
		for _, t := range groups[n] {
			ts.WallNs += stackOne(t, ts.ByNs, catOf, queueCat)
			ts.Traces++
		}
		var total int64
		for _, v := range ts.ByNs {
			total += v
		}
		if total > 0 {
			for k, v := range ts.ByNs {
				ts.Percent[k] = 100 * float64(v) / float64(total)
			}
		}
		out = append(out, ts)
	}
	return out
}

// RenderTimeStacks formats stacks as a fixed-width text table, one row per
// group, one column per category — the shape of the paper's stacked bars.
func RenderTimeStacks(stacks []TimeStack) string {
	return RenderTimeStacksWith(stacks, Categories)
}

// RenderTimeStacksWith is RenderTimeStacks with an explicit category set
// (the fleet stack renders FleetCategories instead of the engine set).
func RenderTimeStacksWith(stacks []TimeStack, categories []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %7s %10s", "group", "traces", "wall_ms")
	for _, c := range categories {
		fmt.Fprintf(&b, " %14s", c+"%")
	}
	b.WriteByte('\n')
	for _, s := range stacks {
		fmt.Fprintf(&b, "%-24s %7d %10.1f", s.Name, s.Traces, float64(s.WallNs)/1e6)
		for _, c := range categories {
			fmt.Fprintf(&b, " %14.1f", s.Percent[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one complete event ("ph":"X") in the Chrome trace-event
// format understood by chrome://tracing and Perfetto. Timestamps and
// durations are microseconds.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeFile is the top-level object form of a trace-event file.
type ChromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents renders one trace as complete events. Overlapping spans are
// assigned to lanes (tids) greedily so concurrent pool tasks render side by
// side instead of stacking into one unreadable row; pid distinguishes traces
// when several are merged into one file. Spans grafted from a remote process
// (those carrying the lane attribute) are laid out in their own named lanes —
// one tid block per worker, labeled with thread_name metadata events — so a
// stitched fleet trace reads as one coordinator row plus one row per worker.
func ChromeEvents(t TraceJSON, pid int) []ChromeEvent {
	spans := append([]SpanJSON(nil), t.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNs != spans[j].StartNs {
			return spans[i].StartNs < spans[j].StartNs
		}
		// Longer spans first at equal starts so parents claim a lane before
		// their children.
		return spans[i].DurNs > spans[j].DurNs
	})

	parentOf := make(map[string]string, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	isAncestor := func(anc, id string) bool {
		for id != "" {
			id = parentOf[id]
			if id == anc {
				return true
			}
		}
		return false
	}

	// Partition spans by lane attribute: the local process first, then one
	// group per remote lane name in first-appearance order (span order is
	// deterministic after the sort above).
	laneName := func(s SpanJSON) string {
		name, _ := s.Attrs[LaneAttr].(string)
		return name
	}
	groupNames := []string{""}
	groupSpans := map[string][]SpanJSON{}
	for _, s := range spans {
		ln := laneName(s)
		if _, seen := groupSpans[ln]; !seen && ln != "" {
			groupNames = append(groupNames, ln)
		}
		groupSpans[ln] = append(groupSpans[ln], s)
	}

	// Each lane holds a stack of still-open spans. A span may join a lane only
	// when the lane is idle at its start or the innermost open span there is
	// one of its ancestors — so a child nests inside its parent's row, while
	// overlapping siblings (concurrent pool tasks, or one worker's concurrent
	// cells) spill into separate lanes and render side by side.
	type open struct {
		id    string
		endNs int64
	}
	events := make([]ChromeEvent, 0, len(spans)+len(groupNames))
	tidBase := 0
	for _, gn := range groupNames {
		var lanes [][]open
		fits := func(li int, s SpanJSON) bool {
			stack := lanes[li]
			for len(stack) > 0 && stack[len(stack)-1].endNs <= s.StartNs {
				stack = stack[:len(stack)-1]
			}
			lanes[li] = stack
			return len(stack) == 0 || isAncestor(stack[len(stack)-1].id, s.ID)
		}
		laneOf := make(map[string]int)
		for _, s := range groupSpans[gn] {
			li := -1
			if pl, ok := laneOf[s.Parent]; ok && s.Parent != "" && fits(pl, s) {
				li = pl
			} else {
				for k := range lanes {
					if fits(k, s) {
						li = k
						break
					}
				}
			}
			if li == -1 {
				lanes = append(lanes, nil)
				li = len(lanes) - 1
			}
			lanes[li] = append(lanes[li], open{id: s.ID, endNs: s.StartNs + s.DurNs})
			laneOf[s.ID] = li

			ev := ChromeEvent{
				Name:  s.Name,
				Phase: "X",
				TsUs:  float64(s.StartNs) / 1e3,
				DurUs: float64(s.DurNs) / 1e3,
				PID:   pid,
				TID:   tidBase + li,
			}
			if len(s.Attrs) > 0 || s.ID != "" {
				ev.Args = map[string]any{"span_id": s.ID}
				for k, v := range s.Attrs {
					ev.Args[k] = v
				}
				if t.RequestID != "" {
					ev.Args["request_id"] = t.RequestID
				}
			}
			events = append(events, ev)
		}
		if gn != "" {
			for k := range lanes {
				label := gn
				if k > 0 {
					label = fmt.Sprintf("%s #%d", gn, k+1)
				}
				events = append(events, ChromeEvent{
					Name: "thread_name", Phase: "M", PID: pid, TID: tidBase + k,
					Args: map[string]any{"name": label},
				})
			}
		}
		tidBase += len(lanes)
	}
	return events
}

// WriteChrome writes one or more traces as a single Chrome trace-event JSON
// object, one pid per trace.
func WriteChrome(w io.Writer, traces ...TraceJSON) error {
	file := ChromeFile{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	for i, t := range traces {
		file.TraceEvents = append(file.TraceEvents, ChromeEvents(t, i+1)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	withTracing(t)
	col := NewCollector(4)
	ctx, root := StartTrace(context.Background(), col, "sweep")
	ctx, child := StartSpan(ctx, "cluster.dispatch")

	tid, sid := Traceparent(ctx)
	if tid == "" || sid != child.ID {
		t.Fatalf("Traceparent = (%q, %q), want trace ID and the dispatch span's ID %q", tid, sid, child.ID)
	}
	wire := FormatTraceparent(tid, sid)
	gtid, gsid, ok := ParseTraceparent(wire)
	if !ok || gtid != tid || gsid != sid {
		t.Fatalf("ParseTraceparent(%q) = (%q, %q, %t)", wire, gtid, gsid, ok)
	}
	child.End()
	root.End()

	for name, v := range map[string]string{
		"empty":        "",
		"no separator": "t-abc",
		"empty half":   "t-abc;",
		"bad chars":    "t-abc;s1\x00",
		"over-long":    strings.Repeat("x", 80) + ";s1",
		"injection":    `t-abc;s1";evil="1`,
	} {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("%s traceparent %q accepted", name, v)
		}
	}
	if FormatTraceparent("", "s1") != "" || FormatTraceparent("t", "") != "" {
		t.Error("FormatTraceparent rendered a half-empty context")
	}
}

func TestStartRemoteTraceAdoptsIdentity(t *testing.T) {
	withTracing(t)
	col := NewCollector(4)
	ctx, root := StartRemoteTrace(context.Background(), col, "/cluster/v1/cell", "t-remote01", "s7")
	if tr := CurrentTrace(ctx); tr == nil || tr.ID != "t-remote01" {
		t.Fatalf("remote trace did not adopt the propagated ID: %+v", tr)
	}
	if root.Parent != "" {
		t.Errorf("remote root has local parent %q, want none", root.Parent)
	}
	root.End()
	snap := col.Traces()[0].Snapshot()
	if got := snap.Spans[0].Attrs["remote_parent"]; got != "s7" {
		t.Errorf("remote_parent attr = %v, want s7", got)
	}

	// Invalid identifiers fall back to a locally minted trace.
	ctx2, root2 := StartRemoteTrace(context.Background(), col, "cell", "bad id!", "s1")
	if tr := CurrentTrace(ctx2); tr == nil || tr.ID == "bad id!" || !strings.HasPrefix(tr.ID, "t-") {
		t.Fatalf("invalid remote ID adopted: %+v", tr)
	}
	root2.End()

	// Disabled or collector-less, the remote start is a no-op like StartTrace.
	Disable()
	if _, sp := StartRemoteTrace(context.Background(), col, "cell", "t-x", "s1"); sp != nil {
		t.Error("StartRemoteTrace produced a span while disabled")
	}
	Enable()
	if _, sp := StartRemoteTrace(context.Background(), nil, "cell", "t-x", "s1"); sp != nil {
		t.Error("StartRemoteTrace produced a span with a nil collector")
	}
}

// TestGraftStitchesSubtree is the stitching contract: a worker subtree
// shipped over the wire grafts under the dispatch span that carried it, with
// rewritten span IDs, remapped parents, orphans reattached to the dispatch
// span, lane attributes stamped, and remote clock skew clamped forward.
func TestGraftStitchesSubtree(t *testing.T) {
	withTracing(t)

	// The "worker": a remote-adopted trace with a parent-child span pair.
	wcol := NewCollector(1)
	wctx, wroot := StartRemoteTrace(context.Background(), wcol, "cell", "t-shared", "s9")
	mctx, memoSpan := StartSpan(wctx, "memo.get")
	_, solveSpan := StartSpan(mctx, "contention.solve")
	time.Sleep(time.Millisecond)
	solveSpan.End()
	memoSpan.End()
	spans, base, dropped := CurrentTrace(wctx).WireSubtree(256)
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("WireSubtree: %d spans, %d dropped", len(spans), dropped)
	}
	wroot.End()

	// The "coordinator": graft under a live dispatch span, with the remote
	// base claiming to start an hour before the dispatch (skewed clock).
	ccol := NewCollector(1)
	cctx, croot := StartTrace(context.Background(), ccol, "/v1/sweep")
	_, dispatch := StartSpan(cctx, "cluster.dispatch")
	if got := dispatch.Graft(base.Add(-time.Hour), spans, "http://worker-a"); got != 2 {
		t.Fatalf("Graft imported %d spans, want 2", got)
	}
	dispatch.End()
	croot.End()

	snap := ccol.Traces()[0].Snapshot()
	byName := map[string]SpanJSON{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	memoG, solveG := byName["memo.get"], byName["contention.solve"]
	if memoG.ID == "" || solveG.ID == "" {
		t.Fatalf("grafted spans missing from snapshot: %+v", snap.Spans)
	}
	if memoG.ID == memoSpan.ID || !strings.Contains(memoG.ID, ".") {
		t.Errorf("grafted memo span kept unprefixed ID %q", memoG.ID)
	}
	// The worker root was still open at wire time, so memo.get is an orphan:
	// it reattaches to the dispatch span. Its child's parent link is remapped
	// to the prefixed local ID.
	if memoG.Parent != dispatch.ID {
		t.Errorf("orphan memo.get parent = %q, want dispatch span %q", memoG.Parent, dispatch.ID)
	}
	if solveG.Parent != memoG.ID {
		t.Errorf("solve parent = %q, want remapped %q", solveG.Parent, memoG.ID)
	}
	for _, s := range []SpanJSON{memoG, solveG} {
		if s.Attrs[LaneAttr] != "http://worker-a" {
			t.Errorf("span %s lane = %v, want worker URL", s.Name, s.Attrs[LaneAttr])
		}
		if s.StartNs < byName["cluster.dispatch"].StartNs {
			t.Errorf("span %s starts at %dns, before the dispatch span that carried it (skew not clamped)", s.Name, s.StartNs)
		}
	}

	// Nil-safety and empty subtrees.
	var nilSpan *Span
	if nilSpan.Graft(base, spans, "w") != 0 || dispatch.Graft(base, nil, "w") != 0 {
		t.Error("nil/empty graft imported spans")
	}
}

func TestWireSubtreeCaps(t *testing.T) {
	withTracing(t)
	col := NewCollector(1)
	ctx, root := StartTrace(context.Background(), col, "cell")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "memo.get")
		sp.End()
	}
	spans, _, dropped := CurrentTrace(ctx).WireSubtree(4)
	if len(spans) != 4 || dropped != 6 {
		t.Fatalf("WireSubtree(4) = %d spans, %d dropped, want 4 and 6", len(spans), dropped)
	}
	root.End()

	var nilTrace *Trace
	if spans, _, _ := nilTrace.WireSubtree(4); spans != nil {
		t.Error("nil trace produced a subtree")
	}
}

// TestChromeLanesPerWorker: grafted spans render in their own named lanes —
// a thread_name metadata event per worker, tids disjoint from the local rows.
func TestChromeLanesPerWorker(t *testing.T) {
	tr := TraceJSON{
		ID: "t-1", Name: "/v1/sweep", DurNs: 4000,
		Spans: []SpanJSON{
			{ID: "s0", Name: "/v1/sweep", StartNs: 0, DurNs: 4000},
			{ID: "s1", Parent: "s0", Name: "cluster.dispatch", StartNs: 100, DurNs: 1800},
			{ID: "s2", Parent: "s0", Name: "cluster.dispatch", StartNs: 200, DurNs: 1800},
			{ID: "g1.s1", Parent: "s1", Name: "contention.solve", StartNs: 300, DurNs: 900,
				Attrs: map[string]any{LaneAttr: "http://w-a"}},
			{ID: "g2.s1", Parent: "s2", Name: "contention.solve", StartNs: 400, DurNs: 900,
				Attrs: map[string]any{LaneAttr: "http://w-b"}},
		},
	}
	events := ChromeEvents(tr, 1)

	laneTids := map[string]int{}
	localTids := map[int]bool{}
	for _, ev := range events {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			laneTids[ev.Args["name"].(string)] = ev.TID
		case ev.Args[LaneAttr] == nil:
			localTids[ev.TID] = true
		}
	}
	if len(laneTids) != 2 {
		t.Fatalf("thread_name metadata for %d lanes, want 2: %v", len(laneTids), laneTids)
	}
	if laneTids["http://w-a"] == laneTids["http://w-b"] {
		t.Error("two workers share one lane tid")
	}
	for name, tid := range laneTids {
		if localTids[tid] {
			t.Errorf("worker lane %s shares tid %d with local spans", name, tid)
		}
	}
	for _, ev := range events {
		if ev.Args[LaneAttr] == "http://w-a" && ev.TID != laneTids["http://w-a"] {
			t.Errorf("w-a span in tid %d, want its named lane %d", ev.TID, laneTids["http://w-a"])
		}
	}
}

// TestFleetCategoryOf pins the fleet categorizer's mapping table.
func TestFleetCategoryOf(t *testing.T) {
	lane := map[string]any{LaneAttr: "http://w"}
	for _, tc := range []struct {
		span SpanJSON
		want string
	}{
		{SpanJSON{Name: "contention.solve", Attrs: lane}, FleetCatRemote},
		{SpanJSON{Name: "queue.wait", Attrs: lane}, FleetCatQueue},
		{SpanJSON{Name: "cluster.dispatch"}, FleetCatWire},
		{SpanJSON{Name: "cluster.dispatch", Attrs: map[string]any{"attempt": 2}}, FleetCatRetry},
		{SpanJSON{Name: "cluster.hedge"}, FleetCatHedge},
		{SpanJSON{Name: "cluster.cell"}, FleetCatWire},
		{SpanJSON{Name: "cluster.cell", Attrs: map[string]any{"stolen": true}}, FleetCatSteal},
		{SpanJSON{Name: "cluster.fallback"}, FleetCatRemote},
		{SpanJSON{Name: "cluster.sweep"}, FleetCatReassembly},
		{SpanJSON{Name: "queue.wait"}, FleetCatQueue},
		{SpanJSON{Name: "http.serialize"}, FleetCatReassembly},
		{SpanJSON{Name: "contention.solve"}, FleetCatRemote},
		{SpanJSON{Name: "/v1/sweep"}, FleetCatReassembly},
		{SpanJSON{Name: "mystery", Parent: "s0"}, FleetCatOther},
	} {
		if got := FleetCategoryOf(tc.span); got != tc.want {
			t.Errorf("FleetCategoryOf(%s attrs=%v) = %s, want %s", tc.span.Name, tc.span.Attrs, got, tc.want)
		}
	}
}

package obs

import (
	"math"
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := s.Quantile(p); q != 0 {
			t.Errorf("empty snapshot Quantile(%g) = %g, want 0", p, q)
		}
	}
	// A constructed-but-unobserved histogram is also empty.
	h := NewHistogram([]float64{1, 2, 4})
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("unobserved histogram Quantile(0.5) = %g, want 0", q)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	// All mass in [0,10]: the median interpolates to the bucket midpoint.
	if q := s.Quantile(0.5); q != 5 {
		t.Errorf("Quantile(0.5) = %g, want 5", q)
	}
	if q := s.Quantile(1); q != 10 {
		t.Errorf("Quantile(1) = %g, want 10", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("Quantile(0) = %g, want 0", q)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 2 observations in (1,2], 6 in (2,4].
	h.Observe(1.5)
	h.Observe(1.5)
	for i := 0; i < 6; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	// rank(0.5) = 4 → 2 of the 6 in (2,4]: 2 + (4-2)*(2/6).
	want := 2 + 2*(2.0/6.0)
	if q := s.Quantile(0.5); math.Abs(q-want) > 1e-12 {
		t.Errorf("Quantile(0.5) = %g, want %g", q, want)
	}
	// rank(0.25) = 2 → exactly the upper bound of the (1,2] bucket.
	if q := s.Quantile(0.25); q != 2 {
		t.Errorf("Quantile(0.25) = %g, want 2", q)
	}
	// p=0 lands at the lower edge of the first non-empty bucket.
	if q := s.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %g, want 1", q)
	}
	// Out-of-range p clamps.
	if q := s.Quantile(1.5); q != s.Quantile(1) {
		t.Errorf("Quantile(1.5) = %g, want %g", q, s.Quantile(1))
	}
	if q := s.Quantile(-1); q != s.Quantile(0) {
		t.Errorf("Quantile(-1) = %g, want %g", q, s.Quantile(0))
	}
}

func TestQuantileInfBucketClampsToLastBound(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(100) // lands only in the implicit +Inf bucket
	h.Observe(100)
	s := h.Snapshot()
	if q := s.Quantile(0.99); q != 2 {
		t.Errorf("Quantile(0.99) = %g, want clamp to 2", q)
	}
}

func TestQuantileNoBoundsReportsMean(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(4)
	h.Observe(8)
	if q := h.Snapshot().Quantile(0.5); q != 6 {
		t.Errorf("Quantile(0.5) = %g, want mean 6", q)
	}
}

// TestQuantileConcurrentWrites hammers one histogram from many goroutines
// and checks the quantiles computed from a snapshot taken afterwards are
// consistent with the observations — the atomic bucket counters must not
// lose or misfile anything.
func TestQuantileConcurrentWrites(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16})
	const (
		workers = 8
		perW    = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(1 + (i+w)%4)) // values 1..4
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("count %d, want %d", s.Count, workers*perW)
	}
	q50, q99 := s.Quantile(0.5), s.Quantile(0.99)
	if q50 < 1 || q50 > 4 {
		t.Errorf("Quantile(0.5) = %g outside observed range [1,4]", q50)
	}
	if q99 < q50 || q99 > 4 {
		t.Errorf("Quantile(0.99) = %g, want in [%g,4]", q99, q50)
	}
}

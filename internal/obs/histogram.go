package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket, lock-free histogram for engine-level metrics
// (solver iterations, pool queue seconds). Buckets are cumulative-upper-bound
// in the Prometheus sense; observations above the last bound land only in the
// implicit +Inf bucket. A nil *Histogram is a valid no-op so engine code can
// observe unconditionally whether or not a daemon is collecting.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound; +Inf is implicit via count
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds))
	return h
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := floatBits(bitsFloat(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy for rendering: cumulative
// bucket counts per bound, total count and sum.
type HistogramSnapshot struct {
	Bounds     []float64
	Cumulative []int64
	Count      int64
	Sum        float64
}

// Snapshot renders the histogram's current state with cumulative buckets.
// Nil-safe (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]int64, len(h.bounds)),
		Count:      h.count.Load(),
		Sum:        bitsFloat(h.sum.Load()),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile estimates the p-quantile (p in [0,1]) of the observations by
// linear interpolation within the bucket that holds the target rank — the
// same estimator as PromQL's histogram_quantile. Buckets report only counts,
// so the estimate is exact at bucket boundaries and linear in between; ranks
// that land in the implicit +Inf bucket clamp to the largest finite bound
// (there is nothing to interpolate toward). An empty snapshot reports 0, and
// a snapshot with no bounds reports the mean — both JSON-safe, never NaN.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	if len(s.Bounds) == 0 {
		return s.Sum / float64(s.Count)
	}
	rank := p * float64(s.Count)
	var prev int64
	lower := 0.0
	for i, b := range s.Bounds {
		cum := s.Cumulative[i]
		if cum > prev && float64(cum) >= rank {
			frac := (rank - float64(prev)) / float64(cum-prev)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + frac*(b-lower)
		}
		prev = cum
		lower = b
	}
	return s.Bounds[len(s.Bounds)-1]
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

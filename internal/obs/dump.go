package obs

import (
	"fmt"
	"os"
)

// Snapshots renders every buffered trace, newest first.
func (c *Collector) Snapshots() []TraceJSON {
	traces := c.Traces()
	out := make([]TraceJSON, len(traces))
	for i, t := range traces {
		out[i] = t.Snapshot()
	}
	return out
}

// DumpFile writes every buffered trace into one Chrome trace-event file at
// path (loadable in chrome://tracing or Perfetto) and returns the aggregated
// time-stack report rendered as text — the CLIs' -trace flag in one call.
func (c *Collector) DumpFile(path string) (string, error) {
	snaps := c.Snapshots()
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: %w", err)
	}
	if err := WriteChrome(f, snaps...); err != nil {
		f.Close()
		return "", fmt.Errorf("obs: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("obs: %w", err)
	}
	return RenderTimeStacks(TimeStacks(snaps)), nil
}

package obs

import (
	"context"
	"strconv"
	"strings"
	"time"
)

// This file is the cross-process half of the tracing layer: a coordinator
// serializes its current trace context onto an outbound dispatch
// (Traceparent/FormatTraceparent), the worker adopts it as the identity of a
// fresh local trace (ParseTraceparent/StartRemoteTrace), runs the request
// under ordinary StartSpan instrumentation, and ships the completed spans back
// in its response (WireSubtree). The coordinator then grafts that subtree
// under the dispatch span that carried it (Span.Graft), yielding one stitched
// tree per sweep. Propagation carries identifiers only — no deadlines, no
// baggage — and every hop is nil-safe and disabled-path-cheap like the rest
// of the package.

// LaneAttr is the attribute key Graft stamps on every imported span naming
// the remote process (worker URL) it came from. The Chrome export groups
// spans sharing a lane into a named thread lane, and the fleet time stack
// uses it to classify remote compute.
const LaneAttr = "lane"

// maxPropagationID bounds the accepted length of propagated trace/span IDs,
// mirroring the server's request-ID limit.
const maxPropagationID = 64

// ValidPropagationID reports whether s is safe to adopt as a remote trace or
// span identifier: non-empty, bounded, and limited to the characters our own
// IDs use plus dots (Graft prefixes). Anything else is minted fresh instead.
func ValidPropagationID(s string) bool {
	if s == "" || len(s) > maxPropagationID {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Traceparent returns the context's current trace and span identifiers for
// propagation onto an outbound request, or ("", "") when no trace is active.
func Traceparent(ctx context.Context) (traceID, spanID string) {
	if !enabled.Load() {
		return "", ""
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	if sp == nil {
		return "", ""
	}
	return sp.tr.ID, sp.ID
}

// FormatTraceparent renders the wire form of a propagated trace context:
// "<trace-id>;<parent-span-id>". Returns "" if either part is empty.
func FormatTraceparent(traceID, spanID string) string {
	if traceID == "" || spanID == "" {
		return ""
	}
	return traceID + ";" + spanID
}

// ParseTraceparent splits a propagated trace context produced by
// FormatTraceparent and validates both halves. ok is false for anything
// malformed, over-long, or containing unexpected characters — the receiver
// then falls back to minting a fresh local trace.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	tid, sid, found := strings.Cut(strings.TrimSpace(v), ";")
	if !found || !ValidPropagationID(tid) || !ValidPropagationID(sid) {
		return "", "", false
	}
	return tid, sid, true
}

// StartRemoteTrace is StartTrace for a request that arrived carrying a remote
// trace context: the new local trace adopts the remote trace ID (so the two
// halves can be stitched) and records the remote parent span on its root as
// the "remote_parent" attribute. The root span still has an empty Parent —
// locally it is a root, and ending it completes and publishes the local
// trace as usual. Invalid identifiers fall back to StartTrace.
func StartRemoteTrace(ctx context.Context, col *Collector, name, traceID, parentSpanID string) (context.Context, *Span) {
	if !enabled.Load() || col == nil {
		return ctx, nil
	}
	if !ValidPropagationID(traceID) || !ValidPropagationID(parentSpanID) {
		return StartTrace(ctx, col, name)
	}
	t := &Trace{ID: traceID, Name: name, RequestID: RequestID(ctx), Start: time.Now(), col: col}
	root := &Span{tr: t, ID: "s0", Name: name, Start: t.Start}
	root.SetAttr("remote_parent", parentSpanID)
	return context.WithValue(ctx, spanKey{}, root), root
}

// CurrentTrace returns the trace the context's current span belongs to, or
// nil when no trace is active. Handlers use it to export their own in-flight
// trace (WireSubtree) for return to a remote caller.
func CurrentTrace(ctx context.Context) *Trace {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	if sp == nil {
		return nil
	}
	return sp.tr
}

// WireSubtree renders the trace's completed spans for cross-process return,
// bounded at max spans (earliest-started survive; overflow is counted in
// dropped together with spans the trace itself already dropped). The returned
// start anchors the relative span times to the remote wall clock; Graft
// re-anchors them on the receiving side.
func (t *Trace) WireSubtree(max int) (spans []SpanJSON, start time.Time, dropped int) {
	if t == nil {
		return nil, time.Time{}, 0
	}
	snap := t.Snapshot()
	spans, dropped = snap.Spans, snap.DroppedSpans
	if max > 0 && len(spans) > max {
		dropped += len(spans) - max
		spans = spans[:max]
	}
	return spans, t.Start, dropped
}

// Graft imports a remote subtree (as produced by WireSubtree) into the
// receiving trace, attached under s — in practice the cluster.dispatch span
// whose request carried the work. Remote span IDs are rewritten with a
// per-graft prefix so repeated dispatches can never collide; subtree spans
// whose parent did not survive the wire cap reattach directly under s; every
// imported span is stamped with the lane attribute. Remote clocks are not
// trusted: if the subtree claims to start before the dispatch span that
// carried it, it is shifted forward to the dispatch start. Returns the number
// of spans imported (the trace-wide span cap still applies). Nil-safe.
func (s *Span) Graft(base time.Time, spans []SpanJSON, lane string) int {
	if s == nil || len(spans) == 0 {
		return 0
	}
	t := s.tr

	var shift time.Duration
	min := spans[0].StartNs
	for _, sj := range spans[1:] {
		if sj.StartNs < min {
			min = sj.StartNs
		}
	}
	if earliest := base.Add(time.Duration(min)); earliest.Before(s.Start) {
		shift = s.Start.Sub(earliest)
	}

	ids := make(map[string]bool, len(spans))
	for _, sj := range spans {
		ids[sj.ID] = true
	}
	// Graft prefixes draw from the same counter as local span IDs, so "g7."
	// can never collide with a local "s7" or another graft's prefix.
	prefix := "g" + strconv.FormatInt(t.nextID.Add(1), 10) + "."

	grafted := 0
	t.mu.Lock()
	for _, sj := range spans {
		if len(t.spans) >= maxSpansPerTrace {
			t.dropped++
			continue
		}
		start := base.Add(time.Duration(sj.StartNs) + shift)
		gs := &Span{
			tr:     t,
			ID:     prefix + sj.ID,
			Parent: s.ID,
			Name:   sj.Name,
			Start:  start,
			end:    start.Add(time.Duration(sj.DurNs)),
		}
		if sj.Parent != "" && ids[sj.Parent] {
			gs.Parent = prefix + sj.Parent
		}
		gs.attrs = make([]Attr, 0, len(sj.Attrs)+1)
		for k, v := range sj.Attrs {
			gs.attrs = append(gs.attrs, Attr{Key: k, Val: v})
		}
		gs.attrs = append(gs.attrs, Attr{Key: LaneAttr, Val: lane})
		t.spans = append(t.spans, gs)
		grafted++
	}
	t.mu.Unlock()
	return grafted
}

// Package obs is the engine's zero-dependency tracing layer: context-carried
// trace and span identifiers, a bounded ring buffer of completed traces, an
// aggregated "time stack" report in the spirit of the paper's CPI stacks, and
// the small atomic histograms behind the daemon's engine-level metrics.
//
// The design mirrors internal/faults: tracing is globally disabled by default
// and the disabled fast path is a single atomic load, so Start calls stay in
// place at every interesting engine boundary (HTTP handler, sweep, pool task,
// memo cache, profiler measurement, contention solve) at no measurable cost.
// Tracing never influences results: spans only read the clock, so sweeps are
// bit-identical with tracing on or off.
//
// A trace is a tree of spans. The root span is opened with StartTrace (the
// server does this per request, the CLIs per figure); child spans are opened
// with StartSpan wherever the context flows. Ending the root span completes
// the trace and publishes it to the trace's Collector, whose ring buffer
// backs smtflexd's /debug/traces and /debug/timestack endpoints and the CLIs'
// -trace flag.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span list; spans beyond the cap are
// dropped and counted (the root is exempt — see End), so a runaway campaign
// cannot hold the whole sweep grid in memory. A cold sweep produces well
// under 1k spans: cache hits are deliberately counted rather than spanned
// (memo.GetTraced), so span volume scales with real work, not lookups.
const maxSpansPerTrace = 8192

// enabled is the disabled-path gate, mirroring internal/faults.active.
var enabled atomic.Bool

// Enable turns span collection on process-wide. The server enables tracing at
// construction; CLIs enable it only under -trace.
func Enable() { enabled.Store(true) }

// Disable turns span collection off again (tests).
func Disable() { enabled.Store(false) }

// Enabled reports whether tracing is armed. The negative path is one atomic
// load.
func Enabled() bool { return enabled.Load() }

// spanKey carries the current *Span through a context.
type spanKey struct{}

// ridKey carries the request ID through a context, independent of tracing.
type ridKey struct{}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val any
}

// Span is one timed operation inside a trace. A nil *Span is a valid no-op:
// every method tolerates it, so call sites never branch on whether tracing is
// armed.
type Span struct {
	tr     *Trace
	ID     string
	Parent string
	Name   string
	Start  time.Time

	// end and attrs are written by the owning goroutine only; the trace's
	// mutex orders publication into the span list at End.
	end   time.Time
	attrs []Attr
}

// SetAttr annotates the span; nil-safe. Call before End.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// End stamps the span's end time and publishes it into its trace. Ending the
// root span completes the trace and hands it to the collector. Nil-safe;
// a second End is ignored.
func (s *Span) End() {
	if s == nil || !s.end.IsZero() {
		return
	}
	s.end = time.Now()
	t := s.tr
	t.mu.Lock()
	// The root span is exempt from the cap: it ends last, so on an
	// over-budget trace the cap would otherwise drop the one span every
	// consumer (time stacks, decomposition, the /debug/traces listing)
	// anchors on.
	if len(t.spans) < maxSpansPerTrace || s.Parent == "" {
		t.spans = append(t.spans, s)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
	if s.Parent == "" {
		t.finish(s.end)
	}
}

// Trace is one completed or in-flight span tree.
type Trace struct {
	ID        string
	Name      string
	RequestID string
	Start     time.Time

	col    *Collector
	nextID atomic.Int64

	mu      sync.Mutex
	spans   []*Span // completed spans, in end order
	dropped int
	endTime time.Time
}

// newSpan allocates a child span.
func (t *Trace) newSpan(name, parent string) *Span {
	return &Span{
		tr:     t,
		ID:     "s" + strconv.FormatInt(t.nextID.Add(1), 10),
		Parent: parent,
		Name:   name,
		Start:  time.Now(),
	}
}

// finish publishes the trace to its collector once the root span ends.
func (t *Trace) finish(end time.Time) {
	t.mu.Lock()
	t.endTime = end
	t.mu.Unlock()
	if t.col != nil {
		t.col.add(t)
	}
}

// Duration returns the root span's wall time (zero while in flight).
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.endTime.IsZero() {
		return 0
	}
	return t.endTime.Sub(t.Start)
}

// TraceMeta is a trace's identity and size — the cheap summary behind the
// /debug/traces listing, which must not copy every span of every trace.
type TraceMeta struct {
	ID        string    `json:"id"`
	Name      string    `json:"name"`
	RequestID string    `json:"request_id,omitempty"`
	Start     time.Time `json:"start"`
	DurNs     int64     `json:"dur_ns"`
	Spans     int       `json:"spans"`
	Dropped   int       `json:"dropped_spans,omitempty"`
}

// Meta summarizes the trace without rendering its spans.
func (t *Trace) Meta() TraceMeta {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := TraceMeta{
		ID: t.ID, Name: t.Name, RequestID: t.RequestID, Start: t.Start,
		Spans: len(t.spans), Dropped: t.dropped,
	}
	if !t.endTime.IsZero() {
		m.DurNs = t.endTime.Sub(t.Start).Nanoseconds()
	}
	return m
}

// SpanJSON is the wire form of one span: times are nanoseconds relative to
// the trace start, so exports are stable regardless of wall-clock precision.
type SpanJSON struct {
	ID      string         `json:"id"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNs int64          `json:"start_ns"`
	DurNs   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// TraceJSON is the wire form of a trace for /debug/traces/{id}.
type TraceJSON struct {
	ID           string     `json:"id"`
	Name         string     `json:"name"`
	RequestID    string     `json:"request_id,omitempty"`
	Start        time.Time  `json:"start"`
	DurNs        int64      `json:"dur_ns"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanJSON `json:"spans"`
}

// Snapshot renders the trace's completed spans, sorted by start time. It is
// safe to call while late spans (from a coalesced compute that outlived the
// root) are still being appended.
func (t *Trace) Snapshot() TraceJSON {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	dropped := t.dropped
	end := t.endTime
	t.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	out := TraceJSON{
		ID:           t.ID,
		Name:         t.Name,
		RequestID:    t.RequestID,
		Start:        t.Start,
		DroppedSpans: dropped,
		Spans:        make([]SpanJSON, len(spans)),
	}
	if !end.IsZero() {
		out.DurNs = end.Sub(t.Start).Nanoseconds()
	}
	for i, s := range spans {
		sj := SpanJSON{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartNs: s.Start.Sub(t.Start).Nanoseconds(),
			DurNs:   s.end.Sub(s.Start).Nanoseconds(),
		}
		if len(s.attrs) > 0 {
			sj.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				sj.Attrs[a.Key] = a.Val
			}
		}
		out.Spans[i] = sj
	}
	return out
}

// Collector is a bounded ring buffer of completed traces, newest first.
type Collector struct {
	mu     sync.Mutex
	ring   []*Trace
	next   int
	filled bool
}

// NewCollector returns a collector keeping the most recent cap traces
// (default 128 when cap <= 0).
func NewCollector(cap int) *Collector {
	if cap <= 0 {
		cap = 128
	}
	return &Collector{ring: make([]*Trace, cap)}
}

// add inserts a completed trace, evicting the oldest past capacity.
func (c *Collector) add(t *Trace) {
	c.mu.Lock()
	c.ring[c.next] = t
	c.next++
	if c.next == len(c.ring) {
		c.next, c.filled = 0, true
	}
	c.mu.Unlock()
}

// Traces returns the buffered traces, newest first.
func (c *Collector) Traces() []*Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	if c.filled {
		n = len(c.ring)
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent insertion point.
		idx := (c.next - 1 - i + len(c.ring)) % len(c.ring)
		if t := c.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the buffered trace with the given ID.
func (c *Collector) Find(id string) (*Trace, bool) {
	for _, t := range c.Traces() {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// Len reports how many traces are buffered.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.filled {
		return len(c.ring)
	}
	return c.next
}

// StartTrace opens a root span and attaches the new trace to the context.
// The trace publishes to col when the root span ends. With tracing disabled
// or a nil collector it is a no-op returning (ctx, nil).
func StartTrace(ctx context.Context, col *Collector, name string) (context.Context, *Span) {
	if !enabled.Load() || col == nil {
		return ctx, nil
	}
	t := &Trace{ID: newID("t"), Name: name, RequestID: RequestID(ctx), Start: time.Now(), col: col}
	root := &Span{tr: t, ID: "s0", Name: name, Start: t.Start}
	return context.WithValue(ctx, spanKey{}, root), root
}

// StartSpan opens a child span of the context's current span. With tracing
// disabled, or no trace in the context, it is a no-op returning (ctx, nil) —
// one atomic load on the disabled path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.ID)
	return context.WithValue(ctx, spanKey{}, s), s
}

// Detach returns a fresh background context carrying only the observability
// values (current span and request ID) of ctx — no deadline, no cancelation.
// The memo cache uses it so a coalesced compute's spans attach to the leader's
// trace while the compute's lifetime stays governed by the cache's own
// refcounted cancel.
func Detach(ctx context.Context) context.Context {
	out := context.Background()
	if sp, ok := ctx.Value(spanKey{}).(*Span); ok && enabled.Load() {
		out = context.WithValue(out, spanKey{}, sp)
	}
	if rid, ok := ctx.Value(ridKey{}).(string); ok {
		out = context.WithValue(out, ridKey{}, rid)
	}
	return out
}

// WithRequestID attaches a request identifier to the context; it flows into
// traces and log lines independently of whether tracing is enabled.
func WithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey{}, rid)
}

// RequestID returns the context's request identifier, or "".
func RequestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// NewRequestID mints a fresh request identifier.
func NewRequestID() string { return newID("r") }

// idCounter backs newID when crypto/rand fails (it practically never does).
var idCounter atomic.Int64

// newID returns prefix-<16 hex chars>, unique with overwhelming probability.
func newID(prefix string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("%s-%016x", prefix, idCounter.Add(1))
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

package mem

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Banks: 8, AccessTimeCycles: 120, BusBandwidthBytesPerCycle: 3.0, BlockBytes: 64}
}

func mustNew(t *testing.T, cfg Config) *DRAM {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return d
}

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Banks: 0, AccessTimeCycles: 1, BusBandwidthBytesPerCycle: 1, BlockBytes: 64},
		{Banks: 8, AccessTimeCycles: 0, BusBandwidthBytesPerCycle: 1, BlockBytes: 64},
		{Banks: 8, AccessTimeCycles: 1, BusBandwidthBytesPerCycle: 0, BlockBytes: 64},
		{Banks: 8, AccessTimeCycles: 1, BusBandwidthBytesPerCycle: 1, BlockBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUncontendedLatency(t *testing.T) {
	d := mustNew(t, testConfig())
	ready := d.Access(0, 1000)
	// One access: bus transfer starts immediately, bank takes 120 cycles.
	lat := ready - 1000
	if lat < 120 || lat > 120+25 {
		t.Fatalf("uncontended latency %d, want ~120..145", lat)
	}
	if d.Stats.Accesses != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestSameBankSerializes(t *testing.T) {
	d := mustNew(t, testConfig())
	// Two accesses to the same bank at the same time: the second waits.
	r1 := d.Access(0, 0)
	r2 := d.Access(8*64, 0) // same bank (banks=8, block index 8 ≡ 0 mod 8)
	if r2 < r1+120 {
		t.Fatalf("bank conflict not serialized: r1=%d r2=%d", r1, r2)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	d := mustNew(t, testConfig())
	r1 := d.Access(0, 0)
	r2 := d.Access(64, 0) // next block, different bank
	// Only the bus transfer (~21 cycles) separates them, not a full access.
	if r2 >= r1+120 {
		t.Fatalf("different banks fully serialized: r1=%d r2=%d", r1, r2)
	}
}

func TestBusOccupancyAccumulates(t *testing.T) {
	d := mustNew(t, testConfig())
	now := uint64(0)
	var last uint64
	for i := 0; i < 32; i++ {
		last = d.Access(uint64(i)*64, now)
	}
	// 32 block transfers at ~21.3 cycles each occupy the bus ~682 cycles;
	// with 8 banks in parallel the finish time is bus-bound.
	if last < 600 {
		t.Fatalf("32 simultaneous accesses finished too fast: %d", last)
	}
	if d.Stats.BusStallTotal == 0 {
		t.Fatal("expected bus stalls under burst load")
	}
}

func TestQueueLatencyMonotonic(t *testing.T) {
	c := testConfig()
	prev := 0.0
	for load := 0.0; load <= 0.05; load += 0.005 {
		l := c.QueueLatency(load)
		if l < prev {
			t.Fatalf("queue latency decreased at load %g: %g < %g", load, l, prev)
		}
		prev = l
	}
	if base := c.QueueLatency(0); base < float64(c.AccessTimeCycles) {
		t.Fatalf("zero-load latency %g below access time", base)
	}
}

func TestQueueLatencyFiniteAtSaturation(t *testing.T) {
	c := testConfig()
	l := c.QueueLatency(10) // far beyond bus capacity
	if l <= 0 || l > 1e6 {
		t.Fatalf("saturated latency %g not finite/bounded", l)
	}
}

func TestUtilization(t *testing.T) {
	c := testConfig()
	if u := c.Utilization(0); u != 0 {
		t.Fatalf("zero-load utilization %g", u)
	}
	if u := c.Utilization(1); u != 1 {
		t.Fatalf("overload utilization %g, want clamped to 1", u)
	}
	half := 0.5 / c.BusCyclesPerBlock()
	if u := c.Utilization(half); u < 0.49 || u > 0.51 {
		t.Fatalf("half-load utilization %g", u)
	}
}

func TestAvgLatencyStats(t *testing.T) {
	var s Stats
	if s.AvgLatency() != 0 {
		t.Fatal("idle stats should report 0")
	}
	s = Stats{Accesses: 2, TotalLatency: 300}
	if s.AvgLatency() != 150 {
		t.Fatalf("avg %g", s.AvgLatency())
	}
}

func TestAccessMonotonicProperty(t *testing.T) {
	// Property: ready time is always at least now + access time.
	d := mustNew(t, testConfig())
	f := func(addr uint64, delta uint16) bool {
		now := uint64(delta)
		ready := d.Access(addr, now)
		return ready >= now+120
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackConsumesBandwidth(t *testing.T) {
	d := mustNew(t, testConfig())
	d.Writeback(0, 0)
	if d.Stats.Writebacks != 1 {
		t.Fatalf("writebacks %d", d.Stats.Writebacks)
	}
	// A demand access right after the writeback waits for the bus.
	r := d.Access(64, 0)
	if r <= 120 {
		t.Fatalf("demand access at %d ignored writeback bus occupancy", r)
	}
}

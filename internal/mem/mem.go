// Package mem models main memory: a DRAM with independent banks and a fixed
// access time, behind a shared off-chip bus with finite bandwidth. Both the
// cycle engine and the interval engine's contention solver use it — the
// cycle engine calls Access per miss, the interval engine uses the queueing
// helpers to estimate average latency under load.
package mem

import (
	"errors"
	"fmt"

	"smtflex/internal/machstats"
)

// ErrBadConfig is wrapped by every memory-configuration validation failure.
var ErrBadConfig = errors.New("mem: invalid configuration")

// Config describes the memory system.
type Config struct {
	// Banks is the number of independent DRAM banks.
	Banks int
	// AccessTimeCycles is the uncontended bank access time in core cycles.
	AccessTimeCycles int
	// BusBandwidthBytesPerCycle is the off-chip bus bandwidth expressed in
	// bytes per core cycle (e.g. 8 GB/s at 2.66 GHz ≈ 3.0 B/cycle).
	BusBandwidthBytesPerCycle float64
	// BlockBytes is the transfer granule (a cache block).
	BlockBytes int
}

// Validate reports configuration errors; every failure wraps ErrBadConfig.
func (c Config) Validate() error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

func (c Config) validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("mem: banks must be positive, got %d", c.Banks)
	}
	if c.AccessTimeCycles <= 0 {
		return fmt.Errorf("mem: access time must be positive, got %d", c.AccessTimeCycles)
	}
	if c.BusBandwidthBytesPerCycle <= 0 {
		return fmt.Errorf("mem: bus bandwidth must be positive, got %g", c.BusBandwidthBytesPerCycle)
	}
	if c.BlockBytes <= 0 {
		return fmt.Errorf("mem: block size must be positive, got %d", c.BlockBytes)
	}
	return nil
}

// BusCyclesPerBlock returns the bus occupancy of one block transfer.
func (c Config) BusCyclesPerBlock() float64 {
	return float64(c.BlockBytes) / c.BusBandwidthBytesPerCycle
}

// Stats accumulates DRAM activity.
type Stats struct {
	Accesses      uint64
	Writebacks    uint64
	TotalLatency  uint64 // sum of observed latencies in cycles
	BusStallTotal uint64 // cycles spent waiting for the bus
}

// AvgLatency returns the mean observed access latency.
func (s Stats) AvgLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Accesses)
}

// Publish adds the stats to the machine-counter registry under scope
// (conventionally "dram"): accesses, writebacks, and the latency and
// bus-stall cycle accumulators. A no-op costing one atomic load while
// machstats is disabled.
func (s Stats) Publish(scope string) {
	if !machstats.Enabled() {
		return
	}
	machstats.Add(scope+".accesses", s.Accesses)
	machstats.Add(scope+".writebacks", s.Writebacks)
	machstats.AddCycles(scope+".latency_cycles", float64(s.TotalLatency))
	machstats.AddCycles(scope+".bus_stall_cycles", float64(s.BusStallTotal))
}

// DRAM is the cycle-engine memory model. Each bank and the bus are modelled
// as resources that become free at a known cycle; an access waits for both.
type DRAM struct {
	cfg      Config
	bankFree []uint64
	busFree  float64
	// Stats is exported accumulated activity.
	Stats Stats
}

// New builds the DRAM model. An invalid configuration fails with an error
// wrapping ErrBadConfig instead of panicking.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, bankFree: make([]uint64, cfg.Banks)}, nil
}

// Config returns the memory configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Access issues a block transfer for addr at time now (in cycles) and
// returns the cycle at which the data is available.
func (d *DRAM) Access(addr uint64, now uint64) (ready uint64) {
	bank := int(addr/uint64(d.cfg.BlockBytes)) % d.cfg.Banks

	// Wait for the bus, occupy it for the transfer time.
	start := float64(now)
	if d.busFree > start {
		d.Stats.BusStallTotal += uint64(d.busFree - start)
		start = d.busFree
	}
	d.busFree = start + d.cfg.BusCyclesPerBlock()

	// Wait for the bank, occupy it for the access time.
	bankStart := uint64(start)
	if d.bankFree[bank] > bankStart {
		bankStart = d.bankFree[bank]
	}
	ready = bankStart + uint64(d.cfg.AccessTimeCycles)
	d.bankFree[bank] = ready

	d.Stats.Accesses++
	d.Stats.TotalLatency += ready - now
	return ready
}

// Writeback occupies the bus and a bank for a dirty-eviction write at time
// now. Writebacks are fire-and-forget: nothing waits on the result, but the
// bandwidth they consume delays later demand accesses.
func (d *DRAM) Writeback(addr uint64, now uint64) {
	bank := int(addr/uint64(d.cfg.BlockBytes)) % d.cfg.Banks
	start := float64(now)
	if d.busFree > start {
		start = d.busFree
	}
	d.busFree = start + d.cfg.BusCyclesPerBlock()
	bankStart := uint64(start)
	if d.bankFree[bank] > bankStart {
		bankStart = d.bankFree[bank]
	}
	d.bankFree[bank] = bankStart + uint64(d.cfg.AccessTimeCycles)
	d.Stats.Writebacks++
}

// QueueLatency estimates the average memory latency (in cycles) under a
// given offered load using an M/D/1 queueing approximation for the bus plus
// the fixed bank access time. requestsPerCycle is the aggregate block-miss
// rate of the whole chip. The interval engine's contention solver calls this.
func (c Config) QueueLatency(requestsPerCycle float64) float64 {
	service := c.BusCyclesPerBlock()
	rho := requestsPerCycle * service
	// Saturate just below 1 to keep the model finite; the solver interprets
	// near-saturation latencies as bandwidth-bound operation.
	const rhoMax = 0.98
	if rho > rhoMax {
		rho = rhoMax
	}
	// M/D/1 mean wait: rho * s / (2 (1 - rho)).
	wait := rho * service / (2 * (1 - rho))
	// Bank contention: with B banks, a fraction 1/B of concurrent requests
	// collide; approximate added wait as utilization-scaled access time.
	bankRho := requestsPerCycle * float64(c.AccessTimeCycles) / float64(c.Banks)
	if bankRho > rhoMax {
		bankRho = rhoMax
	}
	bankWait := bankRho * float64(c.AccessTimeCycles) / (2 * (1 - bankRho))
	return float64(c.AccessTimeCycles) + service + wait + bankWait
}

// Utilization returns the bus utilization in [0,1] for an offered load.
func (c Config) Utilization(requestsPerCycle float64) float64 {
	u := requestsPerCycle * c.BusCyclesPerBlock()
	if u > 1 {
		return 1
	}
	return u
}

package cache

import (
	"testing"
)

func testConfig() Config {
	return Config{Name: "T", SizeBytes: 1 << 12, Assoc: 2, BlockBytes: 64, LatencyCycles: 2}
}

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func TestConfigGeometry(t *testing.T) {
	c := testConfig()
	if got := c.Sets(); got != 32 {
		t.Fatalf("Sets() = %d, want 32", got)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []Config{
		{},
		{SizeBytes: 1024, Assoc: 3, BlockBytes: 64},    // 5.33 sets
		{SizeBytes: 3 << 10, Assoc: 2, BlockBytes: 64}, // 24 sets, not pow2
		{SizeBytes: 1 << 12, Assoc: 2, BlockBytes: 48}, // block not pow2
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, testConfig())
	if hit, _ := c.Access(0x1000, Read); hit {
		t.Fatal("cold access hit")
	}
	if hit, _ := c.Access(0x1000, Read); !hit {
		t.Fatal("second access missed")
	}
	if c.Stats.Accesses != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestSameSetEvictionLRU(t *testing.T) {
	cfg := testConfig() // 32 sets, 2-way; addresses 32*64=2048 apart share a set
	c := mustNew(t, cfg)
	const stride = 2048
	a, b, d := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a, Read)
	c.Access(b, Read)
	c.Access(a, Read) // a most recent; b is LRU
	c.Access(d, Read) // evicts b
	if hit, _ := c.Access(a, Read); !hit {
		t.Error("a should still be cached (MRU)")
	}
	if hit, _ := c.Access(b, Read); hit {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, testConfig())
	const stride = 2048
	c.Access(0, Write)                         // dirty
	c.Access(stride, Read)                     // clean
	if _, wb := c.Access(2*stride, Read); wb { // evicts LRU = block 0 (dirty)
		if c.Stats.Writebacks != 1 {
			t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
		}
	} else {
		t.Fatal("expected dirty eviction")
	}
}

func TestWriteAllocates(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Access(0x40, Write)
	if hit, _ := c.Access(0x40, Read); !hit {
		t.Fatal("write did not allocate")
	}
}

func TestProbeDoesNotTouch(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Access(0x80, Read)
	before := c.Stats
	if !c.Probe(0x80) {
		t.Fatal("probe missed a cached line")
	}
	if c.Probe(0xdead000) {
		t.Fatal("probe hit an absent line")
	}
	if c.Stats != before {
		t.Fatal("probe changed statistics")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Access(0, Write)
	c.Access(64, Read)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush dropped %d dirty lines, want 1", dirty)
	}
	if hit, _ := c.Access(0, Read); hit {
		t.Fatal("hit after flush")
	}
}

func TestBlockAlignedAccessesSameLine(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Access(0x100, Read)
	for off := uint64(0); off < 64; off++ {
		if hit, _ := c.Access(0x100+off, Read); !hit {
			t.Fatalf("offset %d within block missed", off)
		}
	}
}

func TestBlockAddr(t *testing.T) {
	if BlockAddr(0x1234) != 0x1200 {
		t.Fatalf("BlockAddr(0x1234) = %#x", BlockAddr(0x1234))
	}
	if BlockAddr(0x1200) != 0x1200 {
		t.Fatal("aligned address changed")
	}
}

func TestMissRateStats(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Fatal("idle cache should report zero miss rate")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Fatalf("miss rate %g", s.MissRate())
	}
}

func TestCapacityHolding(t *testing.T) {
	// A cache of 64 blocks must hold a 64-block working set after warmup.
	cfg := testConfig() // 4 KB / 64 = 64 blocks
	c := mustNew(t, cfg)
	for round := 0; round < 3; round++ {
		for b := uint64(0); b < 64; b++ {
			c.Access(b*64, Read)
		}
	}
	c.Stats = Stats{}
	for b := uint64(0); b < 64; b++ {
		if hit, _ := c.Access(b*64, Read); !hit {
			t.Fatalf("block %d missed within capacity", b)
		}
	}
}

// Package cache implements set-associative caches with LRU replacement, the
// private/shared hierarchy used by the core models, and a stack-distance
// profiler that produces miss-rate-versus-capacity curves for the interval
// engine.
package cache

import (
	"errors"
	"fmt"
	"math/bits"

	"smtflex/internal/isa"
	"smtflex/internal/machstats"
)

// ErrBadConfig is wrapped by every cache-geometry validation failure.
var ErrBadConfig = errors.New("cache: invalid geometry")

// AccessKind distinguishes reads from writes for statistics and write
// allocation policy.
type AccessKind uint8

const (
	// Read is a data read or instruction fetch.
	Read AccessKind = iota
	// Write is a data write.
	Write
)

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access, or zero for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Publish adds the stats to the machine-counter registry under scope (e.g.
// "cache.l1d" yields cache.l1d.accesses, .misses, .writebacks). A no-op
// costing one atomic load while machstats is disabled.
func (s Stats) Publish(scope string) {
	if !machstats.Enabled() {
		return
	}
	machstats.Add(scope+".accesses", s.Accesses)
	machstats.Add(scope+".misses", s.Misses)
	machstats.Add(scope+".writebacks", s.Writebacks)
}

// Config describes one cache level.
type Config struct {
	// Name is used in stat dumps ("L1I", "L1D", "L2", "LLC").
	Name string
	// SizeBytes is total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// BlockBytes is the line size; all levels use isa.MemBlockSize.
	BlockBytes int
	// LatencyCycles is the hit latency.
	LatencyCycles int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return 0
	}
	return c.SizeBytes / (c.Assoc * c.BlockBytes)
}

// Validate reports whether the geometry is usable: positive sizes and a
// power-of-two number of sets (required for bit-sliced indexing). Every
// failure wraps ErrBadConfig.
func (c Config) Validate() error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}

func (c Config) validate() error {
	n := c.Sets()
	if n <= 0 {
		return fmt.Errorf("cache %s: non-positive set count (size=%d assoc=%d block=%d)",
			c.Name, c.SizeBytes, c.Assoc, c.BlockBytes)
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("cache %s: set count %d is not a power of two", c.Name, n)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d is not a power of two", c.Name, c.BlockBytes)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set stamp; higher is more recent.
	lru uint64
}

// Cache is a set-associative write-back, write-allocate cache with true LRU
// replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	stamp    uint64
	// Stats is exported state; callers may reset it between phases.
	Stats Stats
}

// New builds a cache from cfg. An invalid geometry fails with an error
// wrapping ErrBadConfig instead of panicking, so one bad design point cannot
// take down a process evaluating many.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		sets:     make([][]line, n),
		setShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		setMask:  uint64(n - 1),
	}
	backing := make([]line, n*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycles }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	block := addr >> c.setShift
	return int(block & c.setMask), block >> uint(bits.TrailingZeros(uint(len(c.sets))))
}

// Access looks up addr, allocating on miss. It returns hit=true on a hit and
// evictedDirty=true when the allocation evicted a dirty line (a writeback).
func (c *Cache) Access(addr uint64, kind AccessKind) (hit, evictedDirty bool) {
	c.Stats.Accesses++
	c.stamp++
	set, tag := c.index(addr)
	lines := c.sets[set]
	victim := 0
	for i := range lines {
		ln := &lines[i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.stamp
			if kind == Write {
				ln.dirty = true
			}
			return true, false
		}
		if !ln.valid {
			victim = i
		} else if lines[victim].valid && ln.lru < lines[victim].lru {
			victim = i
		}
	}
	c.Stats.Misses++
	v := &lines[victim]
	evictedDirty = v.valid && v.dirty
	if evictedDirty {
		c.Stats.Writebacks++
	}
	v.valid = true
	v.tag = tag
	v.dirty = kind == Write
	v.lru = c.stamp
	return false, evictedDirty
}

// Probe reports whether addr currently hits, without updating LRU state or
// statistics. Used by tests and by the scheduler's footprint estimation.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and returns the number of dirty lines dropped.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			if ln.valid && ln.dirty {
				dirty++
			}
			*ln = line{}
		}
	}
	return dirty
}

// BlockAddr returns the block-aligned address for addr.
func BlockAddr(addr uint64) uint64 {
	return addr &^ uint64(isa.MemBlockSize-1)
}

package cache

import (
	"math"
	"math/bits"
	"sort"
)

// StackProfiler computes LRU stack distances (Mattson's algorithm) over a
// block-address reference stream. One pass yields the miss ratio of every
// power-of-two fully-associative LRU cache size simultaneously, which the
// interval engine turns into a miss-rate-versus-capacity curve for modelling
// cache capacity contention.
//
// Distances are recorded in power-of-two buckets: bucket b counts accesses
// with stack distance d where bits.Len(d) == b, so the miss ratio at any
// power-of-two capacity is exact. The implementation uses an
// order-statistics treap over access timestamps, so each touch is
// O(log n) in the number of distinct blocks.
type StackProfiler struct {
	last  map[uint64]uint64 // block -> timestamp of previous access
	tree  *treap
	clock uint64
	// hist[b] counts accesses whose stack distance d has bits.Len64(d)==b.
	hist [65]uint64
	// cold counts first-touch accesses (infinite distance).
	cold uint64
	// total counts all accesses.
	total uint64
}

// NewStackProfiler returns an empty profiler. The argument is retained for
// compatibility and ignored; bucketing makes the resolution unbounded.
func NewStackProfiler(int) *StackProfiler {
	return &StackProfiler{last: make(map[uint64]uint64), tree: newTreap()}
}

// Touch records an access to block (a block-aligned address or block id).
func (p *StackProfiler) Touch(block uint64) {
	p.clock++
	p.total++
	prev, seen := p.last[block]
	if seen {
		// Stack distance = number of distinct blocks touched since prev,
		// which is the count of timestamps in the tree greater than prev.
		d := uint64(p.tree.countGreater(prev))
		p.hist[bits.Len64(d)]++
		p.tree.delete(prev)
	} else {
		p.cold++
	}
	p.tree.insert(p.clock)
	p.last[block] = p.clock
}

// Accesses returns the total number of touches recorded.
func (p *StackProfiler) Accesses() uint64 { return p.total }

// DistinctBlocks returns the number of distinct blocks seen.
func (p *StackProfiler) DistinctBlocks() int { return len(p.last) }

// Snapshot captures the profiler's counters so a later window can be
// measured as a delta (used to exclude warmup).
type Snapshot struct {
	hist  [65]uint64
	cold  uint64
	total uint64
}

// Checkpoint returns the current counters.
func (p *StackProfiler) Checkpoint() Snapshot {
	return Snapshot{hist: p.hist, cold: p.cold, total: p.total}
}

// MissRatio returns the fraction of accesses that miss in a fully
// associative LRU cache of the given capacity in blocks. Capacities are
// rounded down to a power of two (the bucket resolution).
func (p *StackProfiler) MissRatio(capacityBlocks int) float64 {
	return p.MissRatioSince(Snapshot{}, capacityBlocks)
}

// MissRatioSince is MissRatio restricted to the accesses recorded after the
// snapshot was taken.
func (p *StackProfiler) MissRatioSince(s Snapshot, capacityBlocks int) float64 {
	total := p.total - s.total
	if total == 0 {
		return 0
	}
	// A capacity of c blocks hits all accesses with distance d < c. With
	// power-of-two c, those are exactly buckets 0..log2(c).
	maxHitBucket := -1
	if capacityBlocks >= 1 {
		maxHitBucket = bits.Len64(uint64(capacityBlocks)) - 1
	}
	misses := p.cold - s.cold
	for b := maxHitBucket + 1; b < len(p.hist); b++ {
		misses += p.hist[b] - s.hist[b]
	}
	return float64(misses) / float64(total)
}

// MissRatioCurve samples the miss ratio at each capacity (in blocks) in
// caps for accesses after snapshot s, and returns a piecewise-linear curve.
func (p *StackProfiler) MissRatioCurve(s Snapshot, caps []int) MissCurve {
	sorted := append([]int(nil), caps...)
	sort.Ints(sorted)
	curve := MissCurve{Capacities: sorted, Ratios: make([]float64, len(sorted))}
	for i, c := range sorted {
		curve.Ratios[i] = p.MissRatioSince(s, c)
	}
	return curve
}

// MissCurve is a piecewise-linear miss-ratio-versus-capacity curve.
// Capacities are in cache blocks, ascending.
type MissCurve struct {
	Capacities []int
	Ratios     []float64
}

// At interpolates the miss ratio at the given capacity in blocks. Outside
// the sampled range it clamps to the end values; an empty curve returns 0. A
// NaN capacity yields NaN rather than a panic, so corrupted state reaches
// the contention solver's divergence detection instead of unwinding the
// stack.
func (c MissCurve) At(capacityBlocks float64) float64 {
	n := len(c.Capacities)
	if n == 0 {
		return 0
	}
	if math.IsNaN(capacityBlocks) {
		return math.NaN()
	}
	if capacityBlocks <= float64(c.Capacities[0]) {
		return c.Ratios[0]
	}
	if capacityBlocks >= float64(c.Capacities[n-1]) {
		return c.Ratios[n-1]
	}
	i := sort.Search(n, func(j int) bool { return float64(c.Capacities[j]) >= capacityBlocks })
	if i == 0 {
		return c.Ratios[0]
	}
	// c.Capacities[i-1] < capacityBlocks <= c.Capacities[i]
	lo, hi := float64(c.Capacities[i-1]), float64(c.Capacities[i])
	f := (capacityBlocks - lo) / (hi - lo)
	return c.Ratios[i-1] + f*(c.Ratios[i]-c.Ratios[i-1])
}

// Valid reports whether the curve is well formed: same lengths, ascending
// capacities, ratios within [0,1] and non-increasing.
func (c MissCurve) Valid() bool {
	if len(c.Capacities) != len(c.Ratios) {
		return false
	}
	for i := range c.Capacities {
		if c.Ratios[i] < 0 || c.Ratios[i] > 1 {
			return false
		}
		if i > 0 {
			if c.Capacities[i] <= c.Capacities[i-1] {
				return false
			}
			if c.Ratios[i] > c.Ratios[i-1]+1e-12 {
				return false
			}
		}
	}
	return true
}

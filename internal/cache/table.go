package cache

import "math"

// MissTable is a quantized, constant-time form of a MissCurve: the curve is
// resampled onto a uniform grid in log2(capacity), so At locates its segment
// with one logarithm instead of a binary search. The contention solver's
// inner loop performs several curve lookups per thread per iteration, which
// makes the O(log n) sort.Search in MissCurve.At the dominant instruction
// stream of a large sweep; the table turns each lookup into O(1) arithmetic.
//
// When the grid coincides with the curve's breakpoints — the profiler's
// curves sample power-of-two capacities, so Quantize(len(Capacities)) lands
// every grid point exactly on a breakpoint — the table reproduces
// MissCurve.At bit for bit: the sampled ratios are the curve's own and the
// interpolation arithmetic is identical. A coarser or finer grid
// approximates the curve with error bounded by the largest ratio change
// within any one grid cell.
type MissTable struct {
	// caps holds the grid capacities in blocks, ascending.
	caps []float64
	// ratios[i] is the curve's miss ratio at caps[i].
	ratios []float64
	// log2Lo is log2(caps[0]); invStep is cells per unit of log2 capacity.
	log2Lo  float64
	invStep float64
}

// Quantize resamples the curve onto an n-point grid spaced uniformly in
// log2(capacity) between the curve's first and last breakpoints. n is
// clamped to at least 2 (the two endpoints); an empty curve yields an empty
// table whose At returns 0, and a single-point curve yields a constant
// table, matching MissCurve.At's clamping.
//
// Grid points that land exactly on a curve breakpoint take the breakpoint's
// ratio verbatim (no interpolation round-off), so a grid that covers every
// breakpoint makes the table's At bit-identical to the curve's.
func (c MissCurve) Quantize(n int) MissTable {
	if len(c.Capacities) == 0 {
		return MissTable{}
	}
	lo := float64(c.Capacities[0])
	hi := float64(c.Capacities[len(c.Capacities)-1])
	if len(c.Capacities) == 1 || hi <= lo {
		return MissTable{caps: []float64{lo}, ratios: []float64{c.Ratios[0]}}
	}
	if n < 2 {
		n = 2
	}
	l2lo, l2hi := math.Log2(lo), math.Log2(hi)
	step := (l2hi - l2lo) / float64(n-1)
	t := MissTable{
		caps:    make([]float64, n),
		ratios:  make([]float64, n),
		log2Lo:  l2lo,
		invStep: float64(n-1) / (l2hi - l2lo),
	}
	bp := 0 // breakpoint cursor: Capacities ascend, and so does the grid
	for i := 0; i < n; i++ {
		x := math.Exp2(l2lo + float64(i)*step)
		// Force exact endpoints against log/exp round-off.
		if i == 0 {
			x = lo
		}
		if i == n-1 {
			x = hi
		}
		t.caps[i] = x
		for bp < len(c.Capacities) && float64(c.Capacities[bp]) < x {
			bp++
		}
		if bp < len(c.Capacities) && float64(c.Capacities[bp]) == x {
			t.ratios[i] = c.Ratios[bp]
		} else {
			t.ratios[i] = c.At(x)
		}
	}
	return t
}

// At returns the quantized miss ratio at the given capacity in blocks, in
// O(1). Outside the grid it clamps to the end values; an empty table returns
// 0; a NaN capacity yields NaN — the same edge behaviour as MissCurve.At, so
// corrupted solver state still reaches divergence detection instead of
// panicking.
func (t MissTable) At(capacityBlocks float64) float64 {
	n := len(t.caps)
	if n == 0 {
		return 0
	}
	if math.IsNaN(capacityBlocks) {
		return math.NaN()
	}
	if capacityBlocks <= t.caps[0] {
		return t.ratios[0]
	}
	if capacityBlocks >= t.caps[n-1] {
		return t.ratios[n-1]
	}
	i := int((math.Log2(capacityBlocks) - t.log2Lo) * t.invStep)
	// Float round-off can land the index one cell off; nudge it so that
	// caps[i] < capacityBlocks <= caps[i+1], mirroring MissCurve.At's
	// segment convention.
	if i > n-2 {
		i = n - 2
	}
	if i < 0 {
		i = 0
	}
	for i > 0 && capacityBlocks <= t.caps[i] {
		i--
	}
	for i < n-2 && capacityBlocks > t.caps[i+1] {
		i++
	}
	lo, hi := t.caps[i], t.caps[i+1]
	f := (capacityBlocks - lo) / (hi - lo)
	return t.ratios[i] + f*(t.ratios[i+1]-t.ratios[i])
}

// Len returns the number of grid points.
func (t MissTable) Len() int { return len(t.caps) }

package cache

import (
	"math"
	"testing"
)

// profCurve mimics the profiler's miss curves: power-of-two capacities from
// 4 KB to 128 MB in 64-byte blocks, monotonically decreasing ratios.
func profCurve() MissCurve {
	var c MissCurve
	r := 0.9
	for b := 64; b <= 2<<20; b *= 2 {
		c.Capacities = append(c.Capacities, b)
		c.Ratios = append(c.Ratios, r)
		r *= 0.72
	}
	return c
}

// TestQuantizeExactOnBreakpointGrid: when the grid covers every breakpoint
// (the profiler's curves are log-uniform, so Quantize(len) does), the table
// must reproduce the curve bit for bit at every probe — on breakpoints,
// between them, and outside the sampled range.
func TestQuantizeExactOnBreakpointGrid(t *testing.T) {
	c := profCurve()
	tab := c.Quantize(len(c.Capacities))
	if tab.Len() != len(c.Capacities) {
		t.Fatalf("table has %d points, want %d", tab.Len(), len(c.Capacities))
	}
	probes := []float64{0, 1, 63, 64, 65, 100, 127, 128, 8191.5, 1 << 15, 3 << 15, 2 << 20, 3 << 20, 1e12}
	for _, x := range c.Capacities {
		probes = append(probes, float64(x), float64(x)*1.37, float64(x)-0.25)
	}
	for _, x := range probes {
		want, got := c.At(x), tab.At(x)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Errorf("At(%g): table %v (%x) != curve %v (%x)", x, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestQuantizeCoarseBounded: a coarser grid may deviate from the exact curve
// between grid points, but must agree exactly on its own grid points and
// never leave the envelope of the curve's values within each cell.
func TestQuantizeCoarseBounded(t *testing.T) {
	c := profCurve()
	for _, n := range []int{2, 3, 5, 9, 31, 64} {
		tab := c.Quantize(n)
		if tab.Len() != n {
			t.Fatalf("Quantize(%d) has %d points", n, tab.Len())
		}
		// At a grid point the table uses the same segment convention as
		// MissCurve.At (lo < x <= hi), so it returns r[i-1] + 1·(r[i]-r[i-1]);
		// that equals the stored ratio up to one rounding step.
		for i, x := range tab.caps {
			if got, want := tab.At(x), tab.ratios[i]; math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d: At(grid point %g) = %v, want stored %v", n, x, got, want)
			}
		}
		// The curve is non-increasing, so within any cell both the curve and
		// the table lie in [ratio(hi), ratio(lo)] of the cell's exact values.
		for i := 0; i+1 < n; i++ {
			lo, hi := tab.caps[i], tab.caps[i+1]
			for f := 0.1; f < 1; f += 0.2 {
				x := lo + f*(hi-lo)
				got := tab.At(x)
				upper, lower := c.At(lo), c.At(hi)
				if got > upper+1e-12 || got < lower-1e-12 {
					t.Errorf("n=%d: At(%g)=%v outside cell envelope [%v,%v]", n, x, got, lower, upper)
				}
			}
		}
	}
}

// TestMissTableEdges pins the clamp/NaN edge cases to MissCurve.At's
// behaviour: empty table → 0, below/above range → end values, NaN → NaN.
func TestMissTableEdges(t *testing.T) {
	var empty MissTable
	if got := empty.At(123); got != 0 {
		t.Errorf("empty table At = %v, want 0", got)
	}
	var emptyCurve MissCurve
	if n := emptyCurve.Quantize(8).Len(); n != 0 {
		t.Errorf("quantized empty curve has %d points", n)
	}

	single := MissCurve{Capacities: []int{128}, Ratios: []float64{0.4}}.Quantize(8)
	for _, x := range []float64{0, 127, 128, 1e9} {
		if got := single.At(x); got != 0.4 {
			t.Errorf("single-point table At(%g) = %v, want 0.4", x, got)
		}
	}

	c := profCurve()
	tab := c.Quantize(len(c.Capacities))
	if got := tab.At(0); got != c.Ratios[0] {
		t.Errorf("At(0) = %v, want first ratio %v", got, c.Ratios[0])
	}
	if got := tab.At(math.Inf(1)); got != c.Ratios[len(c.Ratios)-1] {
		t.Errorf("At(+Inf) = %v, want last ratio", got)
	}
	if got := tab.At(math.NaN()); !math.IsNaN(got) {
		t.Errorf("At(NaN) = %v, want NaN", got)
	}
	// Quantize clamps n below 2.
	if n := c.Quantize(0).Len(); n != 2 {
		t.Errorf("Quantize(0) has %d points, want 2", n)
	}
}

// TestMissTableAtAllocs: the whole point of the table is a zero-allocation
// O(1) hot path, locked in here so a regression cannot merge silently.
func TestMissTableAtAllocs(t *testing.T) {
	tab := profCurve().Quantize(64)
	probes := []float64{1, 100, 5000, 1 << 18, 1e9}
	allocs := testing.AllocsPerRun(200, func() {
		for _, x := range probes {
			if v := tab.At(x); v < 0 {
				t.Fatal("negative ratio")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("MissTable.At allocates %.1f times per run, want 0", allocs)
	}
}

package cache

// treap is an order-statistics treap over uint64 keys (access timestamps).
// It supports insert, delete, and counting keys greater than a threshold,
// all in O(log n) expected time. Priorities come from a deterministic
// xorshift generator so profiling runs are reproducible.
type treap struct {
	root *treapNode
	rng  uint64
}

type treapNode struct {
	key         uint64
	prio        uint64
	size        int
	left, right *treapNode
}

func newTreap() *treap { return &treap{rng: 0x9E3779B97F4A7C15} }

func (t *treap) nextPrio() uint64 {
	// xorshift64*
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

func size(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *treapNode) update() { n.size = 1 + size(n.left) + size(n.right) }

// split partitions n into keys <= key and keys > key.
func split(n *treapNode, key uint64) (lo, hi *treapNode) {
	if n == nil {
		return nil, nil
	}
	if n.key <= key {
		l, h := split(n.right, key)
		n.right = l
		n.update()
		return n, h
	}
	l, h := split(n.left, key)
	n.left = h
	n.update()
	return l, n
}

func merge(a, b *treapNode) *treapNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = merge(a.right, b)
		a.update()
		return a
	default:
		b.left = merge(a, b.left)
		b.update()
		return b
	}
}

// insert adds key, which must not already be present.
func (t *treap) insert(key uint64) {
	node := &treapNode{key: key, prio: t.nextPrio(), size: 1}
	lo, hi := split(t.root, key)
	t.root = merge(merge(lo, node), hi)
}

// delete removes key if present and reports whether it was found.
func (t *treap) delete(key uint64) bool {
	lo, hi := split(t.root, key)
	lo2, eq := split(lo, key-1)
	found := eq != nil
	t.root = merge(lo2, hi)
	return found
}

// countGreater returns the number of keys strictly greater than key.
func (t *treap) countGreater(key uint64) int {
	n := t.root
	count := 0
	for n != nil {
		if n.key > key {
			count += 1 + size(n.right)
			n = n.left
		} else {
			n = n.right
		}
	}
	return count
}

// len returns the number of keys stored.
func (t *treap) len() int { return size(t.root) }

package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveLRUMisses simulates a fully-associative LRU cache of the given block
// capacity over the reference stream and counts misses — the oracle the
// stack profiler must agree with at power-of-two capacities.
func naiveLRUMisses(refs []uint64, capacity int) int {
	type node struct{ block uint64 }
	var lru []node // front = MRU
	misses := 0
	for _, b := range refs {
		found := -1
		for i, n := range lru {
			if n.block == b {
				found = i
				break
			}
		}
		if found < 0 {
			misses++
			lru = append([]node{{b}}, lru...)
			if len(lru) > capacity {
				lru = lru[:capacity]
			}
		} else {
			n := lru[found]
			lru = append(lru[:found], lru[found+1:]...)
			lru = append([]node{n}, lru...)
		}
	}
	return misses
}

func TestStackProfilerMatchesNaiveLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	refs := make([]uint64, 3000)
	for i := range refs {
		refs[i] = uint64(rng.Intn(200))
	}
	p := NewStackProfiler(0)
	for _, b := range refs {
		p.Touch(b)
	}
	for _, capacity := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		want := float64(naiveLRUMisses(refs, capacity)) / float64(len(refs))
		got := p.MissRatio(capacity)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("capacity %d: miss ratio %g, naive LRU %g", capacity, got, want)
		}
	}
}

func TestStackProfilerSequential(t *testing.T) {
	// A strict streaming pattern never reuses: every access is a miss at any
	// capacity.
	p := NewStackProfiler(0)
	for b := uint64(0); b < 1000; b++ {
		p.Touch(b)
	}
	for _, capacity := range []int{1, 64, 1 << 20} {
		if got := p.MissRatio(capacity); got != 1 {
			t.Errorf("streaming miss ratio at %d = %g, want 1", capacity, got)
		}
	}
}

func TestStackProfilerLoop(t *testing.T) {
	// Looping over N blocks: hits once capacity >= N, all misses below
	// (classic LRU cliff).
	const n = 64
	p := NewStackProfiler(0)
	for round := 0; round < 10; round++ {
		for b := uint64(0); b < n; b++ {
			p.Touch(b)
		}
	}
	if got := p.MissRatio(n); got > 0.11 {
		t.Errorf("loop fits at capacity %d but miss ratio %g", n, got)
	}
	if got := p.MissRatio(n / 2); got != 1 {
		t.Errorf("LRU loop thrash below capacity should miss always, got %g", got)
	}
}

func TestCheckpointDelta(t *testing.T) {
	p := NewStackProfiler(0)
	// Warmup: streaming garbage.
	for b := uint64(10000); b < 11000; b++ {
		p.Touch(b)
	}
	snap := p.Checkpoint()
	// Measured window: tight 8-block loop, all hits after the first touches.
	for round := 0; round < 100; round++ {
		for b := uint64(0); b < 8; b++ {
			p.Touch(b)
		}
	}
	if got := p.MissRatioSince(snap, 8); got > 0.02 {
		t.Errorf("post-checkpoint miss ratio %g, want ~0.01 (cold only)", got)
	}
	// Without the checkpoint the warmup stream dominates.
	if got := p.MissRatio(8); got < 0.5 {
		t.Errorf("full-window ratio %g should include warmup misses", got)
	}
}

func TestAccessorCounts(t *testing.T) {
	p := NewStackProfiler(0)
	for i := 0; i < 10; i++ {
		p.Touch(uint64(i % 3))
	}
	if p.Accesses() != 10 {
		t.Fatalf("accesses %d", p.Accesses())
	}
	if p.DistinctBlocks() != 3 {
		t.Fatalf("distinct %d", p.DistinctBlocks())
	}
}

func TestMissCurveAt(t *testing.T) {
	c := MissCurve{Capacities: []int{64, 128, 256}, Ratios: []float64{0.8, 0.4, 0.1}}
	if !c.Valid() {
		t.Fatal("curve should be valid")
	}
	cases := []struct {
		cap  float64
		want float64
	}{
		{0, 0.8}, {64, 0.8}, {96, 0.6}, {128, 0.4}, {192, 0.25}, {256, 0.1}, {1e9, 0.1},
		{64.5, 0.8 - 0.4*0.5/64}, // regression: used to index [-1]
	}
	for _, tc := range cases {
		got := c.At(tc.cap)
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("At(%g) = %g, want %g", tc.cap, got, tc.want)
		}
	}
}

func TestMissCurveAtEmpty(t *testing.T) {
	var c MissCurve
	if c.At(100) != 0 {
		t.Fatal("empty curve should return 0")
	}
}

func TestMissCurveValidRejects(t *testing.T) {
	bad := []MissCurve{
		{Capacities: []int{1, 2}, Ratios: []float64{0.5}},      // length mismatch
		{Capacities: []int{2, 1}, Ratios: []float64{0.5, 0.4}}, // not ascending
		{Capacities: []int{1, 2}, Ratios: []float64{0.4, 0.5}}, // increasing ratio
		{Capacities: []int{1}, Ratios: []float64{1.5}},         // ratio > 1
		{Capacities: []int{1}, Ratios: []float64{-0.1}},        // ratio < 0
	}
	for i, c := range bad {
		if c.Valid() {
			t.Errorf("case %d: invalid curve accepted", i)
		}
	}
}

func TestMissRatioMonotonicProperty(t *testing.T) {
	// Property: for any reference stream, miss ratio is non-increasing in
	// capacity (LRU inclusion property).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewStackProfiler(0)
		for i := 0; i < 500; i++ {
			p.Touch(uint64(rng.Intn(100)))
		}
		prev := 1.1
		for c := 1; c <= 256; c *= 2 {
			r := p.MissRatio(c)
			if r > prev+1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package cache

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveGreater counts keys > x in a slice.
func naiveGreater(keys []uint64, x uint64) int {
	n := 0
	for _, k := range keys {
		if k > x {
			n++
		}
	}
	return n
}

func TestTreapBasic(t *testing.T) {
	tr := newTreap()
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		tr.insert(k)
	}
	if tr.len() != 5 {
		t.Fatalf("len %d", tr.len())
	}
	if got := tr.countGreater(4); got != 3 {
		t.Fatalf("countGreater(4) = %d, want 3", got)
	}
	if got := tr.countGreater(9); got != 0 {
		t.Fatalf("countGreater(9) = %d, want 0", got)
	}
	if got := tr.countGreater(0); got != 5 {
		t.Fatalf("countGreater(0) = %d, want 5", got)
	}
	if !tr.delete(5) {
		t.Fatal("delete existing failed")
	}
	if tr.delete(5) {
		t.Fatal("delete absent succeeded")
	}
	if tr.len() != 4 {
		t.Fatalf("len after delete %d", tr.len())
	}
	if got := tr.countGreater(4); got != 2 {
		t.Fatalf("countGreater(4) after delete = %d, want 2", got)
	}
}

func TestTreapAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTreap()
	present := map[uint64]bool{}
	var keys []uint64
	for op := 0; op < 5000; op++ {
		switch rng.Intn(3) {
		case 0, 1: // insert a fresh key
			k := uint64(rng.Intn(10000))
			if !present[k] {
				present[k] = true
				keys = append(keys, k)
				tr.insert(k)
			}
		case 2: // delete a random present key
			if len(keys) > 0 {
				i := rng.Intn(len(keys))
				k := keys[i]
				keys = append(keys[:i], keys[i+1:]...)
				delete(present, k)
				if !tr.delete(k) {
					t.Fatalf("delete(%d) failed", k)
				}
			}
		}
		if op%100 == 0 {
			x := uint64(rng.Intn(10000))
			if got, want := tr.countGreater(x), naiveGreater(keys, x); got != want {
				t.Fatalf("op %d: countGreater(%d) = %d, want %d", op, x, got, want)
			}
			if tr.len() != len(keys) {
				t.Fatalf("op %d: len %d, want %d", op, tr.len(), len(keys))
			}
		}
	}
}

func TestTreapCountGreaterProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		// Deduplicate: treap keys are unique.
		seen := map[uint64]bool{}
		var keys []uint64
		for _, r := range raw {
			k := uint64(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		tr := newTreap()
		for _, k := range keys {
			tr.insert(k)
		}
		return tr.countGreater(uint64(probe)) == naiveGreater(keys, uint64(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreapOrderedInsertBalanced(t *testing.T) {
	// Sequential timestamps are the access pattern of the profiler; the
	// treap must stay usable (this would overflow the stack if it
	// degenerated into a list and used recursive descent without priorities).
	tr := newTreap()
	for k := uint64(1); k <= 200000; k++ {
		tr.insert(k)
	}
	if tr.len() != 200000 {
		t.Fatalf("len %d", tr.len())
	}
	if got := tr.countGreater(100000); got != 100000 {
		t.Fatalf("countGreater = %d", got)
	}
	// Delete every other key.
	for k := uint64(2); k <= 200000; k += 2 {
		if !tr.delete(k) {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	if got := tr.countGreater(0); got != 100000 {
		t.Fatalf("after deletes countGreater(0) = %d", got)
	}
}

func TestTreapDeterministicPriorities(t *testing.T) {
	// Two treaps fed the same keys produce identical query results (the
	// priority stream is deterministic, so profiling runs reproduce).
	keys := []uint64{9, 4, 7, 1, 8, 2}
	a, b := newTreap(), newTreap()
	for _, k := range keys {
		a.insert(k)
		b.insert(k)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range sorted {
		if a.countGreater(k) != b.countGreater(k) {
			t.Fatalf("treaps diverged at %d", k)
		}
	}
}

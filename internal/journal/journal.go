// Package journal is a write-ahead journal of completed sweep cells: the
// durability half of the cluster fabric's crash-recovery story. A
// coordinator appends one record per completed cell; a coordinator that is
// kill -9'd mid-sweep reopens the journal on restart, replays the finished
// cells into its result store, and re-dispatches only the remainder —
// producing tables byte-identical to an uninterrupted run, because replayed
// cells feed the exact wire payload the original dispatch produced.
//
// The format is one file per record in a flat directory:
//
//	<dir>/meta.json          {"version":1,"fingerprint":"..."}
//	<dir>/cells/<key>.json   {"version":1,"key":"...","digest":"...","payload":{...}}
//
// Every write follows the checkpoint package's crash-safety discipline:
// temp file in the destination directory, fsync, atomic rename. A crash
// mid-write leaves at worst an orphaned temp file, never a torn record.
// Records carry a SHA-256 digest of their payload bytes, so a record
// corrupted at rest (disk fault, manual tampering) is detected and dropped
// on replay instead of poisoning a resumed table.
//
// Like internal/checkpoint, the journal is fingerprint-guarded: opening a
// journal written under a different engine fingerprint wipes it, because
// cells from a differently configured engine must never be replayed into
// this one's tables.
package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const version = 1

// meta is the journal's identity file: a journal belongs to one engine
// fingerprint, and replaying across fingerprints is forbidden.
type meta struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// record is one journaled cell on disk.
type record struct {
	Version int `json:"version"`
	// Key is the cell's content address (echoed in the filename).
	Key string `json:"key"`
	// Digest is the SHA-256 hex of Payload's exact bytes; replay drops
	// records whose payload no longer matches.
	Digest  string          `json:"digest"`
	Payload json.RawMessage `json:"payload"`
}

// Journal is an open cell journal. It is safe for concurrent Put calls:
// records land in distinct files via unique temp names and atomic renames.
type Journal struct {
	dir   string
	cells string

	mu      sync.Mutex
	n       int   // records currently on disk (valid at last Open/Replay + Puts since)
	errs    int64 // Put failures observed by the owner (informational)
	dropped int   // records dropped by the last Replay (corrupt/foreign)
}

// Open opens (or creates) the journal at dir for the given engine
// fingerprint. An existing journal written under a different fingerprint is
// wiped: its cells are not comparable and must not be replayed. It returns
// the journal and the number of records present.
func Open(dir, fingerprint string) (*Journal, int, error) {
	cells := filepath.Join(dir, "cells")
	if err := os.MkdirAll(cells, 0o755); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	metaPath := filepath.Join(dir, "meta.json")
	prev, err := os.ReadFile(metaPath)
	fresh := errors.Is(err, os.ErrNotExist)
	if err != nil && !fresh {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if !fresh {
		var m meta
		if json.Unmarshal(prev, &m) != nil || m.Version != version || m.Fingerprint != fingerprint {
			// Parameters changed (or the meta file is torn): the journaled
			// cells are not comparable, so wipe and start over.
			if err := os.RemoveAll(cells); err != nil {
				return nil, 0, fmt.Errorf("journal: wiping stale journal: %w", err)
			}
			if err := os.MkdirAll(cells, 0o755); err != nil {
				return nil, 0, fmt.Errorf("journal: %w", err)
			}
			fresh = true
		}
	}
	if fresh {
		b, err := json.Marshal(meta{Version: version, Fingerprint: fingerprint})
		if err != nil {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		if err := writeAtomic(metaPath, b); err != nil {
			return nil, 0, err
		}
	}
	j := &Journal{dir: dir, cells: cells}
	names, err := j.recordNames()
	if err != nil {
		return nil, 0, err
	}
	j.n = len(names)
	return j, j.n, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// Len reports the number of records on disk (as of the last Open or Replay,
// plus successful Puts since).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Dropped reports how many records the last Replay discarded as corrupt.
func (j *Journal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// validKey reports whether key is safe to use verbatim as a filename. The
// cluster layer's keys are lowercase-hex SHA-256 content addresses, which
// pass trivially; anything else is rejected rather than escaped, keeping
// the on-disk mapping bijective.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'z') && c != '-' {
			return false
		}
	}
	return true
}

// Put appends (or overwrites) the record for key with the given payload
// bytes, crash-safely. The payload must be the exact bytes the caller will
// want back from Replay.
func (j *Journal) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("journal: invalid record key %q (want a lowercase-hex content address)", key)
	}
	rec := record{
		Version: version,
		Key:     key,
		Digest:  digestOf(payload),
		Payload: json.RawMessage(payload),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(j.cells, key+".json")
	existed := false
	if _, err := os.Stat(path); err == nil {
		existed = true
	}
	if err := writeAtomic(path, b); err != nil {
		j.mu.Lock()
		j.errs++
		j.mu.Unlock()
		return err
	}
	j.mu.Lock()
	if !existed {
		j.n++
	}
	j.mu.Unlock()
	return nil
}

// Replay calls fn for every valid record, in deterministic (key-sorted)
// order, and returns how many records were replayed and how many were
// dropped as corrupt — torn JSON, a filename/key mismatch, or a payload
// that no longer matches its digest. Corrupt records are skipped, not
// deleted: a later Put for the same key overwrites them.
func (j *Journal) Replay(fn func(key string, payload []byte)) (replayed, dropped int, err error) {
	names, err := j.recordNames()
	if err != nil {
		return 0, 0, err
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(j.cells, name))
		if err != nil {
			dropped++
			continue
		}
		var rec record
		key := strings.TrimSuffix(name, ".json")
		if json.Unmarshal(b, &rec) != nil || rec.Version != version || rec.Key != key ||
			rec.Digest != digestOf(rec.Payload) {
			dropped++
			continue
		}
		fn(rec.Key, rec.Payload)
		replayed++
	}
	j.mu.Lock()
	j.n = replayed
	j.dropped = dropped
	j.mu.Unlock()
	return replayed, dropped, nil
}

// recordNames lists the record filenames currently on disk, skipping temp
// residue from interrupted writes.
func (j *Journal) recordNames() ([]string, error) {
	entries, err := os.ReadDir(j.cells)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// digestOf is the record-level integrity hash: SHA-256 hex of the payload
// bytes exactly as stored.
func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// writeAtomic writes b to path via temp file + fsync + rename, the same
// crash-safety discipline as internal/checkpoint.
func writeAtomic(path string, b []byte) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: saving: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(b); err != nil {
		return fmt.Errorf("journal: saving: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("journal: saving: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("journal: saving: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("journal: saving: %w", err)
	}
	return nil
}

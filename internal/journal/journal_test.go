package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const fp = "uops=60000|mixes=2|seed=2014|model={}"

// key derives a valid lowercase-hex-looking record key per index.
func key(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, n, err := Open(dir, fp)
	if err != nil || n != 0 {
		t.Fatalf("fresh open: n=%d err=%v", n, err)
	}
	payloads := map[string]string{
		key(0): `{"stp":0.1}`,
		key(1): `{"stp":0.30000000000000004}`,
		key(2): `{"stp":1e300,"threads":[{"ipc":0.3333333333333333}]}`,
	}
	for k, p := range payloads {
		if err := j.Put(k, []byte(p)); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	if j.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j.Len())
	}

	// Reopen and replay: every payload must come back byte-exact.
	j2, n, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("reopen: n=%d, want 3", n)
	}
	got := map[string]string{}
	replayed, dropped, err := j2.Replay(func(k string, payload []byte) {
		got[k] = string(payload)
	})
	if err != nil || dropped != 0 {
		t.Fatalf("Replay: replayed=%d dropped=%d err=%v", replayed, dropped, err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d records, want 3", replayed)
	}
	for k, want := range payloads {
		if got[k] != want {
			t.Errorf("payload for %s = %q, want %q", k, got[k], want)
		}
	}
}

func TestJournalPutOverwritesSameKey(t *testing.T) {
	j, _, err := Open(t.TempDir(), fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key(0), []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key(0), []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", j.Len())
	}
	var got string
	if _, _, err := j.Replay(func(_ string, p []byte) { got = string(p) }); err != nil {
		t.Fatal(err)
	}
	if got != `{"v":2}` {
		t.Fatalf("replayed %q, want the overwritten payload", got)
	}
}

func TestJournalFingerprintMismatchWipes(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key(0), []byte(`{"stp":1}`)); err != nil {
		t.Fatal(err)
	}

	j2, n, err := Open(dir, "uops=999|other")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || j2.Len() != 0 {
		t.Fatalf("stale journal resumed under a different fingerprint (n=%d)", n)
	}
	// The wiped journal must be usable and must not resurrect old records.
	if err := j2.Put(key(1), []byte(`{"stp":2}`)); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, _, err := j2.Replay(func(string, []byte) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed %d records after wipe, want 1", count)
	}
}

func TestJournalCorruptRecordsDropped(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key(0), []byte(`{"good":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Put(key(1), []byte(`{"tampered":true}`)); err != nil {
		t.Fatal(err)
	}

	cells := filepath.Join(dir, "cells")
	// Torn record: truncated JSON.
	if err := os.WriteFile(filepath.Join(cells, key(2)+".json"), []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tampered payload: flip one digit so the stored digest no longer matches.
	tamperPath := filepath.Join(cells, key(1)+".json")
	b, err := os.ReadFile(tamperPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(b), `{"tampered":true}`, `{"tampered":false}`, 1)
	if tampered == string(b) {
		t.Fatal("test setup: payload not found in record")
	}
	if err := os.WriteFile(tamperPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	// Renamed record: filename disagrees with the embedded key.
	good, err := os.ReadFile(filepath.Join(cells, key(0)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cells, key(3)+".json"), good, 0o644); err != nil {
		t.Fatal(err)
	}

	var keys []string
	replayed, dropped, err := j.Replay(func(k string, _ []byte) { keys = append(keys, k) })
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 || dropped != 3 {
		t.Fatalf("replayed=%d dropped=%d, want 1 and 3", replayed, dropped)
	}
	if len(keys) != 1 || keys[0] != key(0) {
		t.Fatalf("replayed keys %v, want only the intact record", keys)
	}
	if j.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", j.Dropped())
	}
}

func TestJournalRejectsUnsafeKeys(t *testing.T) {
	j, _, err := Open(t.TempDir(), fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../../etc/passwd", "a/b", "UPPER", strings.Repeat("f", 200), "sp ace"} {
		if err := j.Put(bad, []byte(`{}`)); err == nil {
			t.Errorf("Put(%q) accepted, want error", bad)
		}
	}
}

func TestJournalAtomicNoTempResidue(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Put(key(i), []byte(`{"i":`+fmt.Sprint(i)+`}`)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp residue left behind: %s", e.Name())
		}
	}
	if len(entries) != 4 {
		t.Errorf("cells dir holds %d entries, want 4", len(entries))
	}
}

// TestJournalConcurrentPuts exercises the many-dispatchers shape under the
// race detector: distinct keys from concurrent goroutines must all land.
func TestJournalConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Put(key(i), []byte(fmt.Sprintf(`{"i":%d}`, i))); err != nil {
				t.Errorf("Put: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if j.Len() != n {
		t.Fatalf("Len = %d, want %d", j.Len(), n)
	}
	replayed, dropped, err := j.Replay(func(k string, p []byte) {
		var v struct {
			I int `json:"i"`
		}
		if err := json.Unmarshal(p, &v); err != nil {
			t.Errorf("bad payload for %s: %v", k, err)
		}
	})
	if err != nil || dropped != 0 || replayed != n {
		t.Fatalf("Replay: replayed=%d dropped=%d err=%v", replayed, dropped, err)
	}
}

package study

import (
	"context"

	"fmt"

	"smtflex/internal/config"
)

// Finding is one of the paper's numbered findings evaluated against this
// reproduction's measurements.
type Finding struct {
	// ID is the paper's finding number (1..11).
	ID int
	// Claim paraphrases the paper.
	Claim string
	// Reproduced reports whether the qualitative claim holds here.
	Reproduced bool
	// Detail states the measured numbers behind the verdict.
	Detail string
}

// CheckFindings evaluates every finding of the paper against the study's
// results and returns them in order. It is the machine-checkable core of
// EXPERIMENTS.md and runs the full simulation campaign on first use.
func (s *Study) CheckFindings(ctx context.Context) ([]Finding, error) {
	var out []Finding

	// --- Finding 1: 4B best at low counts, close at high counts. ---
	f3a, err := s.Figure3(ctx, Homogeneous)
	if err != nil {
		return nil, err
	}
	r4B := f3a.Row("4B")
	lowOK := true
	for n := 1; n <= 4; n++ {
		for r := range f3a.Rows {
			if f3a.Get(r, n-1) > f3a.Get(r4B, n-1)+1e-9 {
				lowOK = false
			}
		}
	}
	best24 := 0.0
	for r := range f3a.Rows {
		if v := f3a.Get(r, 23); v > best24 {
			best24 = v
		}
	}
	gap24 := (best24 - f3a.Get(r4B, 23)) / best24
	out = append(out, Finding{
		ID:         1,
		Claim:      "4B with SMT is best at low thread counts and only slightly worse at 24 threads",
		Reproduced: lowOK && gap24 < 0.25,
		Detail: fmt.Sprintf("4B unbeaten for n<=4: %t; gap to best at n=24: %.1f%% (paper: 11.6%% homogeneous)",
			lowOK, 100*gap24),
	})

	// --- Finding 2: without SMT the optimum is heterogeneous. ---
	f6, err := s.Figure6(ctx)
	if err != nil {
		return nil, err
	}
	hetero := func(name string) bool {
		d, err := config.DesignByName(name, false)
		if err != nil {
			return false
		}
		return d.CountOfType(config.Big) > 0 &&
			d.CountOfType(config.Medium)+d.CountOfType(config.Small) > 0
	}
	wHomog, wHet := f6.ArgMaxRow(0), f6.ArgMaxRow(1)
	out = append(out, Finding{
		ID:         2,
		Claim:      "Without SMT, heterogeneous multi-cores outperform homogeneous ones",
		Reproduced: hetero(wHomog) && hetero(wHet),
		Detail: fmt.Sprintf("no-SMT winners: %s (homogeneous workloads), %s (heterogeneous workloads); paper: 2B4m and 3B5s",
			wHomog, wHet),
	})

	// --- Finding 3: 4B+SMT beats heterogeneous designs without SMT. ---
	f7, err := s.Figure7(ctx)
	if err != nil {
		return nil, err
	}
	r4B7 := f7.Row("4B")
	beatsAll := true
	worst := 0.0
	for c := range f7.Cols {
		for r, name := range f7.Rows {
			if name == "4B" || name == "8m" || name == "20s" {
				continue
			}
			if margin := f7.Get(r, c) - f7.Get(r4B7, c); margin > 0 {
				beatsAll = false
				if margin > worst {
					worst = margin
				}
			}
		}
	}
	out = append(out, Finding{
		ID:         3,
		Claim:      "SMT outperforms heterogeneity: 4B with SMT beats every no-SMT heterogeneous design",
		Reproduced: beatsAll,
		Detail:     fmt.Sprintf("4B+SMT unbeaten by any no-SMT heterogeneous design: %t", beatsAll),
	})

	// --- Finding 4: heterogeneity + SMT adds little over 4B + SMT. ---
	f8, err := s.Figure8(ctx)
	if err != nil {
		return nil, err
	}
	r4B8 := f8.Row("4B")
	maxMargin := 0.0
	for c := range f8.Cols {
		best := 0.0
		for r := range f8.Rows {
			if v := f8.Get(r, c); v > best {
				best = v
			}
		}
		if m := (best - f8.Get(r4B8, c)) / f8.Get(r4B8, c); m > maxMargin {
			maxMargin = m
		}
	}
	out = append(out, Finding{
		ID:         4,
		Claim:      "The added benefit of combining heterogeneity and SMT is limited",
		Reproduced: maxMargin < 0.05,
		Detail:     fmt.Sprintf("best SMT-heterogeneous design beats 4B by at most %.1f%% (paper: ~0.6%%)", 100*maxMargin),
	})

	// --- Finding 5: SMT shifts the optimum to fewer, larger cores. ---
	shiftOK := true
	detail5 := ""
	for c := range f6.Cols {
		noSMTWinner, err := config.DesignByName(f6.ArgMaxRow(c), true)
		if err != nil {
			return nil, err
		}
		smtWinner, err := config.DesignByName(f8.ArgMaxRow(c), true)
		if err != nil {
			return nil, err
		}
		if smtWinner.NumCores() > noSMTWinner.NumCores() {
			shiftOK = false
		}
		detail5 += fmt.Sprintf("%s: %s -> %s; ", f6.Cols[c], noSMTWinner.Name, smtWinner.Name)
	}
	out = append(out, Finding{
		ID:         5,
		Claim:      "Adding SMT shifts the optimal design toward fewer and larger cores",
		Reproduced: shiftOK,
		Detail:     detail5 + "(paper: 2B4m->3B2m and 3B5s->3B2m)",
	})

	// --- Finding 6: datacenter distributions. ---
	f10, err := s.Figure10(ctx)
	if err != nil {
		return nil, err
	}
	dcSMT := f10.Col("dc_SMT")
	mirSMT := f10.Col("mirror_SMT")
	r4B10 := f10.Row("4B")
	dcBest := f10.Get(f10.Row(f10.ArgMaxRow(dcSMT)), dcSMT)
	dcGap := (dcBest - f10.Get(r4B10, dcSMT)) / dcBest
	mirBest := 0.0
	for r := range f10.Rows {
		if v := f10.Get(r, mirSMT); v > mirBest {
			mirBest = v
		}
	}
	mirGap := (mirBest - f10.Get(r4B10, mirSMT)) / mirBest
	// The 1.3%-level margins here are within the sampling noise of the 12
	// random mixes per thread count, so "optimal" is checked at a 2% grain.
	out = append(out, Finding{
		ID:         6,
		Claim:      "4B with SMT is optimal for low-skewed distributions and close to optimal for high-skewed ones",
		Reproduced: dcGap < 0.02 && mirGap < 0.15,
		Detail: fmt.Sprintf("datacenter: 4B within %.1f%% of best; mirrored: within %.1f%% (paper: optimal and 0.6%%)",
			100*dcGap, 100*mirGap),
	})

	// --- Finding 7: multi-threaded workloads. ---
	f11, err := s.Figure11(ctx)
	if err != nil {
		return nil, err
	}
	roi, whole := f11.Col("ROI"), f11.Col("whole")
	get := func(row string, c int) float64 { return f11.Get(f11.Row(row), c) }
	f7ok := true
	for _, d := range []string{"4B", "8m", "20s", "1B6m", "1B15s"} {
		if get(d, roi) > get("4B_SMT", roi) || get(d, whole) > get("4B_SMT", whole) {
			f7ok = false
		}
	}
	out = append(out, Finding{
		ID:         7,
		Claim:      "For multi-threaded workloads, 4B with SMT beats the best heterogeneous design without SMT",
		Reproduced: f7ok,
		Detail: fmt.Sprintf("4B_SMT ROI %.2f vs best no-SMT %.2f; whole %.2f vs %.2f",
			get("4B_SMT", roi), maxOf(f11, roi, false), get("4B_SMT", whole), maxOf(f11, whole, false)),
	})

	// --- Finding 8: dynamic multi-cores. ---
	f13, err := s.Figure13(ctx, Heterogeneous)
	if err != nil {
		return nil, err
	}
	var sum4, sumN, sumS float64
	for n := 0; n < MaxThreads; n++ {
		sum4 += f13.Get(f13.Row("4B_SMT"), n)
		sumN += f13.Get(f13.Row("dynamic_noSMT"), n)
		sumS += f13.Get(f13.Row("dynamic_SMT"), n)
	}
	out = append(out, Finding{
		ID:         8,
		Claim:      "4B with SMT is competitive with an ideal dynamic multi-core without SMT; dynamic+SMT is best but most complex",
		Reproduced: sumN <= sum4*1.05 && sumS >= sum4,
		Detail: fmt.Sprintf("heterogeneous mixes, summed STP: 4B+SMT %.1f, dynamic w/o SMT %.1f, dynamic w/ SMT %.1f",
			sum4, sumN, sumS),
	})

	// --- Finding 9: energy efficiency. ---
	f15, err := s.Figure15(ctx)
	if err != nil {
		return nil, err
	}
	bestE, bestEDP := 1.0, 1.0
	for r := range f15.Rows {
		if v := f15.Get(r, f15.Col("energy_norm")); v < bestE {
			bestE = v
		}
		if v := f15.Get(r, f15.Col("edp_norm")); v < bestEDP {
			bestEDP = v
		}
	}
	out = append(out, Finding{
		ID:         9,
		Claim:      "With power gating, heterogeneous designs are only slightly more energy-efficient than 4B",
		Reproduced: bestE > 0.85 && bestEDP > 0.85,
		Detail: fmt.Sprintf("best energy %.1f%% below 4B, best EDP %.1f%% below (paper: EDP at most 4.1%% better)",
			100*(1-bestE), 100*(1-bestEDP)),
	})

	// --- Finding 10: larger caches / higher frequency. ---
	f16, err := s.Figure16(ctx)
	if err != nil {
		return nil, err
	}
	roi16 := f16.Col("ROI")
	r4B16 := f16.Row("4B_SMT")
	best16 := 0.0
	for r := range f16.Rows {
		if v := f16.Get(r, roi16); v > best16 {
			best16 = v
		}
	}
	gap16 := (best16 - f16.Get(r4B16, roi16)) / best16
	out = append(out, Finding{
		ID:         10,
		Claim:      "Larger caches or higher frequency for the smaller cores do not change the conclusion",
		Reproduced: gap16 < 0.08,
		Detail:     fmt.Sprintf("4B within %.1f%% of the best alternative design (ROI)", 100*gap16),
	})

	// --- Finding 11: higher memory bandwidth. ---
	f17, err := s.Figure17a(ctx)
	if err != nil {
		return nil, err
	}
	r4B17 := f17.Row("4B")
	maxGap17 := 0.0
	for c := range f17.Cols {
		best := 0.0
		for r := range f17.Rows {
			if v := f17.Get(r, c); v > best {
				best = v
			}
		}
		if g := (best - f17.Get(r4B17, c)) / best; g > maxGap17 {
			maxGap17 = g
		}
	}
	out = append(out, Finding{
		ID:         11,
		Claim:      "Even at 16 GB/s, 4B with SMT stays close to the heterogeneous configurations",
		Reproduced: maxGap17 < 0.06,
		Detail:     fmt.Sprintf("16 GB/s: 4B within %.1f%% of the best design", 100*maxGap17),
	})

	return out, nil
}

// maxOf returns the maximum value in column c over rows, optionally only
// the SMT rows (suffix "_SMT") or only the non-SMT rows.
func maxOf(t *Table, c int, smtRows bool) float64 {
	best := 0.0
	for r, name := range t.Rows {
		isSMT := len(name) > 4 && name[len(name)-4:] == "_SMT"
		if isSMT != smtRows {
			continue
		}
		if v := t.Get(r, c); v > best {
			best = v
		}
	}
	return best
}

package study

import (
	"context"

	"math"
	"sync"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/dist"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

// One shared Study for the whole package: profiles and design sweeps are
// cached, so the expensive work happens once.
var (
	studyOnce sync.Once
	shared    *Study
)

func sharedStudy() *Study {
	studyOnce.Do(func() {
		shared = New(profiler.NewSource(100_000))
	})
	return shared
}

func mustFigure(t *testing.T, f func(context.Context) (*Table, error)) *Table {
	t.Helper()
	tab, err := f(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSoloRateNormalization(t *testing.T) {
	s := sharedStudy()
	d, _ := config.DesignByName("4B", true)
	for _, bench := range []string{"tonto", "mcf"} {
		r, err := s.EvaluateMix(d, workload.Mix{ID: "solo", Programs: []string{bench}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.STP-1) > 0.02 {
			t.Errorf("%s solo on 4B: STP %.3f, want 1 (normalization identity)", bench, r.STP)
		}
		if math.Abs(r.ANTT-1) > 0.02 {
			t.Errorf("%s solo on 4B: ANTT %.3f, want 1", bench, r.ANTT)
		}
	}
}

func TestSweepCaching(t *testing.T) {
	s := sharedStudy()
	d, _ := config.DesignByName("4B", true)
	a, err := s.SweepDesign(context.Background(), d, Homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SweepDesign(context.Background(), d, Homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("sweep not cached")
	}
}

func TestSweepMonotoneAtLowCounts(t *testing.T) {
	// STP grows with thread count while cores are still free.
	s := sharedStudy()
	d, _ := config.DesignByName("4B", true)
	sw, err := s.SweepDesign(context.Background(), d, Homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 4; n++ {
		if sw.STP[n-1] <= sw.STP[n-2] {
			t.Fatalf("STP not increasing at %d threads: %v", n, sw.STP[:4])
		}
	}
}

// Finding 1: 4B yields the highest performance at low thread counts and
// stays within a modest gap of the best design at 24 threads.
func TestFinding1(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, func(ctx context.Context) (*Table, error) { return s.Figure3(ctx, Homogeneous) })
	r4B := tab.Row("4B")
	// At n <= 4 no design beats 4B.
	for n := 1; n <= 4; n++ {
		for r := range tab.Rows {
			if tab.Get(r, n-1) > tab.Get(r4B, n-1)+1e-9 {
				t.Errorf("n=%d: %s (%.3f) beats 4B (%.3f)", n, tab.Rows[r], tab.Get(r, n-1), tab.Get(r4B, n-1))
			}
		}
	}
	// At n = 24 the gap to the best is bounded (paper: 11.6% homogeneous).
	best := 0.0
	for r := range tab.Rows {
		if v := tab.Get(r, 23); v > best {
			best = v
		}
	}
	gap := (best - tab.Get(r4B, 23)) / best
	if gap > 0.25 {
		t.Errorf("4B trails the best by %.1f%% at 24 threads, paper ~11.6%%", 100*gap)
	}
}

// Finding 2: without SMT, a heterogeneous design wins under varying thread
// counts.
func TestFinding2(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure6)
	for c, kind := range tab.Cols {
		winner := tab.ArgMaxRow(c)
		d, err := config.DesignByName(winner, false)
		if err != nil {
			t.Fatal(err)
		}
		if d.CountOfType(config.Big) == 0 ||
			d.CountOfType(config.Medium)+d.CountOfType(config.Small) == 0 {
			t.Errorf("%s workloads: no-SMT winner %s is not heterogeneous", kind, winner)
		}
	}
}

// Finding 3: 4B with SMT beats every heterogeneous design without SMT.
func TestFinding3(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure7)
	r4B := tab.Row("4B")
	for c := range tab.Cols {
		for r, name := range tab.Rows {
			if name == "4B" || name == "8m" || name == "20s" {
				continue // those also have SMT in this figure
			}
			if tab.Get(r, c) > tab.Get(r4B, c) {
				t.Errorf("col %s: heterogeneous %s (%.3f) beats 4B+SMT (%.3f)",
					tab.Cols[c], name, tab.Get(r, c), tab.Get(r4B, c))
			}
		}
	}
}

// Finding 4: with SMT everywhere, the best heterogeneous design is at most
// a few percent better than 4B.
func TestFinding4(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure8)
	r4B := tab.Row("4B")
	for c := range tab.Cols {
		best := 0.0
		for r := range tab.Rows {
			if v := tab.Get(r, c); v > best {
				best = v
			}
		}
		margin := (best - tab.Get(r4B, c)) / tab.Get(r4B, c)
		if margin > 0.05 {
			t.Errorf("col %s: best design beats 4B by %.1f%%, paper ≲1%%", tab.Cols[c], 100*margin)
		}
	}
}

// Finding 5: adding SMT shifts the heterogeneous optimum toward fewer,
// larger cores.
func TestFinding5(t *testing.T) {
	s := sharedStudy()
	noSMT := mustFigure(t, s.Figure6)
	withSMT := mustFigure(t, s.Figure8)
	for c := range noSMT.Cols {
		smallCores := func(tab *Table) int {
			d, err := config.DesignByName(tab.ArgMaxRow(c), true)
			if err != nil {
				t.Fatal(err)
			}
			return d.NumCores()
		}
		if smallCores(withSMT) > smallCores(noSMT) {
			t.Errorf("col %s: SMT optimum has MORE cores (%s) than no-SMT optimum (%s)",
				noSMT.Cols[c], withSMT.ArgMaxRow(c), noSMT.ArgMaxRow(c))
		}
	}
}

// Finding 6: under the datacenter distribution with SMT, 4B is optimal; under
// the mirrored distribution it stays close to the optimum.
func TestFinding6(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure10)
	dcSMT := tab.Col("dc_SMT")
	if winner := tab.ArgMaxRow(dcSMT); winner != "4B" {
		// Allow sampling noise: 4B must be within 2% of the winner.
		r4B := tab.Row("4B")
		best := tab.Get(tab.Row(winner), dcSMT)
		if (best-tab.Get(r4B, dcSMT))/best > 0.02 {
			t.Errorf("datacenter+SMT winner %s beats 4B by >2%%", winner)
		}
	}
	mirSMT := tab.Col("mirror_SMT")
	r4B := tab.Row("4B")
	best := 0.0
	for r := range tab.Rows {
		if v := tab.Get(r, mirSMT); v > best {
			best = v
		}
	}
	// Paper: 4B within 0.6% of the mirrored-distribution optimum. Our
	// synthetic workloads make the many-core designs somewhat stronger at
	// high counts (see EXPERIMENTS.md), so the bound here is looser; the
	// qualitative claim — 4B remains competitive, not collapsed — holds.
	if gap := (best - tab.Get(r4B, mirSMT)) / best; gap > 0.15 {
		t.Errorf("mirrored+SMT: 4B trails by %.1f%%, paper ~0.6%%", 100*gap)
	}
}

// Finding 8: the ideal dynamic multi-core without SMT is not better than 4B
// with SMT (within tolerance); with SMT it is the best of all.
func TestFinding8(t *testing.T) {
	s := sharedStudy()
	for _, kind := range []Kind{Homogeneous, Heterogeneous} {
		tab := mustFigure(t, func(ctx context.Context) (*Table, error) { return s.Figure13(ctx, kind) })
		r4, rn, rs := tab.Row("4B_SMT"), tab.Row("dynamic_noSMT"), tab.Row("dynamic_SMT")
		var sum4, sumN, sumS float64
		for n := 0; n < MaxThreads; n++ {
			sum4 += tab.Get(r4, n)
			sumN += tab.Get(rn, n)
			sumS += tab.Get(rs, n)
		}
		// The paper: "dynamic multi-cores without SMT yield similar or even
		// worse overall performance. Especially for heterogeneous
		// workloads, SMT seems to perform better than a dynamic multi-core"
		// — so the bound is strict for heterogeneous mixes and looser for
		// homogeneous ones, where the ideal (overhead-free) dynamic core can
		// edge ahead.
		tolerance := 1.05
		if kind == Homogeneous {
			tolerance = 1.12
		}
		if sumN > sum4*tolerance {
			t.Errorf("%s: dynamic without SMT beats 4B+SMT by %.1f%%", kind, 100*(sumN/sum4-1))
		}
		if sumS < sum4 {
			t.Errorf("%s: dynamic with SMT (%.1f) should be at least 4B+SMT (%.1f)", kind, sumS, sum4)
		}
		// The dynamic core is per definition at least as good as any static
		// design it can morph into, including 4B without... at every count
		// its SMT variant dominates its non-SMT variant is NOT guaranteed,
		// but dynamic_SMT >= 4B_SMT pointwise is:
		for n := 0; n < MaxThreads; n++ {
			if tab.Get(rs, n) < tab.Get(r4, n)-1e-9 {
				t.Errorf("%s n=%d: dynamic_SMT below 4B_SMT", kind, n+1)
			}
		}
	}
}

// Finding 9: heterogeneous designs with power gating are only slightly more
// energy-efficient than 4B.
func TestFinding9(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure15)
	cE, cEDP := tab.Col("energy_norm"), tab.Col("edp_norm")
	bestE, bestEDP := 1.0, 1.0
	for r := range tab.Rows {
		if v := tab.Get(r, cE); v < bestE {
			bestE = v
		}
		if v := tab.Get(r, cEDP); v < bestEDP {
			bestEDP = v
		}
	}
	// 4B is the reference (1.0); the best design saves little.
	if bestE < 0.85 {
		t.Errorf("best energy %.3f of 4B's — more than 'slightly better'", bestE)
	}
	if bestEDP < 0.85 {
		t.Errorf("best EDP %.3f of 4B's — more than 'slightly better'", bestEDP)
	}
}

func TestFigure14PowerShape(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure14)
	r4B, r20s := tab.Row("4B"), tab.Row("20s")
	// At one thread, a big core draws much more than a small core.
	if tab.Get(r4B, 0) <= tab.Get(r20s, 0) {
		t.Error("4B not more power-hungry than 20s at one thread")
	}
	// Paper: single-thread chip power ≈ 17.3 W (big) and ≈ 9.8 W (small).
	if v := tab.Get(r4B, 0); v < 13 || v > 21 {
		t.Errorf("4B 1-thread power %.1f W, paper 17.3", v)
	}
	if v := tab.Get(r20s, 0); v < 7.5 || v > 12 {
		t.Errorf("20s 1-thread power %.1f W, paper 9.8", v)
	}
	// At 24 threads, every design lands in the common envelope (~45-50 W).
	for r, name := range tab.Rows {
		if v := tab.Get(r, 23); v < 38 || v > 62 {
			t.Errorf("%s 24-thread power %.1f W outside the envelope", name, v)
		}
	}
	// Power rises with thread count for 4B (more contexts active).
	if tab.Get(r4B, 23) <= tab.Get(r4B, 3) {
		t.Error("4B power does not grow from 4 to 24 threads")
	}
}

func TestFigure1Shape(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure1)
	for r, app := range tab.Rows {
		var sum float64
		for c := range tab.Cols {
			sum += tab.Get(r, c)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s: histogram sums to %.4f", app, sum)
		}
	}
	// blackscholes keeps 20 threads active most of the time; freqmine never.
	c20 := tab.Col("20")
	if v := tab.Get(tab.Row("blackscholes"), c20); v < 0.5 {
		t.Errorf("blackscholes 20-active fraction %.2f", v)
	}
	if v := tab.Get(tab.Row("freqmine"), c20); v > 0.05 {
		t.Errorf("freqmine 20-active fraction %.2f, should be ~0", v)
	}
	// bodytrack is bimodal: both the 1-bucket and the 20-bucket are big.
	bt := tab.Row("bodytrack")
	if tab.Get(bt, tab.Col("1")) < 0.15 || tab.Get(bt, c20) < 0.3 {
		t.Errorf("bodytrack not bimodal: 1=%.2f 20=%.2f",
			tab.Get(bt, tab.Col("1")), tab.Get(bt, c20))
	}
}

func TestFigure5ANTT(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure5)
	r4B := tab.Row("4B")
	if v := tab.Get(r4B, 0); math.Abs(v-1) > 0.02 {
		t.Errorf("4B ANTT at 1 thread = %.3f, want 1", v)
	}
	if tab.Get(r4B, 23) <= tab.Get(r4B, 0) {
		t.Error("ANTT should grow with thread count on 4B")
	}
	// At low counts 4B has the lowest per-program turnaround.
	for r, name := range tab.Rows {
		if name == "4B" {
			continue
		}
		if tab.Get(r, 0) < tab.Get(r4B, 0)-1e-9 {
			t.Errorf("%s has lower 1-thread ANTT than 4B", name)
		}
	}
}

func TestFigure4Libquantum(t *testing.T) {
	// Figure 4(b): for the bandwidth-bound benchmark, the designs converge
	// at high thread counts (shared-resource contention dominates).
	s := sharedStudy()
	tab := mustFigure(t, func(ctx context.Context) (*Table, error) { return s.Figure4(ctx, "libquantum") })
	min, max := math.Inf(1), 0.0
	for r := range tab.Rows {
		v := tab.Get(r, 23)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max/min > 1.6 {
		t.Errorf("libquantum designs spread %.2fx at 24 threads, should converge", max/min)
	}
	// tonto keeps a bigger spread (Figure 4(a) behaviour).
	tontoTab := mustFigure(t, func(ctx context.Context) (*Table, error) { return s.Figure4(ctx, "tonto") })
	tmin, tmax := math.Inf(1), 0.0
	for r := range tontoTab.Rows {
		v := tontoTab.Get(r, 23)
		if v < tmin {
			tmin = v
		}
		if v > tmax {
			tmax = v
		}
	}
	if tmax/tmin <= max/min {
		t.Errorf("tonto spread (%.2f) should exceed libquantum spread (%.2f)", tmax/tmin, max/min)
	}
}

func TestFigure9PerBenchmark(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure9)
	if len(tab.Rows) != 12 || len(tab.Cols) != 9 {
		t.Fatalf("figure 9 shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	// Every cell positive.
	for r := range tab.Rows {
		for c := range tab.Cols {
			if tab.Get(r, c) <= 0 {
				t.Fatalf("non-positive STP at %s/%s", tab.Rows[r], tab.Cols[c])
			}
		}
	}
}

func TestDistributionAggregation(t *testing.T) {
	s := sharedStudy()
	d, _ := config.DesignByName("4B", true)
	sw, err := s.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := DistributionSTP(sw, dist.Uniform())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DistributionSTP(sw, dist.Datacenter())
	if err != nil {
		t.Fatal(err)
	}
	mir, err := DistributionSTP(sw, dist.MirroredDatacenter())
	if err != nil {
		t.Fatal(err)
	}
	// Low-skewed distribution yields lower average STP than high-skewed.
	if !(dc < uni && uni < mir) {
		t.Fatalf("distribution ordering violated: dc=%.2f uni=%.2f mir=%.2f", dc, uni, mir)
	}
}

package study

import (
	"context"

	"math"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/parallel"
	"smtflex/internal/power"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// ExtensionTurboBoost explores the paper's Section 9 discussion (EPI
// throttling / TurboBoost): when fewer cores are active than the design
// provides, the active cores may raise their frequency until the chip is
// back at the full-load power envelope. The experiment compares the 4B SMT
// design with and without boost across thread counts (homogeneous
// workloads), showing that boost recovers single-thread performance the
// same way heterogeneity's big cores would — one more flexibility
// mechanism stacked on SMT.
func (s *Study) ExtensionTurboBoost(ctx context.Context) (*Table, error) {
	t := NewTable("Extension: frequency boost under the power envelope (4B, homogeneous STP)",
		[]string{"4B", "4B_boost", "boost_factor"}, threadCols())

	base, err := config.DesignByName("4B", true)
	if err != nil {
		return nil, err
	}
	sw, err := s.SweepDesign(ctx, base, Homogeneous)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= MaxThreads; n++ {
		t.Set(0, n-1, sw.STP[n-1])
	}

	// envelopeWatts is the full-load chip power the boost must respect.
	const envelopeWatts = 49.0

	for n := 1; n <= MaxThreads; n++ {
		activeCores := n
		if activeCores > base.NumCores() {
			activeCores = base.NumCores()
		}
		factor := boostFactor(activeCores, envelopeWatts)
		boosted := base
		boosted.Name = "4B_boost"
		boosted.Cores = append([]config.Core(nil), base.Cores...)
		for i := range boosted.Cores {
			boosted.Cores[i].FrequencyGHz = config.BaseFrequencyGHz * factor
		}

		mixes := s.mixesAt(Homogeneous, n)
		stps := make([]float64, len(mixes))
		err := runIndexed(ctx, s.workers(), len(mixes), s.poolQueue, func(ctx context.Context, mi int) error {
			r, err := s.EvaluateMixCtx(ctx, boosted, mixes[mi])
			stps[mi] = r.STP
			return err
		})
		if err != nil {
			return nil, err
		}
		var inv float64
		for _, v := range stps {
			inv += 1 / v
		}
		t.Set(1, n-1, float64(len(stps))/inv)
		t.Set(2, n-1, factor)
	}
	return t, nil
}

// boostFactor returns the frequency multiplier that brings the chip with
// the given number of active big cores (others gated) back to the power
// envelope, assuming full utilization and the power model's superlinear
// frequency scaling, capped at a 1.35x bin (typical turbo headroom).
func boostFactor(activeCores int, envelopeWatts float64) float64 {
	big := config.BigCore()
	fullLoadCore := power.CoreWatts(big, 0.5)
	budget := (envelopeWatts - power.UncoreWatts) / float64(activeCores)
	if budget <= fullLoadCore {
		return 1
	}
	// CoreWatts scales ~ f^1.6 (see power.CoreWatts).
	f := math.Pow(budget/fullLoadCore, 1/1.6)
	return math.Min(f, 1.35)
}

// ExtensionSerialBoost quantifies the paper's ACS discussion for
// multi-threaded workloads: serialized sections already run on the biggest
// core at its isolated rate in our model (the SMT co-runners are waiting at
// the barrier and release the core). This experiment compares that
// behaviour against a pessimistic variant in which the serial section runs
// at the rate the thread achieves *with* all SMT co-runners resident
// (no throttling): rows = apps, cols = {throttled, unthrottled} whole-program
// speedups on 4B SMT with 24 threads.
func (s *Study) ExtensionSerialBoost(ctx context.Context) (*Table, error) {
	// The unthrottled serial rate: solve the full 24-thread placement and
	// use one thread's rate as the serial-section rate.
	d, err := config.DesignByName("4B", true)
	if err != nil {
		return nil, err
	}
	apps := []string{"bodytrack", "dedup", "ferret", "freqmine", "x264"}
	t := NewTable("Extension: serial sections with vs without SMT throttling (relative whole-program time on 4B, 24 threads)",
		apps, []string{"throttled", "unthrottled"})

	for r, name := range apps {
		appRes, err := s.appWholeTimes(d, name)
		if err != nil {
			return nil, err
		}
		t.Set(r, 0, 1.0)
		t.Set(r, 1, appRes)
	}
	return t, nil
}

// appWholeTimes returns the relative whole-program time when serialized
// work runs at the congested (unthrottled) rate instead of the isolated
// rate: > 1 means throttling helps.
func (s *Study) appWholeTimes(d config.Design, appName string) (float64, error) {
	// Isolated serial rate: kernel alone on the big core.
	app, err := parallel.AppByName(appName)
	if err != nil {
		return 0, err
	}
	soloMix := workload.Mix{ID: "ext-solo", Programs: []string{app.Kernel}}
	soloPl, err := sched.Place(d, soloMix, s.Src)
	if err != nil {
		return 0, err
	}
	soloRes, err := contention.Solve(soloPl)
	if err != nil {
		return 0, err
	}
	soloRate := soloRes.Threads[0].UopsPerNs

	// Congested serial rate: one thread among 24 resident SMT threads.
	progs := make([]string, 24)
	for i := range progs {
		progs[i] = app.Kernel
	}
	fullPl, err := sched.Place(d, workload.Mix{ID: "ext-full", Programs: progs}, s.Src)
	if err != nil {
		return 0, err
	}
	fullRes, err := contention.Solve(fullPl)
	if err != nil {
		return 0, err
	}
	congestedRate := fullRes.Threads[0].UopsPerNs

	// Whole-program time splits into parallel work (same either way) and
	// serialized work (rate differs).
	serialFrac := app.SeqFraction + (1-app.SeqFraction)*app.ROISerialFraction
	parTime := 1 - serialFrac         // arbitrary units
	throttled := parTime + serialFrac // serial at solo rate = 1x
	unthrottled := parTime + serialFrac*(soloRate/congestedRate)
	return unthrottled / throttled, nil
}

package study

import (
	"context"

	"testing"
)

// Finding 7 / Figure 11: SMT shifts the multi-threaded optimum toward fewer,
// larger cores; 4B with SMT beats the best heterogeneous design without SMT
// and wins the whole-program comparison.
func TestFinding7Figure11(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure11)
	roi, whole := tab.Col("ROI"), tab.Col("whole")
	get := func(row string, c int) float64 {
		r := tab.Row(row)
		if r < 0 {
			t.Fatalf("row %s missing", row)
		}
		return tab.Get(r, c)
	}

	// 4B with SMT beats every design without SMT, for ROI and whole program.
	for _, design := range []string{"4B", "8m", "20s", "1B6m", "1B15s"} {
		if get(design, roi) > get("4B_SMT", roi) {
			t.Errorf("ROI: %s without SMT (%.3f) beats 4B with SMT (%.3f)",
				design, get(design, roi), get("4B_SMT", roi))
		}
		if get(design, whole) > get("4B_SMT", whole) {
			t.Errorf("whole: %s without SMT beats 4B with SMT", design)
		}
	}

	// Whole program with SMT: 4B is the best design (serial phases plus
	// poorly-scaling benchmarks dominate).
	for _, design := range []string{"8m_SMT", "20s_SMT", "1B6m_SMT", "1B15s_SMT"} {
		if get(design, whole) > get("4B_SMT", whole) {
			t.Errorf("whole program: %s (%.3f) beats 4B_SMT (%.3f)",
				design, get(design, whole), get("4B_SMT", whole))
		}
	}

	// Adding SMT never hurts a design's best speedup.
	for _, design := range []string{"4B", "8m", "20s", "1B6m", "1B15s"} {
		if get(design+"_SMT", roi) < get(design, roi)-1e-9 {
			t.Errorf("SMT hurt %s ROI speedup", design)
		}
	}
}

func TestFigure12PerApp(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, func(ctx context.Context) (*Table, error) { return s.Figure12(ctx, "ROI") })
	if len(tab.Rows) != 13 || len(tab.Cols) != 5 {
		t.Fatalf("figure 12 shape %dx%d", len(tab.Rows), len(tab.Cols))
	}
	// Well-scaling benchmarks gain from many threads somewhere; the
	// poorly-scaling ferret never reaches blackscholes-level speedups.
	rB, rF := tab.Row("blackscholes"), tab.Row("ferret")
	for c := range tab.Cols {
		if tab.Get(rF, c) >= tab.Get(rB, c) {
			t.Errorf("ferret >= blackscholes on %s", tab.Cols[c])
		}
	}
	// All speedups positive.
	for r := range tab.Rows {
		for c := range tab.Cols {
			if tab.Get(r, c) <= 0 {
				t.Fatalf("non-positive speedup at %s/%s", tab.Rows[r], tab.Cols[c])
			}
		}
	}
}

// Finding 10 / Figure 16: larger caches or higher frequency for the smaller
// cores do not dethrone the big-SMT-core design.
func TestFinding10Figure16(t *testing.T) {
	s := sharedStudy()
	tab := mustFigure(t, s.Figure16)
	roi := tab.Col("ROI")
	r4B := tab.Row("4B_SMT")
	best := 0.0
	for r := range tab.Rows {
		if v := tab.Get(r, roi); v > best {
			best = v
		}
	}
	if gap := (best - tab.Get(r4B, roi)) / best; gap > 0.08 {
		t.Errorf("alternative design beats 4B by %.1f%% ROI, paper: 4B stays best", 100*gap)
	}
	// Higher frequency must help the small-core config versus baseline 20s.
	if tab.Get(tab.Row("16s_hf_SMT"), roi) <= tab.Get(tab.Row("20s_SMT"), roi) {
		t.Error("16s_hf not faster than 20s (frequency should help poorly scaling apps)")
	}
}

// Finding 11 / Figure 17: doubling the memory bandwidth raises performance
// for every design but does not change the headline conclusion.
func TestFinding11Figure17(t *testing.T) {
	s := sharedStudy()
	base := mustFigure(t, s.Figure8)
	wide := mustFigure(t, s.Figure17a)
	for r, name := range base.Rows {
		for c := range base.Cols {
			if wide.Get(r, c) < base.Get(r, c)*0.995 {
				t.Errorf("%s/%s: 16 GB/s (%.3f) below 8 GB/s (%.3f)",
					name, base.Cols[c], wide.Get(r, c), base.Get(r, c))
			}
		}
	}
	// 4B stays within a few percent of the best at 16 GB/s.
	r4B := wide.Row("4B")
	for c := range wide.Cols {
		best := 0.0
		for r := range wide.Rows {
			if v := wide.Get(r, c); v > best {
				best = v
			}
		}
		if gap := (best - wide.Get(r4B, c)) / best; gap > 0.06 {
			t.Errorf("16 GB/s %s: 4B trails by %.1f%%", wide.Cols[c], 100*gap)
		}
	}
}

// Package study implements the paper's experiments: thread-count sweeps of
// the nine power-equivalent designs for multi-program workloads, aggregation
// under active-thread-count distributions, multi-threaded application
// studies, the ideal dynamic multi-core, and the power/energy analyses. One
// driver per figure regenerates the corresponding result table.
package study

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/dist"
	"smtflex/internal/interval"
	"smtflex/internal/memo"
	"smtflex/internal/metrics"
	"smtflex/internal/obs"
	"smtflex/internal/power"
	"smtflex/internal/profiler"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// Kind selects the multi-program workload class.
type Kind int

const (
	// Homogeneous workloads are multiple copies of one benchmark.
	Homogeneous Kind = iota
	// Heterogeneous workloads are balanced random benchmark mixes.
	Heterogeneous
)

// String returns "homogeneous" or "heterogeneous".
func (k Kind) String() string {
	if k == Homogeneous {
		return "homogeneous"
	}
	return "heterogeneous"
}

// MaxThreads is the study's maximum active thread count.
const MaxThreads = dist.MaxThreads

// solverPool hands each pool worker a reusable contention.Solver, so the
// tens of thousands of solves behind a sweep allocate scratch once per
// worker instead of once per solve. Results alias the solver's scratch;
// EvaluateMixCtx copies everything it keeps before the solver is returned.
var solverPool = sync.Pool{New: func() any { return contention.NewSolver() }}

// Study runs experiments, caching profiles, solo rates and design sweeps so
// every figure reuses the same underlying data, exactly as the paper derives
// all figures from one simulation campaign.
type Study struct {
	// Src supplies benchmark profiles (cycle-engine measurements).
	Src *profiler.Source
	// MixesPerCount is the number of random mixes per thread count for
	// heterogeneous workloads (the paper uses 12).
	MixesPerCount int
	// Seed drives mix construction.
	Seed int64
	// Model selects the contention solver's mechanisms; the zero value is
	// the calibrated default. Ablation studies build Studies with
	// alternative models that share the same profile source.
	Model contention.Model
	// Parallelism bounds the experiment engine's worker pool; zero (the
	// default) means GOMAXPROCS. One forces the serial engine.
	Parallelism int

	// solo caches isolated big-core rates. The rates are model-independent,
	// so withModel-derived ablation studies share this cache by pointer.
	solo *memo.Cache[string, float64]
	// sweeps caches design sweeps; keys include the model, so derived
	// studies share this cache too.
	sweeps *memo.Cache[string, *Sweep]

	// solverIters and poolQueue, when non-nil, receive engine-level
	// observations — contention-solver iteration counts and pool queue waits
	// in seconds — behind the daemon's metrics. withModel-derived ablation
	// studies share them by pointer, like the caches.
	solverIters *obs.Histogram
	poolQueue   *obs.Histogram

	// soloComputes and sweepComputes count cache-miss computations performed
	// by this Study — test instrumentation for the singleflight guarantees.
	soloComputes  atomic.Int64
	sweepComputes atomic.Int64
	// evals counts EvaluateMix calls: the unit of engine work the pool hands
	// out, and the observable for cancellation tests (a cancelled sweep's
	// count stops rising and stays below the full grid).
	evals atomic.Int64
}

// Evaluations returns the number of mix evaluations this Study has run. It
// is the pool-level progress observable used by the server's metrics and by
// cancellation tests.
func (s *Study) Evaluations() int64 { return s.evals.Load() }

// CacheStats reports the size and hit rates of the study's caches, for the
// server's observability surface.
type CacheStats struct {
	SoloEntries, SweepEntries int
	SoloHits, SoloMisses      int64
	SweepHits, SweepMisses    int64
}

// CacheStats returns a snapshot of the solo-rate and sweep cache counters.
func (s *Study) CacheStats() CacheStats {
	st := CacheStats{SoloEntries: s.solo.Len(), SweepEntries: s.sweeps.Len()}
	st.SoloHits, st.SoloMisses = s.solo.Stats()
	st.SweepHits, st.SweepMisses = s.sweeps.Stats()
	return st
}

// BoundCaches caps the sweep cache at maxSweeps entries with LRU eviction,
// for long-running servers whose request history would otherwise grow the
// cache without limit. The solo-rate and profile caches are intrinsically
// bounded by the benchmark suite and stay unbounded. Zero restores the
// batch default (keep everything).
func (s *Study) BoundCaches(maxSweeps int) { s.sweeps.Bound(maxSweeps) }

// New returns a Study with the paper's defaults.
func New(src *profiler.Source) *Study {
	return &Study{
		Src: src, MixesPerCount: 12, Seed: 20140301,
		solo:   &memo.Cache[string, float64]{Name: "solo"},
		sweeps: &memo.Cache[string, *Sweep]{Name: "sweeps"},
	}
}

// SetEngineHistograms installs the daemon's engine-level histograms: solver
// iteration counts per solve and pool queue waits in seconds. Nil disables a
// series. Call before concurrent use; derived ablation studies inherit them.
func (s *Study) SetEngineHistograms(solverIters, poolQueue *obs.Histogram) {
	s.solverIters = solverIters
	s.poolQueue = poolQueue
}

// CacheCounters snapshots every engine cache this Study reaches — its own
// solo-rate and sweep caches plus the profile source's — for the daemon's
// per-cache metrics.
func (s *Study) CacheCounters() []memo.Counters {
	out := []memo.Counters{s.solo.Counters(), s.sweeps.Counters()}
	if s.Src != nil {
		out = append(out, s.Src.CacheCounters()...)
	}
	return out
}

// SoloRate returns a benchmark's isolated progress rate (µops/ns) on the big
// core — the normalization reference for STP and ANTT. Concurrent calls for
// the same benchmark compute the rate once.
func (s *Study) SoloRate(bench string) (float64, error) {
	return s.SoloRateCtx(context.Background(), bench)
}

// SoloRateCtx is SoloRate with tracing: the cache lookup and — on a miss —
// the profiling and solve behind it are recorded as spans when ctx carries
// an active trace. The rate returned is identical to SoloRate's.
func (s *Study) SoloRateCtx(ctx context.Context, bench string) (float64, error) {
	return s.solo.GetTraced(ctx, bench, func(ctx context.Context) (float64, error) {
		s.soloComputes.Add(1)
		spec, err := workload.ByName(bench)
		if err != nil {
			return 0, err
		}
		d := config.NewDesign("solo-big", 1, 0, 0, false)
		prof, err := s.Src.ProfileCtx(ctx, spec, config.Big)
		if err != nil {
			return 0, err
		}
		p := contention.Placement{
			Design:   d,
			CoreOf:   []int{0},
			Profiles: []*interval.Profile{prof},
		}
		res, err := contention.SolveCtx(ctx, p)
		if err != nil {
			return 0, err
		}
		return res.Threads[0].UopsPerNs, nil
	})
}

// MixThread is the per-thread detail of one mix evaluation: the program, the
// core the scheduler placed it on, its solved rates, and the contention
// solver's CPI-stack decomposition — the paper's per-thread view of where
// cycles go on a given design.
type MixThread struct {
	// Program is the benchmark the thread runs.
	Program string
	// Core is the core index the scheduler placed the thread on.
	Core int
	// IPC is µops per core cycle while running (after SMT width sharing).
	IPC float64
	// UopsPerNs is the thread's absolute progress rate.
	UopsPerNs float64
	// Stack is the solved CPI decomposition.
	Stack interval.CPIStack
}

// MixResult is the evaluation of one mix on one design.
type MixResult struct {
	// STP is the system throughput (weighted speedup vs big-core isolated).
	STP float64
	// ANTT is the average normalized turnaround time.
	ANTT float64
	// Watts is chip power with idle cores power gated.
	Watts float64
	// WattsUngated is chip power without power gating.
	WattsUngated float64
	// BusUtilization is off-chip bus utilization in [0,1].
	BusUtilization float64
	// Threads is the per-thread placement and CPI-stack detail, indexed like
	// the mix's programs.
	Threads []MixThread
	// Diag is the contention solver's convergence diagnostics for this mix.
	Diag contention.Diagnostics
}

// EvaluateMix places and solves one mix on a design and computes metrics.
func (s *Study) EvaluateMix(d config.Design, mix workload.Mix) (MixResult, error) {
	return s.EvaluateMixCtx(context.Background(), d, mix)
}

// EvaluateMixCtx is EvaluateMix with tracing: the placement, contention
// solve and solo-rate lookups are recorded as spans when ctx carries an
// active trace, and the solve's iteration count feeds the solver histogram.
// The result is identical to EvaluateMix's.
func (s *Study) EvaluateMixCtx(ctx context.Context, d config.Design, mix workload.Mix) (MixResult, error) {
	s.evals.Add(1)
	placement, err := sched.PlaceCtx(ctx, d, mix, s.Src)
	if err != nil {
		return MixResult{}, err
	}
	solver := solverPool.Get().(*contention.Solver)
	// The solver goes back to the pool only when this evaluation is done:
	// solved.Threads and solved.CoreUtilization alias its scratch, and both
	// are read (and copied) below.
	defer solverPool.Put(solver)
	solved, err := solver.SolveModelCtx(ctx, placement, s.Model)
	if err != nil {
		return MixResult{}, err
	}
	s.solverIters.Observe(float64(solved.Diag.Iterations))

	n := mix.NumThreads()
	rates := make([]float64, n)
	soloRates := make([]float64, n)
	threads := make([]MixThread, n)
	for i := 0; i < n; i++ {
		tr := solved.Threads[i]
		rates[i] = tr.UopsPerNs
		threads[i] = MixThread{
			Program:   mix.Programs[i],
			Core:      placement.CoreOf[i],
			IPC:       tr.IPC,
			UopsPerNs: tr.UopsPerNs,
			Stack:     tr.Stack,
		}
		soloRates[i], err = s.SoloRateCtx(ctx, mix.Programs[i])
		if err != nil {
			return MixResult{}, err
		}
	}
	stp, err := metrics.STP(rates, soloRates)
	if err != nil {
		return MixResult{}, err
	}
	antt, err := metrics.ANTT(rates, soloRates)
	if err != nil {
		return MixResult{}, err
	}

	active := make([]bool, d.NumCores())
	for _, c := range placement.CoreOf {
		active[c] = true
	}
	st := power.ChipState{Design: d, CoreUtilization: solved.CoreUtilization, CoreActive: active, Gating: true}
	watts, err := power.ChipWatts(st)
	if err != nil {
		return MixResult{}, err
	}
	st.Gating = false
	ungated, err := power.ChipWatts(st)
	if err != nil {
		return MixResult{}, err
	}
	return MixResult{STP: stp, ANTT: antt, Watts: watts, WattsUngated: ungated,
		BusUtilization: solved.BusUtilization, Threads: threads, Diag: solved.Diag}, nil
}

// Sweep holds, for one design and workload kind, the per-thread-count
// averages and the per-mix detail.
type Sweep struct {
	Design config.Design
	Kind   Kind
	// STP[n-1] is the harmonic mean STP at n threads across mixes.
	STP [MaxThreads]float64
	// ANTT[n-1] is the arithmetic mean ANTT.
	ANTT [MaxThreads]float64
	// Watts[n-1] is the mean power with power gating.
	Watts [MaxThreads]float64
	// MixNames lists the mixes (for Homogeneous, the benchmark names).
	MixNames []string
	// ByMix[m][n-1] is the STP of mix m at n threads.
	ByMix [][MaxThreads]float64
	// MeanStack[n-1] is the mean per-thread CPI stack at n threads, averaged
	// component-wise over every thread of every mix — the sweep-level view of
	// where cycles go as the design fills up with threads.
	MeanStack [MaxThreads]interval.CPIStack
	// SolverIterations is the largest iteration count any evaluation's
	// contention solve needed, and SolverResidual the largest final residual —
	// the sweep-level view of the solver's convergence diagnostics.
	SolverIterations int
	SolverResidual   float64
	// SolverConverged reports whether every evaluation's solve terminated by
	// convergence rather than by exhausting its iteration budget.
	SolverConverged bool
}

// sweepKey identifies a sweep in the cache, including the model choices.
func (s *Study) sweepKey(d config.Design, k Kind) string {
	return fmt.Sprintf("%s|smt=%t|bw=%g|%s|%+v", d.Name, d.SMTEnabled, d.MemBandwidthGBps, k, s.Model)
}

// mixesAt returns the workloads evaluated at thread count n.
func (s *Study) mixesAt(k Kind, n int) []workload.Mix {
	if k == Homogeneous {
		return workload.HomogeneousMixes(n)
	}
	return workload.HeterogeneousMixes(n, s.MixesPerCount, s.Seed)
}

// SweepDesign evaluates the design across 1..24 threads for the workload
// kind, caching the result. Concurrent calls for the same (design, kind,
// model) coalesce onto one computation — including calls from distinct
// server requests — and each caller waits only as long as its own ctx
// allows: when every caller interested in the key has abandoned it, the
// shared computation is cancelled and uncached so a later request retries.
// The evaluation itself fans every (thread count, mix) pair over the worker
// pool and assembles the result in index order, so the sweep is bit-for-bit
// identical to the serial engine's.
func (s *Study) SweepDesign(ctx context.Context, d config.Design, k Kind) (*Sweep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The cache detaches the compute context from the caller's, so a
	// context-carried progress hook must be captured here and re-attached
	// inside the closure. When concurrent callers coalesce, only the hook of
	// the caller whose closure runs (the computation leader) fires.
	prog := progressFrom(ctx)
	return s.sweeps.GetCtx(ctx, s.sweepKey(d, k), func(cctx context.Context) (*Sweep, error) {
		s.sweepComputes.Add(1)
		return s.computeSweep(WithProgress(cctx, prog), d, k)
	})
}

// computeSweep does the actual evaluation behind SweepDesign's cache: it
// materializes the cell grid, fans the cells over the worker pool, and hands
// the per-cell results to AssembleSweep — the same decomposition and
// reassembly the cluster coordinator uses, so distributed sweeps reduce to
// this exact code.
func (s *Study) computeSweep(ctx context.Context, d config.Design, k Kind) (*Sweep, error) {
	ctx, sp := obs.StartSpan(ctx, "study.sweep")
	sp.SetAttr("design", d.Name)
	sp.SetAttr("kind", k.String())
	defer sp.End()

	// Mix construction is cheap and deterministic; materialize the whole
	// grid up front so the workers only evaluate.
	mixes, nMixes, err := s.SweepMixes(k)
	if err != nil {
		return nil, err
	}

	results := make([][]MixResult, MaxThreads)
	for i := range results {
		results[i] = make([]MixResult, nMixes)
	}
	err = runIndexed(ctx, s.workers(), MaxThreads*nMixes, s.poolQueue, func(ctx context.Context, i int) error {
		n, mi := i/nMixes+1, i%nMixes
		r, err := s.EvaluateMixCtx(ctx, d, mixes[n][mi])
		if err != nil {
			return fmt.Errorf("study: %s on %s: %w", mixes[n][mi].ID, d.Name, err)
		}
		results[n-1][mi] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return AssembleSweep(d, k, mixes, results)
}

// DistributionSTP aggregates a sweep's STP under a thread-count distribution
// using the weighted harmonic mean (STP is a rate metric).
func DistributionSTP(sw *Sweep, d dist.Distribution) (float64, error) {
	weights := make([]float64, MaxThreads)
	for n := 1; n <= MaxThreads; n++ {
		weights[n-1] = d.Weight(n)
	}
	return metrics.WeightedHarmonicMean(sw.STP[:], weights)
}

// DistributionWatts aggregates power under a distribution (arithmetic,
// power is additive over time).
func DistributionWatts(sw *Sweep, d dist.Distribution) (float64, error) {
	weights := make([]float64, MaxThreads)
	for n := 1; n <= MaxThreads; n++ {
		weights[n-1] = d.Weight(n)
	}
	return metrics.WeightedAverage(sw.Watts[:], weights)
}

package study

import "context"

import "testing"

func TestAblationSMTEfficiency(t *testing.T) {
	s := sharedStudy()
	tab, err := s.AblationSMTEfficiency(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Higher issue efficiency never lowers 4B's average STP, and the span
	// from 0.80 to 1.00 is visible but bounded.
	for c := 0; c < 2; c++ {
		prev := 0.0
		for r := range tab.Rows {
			v := tab.Get(r, c)
			if v < prev-1e-9 {
				t.Errorf("col %d: STP fell from %.3f to %.3f at %s", c, prev, v, tab.Rows[r])
			}
			prev = v
		}
		lo, hi := tab.Get(0, c), tab.Get(len(tab.Rows)-1, c)
		if hi/lo > 1.3 {
			t.Errorf("col %d: efficiency sweep swings %.2fx — model overly sensitive", c, hi/lo)
		}
	}
}

func TestAblationLLCPolicy(t *testing.T) {
	s := sharedStudy()
	tab, err := s.AblationLLCPolicy(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Policies differ measurably somewhere but not catastrophically.
	var maxDelta float64
	for r := range tab.Rows {
		for c := 0; c < 2; c++ {
			w, e := tab.Get(r, c), tab.Get(r, c+2)
			d := (w - e) / w
			if d < 0 {
				d = -d
			}
			if d > maxDelta {
				maxDelta = d
			}
			if d > 0.5 {
				t.Errorf("%s: LLC policy changes STP by %.0f%%", tab.Rows[r], 100*d)
			}
		}
	}
	if maxDelta == 0 {
		t.Error("LLC policy ablation had zero effect — knob not wired")
	}
}

func TestAblationQueueing(t *testing.T) {
	s := sharedStudy()
	tab, err := s.AblationQueueing(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Removing queueing can only help (uncontended latency is a lower bound).
	for r := range tab.Rows {
		for c := 0; c < 2; c++ {
			if tab.Get(r, c+2) < tab.Get(r, c)*0.999 {
				t.Errorf("%s: fixed latency slower than queued", tab.Rows[r])
			}
		}
	}
	// And the effect is substantial for at least one design (bandwidth
	// contention is a first-order mechanism).
	grew := false
	for r := range tab.Rows {
		if tab.Get(r, 3) > tab.Get(r, 1)*1.15 {
			grew = true
		}
	}
	if !grew {
		t.Error("queueing ablation changed nothing substantial")
	}
}

func TestAblationWindowVisible(t *testing.T) {
	s := sharedStudy()
	tab, err := s.AblationWindowVisible(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// With a flat visible fraction, deep SMT hides more latency than the
	// calibrated model: at 24 threads the flat variant must not be slower.
	wd, flat := tab.Get(0, 23), tab.Get(1, 23)
	if flat < wd*0.999 {
		t.Errorf("flat visible (%.3f) below window-dependent (%.3f) at 24 threads", flat, wd)
	}
	// At 1 thread both use the full window: identical.
	if d := tab.Get(0, 0) - tab.Get(1, 0); d > 0.01 || d < -0.01 {
		t.Errorf("single-thread results differ: %.3f vs %.3f", tab.Get(0, 0), tab.Get(1, 0))
	}
}

func TestAblationScheduler(t *testing.T) {
	s := sharedStudy()
	tab, err := s.AblationScheduler(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		greedy, refined := tab.Get(r, 0), tab.Get(r, 1)
		if refined < greedy*0.999 {
			t.Errorf("%s: refined (%.3f) below greedy (%.3f)", tab.Rows[r], refined, greedy)
		}
		// The greedy heuristic tracks the local optimum within ~20%; the
		// gap peaks at full SMT occupancy (n=24), where pairwise co-schedule
		// choices matter most — exactly why the paper runs an offline
		// search. This is recorded as a finding in EXPERIMENTS.md.
		if gain := tab.Get(r, 2); gain > 20 {
			t.Errorf("%s: greedy leaves %.1f%% on the table", tab.Rows[r], gain)
		}
	}
}

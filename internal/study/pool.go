package study

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"smtflex/internal/faults"
	"smtflex/internal/obs"
)

// ErrWorkerPanic is the sentinel wrapped by errors produced when an
// evaluation handed to the worker pool panics. The panic is contained at the
// pool boundary: the sweep fails with this error instead of unwinding the
// whole process, so one bad evaluation cannot take down a daemon serving
// other requests.
var ErrWorkerPanic = errors.New("study: evaluation panicked")

// The parallel experiment engine: every sweep and figure driver fans its
// independent evaluations over a bounded worker pool and writes results into
// index-addressed slots, so the assembled tables are bit-for-bit identical
// to the serial engine's regardless of completion order. The caches the
// workers stress (profiles, solo rates, sweeps) use memo.Cache, whose
// singleflight semantics make concurrent misses compute once.
//
// The pool is also the engine's cancellation point: runIndexed checks the
// context before handing each index to a worker, so when a server request is
// abandoned mid-sweep the remaining grid is dropped instead of burning
// workers for a result nobody will read. In-progress evaluations finish
// (they are short); no new ones start.
//
// Observability: each task runs under a "pool.task" span carrying its index
// and its queue wait — the time between the batch entering the pool and the
// task starting, the engine's analog of dispatch stalls. The wait also feeds
// the optional queue histogram (the daemon's smtflexd_pool_queue_seconds).

// workers resolves the pool size: Parallelism if positive, else GOMAXPROCS.
func (s *Study) workers() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runIndexed runs fn(ctx, i) for every i in [0, n) on up to workers
// goroutines, stopping early if ctx is cancelled. On a task error the pool
// stops handing out new indices and returns the error with the lowest index
// among those observed (the serial engine's error, unless a later index
// failed first and won the race to stop the pool). On cancellation it
// returns ctx.Err(), unless every index was already handed out and
// completed — then the work is done and the cancellation is irrelevant. With
// one worker it degenerates to the plain serial loop. queue, when non-nil,
// receives each task's queue wait in seconds. A progress hook carried by ctx
// (see WithProgress) is called after every completed task with the number of
// tasks finished so far; completion order is nondeterministic under
// parallelism, but the final call is always (n, n) on a successful run.
func runIndexed(ctx context.Context, workers, n int, queue *obs.Histogram, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	prog := progressFrom(ctx)
	enqueued := time.Now()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(ctx, enqueued, queue, i, fn); err != nil {
				return err
			}
			if prog != nil {
				prog(i+1, n)
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					// Only a cancellation that actually skips an index is an
					// error; i was due to run and will not.
					record(i, err)
					return
				}
				if err := safeCall(ctx, enqueued, queue, i, fn); err != nil {
					record(i, err)
					return
				}
				if prog != nil {
					prog(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// safeCall runs fn(ctx, i) under a "pool.task" span, with the worker
// fault-injection site applied and any panic converted into an error
// wrapping ErrWorkerPanic, so both the serial and the parallel engine
// contain evaluation panics identically.
func safeCall(ctx context.Context, enqueued time.Time, queue *obs.Histogram, i int, fn func(ctx context.Context, i int) error) (err error) {
	wait := time.Since(enqueued)
	queue.Observe(wait.Seconds())
	ctx, sp := obs.StartSpan(ctx, "pool.task")
	sp.SetAttr("index", i)
	sp.SetAttr("queue_ns", wait.Nanoseconds())
	defer sp.End()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: task %d: %v\n%s", ErrWorkerPanic, i, r, debug.Stack())
		}
	}()
	if err := faults.Check(faults.SiteWorker); err != nil {
		return fmt.Errorf("task %d: %w", i, err)
	}
	return fn(ctx, i)
}

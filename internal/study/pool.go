package study

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel experiment engine: every sweep and figure driver fans its
// independent evaluations over a bounded worker pool and writes results into
// index-addressed slots, so the assembled tables are bit-for-bit identical
// to the serial engine's regardless of completion order. The caches the
// workers stress (profiles, solo rates, sweeps) use memo.Cache, whose
// singleflight semantics make concurrent misses compute once.

// workers resolves the pool size: Parallelism if positive, else GOMAXPROCS.
func (s *Study) workers() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runIndexed runs fn(i) for every i in [0, n) on up to workers goroutines.
// On error the pool stops handing out new indices and returns the error with
// the lowest index among those observed (the serial engine's error, unless a
// later index failed first and won the race to stop the pool). With one
// worker it degenerates to the plain serial loop.
func runIndexed(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

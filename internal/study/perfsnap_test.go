package study

import (
	"context"
	"fmt"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
)

// TestSweepBitIdenticalWithPerfsnap is the perf-snapshot layer's correctness
// contract: running a sweep with every snapshot source armed — tracing,
// machstats, engine histograms — and then capturing a perf snapshot must not
// change a single bit of the engine's output versus a dark run. Snapshot
// capture only reads already-collected state; this pins that property at the
// sweep level the way TestSweepBitIdenticalWithMachstats pins the counters.
func TestSweepBitIdenticalWithPerfsnap(t *testing.T) {
	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}

	obs.Disable()
	machstats.Disable()
	dark := newEngineStudy(4)
	swDark, err := dark.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}

	obs.Enable()
	t.Cleanup(obs.Disable)
	machstats.Reset()
	machstats.Enable()
	t.Cleanup(machstats.Disable)
	t.Cleanup(machstats.Reset)

	armed := newEngineStudy(4)
	solverIters := obs.NewHistogram(perfdiff.SolverIterBuckets)
	poolQueue := obs.NewHistogram(perfdiff.QueueSecondsBuckets)
	armed.SetEngineHistograms(solverIters, poolQueue)
	col := obs.NewCollector(4)
	ctx, root := obs.StartTrace(context.Background(), col, "sweep")
	swArmed, err := armed.SweepDesign(ctx, d, Heterogeneous)
	root.End()
	if err != nil {
		t.Fatal(err)
	}

	mach := machstats.Default().Snapshot()
	snap := perfdiff.Capture(perfdiff.CaptureOpts{
		Role:   "test",
		Traces: col.Snapshots(),
		Mach:   &mach,
		Histograms: []perfdiff.HistogramState{
			perfdiff.HistState(perfdiff.HistSolverIterations, solverIters.Snapshot()),
			perfdiff.HistState(perfdiff.HistPoolQueueSeconds, poolQueue.Snapshot()),
		},
		Caches: armed.CacheCounters(),
	})

	if fmt.Sprintf("%+v", swDark) != fmt.Sprintf("%+v", swArmed) {
		t.Fatal("sweep tables differ with perf-snapshot sources armed")
	}

	// The capture must actually have observed the sweep: solve time in the
	// stacks, iterations in the histogram, stacks in machstats.
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(snap.TimeStacks) == 0 {
		t.Fatal("no time stacks captured from armed sweep")
	}
	var solveNs int64
	for _, ts := range snap.TimeStacks {
		solveNs += ts.ByNs[obs.CatSolve]
	}
	if solveNs == 0 {
		t.Errorf("no solve time attributed in stacks: %+v", snap.TimeStacks)
	}
	if h, ok := snap.Histogram(perfdiff.HistSolverIterations); !ok || h.Count == 0 {
		t.Errorf("solver-iteration histogram empty in snapshot")
	}
	if snap.MachStats == nil || len(snap.MachStats.Stacks) == 0 {
		t.Errorf("no CPI-stack records in snapshot")
	}
	if len(snap.Caches) == 0 {
		t.Errorf("no cache counters in snapshot")
	}
}

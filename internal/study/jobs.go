package study

import (
	"context"

	"smtflex/internal/config"
	"smtflex/internal/timeline"
)

// RunJobs simulates the same job stream on every design, fanning the
// independent designs over the worker pool. Results come back in design
// order; a cancelled context stops handing designs to workers.
func (s *Study) RunJobs(ctx context.Context, designs []config.Design, jobs []timeline.Job) ([]timeline.Result, error) {
	out := make([]timeline.Result, len(designs))
	err := runIndexed(ctx, s.workers(), len(designs), s.poolQueue, func(_ context.Context, i int) error {
		r, err := timeline.Simulate(designs[i], jobs, s.Src)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

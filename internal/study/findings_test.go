package study

import "context"

import "testing"

func TestCheckFindings(t *testing.T) {
	s := sharedStudy()
	findings, err := s.CheckFindings(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 11 {
		t.Fatalf("%d findings, want 11", len(findings))
	}
	for i, f := range findings {
		if f.ID != i+1 {
			t.Errorf("finding %d has ID %d", i, f.ID)
		}
		if f.Claim == "" || f.Detail == "" {
			t.Errorf("finding %d lacks text", f.ID)
		}
		if !f.Reproduced {
			t.Errorf("finding %d not reproduced: %s", f.ID, f.Detail)
		}
	}
}

package study

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Sample", []string{"alpha", "b"}, []string{"x", "yy"})
	t.Set(0, 0, 1.5)
	t.Set(0, 1, 2.25)
	t.Set(1, 0, 10)
	t.Set(1, 1, 0.125)
	return t
}

func TestTableAccessors(t *testing.T) {
	tab := sampleTable()
	if tab.Get(0, 1) != 2.25 {
		t.Fatal("Get wrong")
	}
	if tab.Row("b") != 1 || tab.Row("nope") != -1 {
		t.Fatal("Row lookup wrong")
	}
	if tab.Col("yy") != 1 || tab.Col("zz") != -1 {
		t.Fatal("Col lookup wrong")
	}
}

func TestTableString(t *testing.T) {
	s := sampleTable().String()
	if !strings.Contains(s, "Sample") {
		t.Error("title missing")
	}
	for _, want := range []string{"alpha", "yy", "2.250", "10.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("%d lines", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	csv := sampleTable().CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "row,x,yy" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "alpha,1.5,2.25" {
		t.Fatalf("row %q", lines[1])
	}
	if lines[2] != "b,10,0.125" {
		t.Fatalf("row %q", lines[2])
	}
}

func TestArgMaxRow(t *testing.T) {
	tab := sampleTable()
	if got := tab.ArgMaxRow(0); got != "b" {
		t.Fatalf("ArgMaxRow(0) = %s", got)
	}
	if got := tab.ArgMaxRow(1); got != "alpha" {
		t.Fatalf("ArgMaxRow(1) = %s", got)
	}
}

func TestTable1Contents(t *testing.T) {
	tab := Table1()
	if tab.Get(tab.Row("width"), tab.Col("big")) != 4 {
		t.Error("big width")
	}
	if tab.Get(tab.Row("rob"), tab.Col("medium")) != 32 {
		t.Error("medium ROB")
	}
	if tab.Get(tab.Row("ooo"), tab.Col("small")) != 0 {
		t.Error("small core should be in-order")
	}
	if tab.Get(tab.Row("smt_contexts"), tab.Col("big")) != 6 {
		t.Error("big SMT contexts")
	}
}

func TestFigure2Contents(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) != 9 {
		t.Fatalf("%d designs", len(tab.Rows))
	}
	r := tab.Row("2B10s")
	if tab.Get(r, tab.Col("big")) != 2 || tab.Get(r, tab.Col("small")) != 10 {
		t.Error("2B10s composition wrong")
	}
}

func TestFigure10aDistribution(t *testing.T) {
	tab := Figure10a()
	var sum float64
	for c := range tab.Cols {
		sum += tab.Get(0, c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %g", sum)
	}
}

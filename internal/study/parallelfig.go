package study

import (
	"context"

	"fmt"

	"smtflex/internal/config"
	"smtflex/internal/metrics"
	"smtflex/internal/parallel"
)

// parallelThreadCounts are the software thread counts the paper sweeps.
var parallelThreadCounts = []int{4, 8, 12, 16, 20, 24}

// heteroParallelDesigns are the designs shown in Figures 11/12: the three
// homogeneous designs plus the single-big-core heterogeneous designs (pinned
// scheduling cannot exploit multiple big cores).
func heteroParallelDesigns(smt bool) ([]config.Design, error) {
	out := []config.Design{}
	for _, name := range []string{"4B", "8m", "20s", "1B6m", "1B15s"} {
		d, err := config.DesignByName(name, smt)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// baselineKey caches the per-app baseline: four threads on 4B without SMT.
func (s *Study) parallelBaseline(app parallel.App, bandwidthGBps float64) (parallel.Result, error) {
	d, err := config.DesignByName("4B", false)
	if err != nil {
		return parallel.Result{}, err
	}
	d = d.WithBandwidth(bandwidthGBps)
	return parallel.Evaluate(app, d, 4, s.Src)
}

// bestSpeedup evaluates app on design d at the allowed thread counts and
// returns the maximum ROI and whole-program speedups versus the baseline.
// Without SMT the thread count equals the core count (the paper's setup);
// with SMT the sweep goes up to 24 threads.
func (s *Study) bestSpeedup(app parallel.App, d config.Design) (roi, whole float64, err error) {
	base, err := s.parallelBaseline(app, d.MemBandwidthGBps)
	if err != nil {
		return 0, 0, err
	}
	counts := parallelThreadCounts
	if !d.SMTEnabled {
		counts = []int{d.NumCores()}
	}
	for _, n := range counts {
		if d.SMTEnabled && n > d.HardwareThreads() {
			continue
		}
		res, err := parallel.Evaluate(app, d, n, s.Src)
		if err != nil {
			return 0, 0, err
		}
		if v := base.ROINs / res.ROINs; v > roi {
			roi = v
		}
		if v := base.TotalNs / res.TotalNs; v > whole {
			whole = v
		}
	}
	return roi, whole, nil
}

// parallelSpeedupTable fills rows=designs × cols={ROI,whole} with speedups
// averaged over all applications.
func (s *Study) parallelSpeedupTable(ctx context.Context, title string, designs []config.Design) (*Table, error) {
	names := make([]string, len(designs))
	for i, d := range designs {
		suffix := ""
		if d.SMTEnabled {
			suffix = "_SMT"
		}
		names[i] = d.Name + suffix
	}
	t := NewTable(title, names, []string{"ROI", "whole"})
	apps := parallel.AppNames()
	type speedup struct{ roi, whole float64 }
	vals := make([]speedup, len(designs)*len(apps))
	err := runIndexed(ctx, s.workers(), len(vals), s.poolQueue, func(_ context.Context, i int) error {
		d, name := designs[i/len(apps)], apps[i%len(apps)]
		app, err := parallel.AppByName(name)
		if err != nil {
			return err
		}
		roi, whole, err := s.bestSpeedup(app, d)
		vals[i] = speedup{roi, whole}
		return err
	})
	if err != nil {
		return nil, err
	}
	for r := range designs {
		rois := make([]float64, len(apps))
		wholes := make([]float64, len(apps))
		for a := range apps {
			rois[a] = vals[r*len(apps)+a].roi
			wholes[a] = vals[r*len(apps)+a].whole
		}
		t.Set(r, 0, metrics.Mean(rois))
		t.Set(r, 1, metrics.Mean(wholes))
	}
	return t, nil
}

// Figure11 returns average multi-threaded speedups (versus four threads on
// 4B) for the parallel designs, without and with SMT.
func (s *Study) Figure11(ctx context.Context) (*Table, error) {
	noSMT, err := heteroParallelDesigns(false)
	if err != nil {
		return nil, err
	}
	withSMT, err := heteroParallelDesigns(true)
	if err != nil {
		return nil, err
	}
	designs := append(noSMT, withSMT...)
	return s.parallelSpeedupTable(ctx,
		"Figure 11: average PARSEC-like speedup vs 4-thread 4B (ROI and whole program)", designs)
}

// Figure12 returns per-application best speedups: apps × designs, for the
// given phase ("ROI" or "whole"), with SMT enabled.
func (s *Study) Figure12(ctx context.Context, phase string) (*Table, error) {
	designs, err := heteroParallelDesigns(true)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.Name
	}
	t := NewTable(fmt.Sprintf("Figure 12: per-application speedup (%s, SMT designs)", phase),
		parallel.AppNames(), names)
	apps := parallel.AppNames()
	err = runIndexed(ctx, s.workers(), len(designs)*len(apps), s.poolQueue, func(_ context.Context, i int) error {
		c, r := i/len(apps), i%len(apps)
		app, err := parallel.AppByName(apps[r])
		if err != nil {
			return err
		}
		roi, whole, err := s.bestSpeedup(app, designs[c])
		if err != nil {
			return err
		}
		v := roi
		if phase == "whole" {
			v = whole
		}
		t.Set(r, c, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Figure16 returns average ROI speedups for the alternative medium/small
// designs of Section 8.1 — private caches enlarged to the big core's
// (6m_lc, 16s_lc) and frequency raised to 3.33 GHz (6m_hf, 16s_hf) —
// compared against the three baseline homogeneous designs, SMT everywhere.
func (s *Study) Figure16(ctx context.Context) (*Table, error) {
	designs := []config.Design{}
	for _, name := range []string{"4B", "8m", "20s"} {
		d, err := config.DesignByName(name, true)
		if err != nil {
			return nil, err
		}
		designs = append(designs, d)
	}
	designs = append(designs, config.AlternativeDesigns(true)...)
	return s.parallelSpeedupTable(ctx,
		"Figure 16: average ROI speedup with larger-cache and higher-frequency small/medium designs", designs)
}

// Figure17a returns uniform-distribution average STP with 16 GB/s memory
// bandwidth (SMT everywhere): designs × workload kinds.
func (s *Study) Figure17a(ctx context.Context) (*Table, error) {
	designs := config.NineDesigns(true)
	for i := range designs {
		designs[i] = designs[i].WithBandwidth(16)
	}
	return s.uniformAverages(ctx, "Figure 17a: average STP, uniform distribution, SMT, 16 GB/s memory bandwidth", designs)
}

// Figure17b returns average parallel speedups at 16 GB/s bandwidth.
func (s *Study) Figure17b(ctx context.Context) (*Table, error) {
	var designs []config.Design
	for _, smt := range []bool{false, true} {
		ds, err := heteroParallelDesigns(smt)
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			designs = append(designs, d.WithBandwidth(16))
		}
	}
	return s.parallelSpeedupTable(ctx,
		"Figure 17b: average PARSEC-like speedup, 16 GB/s memory bandwidth", designs)
}

package study

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"smtflex/internal/faults"
)

// Tests for panic containment at the worker-pool boundary: a panicking
// evaluation must fail the run with ErrWorkerPanic in both the serial and the
// parallel engine, without unwinding the caller.

func TestRunIndexedContainsPanicSerial(t *testing.T) {
	err := runIndexed(context.Background(), 1, 4, nil, func(_ context.Context, i int) error {
		if i == 2 {
			panic("task exploded")
		}
		return nil
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
	if !strings.Contains(err.Error(), "task 2") || !strings.Contains(err.Error(), "task exploded") {
		t.Fatalf("panic context lost: %v", err)
	}
}

func TestRunIndexedContainsPanicParallel(t *testing.T) {
	var ran atomic.Int64
	err := runIndexed(context.Background(), 4, 32, nil, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			panic(i)
		}
		return nil
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
	// The pool must have stopped early rather than draining all 32 tasks.
	if n := ran.Load(); n == 32 {
		t.Fatal("pool did not stop after a panicked task")
	}
}

func TestRunIndexedPanicReportsLowestIndex(t *testing.T) {
	// When several tasks panic, the reported index is the lowest observed —
	// matching the serial engine's first failure.
	err := runIndexed(context.Background(), 8, 8, nil, func(_ context.Context, i int) error {
		panic(i)
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "task 0") {
		t.Fatalf("expected lowest task index in %v", err)
	}
}

func TestWorkerErrorInjection(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteWorker, faults.Injection{Mode: faults.ModeError, Count: 1})
	err := runIndexed(context.Background(), 1, 3, nil, func(_ context.Context, i int) error { return nil })
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	// Disarmed: the next run completes.
	if err := runIndexed(context.Background(), 1, 3, nil, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("run after disarm: %v", err)
	}
}

func TestWorkerPanicInjectionParallel(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteWorker, faults.Injection{Mode: faults.ModePanic, Count: 1})
	err := runIndexed(context.Background(), 4, 16, nil, func(_ context.Context, i int) error { return nil })
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("got %v, want ErrWorkerPanic", err)
	}
	if err := runIndexed(context.Background(), 4, 16, nil, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatalf("run after disarm: %v", err)
	}
}

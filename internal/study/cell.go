package study

import (
	"fmt"
	"strings"

	"smtflex/internal/config"
	"smtflex/internal/interval"
	"smtflex/internal/metrics"
	"smtflex/internal/workload"
)

// The cell layer: a sweep decomposed into its independently evaluable
// (thread count, mix) cells, with canonical content keys. This is the unit
// the cluster fabric (internal/cluster) shards across workers; keeping the
// decomposition, the per-cell evaluation (EvaluateMixCtx) and the
// reassembly (AssembleSweep) in this package guarantees a distributed sweep
// is built from exactly the code paths the single-process engine uses — the
// basis of the fleet's bit-identical-tables contract.

// SweepMixes materializes the sweep grid for a workload kind: mixes[n] lists
// the mixes evaluated at thread count n (1-based; mixes[0] is nil), each
// inner list nMixes long. It errors if the mix count is not uniform across
// thread counts, the invariant the sweep tables are indexed by.
func (s *Study) SweepMixes(k Kind) (mixes [][]workload.Mix, nMixes int, err error) {
	nMixes = len(s.mixesAt(k, 1))
	mixes = make([][]workload.Mix, MaxThreads+1)
	for n := 1; n <= MaxThreads; n++ {
		mixes[n] = s.mixesAt(k, n)
		if len(mixes[n]) != nMixes {
			return nil, 0, fmt.Errorf("study: mix count changed from %d to %d at n=%d", nMixes, len(mixes[n]), n)
		}
	}
	return mixes, nMixes, nil
}

// CellKey returns the canonical content key of one sweep cell: every input
// that determines the cell's result — the design's configuration (name, SMT,
// bandwidth), the workload kind, the model options, the profiling length,
// the thread count and the mix's exact program list — rendered in a fixed
// field order with no map iteration or pointer identity, so independent
// processes derive identical keys. memo.KeyHash(CellKey(...)) is the
// fleet-wide content address of the cell's result.
func (s *Study) CellKey(d config.Design, k Kind, n int, mix workload.Mix) string {
	return fmt.Sprintf("%s|uops=%d|n=%d|progs=%s",
		s.sweepKey(d, k), s.profileUops(), n, strings.Join(mix.Programs, ","))
}

// Fingerprint summarizes the engine configuration that must match across a
// fleet for cell results to be interchangeable: profiling length, mix
// construction parameters and model options. A worker rejects cells from a
// coordinator whose fingerprint differs from its own, turning a
// misconfigured fleet into a loud error instead of silently mixed tables.
func (s *Study) Fingerprint() string {
	return fmt.Sprintf("uops=%d|mixes=%d|seed=%d|model=%+v",
		s.profileUops(), s.MixesPerCount, s.Seed, s.Model)
}

// profileUops returns the profiling source's measurement length, the
// engine-side knob that changes every profile (and so every result).
func (s *Study) profileUops() uint64 {
	if s.Src == nil {
		return 0
	}
	return s.Src.UopCount
}

// AssembleSweep builds the sweep tables from the per-cell results, exactly
// as the single-process engine does: results[n-1][mi] is the evaluation of
// mixes[n][mi]. Both the local pool path and the cluster coordinator feed
// this one function, so reassembled distributed sweeps are bit-for-bit
// identical to local ones by construction.
func AssembleSweep(d config.Design, k Kind, mixes [][]workload.Mix, results [][]MixResult) (*Sweep, error) {
	nMixes := len(mixes[1])
	sw := &Sweep{Design: d, Kind: k}
	sw.ByMix = make([][MaxThreads]float64, nMixes)
	for _, m := range mixes[1] {
		name := m.ID
		if k == Homogeneous {
			name = m.Programs[0]
		}
		sw.MixNames = append(sw.MixNames, name)
	}

	sw.SolverConverged = true
	for n := 1; n <= MaxThreads; n++ {
		stps := make([]float64, nMixes)
		antts := make([]float64, nMixes)
		watts := make([]float64, nMixes)
		var stackSum interval.CPIStack
		var stackCount int
		for mi := 0; mi < nMixes; mi++ {
			r := results[n-1][mi]
			stps[mi] = r.STP
			antts[mi] = r.ANTT
			watts[mi] = r.Watts
			sw.ByMix[mi][n-1] = r.STP
			for _, th := range r.Threads {
				stackSum.Base += th.Stack.Base
				stackSum.Branch += th.Stack.Branch
				stackSum.ICache += th.Stack.ICache
				stackSum.L2 += th.Stack.L2
				stackSum.LLC += th.Stack.LLC
				stackSum.Mem += th.Stack.Mem
				stackCount++
			}
			if r.Diag.Iterations > sw.SolverIterations {
				sw.SolverIterations = r.Diag.Iterations
			}
			if r.Diag.Residual > sw.SolverResidual {
				sw.SolverResidual = r.Diag.Residual
			}
			sw.SolverConverged = sw.SolverConverged && r.Diag.Converged
		}
		if stackCount > 0 {
			inv := 1 / float64(stackCount)
			sw.MeanStack[n-1] = interval.CPIStack{
				Base: stackSum.Base * inv, Branch: stackSum.Branch * inv,
				ICache: stackSum.ICache * inv, L2: stackSum.L2 * inv,
				LLC: stackSum.LLC * inv, Mem: stackSum.Mem * inv,
			}
		}
		h, err := metrics.HarmonicMean(stps)
		if err != nil {
			return nil, err
		}
		sw.STP[n-1] = h
		sw.ANTT[n-1] = metrics.Mean(antts)
		sw.Watts[n-1] = metrics.Mean(watts)
	}
	return sw, nil
}

// SweepKey exposes the sweep's cache key for layers that coalesce whole
// sweeps outside this package (the cluster coordinator's sweep cache).
func (s *Study) SweepKey(d config.Design, k Kind) string { return s.sweepKey(d, k) }

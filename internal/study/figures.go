package study

import (
	"context"

	"fmt"

	"smtflex/internal/config"
	"smtflex/internal/dist"
	"smtflex/internal/metrics"
	"smtflex/internal/parallel"
)

// threadCols returns "1".."24" column headers.
func threadCols() []string {
	cols := make([]string, MaxThreads)
	for i := range cols {
		cols[i] = fmt.Sprintf("%d", i+1)
	}
	return cols
}

// designNames lists the nine designs in the paper's order.
func designNames() []string {
	names := make([]string, 0, 9)
	for _, d := range config.NineDesigns(true) {
		names = append(names, d.Name)
	}
	return names
}

// sweepAll evaluates independent designs on the worker pool and returns
// their sweeps in input order.
func (s *Study) sweepAll(ctx context.Context, designs []config.Design, k Kind) ([]*Sweep, error) {
	sweeps := make([]*Sweep, len(designs))
	err := runIndexed(ctx, s.workers(), len(designs), s.poolQueue, func(ctx context.Context, i int) error {
		sw, err := s.SweepDesign(ctx, designs[i], k)
		sweeps[i] = sw
		return err
	})
	if err != nil {
		return nil, err
	}
	return sweeps, nil
}

// Table1 returns the three core configurations (a machine-readable Table 1).
func Table1() *Table {
	rows := []string{"width", "rob", "smt_contexts", "l1i_kb", "l1d_kb", "l2_kb", "ooo", "freq_ghz"}
	cols := []string{"big", "medium", "small"}
	t := NewTable("Table 1: big, medium and small core configurations", rows, cols)
	for c, ct := range []config.CoreType{config.Big, config.Medium, config.Small} {
		cc := config.CoreOfType(ct)
		ooo := 0.0
		if cc.OutOfOrder {
			ooo = 1
		}
		vals := []float64{
			float64(cc.Width), float64(cc.ROBSize), float64(cc.SMTContexts),
			float64(cc.L1I.SizeBytes) / 1024, float64(cc.L1D.SizeBytes) / 1024,
			float64(cc.L2.SizeBytes) / 1024, ooo, cc.FrequencyGHz,
		}
		for r, v := range vals {
			t.Set(r, c, v)
		}
	}
	t.Precision = 2
	return t
}

// Figure2 returns the composition of the nine power-equivalent designs.
func Figure2() *Table {
	t := NewTable("Figure 2: the nine power-equivalent multi-core designs",
		designNames(), []string{"big", "medium", "small", "hw_threads"})
	for r, d := range config.NineDesigns(true) {
		t.Set(r, 0, float64(d.CountOfType(config.Big)))
		t.Set(r, 1, float64(d.CountOfType(config.Medium)))
		t.Set(r, 2, float64(d.CountOfType(config.Small)))
		t.Set(r, 3, float64(d.HardwareThreads()))
	}
	t.Precision = 0
	return t
}

// Figure1 returns the distribution of active thread counts for each
// multi-threaded application running 20 threads on a twenty-core processor,
// bucketed as in the paper's legend.
func (s *Study) Figure1(ctx context.Context) (*Table, error) {
	buckets := []string{"1", "2", "3", "4", "5", "6-10", "11-15", "16-19", "20"}
	apps := parallel.AppNames()
	t := NewTable("Figure 1: distribution of active thread counts (PARSEC-like, 20 threads on 20 cores)", apps, buckets)
	d, err := config.DesignByName("20s", false)
	if err != nil {
		return nil, err
	}
	resByApp := make([]parallel.Result, len(apps))
	err = runIndexed(ctx, s.workers(), len(apps), s.poolQueue, func(_ context.Context, r int) error {
		app, err := parallel.AppByName(apps[r])
		if err != nil {
			return err
		}
		resByApp[r], err = parallel.Evaluate(app, d, 20, s.Src)
		return err
	})
	if err != nil {
		return nil, err
	}
	for r := range apps {
		res := resByApp[r]
		for k := 1; k <= 24; k++ {
			frac := res.Active[k-1]
			var b int
			switch {
			case k <= 5:
				b = k - 1
			case k <= 10:
				b = 5
			case k <= 15:
				b = 6
			case k <= 19:
				b = 7
			default:
				b = 8
			}
			t.Cells[r][b] += frac
		}
	}
	return t, nil
}

// Figure3 returns average STP versus thread count for the nine designs with
// SMT enabled, for the given workload kind ((a) homogeneous,
// (b) heterogeneous).
func (s *Study) Figure3(ctx context.Context, k Kind) (*Table, error) {
	t := NewTable(fmt.Sprintf("Figure 3%s: STP vs thread count, SMT, %s workloads", sub(k), k),
		designNames(), threadCols())
	sweeps, err := s.sweepAll(ctx, config.NineDesigns(true), k)
	if err != nil {
		return nil, err
	}
	for r, sw := range sweeps {
		for n := 1; n <= MaxThreads; n++ {
			t.Set(r, n-1, sw.STP[n-1])
		}
	}
	return t, nil
}

func sub(k Kind) string {
	if k == Homogeneous {
		return "a"
	}
	return "b"
}

// Figure4 returns per-benchmark STP versus thread count for the named
// benchmark's homogeneous workload (the paper shows tonto and libquantum).
func (s *Study) Figure4(ctx context.Context, bench string) (*Table, error) {
	t := NewTable(fmt.Sprintf("Figure 4: STP vs thread count, homogeneous %s workload", bench),
		designNames(), threadCols())
	sweeps, err := s.sweepAll(ctx, config.NineDesigns(true), Homogeneous)
	if err != nil {
		return nil, err
	}
	for r, sw := range sweeps {
		mi := -1
		for i, name := range sw.MixNames {
			if name == bench {
				mi = i
				break
			}
		}
		if mi < 0 {
			return nil, fmt.Errorf("study: benchmark %q not in sweep", bench)
		}
		for n := 1; n <= MaxThreads; n++ {
			t.Set(r, n-1, sw.ByMix[mi][n-1])
		}
	}
	return t, nil
}

// Figure5 returns average ANTT versus thread count for the nine SMT designs
// with homogeneous workloads.
func (s *Study) Figure5(ctx context.Context) (*Table, error) {
	t := NewTable("Figure 5: ANTT vs thread count, SMT, homogeneous workloads",
		designNames(), threadCols())
	sweeps, err := s.sweepAll(ctx, config.NineDesigns(true), Homogeneous)
	if err != nil {
		return nil, err
	}
	for r, sw := range sweeps {
		for n := 1; n <= MaxThreads; n++ {
			t.Set(r, n-1, sw.ANTT[n-1])
		}
	}
	return t, nil
}

// uniformAverages fills a designs × {homogeneous,heterogeneous} table of
// uniform-distribution average STP for the given design list.
func (s *Study) uniformAverages(ctx context.Context, title string, designs []config.Design) (*Table, error) {
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.Name
	}
	t := NewTable(title, names, []string{"homogeneous", "heterogeneous"})
	u := dist.Uniform()
	kinds := []Kind{Homogeneous, Heterogeneous}
	vals := make([]float64, len(designs)*len(kinds))
	err := runIndexed(ctx, s.workers(), len(vals), s.poolQueue, func(ctx context.Context, i int) error {
		d, k := designs[i/len(kinds)], kinds[i%len(kinds)]
		sw, err := s.SweepDesign(ctx, d, k)
		if err != nil {
			return err
		}
		vals[i], err = DistributionSTP(sw, u)
		return err
	})
	if err != nil {
		return nil, err
	}
	for r := range designs {
		for c := range kinds {
			t.Set(r, c, vals[r*len(kinds)+c])
		}
	}
	return t, nil
}

// Figure6 returns uniform-distribution average STP with SMT disabled
// everywhere (threads beyond core count time-share).
func (s *Study) Figure6(ctx context.Context) (*Table, error) {
	return s.uniformAverages(ctx, "Figure 6: average STP, uniform thread-count distribution, no SMT",
		config.NineDesigns(false))
}

// Figure7 returns uniform-distribution average STP with SMT only in the
// homogeneous designs (4B, 8m, 20s).
func (s *Study) Figure7(ctx context.Context) (*Table, error) {
	return s.uniformAverages(ctx, "Figure 7: average STP, uniform distribution, SMT in homogeneous designs only",
		config.HomogeneousOnlySMT())
}

// Figure8 returns uniform-distribution average STP with SMT in all designs.
func (s *Study) Figure8(ctx context.Context) (*Table, error) {
	return s.uniformAverages(ctx, "Figure 8: average STP, uniform distribution, SMT in all designs",
		config.NineDesigns(true))
}

// Figure9 returns per-benchmark uniform-distribution average STP
// (homogeneous workloads, SMT everywhere): benchmarks × designs.
func (s *Study) Figure9(ctx context.Context) (*Table, error) {
	designs := config.NineDesigns(true)
	var t *Table
	u := dist.Uniform()
	sweeps, err := s.sweepAll(ctx, designs, Homogeneous)
	if err != nil {
		return nil, err
	}
	for c, sw := range sweeps {
		if t == nil {
			t = NewTable("Figure 9: per-benchmark average STP, uniform distribution, SMT in all designs",
				sw.MixNames, designNames())
		}
		for r := range sw.MixNames {
			weights := make([]float64, MaxThreads)
			for n := 1; n <= MaxThreads; n++ {
				weights[n-1] = u.Weight(n)
			}
			v, err := metrics.WeightedHarmonicMean(sw.ByMix[r][:], weights)
			if err != nil {
				return nil, err
			}
			t.Set(r, c, v)
		}
	}
	return t, nil
}

// Figure10 returns average STP under the datacenter and mirrored-datacenter
// distributions for heterogeneous workloads, with and without SMT:
// designs × {datacenter/noSMT, datacenter/SMT, mirrored/noSMT, mirrored/SMT}.
func (s *Study) Figure10(ctx context.Context) (*Table, error) {
	t := NewTable("Figure 10b: average STP under datacenter distributions, heterogeneous workloads",
		designNames(), []string{"dc_noSMT", "dc_SMT", "mirror_noSMT", "mirror_SMT"})
	for c, setup := range []struct {
		d   dist.Distribution
		smt bool
	}{
		{dist.Datacenter(), false},
		{dist.Datacenter(), true},
		{dist.MirroredDatacenter(), false},
		{dist.MirroredDatacenter(), true},
	} {
		sweeps, err := s.sweepAll(ctx, config.NineDesigns(setup.smt), Heterogeneous)
		if err != nil {
			return nil, err
		}
		for r, sw := range sweeps {
			v, err := DistributionSTP(sw, setup.d)
			if err != nil {
				return nil, err
			}
			t.Set(r, c, v)
		}
	}
	return t, nil
}

// Figure10a returns the datacenter thread-count distribution itself.
func Figure10a() *Table {
	t := NewTable("Figure 10a: datacenter active-thread-count distribution",
		[]string{"probability"}, threadCols())
	d := dist.Datacenter()
	for n := 1; n <= MaxThreads; n++ {
		t.Set(0, n-1, d.Weight(n))
	}
	return t
}

// Figure13 compares the 4B SMT design against the ideal dynamic multi-core
// (best of the nine designs at every thread count and workload), with and
// without SMT: rows × thread counts.
func (s *Study) Figure13(ctx context.Context, k Kind) (*Table, error) {
	t := NewTable(fmt.Sprintf("Figure 13%s: 4B with SMT vs ideal dynamic multi-core, %s workloads", sub(k), k),
		[]string{"4B_SMT", "dynamic_noSMT", "dynamic_SMT"}, threadCols())

	fourB, err := config.DesignByName("4B", true)
	if err != nil {
		return nil, err
	}
	sw4, err := s.SweepDesign(ctx, fourB, k)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= MaxThreads; n++ {
		t.Set(0, n-1, sw4.STP[n-1])
	}

	for row, smt := range map[int]bool{1: false, 2: true} {
		sweeps, err := s.sweepAll(ctx, config.NineDesigns(smt), k)
		if err != nil {
			return nil, err
		}
		nMixes := len(sweeps[0].ByMix)
		for n := 1; n <= MaxThreads; n++ {
			best := make([]float64, nMixes)
			for mi := 0; mi < nMixes; mi++ {
				for _, sw := range sweeps {
					if v := sw.ByMix[mi][n-1]; v > best[mi] {
						best[mi] = v
					}
				}
			}
			h, err := metrics.HarmonicMean(best)
			if err != nil {
				return nil, err
			}
			t.Set(row, n-1, h)
		}
	}
	return t, nil
}

// Figure14 returns average chip power (gated) versus thread count for the
// nine SMT designs with homogeneous workloads.
func (s *Study) Figure14(ctx context.Context) (*Table, error) {
	t := NewTable("Figure 14: power (W) vs thread count, power gating, SMT, homogeneous workloads",
		designNames(), threadCols())
	t.Precision = 1
	sweeps, err := s.sweepAll(ctx, config.NineDesigns(true), Homogeneous)
	if err != nil {
		return nil, err
	}
	for r, sw := range sweeps {
		for n := 1; n <= MaxThreads; n++ {
			t.Set(r, n-1, sw.Watts[n-1])
		}
	}
	return t, nil
}

// Figure15 returns throughput, power, normalized energy and normalized EDP
// for the nine SMT designs under a uniform distribution with heterogeneous
// workloads. Energy and EDP are normalized to the 4B design.
func (s *Study) Figure15(ctx context.Context) (*Table, error) {
	t := NewTable("Figure 15: throughput vs power and energy, heterogeneous workloads, uniform distribution",
		designNames(), []string{"STP", "watts", "energy_norm", "edp_norm"})
	u := dist.Uniform()
	type pp struct{ stp, w float64 }
	sweeps, err := s.sweepAll(ctx, config.NineDesigns(true), Heterogeneous)
	if err != nil {
		return nil, err
	}
	vals := make([]pp, 0, 9)
	for _, sw := range sweeps {
		stp, err := DistributionSTP(sw, u)
		if err != nil {
			return nil, err
		}
		w, err := DistributionWatts(sw, u)
		if err != nil {
			return nil, err
		}
		vals = append(vals, pp{stp, w})
	}
	ref := vals[0] // 4B is first
	refEnergy := ref.w / ref.stp
	refEDP := ref.w / (ref.stp * ref.stp)
	for r, v := range vals {
		t.Set(r, 0, v.stp)
		t.Set(r, 1, v.w)
		t.Set(r, 2, (v.w/v.stp)/refEnergy)
		t.Set(r, 3, (v.w/(v.stp*v.stp))/refEDP)
	}
	return t, nil
}

package study

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/machstats"
)

// TestSweepBitIdenticalWithMachstats is the machine-counter layer's
// correctness contract: arming machstats must not change a single bit of the
// engine's output. Two cold studies sweep the same design, one dark and one
// with counters armed, and the tables must agree exactly; the armed run must
// also have populated interval CPI-stack records and solver counters.
func TestSweepBitIdenticalWithMachstats(t *testing.T) {
	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}

	machstats.Disable()
	dark := newEngineStudy(4)
	swDark, err := dark.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}

	machstats.Reset()
	machstats.Enable()
	t.Cleanup(machstats.Disable)
	armed := newEngineStudy(4)
	swArmed, err := armed.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}

	if fmt.Sprintf("%+v", swDark) != fmt.Sprintf("%+v", swArmed) {
		t.Fatal("sweep tables differ with machstats enabled")
	}

	snap := machstats.Default().Snapshot()
	if len(snap.Stacks) == 0 {
		t.Fatal("no CPI-stack records after armed sweep")
	}
	sawInterval := false
	for _, rec := range snap.Stacks {
		if rec.Engine == "interval" && rec.Design == d.Name {
			sawInterval = true
			break
		}
	}
	if !sawInterval {
		t.Errorf("no interval-engine stack record for %s in %d records", d.Name, len(snap.Stacks))
	}
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["interval.solver.solves"] == 0 {
		t.Errorf("interval.solver.solves counter empty; counters: %+v", snap.Counters)
	}
	if counters["interval.threads_solved"] == 0 {
		t.Errorf("interval.threads_solved counter empty; counters: %+v", snap.Counters)
	}
}

// TestSweepMeanStackConsistent checks the sweep-level mean CPI stacks: they
// are populated at every thread count and identical between the serial and
// parallel engines (MeanStack is part of the Sweep, so the bit-identical
// engine contract covers it — this pins it explicitly).
func TestSweepMeanStackConsistent(t *testing.T) {
	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}
	serial := newEngineStudy(1)
	swS, err := serial.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	par := newEngineStudy(8)
	swP, err := par.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= MaxThreads; n++ {
		if swS.MeanStack[n-1].Total() <= 0 {
			t.Fatalf("n=%d: empty mean stack: %+v", n, swS.MeanStack[n-1])
		}
		if swS.MeanStack[n-1] != swP.MeanStack[n-1] {
			t.Fatalf("n=%d: serial and parallel mean stacks differ:\n%+v\n%+v",
				n, swS.MeanStack[n-1], swP.MeanStack[n-1])
		}
	}
}

// TestMixResultThreads checks the per-thread detail on a single evaluation:
// one entry per program, placement within range, and a stack whose components
// sum to a positive CPI consistent with the thread's IPC.
func TestMixResultThreads(t *testing.T) {
	d, err := config.DesignByName("4B", true)
	if err != nil {
		t.Fatal(err)
	}
	s := newEngineStudy(1)
	mixes := s.mixesAt(Heterogeneous, 3)
	r, err := s.EvaluateMix(d, mixes[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Threads) != 3 {
		t.Fatalf("got %d thread records, want 3", len(r.Threads))
	}
	for i, th := range r.Threads {
		if th.Program != mixes[0].Programs[i] {
			t.Errorf("thread %d: program %q, want %q", i, th.Program, mixes[0].Programs[i])
		}
		if th.Core < 0 || th.Core >= d.NumCores() {
			t.Errorf("thread %d: core %d out of range [0,%d)", i, th.Core, d.NumCores())
		}
		total := th.Stack.Total()
		if total <= 0 {
			t.Errorf("thread %d: non-positive stack total %g", i, total)
		}
		if th.IPC <= 0 || th.UopsPerNs <= 0 {
			t.Errorf("thread %d: non-positive rates IPC=%g uops/ns=%g", i, th.IPC, th.UopsPerNs)
		}
	}
}

// TestSweepProgressHook checks the pool's progress hook: it fires for every
// task of a sweep, the final call reports (total, total), and — because the
// sweep cache detaches contexts — the hook survives the SweepDesign cache
// boundary. Both engines are exercised.
func TestSweepProgressHook(t *testing.T) {
	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		s := newEngineStudy(workers)
		var mu sync.Mutex
		var calls int
		var lastDone, lastTotal int
		maxDone := 0
		ctx := WithProgress(context.Background(), func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			lastDone, lastTotal = done, total
			if done > maxDone {
				maxDone = done
			}
		})
		if _, err := s.SweepDesign(ctx, d, Heterogeneous); err != nil {
			t.Fatal(err)
		}
		want := MaxThreads * s.MixesPerCount
		mu.Lock()
		if calls != want {
			t.Errorf("workers=%d: %d progress calls, want %d", workers, calls, want)
		}
		if maxDone != want || lastTotal != want {
			t.Errorf("workers=%d: final progress %d/%d (max %d), want %d/%d",
				workers, lastDone, lastTotal, maxDone, want, want)
		}
		mu.Unlock()

		// A cache hit recomputes nothing, so the hook must stay silent.
		calls = 0
		if _, err := s.SweepDesign(ctx, d, Heterogeneous); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if calls != 0 {
			t.Errorf("workers=%d: progress hook fired %d times on a cache hit", workers, calls)
		}
		mu.Unlock()
	}
}

package study

import (
	"context"

	"fmt"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/dist"
	"smtflex/internal/sched"
)

// The ablation studies quantify the modelling decisions DESIGN.md calls
// out: SMT issue efficiency, allocation-weighted LLC partitioning, memory
// queueing and window-dependent visible latency. Each ablation re-runs the
// Figure 8 experiment (uniform-distribution average STP with SMT
// everywhere) under an alternative model, sharing this study's profile
// source so only the solver mechanism changes.

// withModel returns a Study that shares this study's profiles and workload
// construction but solves with model m. Solo rates are model-independent
// (they come from contention.Solve on the default model), so the derived
// study shares the solo cache rather than recomputing identical rates; the
// sweep cache is shared too because its keys include the model.
func (s *Study) withModel(m contention.Model) *Study {
	alt := New(s.Src)
	alt.MixesPerCount = s.MixesPerCount
	alt.Seed = s.Seed
	alt.Model = m
	alt.Parallelism = s.Parallelism
	alt.solo = s.solo
	alt.sweeps = s.sweeps
	alt.solverIters = s.solverIters
	alt.poolQueue = s.poolQueue
	return alt
}

// fig8Row computes the uniform-average STP of one design for both kinds.
func (s *Study) fig8Row(ctx context.Context, d config.Design) (homog, heterog float64, err error) {
	u := dist.Uniform()
	for i, k := range []Kind{Homogeneous, Heterogeneous} {
		sw, err := s.SweepDesign(ctx, d, k)
		if err != nil {
			return 0, 0, err
		}
		v, err := DistributionSTP(sw, u)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			homog = v
		} else {
			heterog = v
		}
	}
	return homog, heterog, nil
}

// AblationSMTEfficiency sweeps the SMT issue-efficiency constant and
// reports the uniform-average STP of 4B and of the best heterogeneous
// design at each value: rows = efficiency settings.
func (s *Study) AblationSMTEfficiency(ctx context.Context) (*Table, error) {
	effs := []float64{0.80, 0.90, 0.97, 1.00}
	rows := make([]string, len(effs))
	for i, e := range effs {
		rows[i] = fmt.Sprintf("eff=%.2f", e)
	}
	t := NewTable("Ablation: SMT issue efficiency (uniform-average STP)",
		rows, []string{"4B_homog", "4B_heterog", "best_heterog_design"})
	for r, e := range effs {
		alt := s.withModel(contention.Model{IssueEfficiency: e})
		fourB, err := config.DesignByName("4B", true)
		if err != nil {
			return nil, err
		}
		h, het, err := alt.fig8Row(ctx, fourB)
		if err != nil {
			return nil, err
		}
		t.Set(r, 0, h)
		t.Set(r, 1, het)
		var hetero []config.Design
		for _, d := range config.NineDesigns(true) {
			if d.Name == "4B" || d.Name == "8m" || d.Name == "20s" {
				continue
			}
			hetero = append(hetero, d)
		}
		vals := make([]float64, len(hetero))
		err = runIndexed(ctx, alt.workers(), len(hetero), alt.poolQueue, func(ctx context.Context, i int) error {
			_, v, err := alt.fig8Row(ctx, hetero[i])
			vals[i] = v
			return err
		})
		if err != nil {
			return nil, err
		}
		best := 0.0
		for _, v := range vals {
			if v > best {
				best = v
			}
		}
		t.Set(r, 2, best)
	}
	return t, nil
}

// ablationFig8 recomputes Figure 8 under an alternative model.
func (s *Study) ablationFig8(ctx context.Context, title string, m contention.Model) (*Table, error) {
	alt := s.withModel(m)
	return alt.uniformAverages(ctx, title, config.NineDesigns(true))
}

// AblationLLCPolicy compares allocation-weighted LLC partitioning against
// an equal split.
func (s *Study) AblationLLCPolicy(ctx context.Context) (*Table, error) {
	weighted, err := s.Figure8(ctx)
	if err != nil {
		return nil, err
	}
	equal, err := s.ablationFig8(ctx, "equal", contention.Model{EqualLLCShares: true})
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: LLC partitioning policy (uniform-average STP)",
		weighted.Rows, []string{"weighted_homog", "weighted_heterog", "equal_homog", "equal_heterog"})
	for r := range t.Rows {
		t.Set(r, 0, weighted.Get(r, 0))
		t.Set(r, 1, weighted.Get(r, 1))
		t.Set(r, 2, equal.Get(r, 0))
		t.Set(r, 3, equal.Get(r, 1))
	}
	return t, nil
}

// AblationQueueing compares the M/D/1 bus/bank queueing model against a
// fixed (uncontended) memory latency; without queueing the bandwidth-bound
// flattening of Figure 4(b) disappears and every design speeds up.
func (s *Study) AblationQueueing(ctx context.Context) (*Table, error) {
	queued, err := s.Figure8(ctx)
	if err != nil {
		return nil, err
	}
	fixed, err := s.ablationFig8(ctx, "fixed", contention.Model{FixedMemLatency: true})
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: memory queueing (uniform-average STP)",
		queued.Rows, []string{"queued_homog", "queued_heterog", "fixed_homog", "fixed_heterog"})
	for r := range t.Rows {
		t.Set(r, 0, queued.Get(r, 0))
		t.Set(r, 1, queued.Get(r, 1))
		t.Set(r, 2, fixed.Get(r, 0))
		t.Set(r, 3, fixed.Get(r, 1))
	}
	return t, nil
}

// AblationWindowVisible compares the window-dependent visible-latency
// fraction against a flat fraction: with a flat fraction, deep SMT no
// longer exposes additional memory latency, inflating 4B at high counts.
func (s *Study) AblationWindowVisible(ctx context.Context) (*Table, error) {
	fourB, err := config.DesignByName("4B", true)
	if err != nil {
		return nil, err
	}
	t := NewTable("Ablation: window-dependent visible latency (4B homogeneous STP by thread count)",
		[]string{"window_dependent", "flat"}, threadCols())
	sw, err := s.SweepDesign(ctx, fourB, Homogeneous)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= MaxThreads; n++ {
		t.Set(0, n-1, sw.STP[n-1])
	}
	alt := s.withModel(contention.Model{FlatVisible: true})
	swf, err := alt.SweepDesign(ctx, fourB, Homogeneous)
	if err != nil {
		return nil, err
	}
	for n := 1; n <= MaxThreads; n++ {
		t.Set(1, n-1, swf.STP[n-1])
	}
	return t, nil
}

// AblationScheduler validates the greedy placement heuristic against the
// exhaustive local-search refinement (the paper's offline best-schedule
// analysis): rows = (design, thread count), cols = {greedy, refined,
// improvement %}. Small improvements mean the cheap heuristic used by all
// sweeps is close to the offline optimum.
func (s *Study) AblationScheduler(ctx context.Context) (*Table, error) {
	designs := []string{"4B", "3B5s"}
	counts := []int{8, 16, 24}
	var rows []string
	for _, dn := range designs {
		for _, n := range counts {
			rows = append(rows, fmt.Sprintf("%s_n%d", dn, n))
		}
	}
	t := NewTable("Ablation: greedy vs refined offline scheduling (chip throughput, µops/ns)",
		rows, []string{"greedy", "refined", "gain_pct"})

	r := 0
	for _, dn := range designs {
		d, err := config.DesignByName(dn, true)
		if err != nil {
			return nil, err
		}
		for _, n := range counts {
			mix := s.mixesAt(Heterogeneous, n)[0]
			greedyPl, err := sched.Place(d, mix, s.Src)
			if err != nil {
				return nil, err
			}
			res, err := contention.Solve(greedyPl)
			if err != nil {
				return nil, err
			}
			var greedy float64
			for _, th := range res.Threads {
				greedy += th.UopsPerNs
			}
			_, refined, err := sched.PlaceRefined(d, mix, s.Src, sched.RefineBudget{MaxPasses: 1})
			if err != nil {
				return nil, err
			}
			t.Set(r, 0, greedy)
			t.Set(r, 1, refined)
			t.Set(r, 2, 100*(refined-greedy)/greedy)
			r++
		}
	}
	return t, nil
}

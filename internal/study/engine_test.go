package study

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/profiler"
)

// newEngineStudy builds a small-fidelity Study for engine tests: reduced
// UopCount and mix count keep the full campaign cheap enough to run twice.
func newEngineStudy(parallelism int) *Study {
	s := New(profiler.NewSource(20_000))
	s.MixesPerCount = 2
	s.Parallelism = parallelism
	return s
}

// TestParallelMatchesSerial is the engine's determinism contract: the
// parallel engine must produce bit-for-bit identical tables to the serial
// one, from cold caches, for a sweep and for a whole figure.
func TestParallelMatchesSerial(t *testing.T) {
	serial := newEngineStudy(1)
	parallel := newEngineStudy(8)

	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}
	swSerial, err := serial.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	swParallel, err := parallel.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", swSerial) != fmt.Sprintf("%+v", swParallel) {
		t.Fatal("parallel sweep differs from serial sweep")
	}

	figSerial, err := serial.Figure8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	figParallel, err := parallel.Figure8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if figSerial.String() != figParallel.String() {
		t.Fatalf("parallel fig8 differs from serial fig8:\nserial:\n%s\nparallel:\n%s", figSerial, figParallel)
	}
	if figSerial.CSV() != figParallel.CSV() {
		t.Fatal("parallel fig8 CSV differs from serial")
	}
}

// TestSweepConcurrentMissesComputeOnce is the stampede regression test for
// the sweep cache: concurrent SweepDesign calls for one key compute once.
func TestSweepConcurrentMissesComputeOnce(t *testing.T) {
	s := newEngineStudy(0)
	d, err := config.DesignByName("20s", true)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	sweeps := make([]*Sweep, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sw, err := s.SweepDesign(context.Background(), d, Homogeneous)
			if err != nil {
				t.Error(err)
			}
			sweeps[g] = sw
		}(g)
	}
	wg.Wait()
	if n := s.sweepComputes.Load(); n != 1 {
		t.Errorf("%d sweep computations for one key under concurrent access, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if sweeps[g] != sweeps[0] {
			t.Fatalf("goroutine %d got a different sweep pointer", g)
		}
	}
}

// TestSoloRateConcurrentMissesComputeOnce covers the solo-rate cache.
func TestSoloRateConcurrentMissesComputeOnce(t *testing.T) {
	s := newEngineStudy(0)
	const goroutines = 8
	rates := make([]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := s.SoloRate("mcf")
			if err != nil {
				t.Error(err)
			}
			rates[g] = r
		}(g)
	}
	wg.Wait()
	if n := s.soloComputes.Load(); n != 1 {
		t.Errorf("%d solo-rate computations for one benchmark, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if rates[g] != rates[0] {
			t.Fatalf("goroutine %d got rate %g, first got %g", g, rates[g], rates[0])
		}
	}
}

// TestWithModelSharesSoloCache is the ablation-cache regression test: a
// model-derived Study must reuse the parent's model-independent solo rates
// instead of recomputing them.
func TestWithModelSharesSoloCache(t *testing.T) {
	s := newEngineStudy(0)
	parent, err := s.SoloRate("tonto")
	if err != nil {
		t.Fatal(err)
	}
	alt := s.withModel(contention.Model{EqualLLCShares: true})
	derived, err := alt.SoloRate("tonto")
	if err != nil {
		t.Fatal(err)
	}
	if derived != parent {
		t.Fatalf("derived study solo rate %g != parent %g", derived, parent)
	}
	if n := alt.soloComputes.Load(); n != 0 {
		t.Errorf("derived study recomputed %d solo rates despite warm shared cache", n)
	}
	if alt.Parallelism != s.Parallelism {
		t.Error("derived study dropped the parallelism setting")
	}
}

func TestSoloRateUnknownBenchmark(t *testing.T) {
	s := newEngineStudy(0)
	if _, err := s.SoloRate("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The failure is not cached: the entry must not block later misses.
	if _, err := s.SoloRate("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted on retry")
	}
}

// --- runIndexed unit tests ---

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		seen := make([]int32, n)
		err := runIndexed(context.Background(), workers, n, nil, func(_ context.Context, i int) error {
			seen[i]++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunIndexedZeroTasks(t *testing.T) {
	if err := runIndexed(context.Background(), 4, 0, nil, func(_ context.Context, _ int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexedPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := runIndexed(context.Background(), workers, 50, nil, func(_ context.Context, i int) error {
			if i == 17 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: got %v, want boom", workers, err)
		}
	}
}

func TestRunIndexedStopsAfterError(t *testing.T) {
	// After a failure the pool must stop handing out new indices; with the
	// serial fallback nothing past the failing index runs at all.
	ran := 0
	err := runIndexed(context.Background(), 1, 100, nil, func(_ context.Context, i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("serial: ran %d tasks (want 4), err %v", ran, err)
	}
}

func TestWorkersDefault(t *testing.T) {
	s := New(profiler.NewSource(20_000))
	if s.workers() < 1 {
		t.Fatalf("default workers = %d", s.workers())
	}
	s.Parallelism = 3
	if s.workers() != 3 {
		t.Fatalf("explicit workers = %d, want 3", s.workers())
	}
}

// --- context cancellation tests ---

func TestRunIndexedHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := 0
		err := runIndexed(ctx, workers, 50, nil, func(_ context.Context, i int) error { ran++; return nil })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a cancelled context", workers, ran)
		}
	}
}

func TestRunIndexedStopsMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := runIndexed(ctx, 2, 1000, nil, func(_ context.Context, i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d tasks ran despite mid-run cancellation", n)
	}
}

// TestSweepDesignCancellation: a cancelled sweep stops the engine, returns
// the context error, and leaves the cache unpoisoned so a retry recomputes.
func TestSweepDesignCancellation(t *testing.T) {
	s := newEngineStudy(2)
	d, err := config.DesignByName("20s", true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SweepDesign(ctx, d, Heterogeneous); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	// A live context recomputes from scratch — the aborted run is not cached.
	sw, err := s.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if sw.STP[0] <= 0 {
		t.Fatal("retried sweep has empty results")
	}
}

package study

import "context"

// ProgressFunc receives live engine progress: done of total pool tasks have
// finished. The pool invokes it from worker goroutines, so implementations
// must be safe for concurrent use; they must also be fast — the hook runs on
// the evaluation path and a slow hook stalls the pool. The hook observes
// progress only; it cannot influence results.
type ProgressFunc func(done, total int)

// progressKeyType keys the progress hook in a context.
type progressKeyType struct{}

// WithProgress returns a context carrying fn as the engine progress hook.
// SweepDesign forwards the hook of the caller that leads a (possibly
// coalesced) sweep computation into the pool, which calls it after every
// completed (thread count, mix) evaluation. A nil fn returns ctx unchanged.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressKeyType{}, fn)
}

// progressFrom extracts the progress hook from ctx, or nil.
func progressFrom(ctx context.Context) ProgressFunc {
	if ctx == nil {
		return nil
	}
	fn, _ := ctx.Value(progressKeyType{}).(ProgressFunc)
	return fn
}

// ProgressFrom exposes the context-carried progress hook to layers that run
// sweep cells outside this package's pool (the cluster coordinator), so a
// distributed sweep feeds the same live-progress surfaces as a local one.
func ProgressFrom(ctx context.Context) ProgressFunc { return progressFrom(ctx) }

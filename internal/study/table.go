package study

import (
	"fmt"
	"strings"
)

// Table is a labelled numeric grid: the output format of every experiment
// driver. It renders as an aligned text table (for the figures binary and
// the bench harness) or as CSV.
type Table struct {
	// Title describes the experiment (e.g. "Figure 3a: STP vs thread count").
	Title string
	// Cols are column headers.
	Cols []string
	// Rows are row headers.
	Rows []string
	// Cells[r][c] is the value at row r, column c.
	Cells [][]float64
	// Precision is the number of decimals to print (default 3).
	Precision int
}

// NewTable allocates a table with the given shape.
func NewTable(title string, rows, cols []string) *Table {
	cells := make([][]float64, len(rows))
	for i := range cells {
		cells[i] = make([]float64, len(cols))
	}
	return &Table{Title: title, Cols: cols, Rows: rows, Cells: cells, Precision: 3}
}

// Set stores a value.
func (t *Table) Set(r, c int, v float64) { t.Cells[r][c] = v }

// Get reads a value.
func (t *Table) Get(r, c int) float64 { return t.Cells[r][c] }

// Row returns the index of the named row, or -1.
func (t *Table) Row(name string) int {
	for i, r := range t.Rows {
		if r == name {
			return i
		}
	}
	return -1
}

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// String renders the aligned text table.
func (t *Table) String() string {
	prec := t.Precision
	if prec <= 0 {
		prec = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)

	rowW := len("row")
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := make([]int, len(t.Cols))
	for c, name := range t.Cols {
		colW[c] = len(name)
		for r := range t.Rows {
			w := len(fmt.Sprintf("%.*f", prec, t.Cells[r][c]))
			if w > colW[c] {
				colW[c] = w
			}
		}
	}
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for c, name := range t.Cols {
		fmt.Fprintf(&b, "  %*s", colW[c], name)
	}
	b.WriteByte('\n')
	for r, name := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowW, name)
		for c := range t.Cols {
			fmt.Fprintf(&b, "  %*.*f", colW[c], prec, t.Cells[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with headers.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for r, name := range t.Rows {
		b.WriteString(name)
		for c := range t.Cols {
			fmt.Fprintf(&b, ",%g", t.Cells[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ArgMaxRow returns the name of the row with the largest value in column c.
func (t *Table) ArgMaxRow(c int) string {
	best := 0
	for r := range t.Rows {
		if t.Cells[r][c] > t.Cells[best][c] {
			best = r
		}
	}
	return t.Rows[best]
}

package study

import (
	"context"
	"fmt"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/obs"
)

// TestSweepBitIdenticalWithTracing is the observability layer's correctness
// contract: arming tracing must not change a single bit of the engine's
// output. Two cold studies sweep the same design, one dark and one traced,
// and the tables must agree exactly; the traced run must also have produced
// spans at every engine boundary.
func TestSweepBitIdenticalWithTracing(t *testing.T) {
	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}

	obs.Disable()
	dark := newEngineStudy(4)
	swDark, err := dark.SweepDesign(context.Background(), d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}

	obs.Enable()
	t.Cleanup(obs.Disable)
	col := obs.NewCollector(1)
	ctx, root := obs.StartTrace(context.Background(), col, "sweep")
	traced := newEngineStudy(4)
	swTraced, err := traced.SweepDesign(ctx, d, Heterogeneous)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	if fmt.Sprintf("%+v", swDark) != fmt.Sprintf("%+v", swTraced) {
		t.Fatal("sweep tables differ with tracing enabled")
	}

	snap := col.Traces()[0].Snapshot()
	seen := map[string]int{}
	for _, s := range snap.Spans {
		seen[s.Name]++
	}
	for _, name := range []string{"study.sweep", "pool.task", "memo.get", "contention.solve", "profiler.profile"} {
		if seen[name] == 0 {
			t.Errorf("no %q span in traced sweep (saw %v)", name, seen)
		}
	}
	// Every pool task records how long it sat in the queue.
	for _, s := range snap.Spans {
		if s.Name != "pool.task" {
			continue
		}
		if _, ok := s.Attrs["queue_ns"]; !ok {
			t.Fatalf("pool.task span missing queue_ns attr: %+v", s)
		}
	}
	// The solver annotates convergence so time stacks can be read against
	// iteration counts.
	for _, s := range snap.Spans {
		if s.Name == "contention.solve" {
			if _, ok := s.Attrs["iterations"]; !ok {
				t.Fatalf("contention.solve span missing iterations attr: %+v", s)
			}
			break
		}
	}
}

// TestEngineHistogramsFill checks that a sweep feeds the daemon's two
// engine-level histograms: solver iterations and pool queue seconds.
func TestEngineHistogramsFill(t *testing.T) {
	iters := obs.NewHistogram([]float64{1, 8, 64, 512})
	queue := obs.NewHistogram([]float64{1e-6, 1e-3, 1})
	s := newEngineStudy(4)
	s.SetEngineHistograms(iters, queue)

	d, err := config.DesignByName("2B4m", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SweepDesign(context.Background(), d, Heterogeneous); err != nil {
		t.Fatal(err)
	}
	if got := iters.Snapshot(); got.Count == 0 || got.Sum <= 0 {
		t.Fatalf("solver-iterations histogram empty after sweep: %+v", got)
	}
	if got := queue.Snapshot(); got.Count == 0 {
		t.Fatalf("pool-queue histogram empty after sweep: %+v", got)
	}
}

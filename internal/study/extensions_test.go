package study

import "context"

import "testing"

func TestExtensionTurboBoost(t *testing.T) {
	s := sharedStudy()
	tab, err := s.ExtensionTurboBoost(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	base, boost, factor := tab.Row("4B"), tab.Row("4B_boost"), tab.Row("boost_factor")
	// Boost helps at low thread counts (idle cores' budget moves to the
	// active ones) and vanishes at full occupancy.
	if tab.Get(boost, 0) <= tab.Get(base, 0)*1.02 {
		t.Errorf("boost at 1 thread: %.3f vs %.3f — no gain", tab.Get(boost, 0), tab.Get(base, 0))
	}
	if f := tab.Get(factor, 0); f < 1.1 || f > 1.36 {
		t.Errorf("1-thread boost factor %.2f outside expected band", f)
	}
	if f := tab.Get(factor, 23); f > 1.15 {
		t.Errorf("24-thread boost factor %.2f, want near 1 (all cores active)", f)
	}
	// Boost never hurts.
	for n := 0; n < MaxThreads; n++ {
		if tab.Get(boost, n) < tab.Get(base, n)*0.99 {
			t.Errorf("boost hurt at %d threads: %.3f vs %.3f", n+1, tab.Get(boost, n), tab.Get(base, n))
		}
	}
}

func TestExtensionSerialBoost(t *testing.T) {
	s := sharedStudy()
	tab, err := s.ExtensionSerialBoost(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Running serial sections unthrottled (SMT co-runners resident) always
	// costs whole-program time; the cost is largest for the most serial
	// application in the list.
	for r, name := range tab.Rows {
		v := tab.Get(r, 1)
		if v < 1 {
			t.Errorf("%s: unthrottled serial section faster than throttled (%.3f)", name, v)
		}
		// The congested serial rate combines 6-way SMT sharing with bus
		// saturation, so the ratio can be large — but bounded.
		if v > 10 {
			t.Errorf("%s: implausible serial penalty %.2fx", name, v)
		}
	}
}

package server

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"smtflex/internal/cluster"
	"smtflex/internal/config"
	"smtflex/internal/memo"
	"smtflex/internal/study"
)

// The daemon's fabric-role plumbing: sweep routing through a coordinator,
// the worker-side cell route, the /debug/cluster surface, and the jittered
// Retry-After shared with the admission valve.

// role names the daemon's fabric role for /healthz and /debug/cluster.
func (s *Server) role() string {
	switch {
	case s.coord != nil:
		return "coordinator"
	case s.worker != nil:
		return "worker"
	default:
		return "solo"
	}
}

// sweepDesign routes a sweep through the fabric coordinator when one is
// configured, and through the local engine otherwise. Both paths honor the
// context's cancellation and progress hook, and produce bit-identical
// tables.
func (s *Server) sweepDesign(ctx context.Context, d config.Design, k study.Kind) (*study.Sweep, error) {
	if s.coord != nil {
		return s.coord.SweepDesign(ctx, d, k)
	}
	return s.study().SweepDesign(ctx, d, k)
}

// handleCell serves POST /cluster/v1/cell (worker role only): one sweep
// cell, evaluated through the worker's content-addressed store. It rides the
// shared endpoint() spine, so dispatches are admission-controlled, traced
// and metered like any client request — a saturated worker sheds
// coordinator dispatches with the same 503 + Retry-After it sheds clients
// with, which the coordinator understands.
func (s *Server) handleCell(ctx context.Context, r *http.Request) (any, error) {
	var req cluster.CellRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	t0 := time.Now()
	resp, err := s.worker.Evaluate(ctx, req)
	if err != nil {
		return nil, err
	}
	// The observability envelope is per-request, attached to this response
	// copy at the HTTP layer — never to the cached value, so a content-store
	// hit reports its own (near-zero) compute time and the live trace, not a
	// stale one from the evaluation that populated the cache.
	cluster.AttachTrace(ctx, &resp, time.Since(t0).Nanoseconds())
	return resp, nil
}

// debugClusterResponse is the /debug/cluster body for non-coordinator roles
// (a coordinator dumps its full cluster.State).
type debugClusterResponse struct {
	Role   string          `json:"role"`
	Caches []memo.Counters `json:"caches,omitempty"`
}

// handleDebugCluster dumps the fabric state: the coordinator's assignment
// and counter snapshot, the worker's content-store counters, or just the
// role for a solo daemon.
func (s *Server) handleDebugCluster(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.coord != nil:
		s.coord.Probe(r.Context())
		writeJSON(w, http.StatusOK, s.coord.State())
	case s.worker != nil:
		writeJSON(w, http.StatusOK, debugClusterResponse{Role: "worker", Caches: s.worker.CacheCounters()})
	default:
		writeJSON(w, http.StatusOK, debugClusterResponse{Role: "solo"})
	}
}

// Retry-After jitter bounds: a shed client is told to come back after 1..3
// seconds, chosen per response. A constant hint would re-synchronize every
// shed client (and a whole shedding fleet's coordinators) into the next
// thundering herd; the spread breaks the lockstep.
const (
	retryAfterMin = 1
	retryAfterMax = 3
)

// retryAfter returns the jittered Retry-After header value in seconds.
func retryAfter() string {
	return strconv.Itoa(retryAfterMin + rand.IntN(retryAfterMax-retryAfterMin+1))
}

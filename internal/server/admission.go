package server

import (
	"context"
	"errors"
)

// errQueueFull is returned by acquire when the admission queue is at
// capacity; the handler maps it to 503 + Retry-After so overload is shed at
// the door instead of queuing unboundedly.
var errQueueFull = errors.New("server: admission queue full")

// admission is the server's backpressure valve: at most maxConcurrent
// requests execute at once, at most queueDepth more wait for a slot, and
// everything beyond that is rejected immediately. A waiting request that
// gives up (client disconnect, deadline) leaves the queue without ever
// holding a slot.
type admission struct {
	// slots holds one token per executing request.
	slots chan struct{}
	// queue holds one token per admitted request, executing or waiting;
	// its capacity is maxConcurrent+queueDepth, so len(queue)-len(slots)
	// is the number waiting.
	queue chan struct{}
}

func newAdmission(maxConcurrent, queueDepth int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxConcurrent+queueDepth),
	}
}

// acquire admits the request or fails fast. It returns errQueueFull when
// the queue is at capacity and ctx.Err() when the caller gave up while
// waiting for a slot. On nil error the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.queue <- struct{}{}:
	default:
		return errQueueFull
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.queue
		return ctx.Err()
	}
}

// release frees the slot and leaves the queue.
func (a *admission) release() {
	<-a.slots
	<-a.queue
}

// waiting is the number of admitted requests not yet executing.
func (a *admission) waiting() int { return len(a.queue) - len(a.slots) }

// executing is the number of requests holding slots.
func (a *admission) executing() int { return len(a.slots) }

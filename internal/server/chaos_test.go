package server

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smtflex/internal/core"
	"smtflex/internal/faults"
)

// Chaos suite: arm one fault-injection site at a time and prove the daemon
// survives — the failure maps to the right status code, the failure metrics
// move, /healthz keeps answering, the cache is not poisoned (the same request
// retried after disarming succeeds), and nothing leaks.
//
// The tests share one dedicated engine so cache warmth is under this file's
// control: each case that needs a cold computation uses a design or mix no
// earlier case has touched. They are deliberately sequential (the faults
// registry is global) and every injection is Count-limited so a failed
// assertion cannot leave a site armed for the next case.

var (
	chaosOnce sync.Once
	chaosEng  *core.Simulator
)

func chaosSim() *core.Simulator {
	chaosOnce.Do(func() { chaosEng = core.NewSimulator(testSimOpts()...) })
	return chaosEng
}

// metricValue scrapes /metrics and returns the value of the first line
// starting with prefix, or 0 if the series has not appeared yet.
func metricValue(t *testing.T, url, prefix string) float64 {
	t.Helper()
	code, body := getJSON(t, url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics scrape: code=%d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix) {
			f := line[strings.LastIndexByte(line, ' ')+1:]
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("metric line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func assertHealthy(t *testing.T, url string) {
	t.Helper()
	code, body := getJSON(t, url+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("daemon unhealthy: code=%d body=%s", code, body)
	}
}

func TestChaos(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	goroutinesBefore := runtime.NumGoroutine()

	_, ts := newTestServer(t, Config{Sim: chaosSim(), MaxConcurrent: 4})

	// failCase arms one site, fires a request expecting it to fail in a
	// specific way, then disarms and proves the identical request now
	// succeeds — the failed computation must not have been cached.
	failCase := func(t *testing.T, site faults.Site, inj faults.Injection, path, body string, wantCode int, wantBody, wantKind string) {
		t.Helper()
		assertHealthy(t, ts.URL)
		kindMetric := `smtflexd_engine_failures_total{kind="` + wantKind + `"}`
		before := metricValue(t, ts.URL, kindMetric)

		faults.Enable(site, inj)
		code, resp, _ := postJSON(t, ts.URL+path, body)
		if code != wantCode {
			t.Fatalf("injected %s at %s: code=%d body=%s, want %d", inj.Mode, site, code, resp, wantCode)
		}
		if !strings.Contains(string(resp), wantBody) {
			t.Fatalf("error body %s does not mention %q", resp, wantBody)
		}
		if wantKind != "" {
			if after := metricValue(t, ts.URL, kindMetric); after != before+1 {
				t.Fatalf("%s went %g -> %g, want +1", kindMetric, before, after)
			}
		}
		if n := faults.Triggered(site); n != 1 {
			t.Fatalf("site %s fired %d times, want exactly 1 (Count limit)", site, n)
		}

		faults.Reset()
		if code, resp, _ := postJSON(t, ts.URL+path, body); code != http.StatusOK {
			t.Fatalf("retry after disarm: code=%d body=%s — failed computation was cached", code, resp)
		}
		assertHealthy(t, ts.URL)
	}

	one := faults.Injection{Mode: faults.ModeError, Count: 1}

	t.Run("profiler error fails the sweep", func(t *testing.T) {
		// First touch of the engine: the 4B sweep must measure big-core
		// profiles, so the profiler site is guaranteed to fire.
		failCase(t, faults.SiteProfiler, one,
			"/v1/sweep", `{"design":"4B"}`, http.StatusInternalServerError, "injected", "injected")
	})

	t.Run("profiler latency only slows the sweep", func(t *testing.T) {
		assertHealthy(t, ts.URL)
		const delay = 150 * time.Millisecond
		faults.Enable(faults.SiteProfiler, faults.Injection{Mode: faults.ModeLatency, Latency: delay, Count: 1})
		start := time.Now()
		// 8m is cold and medium-cored: new profiles to measure.
		code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"8m"}`)
		if code != http.StatusOK {
			t.Fatalf("latency injection broke the sweep: code=%d body=%s", code, body)
		}
		if elapsed := time.Since(start); elapsed < delay-10*time.Millisecond {
			t.Fatalf("sweep took %v, injected latency %v never fired", elapsed, delay)
		}
		faults.Reset()
		assertHealthy(t, ts.URL)
	})

	t.Run("memo error fails the sweep without poisoning the cache", func(t *testing.T) {
		failCase(t, faults.SiteMemo, one,
			"/v1/sweep", `{"design":"20s"}`, http.StatusInternalServerError, "injected", "injected")
	})

	t.Run("worker error fails the sweep", func(t *testing.T) {
		failCase(t, faults.SiteWorker, one,
			"/v1/sweep", `{"design":"3B5s"}`, http.StatusInternalServerError, "injected", "injected")
	})

	t.Run("worker panic is contained to a 500", func(t *testing.T) {
		failCase(t, faults.SiteWorker, faults.Injection{Mode: faults.ModePanic, Count: 1},
			"/v1/sweep", `{"design":"2B4m"}`, http.StatusInternalServerError, "panic", "panic")
	})

	t.Run("solver NaN surfaces as divergence", func(t *testing.T) {
		failCase(t, faults.SiteSolver, faults.Injection{Mode: faults.ModeNaN, Count: 1},
			"/v1/place", `{"design":"4B","programs":["mcf","tonto"]}`,
			http.StatusUnprocessableEntity, "diverged", "diverged")
	})

	t.Run("solver error fails the placement", func(t *testing.T) {
		failCase(t, faults.SiteSolver, one,
			"/v1/place", `{"design":"4B","programs":["soplex","hmmer"]}`,
			http.StatusInternalServerError, "injected", "injected")
	})

	t.Run("handler panic is recovered and counted", func(t *testing.T) {
		assertHealthy(t, ts.URL)
		panicsBefore := metricValue(t, ts.URL, "smtflexd_panics_total")
		faults.Enable(faults.SiteHandler, faults.Injection{Mode: faults.ModePanic, Count: 1})
		code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`)
		if code != http.StatusInternalServerError || !strings.Contains(string(body), "panicked") {
			t.Fatalf("handler panic: code=%d body=%s", code, body)
		}
		if after := metricValue(t, ts.URL, "smtflexd_panics_total"); after != panicsBefore+1 {
			t.Fatalf("smtflexd_panics_total went %g -> %g, want +1", panicsBefore, after)
		}
		faults.Reset()
		if code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusOK {
			t.Fatalf("daemon did not recover from handler panic: code=%d body=%s", code, body)
		}
		assertHealthy(t, ts.URL)
	})

	t.Run("no goroutine leak", func(t *testing.T) {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= goroutinesBefore+8 {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("goroutines grew from %d to %d across the chaos cases",
					goroutinesBefore, runtime.NumGoroutine())
			}
			time.Sleep(50 * time.Millisecond)
		}
	})
}

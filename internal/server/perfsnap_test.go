package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smtflex/internal/core"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
)

// perfSharedSim is this file's own engine: the engine histograms only see
// observations from sweeps that actually evaluate, and the package-shared
// sim may have any design memoized already by earlier tests. Tests here
// sweep distinct designs so each drives real solver work.
var (
	perfSimOnce sync.Once
	perfSim     *core.Simulator
)

func perfSharedSim() *core.Simulator {
	perfSimOnce.Do(func() { perfSim = core.NewSimulator(testSimOpts()...) })
	return perfSim
}

func TestPerfsnapEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Sim: perfSharedSim()})
	// Drive one sweep so the snapshot has traffic to attribute.
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusOK {
		t.Fatalf("sweep: code=%d", code)
	}
	code, body := getJSON(t, ts.URL+"/debug/perfsnap")
	if code != http.StatusOK {
		t.Fatalf("perfsnap: code=%d body=%s", code, body)
	}
	snap := &perfdiff.Snapshot{}
	if err := json.Unmarshal(body, snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.Role != "solo" {
		t.Errorf("role %q, want solo", snap.Role)
	}
	if len(snap.TimeStacks) == 0 {
		t.Error("no time stacks after a sweep")
	}
	for _, name := range []string{perfdiff.HistSolverIterations, perfdiff.HistPoolQueueSeconds} {
		if _, ok := snap.Histogram(name); !ok {
			t.Errorf("histogram %q missing", name)
		}
	}
	if h, _ := snap.Histogram(perfdiff.HistSolverIterations); h.Count == 0 {
		t.Error("solver-iteration histogram empty after a sweep")
	}
	if len(snap.Caches) == 0 {
		t.Error("no cache counters")
	}
	if len(snap.Profiles) != 0 {
		t.Errorf("profiles attached without ?pprof=1: %d", len(snap.Profiles))
	}
}

func TestPerfsnapPprofProfiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// profile_ms=0 keeps the capture instant: heap only.
	code, body := getJSON(t, ts.URL+"/debug/perfsnap?pprof=1&profile_ms=0")
	if code != http.StatusOK {
		t.Fatalf("perfsnap pprof: code=%d", code)
	}
	snap := &perfdiff.Snapshot{}
	if err := json.Unmarshal(body, snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Profiles) != 1 || snap.Profiles[0].Kind != "heap" {
		t.Fatalf("profiles %+v, want one heap profile", snap.Profiles)
	}
	if len(snap.Profiles[0].Data) == 0 {
		t.Error("empty heap profile")
	}
	if code, _ := getJSON(t, ts.URL+"/debug/perfsnap?pprof=1&profile_ms=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus profile_ms: code=%d, want 400", code)
	}
}

func TestPerfRingEndpoint(t *testing.T) {
	// Disabled by default: the route 404s with a pointer at the flag.
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/debug/perfsnap/ring")
	if code != http.StatusNotFound || !strings.Contains(string(body), "-prof-interval") {
		t.Fatalf("disabled ring: code=%d body=%s", code, body)
	}

	// Enabled: the route serves counts even before the first tick.
	_, ts2 := newTestServer(t, Config{ProfInterval: time.Hour})
	code, body = getJSON(t, ts2.URL+"/debug/perfsnap/ring")
	if code != http.StatusOK {
		t.Fatalf("armed ring: code=%d body=%s", code, body)
	}
	var ring PerfRingResponse
	if err := json.Unmarshal(body, &ring); err != nil {
		t.Fatal(err)
	}
	if ring.IntervalSeconds != 3600 {
		t.Errorf("interval %v, want 3600", ring.IntervalSeconds)
	}
}

func TestTimestackIncludesHistogramQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{Sim: perfSharedSim()})
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"8m"}`); code != http.StatusOK {
		t.Fatal("sweep failed")
	}
	code, body := getJSON(t, ts.URL+"/debug/timestack")
	if code != http.StatusOK {
		t.Fatalf("timestack: code=%d", code)
	}
	var resp TimestackResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Histograms) != 2 {
		t.Fatalf("histograms %+v, want solver + queue", resp.Histograms)
	}
	var iters HistQuantiles
	for _, h := range resp.Histograms {
		if h.Name == perfdiff.HistSolverIterations {
			iters = h
		}
	}
	if iters.Count == 0 || iters.P99 < iters.P50 {
		t.Errorf("solver-iteration quantiles %+v", iters)
	}
	// The text format renders the same summary lines.
	code, body = getJSON(t, ts.URL+"/debug/timestack?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), perfdiff.HistSolverIterations) {
		t.Errorf("text timestack missing histogram summary: code=%d body=%s", code, body)
	}
}

func TestDriftLoopCapturesSnapshot(t *testing.T) {
	// Baseline: solver converges in 1 iteration.
	base := obs.NewHistogram(perfdiff.SolverIterBuckets)
	base.Observe(1)
	baseline := perfdiff.Capture(perfdiff.CaptureOpts{
		Role: "test",
		Histograms: []perfdiff.HistogramState{
			perfdiff.HistState(perfdiff.HistSolverIterations, base.Snapshot()),
		},
	})

	dir := t.TempDir()
	s, _ := newTestServer(t, Config{
		PerfBaseline:  baseline,
		PerfDumpDir:   dir,
		DriftInterval: 5 * time.Millisecond,
	})
	// Live state drifts: iterations land two decades above the baseline.
	for i := 0; i < 32; i++ {
		s.solverIters.Observe(200)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.StartPerfLoops(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for s.perf.dumps.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift watcher never captured a snapshot; drifts=%d", s.perf.drifts.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.perf.drifts.Load() == 0 {
		t.Error("drift counter not bumped")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snapPath string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "perfdrift-") && strings.HasSuffix(e.Name(), ".json") {
			snapPath = filepath.Join(dir, e.Name())
		}
	}
	if snapPath == "" {
		t.Fatalf("no perfdrift-*.json in %s: %v", dir, entries)
	}
	snap, err := perfdiff.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := snap.Histogram(perfdiff.HistSolverIterations); !ok || h.Count == 0 {
		t.Errorf("drift snapshot missing the drifted histogram")
	}
}

func TestDriftLoopQuietWhenWithinTolerance(t *testing.T) {
	base := obs.NewHistogram(perfdiff.SolverIterBuckets)
	base.Observe(200)
	baseline := perfdiff.Capture(perfdiff.CaptureOpts{
		Role: "test",
		Histograms: []perfdiff.HistogramState{
			perfdiff.HistState(perfdiff.HistSolverIterations, base.Snapshot()),
		},
	})
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{
		PerfBaseline:  baseline,
		PerfDumpDir:   dir,
		DriftInterval: time.Millisecond,
	})
	// Live state matches the baseline: no drift, no dumps.
	s.solverIters.Observe(200)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.StartPerfLoops(ctx)
	time.Sleep(50 * time.Millisecond)
	if n := s.perf.drifts.Load(); n != 0 {
		t.Errorf("drifts %d on matching state", n)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Errorf("unexpected dumps: %v", entries)
	}
}

func TestMetricsIncludePerfSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	typed, values := lintPromText(t, body)
	for _, want := range []string{
		"smtflexd_perf_drift_total",
		"smtflexd_perf_drift_snapshots_total",
		"smtflexd_perf_drift_snapshot_errors_total",
		"smtflexd_prof_captures_total",
		"smtflexd_prof_skipped_total",
	} {
		if typed[want] != "counter" {
			t.Errorf("metric %s typed %q, want counter", want, typed[want])
		}
		if v, ok := values[want]; !ok || v != 0 {
			t.Errorf("metric %s = %v (present=%v), want 0", want, v, ok)
		}
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"smtflex/internal/obs"
)

// metrics is the server's observability state, exposed at /metrics in the
// Prometheus text format (hand-rolled — the repo takes no dependencies).
// Request counters and latency histograms are per route; gauges for queue
// depth and cache state are sampled at scrape time by the server.
type metrics struct {
	mu       sync.Mutex
	requests map[routeCode]int64
	hist     map[string]*histogram
	rejected int64
	drainHit int64 // requests refused while draining
	panics   int64
	failures map[string]int64 // engine failures by kind
}

type routeCode struct {
	route string
	code  int
}

// latencyBuckets are the histogram upper bounds in seconds. Sweeps span
// milliseconds (cache hit) to minutes (cold campaign), so the buckets
// stretch wide.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []int64 // len(latencyBuckets)+1; last is +Inf
	sum    float64
	n      int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[routeCode]int64),
		hist:     make(map[string]*histogram),
		failures: make(map[string]int64),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	h := m.hist[route]
	if h == nil {
		h = &histogram{counts: make([]int64, len(latencyBuckets)+1)}
		m.hist[route] = h
	}
	i := sort.SearchFloat64s(latencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.n++
}

// reject records one request shed by admission control.
func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// drained records one request refused because the server is draining.
func (m *metrics) drained() {
	m.mu.Lock()
	m.drainHit++
	m.mu.Unlock()
}

// panicked records one handler panic contained by the recover middleware.
func (m *metrics) panicked() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// failure records one engine failure by kind (panic, injected, diverged,
// not_converged, config, trace).
func (m *metrics) failure(kind string) {
	m.mu.Lock()
	m.failures[kind]++
	m.mu.Unlock()
}

// sample is one point-in-time value sampled at scrape, with the metadata a
// strict Prometheus parser requires: every series gets a HELP/TYPE pair.
// Samples sharing a metric name (label variants) must be adjacent in the
// slice; write emits the headers once per name.
type sample struct {
	name   string
	help   string
	kind   string // "gauge" or "counter"
	labels string // rendered label set, may be empty
	value  float64
}

// engineHist is a snapshot of one engine-level histogram for rendering.
// Label variants of one metric (labels non-empty, e.g. per-worker dispatch
// latency) must be adjacent in the slice; write emits the HELP/TYPE headers
// once per name.
type engineHist struct {
	name   string
	help   string
	labels string // rendered label set without the le pair, may be empty
	snap   obs.HistogramSnapshot
}

// histLabels merges a histogram's own label set with the le bucket label.
func histLabels(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	// le leads so the merged set stays alphabetical for the label sets we
	// emit (worker=...), keeping scrapes diffable across daemons.
	return fmt.Sprintf(`{le=%q,%s`, le, labels[1:])
}

// write renders every metric in deterministic order.
func (m *metrics) write(w io.Writer, samples []sample, hists []engineHist) {
	m.mu.Lock()
	defer m.mu.Unlock()

	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP smtflexd_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(w, "# TYPE smtflexd_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "smtflexd_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP smtflexd_rejected_total Requests shed by admission control (queue full).\n")
	fmt.Fprintf(w, "# TYPE smtflexd_rejected_total counter\n")
	fmt.Fprintf(w, "smtflexd_rejected_total %d\n", m.rejected)

	fmt.Fprintf(w, "# HELP smtflexd_drained_total Requests refused while draining for shutdown.\n")
	fmt.Fprintf(w, "# TYPE smtflexd_drained_total counter\n")
	fmt.Fprintf(w, "smtflexd_drained_total %d\n", m.drainHit)

	fmt.Fprintf(w, "# HELP smtflexd_panics_total Handler panics contained by the recover middleware.\n")
	fmt.Fprintf(w, "# TYPE smtflexd_panics_total counter\n")
	fmt.Fprintf(w, "smtflexd_panics_total %d\n", m.panics)

	kinds := make([]string, 0, len(m.failures))
	for k := range m.failures {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP smtflexd_engine_failures_total Engine failures surfaced to clients, by kind.\n")
	fmt.Fprintf(w, "# TYPE smtflexd_engine_failures_total counter\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "smtflexd_engine_failures_total{kind=%q} %d\n", k, m.failures[k])
	}

	routes := make([]string, 0, len(m.hist))
	for r := range m.hist {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Fprintf(w, "# HELP smtflexd_request_duration_seconds Request latency.\n")
	fmt.Fprintf(w, "# TYPE smtflexd_request_duration_seconds histogram\n")
	for _, r := range routes {
		h := m.hist[r]
		cum := int64(0)
		for i, bound := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "smtflexd_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, bound, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "smtflexd_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(w, "smtflexd_request_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "smtflexd_request_duration_seconds_count{route=%q} %d\n", r, h.n)
	}

	prevHist := ""
	for _, h := range hists {
		if h.name != prevHist {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
			prevHist = h.name
		}
		for i, bound := range h.snap.Bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, histLabels(h.labels, fmt.Sprintf("%g", bound)), h.snap.Cumulative[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, histLabels(h.labels, "+Inf"), h.snap.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", h.name, h.labels, h.snap.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.snap.Count)
	}

	prev := ""
	for _, g := range samples {
		if g.name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", g.name, g.help, g.name, g.kind)
			prev = g.name
		}
		fmt.Fprintf(w, "%s%s %g\n", g.name, g.labels, g.value)
	}
}

package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"smtflex/internal/cluster"
)

// newTestFleet stands up one worker daemon plus a coordinator daemon in front
// of it (and any extra worker URLs), returning the coordinator's test server.
func newTestFleet(t *testing.T, extraWorkers ...string) *httptest.Server {
	t.Helper()
	_, workerTS := newTestServer(t, Config{ClusterWorker: cluster.NewWorker(sharedSim().Study(), 0)})
	urls := append([]string{workerTS.URL}, extraWorkers...)
	coord, err := cluster.NewCoordinator(sharedSim().Study(), urls, cluster.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	_, coordTS := newTestServer(t, Config{Coordinator: coord})
	return coordTS
}

// TestClusterMetricsPromtextLint scrapes a coordinator daemon after a fleet
// sweep through the same strict lint as the solo scrape, then pins the full
// smtflexd_cluster_* series catalog — including the per-worker dispatch
// histogram and wire counters — and checks the cluster series keep their
// label keys in alphabetical order.
func TestClusterMetricsPromtextLint(t *testing.T) {
	coordTS := newTestFleet(t)
	if code, body, _ := postJSON(t, coordTS.URL+"/v1/sweep", `{"design":"4B","kind":"heterogeneous"}`); code != http.StatusOK {
		t.Fatalf("fleet sweep: code=%d body=%s", code, body)
	}
	code, body := getJSON(t, coordTS.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	typed, values := lintPromText(t, body)

	for _, name := range []string{
		"smtflexd_cluster_dispatched_total", "smtflexd_cluster_steals_total",
		"smtflexd_cluster_retries_total", "smtflexd_cluster_hedges_total",
		"smtflexd_cluster_sheds_total", "smtflexd_cluster_fallbacks_total",
		"smtflexd_cluster_integrity_failures_total", "smtflexd_cluster_audits_total",
		"smtflexd_cluster_audit_divergence_total", "smtflexd_cluster_drains_total",
		"smtflexd_cluster_journal_cells", "smtflexd_cluster_journal_replayed_total",
		"smtflexd_cluster_journal_dropped_total", "smtflexd_cluster_journal_errors_total",
		"smtflexd_cluster_dispatch_seconds", "smtflexd_cluster_wire_bytes_total",
	} {
		if typed[name] == "" {
			t.Errorf("cluster metric %s missing from coordinator scrape", name)
		}
	}
	if values["smtflexd_cluster_dispatched_total"] == 0 {
		t.Error("dispatched counter zero after a fleet sweep")
	}

	// The per-worker series must have real observations: one dispatch
	// histogram with a count, and wire counters in both directions.
	var dispatchCount, rxBytes, txBytes float64
	for key, v := range values {
		switch {
		case strings.HasPrefix(key, "smtflexd_cluster_dispatch_seconds_count{"):
			dispatchCount += v
		case strings.HasPrefix(key, "smtflexd_cluster_wire_bytes_total{") && strings.Contains(key, `dir="rx"`):
			rxBytes += v
		case strings.HasPrefix(key, "smtflexd_cluster_wire_bytes_total{") && strings.Contains(key, `dir="tx"`):
			txBytes += v
		}
	}
	if dispatchCount == 0 || rxBytes == 0 || txBytes == 0 {
		t.Errorf("per-worker series empty after a fleet sweep: dispatches=%g rx=%g tx=%g", dispatchCount, rxBytes, txBytes)
	}

	// Cluster series emit their label keys in alphabetical order so scrapes
	// diff cleanly across daemons.
	for ln, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "smtflexd_cluster_") {
			continue
		}
		open := strings.IndexByte(line, '{')
		if open < 0 {
			continue
		}
		var keys []string
		for i := open + 1; i < len(line) && line[i] != '}'; {
			eq := strings.IndexByte(line[i:], '=')
			if eq < 0 {
				break
			}
			keys = append(keys, line[i:i+eq])
			i += eq + 2 // skip ="
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					i++
				}
				i++
			}
			i++ // closing quote
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
		if !sort.StringsAreSorted(keys) {
			t.Errorf("line %d: cluster series label keys %v not in alphabetical order: %q", ln+1, keys, line)
		}
	}
}

// TestFleetEndpointAggregatesAndDegrades exercises /debug/fleet on a
// coordinator fronting one live worker daemon and one dead address: the
// scrape must answer 200 with the dead worker degraded to an error row,
// render as text, reject unknown formats, and 404 on a solo daemon.
func TestFleetEndpointAggregatesAndDegrades(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	coordTS := newTestFleet(t, dead.URL)

	code, body := getJSON(t, coordTS.URL+"/debug/fleet")
	if code != http.StatusOK {
		t.Fatalf("/debug/fleet: code=%d body=%s", code, body)
	}
	var fr FleetResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("decode fleet response: %v", err)
	}
	if len(fr.Workers) != 2 || fr.Scraped != 1 || fr.Errors != 1 {
		t.Fatalf("fleet snapshot workers=%d scraped=%d errors=%d, want 2/1/1", len(fr.Workers), fr.Scraped, fr.Errors)
	}
	for _, row := range fr.Workers {
		if row.URL == dead.URL && row.Err == "" {
			t.Error("dead worker row carries no error")
		}
		if row.URL != dead.URL && row.Err != "" {
			t.Errorf("live worker row failed to scrape: %s", row.Err)
		}
	}
	if _, ok := fr.Totals["smtflexd_inflight"]; !ok {
		t.Errorf("fleet totals missing the live worker's series: %v", fr.Totals)
	}

	code, text := getJSON(t, coordTS.URL+"/debug/fleet?format=text")
	if code != http.StatusOK || !strings.Contains(string(text), "2 workers, 1 scraped, 1 errors") {
		t.Errorf("/debug/fleet?format=text: code=%d body=%s", code, text)
	}
	if code, body := getJSON(t, coordTS.URL+"/debug/fleet?format=bogus"); code != http.StatusBadRequest {
		t.Errorf("unknown format: code=%d body=%s, want 400", code, body)
	}

	_, soloTS := newTestServer(t, Config{})
	if code, body := getJSON(t, soloTS.URL+"/debug/fleet"); code != http.StatusNotFound {
		t.Errorf("solo /debug/fleet: code=%d body=%s, want 404", code, body)
	}
}

// TestFlightEndpointRoundTrip pins the flight-recorder surface: after a fleet
// sweep the coordinator lists the sweep, serves its full record by ID, and
// 404s unknown sweeps and non-coordinator roles.
func TestFlightEndpointRoundTrip(t *testing.T) {
	coordTS := newTestFleet(t)
	if code, body, _ := postJSON(t, coordTS.URL+"/v1/sweep", `{"design":"4B","kind":"heterogeneous"}`); code != http.StatusOK {
		t.Fatalf("fleet sweep: code=%d body=%s", code, body)
	}

	code, body := getJSON(t, coordTS.URL+"/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight: code=%d body=%s", code, body)
	}
	var fl FlightListResponse
	if err := json.Unmarshal(body, &fl); err != nil {
		t.Fatalf("decode flight list: %v", err)
	}
	if len(fl.Sweeps) != 1 || fl.Sweeps[0].Active {
		t.Fatalf("flight list: %+v, want one completed sweep", fl.Sweeps)
	}

	code, body = getJSON(t, coordTS.URL+"/debug/flight/"+fl.Sweeps[0].Sweep)
	if code != http.StatusOK {
		t.Fatalf("/debug/flight/{sweep}: code=%d body=%s", code, body)
	}
	var rec cluster.FlightRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatalf("decode flight record: %v", err)
	}
	if rec.Sweep != fl.Sweeps[0].Sweep || len(rec.Cells) == 0 {
		t.Fatalf("flight record sweep=%s cells=%d", rec.Sweep, len(rec.Cells))
	}

	if code, body := getJSON(t, coordTS.URL+"/debug/flight/deadbeef0000"); code != http.StatusNotFound {
		t.Errorf("unknown sweep: code=%d body=%s, want 404", code, body)
	}
	_, soloTS := newTestServer(t, Config{})
	if code, body := getJSON(t, soloTS.URL+"/debug/flight"); code != http.StatusNotFound {
		t.Errorf("solo /debug/flight: code=%d body=%s, want 404", code, body)
	}
}

// TestShedEchoesRequestID: a draining daemon's 503 still carries the
// caller's request ID, so a coordinator (or operator) can correlate the shed
// with the dispatch that hit it.
func TestShedEchoesRequestID(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(`{"design":"4B"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "rid-shed-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining sweep: code=%d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "rid-shed-7" {
		t.Errorf("shed response request ID = %q, want the caller's rid-shed-7", got)
	}
	if resp.Header.Get(cluster.DrainingHeader) != "1" {
		t.Error("shed response missing the draining header")
	}
}

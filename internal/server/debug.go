package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"smtflex/internal/obs"
)

// The debug surfaces: the request-trace ring buffer as JSON or Chrome
// trace-event files, the aggregated time-stack report, and Go's pprof
// profiles. /debug/traces and /debug/timestack are served on the main
// listener (they are cheap and read-only); DebugHandler additionally mounts
// pprof for the opt-in -debug-addr listener, which should never be public.

// TracesResponse lists the buffered traces, newest first.
type TracesResponse struct {
	Traces []obs.TraceMeta `json:"traces"`
}

// TimestackResponse carries the per-route time stacks plus the engine
// histograms' quantile summaries (solver iterations, pool queue waits).
type TimestackResponse struct {
	Stacks     []obs.TimeStack `json:"stacks"`
	Histograms []HistQuantiles `json:"histograms"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.col == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "tracing disabled (TraceBuffer < 0)"})
		return
	}
	traces := s.col.Traces()
	resp := TracesResponse{Traces: make([]obs.TraceMeta, len(traces))}
	for i, t := range traces {
		resp.Traces[i] = t.Meta()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.col == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "tracing disabled (TraceBuffer < 0)"})
		return
	}
	id := r.PathValue("id")
	t, ok := s.col.Find(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no buffered trace %q (the ring keeps the most recent traces only)", id)})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, t.Snapshot())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".trace.json"))
		_ = obs.WriteChrome(w, t.Snapshot())
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown format %q (want json or chrome)", format)})
	}
}

func (s *Server) handleTimestack(w http.ResponseWriter, r *http.Request) {
	if s.col == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "tracing disabled (TraceBuffer < 0)"})
		return
	}
	stacks := obs.TimeStacks(s.col.Snapshots())
	quants := s.timestackQuantiles()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, TimestackResponse{Stacks: stacks, Histograms: quants})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obs.RenderTimeStacks(stacks))
		for _, q := range quants {
			fmt.Fprintf(w, "%-22s n=%-8d p50=%-12.6g p95=%-12.6g p99=%.6g\n",
				q.Name, q.Count, q.P50, q.P95, q.P99)
		}
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown format %q (want json or text)", format)})
	}
}

// DebugHandler serves the full debug surface: net/http/pprof under
// /debug/pprof/ plus the trace and time-stack endpoints. It is meant for a
// separate loopback listener (smtflexd -debug-addr), never the public one —
// pprof's CPU profile endpoint can hold a goroutine for tens of seconds.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	mux.HandleFunc("GET /debug/timestack", s.handleTimestack)
	mux.HandleFunc("GET /debug/machstats", s.handleMachStats)
	mux.HandleFunc("GET /debug/fleet", s.handleFleet)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	mux.HandleFunc("GET /debug/flight/{sweep}", s.handleFlight)
	mux.HandleFunc("GET /debug/perfsnap", s.handlePerfsnap)
	mux.HandleFunc("GET /debug/perfsnap/ring", s.handlePerfRing)
	return mux
}

package server

import (
	"fmt"
	"net/http"

	"smtflex/internal/cluster"
	"smtflex/internal/obs"
)

// The coordinator-only fleet observability surfaces: GET /debug/fleet merges
// every live worker's /metrics, /debug/timestack and /debug/machstats into
// one snapshot, and GET /debug/flight exposes the sweep flight recorder —
// the per-cell lifecycle log of recent distributed sweeps.

// FleetResponse is the /debug/fleet body: the merged worker scrape plus the
// coordinator's own fleet-category time stacks (where distributed sweep wall
// time went: queue, dispatch wire, remote compute, steals, hedges, retries,
// reassembly).
type FleetResponse struct {
	cluster.FleetSnapshot
	CoordinatorStacks []obs.TimeStack `json:"coordinator_stacks,omitempty"`
}

// FlightListResponse lists the flight recorder's sweeps, active first.
type FlightListResponse struct {
	Sweeps []cluster.FlightMeta `json:"sweeps"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "fleet aggregation is a coordinator surface (start with -cluster-workers)"})
		return
	}
	snap := s.coord.FleetSnapshot(r.Context())
	var coordStacks []obs.TimeStack
	if s.col != nil {
		coordStacks = obs.FleetTimeStacks(s.col.Snapshots())
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, FleetResponse{FleetSnapshot: snap, CoordinatorStacks: coordStacks})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.RenderText())
		if len(coordStacks) > 0 {
			fmt.Fprint(w, "\ncoordinator fleet time stacks (per route):\n")
			fmt.Fprint(w, obs.RenderTimeStacksWith(coordStacks, obs.FleetCategories))
		}
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown format %q (want json or text)", format)})
	}
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "the flight recorder is a coordinator surface (start with -cluster-workers)"})
		return
	}
	if sweep := r.PathValue("sweep"); sweep != "" {
		rec, ok := s.coord.FlightRecordFor(sweep)
		if !ok {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no flight record for sweep %q (the recorder keeps the most recent sweeps only; prefixes of at least 8 characters resolve)", sweep)})
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	writeJSON(w, http.StatusOK, FlightListResponse{Sweeps: s.coord.FlightList()})
}

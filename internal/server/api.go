package server

// The wire types of the smtflexd HTTP/JSON API. Field names are stable:
// clients and the CI smoke test depend on them.

// SweepRequest asks for a full design-space sweep: one design evaluated at
// every thread count 1..24 for a workload kind. Identical in-flight sweeps
// are coalesced across requests, and completed sweeps are served from the
// engine cache.
type SweepRequest struct {
	// Design is one of the paper's design names (e.g. "4B", "2B4m", "20s").
	Design string `json:"design"`
	// SMT enables simultaneous multithreading; absent means true.
	SMT *bool `json:"smt,omitempty"`
	// Kind is "homogeneous" (default) or "heterogeneous".
	Kind string `json:"kind,omitempty"`
	// BandwidthGBps overrides off-chip memory bandwidth; 0 keeps the
	// design's default (8 GB/s).
	BandwidthGBps float64 `json:"bandwidth_gbps,omitempty"`
}

// SweepResponse carries the per-thread-count averages and per-mix detail.
// Index i of each array is thread count i+1.
type SweepResponse struct {
	Design   string      `json:"design"`
	Kind     string      `json:"kind"`
	STP      []float64   `json:"stp"`
	ANTT     []float64   `json:"antt"`
	Watts    []float64   `json:"watts"`
	MixNames []string    `json:"mix_names"`
	ByMix    [][]float64 `json:"by_mix"`
	// Solver summarizes the contention solver's convergence diagnostics over
	// every evaluation in the sweep: the worst-case iteration count and final
	// residual, and whether every solve terminated by convergence.
	Solver SolverDiag `json:"solver"`
	// MachStats carries the CPI-stack attachment when the request asked for
	// it with ?machstats=1; absent otherwise.
	MachStats *SweepMachStats `json:"mach_stats,omitempty"`
}

// SolverDiag is the wire form of the solver's convergence diagnostics.
type SolverDiag struct {
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	Converged  bool    `json:"converged"`
}

// StackComponent is one component of a CPI stack on the wire.
type StackComponent struct {
	Component string  `json:"component"`
	CPI       float64 `json:"cpi"`
}

// ThreadStack is one thread's placement and CPI-stack detail on the wire.
type ThreadStack struct {
	Program   string           `json:"program"`
	Core      int              `json:"core"`
	IPC       float64          `json:"ipc"`
	UopsPerNs float64          `json:"uops_per_ns"`
	Total     float64          `json:"total_cpi"`
	Stack     []StackComponent `json:"stack"`
}

// SweepMachStats is the optional machine-stats attachment of a sweep
// response (?machstats=1): the mean per-thread CPI stack at each thread
// count, index i being thread count i+1.
type SweepMachStats struct {
	MeanStacks [][]StackComponent `json:"mean_stacks"`
}

// PlaceMachStats is the optional machine-stats attachment of a placement
// response (?machstats=1): the per-thread CPI stacks, indexed like the
// request's programs.
type PlaceMachStats struct {
	Threads []ThreadStack `json:"threads"`
}

// PlaceRequest asks for a single scheduling query: place the given programs
// (one per thread) on a design and report the placement and its metrics —
// the online query shape of SYNPA-style schedulers.
type PlaceRequest struct {
	Design   string   `json:"design"`
	SMT      *bool    `json:"smt,omitempty"`
	Programs []string `json:"programs"`
}

// PlaceResponse reports the thread-to-core assignment and system metrics.
type PlaceResponse struct {
	Design string `json:"design"`
	// CoreOf[i] is the core index thread i was assigned to.
	CoreOf         []int      `json:"core_of"`
	STP            float64    `json:"stp"`
	ANTT           float64    `json:"antt"`
	Watts          float64    `json:"watts"`
	WattsUngated   float64    `json:"watts_ungated"`
	BusUtilization float64    `json:"bus_utilization"`
	Solver         SolverDiag `json:"solver"`
	// MachStats carries the per-thread CPI stacks when the request asked for
	// them with ?machstats=1; absent otherwise.
	MachStats *PlaceMachStats `json:"mach_stats,omitempty"`
}

// JobsimRequest runs the dynamic job-stream scenario on each named design.
type JobsimRequest struct {
	// Designs lists design names; empty means the jobsim CLI's default set.
	Designs []string `json:"designs,omitempty"`
	SMT     *bool    `json:"smt,omitempty"`
	// Jobs is the number of jobs (default 40).
	Jobs int `json:"jobs,omitempty"`
	// InterarrivalNs is the mean inter-arrival time (default 1.5e6).
	InterarrivalNs float64 `json:"interarrival_ns,omitempty"`
	// WorkUops is the mean job length (default 2e7).
	WorkUops float64 `json:"work_uops,omitempty"`
	// Seed drives the Poisson workload (default 2014).
	Seed uint64 `json:"seed,omitempty"`
}

// JobsimRun is one design's outcome.
type JobsimRun struct {
	Design           string  `json:"design"`
	MakespanNs       float64 `json:"makespan_ns"`
	MeanTurnaroundNs float64 `json:"mean_turnaround_ns"`
	MeanActive       float64 `json:"mean_active"`
	EnergyJoules     float64 `json:"energy_joules"`
}

// JobsimResponse lists runs in request order.
type JobsimResponse struct {
	Runs []JobsimRun `json:"runs"`
}

// TableResponse is a figure or table in machine-readable form, mirroring
// study.Table.
type TableResponse struct {
	Title string      `json:"title"`
	Rows  []string    `json:"rows"`
	Cols  []string    `json:"cols"`
	Cells [][]float64 `json:"cells"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthzResponse is the body of GET /healthz. Role is "solo",
// "coordinator" or "worker"; Status is "ok" normally and "draining" (with a
// 503) while the daemon finishes in-flight work before exit. A coordinator
// also reports its live view of the fleet so one scrape answers which
// workers are reachable.
type HealthzResponse struct {
	Status  string         `json:"status"`
	Role    string         `json:"role"`
	Workers []WorkerHealth `json:"workers,omitempty"`
}

// WorkerHealth is one worker's liveness row in a coordinator's /healthz.
// Breaker is the worker's circuit-breaker position: "closed", "open" or
// "half-open".
type WorkerHealth struct {
	URL     string `json:"url"`
	Alive   bool   `json:"alive"`
	Breaker string `json:"breaker,omitempty"`
	LastErr string `json:"last_err,omitempty"`
}

// Package server exposes the experiment engine as a long-running HTTP/JSON
// service (the smtflexd daemon): design-sweep evaluation, single-placement
// scheduling queries, figure tables and job-stream simulation, served to
// many concurrent clients from one shared engine.
//
// The service is production-shaped rather than a thin mux:
//
//   - Admission control: at most MaxConcurrent requests execute at once and
//     at most QueueDepth more wait; everything beyond is shed immediately
//     with 503 + Retry-After instead of queuing unboundedly.
//   - Deadlines and cancellation: every request runs under a context with a
//     deadline (default or ?timeout_ms=), and the context is threaded
//     through the experiment engine's worker pool — an abandoned request
//     stops burning workers mid-sweep.
//   - Coalescing: identical in-flight sweeps collapse onto one computation
//     in the engine's singleflight cache; the shared work is cancelled only
//     when every interested request has gone.
//   - Observability: /healthz, /metrics (request counts, latency
//     histograms, queue depth, engine cache sizes and hit rates) and
//     structured request logging.
//
// Graceful shutdown is the standard net/http contract: run the Handler
// under an http.Server and call its Shutdown, which stops accepting new
// connections and drains in-flight requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"smtflex/internal/buildinfo"
	"smtflex/internal/cache"
	"smtflex/internal/cluster"
	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/core"
	"smtflex/internal/faults"
	"smtflex/internal/mem"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
	"smtflex/internal/sched"
	"smtflex/internal/study"
	"smtflex/internal/timeline"
	"smtflex/internal/trace"
	"smtflex/internal/workload"
)

// Config parameterizes a Server. The zero value of every optional field
// gets a sensible default; Sim is required.
type Config struct {
	// Sim is the shared engine every request is served from.
	Sim *core.Simulator
	// MaxConcurrent bounds simultaneously executing requests
	// (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an execution slot (default 64;
	// negative means no waiting room — reject whenever all slots are busy).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the client sets none
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 10m).
	MaxTimeout time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
	// TraceBuffer bounds the ring of completed request traces behind
	// /debug/traces (default 128; negative disables request tracing).
	TraceBuffer int
	// Coordinator, when set, routes sweep requests through the distributed
	// fabric (fan-out across a worker fleet) instead of the local engine.
	// Mutually exclusive with ClusterWorker.
	Coordinator *cluster.Coordinator
	// ClusterWorker, when set, mounts the fabric's cell-evaluation route
	// (POST /cluster/v1/cell) so this daemon serves a coordinator's
	// dispatches. Mutually exclusive with Coordinator.
	ClusterWorker *cluster.Worker
	// ProfInterval, when positive, arms the continuous profiler: a CPU
	// profile is captured at this cadence into a bounded ring served at
	// /debug/perfsnap/ring. Zero (the default) disables profiling entirely.
	ProfInterval time.Duration
	// ProfRingCap bounds the continuous profiler's ring
	// (default perfdiff.DefaultProfRingCap).
	ProfRingCap int
	// PerfBaseline, when set, arms the snap-on-drift watcher: engine
	// histograms are compared against this baseline snapshot at
	// DriftInterval, and a drift past tolerance auto-captures a perf
	// snapshot into PerfDumpDir.
	PerfBaseline *perfdiff.Snapshot
	// PerfDumpDir is where drift-triggered snapshots land (default ".";
	// smtflexd points it at the journal directory when one is configured).
	PerfDumpDir string
	// DriftInterval is the drift watcher's check cadence (default 15s).
	DriftInterval time.Duration
}

// Server handles the smtflexd API. Create with New; serve via Handler.
type Server struct {
	sim            *core.Simulator
	adm            *admission
	met            *metrics
	log            *slog.Logger
	mux            *http.ServeMux
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	figures        map[string]bool

	// coord and worker select the daemon's fabric role; both nil means solo.
	coord  *cluster.Coordinator
	worker *cluster.Worker

	// draining flips once at shutdown: every new engine-backed request is
	// answered 503 with the cluster draining header so coordinators reroute,
	// while in-flight requests run to completion.
	draining atomic.Bool

	// col buffers completed request traces for /debug/traces and
	// /debug/timestack; nil when tracing is disabled (TraceBuffer < 0).
	col *obs.Collector
	// solverIters and poolQueue receive engine-level observations (solver
	// iteration counts, pool queue waits) behind the /metrics histograms.
	solverIters *obs.Histogram
	poolQueue   *obs.Histogram

	// perf holds the performance-observability state: the continuous
	// profiling ring and the snap-on-drift watcher (see perfsnap.go).
	perf perf
}

// New builds a Server around the given engine.
func New(cfg Config) (*Server, error) {
	if cfg.Sim == nil {
		return nil, errors.New("server: Config.Sim is required")
	}
	if cfg.Coordinator != nil && cfg.ClusterWorker != nil {
		return nil, errors.New("server: Coordinator and ClusterWorker are mutually exclusive (a daemon has one fabric role)")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	} else if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		sim:            cfg.Sim,
		adm:            newAdmission(cfg.MaxConcurrent, cfg.QueueDepth),
		met:            newMetrics(),
		log:            cfg.Logger,
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     cfg.MaxTimeout,
		figures:        make(map[string]bool),
		coord:          cfg.Coordinator,
		worker:         cfg.ClusterWorker,
	}
	for _, id := range core.FigureIDs() {
		s.figures[id] = true
	}
	if cfg.TraceBuffer >= 0 {
		if cfg.TraceBuffer == 0 {
			cfg.TraceBuffer = 128
		}
		s.col = obs.NewCollector(cfg.TraceBuffer)
		obs.Enable()
	}
	// The engine histograms use the perf-snapshot layer's canonical bucket
	// bounds so live /metrics scrapes and perfdiff baselines are the same
	// distributions bucket for bucket.
	s.solverIters = obs.NewHistogram(perfdiff.SolverIterBuckets)
	s.poolQueue = obs.NewHistogram(perfdiff.QueueSecondsBuckets)
	s.study().SetEngineHistograms(s.solverIters, s.poolQueue)
	if cfg.ProfRingCap <= 0 {
		cfg.ProfRingCap = perfdiff.DefaultProfRingCap
	}
	if cfg.DriftInterval <= 0 {
		cfg.DriftInterval = defaultDriftInterval
	}
	if cfg.PerfDumpDir == "" {
		cfg.PerfDumpDir = "."
	}
	s.perf.ring = perfdiff.NewProfRing(cfg.ProfRingCap)
	s.perf.interval = cfg.ProfInterval
	s.perf.driftInterval = cfg.DriftInterval
	s.perf.dumpDir = cfg.PerfDumpDir
	if cfg.PerfBaseline != nil {
		s.perf.drift = perfdiff.NewDriftWatcher(cfg.PerfBaseline, perfdiff.DefaultDriftTolerance())
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("POST /v1/sweep", s.endpoint("/v1/sweep", s.handleSweep))
	s.mux.HandleFunc("GET /v1/sweep", s.handleSweepStream)
	s.mux.Handle("POST /v1/place", s.endpoint("/v1/place", s.handlePlace))
	s.mux.Handle("GET /v1/figures/{id}", s.endpoint("/v1/figures", s.handleFigure))
	s.mux.Handle("POST /v1/jobsim", s.endpoint("/v1/jobsim", s.handleJobsim))
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /debug/timestack", s.handleTimestack)
	s.mux.HandleFunc("GET /debug/machstats", s.handleMachStats)
	s.mux.HandleFunc("GET /debug/cluster", s.handleDebugCluster)
	s.mux.HandleFunc("GET /debug/fleet", s.handleFleet)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	s.mux.HandleFunc("GET /debug/flight/{sweep}", s.handleFlight)
	s.mux.HandleFunc("GET /debug/perfsnap", s.handlePerfsnap)
	s.mux.HandleFunc("GET /debug/perfsnap/ring", s.handlePerfRing)
	if s.worker != nil {
		s.mux.Handle("POST "+cluster.CellPath, s.endpoint(cluster.CellPath, s.handleCell))
	}
	return s, nil
}

// Handler returns the root handler, ready for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain puts the server into graceful-drain mode: new engine-backed
// requests (including a coordinator's cell dispatches) are answered 503
// with the cluster draining header, /healthz turns 503 "draining", and
// in-flight requests run to completion. Idempotent; there is no undo —
// draining ends with process exit.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports requests currently executing — the quantity a draining
// daemon waits to see reach zero before exiting.
func (s *Server) Inflight() int { return s.adm.executing() }

func (s *Server) study() *study.Study { return s.sim.Study() }

// --- request plumbing ---

// httpError carries a status code chosen by a handler.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

// statusClientClosed is nginx's conventional code for "client closed the
// request"; the response never reaches anyone, but the metrics and logs do.
const statusClientClosed = 499

// statusOf maps a handler error to an HTTP status, classifying the engine's
// typed errors: invalid inputs are the client's fault (400), a solve that
// could not converge is a well-formed request the engine cannot satisfy
// (422), and contained panics or injected faults are server errors (500).
func statusOf(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.code
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosed
	case errors.Is(err, config.ErrBadConfig), errors.Is(err, cache.ErrBadConfig),
		errors.Is(err, mem.ErrBadConfig), errors.Is(err, trace.ErrBadTrace):
		return http.StatusBadRequest
	case errors.Is(err, contention.ErrNotConverged), errors.Is(err, contention.ErrDiverged):
		return http.StatusUnprocessableEntity
	case errors.Is(err, cluster.ErrFingerprintMismatch):
		// A coordinator from a differently configured fleet: the request can
		// never succeed here, and 409 tells it not to retry.
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// failureKind labels an engine failure for the smtflexd_engine_failures_total
// metric; empty means the error is not an engine failure (client errors,
// cancellations).
func failureKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, study.ErrWorkerPanic), errors.Is(err, memo.ErrComputePanic):
		return "panic"
	case errors.Is(err, faults.ErrInjected):
		return "injected"
	case errors.Is(err, contention.ErrDiverged):
		return "diverged"
	case errors.Is(err, contention.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, config.ErrBadConfig), errors.Is(err, cache.ErrBadConfig), errors.Is(err, mem.ErrBadConfig):
		return "config"
	case errors.Is(err, trace.ErrBadTrace):
		return "trace"
	default:
		return ""
	}
}

// handlerFunc computes a JSON-marshalable response under ctx.
type handlerFunc func(ctx context.Context, r *http.Request) (any, error)

// requestIDHeader is the inbound/outbound request-identity header.
const requestIDHeader = "X-Request-ID"

// resolveRequestID accepts the client's X-Request-ID when it is sane (short,
// printable ASCII — it lands verbatim in log lines), generating one
// otherwise. Either way the response echoes it.
func resolveRequestID(r *http.Request) string {
	rid := r.Header.Get(requestIDHeader)
	if rid == "" || len(rid) > 128 {
		return obs.NewRequestID()
	}
	for i := 0; i < len(rid); i++ {
		if rid[i] < 0x20 || rid[i] > 0x7e {
			return obs.NewRequestID()
		}
	}
	return rid
}

// endpoint wraps a handler with request identity, tracing, admission
// control, the per-request deadline, metrics and logging — the shared spine
// of every engine-backed route.
func (s *Server) endpoint(route string, fn handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := resolveRequestID(r)
		w.Header().Set(requestIDHeader, rid)
		rctx := obs.WithRequestID(r.Context(), rid)
		// The root span covers the whole request; finish ends it after the
		// response is serialized, completing the trace into the ring buffer.
		// A coordinator's dispatch carries its trace identity in the
		// propagation header; adopting it makes this worker's spans children
		// of the coordinator's cluster.dispatch span once grafted home.
		var tctx context.Context
		var root *obs.Span
		if tid, sid, ok := obs.ParseTraceparent(r.Header.Get(cluster.TraceparentHeader)); ok {
			tctx, root = obs.StartRemoteTrace(rctx, s.col, route, tid, sid)
		} else {
			tctx, root = obs.StartTrace(rctx, s.col, route)
		}

		if s.draining.Load() {
			// Refuse before admission: a draining daemon finishes what it
			// has and takes nothing new. The draining header tells a fabric
			// coordinator to reroute immediately rather than burn its shed
			// budget retrying here.
			s.met.drained()
			w.Header().Set("Retry-After", retryAfter())
			w.Header().Set(cluster.DrainingHeader, "1")
			err := &httpError{http.StatusServiceUnavailable, "draining for shutdown"}
			s.finish(w, r, tctx, root, rid, route, start, 0, nil, err)
			return
		}

		timeout, err := s.requestTimeout(r)
		if err != nil {
			s.finish(w, r, tctx, root, rid, route, start, 0, nil, err)
			return
		}
		_, qs := obs.StartSpan(tctx, "queue.wait")
		err = s.adm.acquire(tctx)
		qs.End()
		if err != nil {
			if errors.Is(err, errQueueFull) {
				s.met.reject()
				w.Header().Set("Retry-After", retryAfter())
				err = &httpError{http.StatusServiceUnavailable, "admission queue full, retry later"}
			}
			s.finish(w, r, tctx, root, rid, route, start, 0, nil, err)
			return
		}
		defer s.adm.release()
		wait := time.Since(start)

		ctx, cancel := context.WithTimeout(tctx, timeout)
		defer cancel()
		res, err := s.safely(ctx, fn, r)
		s.finish(w, r, tctx, root, rid, route, start, wait, res, err)
	})
}

// safely runs a handler with the handler fault-injection site applied and
// any panic contained: the panic is logged with its stack, counted in
// smtflexd_panics_total, and turned into a plain 500 — one berserk request
// must never take the daemon down.
func (s *Server) safely(ctx context.Context, fn handlerFunc, r *http.Request) (res any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.met.panicked()
			s.log.Error("handler panic", "panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
			res, err = nil, &httpError{http.StatusInternalServerError, fmt.Sprintf("internal error: handler panicked: %v", rec)}
		}
	}()
	if err := faults.Check(faults.SiteHandler); err != nil {
		return nil, err
	}
	return fn(ctx, r)
}

// requestTimeout resolves the request deadline: ?timeout_ms= if given
// (capped at MaxTimeout), else the default.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.defaultTimeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, badRequest("invalid timeout_ms %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.maxTimeout {
		d = s.maxTimeout
	}
	return d, nil
}

// finish serializes the response (or error) under an "http.serialize" span,
// ends the request's root span, and records metrics and the request log
// line (every line carries the request ID).
func (s *Server) finish(w http.ResponseWriter, r *http.Request, ctx context.Context, root *obs.Span, rid, route string, start time.Time, wait time.Duration, res any, err error) {
	code := http.StatusOK
	_, ser := obs.StartSpan(ctx, "http.serialize")
	if err != nil {
		code = statusOf(err)
		if kind := failureKind(err); kind != "" {
			s.met.failure(kind)
		}
		writeJSON(w, code, ErrorResponse{Error: err.Error()})
	} else {
		writeJSON(w, code, res)
	}
	ser.End()
	root.SetAttr("code", code)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	dur := time.Since(start)
	s.met.observe(route, code, dur)
	attrs := []any{
		"method", r.Method, "route", route, "path", r.URL.Path, "rid", rid,
		"code", code, "dur_ms", dur.Milliseconds(), "wait_ms", wait.Milliseconds(),
	}
	if err != nil {
		attrs = append(attrs, "err", err.Error())
		s.log.Warn("request", attrs...)
	} else {
		s.log.Info("request", attrs...)
	}
}

// writeJSON renders v with the given status. 499s get no body write beyond
// headers in practice (the client is gone), but writing is harmless.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeJSON parses a request body strictly: unknown fields are rejected so
// typos fail loudly, and bodies are capped at 1 MiB.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

// smtOf defaults an absent smt field to true, the paper's headline setup.
func smtOf(p *bool) bool { return p == nil || *p }

// boolGauge renders a bool as the conventional 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func parseKind(raw string) (study.Kind, error) {
	switch raw {
	case "", "homogeneous":
		return study.Homogeneous, nil
	case "heterogeneous":
		return study.Heterogeneous, nil
	default:
		return 0, badRequest("unknown kind %q (want homogeneous or heterogeneous)", raw)
	}
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{Status: "ok", Role: s.role()}
	if s.coord != nil {
		// A coordinator's health includes its view of the fleet: probe and
		// report per-worker liveness so one scrape answers "who is up".
		s.coord.Probe(r.Context())
		for _, ws := range s.coord.Workers() {
			resp.Workers = append(resp.Workers, WorkerHealth{
				URL: ws.URL, Alive: ws.Alive, Breaker: ws.Breaker, LastErr: ws.LastErr,
			})
		}
	}
	if s.draining.Load() {
		// 503 flips load balancers and coordinator probes away while
		// in-flight work finishes.
		resp.Status = "draining"
		w.Header().Set(cluster.DrainingHeader, "1")
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	bi := buildinfo.Get()
	samples := []sample{
		{"smtflexd_build_info", "Build metadata of the running binary; the value is always 1.", "gauge",
			fmt.Sprintf(`{go_version=%q,vcs_revision=%q,version=%q}`, bi.GoVersion, bi.Revision, bi.Version), 1},
		{"smtflexd_queue_waiting", "Requests waiting for an execution slot.", "gauge", "", float64(s.adm.waiting())},
		{"smtflexd_inflight", "Requests currently executing.", "gauge", "", float64(s.adm.executing())},
		{"smtflexd_draining", "1 while the daemon is draining for shutdown, else 0.", "gauge", "", boolGauge(s.draining.Load())},
		{"smtflexd_engine_evaluations_total", "Mix evaluations performed by the experiment engine.", "counter", "", float64(s.study().Evaluations())},
		{"smtflexd_perf_drift_total", "Histogram quantiles observed past tolerance versus the armed perf baseline.", "counter", "", float64(s.perf.drifts.Load())},
		{"smtflexd_perf_drift_snapshots_total", "Perf snapshots auto-captured by the drift watcher.", "counter", "", float64(s.perf.dumps.Load())},
		{"smtflexd_perf_drift_snapshot_errors_total", "Drift snapshot writes that failed.", "counter", "", float64(s.perf.dumpErrs.Load())},
	}
	{
		caps, skipped := s.perf.ring.Counts()
		samples = append(samples,
			sample{"smtflexd_prof_captures_total", "CPU profiles captured into the continuous-profiling ring.", "counter", "", float64(caps)},
			sample{"smtflexd_prof_skipped_total", "Continuous-profiling captures skipped (profiler busy).", "counter", "", float64(skipped)})
	}
	// Per-cache series from every memo cache the engine reaches (solo-rate,
	// sweeps, profiles, curves). Label variants of one metric stay adjacent
	// so write emits each HELP/TYPE header exactly once.
	counters := s.study().CacheCounters()
	// Fabric caches ride the same per-cache series: the coordinator's fleet
	// store and sweep cache, or the worker's cell content store.
	if s.coord != nil {
		counters = append(counters, s.coord.CacheCounters()...)
	}
	if s.worker != nil {
		counters = append(counters, s.worker.CacheCounters()...)
	}
	for _, mc := range []struct {
		name, help string
		kind       string
		value      func(memo.Counters) float64
	}{
		{"smtflexd_cache_entries", "Entries resident per engine cache.", "gauge", func(c memo.Counters) float64 { return float64(c.Entries) }},
		{"smtflexd_memo_hits_total", "Cache lookups served from a completed or in-flight entry, per cache.", "counter", func(c memo.Counters) float64 { return float64(c.Hits) }},
		{"smtflexd_memo_misses_total", "Cache lookups that started a new computation, per cache.", "counter", func(c memo.Counters) float64 { return float64(c.Misses) }},
		{"smtflexd_memo_coalesced_total", "Cache lookups that joined an in-flight computation, per cache.", "counter", func(c memo.Counters) float64 { return float64(c.Coalesced) }},
	} {
		for _, c := range counters {
			samples = append(samples, sample{mc.name, mc.help, mc.kind, fmt.Sprintf(`{cache=%q}`, c.Name), mc.value(c)})
		}
	}
	for _, c := range counters {
		if c.Name == "sweeps" {
			samples = append(samples, sample{"smtflexd_coalesced_sweeps_total",
				"Sweep requests that joined another request's in-flight sweep computation.", "counter", "", float64(c.Coalesced)})
		}
	}
	if s.coord != nil {
		st := s.coord.State()
		samples = append(samples,
			sample{"smtflexd_cluster_dispatched_total", "Cell dispatch attempts sent to workers.", "counter", "", float64(st.Dispatched)},
			sample{"smtflexd_cluster_steals_total", "Cells a dispatcher stole from another worker's queue.", "counter", "", float64(st.Steals)},
			sample{"smtflexd_cluster_retries_total", "Cells re-dispatched after a worker loss or shed budget.", "counter", "", float64(st.Retries)},
			sample{"smtflexd_cluster_hedges_total", "Backup dispatches launched against straggling workers.", "counter", "", float64(st.Hedges)},
			sample{"smtflexd_cluster_sheds_total", "503 sheds absorbed from worker admission valves.", "counter", "", float64(st.Sheds)},
			sample{"smtflexd_cluster_fallbacks_total", "Cells computed locally because no live worker remained.", "counter", "", float64(st.Fallbacks)},
			sample{"smtflexd_cluster_integrity_failures_total", "Worker responses quarantined for failing integrity verification (bad key, undecodable, digest mismatch).", "counter", "", float64(st.IntegrityFailures)},
			sample{"smtflexd_cluster_audits_total", "Cells double-dispatched to an independent worker by audit mode.", "counter", "", float64(st.Audits)},
			sample{"smtflexd_cluster_audit_divergence_total", "Audited cells whose independent workers disagreed (each fails its sweep).", "counter", "", float64(st.AuditMismatches)},
			sample{"smtflexd_cluster_drains_total", "Dispatches rerouted off a draining worker.", "counter", "", float64(st.Drains)},
			sample{"smtflexd_cluster_journal_cells", "Cells currently recorded in the write-ahead sweep journal.", "gauge", "", float64(st.Journaled)},
			sample{"smtflexd_cluster_journal_replayed_total", "Journal records replayed into the fleet store at startup.", "counter", "", float64(st.JournalReplayed)},
			sample{"smtflexd_cluster_journal_dropped_total", "Journal records dropped as corrupt or unverifiable at startup.", "counter", "", float64(st.JournalDropped)},
			sample{"smtflexd_cluster_journal_errors_total", "Journal writes that failed (the sweep continues; the cell is simply not durable).", "counter", "", float64(st.JournalErrs)},
		)
	}
	hists := []engineHist{
		{"smtflexd_solver_iterations", "Fixed-point iterations per contention solve.", "", s.solverIters.Snapshot()},
		{"smtflexd_pool_queue_seconds", "Time evaluation tasks spend queued before a pool worker starts them.", "", s.poolQueue.Snapshot()},
	}
	if s.coord != nil {
		// Per-worker dispatch latency and wire volume: the label variants of
		// one metric stay adjacent so write emits each header once.
		const wireHelp = "Bytes moved over the dispatch wire, by direction and worker."
		for _, ds := range s.coord.DispatchStats() {
			hists = append(hists, engineHist{"smtflexd_cluster_dispatch_seconds",
				"Round-trip dispatch latency per worker, successful attempts only.",
				fmt.Sprintf(`{worker=%q}`, ds.Worker), ds.Latency})
			samples = append(samples,
				sample{"smtflexd_cluster_wire_bytes_total", wireHelp, "counter",
					fmt.Sprintf(`{dir="rx",worker=%q}`, ds.Worker), float64(ds.RxBytes)},
				sample{"smtflexd_cluster_wire_bytes_total", wireHelp, "counter",
					fmt.Sprintf(`{dir="tx",worker=%q}`, ds.Worker), float64(ds.TxBytes)})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, samples, hists)
}

func (s *Server) handleSweep(ctx context.Context, r *http.Request) (any, error) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Design == "" {
		return nil, badRequest("missing design")
	}
	kind, err := parseKind(req.Kind)
	if err != nil {
		return nil, err
	}
	d, err := config.DesignByName(req.Design, smtOf(req.SMT))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if req.BandwidthGBps > 0 {
		d = d.WithBandwidth(req.BandwidthGBps)
	}
	sw, err := s.sweepDesign(ctx, d, kind)
	if err != nil {
		return nil, err
	}
	return s.sweepResponse(d, kind, sw, wantMachStats(r)), nil
}

// sweepResponse converts an engine sweep into its wire form, optionally
// attaching the CPI-stack detail. Shared by the POST endpoint and the SSE
// stream's result event.
func (s *Server) sweepResponse(d config.Design, kind study.Kind, sw *study.Sweep, withMach bool) SweepResponse {
	resp := SweepResponse{
		Design:   d.Name,
		Kind:     kind.String(),
		STP:      append([]float64(nil), sw.STP[:]...),
		ANTT:     append([]float64(nil), sw.ANTT[:]...),
		Watts:    append([]float64(nil), sw.Watts[:]...),
		MixNames: append([]string(nil), sw.MixNames...),
		ByMix:    make([][]float64, len(sw.ByMix)),
	}
	for i := range sw.ByMix {
		resp.ByMix[i] = append([]float64(nil), sw.ByMix[i][:]...)
	}
	resp.Solver = SolverDiag{
		Iterations: sw.SolverIterations,
		Residual:   sw.SolverResidual,
		Converged:  sw.SolverConverged,
	}
	if withMach {
		resp.MachStats = sweepMachStats(sw)
	}
	return resp
}

func (s *Server) handlePlace(ctx context.Context, r *http.Request) (any, error) {
	var req PlaceRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Design == "" {
		return nil, badRequest("missing design")
	}
	if len(req.Programs) == 0 || len(req.Programs) > study.MaxThreads {
		return nil, badRequest("programs must list 1..%d benchmarks, got %d", study.MaxThreads, len(req.Programs))
	}
	for _, p := range req.Programs {
		if _, err := workload.ByName(p); err != nil {
			return nil, badRequest("%v", err)
		}
	}
	d, err := config.DesignByName(req.Design, smtOf(req.SMT))
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mix := workload.Mix{ID: "api", Programs: req.Programs}
	placement, err := sched.PlaceCtx(ctx, d, mix, s.sim.Source())
	if err != nil {
		return nil, err
	}
	res, err := s.study().EvaluateMixCtx(ctx, d, mix)
	if err != nil {
		return nil, err
	}
	resp := PlaceResponse{
		Design:         d.Name,
		CoreOf:         append([]int(nil), placement.CoreOf...),
		STP:            res.STP,
		ANTT:           res.ANTT,
		Watts:          res.Watts,
		WattsUngated:   res.WattsUngated,
		BusUtilization: res.BusUtilization,
		Solver: SolverDiag{
			Iterations: res.Diag.Iterations,
			Residual:   res.Diag.Residual,
			Converged:  res.Diag.Converged,
		},
	}
	if wantMachStats(r) {
		resp.MachStats = placeMachStats(res.Threads)
	}
	return resp, nil
}

func (s *Server) handleFigure(ctx context.Context, r *http.Request) (any, error) {
	id := r.PathValue("id")
	if !s.figures[id] {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("unknown figure %q", id)}
	}
	tab, err := s.sim.Figure(ctx, id)
	if err != nil {
		return nil, err
	}
	return TableResponse{Title: tab.Title, Rows: tab.Rows, Cols: tab.Cols, Cells: tab.Cells}, nil
}

// defaultJobsimDesigns mirrors the jobsim CLI's default design list.
var defaultJobsimDesigns = []string{"4B", "8m", "20s", "3B5s", "1B6m"}

func (s *Server) handleJobsim(ctx context.Context, r *http.Request) (any, error) {
	var req JobsimRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Designs) == 0 {
		req.Designs = defaultJobsimDesigns
	}
	if req.Jobs == 0 {
		req.Jobs = 40
	}
	if req.Jobs < 1 || req.Jobs > 100_000 {
		return nil, badRequest("jobs must be 1..100000, got %d", req.Jobs)
	}
	if req.InterarrivalNs == 0 {
		req.InterarrivalNs = 1.5e6
	}
	if req.WorkUops == 0 {
		req.WorkUops = 2e7
	}
	if req.InterarrivalNs < 0 || req.WorkUops <= 0 {
		return nil, badRequest("interarrival_ns and work_uops must be positive")
	}
	if req.Seed == 0 {
		req.Seed = 2014
	}
	jobs := timeline.PoissonWorkload(req.Jobs, req.InterarrivalNs, req.WorkUops, req.Seed)
	runs, err := s.sim.JobStream(ctx, req.Designs, smtOf(req.SMT), jobs)
	if err != nil {
		var he *httpError
		if !errors.As(err, &he) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			// Unknown design names are client errors.
			return nil, badRequest("%v", err)
		}
		return nil, err
	}
	resp := JobsimResponse{Runs: make([]JobsimRun, len(runs))}
	for i, run := range runs {
		resp.Runs[i] = JobsimRun{
			Design:           run.Design,
			MakespanNs:       run.Result.MakespanNs,
			MeanTurnaroundNs: run.Result.MeanTurnaroundNs,
			MeanActive:       run.Result.MeanActive,
			EnergyJoules:     run.Result.EnergyJoules,
		}
	}
	return resp, nil
}

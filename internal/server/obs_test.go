package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"smtflex/internal/core"
	"smtflex/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: the handler goroutine writes the
// request log line after the response is already on the wire, so the test
// must be able to poll without racing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	logs := &syncBuffer{}
	_, ts := newTestServer(t, Config{Logger: slog.New(slog.NewTextHandler(logs, nil))})

	// A sane inbound X-Request-ID is echoed verbatim and lands in the log.
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{"design":"4B"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(requestIDHeader, "client-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "client-rid-1" {
		t.Fatalf("echoed request ID %q, want client-rid-1", got)
	}
	waitFor(t, "rid in request log", func() bool { return strings.Contains(logs.String(), "rid=client-rid-1") })

	// No inbound ID: the server mints one and still echoes it.
	code, _, hdr := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: code=%d", code)
	}
	if rid := hdr.Get(requestIDHeader); !strings.HasPrefix(rid, "r-") {
		t.Fatalf("generated request ID %q, want r- prefix", rid)
	}

	// An oversized inbound ID (it would bloat every log line) is replaced,
	// not echoed. Control characters are likewise rejected by
	// resolveRequestID, but Go's client refuses to even send those.
	req2, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{"design":"4B"}`))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(requestIDHeader, strings.Repeat("x", 200))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(requestIDHeader); !strings.HasPrefix(got, "r-") {
		t.Fatalf("hostile request ID echoed back: %q", got)
	}
}

func TestResolveRequestID(t *testing.T) {
	mk := func(rid string) *http.Request {
		r, err := http.NewRequest("POST", "/v1/sweep", nil)
		if err != nil {
			t.Fatal(err)
		}
		if rid != "" {
			r.Header.Set(requestIDHeader, rid)
		}
		return r
	}
	if got := resolveRequestID(mk("fine-id_123")); got != "fine-id_123" {
		t.Fatalf("sane ID rewritten to %q", got)
	}
	for name, rid := range map[string]string{
		"empty":    "",
		"too long": strings.Repeat("x", 129),
		"control":  "evil\x1b[2Jrid",
		"newline":  "a\nb",
		"high bit": "caf\xe9",
	} {
		if got := resolveRequestID(mk(rid)); !strings.HasPrefix(got, "r-") {
			t.Errorf("%s ID %q accepted as %q, want generated r-", name, rid, got)
		}
	}
}

func TestDebugTracesRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(`{"design":"8m"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(requestIDHeader, "trace-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: code=%d", resp.StatusCode)
	}

	// List: the sweep's trace is buffered, newest first, with its request ID.
	code, body := getJSON(t, ts.URL+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("traces: code=%d body=%s", code, body)
	}
	var list TracesResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	var meta *obs.TraceMeta
	for i := range list.Traces {
		if list.Traces[i].RequestID == "trace-me" {
			meta = &list.Traces[i]
			break
		}
	}
	if meta == nil {
		t.Fatalf("sweep trace not in buffer: %+v", list.Traces)
	}
	if meta.Name != "/v1/sweep" || meta.Spans == 0 || meta.DurNs <= 0 {
		t.Fatalf("trace meta: %+v", meta)
	}

	// Fetch by ID: the full span tree, rooted at the route span.
	code, body = getJSON(t, ts.URL+"/debug/traces/"+meta.ID)
	if code != http.StatusOK {
		t.Fatalf("trace by id: code=%d body=%s", code, body)
	}
	var tr obs.TraceJSON
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != meta.ID || len(tr.Spans) != meta.Spans {
		t.Fatalf("trace json %s/%d spans, want %s/%d", tr.ID, len(tr.Spans), meta.ID, meta.Spans)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"/v1/sweep", "queue.wait", "memo.get", "http.serialize"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}

	// Chrome export: valid trace-event JSON with one event per span.
	code, body = getJSON(t, ts.URL+"/debug/traces/"+meta.ID+"?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export: code=%d", code)
	}
	var cf obs.ChromeFile
	if err := json.Unmarshal(body, &cf); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	if len(cf.TraceEvents) != len(tr.Spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(cf.TraceEvents), len(tr.Spans))
	}

	// Error paths: unknown ID and unknown format.
	if code, _ := getJSON(t, ts.URL+"/debug/traces/t-nope"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: code=%d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/debug/traces/"+meta.ID+"?format=svg"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: code=%d", code)
	}
}

func TestTimestackEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusOK {
		t.Fatalf("sweep: code=%d", code)
	}
	code, body := getJSON(t, ts.URL+"/debug/timestack")
	if code != http.StatusOK {
		t.Fatalf("timestack: code=%d", code)
	}
	var stacks TimestackResponse
	if err := json.Unmarshal(body, &stacks); err != nil {
		t.Fatal(err)
	}
	var sweep *obs.TimeStack
	for i := range stacks.Stacks {
		if stacks.Stacks[i].Name == "/v1/sweep" {
			sweep = &stacks.Stacks[i]
		}
	}
	if sweep == nil {
		t.Fatalf("no /v1/sweep group in %+v", stacks.Stacks)
	}
	if sweep.Traces == 0 || sweep.WallNs <= 0 {
		t.Fatalf("sweep stack: %+v", sweep)
	}
	var pct float64
	for _, p := range sweep.Percent {
		pct += p
	}
	if pct < 99.9 || pct > 100.1 {
		t.Fatalf("sweep stack percentages sum to %g", pct)
	}

	code, body = getJSON(t, ts.URL+"/debug/timestack?format=text")
	if code != http.StatusOK || !strings.Contains(string(body), "group") || !strings.Contains(string(body), "/v1/sweep") {
		t.Fatalf("text timestack: code=%d body=%s", code, body)
	}
	if code, _ := getJSON(t, ts.URL+"/debug/timestack?format=xml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format: code=%d", code)
	}
}

func TestTracingDisabledDebugEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBuffer: -1})
	for _, path := range []string{"/debug/traces", "/debug/traces/t-x", "/debug/timestack"} {
		if code, _ := getJSON(t, ts.URL+path); code != http.StatusNotFound {
			t.Fatalf("GET %s with tracing disabled: code=%d, want 404", path, code)
		}
	}
}

// TestSweepTraceDecomposition is the acceptance bar for span coverage: on a
// cold sweep, the root span's direct children (queue wait, the engine
// computation, serialization) must account for at least 95% of the request's
// wall time — nothing substantial happens outside a span.
func TestSweepTraceDecomposition(t *testing.T) {
	// A fresh small-fidelity engine makes the sweep cold and long enough that
	// constant handler glue (JSON decode, header work) is way under 5%.
	sim := core.NewSimulator(core.WithUopCount(20_000), core.WithMixesPerCount(2))
	s, ts := newTestServer(t, Config{Sim: sim})
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"2B4m"}`); code != http.StatusOK {
		t.Fatalf("sweep: code=%d", code)
	}
	var tr obs.TraceJSON
	for _, cand := range s.col.Traces() {
		if cand.Name == "/v1/sweep" {
			tr = cand.Snapshot()
			break
		}
	}
	if tr.ID == "" {
		t.Fatal("no sweep trace buffered")
	}
	var rootID string
	for _, sp := range tr.Spans {
		if sp.Parent == "" {
			rootID = sp.ID
		}
	}
	var childNs int64
	for _, sp := range tr.Spans {
		if sp.Parent == rootID {
			childNs += sp.DurNs
		}
	}
	if tr.DurNs <= 0 {
		t.Fatalf("root duration %d", tr.DurNs)
	}
	if cover := float64(childNs) / float64(tr.DurNs); cover < 0.95 {
		t.Fatalf("direct children cover %.1f%% of the sweep request (%.2fms of %.2fms), want >= 95%%",
			100*cover, float64(childNs)/1e6, float64(tr.DurNs)/1e6)
	}
}

// TestMetricsPromtextLint parses every line of a live /metrics scrape the way
// a strict Prometheus ingester would: HELP before TYPE before samples, legal
// names and label syntax, parseable values, histogram buckets cumulative with
// le="+Inf" equal to the series count.
func TestMetricsPromtextLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A cold sweep (design unused elsewhere in this package) exercises the
	// solver and pool so the engine histograms have observations.
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"1B6m"}`); code != http.StatusOK {
		t.Fatalf("sweep: code=%d", code)
	}
	code, body := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	typed, values := lintPromText(t, body)

	// The series this PR introduces must be present, and the engine
	// histograms must have real observations after a cold sweep.
	for _, name := range []string{
		"smtflexd_build_info", "smtflexd_solver_iterations", "smtflexd_pool_queue_seconds",
		"smtflexd_memo_hits_total", "smtflexd_memo_misses_total", "smtflexd_memo_coalesced_total",
		"smtflexd_coalesced_sweeps_total",
	} {
		if typed[name] == "" {
			t.Errorf("metric %s missing from scrape", name)
		}
	}
	if values["smtflexd_solver_iterations_count"] == 0 {
		t.Error("solver iterations histogram empty after a cold sweep")
	}
	if values["smtflexd_pool_queue_seconds_count"] == 0 {
		t.Error("pool queue histogram empty after a cold sweep")
	}
	if sum := values["smtflexd_solver_iterations_sum"]; sum <= 0 {
		t.Errorf("solver iterations sum %g after a cold sweep", sum)
	}
}

// lintPromText parses a /metrics exposition the way a strict Prometheus
// ingester would, failing the test on any malformed line. It returns the
// name -> type map and the name+labels -> value map for content assertions.
func lintPromText(t *testing.T, body []byte) (typed map[string]string, values map[string]float64) {
	t.Helper()
	helped := map[string]bool{}
	typed = map[string]string{}
	values = map[string]float64{} // name+labels -> value
	type bucket struct {
		le  float64
		val float64
	}
	buckets := map[string][]bucket{} // histogram series key -> cumulative buckets in order
	for ln, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := parts[0], parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, kind)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}

		name, labels, value := parsePromSample(t, ln+1, line)
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && typed[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if !helped[base] || typed[base] == "" {
			t.Fatalf("line %d: sample %s without preceding HELP/TYPE for %s", ln+1, name, base)
		}
		if typed[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				t.Fatalf("line %d: histogram bucket without le: %q", ln+1, line)
			}
			key := base + seriesKey(labels, "le")
			b := bucket{val: value}
			if le == "+Inf" {
				b.le = 0
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q", ln+1, le)
				}
				b.le = f
			}
			buckets[key] = append(buckets[key], b)
		}
		values[name+seriesKey(labels, "")] = value
	}

	// Histogram invariants: cumulative buckets never decrease and +Inf (the
	// final bucket) equals the series' _count.
	for key, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				t.Fatalf("%s: bucket %d (%g) below previous (%g)", key, i, bs[i].val, bs[i-1].val)
			}
		}
		base, rest, _ := strings.Cut(key, "{")
		countKey := base + "_count"
		if rest != "" && rest != "}" {
			countKey += "{" + rest
		}
		count, ok := values[countKey]
		if !ok {
			t.Fatalf("%s: no matching %s", key, countKey)
		}
		if inf := bs[len(bs)-1].val; inf != count {
			t.Fatalf("%s: le=+Inf bucket %g != count %g", key, inf, count)
		}
	}
	return typed, values
}

// parsePromSample splits one sample line into name, labels and value,
// validating name characters and label syntax (escaped quotes included).
func parsePromSample(t *testing.T, ln int, line string) (string, map[string]string, float64) {
	t.Helper()
	nameEnd := 0
	for nameEnd < len(line) {
		c := line[nameEnd]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':' {
			nameEnd++
			continue
		}
		break
	}
	if nameEnd == 0 || line[0] >= '0' && line[0] <= '9' {
		t.Fatalf("line %d: illegal metric name in %q", ln, line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]
	labels := map[string]string{}
	if strings.HasPrefix(rest, "{") {
		i := 1
		for {
			keyStart := i
			for i < len(rest) && rest[i] != '=' {
				i++
			}
			if i >= len(rest) || keyStart == i {
				t.Fatalf("line %d: malformed label key in %q", ln, line)
			}
			key := rest[keyStart:i]
			i++ // '='
			if i >= len(rest) || rest[i] != '"' {
				t.Fatalf("line %d: label %s value not quoted in %q", ln, key, line)
			}
			i++
			var val strings.Builder
			for i < len(rest) && rest[i] != '"' {
				if rest[i] == '\\' {
					i++
					if i >= len(rest) {
						t.Fatalf("line %d: dangling escape in %q", ln, line)
					}
				}
				val.WriteByte(rest[i])
				i++
			}
			if i >= len(rest) {
				t.Fatalf("line %d: unterminated label value in %q", ln, line)
			}
			i++ // closing '"'
			labels[key] = val.String()
			if i < len(rest) && rest[i] == ',' {
				i++
				continue
			}
			break
		}
		if i >= len(rest) || rest[i] != '}' {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		rest = rest[i+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: no space before value in %q", ln, line)
	}
	value, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("line %d: unparseable value in %q: %v", ln, line, err)
	}
	return name, labels, value
}

// seriesKey renders a label set (minus one excluded key) deterministically.
func seriesKey(labels map[string]string, exclude string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != exclude {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

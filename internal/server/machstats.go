package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"smtflex/internal/config"
	"smtflex/internal/interval"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/study"
)

// The machine-stats surfaces: optional ?machstats=1 CPI-stack attachments on
// /v1/sweep and /v1/place, the GET /debug/machstats registry dump, and the
// GET /v1/sweep?stream=1 live-progress stream (Server-Sent Events) fed by
// the experiment pool's progress hook.

// wantMachStats reports whether the request asked for the CPI-stack
// attachment.
func wantMachStats(r *http.Request) bool {
	switch r.URL.Query().Get("machstats") {
	case "1", "true":
		return true
	}
	return false
}

// wireStack converts an interval CPI stack to its wire form.
func wireStack(st interval.CPIStack) []StackComponent {
	comps := st.Components()
	out := make([]StackComponent, len(comps))
	for i, c := range comps {
		out[i] = StackComponent{Component: c.Name, CPI: c.CPI}
	}
	return out
}

// sweepMachStats builds the sweep attachment from the sweep's mean stacks.
func sweepMachStats(sw *study.Sweep) *SweepMachStats {
	ms := &SweepMachStats{MeanStacks: make([][]StackComponent, study.MaxThreads)}
	for n := 0; n < study.MaxThreads; n++ {
		ms.MeanStacks[n] = wireStack(sw.MeanStack[n])
	}
	return ms
}

// placeMachStats builds the placement attachment from the evaluation's
// per-thread detail.
func placeMachStats(threads []study.MixThread) *PlaceMachStats {
	ms := &PlaceMachStats{Threads: make([]ThreadStack, len(threads))}
	for i, th := range threads {
		ms.Threads[i] = ThreadStack{
			Program:   th.Program,
			Core:      th.Core,
			IPC:       th.IPC,
			UopsPerNs: th.UopsPerNs,
			Total:     th.Stack.Total(),
			Stack:     wireStack(th.Stack),
		}
	}
	return ms
}

// handleMachStats serves the machine-counter registry: the full snapshot as
// JSON (the same schema as the CLIs' -machstats export) or the CPI-stack
// records as CSV with ?format=csv. When the registry is disarmed the
// response says so instead of serving silently-empty data.
func (s *Server) handleMachStats(w http.ResponseWriter, r *http.Request) {
	if !machstats.Enabled() {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "machine counters disabled (run smtflexd with -machstats, or enable collection in-process)"})
		return
	}
	snap := machstats.Default().Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = snap.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = snap.WriteStacksCSV(w)
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("unknown format %q (want json or csv)", format)})
	}
}

// --- live sweep progress (SSE) ---

// sweepStreamRoute labels the stream variant in metrics and logs.
const sweepStreamRoute = "/v1/sweep/stream"

// progressEvent is the data payload of one SSE progress event.
type progressEvent struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// writeSSE emits one Server-Sent Event and flushes it to the client.
func writeSSE(w http.ResponseWriter, f http.Flusher, event string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	f.Flush()
}

// handleSweepStream serves GET /v1/sweep?stream=1: the same sweep as the
// POST endpoint, but with live progress. The response is a Server-Sent
// Events stream of "progress" events ({"done":k,"total":n} pool tasks),
// terminated by one "result" event carrying the full SweepResponse, or one
// "error" event. The sweep parameters arrive as query parameters (design,
// kind, smt, bandwidth_gbps, machstats) since a GET carries no body.
//
// The handler cannot ride the shared endpoint() wrapper — that wrapper
// serializes exactly one JSON document after the handler returns, while SSE
// interleaves writes with computation — so it performs its own admission
// acquire/release, deadline, metrics and logging. Cache hits and coalesced
// sweeps produce no progress events (nothing is computed); the result event
// still arrives.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := resolveRequestID(r)
	w.Header().Set(requestIDHeader, rid)

	fail := func(code int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		writeJSON(w, code, ErrorResponse{Error: msg})
		s.met.observe(sweepStreamRoute, code, time.Since(start))
		s.log.Warn("request", "method", r.Method, "route", sweepStreamRoute, "path", r.URL.Path,
			"rid", rid, "code", code, "err", msg)
	}

	q := r.URL.Query()
	if q.Get("stream") != "1" {
		fail(http.StatusBadRequest, "GET /v1/sweep requires ?stream=1 (use POST for a plain sweep)")
		return
	}
	design := q.Get("design")
	if design == "" {
		fail(http.StatusBadRequest, "missing design")
		return
	}
	kind, err := parseKind(q.Get("kind"))
	if err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	smt := true
	if raw := q.Get("smt"); raw == "0" || raw == "false" {
		smt = false
	}
	d, err := config.DesignByName(design, smt)
	if err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}
	if raw := q.Get("bandwidth_gbps"); raw != "" {
		var bw float64
		if _, err := fmt.Sscanf(raw, "%g", &bw); err != nil || bw <= 0 {
			fail(http.StatusBadRequest, "invalid bandwidth_gbps %q", raw)
			return
		}
		d = d.WithBandwidth(bw)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		fail(http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		fail(http.StatusBadRequest, "%v", err)
		return
	}

	rctx := obs.WithRequestID(r.Context(), rid)
	if err := s.adm.acquire(rctx); err != nil {
		code := statusClientClosed
		if err == errQueueFull {
			s.met.reject()
			w.Header().Set("Retry-After", retryAfter())
			code = http.StatusServiceUnavailable
		}
		fail(code, "admission queue full, retry later")
		return
	}
	defer s.adm.release()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx, cancel := context.WithTimeout(rctx, timeout)
	defer cancel()

	// The pool's progress hook runs on worker goroutines; the HTTP response
	// writer is not concurrency-safe, so events funnel through a channel the
	// handler goroutine drains. A full channel drops the oldest granularity —
	// progress is monotone, so later events carry strictly more information.
	progCh := make(chan progressEvent, 64)
	sctx := study.WithProgress(ctx, func(done, total int) {
		select {
		case progCh <- progressEvent{Done: done, Total: total}:
		default:
		}
	})
	type outcome struct {
		sw  *study.Sweep
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		sw, err := s.sweepDesign(sctx, d, kind)
		resCh <- outcome{sw, err}
	}()

	code := http.StatusOK
	for {
		select {
		case ev := <-progCh:
			writeSSE(w, flusher, "progress", ev)
		case out := <-resCh:
			// Drain progress queued behind the result so the stream never
			// ends on a stale count.
			for {
				select {
				case ev := <-progCh:
					writeSSE(w, flusher, "progress", ev)
					continue
				default:
				}
				break
			}
			if out.err != nil {
				code = statusOf(out.err)
				if kind := failureKind(out.err); kind != "" {
					s.met.failure(kind)
				}
				writeSSE(w, flusher, "error", ErrorResponse{Error: out.err.Error()})
			} else {
				resp := s.sweepResponse(d, kind, out.sw, wantMachStats(r))
				writeSSE(w, flusher, "result", resp)
			}
			dur := time.Since(start)
			s.met.observe(sweepStreamRoute, code, dur)
			s.log.Info("request", "method", r.Method, "route", sweepStreamRoute,
				"path", r.URL.Path, "rid", rid, "code", code, "dur_ms", dur.Milliseconds())
			return
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"smtflex/internal/cluster"
	"smtflex/internal/config"
	"smtflex/internal/workload"
)

// TestRetryAfterJitterBounds pins the shed hint's range: always within
// [retryAfterMin, retryAfterMax], and actually jittered (more than one
// distinct value over many draws — a constant hint would re-synchronize
// shed clients into the next thundering herd).
func TestRetryAfterJitterBounds(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		v := retryAfter()
		secs, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("retryAfter() = %q, not an integer", v)
		}
		if secs < retryAfterMin || secs > retryAfterMax {
			t.Fatalf("retryAfter() = %d, want within [%d, %d]", secs, retryAfterMin, retryAfterMax)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("retryAfter() produced a single value over 1000 draws; want jitter")
	}
}

// TestWorkerRoleServesCells drives the worker-role daemon end to end: the
// cell route evaluates through the shared endpoint spine, healthz reports
// the role, /debug/cluster dumps the content-store counters, and a
// mismatched fleet fingerprint is refused with 409.
func TestWorkerRoleServesCells(t *testing.T) {
	wk := cluster.NewWorker(sharedSim().Study(), 0)
	_, ts := newTestServer(t, Config{ClusterWorker: wk})

	st := sharedSim().Study()
	req := fmt.Sprintf(`{"key":"k1","fingerprint":%q,"design":"4B","smt":true,"kind":"homogeneous","n":2,"mix_id":"hom-mcf-2","programs":["mcf","mcf"]}`, st.Fingerprint())
	code, body, _ := postJSON(t, ts.URL+cluster.CellPath, req)
	if code != http.StatusOK {
		t.Fatalf("cell: code=%d body=%s", code, body)
	}
	var resp cluster.CellResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode cell response: %v", err)
	}
	if resp.STP <= 0 || len(resp.Threads) != 2 {
		t.Errorf("cell response: STP=%g threads=%d, want positive STP and 2 threads", resp.STP, len(resp.Threads))
	}

	// The engine result must match a direct evaluation bit-for-bit.
	d, _ := config.DesignByName("4B", true)
	want, err := st.EvaluateMixCtx(context.Background(), d, workload.Mix{ID: "hom-mcf-2", Programs: []string{"mcf", "mcf"}})
	if err != nil {
		t.Fatalf("direct evaluation: %v", err)
	}
	if resp.STP != want.STP || resp.ANTT != want.ANTT || resp.Watts != want.Watts {
		t.Errorf("cell response differs from direct evaluation: got STP=%v ANTT=%v, want STP=%v ANTT=%v",
			resp.STP, resp.ANTT, want.STP, want.ANTT)
	}

	// Fingerprint mismatch is terminal: 409.
	bad := `{"key":"k2","fingerprint":"bogus","design":"4B","smt":true,"programs":["mcf"]}`
	code, body, _ = postJSON(t, ts.URL+cluster.CellPath, bad)
	if code != http.StatusConflict {
		t.Fatalf("mismatched fingerprint: code=%d body=%s, want 409", code, body)
	}

	// Role surfaces.
	code, body = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"role":"worker"`) {
		t.Errorf("healthz: code=%d body=%s, want role=worker", code, body)
	}
	code, body = getJSON(t, ts.URL+"/debug/cluster")
	if code != http.StatusOK || !strings.Contains(string(body), `"cells"`) {
		t.Errorf("/debug/cluster: code=%d body=%s, want cells cache counters", code, body)
	}
	code, body = getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), `smtflexd_cache_entries{cache="cells"}`) {
		t.Errorf("/metrics missing cells cache series (code=%d)", code)
	}
}

// TestCoordinatorRoleFansOut stands up a worker daemon and a coordinator
// daemon, runs a sweep through the coordinator's public API, and asserts
// the response is byte-identical to a solo daemon's — plus the coordinator
// surfaces: healthz worker liveness, /debug/cluster, fleet metrics.
func TestCoordinatorRoleFansOut(t *testing.T) {
	_, workerTS := newTestServer(t, Config{ClusterWorker: cluster.NewWorker(sharedSim().Study(), 0)})
	coord, err := cluster.NewCoordinator(sharedSim().Study(), []string{workerTS.URL}, cluster.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	_, coordTS := newTestServer(t, Config{Coordinator: coord})
	_, soloTS := newTestServer(t, Config{})

	const body = `{"design":"4B","kind":"heterogeneous"}`
	codeC, gotC, _ := postJSON(t, coordTS.URL+"/v1/sweep", body)
	codeS, gotS, _ := postJSON(t, soloTS.URL+"/v1/sweep", body)
	if codeC != http.StatusOK || codeS != http.StatusOK {
		t.Fatalf("sweep: coordinator=%d solo=%d", codeC, codeS)
	}
	if string(gotC) != string(gotS) {
		t.Fatal("coordinator sweep response differs from solo daemon's")
	}

	code, hb := getJSON(t, coordTS.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(hb), `"role":"coordinator"`) || !strings.Contains(string(hb), `"alive":true`) {
		t.Errorf("coordinator healthz: code=%d body=%s, want role and live worker", code, hb)
	}
	code, db := getJSON(t, coordTS.URL+"/debug/cluster")
	if code != http.StatusOK || !strings.Contains(string(db), `"dispatched"`) {
		t.Errorf("/debug/cluster: code=%d body=%s", code, db)
	}
	code, mb := getJSON(t, coordTS.URL+"/metrics")
	if code != http.StatusOK ||
		!strings.Contains(string(mb), "smtflexd_cluster_dispatched_total") ||
		!strings.Contains(string(mb), `smtflexd_memo_hits_total{cache="fleet"}`) {
		t.Errorf("/metrics missing fleet series (code=%d)", code)
	}
}

// TestConfigRejectsDualRole pins the one-role-per-daemon contract.
func TestConfigRejectsDualRole(t *testing.T) {
	wk := cluster.NewWorker(sharedSim().Study(), 0)
	coord, err := cluster.NewCoordinator(sharedSim().Study(), []string{"http://x:1"}, cluster.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if _, err := New(Config{Sim: sharedSim(), Coordinator: coord, ClusterWorker: wk}); err == nil {
		t.Fatal("Config with both roles accepted, want error")
	}
}

// TestSoloDebugCluster: the surface exists in every role.
func TestSoloDebugCluster(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/debug/cluster")
	if code != http.StatusOK || !strings.Contains(string(body), `"role":"solo"`) {
		t.Errorf("/debug/cluster: code=%d body=%s, want solo role", code, body)
	}
}

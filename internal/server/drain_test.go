package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"smtflex/internal/cluster"
)

// TestDrainRefusesNewWork pins the graceful-drain contract: after
// BeginDrain, new engine-backed requests — including a coordinator's cell
// dispatches — get 503 with the cluster draining header (so a coordinator
// reroutes instead of burning its shed budget), /healthz turns 503
// "draining", and the drain surfaces on /metrics.
func TestDrainRefusesNewWork(t *testing.T) {
	wk := cluster.NewWorker(sharedSim().Study(), 0)
	s, ts := newTestServer(t, Config{ClusterWorker: wk})

	// Before draining: a cell evaluates normally.
	req := fmt.Sprintf(`{"key":"k1","fingerprint":%q,"design":"4B","smt":true,"kind":"homogeneous","n":1,"mix_id":"hom-mcf-1","programs":["mcf"]}`, sharedSim().Study().Fingerprint())
	if code, body, _ := postJSON(t, ts.URL+cluster.CellPath, req); code != http.StatusOK {
		t.Fatalf("pre-drain cell: code=%d body=%s", code, body)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	code, body, hdr := postJSON(t, ts.URL+cluster.CellPath, req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining cell dispatch: code=%d body=%s, want 503", code, body)
	}
	if hdr.Get(cluster.DrainingHeader) == "" {
		t.Error("draining 503 missing the draining header")
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}

	// Sweeps are refused the same way (shared endpoint spine).
	if code, _, hdr := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusServiceUnavailable || hdr.Get(cluster.DrainingHeader) == "" {
		t.Errorf("draining sweep: code=%d draining-header=%q, want 503 with header", code, hdr.Get(cluster.DrainingHeader))
	}

	// Healthz flips so load balancers and coordinator probes steer away.
	code, hb := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(hb), `"status":"draining"`) {
		t.Errorf("draining healthz: code=%d body=%s, want 503 draining", code, hb)
	}

	// Metrics surface the drain; scraping keeps working while draining.
	code, mb := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics while draining: code=%d", code)
	}
	if !strings.Contains(string(mb), "smtflexd_draining 1") {
		t.Error("metrics missing smtflexd_draining 1")
	}
	if !strings.Contains(string(mb), "smtflexd_drained_total 2") {
		t.Error("metrics missing smtflexd_drained_total 2")
	}
	if s.Inflight() != 0 {
		t.Errorf("Inflight() = %d with no requests executing, want 0", s.Inflight())
	}
}

// TestCoordinatorMetricsIntegritySeries: the integrity/durability series are
// present on a coordinator daemon's /metrics from the start (zero-valued
// counters still scrape), and healthz carries breaker state per worker.
func TestCoordinatorMetricsIntegritySeries(t *testing.T) {
	_, workerTS := newTestServer(t, Config{ClusterWorker: cluster.NewWorker(sharedSim().Study(), 0)})
	coord, err := cluster.NewCoordinator(sharedSim().Study(), []string{workerTS.URL}, cluster.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	_, coordTS := newTestServer(t, Config{Coordinator: coord})

	code, mb := getJSON(t, coordTS.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	for _, series := range []string{
		"smtflexd_cluster_integrity_failures_total",
		"smtflexd_cluster_audits_total",
		"smtflexd_cluster_audit_divergence_total",
		"smtflexd_cluster_drains_total",
		"smtflexd_cluster_journal_cells",
		"smtflexd_cluster_journal_replayed_total",
		"smtflexd_cluster_journal_dropped_total",
		"smtflexd_cluster_journal_errors_total",
	} {
		if !strings.Contains(string(mb), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}

	code, hb := getJSON(t, coordTS.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(hb), `"breaker":"closed"`) {
		t.Errorf("healthz: code=%d body=%s, want per-worker breaker state", code, hb)
	}
}

package server

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"smtflex/internal/machstats"
	"smtflex/internal/perfdiff"
)

// The perf-snapshot surfaces: GET /debug/perfsnap captures the daemon's
// current performance state as a versioned perfdiff bundle (?pprof=1 attaches
// heap + CPU profiles); GET /debug/perfsnap/ring serves the continuous
// profiler's bounded ring; and StartPerfLoops runs the optional background
// loops — periodic profile capture and the snap-on-drift watcher that
// auto-dumps a snapshot beside the journal when engine histograms shift past
// tolerance versus a committed baseline.

// perf bundles the Server's performance-observability state.
type perf struct {
	ring     *perfdiff.ProfRing
	interval time.Duration // 0 = continuous profiling off

	drift         *perfdiff.DriftWatcher
	driftInterval time.Duration
	dumpDir       string
	drifts        atomic.Int64 // smtflexd_perf_drift_total
	dumps         atomic.Int64 // drift snapshots written
	dumpErrs      atomic.Int64
}

// maxDriftDumps bounds how many drift snapshots one daemon writes: drift that
// persists re-fires every check, and the disk should hold the first captures
// (closest to the transition), not an unbounded stream of identical ones.
const maxDriftDumps = 16

// defaultDriftInterval is how often the drift watcher compares live
// histograms against the baseline.
const defaultDriftInterval = 15 * time.Second

// profileWindow picks the CPU capture length for a continuous-profiling
// interval: half the interval, capped at one second — long enough to catch
// the hot path, short enough that profiling overhead stays marginal.
func profileWindow(interval time.Duration) time.Duration {
	w := interval / 2
	if w > time.Second {
		w = time.Second
	}
	return w
}

// perfHistograms snapshots the engine histograms in canonical order.
func (s *Server) perfHistograms() []perfdiff.HistogramState {
	return []perfdiff.HistogramState{
		perfdiff.HistState(perfdiff.HistSolverIterations, s.solverIters.Snapshot()),
		perfdiff.HistState(perfdiff.HistPoolQueueSeconds, s.poolQueue.Snapshot()),
	}
}

// PerfSnapshot captures the daemon's performance state. On a coordinator the
// snapshot is fleet-wide: the merged worker scrape (the same path as
// /debug/fleet) contributes the fleet's per-route time stacks. Capture only
// reads already-collected state — it never perturbs the engine.
func (s *Server) PerfSnapshot(ctx context.Context) *perfdiff.Snapshot {
	opts := perfdiff.CaptureOpts{Role: s.role()}
	if s.col != nil {
		opts.Traces = s.col.Snapshots()
	}
	if machstats.Enabled() {
		mach := machstats.Default().Snapshot()
		opts.Mach = &mach
	}
	opts.Histograms = s.perfHistograms()
	counters := s.study().CacheCounters()
	if s.coord != nil {
		counters = append(counters, s.coord.CacheCounters()...)
	}
	if s.worker != nil {
		counters = append(counters, s.worker.CacheCounters()...)
	}
	opts.Caches = counters
	if s.coord != nil {
		fleet := s.coord.FleetSnapshot(ctx)
		opts.FleetStacks = fleet.TimeStacks
	}
	return perfdiff.Capture(opts)
}

func (s *Server) handlePerfsnap(w http.ResponseWriter, r *http.Request) {
	snap := s.PerfSnapshot(r.Context())
	if r.URL.Query().Get("pprof") == "1" {
		// Heap is instant; CPU needs a window (?profile_ms=, default 1s,
		// capped; 0 = heap only). A failed CPU capture — another profiler
		// already running — degrades to heap-only rather than failing the
		// whole snapshot.
		if hp, err := perfdiff.CaptureHeapProfile(); err == nil {
			snap.Profiles = append(snap.Profiles, hp)
		}
		ms := int64(1000)
		if raw := r.URL.Query().Get("profile_ms"); raw != "" {
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil || v < 0 {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid profile_ms " + strconv.Quote(raw)})
				return
			}
			ms = v
		}
		if ms > 30_000 {
			ms = 30_000
		}
		if ms > 0 {
			if cp, err := perfdiff.CaptureCPUProfile(time.Duration(ms) * time.Millisecond); err == nil {
				snap.Profiles = append(snap.Profiles, cp)
			} else {
				s.log.Warn("perfsnap cpu profile skipped", "err", err)
			}
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// PerfRingResponse is the /debug/perfsnap/ring body.
type PerfRingResponse struct {
	// Interval is the configured capture cadence in seconds.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Captures and Skipped count capture attempts since start.
	Captures int64 `json:"captures"`
	Skipped  int64 `json:"skipped"`
	// Profiles is the ring's contents, oldest first.
	Profiles []perfdiff.Profile `json:"profiles"`
}

func (s *Server) handlePerfRing(w http.ResponseWriter, _ *http.Request) {
	if s.perf.interval <= 0 {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "continuous profiling disabled (start with -prof-interval)"})
		return
	}
	caps, skipped := s.perf.ring.Counts()
	writeJSON(w, http.StatusOK, PerfRingResponse{
		IntervalSeconds: s.perf.interval.Seconds(),
		Captures:        caps,
		Skipped:         skipped,
		Profiles:        s.perf.ring.Snapshot(),
	})
}

// StartPerfLoops launches the configured background loops: the continuous
// profiling ring (ProfInterval > 0) and the drift watcher (PerfBaseline
// set). Both stop when ctx is cancelled. Safe to call once at startup;
// a daemon with neither configured starts nothing.
func (s *Server) StartPerfLoops(ctx context.Context) {
	if s.perf.interval > 0 {
		go s.perf.ring.Run(ctx, s.perf.interval, profileWindow(s.perf.interval))
		s.log.Info("continuous profiling armed", "interval", s.perf.interval, "ring", perfdiff.DefaultProfRingCap)
	}
	if s.perf.drift != nil {
		go s.driftLoop(ctx)
		s.log.Info("perf drift watcher armed", "interval", s.perf.driftInterval, "dump_dir", s.perf.dumpDir)
	}
}

// driftLoop periodically compares live engine histograms against the armed
// baseline. Every drifted quantile bumps smtflexd_perf_drift_total; the first
// maxDriftDumps drift events also capture a full snapshot next to the journal
// (atomic temp+rename, like flight-recorder dumps) so the postmortem has the
// state from the moment of the shift, not from whenever someone noticed.
func (s *Server) driftLoop(ctx context.Context) {
	t := time.NewTicker(s.perf.driftInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			drifts := s.perf.drift.Check(s.perfHistograms())
			if len(drifts) == 0 {
				continue
			}
			s.perf.drifts.Add(int64(len(drifts)))
			s.log.Warn("perf drift vs baseline", "drifts", perfdiff.FormatDrifts(drifts))
			if s.perf.dumps.Load() >= maxDriftDumps {
				continue
			}
			snap := s.PerfSnapshot(ctx)
			path, err := snap.WriteDir(s.perf.dumpDir, "perfdrift")
			if err != nil {
				s.perf.dumpErrs.Add(1)
				s.log.Error("perf drift snapshot failed", "err", err)
				continue
			}
			s.perf.dumps.Add(1)
			s.log.Warn("perf drift snapshot written", "path", path)
		}
	}
}

// timestackQuantiles summarizes the engine histograms for /debug/timestack:
// the quantile view of the same state the snapshot carries in full.
type HistQuantiles struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

func (s *Server) timestackQuantiles() []HistQuantiles {
	out := make([]HistQuantiles, 0, 2)
	for _, h := range s.perfHistograms() {
		snap := h.Snapshot()
		out = append(out, HistQuantiles{
			Name:  h.Name,
			Count: h.Count,
			P50:   snap.Quantile(0.50),
			P95:   snap.Quantile(0.95),
			P99:   snap.Quantile(0.99),
		})
	}
	return out
}

package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"smtflex/internal/machstats"
	"smtflex/internal/study"
)

// TestSweepMachStatsAttachment checks the ?machstats=1 opt-in on the sweep
// endpoint: absent by default, and a full per-thread-count mean-stack table
// when asked for.
func TestSweepMachStatsAttachment(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"design":"2B4m","kind":"heterogeneous"}`

	code, raw, _ := postJSON(t, ts.URL+"/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("sweep: code %d: %s", code, raw)
	}
	var plain SweepResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.MachStats != nil {
		t.Fatal("mach_stats attached without ?machstats=1")
	}

	code, raw, _ = postJSON(t, ts.URL+"/v1/sweep?machstats=1", body)
	if code != http.StatusOK {
		t.Fatalf("sweep?machstats=1: code %d: %s", code, raw)
	}
	var resp SweepResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MachStats == nil {
		t.Fatal("no mach_stats attachment with ?machstats=1")
	}
	if len(resp.MachStats.MeanStacks) != study.MaxThreads {
		t.Fatalf("mean_stacks has %d entries, want %d", len(resp.MachStats.MeanStacks), study.MaxThreads)
	}
	for n, stack := range resp.MachStats.MeanStacks {
		if len(stack) != len(machstats.ComponentNames()) {
			t.Fatalf("n=%d: %d components, want %d", n+1, len(stack), len(machstats.ComponentNames()))
		}
		var total float64
		for _, c := range stack {
			total += c.CPI
		}
		if total <= 0 {
			t.Errorf("n=%d: mean stack sums to %g, want > 0", n+1, total)
		}
	}
}

// TestPlaceMachStatsAttachment checks the per-thread stacks on /v1/place.
func TestPlaceMachStatsAttachment(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"design":"4B","programs":["tonto","hmmer","bzip2"]}`
	code, raw, _ := postJSON(t, ts.URL+"/v1/place?machstats=1", body)
	if code != http.StatusOK {
		t.Fatalf("place?machstats=1: code %d: %s", code, raw)
	}
	var resp PlaceResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.MachStats == nil {
		t.Fatal("no mach_stats attachment with ?machstats=1")
	}
	if len(resp.MachStats.Threads) != 3 {
		t.Fatalf("%d thread stacks, want 3", len(resp.MachStats.Threads))
	}
	for i, th := range resp.MachStats.Threads {
		if th.Program == "" || th.Total <= 0 || len(th.Stack) == 0 {
			t.Errorf("thread %d: incomplete stack detail: %+v", i, th)
		}
		var sum float64
		for _, c := range th.Stack {
			sum += c.CPI
		}
		if diff := sum - th.Total; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("thread %d: components sum to %g, total %g", i, sum, th.Total)
		}
	}
}

// TestDebugMachStats checks the registry dump endpoint: 404 while disarmed,
// JSON snapshot with stacks after an armed evaluation, and the CSV variant.
func TestDebugMachStats(t *testing.T) {
	machstats.Disable()
	_, ts := newTestServer(t, Config{})

	code, raw := getJSON(t, ts.URL+"/debug/machstats")
	if code != http.StatusNotFound {
		t.Fatalf("disarmed /debug/machstats: code %d: %s", code, raw)
	}

	machstats.Reset()
	machstats.Enable()
	t.Cleanup(machstats.Disable)
	t.Cleanup(machstats.Reset)
	if code, raw, _ := postJSON(t, ts.URL+"/v1/place", `{"design":"4B","programs":["tonto","hmmer"]}`); code != http.StatusOK {
		t.Fatalf("place: code %d: %s", code, raw)
	}

	code, raw = getJSON(t, ts.URL+"/debug/machstats")
	if code != http.StatusOK {
		t.Fatalf("armed /debug/machstats: code %d: %s", code, raw)
	}
	var snap machstats.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Stacks) == 0 {
		t.Fatal("no CPI-stack records after an armed evaluation")
	}
	if len(snap.Counters) == 0 {
		t.Fatal("no counters after an armed evaluation")
	}

	code, raw = getJSON(t, ts.URL+"/debug/machstats?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv: code %d: %s", code, raw)
	}
	if !strings.HasPrefix(string(raw), "engine,design,benchmark,core,thread,component,cpi") {
		t.Fatalf("csv header missing: %q", string(raw[:min(len(raw), 80)]))
	}

	if code, raw = getJSON(t, ts.URL+"/debug/machstats?format=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad format: code %d: %s", code, raw)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// readSSE parses an SSE stream into events.
func readSSE(t *testing.T, r *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	return events
}

// TestSweepStream checks the SSE live-progress endpoint: progress events
// with monotone done counts, a terminal result event whose payload matches
// the POST endpoint's response, and error handling on bad input.
func TestSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A cold sweep must emit progress; use a design no other test sweeps so
	// the cache cannot have it. (sharedSim is shared across the package.)
	resp, err := http.Get(ts.URL + "/v1/sweep?stream=1&design=1B6m&kind=heterogeneous&machstats=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	events := readSSE(t, bufio.NewScanner(resp.Body))
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("final event %q, want result; data: %s", last.event, last.data)
	}
	var sw SweepResponse
	if err := json.Unmarshal([]byte(last.data), &sw); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if sw.Design != "1B6m" || len(sw.STP) != study.MaxThreads {
		t.Fatalf("result payload incomplete: %+v", sw)
	}
	if sw.MachStats == nil {
		t.Fatal("stream result missing mach_stats despite machstats=1")
	}
	prevDone := -1
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Fatalf("unexpected event %q before result", ev.event)
		}
		sawProgress = true
		var p struct{ Done, Total int }
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("progress payload: %v", err)
		}
		if p.Done <= prevDone {
			t.Fatalf("progress not monotone: %d after %d", p.Done, prevDone)
		}
		prevDone = p.Done
		if p.Total != study.MaxThreads*2 { // sharedSim uses MixesPerCount=2
			t.Fatalf("progress total %d, want %d", p.Total, study.MaxThreads*2)
		}
	}
	if !sawProgress {
		t.Fatal("cold sweep emitted no progress events")
	}

	// Parameter validation.
	for _, url := range []string{
		"/v1/sweep?design=1B6m",          // missing stream=1
		"/v1/sweep?stream=1",             // missing design
		"/v1/sweep?stream=1&design=nope", // unknown design
		"/v1/sweep?stream=1&design=1B6m&kind=bogus",
	} {
		if code, raw := getJSON(t, ts.URL+url); code != http.StatusBadRequest {
			t.Errorf("GET %s: code %d, want 400: %s", url, code, raw)
		}
	}
}

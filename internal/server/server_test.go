package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smtflex/internal/config"
	"smtflex/internal/core"
	"smtflex/internal/study"
	"smtflex/internal/timeline"
	"smtflex/internal/workload"
)

// testSimOpts builds every engine in this file identically so responses can
// be compared bit-for-bit across independently constructed simulators.
func testSimOpts() []core.Option {
	return []core.Option{core.WithUopCount(60_000), core.WithMixesPerCount(2)}
}

var (
	simOnce sync.Once
	sim     *core.Simulator
)

func sharedSim() *core.Simulator {
	simOnce.Do(func() { sim = core.NewSimulator(testSimOpts()...) })
	return sim
}

var (
	serialOnce sync.Once
	serialSim  *core.Simulator
)

// sharedSerialSim is a single-worker engine for the cancellation and
// timeout tests: serial evaluation makes sweeps slow enough to interrupt
// mid-flight and the evaluation counter attributable. Shared because
// profiling a fresh engine is expensive under -race.
func sharedSerialSim() *core.Simulator {
	serialOnce.Do(func() {
		serialSim = core.NewSimulator(core.WithUopCount(60_000), core.WithParallelism(1))
	})
	return serialSim
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer stands up a Server over httptest, defaulting to the shared
// engine and a silent logger.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Sim == nil {
		cfg.Sim = sharedSim()
	}
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: code=%d body=%s", code, body)
	}
	// A request must show up in the scrape.
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusOK {
		t.Fatalf("sweep for metrics: code=%d", code)
	}
	code, body = getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: code=%d", code)
	}
	for _, want := range []string{
		`smtflexd_requests_total{route="/v1/sweep",code="200"}`,
		`smtflexd_request_duration_seconds_bucket{route="/v1/sweep",le="+Inf"}`,
		"smtflexd_rejected_total",
		`smtflexd_cache_entries{cache="sweeps"}`,
		"smtflexd_queue_waiting",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSweepMatchesEngine is the shared-engine equivalence check: the table a
// client gets over the wire must be bit-identical to what the batch path
// computes from an independently constructed engine. Go's JSON encoding of
// float64 round-trips exactly, so == is the right comparison.
func TestSweepMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: code=%d body=%s", code, body)
	}
	var got SweepResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	ref := core.NewSimulator(testSimOpts()...)
	d, err := config.DesignByName("4B", true)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ref.Study().SweepDesign(context.Background(), d, study.Homogeneous)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.STP) != study.MaxThreads || len(got.ByMix) != len(sw.ByMix) {
		t.Fatalf("shape: stp=%d bymix=%d", len(got.STP), len(got.ByMix))
	}
	for i := 0; i < study.MaxThreads; i++ {
		if got.STP[i] != sw.STP[i] || got.ANTT[i] != sw.ANTT[i] || got.Watts[i] != sw.Watts[i] {
			t.Fatalf("n=%d: server (%v,%v,%v) != engine (%v,%v,%v)",
				i+1, got.STP[i], got.ANTT[i], got.Watts[i], sw.STP[i], sw.ANTT[i], sw.Watts[i])
		}
	}
	for m := range sw.ByMix {
		if got.MixNames[m] != sw.MixNames[m] {
			t.Fatalf("mix %d name %q != %q", m, got.MixNames[m], sw.MixNames[m])
		}
		for i := 0; i < study.MaxThreads; i++ {
			if got.ByMix[m][i] != sw.ByMix[m][i] {
				t.Fatalf("mix %d n=%d: %v != %v", m, i+1, got.ByMix[m][i], sw.ByMix[m][i])
			}
		}
	}
}

// TestSweepCoalesces fires identical concurrent sweeps at a cold design and
// checks they collapse onto one engine computation.
func TestSweepCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 8})
	before := s.study().Evaluations()

	const clients = 4
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
				strings.NewReader(`{"design":"3B5s","kind":"homogeneous"}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: code %d", i, resp.StatusCode)
				return
			}
			bodies[i], err = io.ReadAll(resp.Body)
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d response differs from client 0", i)
		}
	}
	// One homogeneous sweep costs exactly 24 thread counts x all
	// benchmarks; four coalesced clients must not multiply that.
	oneSweep := int64(study.MaxThreads * len(workload.Names()))
	if delta := s.study().Evaluations() - before; delta != oneSweep {
		t.Fatalf("4 coalesced sweeps cost %d evaluations, want %d (one sweep)", delta, oneSweep)
	}
	// A fifth request is a pure cache hit.
	mid := s.study().Evaluations()
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"3B5s","kind":"homogeneous"}`); code != http.StatusOK {
		t.Fatalf("cached sweep: code=%d", code)
	}
	if delta := s.study().Evaluations() - mid; delta != 0 {
		t.Fatalf("cached sweep recomputed %d evaluations", delta)
	}
}

func TestPlace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postJSON(t, ts.URL+"/v1/place",
		`{"design":"4B","programs":["tonto","calculix","tonto","calculix"]}`)
	if code != http.StatusOK {
		t.Fatalf("place: code=%d body=%s", code, body)
	}
	var got PlaceResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.CoreOf) != 4 {
		t.Fatalf("CoreOf has %d entries, want 4", len(got.CoreOf))
	}
	if got.STP <= 0 || got.ANTT < 1 || got.Watts <= 0 {
		t.Fatalf("implausible metrics: %+v", got)
	}
}

func TestFigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getJSON(t, ts.URL+"/v1/figures/table1")
	if code != http.StatusOK {
		t.Fatalf("figure: code=%d body=%s", code, body)
	}
	var got TableResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := sharedSim().Figure(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != want.Title || len(got.Cells) != len(want.Cells) {
		t.Fatalf("table mismatch: %q/%d vs %q/%d", got.Title, len(got.Cells), want.Title, len(want.Cells))
	}
	for r := range want.Cells {
		for c := range want.Cells[r] {
			if got.Cells[r][c] != want.Cells[r][c] {
				t.Fatalf("cell [%d][%d]: %v != %v", r, c, got.Cells[r][c], want.Cells[r][c])
			}
		}
	}

	if code, _ := getJSON(t, ts.URL+"/v1/figures/fig99"); code != http.StatusNotFound {
		t.Fatalf("unknown figure: code=%d, want 404", code)
	}
}

func TestJobsimMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postJSON(t, ts.URL+"/v1/jobsim", `{"designs":["4B","8m"],"jobs":10}`)
	if code != http.StatusOK {
		t.Fatalf("jobsim: code=%d body=%s", code, body)
	}
	var got JobsimResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Runs[0].Design != "4B" || got.Runs[1].Design != "8m" {
		t.Fatalf("runs: %+v", got.Runs)
	}
	jobs := timeline.PoissonWorkload(10, 1.5e6, 2e7, 2014)
	want, err := sharedSim().JobStream(context.Background(), []string{"4B", "8m"}, true, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Runs[i].MakespanNs != want[i].Result.MakespanNs ||
			got.Runs[i].MeanTurnaroundNs != want[i].Result.MeanTurnaroundNs ||
			got.Runs[i].EnergyJoules != want[i].Result.EnergyJoules {
			t.Fatalf("run %d: %+v != %+v", i, got.Runs[i], want[i].Result)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"unknown design", "/v1/sweep", `{"design":"nope"}`, http.StatusBadRequest},
		{"missing design", "/v1/sweep", `{}`, http.StatusBadRequest},
		{"bad json", "/v1/sweep", `{"design":`, http.StatusBadRequest},
		{"unknown field", "/v1/sweep", `{"desgin":"4B"}`, http.StatusBadRequest},
		{"bad kind", "/v1/sweep", `{"design":"4B","kind":"weird"}`, http.StatusBadRequest},
		{"bad timeout", "/v1/sweep?timeout_ms=abc", `{"design":"4B"}`, http.StatusBadRequest},
		{"no programs", "/v1/place", `{"design":"4B","programs":[]}`, http.StatusBadRequest},
		{"unknown program", "/v1/place", `{"design":"4B","programs":["nosuch"]}`, http.StatusBadRequest},
		{"negative jobs", "/v1/jobsim", `{"jobs":-3}`, http.StatusBadRequest},
		{"unknown jobsim design", "/v1/jobsim", `{"designs":["nope"],"jobs":2}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body, _ := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.want {
				t.Fatalf("code=%d want=%d body=%s", code, tc.want, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not structured: %s", body)
			}
		})
	}
}

// TestBackpressure fills the admission valve and checks overload is shed
// with 503 + Retry-After, then that capacity recovers.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	// Occupy the only slot directly; any request now finds the queue full.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	code, body, hdr := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overload: code=%d body=%s, want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if _, mbody := getJSON(t, ts.URL+"/metrics"); !strings.Contains(string(mbody), "smtflexd_rejected_total 1") {
		t.Errorf("rejection not counted in metrics")
	}

	s.adm.release()
	if code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"4B"}`); code != http.StatusOK {
		t.Fatalf("after release: code=%d body=%s", code, body)
	}
}

// TestCancellationStopsEngine checks the whole cancellation path: a client
// that disconnects mid-sweep stops the engine's worker pool, observable as
// the evaluation counter settling far short of a full sweep.
func TestCancellationStopsEngine(t *testing.T) {
	// A generous default deadline: the serial retry sweep below must not be
	// cut short by the server, only by the client-side cancel.
	s, ts := newTestServer(t, Config{Sim: sharedSerialSim(), DefaultTimeout: 30 * time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep",
		strings.NewReader(`{"design":"8m"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request succeeded despite cancellation (code %d)", resp.StatusCode)
		}
		done <- err
	}()

	// Wait until the engine is demonstrably working, then pull the plug.
	deadline := time.Now().Add(30 * time.Second)
	for s.study().Evaluations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(200 * time.Microsecond)
	}
	cancel()
	if err := <-done; err == nil {
		t.Fatal("client saw success after cancel")
	}

	// The pool must stop: the counter settles instead of marching to a full
	// sweep.
	settle := func() int64 {
		for {
			v := s.study().Evaluations()
			time.Sleep(100 * time.Millisecond)
			if s.study().Evaluations() == v {
				return v
			}
		}
	}
	cancelled := settle()

	// Rerunning with a live context completes and reveals the full cost;
	// the aborted attempt must not have been cached.
	before := s.study().Evaluations()
	code, body, _ := postJSON(t, ts.URL+"/v1/sweep", `{"design":"8m"}`)
	if code != http.StatusOK {
		t.Fatalf("retry after cancel: code=%d body=%s", code, body)
	}
	full := s.study().Evaluations() - before
	if full == 0 {
		t.Fatal("first sweep completed before cancellation landed; nothing was cancelled")
	}
	if cancelled >= full {
		t.Fatalf("cancelled sweep ran %d evaluations, full sweep costs %d — cancellation did not stop the pool", cancelled, full)
	}
}

// TestGracefulShutdownDrains boots a real listener, parks a request
// in-flight, and checks Shutdown completes it rather than killing it.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{Sim: sharedSim(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/sweep",
			"application/json", strings.NewReader(`{"design":"20s"}`))
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		_, err = io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, err}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for s.adm.executing() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the server")
		}
		time.Sleep(200 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	r := <-done
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request not drained: code=%d err=%v", r.code, r.err)
	}
}

func TestTimeoutProducesGatewayTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Sim: sharedSerialSim()})
	// 1ms cannot complete a cold serial sweep.
	code, body, _ := postJSON(t, ts.URL+"/v1/sweep?timeout_ms=1", `{"design":"2B10s"}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code=%d body=%s, want 504", code, body)
	}
}

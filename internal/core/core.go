// Package core is the library facade: a Simulator that owns the profiling
// source and the study state, exposes the multi-core design space, evaluates
// workloads on design points with either engine, and regenerates every
// table and figure of the paper.
//
// Typical use:
//
//	sim := core.NewSimulator()
//	res, _ := sim.RunMix("4B", true, []string{"mcf", "tonto", "hmmer"})
//	fmt.Println(res.STP)
//
//	tab, _ := sim.Figure("fig8")
//	fmt.Println(tab)
package core

import (
	"context"
	"fmt"
	"sort"

	"smtflex/internal/config"
	"smtflex/internal/cpu"
	"smtflex/internal/multicore"
	"smtflex/internal/parallel"
	"smtflex/internal/profiler"
	"smtflex/internal/study"
	"smtflex/internal/timeline"
	"smtflex/internal/workload"
)

// Simulator bundles the profiling source and cached study state. It is safe
// for concurrent use. The zero value is not usable; call NewSimulator.
type Simulator struct {
	src *profiler.Source
	st  *study.Study
}

// Option configures a Simulator.
type Option func(*settings)

type settings struct {
	uopCount      uint64
	mixesPerCount int
	seed          int64
	parallelism   int
	cacheCap      int
}

// WithUopCount sets the cycle-engine measurement length per profiling run.
// Larger values give better-calibrated profiles at higher one-time cost.
func WithUopCount(n uint64) Option {
	return func(s *settings) { s.uopCount = n }
}

// WithMixesPerCount sets the number of random heterogeneous mixes evaluated
// per thread count (the paper uses 12).
func WithMixesPerCount(n int) Option {
	return func(s *settings) { s.mixesPerCount = n }
}

// WithSeed sets the workload-construction seed.
func WithSeed(seed int64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithParallelism bounds the experiment engine's worker pool. Zero (the
// default) means GOMAXPROCS; one forces the serial engine. Results are
// bit-for-bit identical at every setting.
func WithParallelism(n int) Option {
	return func(s *settings) { s.parallelism = n }
}

// WithCacheCap bounds the design-sweep cache at n entries with LRU
// eviction — for long-running servers whose request history would otherwise
// grow the cache without limit. Zero (the default) keeps every sweep
// forever, the right choice for batch runs that regenerate fixed figure
// sets.
func WithCacheCap(n int) Option {
	return func(s *settings) { s.cacheCap = n }
}

// NewSimulator returns a Simulator with the paper's defaults.
func NewSimulator(opts ...Option) *Simulator {
	cfg := settings{uopCount: 200_000, mixesPerCount: 12, seed: 20140301}
	for _, o := range opts {
		o(&cfg)
	}
	src := profiler.NewSource(cfg.uopCount)
	st := study.New(src)
	st.MixesPerCount = cfg.mixesPerCount
	st.Seed = cfg.seed
	st.Parallelism = cfg.parallelism
	if cfg.cacheCap > 0 {
		st.BoundCaches(cfg.cacheCap)
	}
	return &Simulator{src: src, st: st}
}

// Study exposes the experiment driver layer for advanced use.
func (s *Simulator) Study() *study.Study { return s.st }

// Source exposes the profiling source for advanced use.
func (s *Simulator) Source() *profiler.Source { return s.src }

// Benchmarks lists the available multi-program benchmark names.
func (s *Simulator) Benchmarks() []string { return workload.Names() }

// ParallelApps lists the available multi-threaded application names.
func (s *Simulator) ParallelApps() []string { return parallel.AppNames() }

// Designs returns the nine power-equivalent design points.
func (s *Simulator) Designs(smt bool) []config.Design { return config.NineDesigns(smt) }

// RunMix evaluates a multi-program workload (one benchmark name per thread)
// on the named design using the interval engine, and returns system metrics.
func (s *Simulator) RunMix(designName string, smt bool, programs []string) (study.MixResult, error) {
	return s.RunMixCtx(context.Background(), designName, smt, programs)
}

// RunMixCtx is RunMix with observability: when ctx carries an active trace
// (see internal/obs), the placement, contention solve and profile lookups
// are recorded as spans. The result is identical to RunMix's.
func (s *Simulator) RunMixCtx(ctx context.Context, designName string, smt bool, programs []string) (study.MixResult, error) {
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		return study.MixResult{}, err
	}
	mix := workload.Mix{ID: "user", Programs: programs}
	return s.st.EvaluateMixCtx(ctx, d, mix)
}

// RunParallel evaluates a multi-threaded application on the named design
// with the given software thread count.
func (s *Simulator) RunParallel(designName string, smt bool, appName string, threads int) (parallel.Result, error) {
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		return parallel.Result{}, err
	}
	app, err := parallel.AppByName(appName)
	if err != nil {
		return parallel.Result{}, err
	}
	return parallel.Evaluate(app, d, threads, s.src)
}

// RunCycleAccurate co-simulates a multi-program workload on the named design
// with the detailed cycle engine for the given number of µops per thread,
// using round-robin thread-to-core placement. It is orders of magnitude
// slower than RunMix and intended for validation and detailed inspection.
func (s *Simulator) RunCycleAccurate(designName string, smt bool, programs []string, uops uint64) ([]cpu.ThreadStats, error) {
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		return nil, err
	}
	chip, err := multicore.New(d, cpu.Ideal{})
	if err != nil {
		return nil, err
	}
	mix := workload.Mix{ID: "cycle", Programs: programs}
	readers, err := mix.Readers(0xC0FFEE)
	if err != nil {
		return nil, err
	}
	for i, r := range readers {
		if _, err := chip.AttachThread(i%d.NumCores(), r); err != nil {
			return nil, err
		}
	}
	stats := chip.Run(uops)
	chip.PublishMachStats(programs)
	return stats, nil
}

// figureFunc builds one table.
type figureFunc func(context.Context, *study.Study) (*study.Table, error)

// figureRegistry maps figure/table identifiers to their drivers.
var figureRegistry = map[string]figureFunc{
	"table1": func(context.Context, *study.Study) (*study.Table, error) { return study.Table1(), nil },
	"fig1":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure1(ctx) },
	"fig2":   func(context.Context, *study.Study) (*study.Table, error) { return study.Figure2(), nil },
	"fig3a": func(ctx context.Context, st *study.Study) (*study.Table, error) {
		return st.Figure3(ctx, study.Homogeneous)
	},
	"fig3b": func(ctx context.Context, st *study.Study) (*study.Table, error) {
		return st.Figure3(ctx, study.Heterogeneous)
	},
	"fig4a":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure4(ctx, "tonto") },
	"fig4b":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure4(ctx, "libquantum") },
	"fig5":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure5(ctx) },
	"fig6":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure6(ctx) },
	"fig7":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure7(ctx) },
	"fig8":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure8(ctx) },
	"fig9":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure9(ctx) },
	"fig10a": func(context.Context, *study.Study) (*study.Table, error) { return study.Figure10a(), nil },
	"fig10b": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure10(ctx) },
	"fig11":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure11(ctx) },
	"fig12a": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure12(ctx, "ROI") },
	"fig12b": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure12(ctx, "whole") },
	"fig13a": func(ctx context.Context, st *study.Study) (*study.Table, error) {
		return st.Figure13(ctx, study.Homogeneous)
	},
	"fig13b": func(ctx context.Context, st *study.Study) (*study.Table, error) {
		return st.Figure13(ctx, study.Heterogeneous)
	},
	"fig14":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure14(ctx) },
	"fig15":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure15(ctx) },
	"fig16":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure16(ctx) },
	"fig17a": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure17a(ctx) },
	"fig17b": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.Figure17b(ctx) },

	// Ablations of the modelling decisions (see DESIGN.md) and extensions
	// from the paper's discussion section.
	"abl-smteff":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.AblationSMTEfficiency(ctx) },
	"abl-llc":     func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.AblationLLCPolicy(ctx) },
	"abl-queue":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.AblationQueueing(ctx) },
	"abl-visible": func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.AblationWindowVisible(ctx) },
	"abl-sched":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.AblationScheduler(ctx) },
	"ext-turbo":   func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.ExtensionTurboBoost(ctx) },
	"ext-serial":  func(ctx context.Context, st *study.Study) (*study.Table, error) { return st.ExtensionSerialBoost(ctx) },
}

// FigureIDs lists every reproducible table/figure identifier, sorted.
func FigureIDs() []string {
	ids := make([]string, 0, len(figureRegistry))
	for id := range figureRegistry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Figure regenerates the identified table or figure. The context cancels
// the underlying simulation campaign: the experiment engine stops handing
// work to its pool when ctx is done.
func (s *Simulator) Figure(ctx context.Context, id string) (*study.Table, error) {
	f, ok := figureRegistry[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown figure %q (known: %v)", id, FigureIDs())
	}
	return f(ctx, s.st)
}

// JobRun is the outcome of one design in a JobStream call.
type JobRun struct {
	// Design is the design's name.
	Design string
	// Result is the timeline simulation outcome.
	Result timeline.Result
}

// JobStream simulates a stream of arriving and departing jobs — the paper's
// motivating dynamic multiprogramming scenario — on each named design,
// fanning independent designs over the experiment engine's worker pool.
func (s *Simulator) JobStream(ctx context.Context, designNames []string, smt bool, jobs []timeline.Job) ([]JobRun, error) {
	designs := make([]config.Design, len(designNames))
	for i, name := range designNames {
		d, err := config.DesignByName(name, smt)
		if err != nil {
			return nil, err
		}
		designs[i] = d
	}
	results, err := s.st.RunJobs(ctx, designs, jobs)
	if err != nil {
		return nil, err
	}
	runs := make([]JobRun, len(designs))
	for i := range designs {
		runs[i] = JobRun{Design: designs[i].Name, Result: results[i]}
	}
	return runs, nil
}

package core

import (
	"context"

	"strings"
	"sync"
	"testing"
)

var (
	simOnce sync.Once
	sim     *Simulator
)

func sharedSim() *Simulator {
	simOnce.Do(func() { sim = NewSimulator(WithUopCount(60_000)) })
	return sim
}

func TestFigureIDsComplete(t *testing.T) {
	ids := FigureIDs()
	// Every table and figure of the paper must be reproducible: Table 1,
	// Figures 1-17 (with sub-figures).
	want := []string{
		"table1", "fig1", "fig2", "fig3a", "fig3b", "fig4a", "fig4b", "fig5",
		"fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11",
		"fig12a", "fig12b", "fig13a", "fig13b", "fig14", "fig15", "fig16",
		"fig17a", "fig17b",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("figure %s missing from registry", id)
		}
	}
	// Ablations and extensions ride along in the registry.
	for _, id := range []string{"abl-smteff", "abl-llc", "abl-queue", "abl-visible", "abl-sched", "ext-turbo", "ext-serial"} {
		if !have[id] {
			t.Errorf("ablation/extension %s missing from registry", id)
		}
	}
	if len(ids) != len(want)+7 {
		t.Errorf("registry has %d entries, want %d", len(ids), len(want)+7)
	}
}

func TestFigureUnknown(t *testing.T) {
	if _, err := sharedSim().Figure(context.Background(), "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestStaticFigures(t *testing.T) {
	s := sharedSim()
	for _, id := range []string{"table1", "fig2", "fig10a"} {
		tab, err := s.Figure(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(tab.String(), tab.Title) {
			t.Fatalf("%s: render missing title", id)
		}
	}
}

func TestRunMix(t *testing.T) {
	s := sharedSim()
	res, err := s.RunMix("4B", true, []string{"tonto", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if res.STP <= 0 || res.ANTT < 1 || res.Watts <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if _, err := s.RunMix("7B", true, []string{"tonto"}); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := s.RunMix("4B", true, []string{"nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunParallel(t *testing.T) {
	s := sharedSim()
	res, err := s.RunParallel("8m", true, "ferret", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROINs <= 0 || res.TotalNs < res.ROINs {
		t.Fatalf("implausible result %+v", res)
	}
	if _, err := s.RunParallel("8m", true, "crysis", 8); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunCycleAccurate(t *testing.T) {
	s := sharedSim()
	stats, err := s.RunCycleAccurate("4B", true, []string{"hmmer", "tonto"}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("%d stats", len(stats))
	}
	for i, st := range stats {
		if st.Uops < 5000 || st.IPC() <= 0 {
			t.Fatalf("thread %d: %+v", i, st)
		}
	}
}

func TestListings(t *testing.T) {
	s := sharedSim()
	if len(s.Benchmarks()) != 12 {
		t.Errorf("%d benchmarks", len(s.Benchmarks()))
	}
	if len(s.ParallelApps()) != 13 {
		t.Errorf("%d parallel apps", len(s.ParallelApps()))
	}
	if len(s.Designs(true)) != 9 {
		t.Errorf("%d designs", len(s.Designs(true)))
	}
}

func TestOptions(t *testing.T) {
	s := NewSimulator(WithUopCount(12345), WithMixesPerCount(6), WithSeed(7), WithParallelism(3))
	if s.Source().UopCount != 12345 {
		t.Error("uop count option ignored")
	}
	if s.Study().MixesPerCount != 6 || s.Study().Seed != 7 {
		t.Error("study options ignored")
	}
	if s.Study().Parallelism != 3 {
		t.Error("parallelism option ignored")
	}
}

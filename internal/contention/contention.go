// Package contention resolves chip-level resource sharing for the interval
// engine: given a placement of threads onto the cores of a design, it finds
// a fixed point of per-thread performance, private-cache and shared-LLC
// capacity shares (allocation-rate-weighted competition), DRAM bus and bank
// queueing, SMT dispatch-width sharing and non-SMT time sharing.
package contention

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smtflex/internal/config"
	"smtflex/internal/faults"
	"smtflex/internal/interval"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
)

// ErrDiverged reports that the fixed-point iteration produced a non-finite
// value (NaN or Inf), usually from a malformed profile or injected corruption.
var ErrDiverged = errors.New("contention: solver diverged")

// ErrNotConverged reports that a solve with a positive Model.Tolerance ran
// out of iterations before the residual dropped below the tolerance.
var ErrNotConverged = errors.New("contention: solver did not converge")

// Placement assigns threads to cores of a design.
type Placement struct {
	// Design is the multi-core design point.
	Design config.Design
	// CoreOf[i] is the index of the core thread i runs on.
	CoreOf []int
	// Profiles[i] is thread i's profile measured on the type of its core.
	Profiles []*interval.Profile
}

// Validate reports structural errors.
func (p Placement) Validate() error {
	if err := p.Design.Validate(); err != nil {
		return err
	}
	if len(p.CoreOf) != len(p.Profiles) {
		return fmt.Errorf("contention: %d core assignments but %d profiles", len(p.CoreOf), len(p.Profiles))
	}
	for i, c := range p.CoreOf {
		if c < 0 || c >= len(p.Design.Cores) {
			return fmt.Errorf("contention: thread %d on core %d, design has %d cores", i, c, len(p.Design.Cores))
		}
		if p.Profiles[i] == nil {
			return fmt.Errorf("contention: thread %d has nil profile", i)
		}
		if want := p.Design.Cores[c].Type; p.Profiles[i].Core != want {
			return fmt.Errorf("contention: thread %d profile is for %v core but placed on %v", i, p.Profiles[i].Core, want)
		}
	}
	return nil
}

// ThreadResult is the converged state of one thread.
type ThreadResult struct {
	// Stack is the predicted CPI decomposition.
	Stack interval.CPIStack
	// IPC is µops per core cycle while running (after SMT width sharing).
	IPC float64
	// TimeShare is the fraction of time the thread runs (1 with SMT, 1/k
	// when k threads time-share a context).
	TimeShare float64
	// UopsPerNs is the thread's absolute progress rate.
	UopsPerNs float64
	// Shares are the converged capacity shares and memory latency.
	Shares interval.Shares
}

// Diagnostics reports how the fixed-point iteration went: how many
// iterations ran, the final relative residual (the largest relative change
// any state variable saw in the last iteration), and whether the loop
// terminated by convergence rather than by exhausting its iteration budget.
type Diagnostics struct {
	// Iterations is the number of iterations executed.
	Iterations int `json:"iterations"`
	// Residual is the last iteration's maximum relative state change.
	Residual float64 `json:"residual"`
	// Converged reports termination by residual <= tolerance (with the
	// default zero tolerance: an iteration that changed nothing at all).
	Converged bool `json:"converged"`
}

// Result is the converged chip state.
type Result struct {
	Threads []ThreadResult
	// MemLatencyNs is the contended DRAM latency in nanoseconds.
	MemLatencyNs float64
	// BusUtilization is the off-chip bus utilization in [0,1].
	BusUtilization float64
	// CoreUtilization[c] is Σ IPC / width for core c (the power model's
	// activity factor).
	CoreUtilization []float64
	// Diag describes the solver's convergence behaviour.
	Diag Diagnostics
}

const (
	dramAccessNs = 45.0
	dramBanks    = 8
	blockBytes   = 64
	iterations   = 60
	damping      = 0.5
	// rhoCap keeps the queueing model finite at saturation. Calibrated so
	// that a fully saturated bus inflates memory latency by roughly the 4x
	// the paper reports for libquantum at 24 threads (0.98 would give ~7x).
	rhoCap = 0.95
)

// memLatencyNs returns the contended DRAM latency for an offered load in
// blocks per nanosecond, using an M/D/1 bus queue plus bank contention.
func memLatencyNs(blocksPerNs, bandwidthGBps float64) float64 {
	service := blockBytes / bandwidthGBps // ns per block on the bus
	rho := math.Min(blocksPerNs*service, rhoCap)
	busWait := rho * service / (2 * (1 - rho))
	bankRho := math.Min(blocksPerNs*dramAccessNs/dramBanks, rhoCap)
	bankWait := bankRho * dramAccessNs / (2 * (1 - bankRho))
	return dramAccessNs + service + busWait + bankWait
}

// Solve iterates to a fixed point with the calibrated default model.
func Solve(p Placement) (Result, error) {
	return SolveModel(p, DefaultModel())
}

// SolveCtx is Solve with tracing: when ctx carries an active trace, the
// solve is recorded as a "contention.solve" span annotated with the thread
// count and the solver's convergence diagnostics. The numerical result is
// identical to Solve.
func SolveCtx(ctx context.Context, p Placement) (Result, error) {
	return SolveModelCtx(ctx, p, DefaultModel())
}

// SolveModelCtx is SolveModel with the same span instrumentation as SolveCtx.
func SolveModelCtx(ctx context.Context, p Placement, m Model) (Result, error) {
	_, sp := obs.StartSpan(ctx, "contention.solve")
	sp.SetAttr("threads", len(p.CoreOf))
	defer sp.End()
	res, err := SolveModel(p, m)
	if sp != nil {
		sp.SetAttr("iterations", res.Diag.Iterations)
		sp.SetAttr("residual", res.Diag.Residual)
		sp.SetAttr("converged", res.Diag.Converged)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	return res, err
}

// SolveModel is Solve with explicit model choices (see Model); the ablation
// studies use it to quantify each mechanism's contribution.
func SolveModel(p Placement, m Model) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	p = m.flatten(p)
	n := len(p.CoreOf)
	res := Result{
		Threads:         make([]ThreadResult, n),
		CoreUtilization: make([]float64, len(p.Design.Cores)),
	}
	if n == 0 {
		res.MemLatencyNs = m.memLatency(0, p.Design.MemBandwidthGBps)
		res.Diag.Converged = true
		return res, nil
	}

	// Per-core thread groups.
	group := make([][]int, len(p.Design.Cores))
	for i, c := range p.CoreOf {
		group[c] = append(group[c], i)
	}

	// State: absolute rates (µops/ns), initialized optimistically.
	rate := make([]float64, n)
	for i := range rate {
		cc := p.Design.Cores[p.CoreOf[i]]
		rate[i] = float64(cc.Width) * cc.FrequencyGHz / 2
	}
	llcShare := make([]float64, n)
	l1dShare := make([]float64, n)
	l2Share := make([]float64, n)
	l1iShare := make([]float64, n)

	llcBytes := float64(p.Design.LLC.SizeBytes)
	memLatNs := m.memLatency(0, p.Design.MemBandwidthGBps)

	f := m.dampFactor()
	maxIter := m.maxIterations()
	prevRate := make([]float64, n)
	prevLLC := make([]float64, n)
	prevL1D := make([]float64, n)
	prevL2 := make([]float64, n)

	for iter := 0; iter < maxIter; iter++ {
		if err := faults.Check(faults.SiteSolver); err != nil {
			return Result{}, fmt.Errorf("contention: iteration %d: %w", iter, err)
		}
		copy(prevRate, rate)
		copy(prevLLC, llcShare)
		copy(prevL1D, l1dShare)
		copy(prevL2, l2Share)
		prevMemLat := memLatNs

		// --- Private cache shares within each core (allocation-weighted) ---
		for c, ths := range group {
			cc := p.Design.Cores[c]
			shareCaches(p, ths, rate, cc, l1iShare, l1dShare, l2Share, llcShare, memLatNs, f)
		}

		// --- LLC shares across all threads (allocation-weighted) ---
		weights := make([]float64, n)
		var wsum float64
		for i := range weights {
			cc := p.Design.Cores[p.CoreOf[i]]
			sh := interval.Shares{L1I: l1iShare[i], L1D: l1dShare[i], L2: l2Share[i], LLC: llcShare[i], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
			weights[i] = p.Profiles[i].LLCAccessesPerUop(sh) * rate[i]
			wsum += weights[i]
		}
		floor := 0.05 / float64(n)
		for i := range weights {
			var frac float64
			switch {
			case m.EqualLLCShares:
				frac = 1 / float64(n)
			case wsum > 1e-15:
				frac = weights[i] / wsum
			default:
				frac = 1 / float64(n)
			}
			frac = math.Max(frac, floor)
			llcShare[i] = damp(llcShare[i], frac*llcBytes, f)
		}
		normalizeShares(llcShare, llcBytes)

		// --- Memory traffic and latency (fills plus writebacks) ---
		var traffic float64 // blocks per ns
		for i := range rate {
			cc := p.Design.Cores[p.CoreOf[i]]
			sh := interval.Shares{L1I: l1iShare[i], L1D: l1dShare[i], L2: l2Share[i], LLC: llcShare[i], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
			traffic += p.Profiles[i].DRAMAccessesPerUop(sh) * (1 + p.Profiles[i].WritebackFraction) * rate[i]
		}
		memLatNs = damp(memLatNs, m.memLatency(traffic, p.Design.MemBandwidthGBps), f)
		memLatNs = faults.Corrupt(faults.SiteSolver, memLatNs)

		// --- Per-thread CPI and per-core width/time sharing ---
		for c, ths := range group {
			if len(ths) == 0 {
				continue
			}
			cc := p.Design.Cores[c]
			ipcs := make([]float64, len(ths))
			timeShare := make([]float64, len(ths))
			coRunners, tshare := smtOccupancy(cc, p.Design.SMTEnabled, len(ths))
			part := interval.Partition(cc, coRunners)
			for k, ti := range ths {
				sh := interval.Shares{
					L1I: l1iShare[ti], L1D: l1dShare[ti], L2: l2Share[ti], LLC: llcShare[ti],
					MemLatencyCycles: memLatNs * cc.FrequencyGHz,
				}
				st := p.Profiles[ti].Evaluate(cc, part, sh)
				res.Threads[ti].Stack = st
				res.Threads[ti].Shares = sh
				ipcs[k] = 1 / st.Total()
				timeShare[k] = tshare
			}
			if p.Design.SMTEnabled && coRunners > 1 {
				interval.ShareWidthEff(ipcs, cc.Width, m.effIssue())
			}
			for k, ti := range ths {
				res.Threads[ti].IPC = ipcs[k]
				res.Threads[ti].TimeShare = timeShare[k]
				rate[ti] = damp(rate[ti], ipcs[k]*timeShare[k]*cc.FrequencyGHz, f)
			}
		}

		// --- Convergence diagnostics over all damped state ---
		residual := relChange(prevMemLat, memLatNs)
		for i := 0; i < n; i++ {
			residual = math.Max(residual, relChange(prevRate[i], rate[i]))
			residual = math.Max(residual, relChange(prevLLC[i], llcShare[i]))
			residual = math.Max(residual, relChange(prevL1D[i], l1dShare[i]))
			residual = math.Max(residual, relChange(prevL2[i], l2Share[i]))
		}
		res.Diag.Iterations = iter + 1
		res.Diag.Residual = residual
		if !finiteState(memLatNs, rate, llcShare, l1dShare, l2Share) {
			return Result{Diag: res.Diag}, fmt.Errorf("%w: non-finite state after iteration %d", ErrDiverged, iter+1)
		}
		// With the default zero tolerance this fires only when an iteration
		// changed nothing at all, so stopping here is bit-identical to
		// running out the full budget.
		if residual <= m.Tolerance {
			res.Diag.Converged = true
			break
		}
	}
	if !res.Diag.Converged && m.Tolerance > 0 {
		return Result{Diag: res.Diag}, fmt.Errorf("%w: residual %.3g after %d iterations (tolerance %g)",
			ErrNotConverged, res.Diag.Residual, res.Diag.Iterations, m.Tolerance)
	}

	// Finalize.
	var traffic float64
	for i := range res.Threads {
		cc := p.Design.Cores[p.CoreOf[i]]
		res.Threads[i].UopsPerNs = rate[i]
		res.CoreUtilization[p.CoreOf[i]] += res.Threads[i].IPC * res.Threads[i].TimeShare / float64(cc.Width)
		traffic += p.Profiles[i].DRAMAccessesPerUop(res.Threads[i].Shares) * (1 + p.Profiles[i].WritebackFraction) * rate[i]
	}
	res.MemLatencyNs = memLatNs
	res.BusUtilization = math.Min(traffic*blockBytes/p.Design.MemBandwidthGBps, 1)
	publishMachStats(p, res)
	return res, nil
}

// publishMachStats records the converged solve into the machine-counter
// registry: one interval-engine CPI-stack record per thread plus solver
// counters. A no-op costing one atomic load while machstats is disabled;
// the solve's numerical result is never touched.
func publishMachStats(p Placement, res Result) {
	if !machstats.Enabled() {
		return
	}
	machstats.Add("interval.solver.solves", 1)
	machstats.Add("interval.solver.iterations", uint64(res.Diag.Iterations))
	machstats.Add("interval.threads_solved", uint64(len(res.Threads)))
	for i, tr := range res.Threads {
		machstats.RecordStack(machstats.StackRecord{
			Engine:     "interval",
			Design:     p.Design.Name,
			Benchmark:  p.Profiles[i].Benchmark,
			Core:       p.CoreOf[i],
			Thread:     i,
			Components: tr.Stack.Components(),
		})
	}
}

// smtOccupancy returns how many threads concurrently share the core's
// pipeline and the per-thread time share. Without SMT, one thread runs at a
// time; with SMT, up to SMTContexts run concurrently and any excess
// time-shares the contexts.
func smtOccupancy(cc config.Core, smtEnabled bool, nThreads int) (coRunners int, timeShare float64) {
	if !smtEnabled {
		return 1, 1 / float64(nThreads)
	}
	if nThreads <= cc.SMTContexts {
		return nThreads, 1
	}
	return cc.SMTContexts, float64(cc.SMTContexts) / float64(nThreads)
}

// shareCaches distributes the core-private cache capacities among the
// threads on one core, weighted by each thread's allocation rate into the
// cache (misses per ns), with a floor so no thread is starved to zero.
// Without SMT each time-shared thread uses the full capacity during its
// slice.
func shareCaches(p Placement, ths []int, rate []float64, cc config.Core,
	l1iShare, l1dShare, l2Share, llcShare []float64, memLatNs, f float64) {
	if len(ths) == 0 {
		return
	}
	full := func(ti int) {
		l1iShare[ti] = float64(cc.L1I.SizeBytes)
		l1dShare[ti] = float64(cc.L1D.SizeBytes)
		l2Share[ti] = float64(cc.L2.SizeBytes)
	}
	if !p.Design.SMTEnabled || len(ths) == 1 {
		for _, ti := range ths {
			full(ti)
		}
		return
	}
	// Allocation weights: misses into L1D per ns approximate occupancy
	// pressure at every private level.
	n := len(ths)
	w := make([]float64, n)
	var sum float64
	for k, ti := range ths {
		sh := interval.Shares{L1I: l1iShare[ti], L1D: l1dShare[ti], L2: l2Share[ti], LLC: llcShare[ti], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
		if sh.L1D == 0 { // first iteration: seed with equal split
			sh.L1D = float64(cc.L1D.SizeBytes) / float64(n)
			sh.L2 = float64(cc.L2.SizeBytes) / float64(n)
			sh.LLC = 1 << 20
		}
		miss := p.Profiles[ti].DCurve.At(sh.L1D / 64)
		w[k] = p.Profiles[ti].DataAPKU / 1000 * miss * rate[ti]
		sum += w[k]
	}
	floor := 0.08 / float64(n)
	for k, ti := range ths {
		var frac float64
		if sum > 1e-15 {
			frac = w[k] / sum
		} else {
			frac = 1 / float64(n)
		}
		frac = math.Max(frac, floor)
		l1dShare[ti] = damp(l1dShare[ti], frac*float64(cc.L1D.SizeBytes), f)
		l2Share[ti] = damp(l2Share[ti], frac*float64(cc.L2.SizeBytes), f)
	}
	normalizeSlice(l1dShare, ths, float64(cc.L1D.SizeBytes))
	normalizeSlice(l2Share, ths, float64(cc.L2.SizeBytes))

	// The I-cache is shared by *code*, not by thread: co-runners executing
	// the same benchmark fetch the same instructions, so the capacity splits
	// across distinct benchmarks, not across threads.
	distinct := map[string]bool{}
	for _, ti := range ths {
		distinct[p.Profiles[ti].Benchmark] = true
	}
	iShare := float64(cc.L1I.SizeBytes) / float64(len(distinct))
	for _, ti := range ths {
		l1iShare[ti] = iShare
	}
}

// damp blends an old and a new value to stabilize the fixed point; f is the
// weight of the old value.
func damp(old, new, f float64) float64 {
	if old == 0 {
		return new
	}
	return f*old + (1-f)*new
}

// relChange returns |new-old| scaled by the larger magnitude, or exactly
// zero when the value did not change at all.
func relChange(old, new float64) float64 {
	if old == new {
		return 0
	}
	return math.Abs(new-old) / math.Max(math.Abs(old), math.Abs(new))
}

// finiteState reports whether the scalar and every slice element are finite.
func finiteState(scalar float64, slices ...[]float64) bool {
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	if !finite(scalar) {
		return false
	}
	for _, s := range slices {
		for _, v := range s {
			if !finite(v) {
				return false
			}
		}
	}
	return true
}

// normalizeShares rescales all entries so they sum to capacity.
func normalizeShares(shares []float64, capacity float64) {
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum <= 0 {
		return
	}
	f := capacity / sum
	for i := range shares {
		shares[i] *= f
	}
}

// normalizeSlice rescales the entries indexed by ths to sum to capacity.
func normalizeSlice(shares []float64, ths []int, capacity float64) {
	var sum float64
	for _, ti := range ths {
		sum += shares[ti]
	}
	if sum <= 0 {
		return
	}
	f := capacity / sum
	for _, ti := range ths {
		shares[ti] *= f
	}
}

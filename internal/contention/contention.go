// Package contention resolves chip-level resource sharing for the interval
// engine: given a placement of threads onto the cores of a design, it finds
// a fixed point of per-thread performance, private-cache and shared-LLC
// capacity shares (allocation-rate-weighted competition), DRAM bus and bank
// queueing, SMT dispatch-width sharing and non-SMT time sharing.
package contention

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smtflex/internal/config"
	"smtflex/internal/interval"
	"smtflex/internal/machstats"
)

// ErrDiverged reports that the fixed-point iteration produced a non-finite
// value (NaN or Inf), usually from a malformed profile or injected corruption.
var ErrDiverged = errors.New("contention: solver diverged")

// ErrNotConverged reports that a solve with a positive Model.Tolerance ran
// out of iterations before the residual dropped below the tolerance.
var ErrNotConverged = errors.New("contention: solver did not converge")

// Placement assigns threads to cores of a design.
type Placement struct {
	// Design is the multi-core design point.
	Design config.Design
	// CoreOf[i] is the index of the core thread i runs on.
	CoreOf []int
	// Profiles[i] is thread i's profile measured on the type of its core.
	Profiles []*interval.Profile
}

// Validate reports structural errors.
func (p Placement) Validate() error {
	if err := p.Design.Validate(); err != nil {
		return err
	}
	if len(p.CoreOf) != len(p.Profiles) {
		return fmt.Errorf("contention: %d core assignments but %d profiles", len(p.CoreOf), len(p.Profiles))
	}
	for i, c := range p.CoreOf {
		if c < 0 || c >= len(p.Design.Cores) {
			return fmt.Errorf("contention: thread %d on core %d, design has %d cores", i, c, len(p.Design.Cores))
		}
		if p.Profiles[i] == nil {
			return fmt.Errorf("contention: thread %d has nil profile", i)
		}
		if want := p.Design.Cores[c].Type; p.Profiles[i].Core != want {
			return fmt.Errorf("contention: thread %d profile is for %v core but placed on %v", i, p.Profiles[i].Core, want)
		}
	}
	return nil
}

// ThreadResult is the converged state of one thread.
type ThreadResult struct {
	// Stack is the predicted CPI decomposition.
	Stack interval.CPIStack
	// IPC is µops per core cycle while running (after SMT width sharing).
	IPC float64
	// TimeShare is the fraction of time the thread runs (1 with SMT, 1/k
	// when k threads time-share a context).
	TimeShare float64
	// UopsPerNs is the thread's absolute progress rate.
	UopsPerNs float64
	// Shares are the converged capacity shares and memory latency.
	Shares interval.Shares
}

// Diagnostics reports how the fixed-point iteration went: how many
// iterations ran, the final relative residual (the largest relative change
// any state variable saw in the last iteration), and whether the loop
// terminated by convergence rather than by exhausting its iteration budget.
type Diagnostics struct {
	// Iterations is the number of iterations executed.
	Iterations int `json:"iterations"`
	// Residual is the last iteration's maximum relative state change.
	Residual float64 `json:"residual"`
	// Converged reports termination by residual <= tolerance (with the
	// default zero tolerance: an iteration that changed nothing at all).
	Converged bool `json:"converged"`
}

// Result is the converged chip state.
type Result struct {
	Threads []ThreadResult
	// MemLatencyNs is the contended DRAM latency in nanoseconds.
	MemLatencyNs float64
	// BusUtilization is the off-chip bus utilization in [0,1].
	BusUtilization float64
	// CoreUtilization[c] is Σ IPC / width for core c (the power model's
	// activity factor).
	CoreUtilization []float64
	// Diag describes the solver's convergence behaviour.
	Diag Diagnostics
}

const (
	dramAccessNs = 45.0
	dramBanks    = 8
	blockBytes   = 64
	iterations   = 60
	damping      = 0.5
	// rhoCap keeps the queueing model finite at saturation. Calibrated so
	// that a fully saturated bus inflates memory latency by roughly the 4x
	// the paper reports for libquantum at 24 threads (0.98 would give ~7x).
	rhoCap = 0.95
)

// memLatencyNs returns the contended DRAM latency for an offered load in
// blocks per nanosecond, using an M/D/1 bus queue plus bank contention.
func memLatencyNs(blocksPerNs, bandwidthGBps float64) float64 {
	service := blockBytes / bandwidthGBps // ns per block on the bus
	rho := math.Min(blocksPerNs*service, rhoCap)
	busWait := rho * service / (2 * (1 - rho))
	bankRho := math.Min(blocksPerNs*dramAccessNs/dramBanks, rhoCap)
	bankWait := bankRho * dramAccessNs / (2 * (1 - bankRho))
	return dramAccessNs + service + busWait + bankWait
}

// Solve iterates to a fixed point with the calibrated default model. It
// uses a fresh Solver, so the Result owns its memory; hot loops that solve
// many placements reuse a Solver (or the package's solver pool) instead.
func Solve(p Placement) (Result, error) {
	return SolveModel(p, DefaultModel())
}

// SolveCtx is Solve with tracing: when ctx carries an active trace, the
// solve is recorded as a "contention.solve" span annotated with the thread
// count and the solver's convergence diagnostics. The numerical result is
// identical to Solve.
func SolveCtx(ctx context.Context, p Placement) (Result, error) {
	return SolveModelCtx(ctx, p, DefaultModel())
}

// SolveModelCtx is SolveModel with the same span instrumentation as SolveCtx.
func SolveModelCtx(ctx context.Context, p Placement, m Model) (Result, error) {
	var s Solver
	return s.SolveModelCtx(ctx, p, m)
}

// SolveModel is Solve with explicit model choices (see Model); the ablation
// studies use it to quantify each mechanism's contribution. The solve runs
// on a fresh Solver, so per-solve state is allocated once per call and never
// per iteration; repeated solves in a loop should reuse a Solver directly.
func SolveModel(p Placement, m Model) (Result, error) {
	var s Solver
	return s.SolveModel(p, m)
}

// publishMachStats records the converged solve into the machine-counter
// registry: one interval-engine CPI-stack record per thread plus solver
// counters. A no-op costing one atomic load while machstats is disabled;
// the solve's numerical result is never touched.
func publishMachStats(p Placement, res Result) {
	if !machstats.Enabled() {
		return
	}
	machstats.Add("interval.solver.solves", 1)
	machstats.Add("interval.solver.iterations", uint64(res.Diag.Iterations))
	machstats.Add("interval.threads_solved", uint64(len(res.Threads)))
	for i, tr := range res.Threads {
		machstats.RecordStack(machstats.StackRecord{
			Engine:     "interval",
			Design:     p.Design.Name,
			Benchmark:  p.Profiles[i].Benchmark,
			Core:       p.CoreOf[i],
			Thread:     i,
			Components: tr.Stack.Components(),
		})
	}
}

// smtOccupancy returns how many threads concurrently share the core's
// pipeline and the per-thread time share. Without SMT, one thread runs at a
// time; with SMT, up to SMTContexts run concurrently and any excess
// time-shares the contexts.
func smtOccupancy(cc config.Core, smtEnabled bool, nThreads int) (coRunners int, timeShare float64) {
	if !smtEnabled {
		return 1, 1 / float64(nThreads)
	}
	if nThreads <= cc.SMTContexts {
		return nThreads, 1
	}
	return cc.SMTContexts, float64(cc.SMTContexts) / float64(nThreads)
}

// damp blends an old and a new value to stabilize the fixed point; f is the
// weight of the old value.
func damp(old, new, f float64) float64 {
	if old == 0 {
		return new
	}
	return f*old + (1-f)*new
}

// relChange returns |new-old| scaled by the larger magnitude, or exactly
// zero when the value did not change at all.
func relChange(old, new float64) float64 {
	if old == new {
		return 0
	}
	return math.Abs(new-old) / math.Max(math.Abs(old), math.Abs(new))
}

// finiteState reports whether the scalar and every slice element are finite.
// The slices are explicit (not variadic) so the per-iteration call in the
// solver's hot loop cannot allocate a backing array for the pack.
func finiteState(scalar float64, a, b, c, d []float64) bool {
	if !finite(scalar) {
		return false
	}
	for _, s := range [...][]float64{a, b, c, d} {
		for _, v := range s {
			if !finite(v) {
				return false
			}
		}
	}
	return true
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// normalizeShares rescales all entries so they sum to capacity.
func normalizeShares(shares []float64, capacity float64) {
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum <= 0 {
		return
	}
	f := capacity / sum
	for i := range shares {
		shares[i] *= f
	}
}

// normalizeSlice rescales the entries indexed by ths to sum to capacity.
func normalizeSlice(shares []float64, ths []int, capacity float64) {
	var sum float64
	for _, ti := range ths {
		sum += shares[ti]
	}
	if sum <= 0 {
		return
	}
	f := capacity / sum
	for _, ti := range ths {
		shares[ti] *= f
	}
}

package contention

import "smtflex/internal/interval"

// Model selects between the solver's default mechanisms and simplified
// alternatives, enabling ablation studies of the modelling choices: LLC
// capacity partitioning policy, memory queueing, window-dependent visible
// latency and SMT issue efficiency.
type Model struct {
	// EqualLLCShares replaces allocation-weighted LLC competition with an
	// equal split across threads.
	EqualLLCShares bool
	// FixedMemLatency disables bus/bank queueing: every access sees the
	// uncontended DRAM latency regardless of load.
	FixedMemLatency bool
	// FlatVisible disables the window-dependent visible-latency fraction:
	// SMT ROB partitioning then no longer increases exposed memory latency.
	FlatVisible bool
	// IssueEfficiency overrides interval.SMTIssueEfficiency when positive.
	IssueEfficiency float64
	// MaxIterations caps the fixed-point iteration count; zero selects the
	// calibrated default (60).
	MaxIterations int
	// Tolerance is the relative-residual threshold for early termination.
	// Zero (the default) keeps results bit-identical to the fixed-iteration
	// solver: the loop stops early only when an iteration changes nothing at
	// all, and running out of iterations is not an error. A positive tolerance
	// stops as soon as the residual drops below it and turns exhaustion into
	// ErrNotConverged.
	Tolerance float64
	// Damping overrides the fixed-point blend factor in (0,1); zero selects
	// the calibrated default (0.5).
	Damping float64
	// QuantizeCurves, when positive, replaces each profile's exact
	// piecewise-linear miss curves with n-point quantized lookup tables
	// (cache.MissTable) for the solver's inner loop: every curve probe
	// becomes O(1) arithmetic instead of a binary search. With n at least
	// the profiler's breakpoint count (16), the log-uniform curves quantize
	// losslessly and results stay bit-identical to the exact solver; smaller
	// n trades accuracy for speed. Zero keeps the exact curves.
	QuantizeCurves int
}

// DefaultModel returns the calibrated configuration used by Solve.
func DefaultModel() Model { return Model{} }

// maxIterations returns the iteration cap the model selects.
func (m Model) maxIterations() int {
	if m.MaxIterations > 0 {
		return m.MaxIterations
	}
	return iterations
}

// dampFactor returns the fixed-point blend factor the model selects.
func (m Model) dampFactor() float64 {
	if m.Damping > 0 && m.Damping < 1 {
		return m.Damping
	}
	return damping
}

// effIssue returns the SMT issue efficiency the model selects.
func (m Model) effIssue() float64 {
	if m.IssueEfficiency > 0 {
		return m.IssueEfficiency
	}
	return interval.SMTIssueEfficiency
}

// memLatency returns the contended (or fixed) DRAM latency in ns.
func (m Model) memLatency(blocksPerNs, bandwidthGBps float64) float64 {
	if m.FixedMemLatency {
		return memLatencyNs(0, bandwidthGBps)
	}
	return memLatencyNs(blocksPerNs, bandwidthGBps)
}

// flatten returns a placement whose profiles ignore the window-dependent
// visible fraction when the model asks for it.
func (m Model) flatten(p Placement) Placement {
	if !m.FlatVisible {
		return p
	}
	out := p
	out.Profiles = make([]*interval.Profile, len(p.Profiles))
	for i, prof := range p.Profiles {
		cp := *prof
		cp.VisibleMin = 0
		cp.VisibleMinWindow = 0
		out.Profiles[i] = &cp
	}
	return out
}

package contention

import "smtflex/internal/interval"

// Model selects between the solver's default mechanisms and simplified
// alternatives, enabling ablation studies of the modelling choices: LLC
// capacity partitioning policy, memory queueing, window-dependent visible
// latency and SMT issue efficiency.
type Model struct {
	// EqualLLCShares replaces allocation-weighted LLC competition with an
	// equal split across threads.
	EqualLLCShares bool
	// FixedMemLatency disables bus/bank queueing: every access sees the
	// uncontended DRAM latency regardless of load.
	FixedMemLatency bool
	// FlatVisible disables the window-dependent visible-latency fraction:
	// SMT ROB partitioning then no longer increases exposed memory latency.
	FlatVisible bool
	// IssueEfficiency overrides interval.SMTIssueEfficiency when positive.
	IssueEfficiency float64
}

// DefaultModel returns the calibrated configuration used by Solve.
func DefaultModel() Model { return Model{} }

// effIssue returns the SMT issue efficiency the model selects.
func (m Model) effIssue() float64 {
	if m.IssueEfficiency > 0 {
		return m.IssueEfficiency
	}
	return interval.SMTIssueEfficiency
}

// memLatency returns the contended (or fixed) DRAM latency in ns.
func (m Model) memLatency(blocksPerNs, bandwidthGBps float64) float64 {
	if m.FixedMemLatency {
		return memLatencyNs(0, bandwidthGBps)
	}
	return memLatencyNs(blocksPerNs, bandwidthGBps)
}

// flatten returns a placement whose profiles ignore the window-dependent
// visible fraction when the model asks for it.
func (m Model) flatten(p Placement) Placement {
	if !m.FlatVisible {
		return p
	}
	out := p
	out.Profiles = make([]*interval.Profile, len(p.Profiles))
	for i, prof := range p.Profiles {
		cp := *prof
		cp.VisibleMin = 0
		cp.VisibleMinWindow = 0
		out.Profiles[i] = &cp
	}
	return out
}

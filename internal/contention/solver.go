package contention

import (
	"context"
	"fmt"
	"math"

	"smtflex/internal/config"
	"smtflex/internal/faults"
	"smtflex/internal/interval"
	"smtflex/internal/obs"
)

// Solver runs contention solves with reusable scratch buffers, so repeated
// solves — a design sweep evaluates tens of thousands of placements — stay
// allocation-free at steady state. The zero value is ready to use; buffers
// grow on first use and are reused afterwards.
//
// A Solver is NOT safe for concurrent use: callers that fan solves across
// workers keep one Solver per worker (the study's pool draws them from a
// sync.Pool). The returned Result's Threads and CoreUtilization slices alias
// the solver's scratch and are valid only until the next call on the same
// Solver; callers that retain them across solves must copy (the package
// Solve/SolveModel wrappers use a fresh Solver per call, so their results
// never alias shared state).
type Solver struct {
	// Per-core thread groups; group backing slices are reused across solves.
	group [][]int
	// Fixed-point state, one entry per thread.
	rate, llcShare, l1dShare, l2Share, l1iShare []float64
	// Previous-iteration state for the convergence residual.
	prevRate, prevLLC, prevL1D, prevL2 []float64
	// weights holds the LLC allocation weights (hoisted out of the
	// iteration loop — the seed engine rebuilt it every iteration).
	weights []float64
	// cacheW, ipcs and timeShare are the per-core inner-loop buffers.
	cacheW, ipcs, timeShare []float64
	// threads and coreUtil back the returned Result.
	threads  []ThreadResult
	coreUtil []float64
	// distinct is shareCaches' benchmark-dedup set, cleared per use.
	distinct map[string]bool
	// quant caches quantized profile copies keyed by source profile, so a
	// sweep quantizes each profile once, not once per solve.
	quant  map[*interval.Profile]*interval.Profile
	quantN int
	// quantProfiles is the scratch profile slice for quantized placements.
	quantProfiles []*interval.Profile
}

// NewSolver returns a Solver ready for repeated use.
func NewSolver() *Solver { return &Solver{} }

// Solve is SolveModel with the calibrated default model.
func (s *Solver) Solve(p Placement) (Result, error) {
	return s.SolveModel(p, DefaultModel())
}

// SolveModelCtx is SolveModel with the same span instrumentation as the
// package-level SolveModelCtx.
func (s *Solver) SolveModelCtx(ctx context.Context, p Placement, m Model) (Result, error) {
	_, sp := obs.StartSpan(ctx, "contention.solve")
	sp.SetAttr("threads", len(p.CoreOf))
	defer sp.End()
	res, err := s.SolveModel(p, m)
	if sp != nil {
		sp.SetAttr("iterations", res.Diag.Iterations)
		sp.SetAttr("residual", res.Diag.Residual)
		sp.SetAttr("converged", res.Diag.Converged)
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	return res, err
}

// growF returns buf with length n and every element zeroed, reusing the
// backing array when it is large enough.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// scratchF returns buf with length n and unspecified contents (every caller
// writes before reading), reusing the backing array when possible.
func scratchF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// prepare sizes the solver's state for n threads on nCores cores.
func (s *Solver) prepare(n, nCores int) {
	if cap(s.group) < nCores {
		g := make([][]int, nCores)
		copy(g, s.group)
		s.group = g
	}
	s.group = s.group[:nCores]
	for c := range s.group {
		s.group[c] = s.group[c][:0]
	}
	s.rate = scratchF(s.rate, n)
	s.llcShare = growF(s.llcShare, n)
	s.l1dShare = growF(s.l1dShare, n)
	s.l2Share = growF(s.l2Share, n)
	s.l1iShare = growF(s.l1iShare, n)
	s.prevRate = scratchF(s.prevRate, n)
	s.prevLLC = scratchF(s.prevLLC, n)
	s.prevL1D = scratchF(s.prevL1D, n)
	s.prevL2 = scratchF(s.prevL2, n)
	s.weights = scratchF(s.weights, n)
	if cap(s.threads) < n {
		s.threads = make([]ThreadResult, n)
	}
	s.threads = s.threads[:n]
	for i := range s.threads {
		s.threads[i] = ThreadResult{}
	}
	s.coreUtil = growF(s.coreUtil, nCores)
}

// quantize swaps each profile for its n-point quantized copy when the model
// asks for table-lookup curves, memoizing copies so a sweep pays the
// quantization once per profile.
func (s *Solver) quantize(p Placement, m Model) Placement {
	if m.QuantizeCurves <= 0 {
		return p
	}
	if s.quant == nil || s.quantN != m.QuantizeCurves {
		s.quant = make(map[*interval.Profile]*interval.Profile)
		s.quantN = m.QuantizeCurves
	}
	if cap(s.quantProfiles) < len(p.Profiles) {
		s.quantProfiles = make([]*interval.Profile, len(p.Profiles))
	}
	profs := s.quantProfiles[:len(p.Profiles)]
	for i, prof := range p.Profiles {
		q, ok := s.quant[prof]
		if !ok {
			q = prof.Quantized(m.QuantizeCurves)
			s.quant[prof] = q
		}
		profs[i] = q
	}
	out := p
	out.Profiles = profs
	return out
}

// SolveModel iterates to a fixed point with explicit model choices. The
// arithmetic and iteration order are exactly the seed engine's — results are
// bit-identical — only the buffer lifetimes differ.
func (s *Solver) SolveModel(p Placement, m Model) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	p = m.flatten(p)
	p = s.quantize(p, m)
	n := len(p.CoreOf)
	s.prepare(n, len(p.Design.Cores))
	res := Result{
		Threads:         s.threads,
		CoreUtilization: s.coreUtil,
	}
	if n == 0 {
		res.MemLatencyNs = m.memLatency(0, p.Design.MemBandwidthGBps)
		res.Diag.Converged = true
		return res, nil
	}

	// Per-core thread groups.
	group := s.group
	for i, c := range p.CoreOf {
		group[c] = append(group[c], i)
	}

	// State: absolute rates (µops/ns), initialized optimistically.
	rate := s.rate
	for i := range rate {
		cc := p.Design.Cores[p.CoreOf[i]]
		rate[i] = float64(cc.Width) * cc.FrequencyGHz / 2
	}
	llcShare := s.llcShare
	l1dShare := s.l1dShare
	l2Share := s.l2Share
	l1iShare := s.l1iShare

	llcBytes := float64(p.Design.LLC.SizeBytes)
	memLatNs := m.memLatency(0, p.Design.MemBandwidthGBps)

	f := m.dampFactor()
	maxIter := m.maxIterations()
	prevRate := s.prevRate
	prevLLC := s.prevLLC
	prevL1D := s.prevL1D
	prevL2 := s.prevL2
	weights := s.weights

	for iter := 0; iter < maxIter; iter++ {
		if err := faults.Check(faults.SiteSolver); err != nil {
			return Result{}, fmt.Errorf("contention: iteration %d: %w", iter, err)
		}
		copy(prevRate, rate)
		copy(prevLLC, llcShare)
		copy(prevL1D, l1dShare)
		copy(prevL2, l2Share)
		prevMemLat := memLatNs

		// --- Private cache shares within each core (allocation-weighted) ---
		for c, ths := range group {
			cc := p.Design.Cores[c]
			s.shareCaches(p, ths, rate, cc, l1iShare, l1dShare, l2Share, llcShare, memLatNs, f)
		}

		// --- LLC shares across all threads (allocation-weighted) ---
		var wsum float64
		for i := range weights {
			cc := p.Design.Cores[p.CoreOf[i]]
			sh := interval.Shares{L1I: l1iShare[i], L1D: l1dShare[i], L2: l2Share[i], LLC: llcShare[i], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
			weights[i] = p.Profiles[i].LLCAccessesPerUop(sh) * rate[i]
			wsum += weights[i]
		}
		floor := 0.05 / float64(n)
		for i := range weights {
			var frac float64
			switch {
			case m.EqualLLCShares:
				frac = 1 / float64(n)
			case wsum > 1e-15:
				frac = weights[i] / wsum
			default:
				frac = 1 / float64(n)
			}
			frac = math.Max(frac, floor)
			llcShare[i] = damp(llcShare[i], frac*llcBytes, f)
		}
		normalizeShares(llcShare, llcBytes)

		// --- Memory traffic and latency (fills plus writebacks) ---
		var traffic float64 // blocks per ns
		for i := range rate {
			cc := p.Design.Cores[p.CoreOf[i]]
			sh := interval.Shares{L1I: l1iShare[i], L1D: l1dShare[i], L2: l2Share[i], LLC: llcShare[i], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
			traffic += p.Profiles[i].DRAMAccessesPerUop(sh) * (1 + p.Profiles[i].WritebackFraction) * rate[i]
		}
		memLatNs = damp(memLatNs, m.memLatency(traffic, p.Design.MemBandwidthGBps), f)
		memLatNs = faults.Corrupt(faults.SiteSolver, memLatNs)

		// --- Per-thread CPI and per-core width/time sharing ---
		for c, ths := range group {
			if len(ths) == 0 {
				continue
			}
			cc := p.Design.Cores[c]
			ipcs := scratchF(s.ipcs, len(ths))
			timeShare := scratchF(s.timeShare, len(ths))
			s.ipcs, s.timeShare = ipcs, timeShare
			coRunners, tshare := smtOccupancy(cc, p.Design.SMTEnabled, len(ths))
			part := interval.Partition(cc, coRunners)
			for k, ti := range ths {
				sh := interval.Shares{
					L1I: l1iShare[ti], L1D: l1dShare[ti], L2: l2Share[ti], LLC: llcShare[ti],
					MemLatencyCycles: memLatNs * cc.FrequencyGHz,
				}
				st := p.Profiles[ti].Evaluate(cc, part, sh)
				res.Threads[ti].Stack = st
				res.Threads[ti].Shares = sh
				ipcs[k] = 1 / st.Total()
				timeShare[k] = tshare
			}
			if p.Design.SMTEnabled && coRunners > 1 {
				interval.ShareWidthEff(ipcs, cc.Width, m.effIssue())
			}
			for k, ti := range ths {
				res.Threads[ti].IPC = ipcs[k]
				res.Threads[ti].TimeShare = timeShare[k]
				rate[ti] = damp(rate[ti], ipcs[k]*timeShare[k]*cc.FrequencyGHz, f)
			}
		}

		// --- Convergence diagnostics over all damped state ---
		residual := relChange(prevMemLat, memLatNs)
		for i := 0; i < n; i++ {
			residual = math.Max(residual, relChange(prevRate[i], rate[i]))
			residual = math.Max(residual, relChange(prevLLC[i], llcShare[i]))
			residual = math.Max(residual, relChange(prevL1D[i], l1dShare[i]))
			residual = math.Max(residual, relChange(prevL2[i], l2Share[i]))
		}
		res.Diag.Iterations = iter + 1
		res.Diag.Residual = residual
		if !finiteState(memLatNs, rate, llcShare, l1dShare, l2Share) {
			return Result{Diag: res.Diag}, fmt.Errorf("%w: non-finite state after iteration %d", ErrDiverged, iter+1)
		}
		// With the default zero tolerance this fires only when an iteration
		// changed nothing at all, so stopping here is bit-identical to
		// running out the full budget.
		if residual <= m.Tolerance {
			res.Diag.Converged = true
			break
		}
	}
	if !res.Diag.Converged && m.Tolerance > 0 {
		return Result{Diag: res.Diag}, fmt.Errorf("%w: residual %.3g after %d iterations (tolerance %g)",
			ErrNotConverged, res.Diag.Residual, res.Diag.Iterations, m.Tolerance)
	}

	// Finalize.
	var traffic float64
	for i := range res.Threads {
		cc := p.Design.Cores[p.CoreOf[i]]
		res.Threads[i].UopsPerNs = rate[i]
		res.CoreUtilization[p.CoreOf[i]] += res.Threads[i].IPC * res.Threads[i].TimeShare / float64(cc.Width)
		traffic += p.Profiles[i].DRAMAccessesPerUop(res.Threads[i].Shares) * (1 + p.Profiles[i].WritebackFraction) * rate[i]
	}
	res.MemLatencyNs = memLatNs
	res.BusUtilization = math.Min(traffic*blockBytes/p.Design.MemBandwidthGBps, 1)
	publishMachStats(p, res)
	return res, nil
}

// shareCaches distributes the core-private cache capacities among the
// threads on one core, weighted by each thread's allocation rate into the
// cache (misses per ns), with a floor so no thread is starved to zero.
// Without SMT each time-shared thread uses the full capacity during its
// slice.
func (s *Solver) shareCaches(p Placement, ths []int, rate []float64, cc config.Core,
	l1iShare, l1dShare, l2Share, llcShare []float64, memLatNs, f float64) {
	if len(ths) == 0 {
		return
	}
	full := func(ti int) {
		l1iShare[ti] = float64(cc.L1I.SizeBytes)
		l1dShare[ti] = float64(cc.L1D.SizeBytes)
		l2Share[ti] = float64(cc.L2.SizeBytes)
	}
	if !p.Design.SMTEnabled || len(ths) == 1 {
		for _, ti := range ths {
			full(ti)
		}
		return
	}
	// Allocation weights: misses into L1D per ns approximate occupancy
	// pressure at every private level.
	n := len(ths)
	w := scratchF(s.cacheW, n)
	s.cacheW = w
	var sum float64
	for k, ti := range ths {
		sh := interval.Shares{L1I: l1iShare[ti], L1D: l1dShare[ti], L2: l2Share[ti], LLC: llcShare[ti], MemLatencyCycles: memLatNs * cc.FrequencyGHz}
		if sh.L1D == 0 { // first iteration: seed with equal split
			sh.L1D = float64(cc.L1D.SizeBytes) / float64(n)
			sh.L2 = float64(cc.L2.SizeBytes) / float64(n)
			sh.LLC = 1 << 20
		}
		miss := p.Profiles[ti].DMissAt(sh.L1D / 64)
		w[k] = p.Profiles[ti].DataAPKU / 1000 * miss * rate[ti]
		sum += w[k]
	}
	floor := 0.08 / float64(n)
	for k, ti := range ths {
		var frac float64
		if sum > 1e-15 {
			frac = w[k] / sum
		} else {
			frac = 1 / float64(n)
		}
		frac = math.Max(frac, floor)
		l1dShare[ti] = damp(l1dShare[ti], frac*float64(cc.L1D.SizeBytes), f)
		l2Share[ti] = damp(l2Share[ti], frac*float64(cc.L2.SizeBytes), f)
	}
	normalizeSlice(l1dShare, ths, float64(cc.L1D.SizeBytes))
	normalizeSlice(l2Share, ths, float64(cc.L2.SizeBytes))

	// The I-cache is shared by *code*, not by thread: co-runners executing
	// the same benchmark fetch the same instructions, so the capacity splits
	// across distinct benchmarks, not across threads.
	if s.distinct == nil {
		s.distinct = make(map[string]bool)
	}
	clear(s.distinct)
	for _, ti := range ths {
		s.distinct[p.Profiles[ti].Benchmark] = true
	}
	iShare := float64(cc.L1I.SizeBytes) / float64(len(s.distinct))
	for _, ti := range ths {
		l1iShare[ti] = iShare
	}
}

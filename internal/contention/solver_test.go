package contention

import (
	"math"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/machstats"
)

// resultBitsEqual compares every float64 of two Results bit for bit.
func resultBitsEqual(t *testing.T, label string, a, b Result) {
	t.Helper()
	eq := func(field string, x, y float64) {
		t.Helper()
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Errorf("%s: %s differs: %v (%x) vs %v (%x)", label, field, x, math.Float64bits(x), y, math.Float64bits(y))
		}
	}
	eq("MemLatencyNs", a.MemLatencyNs, b.MemLatencyNs)
	eq("BusUtilization", a.BusUtilization, b.BusUtilization)
	eq("Diag.Residual", a.Diag.Residual, b.Diag.Residual)
	if a.Diag.Iterations != b.Diag.Iterations || a.Diag.Converged != b.Diag.Converged {
		t.Errorf("%s: diagnostics differ: %+v vs %+v", label, a.Diag, b.Diag)
	}
	if len(a.Threads) != len(b.Threads) || len(a.CoreUtilization) != len(b.CoreUtilization) {
		t.Fatalf("%s: shape differs: %d/%d threads, %d/%d cores", label,
			len(a.Threads), len(b.Threads), len(a.CoreUtilization), len(b.CoreUtilization))
	}
	for i := range a.Threads {
		x, y := a.Threads[i], b.Threads[i]
		eq("IPC", x.IPC, y.IPC)
		eq("TimeShare", x.TimeShare, y.TimeShare)
		eq("UopsPerNs", x.UopsPerNs, y.UopsPerNs)
		eq("Stack.Base", x.Stack.Base, y.Stack.Base)
		eq("Stack.Branch", x.Stack.Branch, y.Stack.Branch)
		eq("Stack.ICache", x.Stack.ICache, y.Stack.ICache)
		eq("Stack.L2", x.Stack.L2, y.Stack.L2)
		eq("Stack.LLC", x.Stack.LLC, y.Stack.LLC)
		eq("Stack.Mem", x.Stack.Mem, y.Stack.Mem)
		eq("Shares.L1I", x.Shares.L1I, y.Shares.L1I)
		eq("Shares.L1D", x.Shares.L1D, y.Shares.L1D)
		eq("Shares.L2", x.Shares.L2, y.Shares.L2)
		eq("Shares.LLC", x.Shares.LLC, y.Shares.LLC)
		eq("Shares.MemLatencyCycles", x.Shares.MemLatencyCycles, y.Shares.MemLatencyCycles)
	}
	for c := range a.CoreUtilization {
		eq("CoreUtilization", a.CoreUtilization[c], b.CoreUtilization[c])
	}
}

// TestSolverReuseBitIdenticalNineDesigns: a single Solver reused across
// every design must reproduce the fresh-per-call package Solve bit for bit —
// the scratch-buffer refactor may only change buffer lifetimes, never
// numbers. Runs both a 2-thread and an oversubscribed 6-thread placement on
// each of the paper's nine design points.
func TestSolverReuseBitIdenticalNineDesigns(t *testing.T) {
	benches := []string{"tonto", "gcc", "mcf", "hmmer", "soplex", "bzip2"}
	s := NewSolver()
	for _, d := range config.NineDesigns(true) {
		for _, n := range []int{2, 6} {
			pl := place(t, d.Name, true, benches[:n]...)
			fresh, err := Solve(pl)
			if err != nil {
				t.Fatalf("%s n=%d: fresh solve: %v", d.Name, n, err)
			}
			reused, err := s.Solve(pl)
			if err != nil {
				t.Fatalf("%s n=%d: reused solve: %v", d.Name, n, err)
			}
			resultBitsEqual(t, d.Name, fresh, reused)
		}
	}
}

// TestSolveQuantizedBitIdenticalOnProfilerGrid: the profiler's miss curves
// sample log-uniform power-of-two capacities, so quantizing with at least
// that many grid points is lossless and the table-lookup solver must match
// the exact solver bit for bit on every design. This is the guarantee that
// lets sweeps turn QuantizeCurves on without perturbing the paper's tables.
func TestSolveQuantizedBitIdenticalOnProfilerGrid(t *testing.T) {
	s := NewSolver()
	q := NewSolver()
	for _, d := range config.NineDesigns(true) {
		pl := place(t, d.Name, true, "tonto", "gcc", "mcf", "hmmer")
		points := len(pl.Profiles[0].DCurve.Capacities)
		if points < 2 {
			t.Fatalf("profiler curve has %d points", points)
		}
		exact, err := s.SolveModel(pl, Model{})
		if err != nil {
			t.Fatal(err)
		}
		quant, err := q.SolveModel(pl, Model{QuantizeCurves: points})
		if err != nil {
			t.Fatal(err)
		}
		resultBitsEqual(t, d.Name+"/quantized", exact, quant)
	}
}

// TestSolveQuantizedCoarseStillConverges: an aggressively coarse table (5
// points over 4 KB..128 MB) is an approximation, but the solver must still
// converge to finite, plausible state — this is the speed/accuracy knob's
// safety net.
func TestSolveQuantizedCoarseStillConverges(t *testing.T) {
	pl := place(t, "4B", true, "tonto", "gcc", "mcf", "hmmer")
	res, err := SolveModel(pl, Model{QuantizeCurves: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range res.Threads {
		if th.IPC <= 0 || math.IsNaN(th.IPC) || math.IsInf(th.IPC, 0) {
			t.Errorf("thread %d: bad IPC %v under coarse quantization", i, th.IPC)
		}
	}
}

// TestSolverSteadyStateAllocs locks in the hot-path allocation fixes: a
// reused Solver must not allocate at all at steady state — not per solve and
// in particular not per iteration (the seed engine rebuilt its LLC weights
// slice and per-core buffers inside every iteration).
func TestSolverSteadyStateAllocs(t *testing.T) {
	machstats.Disable()
	defer machstats.Disable()
	pl := place(t, "4B", true, "tonto", "gcc", "mcf", "hmmer", "soplex", "bzip2")
	s := NewSolver()
	m := DefaultModel()
	if _, err := s.SolveModel(pl, m); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SolveModel(pl, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reused Solver allocates %.1f times per solve, want 0", allocs)
	}

	// Quantized path: after the per-profile tables are built once, table
	// lookups must be allocation-free too.
	qm := Model{QuantizeCurves: 16}
	if _, err := s.SolveModel(pl, qm); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if _, err := s.SolveModel(pl, qm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("reused quantized Solver allocates %.1f times per solve, want 0", allocs)
	}
}

// TestSolveIterationAllocsFlat: even through the fresh-solver package API,
// allocations must not scale with iteration count — per-call scratch is
// fixed, per-iteration cost is zero.
func TestSolveIterationAllocsFlat(t *testing.T) {
	machstats.Disable()
	defer machstats.Disable()
	pl := place(t, "4B", true, "tonto", "gcc", "mcf", "hmmer")
	allocsAt := func(iters int) float64 {
		m := Model{MaxIterations: iters}
		return testing.AllocsPerRun(10, func() {
			if _, err := SolveModel(pl, m); err != nil {
				t.Fatal(err)
			}
		})
	}
	one, sixty := allocsAt(1), allocsAt(60)
	if sixty > one {
		t.Errorf("allocations scale with iterations: %v at 1 iter, %v at 60", one, sixty)
	}
}

package contention

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/faults"
	"smtflex/internal/interval"
)

// Tests for the solver's self-diagnosis: convergence diagnostics, divergence
// detection on non-finite state, opt-in tolerance-based termination, and the
// solver fault-injection site.

func TestEmptyPlacementDiagnostics(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	res, err := Solve(Placement{Design: d})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diag.Converged {
		t.Fatal("zero-thread placement must report convergence")
	}
	if res.Diag.Iterations != 0 || res.Diag.Residual != 0 {
		t.Fatalf("zero-thread diagnostics %+v, want zero iterations and residual", res.Diag)
	}
}

func TestDiagnosticsPopulatedOnSuccess(t *testing.T) {
	res := solve(t, place(t, "4B", true, "tonto", "mcf"))
	if res.Diag.Iterations < 1 {
		t.Fatalf("iterations %d, want >= 1", res.Diag.Iterations)
	}
	if math.IsNaN(res.Diag.Residual) || res.Diag.Residual < 0 {
		t.Fatalf("residual %g", res.Diag.Residual)
	}
}

func TestNaNProfileDiverges(t *testing.T) {
	p := place(t, "4B", true, "tonto")
	// Corrupt a copy of the measured profile: a NaN memory-constant CPI
	// poisons the evaluated CPI stack and with it the thread's rate.
	bad := *p.Profiles[0]
	bad.MemConstCPI = math.NaN()
	p.Profiles[0] = &bad
	_, err := Solve(p)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("NaN profile: got %v, want ErrDiverged", err)
	}
}

func TestInfProfileDiverges(t *testing.T) {
	// An infinite access rate makes the LLC allocation weights Inf/Inf = NaN,
	// corrupting the capacity shares.
	p := place(t, "4B", true, "mcf")
	bad := *p.Profiles[0]
	bad.DataAPKU = math.Inf(1)
	p.Profiles[0] = &bad
	_, err := Solve(p)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("Inf profile: got %v, want ErrDiverged", err)
	}
}

func TestToleranceExhaustionNotConverged(t *testing.T) {
	// A contended placement cannot reach a 1e-12 relative residual in a
	// single iteration: the solve must fail with the typed error and carry
	// its diagnostics.
	p := place(t, "4B", true, "mcf", "libquantum", "soplex", "gcc")
	_, err := SolveModel(p, Model{MaxIterations: 1, Tolerance: 1e-12})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("got %v, want ErrNotConverged", err)
	}
}

func TestToleranceConvergence(t *testing.T) {
	// With a realistic tolerance and the default budget the damped iteration
	// settles; the reported residual must honor the tolerance.
	p := place(t, "4B", true, "tonto", "hmmer")
	res, err := SolveModel(p, Model{Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diag.Converged {
		t.Fatalf("not converged: %+v", res.Diag)
	}
	if res.Diag.Residual > 1e-6 {
		t.Fatalf("residual %g above tolerance", res.Diag.Residual)
	}
	if res.Diag.Iterations >= 60 {
		t.Fatalf("tolerance termination never fired early (%d iterations)", res.Diag.Iterations)
	}
}

func TestDiagnosticsDoNotPerturbResults(t *testing.T) {
	// The default model must produce bit-identical thread results whether or
	// not the iteration budget is spelled out explicitly: the diagnostics are
	// observers, not participants.
	p := place(t, "4B", true, "mcf", "tonto", "soplex")
	a, err := SolveModel(p, Model{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveModel(p, Model{MaxIterations: 60, Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Threads, b.Threads) || a.MemLatencyNs != b.MemLatencyNs {
		t.Fatal("explicit default-valued knobs changed the solution")
	}
}

func TestSolverErrorInjection(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteSolver, faults.Injection{Mode: faults.ModeError, Count: 1})
	p := place(t, "4B", true, "tonto")
	if _, err := Solve(p); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	// Disarmed after one firing: the same placement now solves.
	if _, err := Solve(p); err != nil {
		t.Fatalf("solve after disarm failed: %v", err)
	}
}

func TestSolverNaNInjectionDiverges(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteSolver, faults.Injection{Mode: faults.ModeNaN, Count: 1})
	p := place(t, "4B", true, "tonto")
	_, err := Solve(p)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("injected NaN state: got %v, want ErrDiverged", err)
	}
	if _, err := Solve(p); err != nil {
		t.Fatalf("solve after disarm failed: %v", err)
	}
}

// Guard against regressions in the validation of hand-built placements used
// by fault scenarios: a nil-profile placement must fail structurally, not
// diverge.
func TestNilProfileIsConfigError(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	_, err := Solve(Placement{Design: d, CoreOf: []int{0}, Profiles: []*interval.Profile{nil}})
	if err == nil || errors.Is(err, ErrDiverged) {
		t.Fatalf("nil profile: %v", err)
	}
}

package contention

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"smtflex/internal/config"
	"smtflex/internal/interval"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

// shared profiling source: measuring profiles is the expensive part, so all
// tests in this package reuse one cache.
var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(60_000) })
	return src
}

func profileFor(t *testing.T, bench string, ct config.CoreType) *interval.Profile {
	t.Helper()
	spec, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	p, err := source().Profile(spec, ct)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// place builds a placement of the given benchmarks round-robin over the
// design's cores.
func place(t *testing.T, designName string, smt bool, benches ...string) Placement {
	t.Helper()
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		t.Fatal(err)
	}
	p := Placement{Design: d}
	for i, b := range benches {
		c := i % d.NumCores()
		p.CoreOf = append(p.CoreOf, c)
		p.Profiles = append(p.Profiles, profileFor(t, b, d.Cores[c].Type))
	}
	return p
}

func solve(t *testing.T, p Placement) Result {
	t.Helper()
	res, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidateErrors(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	if err := (Placement{Design: d, CoreOf: []int{0}, Profiles: nil}).Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (Placement{Design: d, CoreOf: []int{9},
		Profiles: []*interval.Profile{profileFor(t, "hmmer", config.Big)}}).Validate(); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := (Placement{Design: d, CoreOf: []int{0},
		Profiles: []*interval.Profile{nil}}).Validate(); err == nil {
		t.Error("nil profile accepted")
	}
	// Profile measured on the wrong core type.
	if err := (Placement{Design: d, CoreOf: []int{0},
		Profiles: []*interval.Profile{profileFor(t, "hmmer", config.Small)}}).Validate(); err == nil {
		t.Error("core-type mismatch accepted")
	}
}

func TestEmptyPlacement(t *testing.T) {
	d, _ := config.DesignByName("4B", true)
	res := solve(t, Placement{Design: d})
	if len(res.Threads) != 0 {
		t.Fatal("threads from nothing")
	}
	if res.MemLatencyNs < 45 {
		t.Fatalf("idle memory latency %g below DRAM access time", res.MemLatencyNs)
	}
}

func TestSingleThreadSane(t *testing.T) {
	res := solve(t, place(t, "4B", true, "tonto"))
	th := res.Threads[0]
	if th.IPC <= 0.5 || th.IPC > 4 {
		t.Fatalf("tonto solo IPC %g out of range", th.IPC)
	}
	if th.TimeShare != 1 {
		t.Fatalf("solo time share %g", th.TimeShare)
	}
	// Solo thread owns the private caches and the whole LLC.
	if th.Shares.L1D != 32<<10 || th.Shares.LLC < 7.9e6 {
		t.Fatalf("solo shares %+v", th.Shares)
	}
	if res.BusUtilization > 0.2 {
		t.Fatalf("tonto solo bus utilization %g", res.BusUtilization)
	}
}

func TestSymmetryOfIdenticalThreads(t *testing.T) {
	res := solve(t, place(t, "4B", true, "mcf", "mcf", "mcf", "mcf"))
	first := res.Threads[0]
	for i, th := range res.Threads {
		if math.Abs(th.IPC-first.IPC) > 1e-9 || math.Abs(th.Shares.LLC-first.Shares.LLC) > 1 {
			t.Fatalf("asymmetric result for identical threads at %d: %+v vs %+v", i, th, first)
		}
	}
}

func TestSMTPairSlowerThanSolo(t *testing.T) {
	solo := solve(t, place(t, "4B", true, "gobmk")).Threads[0].IPC
	pair := solve(t, Placement{
		Design:   mustDesign(t, "4B", true),
		CoreOf:   []int{0, 0},
		Profiles: []*interval.Profile{profileFor(t, "gobmk", config.Big), profileFor(t, "gobmk", config.Big)},
	})
	perThread := pair.Threads[0].IPC
	if perThread >= solo {
		t.Fatalf("SMT co-runner free: %g vs solo %g", perThread, solo)
	}
	// But the pair's combined throughput exceeds one thread.
	if 2*perThread <= solo {
		t.Fatalf("SMT pair has no throughput benefit: 2×%g vs %g", perThread, solo)
	}
}

func mustDesign(t *testing.T, name string, smt bool) config.Design {
	t.Helper()
	d, err := config.DesignByName(name, smt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTimeSharingWithoutSMT(t *testing.T) {
	// Two threads on one core without SMT: each runs half the time at its
	// solo IPC.
	solo := solve(t, place(t, "4B", false, "hmmer")).Threads[0]
	pair := solve(t, Placement{
		Design:   mustDesign(t, "4B", false),
		CoreOf:   []int{0, 0},
		Profiles: []*interval.Profile{profileFor(t, "hmmer", config.Big), profileFor(t, "hmmer", config.Big)},
	})
	th := pair.Threads[0]
	if math.Abs(th.TimeShare-0.5) > 1e-9 {
		t.Fatalf("time share %g, want 0.5", th.TimeShare)
	}
	if math.Abs(th.UopsPerNs-solo.UopsPerNs/2) > 0.05*solo.UopsPerNs {
		t.Fatalf("time-shared rate %g, want ~%g", th.UopsPerNs, solo.UopsPerNs/2)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// One libquantum versus twenty on 20s: per-thread rate collapses and
	// memory latency rises (the paper's 4× access-time observation).
	solo := solve(t, place(t, "20s", true, "libquantum"))
	benches := make([]string, 20)
	for i := range benches {
		benches[i] = "libquantum"
	}
	crowd := solve(t, place(t, "20s", true, benches...))
	if crowd.Threads[0].UopsPerNs >= solo.Threads[0].UopsPerNs {
		t.Fatal("no bandwidth contention")
	}
	if crowd.MemLatencyNs < 2*solo.MemLatencyNs {
		t.Fatalf("memory latency %g -> %g, expected to at least double",
			solo.MemLatencyNs, crowd.MemLatencyNs)
	}
	if crowd.BusUtilization < 0.8 {
		t.Fatalf("bus utilization %g under 20 streaming threads", crowd.BusUtilization)
	}
}

func TestLLCSharesSumToCapacity(t *testing.T) {
	res := solve(t, place(t, "4B", true, "mcf", "soplex", "omnetpp", "libquantum"))
	var sum float64
	for _, th := range res.Threads {
		sum += th.Shares.LLC
	}
	llc := float64(8 << 20)
	if math.Abs(sum-llc)/llc > 0.01 {
		t.Fatalf("LLC shares sum to %g, want %g", sum, llc)
	}
}

func TestCacheHungryThreadWinsLLC(t *testing.T) {
	// soplex (LLC-hungry) should receive a larger LLC share than hmmer
	// (fits in private caches) under allocation-weighted competition.
	res := solve(t, place(t, "4B", true, "soplex", "hmmer"))
	if res.Threads[0].Shares.LLC <= res.Threads[1].Shares.LLC {
		t.Fatalf("soplex LLC %g <= hmmer LLC %g",
			res.Threads[0].Shares.LLC, res.Threads[1].Shares.LLC)
	}
}

func TestSameBenchmarkSharesICache(t *testing.T) {
	// Two copies of one benchmark on an SMT core share code: full L1I each.
	res := solve(t, Placement{
		Design:   mustDesign(t, "4B", true),
		CoreOf:   []int{0, 0},
		Profiles: []*interval.Profile{profileFor(t, "gcc", config.Big), profileFor(t, "gcc", config.Big)},
	})
	if res.Threads[0].Shares.L1I != 32<<10 {
		t.Fatalf("same-benchmark L1I share %g, want full 32768", res.Threads[0].Shares.L1I)
	}
	// Two different benchmarks split it.
	res = solve(t, Placement{
		Design:   mustDesign(t, "4B", true),
		CoreOf:   []int{0, 0},
		Profiles: []*interval.Profile{profileFor(t, "gcc", config.Big), profileFor(t, "gobmk", config.Big)},
	})
	if res.Threads[0].Shares.L1I != 16<<10 {
		t.Fatalf("distinct-benchmark L1I share %g, want 16384", res.Threads[0].Shares.L1I)
	}
}

func TestCoreUtilizationBounded(t *testing.T) {
	benches := make([]string, 24)
	for i := range benches {
		benches[i] = "tonto"
	}
	res := solve(t, place(t, "4B", true, benches...))
	for c, u := range res.CoreUtilization {
		if u < 0 || u > 1.01 {
			t.Fatalf("core %d utilization %g", c, u)
		}
	}
}

func TestMoreThreadsMoreChipThroughput(t *testing.T) {
	// For a compute-bound benchmark, total chip throughput never drops when
	// threads are added to empty contexts.
	total := func(n int) float64 {
		benches := make([]string, n)
		for i := range benches {
			benches[i] = "calculix"
		}
		res := solve(t, place(t, "4B", true, benches...))
		var sum float64
		for _, th := range res.Threads {
			sum += th.UopsPerNs
		}
		return sum
	}
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		cur := total(n)
		if cur < prev*0.98 {
			t.Fatalf("throughput fell from %g to %g at n=%d", prev, cur, n)
		}
		prev = cur
	}
}

func TestHigherBandwidthHelps(t *testing.T) {
	benches := make([]string, 8)
	for i := range benches {
		benches[i] = "libquantum"
	}
	p8 := place(t, "4B", true, benches...)
	res8 := solve(t, p8)
	p16 := p8
	p16.Design = p16.Design.WithBandwidth(16)
	res16 := solve(t, p16)
	if res16.Threads[0].UopsPerNs <= res8.Threads[0].UopsPerNs {
		t.Fatalf("doubling bandwidth did not help: %g vs %g",
			res8.Threads[0].UopsPerNs, res16.Threads[0].UopsPerNs)
	}
}

func TestSolveRobustnessProperty(t *testing.T) {
	// Property: any random placement of known benchmarks on any design
	// converges to finite, positive per-thread rates with bounded shares.
	names := workload.Names()
	designs := config.NineDesigns(true)
	f := func(seed uint16, nRaw uint8) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*25173 + 13849
			return int(rng) % n
		}
		d := designs[next(len(designs))]
		nThreads := 1 + int(nRaw)%24
		p := Placement{Design: d}
		for i := 0; i < nThreads; i++ {
			c := next(d.NumCores())
			bench := names[next(len(names))]
			p.CoreOf = append(p.CoreOf, c)
			p.Profiles = append(p.Profiles, profileFor(t, bench, d.Cores[c].Type))
		}
		res, err := Solve(p)
		if err != nil {
			return false
		}
		var llcSum float64
		for _, th := range res.Threads {
			if !(th.UopsPerNs > 0) || math.IsNaN(th.IPC) || math.IsInf(th.IPC, 0) {
				return false
			}
			if th.Shares.L1D <= 0 || th.Shares.LLC <= 0 {
				return false
			}
			llcSum += th.Shares.LLC
		}
		if llcSum > float64(d.LLC.SizeBytes)*1.01 {
			return false
		}
		return res.MemLatencyNs >= 45 && !math.IsNaN(res.BusUtilization)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveModelVariants(t *testing.T) {
	// Every model variant must converge on the same placement.
	benches := []string{"mcf", "tonto", "soplex", "hmmer", "gcc", "libquantum"}
	p := place(t, "4B", true, benches...)
	for _, m := range []Model{
		{},
		{EqualLLCShares: true},
		{FixedMemLatency: true},
		{FlatVisible: true},
		{IssueEfficiency: 0.8},
		{EqualLLCShares: true, FixedMemLatency: true, FlatVisible: true},
	} {
		res, err := SolveModel(p, m)
		if err != nil {
			t.Fatalf("model %+v: %v", m, err)
		}
		for i, th := range res.Threads {
			if !(th.UopsPerNs > 0) {
				t.Fatalf("model %+v thread %d rate %g", m, i, th.UopsPerNs)
			}
		}
	}
	// Fixed latency must be at least as fast as queued for every thread.
	queued, _ := SolveModel(p, Model{})
	fixed, _ := SolveModel(p, Model{FixedMemLatency: true})
	for i := range queued.Threads {
		if fixed.Threads[i].UopsPerNs < queued.Threads[i].UopsPerNs*0.999 {
			t.Fatalf("thread %d slower without queueing", i)
		}
	}
}

// Package machstats is the simulated machine's hardware-counter registry:
// named event counters (cache accesses, DRAM transfers, retired µops),
// per-component cycle accumulators, and a bounded ring of per-thread CPI-stack
// observations from both modelling layers (the cycle engine and the interval
// engine).
//
// PR 4's internal/obs made the *engine* observable (where does wall time go?);
// machstats makes the *machine* observable (where do simulated cycles go?).
// The CPI stack is the paper's own methodology — Eyerman-style decomposition
// of cycles per instruction into base, branch, fetch and memory components —
// and this package turns every simulation into a source of those stacks, the
// way SYNPA-style schedulers reason from hardware counters.
//
// The design mirrors internal/faults and internal/obs: collection is globally
// disabled by default and the disabled fast path is a single atomic load, so
// counting calls stay in place at every machine boundary (cache access, DRAM
// transfer, solver finalization, chip run) at no measurable cost, and results
// are bit-identical with collection on or off — counters only observe.
package machstats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// toBits and fromBits convert between float64 values and the uint64 bit
// patterns the atomic accumulator stores.
func toBits(v float64) uint64   { return math.Float64bits(v) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }

// enabled is the disabled-path gate, mirroring internal/faults.active and
// internal/obs.enabled.
var enabled atomic.Bool

// Enable turns counter collection on process-wide. The daemon enables it at
// construction; CLIs enable it under -machstats.
func Enable() { enabled.Store(true) }

// Disable turns collection off again (tests).
func Disable() { enabled.Store(false) }

// Enabled reports whether collection is armed. The negative path is one
// atomic load.
func Enabled() bool { return enabled.Load() }

// Counter is one named monotonic event counter. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Cycles is one named float64 cycle accumulator (the timestamp engines count
// cycles fractionally). Safe for concurrent use via CAS on the bit pattern.
type Cycles struct {
	bits atomic.Uint64
}

// Add accumulates v cycles.
func (c *Cycles) Add(v float64) {
	for {
		old := c.bits.Load()
		cur := fromBits(old)
		if c.bits.CompareAndSwap(old, toBits(cur+v)) {
			return
		}
	}
}

// Load returns the accumulated cycles.
func (c *Cycles) Load() float64 { return fromBits(c.bits.Load()) }

// Component is one named CPI-stack component. Names come from the canonical
// set: base, branch, icache, l2, llc, mem (the cycle engine folds its
// level-blind memory stall into mem).
type Component struct {
	Name string  `json:"name"`
	CPI  float64 `json:"cpi"`
}

// StackRecord is one per-thread CPI-stack observation from a simulation.
type StackRecord struct {
	// Engine is "cycle" or "interval" — which modelling layer produced it.
	Engine string `json:"engine"`
	// Design is the design point's name.
	Design string `json:"design"`
	// Benchmark is the workload the thread ran.
	Benchmark string `json:"benchmark"`
	// Core and Thread locate the hardware context.
	Core   int `json:"core"`
	Thread int `json:"thread"`
	// Components is the ordered CPI decomposition.
	Components []Component `json:"components"`
}

// Total sums the components in order, so it matches any consumer that adds
// them left to right bit-for-bit.
func (r StackRecord) Total() float64 {
	var t float64
	for _, c := range r.Components {
		t += c.CPI
	}
	return t
}

// Registry is a concurrency-safe collection of counters, cycle accumulators
// and CPI-stack records. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	cycles   map[string]*Cycles

	// stacks is a bounded ring of the most recent CPI-stack observations;
	// next/filled implement the same eviction as obs.Collector.
	stacks []StackRecord
	next   int
	filled bool
}

// DefaultStackCap bounds the default registry's CPI-stack ring: large enough
// to hold every thread of the widest sweep's most recent evaluations, small
// enough that a long-running daemon's memory stays flat.
const DefaultStackCap = 512

// NewRegistry returns a Registry keeping the most recent stackCap CPI-stack
// records (DefaultStackCap when stackCap <= 0).
func NewRegistry(stackCap int) *Registry {
	if stackCap <= 0 {
		stackCap = DefaultStackCap
	}
	return &Registry{
		counters: make(map[string]*Counter),
		cycles:   make(map[string]*Cycles),
		stacks:   make([]StackRecord, stackCap),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Cycles returns the named cycle accumulator, creating it on first use.
func (r *Registry) Cycles(name string) *Cycles {
	r.mu.RLock()
	c := r.cycles[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.cycles[name]; c == nil {
		c = &Cycles{}
		r.cycles[name] = c
	}
	return c
}

// RecordStack inserts one CPI-stack observation, evicting the oldest past
// capacity.
func (r *Registry) RecordStack(rec StackRecord) {
	r.mu.Lock()
	r.stacks[r.next] = rec
	r.next++
	if r.next == len(r.stacks) {
		r.next, r.filled = 0, true
	}
	r.mu.Unlock()
}

// Reset clears every counter, accumulator and stack record (tests, and the
// CLIs' per-run exports).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.cycles = make(map[string]*Cycles)
	for i := range r.stacks {
		r.stacks[i] = StackRecord{}
	}
	r.next, r.filled = 0, false
}

// CounterSample is one exported counter value.
type CounterSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// CycleSample is one exported cycle-accumulator value.
type CycleSample struct {
	Name   string  `json:"name"`
	Cycles float64 `json:"cycles"`
}

// Snapshot is the stable export form of a Registry: counters and cycle
// accumulators sorted by name, stack records oldest first. Downstream tooling
// (the golden-file tests, the /debug/machstats scrapers) depends on this
// ordering.
type Snapshot struct {
	Counters []CounterSample `json:"counters"`
	Cycles   []CycleSample   `json:"cycles"`
	Stacks   []StackRecord   `json:"stacks"`
}

// Snapshot renders the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make([]CounterSample, 0, len(r.counters)),
		Cycles:   make([]CycleSample, 0, len(r.cycles)),
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Load()})
	}
	for name, c := range r.cycles {
		s.Cycles = append(s.Cycles, CycleSample{Name: name, Cycles: c.Load()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Cycles, func(i, j int) bool { return s.Cycles[i].Name < s.Cycles[j].Name })
	n := r.next
	if r.filled {
		n = len(r.stacks)
	}
	s.Stacks = make([]StackRecord, 0, n)
	for i := 0; i < n; i++ {
		// Oldest first: with a filled ring the oldest record sits at next.
		idx := i
		if r.filled {
			idx = (r.next + i) % len(r.stacks)
		}
		s.Stacks = append(s.Stacks, r.stacks[idx])
	}
	return s
}

// def is the process-wide default registry behind the package-level helpers.
var def atomic.Pointer[Registry]

func init() { def.Store(NewRegistry(0)) }

// Default returns the process-wide registry.
func Default() *Registry { return def.Load() }

// Add increments the named counter in the default registry; a no-op costing
// one atomic load when collection is disabled.
func Add(name string, n uint64) {
	if !enabled.Load() {
		return
	}
	Default().Counter(name).Add(n)
}

// AddCycles accumulates cycles in the default registry; a no-op costing one
// atomic load when collection is disabled.
func AddCycles(name string, v float64) {
	if !enabled.Load() {
		return
	}
	Default().Cycles(name).Add(v)
}

// RecordStack records a CPI-stack observation in the default registry; a
// no-op costing one atomic load when collection is disabled.
func RecordStack(rec StackRecord) {
	if !enabled.Load() {
		return
	}
	Default().RecordStack(rec)
}

// Reset clears the default registry (tests and CLI runs).
func Reset() { Default().Reset() }

package machstats

import (
	"fmt"
	"sync"
	"testing"
)

// mustDisabled restores the disabled default after a test that arms the gate.
func mustDisabled(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		Disable()
		Reset()
	})
}

func TestDisabledPathIsNoOp(t *testing.T) {
	mustDisabled(t)
	Disable()
	Reset()
	Add("cache.l1d.accesses", 5)
	AddCycles("core0.mem_stall", 3.5)
	RecordStack(StackRecord{Engine: "cycle"})
	snap := Default().Snapshot()
	if len(snap.Counters) != 0 || len(snap.Cycles) != 0 || len(snap.Stacks) != 0 {
		t.Fatalf("disabled collection left state behind: %+v", snap)
	}
}

func TestEnabledCollects(t *testing.T) {
	mustDisabled(t)
	Enable()
	Reset()
	Add("dram.accesses", 2)
	Add("dram.accesses", 3)
	AddCycles("core0.mem_stall", 1.25)
	AddCycles("core0.mem_stall", 0.75)
	RecordStack(StackRecord{Engine: "interval", Design: "4B", Benchmark: "mcf",
		Components: []Component{{CompBase, 0.5}, {CompMem, 1.5}}})
	snap := Default().Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 5 {
		t.Fatalf("counter = %+v, want dram.accesses=5", snap.Counters)
	}
	if len(snap.Cycles) != 1 || snap.Cycles[0].Cycles != 2.0 {
		t.Fatalf("cycles = %+v, want core0.mem_stall=2", snap.Cycles)
	}
	if len(snap.Stacks) != 1 || snap.Stacks[0].Total() != 2.0 {
		t.Fatalf("stacks = %+v", snap.Stacks)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry(4)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(1)
		r.Cycles(name).Add(1)
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %+v", snap.Counters)
		}
	}
	for i := 1; i < len(snap.Cycles); i++ {
		if snap.Cycles[i-1].Name >= snap.Cycles[i].Name {
			t.Fatalf("cycles not sorted: %+v", snap.Cycles)
		}
	}
}

func TestStackRingEvictsOldest(t *testing.T) {
	r := NewRegistry(3)
	for i := 0; i < 5; i++ {
		r.RecordStack(StackRecord{Thread: i})
	}
	snap := r.Snapshot()
	if len(snap.Stacks) != 3 {
		t.Fatalf("ring kept %d records, want 3", len(snap.Stacks))
	}
	// Oldest first: records 2, 3, 4 survive.
	for i, want := range []int{2, 3, 4} {
		if snap.Stacks[i].Thread != want {
			t.Fatalf("stacks[%d].Thread = %d, want %d (%+v)", i, snap.Stacks[i].Thread, want, snap.Stacks)
		}
	}
}

func TestRegistryConcurrentCounters(t *testing.T) {
	r := NewRegistry(64)
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared").Add(1)
				r.Cycles("shared").Add(0.5)
				r.Counter(fmt.Sprintf("own.%d", g)).Add(1)
				r.RecordStack(StackRecord{Thread: g})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Cycles("shared").Load(); got != goroutines*perG*0.5 {
		t.Fatalf("shared cycles = %g, want %g", got, float64(goroutines*perG)*0.5)
	}
	snap := r.Snapshot()
	if len(snap.Stacks) != 64 {
		t.Fatalf("ring holds %d records, want capacity 64", len(snap.Stacks))
	}
}

func TestResetClears(t *testing.T) {
	r := NewRegistry(4)
	r.Counter("a").Add(1)
	r.Cycles("b").Add(1)
	r.RecordStack(StackRecord{})
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Cycles)+len(snap.Stacks) != 0 {
		t.Fatalf("reset left state: %+v", snap)
	}
}

func TestStackRecordTotalSumsInOrder(t *testing.T) {
	rec := StackRecord{Components: []Component{
		{CompBase, 0.7}, {CompBranch, 0.01}, {CompICache, 0.02},
		{CompL2, 0.1}, {CompLLC, 0.2}, {CompMem, 1.3},
	}}
	want := 0.7 + 0.01 + 0.02 + 0.1 + 0.2 + 1.3
	if rec.Total() != want {
		t.Fatalf("Total() = %v, want %v (left-to-right sum)", rec.Total(), want)
	}
}

package machstats

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden export files")

// goldenSnapshot is a fixed registry state covering both engines, so the
// golden files pin the full export vocabulary.
func goldenSnapshot() Snapshot {
	r := NewRegistry(8)
	r.Counter("cache.l1d.accesses").Add(12000)
	r.Counter("cache.l1d.misses").Add(340)
	r.Counter("dram.accesses").Add(55)
	r.Counter("solver.solves").Add(3)
	r.Cycles("cycle.mem_stall").Add(1234.5)
	r.Cycles("cycle.total").Add(80000)
	r.RecordStack(StackRecord{
		Engine: "cycle", Design: "4B", Benchmark: "mcf", Core: 0, Thread: 0,
		Components: []Component{
			{CompBase, 0.612}, {CompBranch, 0.031}, {CompICache, 0.008}, {CompMem, 1.975},
		},
	})
	r.RecordStack(StackRecord{
		Engine: "interval", Design: "4B", Benchmark: "mcf", Core: 0, Thread: 0,
		Components: []Component{
			{CompBase, 0.608}, {CompBranch, 0.03}, {CompICache, 0.007},
			{CompL2, 0.22}, {CompLLC, 0.55}, {CompMem, 1.21},
		},
	})
	return r.Snapshot()
}

// checkGolden compares got against testdata/<name>, rewriting under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/machstats -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden file.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

// TestGoldenExports pins the machstats export schemas — key names, column
// order, value formatting — so downstream tooling can depend on them.
func TestGoldenExports(t *testing.T) {
	jsonBody, stacksCSV, countersCSV, err := goldenSnapshot().Render()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", jsonBody)
	checkGolden(t, "stacks.csv", stacksCSV)
	checkGolden(t, "counters.csv", countersCSV)
}

// TestJSONSchemaKeys asserts the stable JSON key names independent of the
// golden bytes, so a deliberate golden refresh cannot silently rename keys.
func TestJSONSchemaKeys(t *testing.T) {
	jsonBody, _, _, err := goldenSnapshot().Render()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(jsonBody), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "cycles", "stacks"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("snapshot JSON lost top-level key %q", key)
		}
	}
	stacks := doc["stacks"].([]any)
	first := stacks[0].(map[string]any)
	for _, key := range []string{"engine", "design", "benchmark", "core", "thread", "components"} {
		if _, ok := first[key]; !ok {
			t.Errorf("stack record JSON lost key %q", key)
		}
	}
}

// TestCSVColumnOrder asserts the stable CSV headers independent of the golden
// bytes.
func TestCSVColumnOrder(t *testing.T) {
	_, stacksCSV, countersCSV, err := goldenSnapshot().Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stacksCSV, "engine,design,benchmark,core,thread,component,cpi\n") {
		t.Errorf("stacks CSV header drifted: %q", strings.SplitN(stacksCSV, "\n", 2)[0])
	}
	if !strings.HasPrefix(countersCSV, "kind,name,value\n") {
		t.Errorf("counters CSV header drifted: %q", strings.SplitN(countersCSV, "\n", 2)[0])
	}
	// Every stack record ends with its conservation row.
	if !strings.Contains(stacksCSV, ",total,") {
		t.Errorf("stacks CSV lost the total row:\n%s", stacksCSV)
	}
}

package machstats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The canonical CPI-stack component names, in export order. Both engines use
// this vocabulary: the interval model emits all six, the cycle engine emits
// base/branch/icache/mem (its memory stall attribution is level-blind, so l2
// and llc fold into mem). Downstream tooling and the golden-file tests
// depend on these exact strings.
const (
	CompBase   = "base"
	CompBranch = "branch"
	CompICache = "icache"
	CompL2     = "l2"
	CompLLC    = "llc"
	CompMem    = "mem"
)

// ComponentNames lists the canonical component vocabulary in export order.
func ComponentNames() []string {
	return []string{CompBase, CompBranch, CompICache, CompL2, CompLLC, CompMem}
}

// WriteJSON renders the snapshot as indented JSON. The schema is stable:
// counters and cycles sorted by name, stacks oldest first, components in
// engine order.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// stackCSVHeader is the stable column order of the CPI-stack CSV export.
// One row per (thread, component): long form, so records with different
// component sets (cycle vs interval) share one schema.
var stackCSVHeader = []string{"engine", "design", "benchmark", "core", "thread", "component", "cpi"}

// WriteStacksCSV renders the snapshot's CPI-stack records as CSV, one row
// per component plus a "total" row per record.
func (s Snapshot) WriteStacksCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(stackCSVHeader); err != nil {
		return err
	}
	for _, rec := range s.Stacks {
		row := func(component string, cpi float64) []string {
			return []string{
				rec.Engine, rec.Design, rec.Benchmark,
				strconv.Itoa(rec.Core), strconv.Itoa(rec.Thread),
				component, formatCPI(cpi),
			}
		}
		for _, c := range rec.Components {
			if err := cw.Write(row(c.Name, c.CPI)); err != nil {
				return err
			}
		}
		if err := cw.Write(row("total", rec.Total())); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// counterCSVHeader is the stable column order of the counter CSV export.
var counterCSVHeader = []string{"kind", "name", "value"}

// WriteCountersCSV renders the snapshot's counters and cycle accumulators as
// CSV: counters first, then cycles, each sorted by name.
func (s Snapshot) WriteCountersCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(counterCSVHeader); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if err := cw.Write([]string{"counter", c.Name, strconv.FormatUint(c.Value, 10)}); err != nil {
			return err
		}
	}
	for _, c := range s.Cycles {
		if err := cw.Write([]string{"cycles", c.Name, formatCPI(c.Cycles)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatCPI renders a float with enough precision to round-trip CPI values
// without locking the schema to a fixed decimal count.
func formatCPI(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

// Render materializes the three export documents (JSON, stacks CSV, counters
// CSV) as strings — the exporter behind the CLIs' -machstats flag and the
// golden-file tests.
func (s Snapshot) Render() (jsonBody, stacksCSV, countersCSV string, err error) {
	var jb, sb, cb strings.Builder
	if err = s.WriteJSON(&jb); err != nil {
		return
	}
	if err = s.WriteStacksCSV(&sb); err != nil {
		return
	}
	if err = s.WriteCountersCSV(&cb); err != nil {
		return
	}
	return jb.String(), sb.String(), cb.String(), nil
}

// FormatSummary renders a short human-readable summary of the snapshot for
// CLI stderr: how many counters, accumulators and stack records it holds.
func (s Snapshot) FormatSummary() string {
	return fmt.Sprintf("%d counter(s), %d cycle accumulator(s), %d CPI-stack record(s)",
		len(s.Counters), len(s.Cycles), len(s.Stacks))
}

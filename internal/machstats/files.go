package machstats

import "os"

// WriteFiles writes the snapshot's three export artifacts next to prefix:
// prefix.json (the full snapshot), prefix.stacks.csv (the CPI-stack records
// in long form) and prefix.counters.csv (counters and cycle accumulators).
// It returns the paths written, in that order.
func (s Snapshot) WriteFiles(prefix string) ([]string, error) {
	jsonBody, stacksCSV, countersCSV, err := s.Render()
	if err != nil {
		return nil, err
	}
	paths := []string{prefix + ".json", prefix + ".stacks.csv", prefix + ".counters.csv"}
	for i, body := range []string{jsonBody, stacksCSV, countersCSV} {
		if err := os.WriteFile(paths[i], []byte(body), 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

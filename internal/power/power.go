// Package power implements the McPAT-like activity-based power model of the
// study. Per-core power is static (leakage plus clock tree, paid while the
// core is powered on) plus dynamic power proportional to pipeline
// utilization. Idle cores can be power gated to zero, as the paper assumes
// when evaluating energy efficiency. The uncore (shared LLC, interconnect
// and DRAM interface) draws constant power whenever the chip is on.
//
// The coefficients are calibrated to the paper's published anchors: a single
// active big/medium/small core draws 17.3/13.5/9.8 W including the ~7 W
// uncore; the homogeneous configurations draw roughly 46/50/45 W running 24
// threads; and one big core is power-equivalent to two medium or five small
// cores. Absolute watts are approximate by construction — the shapes of the
// power/energy comparisons are what the model preserves.
package power

import (
	"fmt"

	"smtflex/internal/config"
)

// UncoreWatts is the constant power of the shared LLC, crossbar and DRAM
// interface (the paper reports approximately 7 W).
const UncoreWatts = 7.0

// coreCoeff holds the calibrated static and peak-dynamic power of one core.
type coreCoeff struct {
	staticW  float64
	dynamicW float64 // at utilization 1.0 and base frequency
}

// coeffs are calibrated at 45 nm, 2.66 GHz (see package comment).
var coeffs = [config.NumCoreTypes]coreCoeff{
	config.Big:    {staticW: 8.0, dynamicW: 6.2},
	config.Medium: {staticW: 4.2, dynamicW: 4.9},
	config.Small:  {staticW: 1.55, dynamicW: 3.2},
}

// frequencyExponent scales dynamic power with frequency (≈ linear in f at
// fixed voltage; the high-frequency design points also need a voltage bump,
// folded into a superlinear exponent).
const frequencyExponent = 1.6

// CoreWatts returns the power of core cc at the given pipeline utilization
// (Σ IPC / width across its threads, in [0,1]). Powered-off (gated) cores
// consume zero; call it only for active cores.
func CoreWatts(cc config.Core, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	co := coeffs[cc.Type]
	fScale := 1.0
	if cc.FrequencyGHz != config.BaseFrequencyGHz {
		r := cc.FrequencyGHz / config.BaseFrequencyGHz
		fScale = pow(r, frequencyExponent)
	}
	// Larger private caches (the _lc design points) add static and dynamic
	// power proportional to the extra capacity versus the type's baseline.
	cacheScale := cacheSizeScale(cc)
	return co.staticW*fScale*cacheScale + co.dynamicW*fScale*cacheScale*utilization
}

// cacheSizeScale grows core power with private cache capacity relative to
// the Table 1 baseline for the core's type (caches are roughly 30% of core
// power at baseline).
func cacheSizeScale(cc config.Core) float64 {
	base := config.CoreOfType(cc.Type)
	baseBytes := float64(base.L1I.SizeBytes + base.L1D.SizeBytes + base.L2.SizeBytes)
	curBytes := float64(cc.L1I.SizeBytes + cc.L1D.SizeBytes + cc.L2.SizeBytes)
	const cacheFraction = 0.30
	return 1 + cacheFraction*(curBytes/baseBytes-1)
}

// pow is a minimal float power for positive bases (avoids importing math in
// the hot path; exactness is irrelevant at model accuracy).
func pow(base, exp float64) float64 {
	// base^exp = e^(exp ln base); use the stdlib via a tiny wrapper to keep
	// the call sites readable.
	return mathPow(base, exp)
}

// ChipState describes the chip's activity for a power computation.
type ChipState struct {
	// Design is the design point.
	Design config.Design
	// CoreUtilization[c] is core c's pipeline utilization; length must
	// equal the design's core count.
	CoreUtilization []float64
	// CoreActive[c] reports whether core c has any thread (inactive cores
	// are power gated when Gating is set).
	CoreActive []bool
	// Gating power-gates idle cores; without it idle cores still pay
	// static power.
	Gating bool
}

// Validate reports structural errors.
func (s ChipState) Validate() error {
	n := s.Design.NumCores()
	if len(s.CoreUtilization) != n || len(s.CoreActive) != n {
		return fmt.Errorf("power: state arrays (%d,%d) do not match %d cores",
			len(s.CoreUtilization), len(s.CoreActive), n)
	}
	return nil
}

// ChipWatts returns total chip power for the state.
func ChipWatts(s ChipState) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	total := UncoreWatts
	for i, cc := range s.Design.Cores {
		if s.CoreActive[i] {
			total += CoreWatts(cc, s.CoreUtilization[i])
		} else if !s.Gating {
			total += CoreWatts(cc, 0)
		}
	}
	return total, nil
}

// EnergyJoules returns the energy of running for the given time at the
// state's power.
func EnergyJoules(s ChipState, seconds float64) (float64, error) {
	w, err := ChipWatts(s)
	if err != nil {
		return 0, err
	}
	return w * seconds, nil
}

// EDP returns the energy-delay product for a run of the given duration.
func EDP(s ChipState, seconds float64) (float64, error) {
	e, err := EnergyJoules(s, seconds)
	if err != nil {
		return 0, err
	}
	return e * seconds, nil
}

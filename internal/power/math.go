package power

import "math"

// mathPow isolates the math dependency for CoreWatts' frequency scaling.
func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }

package power

import (
	"math"
	"testing"
	"testing/quick"

	"smtflex/internal/config"
)

func TestSingleCoreAnchors(t *testing.T) {
	// Paper anchors: one active big/medium/small core draws 17.3/13.5/9.8 W
	// including the ~7 W uncore. Our model is calibrated at the measured
	// single-thread utilizations; accept ±20%.
	anchors := []struct {
		ct   config.CoreType
		util float64
		want float64
	}{
		// Utilizations are the measured single-thread operating points of
		// the respective homogeneous configurations.
		{config.Big, 0.264, 17.3},
		{config.Medium, 0.326, 13.5},
		{config.Small, 0.142, 9.8},
	}
	for _, a := range anchors {
		got := CoreWatts(config.CoreOfType(a.ct), a.util) + UncoreWatts
		if got < a.want*0.8 || got > a.want*1.2 {
			t.Errorf("%v @ util %.2f: %.1f W, paper %.1f W", a.ct, a.util, got, a.want)
		}
	}
}

func TestPowerEquivalence(t *testing.T) {
	// 1 big ≈ 2 medium ≈ 5 small at each type's measured full-chip
	// operating utilization (in-order small cores sustain a much lower
	// IPC/width than the big OoO core, which is what makes five of them
	// power-equivalent).
	big := CoreWatts(config.BigCore(), 0.284)
	med := CoreWatts(config.MediumCore(), 0.241)
	small := CoreWatts(config.SmallCore(), 0.110)
	if r := 2 * med / big; r < 0.8 || r > 1.3 {
		t.Errorf("2 medium / 1 big power ratio %.2f", r)
	}
	if r := 5 * small / big; r < 0.8 || r > 1.3 {
		t.Errorf("5 small / 1 big power ratio %.2f", r)
	}
}

func TestUtilizationMonotone(t *testing.T) {
	cc := config.BigCore()
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.1 {
		w := CoreWatts(cc, u)
		if w <= prev {
			t.Fatalf("power not increasing at util %.1f", u)
		}
		prev = w
	}
}

func TestUtilizationClamped(t *testing.T) {
	cc := config.BigCore()
	if CoreWatts(cc, -1) != CoreWatts(cc, 0) {
		t.Error("negative utilization not clamped")
	}
	if CoreWatts(cc, 2) != CoreWatts(cc, 1) {
		t.Error("over-unity utilization not clamped")
	}
}

func TestFrequencyScaling(t *testing.T) {
	hf := config.MediumCore()
	hf.FrequencyGHz = 3.33
	base := CoreWatts(config.MediumCore(), 0.5)
	boosted := CoreWatts(hf, 0.5)
	ratio := boosted / base
	// Superlinear in frequency: more than 3.33/2.66 = 1.25.
	if ratio < 1.25 || ratio > 2.0 {
		t.Fatalf("frequency power scaling %.2f", ratio)
	}
}

func TestLargerCachesCostPower(t *testing.T) {
	lc := config.SmallCore()
	lc.L1I = config.BigCore().L1I
	lc.L1D = config.BigCore().L1D
	lc.L2 = config.BigCore().L2
	if CoreWatts(lc, 0.5) <= CoreWatts(config.SmallCore(), 0.5) {
		t.Fatal("larger private caches are free")
	}
}

func chipState(name string, smt bool, active int, util float64, gating bool) ChipState {
	d, _ := config.DesignByName(name, smt)
	st := ChipState{
		Design:          d,
		CoreUtilization: make([]float64, d.NumCores()),
		CoreActive:      make([]bool, d.NumCores()),
		Gating:          gating,
	}
	for i := 0; i < active; i++ {
		st.CoreActive[i] = true
		st.CoreUtilization[i] = util
	}
	return st
}

func TestChipWattsGating(t *testing.T) {
	gated, err := ChipWatts(chipState("4B", true, 1, 0.2, true))
	if err != nil {
		t.Fatal(err)
	}
	ungated, err := ChipWatts(chipState("4B", true, 1, 0.2, false))
	if err != nil {
		t.Fatal(err)
	}
	if gated >= ungated {
		t.Fatalf("gating saved nothing: %g vs %g", gated, ungated)
	}
	// Difference = static power of 3 idle big cores.
	idleStatic := 3 * CoreWatts(config.BigCore(), 0)
	if math.Abs((ungated-gated)-idleStatic) > 1e-9 {
		t.Fatalf("gating delta %g, want %g", ungated-gated, idleStatic)
	}
}

func TestChipWattsIncludesUncore(t *testing.T) {
	w, err := ChipWatts(chipState("20s", true, 0, 0, true))
	if err != nil {
		t.Fatal(err)
	}
	if w != UncoreWatts {
		t.Fatalf("all-gated chip draws %g, want uncore %g", w, UncoreWatts)
	}
}

func TestFullLoadEnvelope(t *testing.T) {
	// All-active homogeneous configurations at representative 24-thread
	// utilizations land in the paper's 45-50 W envelope (±20%).
	cases := []struct {
		name string
		util float64
		want float64
	}{
		// Measured 24-thread utilizations of the homogeneous configurations.
		{"4B", 0.284, 46},
		{"8m", 0.241, 50},
		{"20s", 0.110, 45},
	}
	for _, tc := range cases {
		d, _ := config.DesignByName(tc.name, true)
		w, err := ChipWatts(chipState(tc.name, true, d.NumCores(), tc.util, true))
		if err != nil {
			t.Fatal(err)
		}
		if w < tc.want*0.8 || w > tc.want*1.2 {
			t.Errorf("%s full load %.1f W, paper ~%.0f W", tc.name, w, tc.want)
		}
	}
}

func TestChipStateValidate(t *testing.T) {
	st := chipState("4B", true, 1, 0.5, true)
	st.CoreUtilization = st.CoreUtilization[:2]
	if _, err := ChipWatts(st); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
}

func TestEnergyAndEDP(t *testing.T) {
	st := chipState("4B", true, 4, 0.5, true)
	w, _ := ChipWatts(st)
	e, err := EnergyJoules(st, 2)
	if err != nil || math.Abs(e-2*w) > 1e-9 {
		t.Fatalf("energy %g, want %g", e, 2*w)
	}
	edp, err := EDP(st, 2)
	if err != nil || math.Abs(edp-4*w) > 1e-9 {
		t.Fatalf("EDP %g, want %g", edp, 4*w)
	}
}

func TestCoreWattsPositiveProperty(t *testing.T) {
	f := func(u float64, ct uint8) bool {
		cc := config.CoreOfType(config.CoreType(ct % 3))
		return CoreWatts(cc, u) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

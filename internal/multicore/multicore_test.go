package multicore

import (
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/cpu"
	"smtflex/internal/trace"
	"smtflex/internal/workload"
)

func mustChip(t *testing.T, name string, smt bool) *Chip {
	t.Helper()
	d, err := config.DesignByName(name, smt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(d, cpu.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func reader(t *testing.T, bench string, seed uint64) trace.Reader {
	return generator(t, bench, seed)
}

func generator(t *testing.T, bench string, seed uint64) *trace.Generator {
	t.Helper()
	spec, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsInvalidDesign(t *testing.T) {
	var d config.Design
	if _, err := New(d, cpu.Ideal{}); err == nil {
		t.Fatal("empty design accepted")
	}
}

func TestAttachThreadBounds(t *testing.T) {
	c := mustChip(t, "4B", true)
	if _, err := c.AttachThread(-1, reader(t, "hmmer", 1)); err == nil {
		t.Fatal("negative core accepted")
	}
	if _, err := c.AttachThread(4, reader(t, "hmmer", 1)); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	id, err := c.AttachThread(0, reader(t, "hmmer", 1))
	if err != nil || id != 0 {
		t.Fatalf("attach failed: id=%d err=%v", id, err)
	}
	if c.NumThreads() != 1 {
		t.Fatalf("NumThreads %d", c.NumThreads())
	}
}

func TestRunReachesTarget(t *testing.T) {
	c := mustChip(t, "4B", true)
	for i := 0; i < 4; i++ {
		if _, err := c.AttachThread(i, reader(t, "hmmer", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.Run(5000)
	if len(stats) != 4 {
		t.Fatalf("%d stats", len(stats))
	}
	for i, st := range stats {
		if st.Uops < 5000 {
			t.Errorf("thread %d retired %d µops, want >= 5000", i, st.Uops)
		}
		if st.IPC() <= 0 {
			t.Errorf("thread %d IPC %g", i, st.IPC())
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() []cpu.ThreadStats {
		c := mustChip(t, "2B4m", true)
		for i := 0; i < 6; i++ {
			if _, err := c.AttachThread(i, reader(t, "gcc", uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		return c.Run(3000)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at thread %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEmptyChipRun(t *testing.T) {
	c := mustChip(t, "4B", true)
	if stats := c.Run(1000); stats != nil {
		t.Fatal("empty chip should return nil stats")
	}
}

func TestSharedLLCSeesTraffic(t *testing.T) {
	c := mustChip(t, "4B", true)
	c.AttachThread(0, reader(t, "mcf", 1))
	c.Run(20000)
	if c.LLCStats().Accesses == 0 {
		t.Fatal("mcf never reached the LLC")
	}
	if c.DRAMStats().Accesses == 0 {
		t.Fatal("mcf never reached DRAM")
	}
}

func TestComputeBoundStaysOnChip(t *testing.T) {
	c := mustChip(t, "4B", true)
	c.AttachThread(0, reader(t, "hmmer", 1))
	// Warm long enough to touch the whole 96 KB secondary working set
	// (compulsory misses trickle in for ~150k µops at 10% access weight).
	c.Run(250_000)
	warm := c.DRAMStats().Accesses
	c.Run(350_000)
	perUop := float64(c.DRAMStats().Accesses-warm) / 100_000
	if perUop > 0.002 {
		t.Fatalf("hmmer steady-state DRAM accesses per µop %.4f, want ~0", perUop)
	}
}

func TestCoreCacheStats(t *testing.T) {
	c := mustChip(t, "4B", true)
	c.AttachThread(2, reader(t, "gcc", 1))
	c.Run(10000)
	l1i, l1d, l2 := c.CoreCacheStats(2)
	if l1i.Accesses == 0 || l1d.Accesses == 0 || l2.Accesses == 0 {
		t.Fatalf("idle caches on the active core: %+v %+v %+v", l1i, l1d, l2)
	}
	li, ld, _ := c.CoreCacheStats(0)
	if li.Accesses != 0 || ld.Accesses != 0 {
		t.Fatal("inactive core saw traffic")
	}
}

func TestSMTCoSimulationFairness(t *testing.T) {
	// Six copies of the same benchmark on one big SMT core progress at
	// similar rates under round-robin fetch.
	c := mustChip(t, "4B", true)
	for i := 0; i < 6; i++ {
		if _, err := c.AttachThread(0, reader(t, "tonto", 42)); err != nil {
			t.Fatal(err)
		}
	}
	stats := c.Run(3000)
	min, max := stats[0].IPC(), stats[0].IPC()
	for _, st := range stats[1:] {
		if v := st.IPC(); v < min {
			min = v
		} else if v > max {
			max = v
		}
	}
	if max > min*1.3 {
		t.Fatalf("unfair SMT progress: min %.3f max %.3f", min, max)
	}
}

func TestContentionSlowsCoRunners(t *testing.T) {
	// A thread co-running with 19 memory-bound threads on 20s is slower
	// than alone (shared LLC + DRAM contention).
	solo := mustChip(t, "20s", false)
	solo.AttachThread(0, trace.OffsetAddresses(generator(t, "libquantum", 9), 1<<40))
	soloIPC := solo.Run(10000)[0].IPC()

	crowd := mustChip(t, "20s", false)
	for i := 0; i < 20; i++ {
		// Distinct address offsets: separate programs, as in a real
		// multi-program workload (co-runners must not share data).
		r := trace.OffsetAddresses(generator(t, "libquantum", 9), uint64(i+1)<<40)
		if _, err := crowd.AttachThread(i, r); err != nil {
			t.Fatal(err)
		}
	}
	crowdIPC := crowd.Run(10000)[0].IPC()
	if crowdIPC >= soloIPC {
		t.Fatalf("no contention effect: solo %.3f vs crowded %.3f", soloIPC, crowdIPC)
	}
}

func TestDesignAccessors(t *testing.T) {
	c := mustChip(t, "3B5s", true)
	if c.Design().Name != "3B5s" {
		t.Fatal("design accessor wrong")
	}
	if c.Core(0).Config().Type != config.Big || c.Core(7).Config().Type != config.Small {
		t.Fatal("core ordering wrong")
	}
}

func TestThreadStatsById(t *testing.T) {
	c := mustChip(t, "4B", true)
	id0, _ := c.AttachThread(0, reader(t, "hmmer", 1))
	id1, _ := c.AttachThread(1, reader(t, "mcf", 2))
	c.Run(2000)
	if c.ThreadStats(id0).Uops < 2000 || c.ThreadStats(id1).Uops < 2000 {
		t.Fatal("per-id stats missing")
	}
	// hmmer is much faster than mcf on the same chip.
	if c.ThreadStats(id0).IPC() <= c.ThreadStats(id1).IPC() {
		t.Fatal("expected hmmer to outpace mcf")
	}
}

func TestDirtyLLCEvictionsReachDRAM(t *testing.T) {
	// A store-heavy benchmark with a DRAM-sized footprint produces dirty
	// LLC evictions, which must show up as DRAM writebacks.
	// The 8 MB LLC holds 131k lines; evictions only start once sets fill,
	// which takes on the order of a million µops at mcf's miss rate.
	c := mustChip(t, "4B", true)
	c.AttachThread(0, reader(t, "mcf", 3))
	c.Run(1_200_000)
	if c.DRAMStats().Writebacks == 0 {
		t.Fatal("no DRAM writebacks for a store-heavy DRAM-bound workload")
	}
	if c.DRAMStats().Writebacks >= c.DRAMStats().Accesses {
		t.Fatal("more writebacks than fills")
	}
}

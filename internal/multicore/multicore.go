// Package multicore assembles cores, private caches, the shared LLC, the
// crossbar interconnect and DRAM into a whole chip, and co-simulates all
// hardware threads with the cycle engine.
//
// The chip advances the globally least-advanced thread one µop at a time
// (with round-robin tie-breaking), which keeps the shared cache and DRAM
// state approximately time-coherent across threads — the same strategy
// Sniper's parallel engine approximates with barrier quanta.
package multicore

import (
	"fmt"
	"math"

	"smtflex/internal/branch"
	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/cpu"
	"smtflex/internal/isa"
	"smtflex/internal/machstats"
	"smtflex/internal/mem"
	"smtflex/internal/trace"
)

// crossbarLatency is the on-chip interconnect hop latency in cycles (the
// paper uses a full crossbar at core frequency so the latency is small and
// uniform, and there is no topology contention by construction).
const crossbarLatency = 3

// coreMem is the per-core private hierarchy view; it implements
// cpu.MemorySystem by chaining L1I/L1D/L2 into the chip's shared LLC+DRAM.
type coreMem struct {
	chip *Chip
	l1i  *cache.Cache
	l1d  *cache.Cache
	l2   *cache.Cache
}

// Data implements cpu.MemorySystem.
func (m *coreMem) Data(coreID int, addr uint64, kind cache.AccessKind, now float64) float64 {
	lat := float64(m.l1d.Latency())
	if hit, _ := m.l1d.Access(addr, kind); hit {
		return lat
	}
	lat += float64(m.l2.Latency())
	if hit, _ := m.l2.Access(addr, kind); hit {
		return lat
	}
	return lat + m.chip.sharedAccess(addr, kind, now+lat)
}

// Fetch implements cpu.MemorySystem.
func (m *coreMem) Fetch(coreID int, addr uint64, now float64) float64 {
	if hit, _ := m.l1i.Access(addr, cache.Read); hit {
		return 0
	}
	lat := float64(m.l2.Latency())
	if hit, _ := m.l2.Access(addr, cache.Read); hit {
		return lat
	}
	return lat + m.chip.sharedAccess(addr, cache.Read, now+lat)
}

// Chip is a whole multi-core processor.
type Chip struct {
	design config.Design
	cores  []*cpu.Core
	mems   []*coreMem
	llc    *cache.Cache
	dram   *mem.DRAM

	// threads maps a chip-wide thread id to its (core, context) location.
	threads []threadLoc
	// served provides round-robin tie-breaking for the scheduler.
	served []uint64
	clock  uint64
}

type threadLoc struct {
	core int
	ctx  int
}

// sharedAccess goes through the crossbar to the LLC and, on miss, to DRAM.
// A dirty line evicted by the fill is written back to memory, consuming bus
// bandwidth (but not delaying the demand access, which is serviced first).
func (c *Chip) sharedAccess(addr uint64, kind cache.AccessKind, now float64) float64 {
	lat := float64(crossbarLatency + c.llc.Latency())
	hit, evictedDirty := c.llc.Access(addr, kind)
	if hit {
		return lat
	}
	start := uint64(now + lat)
	ready := c.dram.Access(cache.BlockAddr(addr), start)
	if evictedDirty {
		c.dram.Writeback(cache.BlockAddr(addr), ready)
	}
	return lat + float64(ready-start)
}

// New builds a chip for the design. Ideal flags apply to every core and are
// used by the profiler; normal simulations pass the zero value.
func New(d config.Design, ideal cpu.Ideal) (*Chip, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	llcCfg := cache.Config{
		Name:          "LLC",
		SizeBytes:     d.LLC.SizeBytes,
		Assoc:         d.LLC.Assoc,
		BlockBytes:    isa.MemBlockSize,
		LatencyCycles: d.LLC.LatencyCycles,
	}
	llc, err := cache.New(llcCfg)
	if err != nil {
		return nil, fmt.Errorf("multicore: design %s: %w", d.Name, err)
	}
	dram, err := mem.New(config.MemConfig(d.MemBandwidthGBps))
	if err != nil {
		return nil, fmt.Errorf("multicore: design %s: %w", d.Name, err)
	}
	c := &Chip{
		design: d,
		llc:    llc,
		dram:   dram,
	}
	for i, cc := range d.Cores {
		l1i, err := cache.New(cc.L1I)
		if err != nil {
			return nil, fmt.Errorf("multicore: design %s core %d: %w", d.Name, i, err)
		}
		l1d, err := cache.New(cc.L1D)
		if err != nil {
			return nil, fmt.Errorf("multicore: design %s core %d: %w", d.Name, i, err)
		}
		l2, err := cache.New(cc.L2)
		if err != nil {
			return nil, fmt.Errorf("multicore: design %s core %d: %w", d.Name, i, err)
		}
		cm := &coreMem{chip: c, l1i: l1i, l1d: l1d, l2: l2}
		core, err := cpu.NewCore(cc, i, cm, d.SMTEnabled, ideal)
		if err != nil {
			return nil, fmt.Errorf("multicore: design %s: %w", d.Name, err)
		}
		c.mems = append(c.mems, cm)
		c.cores = append(c.cores, core)
	}
	return c, nil
}

// Design returns the chip's design point.
func (c *Chip) Design() config.Design { return c.design }

// Core returns core i.
func (c *Chip) Core(i int) *cpu.Core { return c.cores[i] }

// AttachThread places a trace on the given core and returns the chip-wide
// thread id.
func (c *Chip) AttachThread(coreID int, r trace.Reader) (int, error) {
	if coreID < 0 || coreID >= len(c.cores) {
		return -1, fmt.Errorf("multicore: core %d out of range", coreID)
	}
	ctx, err := c.cores[coreID].AttachThread(r)
	if err != nil {
		return -1, err
	}
	c.threads = append(c.threads, threadLoc{core: coreID, ctx: ctx})
	c.served = append(c.served, 0)
	return len(c.threads) - 1, nil
}

// NumThreads returns the number of attached threads.
func (c *Chip) NumThreads() int { return len(c.threads) }

// ThreadStats returns the statistics of chip thread id.
func (c *Chip) ThreadStats(id int) cpu.ThreadStats {
	loc := c.threads[id]
	return c.cores[loc.core].ThreadStats(loc.ctx)
}

// Run co-simulates until every thread has retired at least target µops, then
// returns per-thread statistics. Threads that reach the target early keep
// running (their traces restart automatically via the generator's unbounded
// stream) so shared-resource pressure stays realistic, matching the paper's
// methodology of restarting finished programs.
func (c *Chip) Run(target uint64) []cpu.ThreadStats {
	if len(c.threads) == 0 {
		return nil
	}
	remaining := len(c.threads)
	reached := make([]bool, len(c.threads))
	for remaining > 0 {
		id := c.pickNext()
		loc := c.threads[id]
		core := c.cores[loc.core]
		core.StepThread(loc.ctx)
		c.clock++
		c.served[id] = c.clock
		if !reached[id] && core.ThreadStats(loc.ctx).Uops >= target {
			reached[id] = true
			remaining--
		}
	}
	out := make([]cpu.ThreadStats, len(c.threads))
	for i, loc := range c.threads {
		out[i] = c.cores[loc.core].ThreadStats(loc.ctx)
	}
	return out
}

// pickNext selects the thread with the smallest front-end time, breaking
// ties in least-recently-served order (round-robin fetch across contexts).
func (c *Chip) pickNext() int {
	best := -1
	bestTime := math.Inf(1)
	var bestServed uint64
	for id, loc := range c.threads {
		tm := c.cores[loc.core].ThreadTime(loc.ctx)
		if tm < bestTime || (tm == bestTime && c.served[id] < bestServed) {
			best, bestTime, bestServed = id, tm, c.served[id]
		}
	}
	return best
}

// LLCStats returns shared cache statistics.
func (c *Chip) LLCStats() cache.Stats { return c.llc.Stats }

// DRAMStats returns memory statistics.
func (c *Chip) DRAMStats() mem.Stats { return c.dram.Stats }

// CoreCacheStats returns (L1I, L1D, L2) statistics for core i.
func (c *Chip) CoreCacheStats(i int) (l1i, l1d, l2 cache.Stats) {
	m := c.mems[i]
	return m.l1i.Stats, m.l1d.Stats, m.l2.Stats
}

// PublishMachStats publishes the chip's accumulated machine state into the
// machstats registry: per-thread CPI-stack records (engine "cycle"),
// per-thread event counters, per-core private-cache counters, and the
// shared LLC and DRAM counters. benchmarks labels each chip thread by the
// workload it ran; a short or nil slice leaves the label empty. A no-op
// costing one atomic load while machstats is disabled, so default runs pay
// nothing and stay bit-identical — the chip is never mutated here.
func (c *Chip) PublishMachStats(benchmarks []string) {
	if !machstats.Enabled() {
		return
	}
	for id, loc := range c.threads {
		st := c.cores[loc.core].ThreadStats(loc.ctx)
		bench := ""
		if id < len(benchmarks) {
			bench = benchmarks[id]
		}
		machstats.RecordStack(machstats.StackRecord{
			Engine:     "cycle",
			Design:     c.design.Name,
			Benchmark:  bench,
			Core:       loc.core,
			Thread:     id,
			Components: st.Stack(),
		})
		machstats.Add("cycle.uops", st.Uops)
		machstats.Add("cycle.loads", st.Loads)
		machstats.Add("cycle.stores", st.Stores)
		branch.Stats{Lookups: st.Branches, Mispredicts: st.Mispredicts}.Publish("cycle.branch")
		machstats.AddCycles("cycle.mem_stall_cycles", st.MemStallCycles)
		machstats.AddCycles("cycle.branch_stall_cycles", st.BranchStallCycles)
		machstats.AddCycles("cycle.fetch_stall_cycles", st.FetchStallCycles)
	}
	for i := range c.mems {
		l1i, l1d, l2 := c.CoreCacheStats(i)
		l1i.Publish("cycle.cache.l1i")
		l1d.Publish("cycle.cache.l1d")
		l2.Publish("cycle.cache.l2")
	}
	c.llc.Stats.Publish("cycle.cache.llc")
	c.dram.Stats.Publish("cycle.dram")
	machstats.Add("cycle.chip_runs", 1)
}

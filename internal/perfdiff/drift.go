package perfdiff

import (
	"fmt"
	"strings"

	"smtflex/internal/obs"
)

// DriftTolerance configures the snap-on-drift watcher. Like Thresholds, a
// quantile only drifts when it crosses the relative gate *and* the absolute
// floor, so microsecond queue jitter on an idle daemon never trips it.
type DriftTolerance struct {
	// RelPct is the allowed relative increase in percent (50 = 1.5x).
	RelPct float64
	// AbsMin is the absolute increase floor, in the histogram's own unit.
	AbsMin float64
	// Quantiles lists the probed quantiles. Empty means p50/p95/p99.
	Quantiles []float64
}

// DefaultDriftTolerance trips on a sustained ~1.5x shift in any watched
// quantile — loose enough to ignore warmup, tight enough that a solver
// suddenly iterating twice as long gets its snapshot captured.
func DefaultDriftTolerance() DriftTolerance {
	return DriftTolerance{RelPct: 50, AbsMin: 1e-3, Quantiles: []float64{0.5, 0.95, 0.99}}
}

// Drift is one quantile past tolerance.
type Drift struct {
	Histogram string  `json:"histogram"`
	Quantile  float64 `json:"quantile"`
	Baseline  float64 `json:"baseline"`
	Current   float64 `json:"current"`
}

// String renders the drift as one log line.
func (d Drift) String() string {
	return fmt.Sprintf("%s p%g: %.6g -> %.6g", d.Histogram, d.Quantile*100, d.Baseline, d.Current)
}

// DriftWatcher compares live histogram state against a baseline snapshot's.
// It is stateless between checks: the daemon's watch loop decides what to do
// when Check reports drift (capture a snapshot, bump a counter).
type DriftWatcher struct {
	base map[string]obs.HistogramSnapshot
	tol  DriftTolerance
}

// NewDriftWatcher watches the histograms captured in base. A baseline with
// no histogram state yields a watcher that never fires.
func NewDriftWatcher(base *Snapshot, tol DriftTolerance) *DriftWatcher {
	if len(tol.Quantiles) == 0 {
		tol.Quantiles = []float64{0.5, 0.95, 0.99}
	}
	w := &DriftWatcher{base: make(map[string]obs.HistogramSnapshot), tol: tol}
	if base != nil {
		for _, h := range base.Histograms {
			if h.Count > 0 {
				w.base[h.Name] = h.Snapshot()
			}
		}
	}
	return w
}

// Check compares the current histogram state against the baseline and
// returns every quantile past tolerance. Histograms absent from the baseline
// (or empty on either side) are ignored.
func (w *DriftWatcher) Check(cur []HistogramState) []Drift {
	var out []Drift
	for _, h := range cur {
		base, ok := w.base[h.Name]
		if !ok || h.Count == 0 {
			continue
		}
		cs := h.Snapshot()
		for _, p := range w.tol.Quantiles {
			bq, cq := base.Quantile(p), cs.Quantile(p)
			if cq-bq >= w.tol.AbsMin && cq > bq*(1+w.tol.RelPct/100) {
				out = append(out, Drift{Histogram: h.Name, Quantile: p, Baseline: bq, Current: cq})
			}
		}
	}
	return out
}

// FormatDrifts renders drifts as a one-line summary for logs.
func FormatDrifts(ds []Drift) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}

package perfdiff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smtflex/internal/benchjson"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
)

// Thresholds configures the noise floors of a Diff. A delta only *exceeds*
// when it crosses both its relative gate and its absolute floor — the
// absolute floor is what keeps microsecond-scale jitter in a near-idle phase
// from showing up as a 400% "regression".
type Thresholds struct {
	// PhasePct is the allowed relative increase (percent) in a phase's mean
	// self time per trace.
	PhasePct float64
	// PhaseMinNs exempts phases whose mean self time stays under this floor:
	// their durations are timer noise, not attribution.
	PhaseMinNs float64
	// CPIPct is the allowed relative increase in a CPI-stack component's
	// mean CPI per engine.
	CPIPct float64
	// CPIMin is the absolute CPI-delta floor below which a component shift
	// is noise.
	CPIMin float64
	// QuantilePct is the allowed relative increase in a histogram quantile.
	QuantilePct float64
	// QuantileMin is the absolute quantile-delta floor (in the histogram's
	// own unit: iterations, seconds).
	QuantileMin float64
	// Quantiles lists the probed quantiles. Empty means p50/p95/p99.
	Quantiles []float64
	// Bench gates embedded benchjson reports with the existing compare
	// semantics.
	Bench benchjson.Thresholds
}

// DefaultThresholds is the gate tuned for same-machine before/after captures:
// generous relative gates (traced runs share a noisy host) anchored by
// absolute floors that a real hot-path regression clears easily.
func DefaultThresholds() Thresholds {
	return Thresholds{
		PhasePct:    75,
		PhaseMinNs:  1e6, // 1ms mean self time
		CPIPct:      50,
		CPIMin:      0.05,
		QuantilePct: 100,
		QuantileMin: 1e-3,
		Quantiles:   []float64{0.5, 0.95, 0.99},
		Bench:       benchjson.DefaultThresholds(),
	}
}

// Delta is one attributed difference between the snapshots.
type Delta struct {
	// Kind is "phase", "cpi", "quantile", or "bench".
	Kind string `json:"kind"`
	// Group locates the delta: trace group (phase), engine (cpi), histogram
	// name (quantile), or benchmark name (bench).
	Group string `json:"group"`
	// Metric names what moved: a time-stack category, a CPI component, a
	// quantile label ("p95"), or a bench metric ("ns/op").
	Metric string `json:"metric"`
	// Baseline and Current are the metric's values.
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Unit annotates the values ("ns/trace", "cpi", "iterations", "s", ...).
	Unit string `json:"unit,omitempty"`
	// Exceeds marks deltas past their threshold — the regressions.
	Exceeds bool `json:"exceeds"`
	// Note carries context ("missing from current run", "new in current").
	Note string `json:"note,omitempty"`
}

// Rel is the relative change (0.5 = +50%). Deltas with a non-positive
// baseline rank as maximally severe when they exceed.
func (d Delta) Rel() float64 {
	if d.Baseline <= 0 {
		if d.Current > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (d.Current - d.Baseline) / d.Baseline
}

// Report is the result of diffing two snapshots: every delta, ranked most
// severe first, with the exceeding ones counted out for exit-code decisions.
type Report struct {
	SchemaVersion int   `json:"schema_version"`
	BaselineBuild Build `json:"baseline_build"`
	CurrentBuild  Build `json:"current_build"`
	// Deltas is ranked: exceeding deltas first, then by |relative| descending.
	Deltas []Delta `json:"deltas"`
	// Exceeded counts the deltas past threshold (exit 2 when > 0).
	Exceeded int `json:"exceeded"`
}

// Diff attributes the difference between two snapshots. Both must carry the
// current schema version. Metrics present only in current are reported as
// informational deltas (Note "new in current"), never as regressions — a new
// phase has no baseline to regress from.
func Diff(base, cur *Snapshot, th Thresholds) (*Report, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := cur.Validate(); err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	if len(th.Quantiles) == 0 {
		th.Quantiles = []float64{0.5, 0.95, 0.99}
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		BaselineBuild: base.Build,
		CurrentBuild:  cur.Build,
	}
	rep.Deltas = append(rep.Deltas, diffPhases("phase", base.TimeStacks, cur.TimeStacks, th)...)
	rep.Deltas = append(rep.Deltas, diffPhases("fleet-phase", base.FleetStacks, cur.FleetStacks, th)...)
	rep.Deltas = append(rep.Deltas, diffCPI(base.MachStats, cur.MachStats, th)...)
	rep.Deltas = append(rep.Deltas, diffQuantiles(base.Histograms, cur.Histograms, th)...)
	bench, err := diffBench(base.Bench, cur.Bench, th)
	if err != nil {
		return nil, err
	}
	rep.Deltas = append(rep.Deltas, bench...)

	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		a, b := rep.Deltas[i], rep.Deltas[j]
		if a.Exceeds != b.Exceeds {
			return a.Exceeds
		}
		ra, rb := rankRel(a), rankRel(b)
		if ra != rb {
			return ra > rb
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Metric < b.Metric
	})
	for _, d := range rep.Deltas {
		if d.Exceeds {
			rep.Exceeded++
		}
	}
	return rep, nil
}

// rankRel is Rel made total-orderable: +Inf (no baseline) ranks above any
// finite increase, and informational "new" rows rank by magnitude like the
// rest so a big new phase still surfaces near the top of its tier.
func rankRel(d Delta) float64 {
	r := d.Rel()
	if math.IsInf(r, 1) {
		return math.MaxFloat64
	}
	return math.Abs(r)
}

// diffPhases compares per-phase mean self time per trace. Means, not raw
// sums: a live daemon's two snapshots cover different trace counts, and only
// the per-trace rate is comparable across them.
func diffPhases(kind string, base, cur []TimeStack, th Thresholds) []Delta {
	curBy := make(map[string]TimeStack, len(cur))
	for _, ts := range cur {
		curBy[ts.Name] = ts
	}
	var out []Delta
	for _, b := range base {
		c, ok := curBy[b.Name]
		if !ok || b.Traces == 0 || c.Traces == 0 {
			continue
		}
		cats := unionKeys(b.ByNs, c.ByNs)
		for _, cat := range cats {
			bm := float64(b.ByNs[cat]) / float64(b.Traces)
			cm := float64(c.ByNs[cat]) / float64(c.Traces)
			if bm == 0 && cm == 0 {
				continue
			}
			d := Delta{
				Kind: kind, Group: b.Name, Metric: cat,
				Baseline: bm, Current: cm, Unit: "ns/trace",
			}
			if cm >= th.PhaseMinNs && cm > bm*(1+th.PhasePct/100) {
				d.Exceeds = true
			}
			out = append(out, d)
		}
	}
	for _, c := range cur {
		if _, ok := firstStack(base, c.Name); !ok && c.Traces > 0 {
			out = append(out, Delta{
				Kind: kind, Group: c.Name, Metric: "(all)",
				Current: float64(totalNs(c)) / float64(c.Traces),
				Unit:    "ns/trace", Note: "new in current",
			})
		}
	}
	return out
}

// TimeStack aliases obs.TimeStack for the diff helpers.
type TimeStack = obs.TimeStack

// diffCPI compares mean CPI per (engine, component) across the captured
// stack records.
func diffCPI(base, cur *machstats.Snapshot, th Thresholds) []Delta {
	if base == nil || cur == nil {
		return nil
	}
	bm := meanCPI(base.Stacks)
	cm := meanCPI(cur.Stacks)
	var keys []string
	seen := map[string]bool{}
	for k := range bm {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range cm {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []Delta
	for _, k := range keys {
		b, bok := bm[k]
		c, cok := cm[k]
		engine, comp, _ := strings.Cut(k, "\x00")
		d := Delta{Kind: "cpi", Group: engine, Metric: comp, Baseline: b, Current: c, Unit: "cpi"}
		switch {
		case !bok:
			d.Note = "new in current"
		case !cok:
			d.Note = "missing from current"
		default:
			if c-b >= th.CPIMin && c > b*(1+th.CPIPct/100) {
				d.Exceeds = true
			}
		}
		out = append(out, d)
	}
	return out
}

// meanCPI folds stack records into mean CPI keyed by engine\x00component.
func meanCPI(stacks []machstats.StackRecord) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, rec := range stacks {
		for _, comp := range rec.Components {
			k := rec.Engine + "\x00" + comp.Name
			sums[k] += comp.CPI
			counts[k]++
		}
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// diffQuantiles compares histogram quantiles by name.
func diffQuantiles(base, cur []HistogramState, th Thresholds) []Delta {
	curBy := make(map[string]HistogramState, len(cur))
	for _, h := range cur {
		curBy[h.Name] = h
	}
	var out []Delta
	for _, b := range base {
		c, ok := curBy[b.Name]
		if !ok || b.Count == 0 || c.Count == 0 {
			continue
		}
		bs, cs := b.Snapshot(), c.Snapshot()
		for _, p := range th.Quantiles {
			bq, cq := bs.Quantile(p), cs.Quantile(p)
			if bq == 0 && cq == 0 {
				continue
			}
			d := Delta{
				Kind: "quantile", Group: b.Name,
				Metric:   fmt.Sprintf("p%g", p*100),
				Baseline: bq, Current: cq,
			}
			if cq-bq >= th.QuantileMin && cq > bq*(1+th.QuantilePct/100) {
				d.Exceeds = true
			}
			out = append(out, d)
		}
	}
	return out
}

// diffBench converts benchjson regressions to deltas when both snapshots
// embed a report. One side missing is fine (CLI snapshots rarely carry
// bench results); both present but un-comparable is an error.
func diffBench(base, cur *benchjson.Report, th Thresholds) ([]Delta, error) {
	if base == nil || cur == nil {
		return nil, nil
	}
	regs, err := benchjson.Compare(base, cur, th.Bench)
	if err != nil {
		return nil, fmt.Errorf("perfdiff: bench compare: %w", err)
	}
	out := make([]Delta, 0, len(regs))
	for _, r := range regs {
		d := Delta{
			Kind: "bench", Group: r.Name, Metric: r.Metric,
			Baseline: r.Baseline, Current: r.Current, Exceeds: true,
		}
		if r.Metric == "missing" {
			d.Note = "missing from current run"
		}
		out = append(out, d)
	}
	return out, nil
}

// RenderText formats the report as the human-facing attribution table,
// regressions first.
func (r *Report) RenderText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "perfdiff: baseline %s -> current %s\n", describeBuild(r.BaselineBuild), describeBuild(r.CurrentBuild))
	if r.Exceeded > 0 {
		fmt.Fprintf(&b, "REGRESSED: %d delta(s) over threshold\n", r.Exceeded)
	} else {
		b.WriteString("clean: no deltas over threshold\n")
	}
	if len(r.Deltas) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %-28s %-12s %14s %14s %9s  %s\n",
		"kind", "group", "metric", "baseline", "current", "delta", "flag")
	for _, d := range r.Deltas {
		flag := ""
		if d.Exceeds {
			flag = "OVER"
		}
		if d.Note != "" {
			if flag != "" {
				flag += " "
			}
			flag += "(" + d.Note + ")"
		}
		fmt.Fprintf(&b, "%-12s %-28s %-12s %14.6g %14.6g %9s  %s\n",
			d.Kind, d.Group, d.Metric, d.Baseline, d.Current, formatRel(d), flag)
	}
	return b.String()
}

// formatRel renders the signed relative delta.
func formatRel(d Delta) string {
	r := d.Rel()
	if math.IsInf(r, 1) {
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", 100*r)
}

// describeBuild renders a build identity compactly.
func describeBuild(b Build) string {
	if b.Revision == "" || b.Revision == "unknown" {
		return b.GoVersion
	}
	return b.Revision
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys(a, b map[string]int64) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var keys []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// firstStack finds a stack by name.
func firstStack(stacks []TimeStack, name string) (TimeStack, bool) {
	for _, s := range stacks {
		if s.Name == name {
			return s, true
		}
	}
	return TimeStack{}, false
}

// totalNs sums a stack's attributed time.
func totalNs(s TimeStack) int64 {
	var t int64
	for _, v := range s.ByNs {
		t += v
	}
	return t
}

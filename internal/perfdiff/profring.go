package perfdiff

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProfRingCap bounds the continuous-profiling ring: enough history to
// bracket a drift event, small enough that a long-running daemon's memory
// stays flat (a 1s CPU profile of this workload is tens of KB).
const DefaultProfRingCap = 8

// ProfRing is a bounded ring of periodic CPU profile captures — smtflexd's
// continuous profiler. Disarmed (the default) it is completely inert: no
// goroutine, no timer, and nothing on any engine path references it, so the
// sweep hot path cannot pay for it (the zero-alloc guard in
// internal/study asserts exactly that). Armed, a single goroutine wakes per
// interval, captures a short profile, and stores it; the engine still never
// sees the ring — CPU profiling overhead is the only cost.
type ProfRing struct {
	mu       sync.Mutex
	profiles []Profile
	next     int
	filled   bool

	armed    atomic.Bool
	captures atomic.Int64
	skipped  atomic.Int64
}

// NewProfRing returns a ring holding the most recent ringCap profiles
// (DefaultProfRingCap when ringCap <= 0).
func NewProfRing(ringCap int) *ProfRing {
	if ringCap <= 0 {
		ringCap = DefaultProfRingCap
	}
	return &ProfRing{profiles: make([]Profile, ringCap)}
}

// Armed reports whether the capture loop is running.
func (r *ProfRing) Armed() bool { return r != nil && r.armed.Load() }

// Counts reports successful and skipped captures (a capture is skipped when
// another CPU profile — an on-demand ?pprof=1 snapshot, say — already holds
// the process-wide profiler).
func (r *ProfRing) Counts() (captures, skipped int64) {
	if r == nil {
		return 0, 0
	}
	return r.captures.Load(), r.skipped.Load()
}

// CaptureOnce captures one CPU profile of the given duration into the ring.
func (r *ProfRing) CaptureOnce(dur time.Duration) error {
	p, err := CaptureCPUProfile(dur)
	if err != nil {
		r.skipped.Add(1)
		return err
	}
	r.mu.Lock()
	r.profiles[r.next] = p
	r.next++
	if r.next == len(r.profiles) {
		r.next, r.filled = 0, true
	}
	r.mu.Unlock()
	r.captures.Add(1)
	return nil
}

// Run captures a profile of length dur every interval until ctx is done.
// It arms the ring for its lifetime and is the only writer; callers run it
// on a dedicated goroutine.
func (r *ProfRing) Run(ctx context.Context, interval, dur time.Duration) {
	if interval <= 0 {
		return
	}
	if dur <= 0 || dur > interval {
		dur = interval / 2
	}
	r.armed.Store(true)
	defer r.armed.Store(false)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			// Errors (a concurrent on-demand profile) are counted, not
			// fatal: the loop retries next tick.
			_ = r.CaptureOnce(dur)
		}
	}
}

// Snapshot returns the ring's profiles, oldest first.
func (r *ProfRing) Snapshot() []Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.profiles)
	}
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		idx := i
		if r.filled {
			idx = (r.next + i) % len(r.profiles)
		}
		out = append(out, r.profiles[idx])
	}
	return out
}

package perfdiff

import (
	"smtflex/internal/machstats"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
)

// Engine is the slice of the experiment engine the CLI capture path needs:
// a place to hang the engine histograms and the cache counters to embed.
// *study.Study satisfies it.
type Engine interface {
	SetEngineHistograms(solverIters, poolQueue *obs.Histogram)
	CacheCounters() []memo.Counters
}

// CLIArm holds every snapshot source armed for a command-line run. Arm once
// before the campaign, WriteDir once after it; the armed sources never
// change the engine's output (pinned by TestSweepBitIdenticalWithPerfsnap).
type CLIArm struct {
	role        string
	eng         Engine
	col         *obs.Collector
	solverIters *obs.Histogram
	poolQueue   *obs.Histogram
}

// ArmCLI enables tracing and machine counters and registers the engine
// histograms, sharing col with the command's own tracing when it already has
// a collector (a span reports to one collector, and the snapshot should see
// the same traces the -trace file gets).
func ArmCLI(role string, eng Engine, col *obs.Collector) *CLIArm {
	obs.Enable()
	machstats.Enable()
	a := &CLIArm{
		role:        role,
		eng:         eng,
		col:         col,
		solverIters: obs.NewHistogram(SolverIterBuckets),
		poolQueue:   obs.NewHistogram(QueueSecondsBuckets),
	}
	eng.SetEngineHistograms(a.solverIters, a.poolQueue)
	return a
}

// WriteDir captures the armed sources into a timestamped snapshot file under
// dir and returns its path.
func (a *CLIArm) WriteDir(dir string) (string, error) {
	mach := machstats.Default().Snapshot()
	snap := Capture(CaptureOpts{
		Role:   a.role,
		Traces: a.col.Snapshots(),
		Mach:   &mach,
		Histograms: []HistogramState{
			HistState(HistSolverIterations, a.solverIters.Snapshot()),
			HistState(HistPoolQueueSeconds, a.poolQueue.Snapshot()),
		},
		Caches: a.eng.CacheCounters(),
	})
	return snap.WriteDir(dir, a.role)
}

// Package perfdiff is the performance-observability layer: versioned perf
// snapshots bundling the engine's runtime self-measurements (obs time stacks,
// machstats counters and CPI stacks, solver/queue histograms, memo cache
// counters, bench results, pprof profiles), and differential attribution
// between two snapshots — the instrument that turns "we regressed" into
// "contention.solve regressed".
//
// The design applies the paper's own methodology to the simulator itself:
// Eyerman-style CPI stacks decompose cycles into named components so a change
// is attributable; perfdiff decomposes a build's runtime into named phases so
// a regression is attributable. A snapshot is cheap to capture (it only reads
// already-collected state), schema-locked (SchemaVersion gates every read),
// and diffable offline with cmd/perfdiff.
package perfdiff

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"smtflex/internal/benchjson"
	"smtflex/internal/buildinfo"
	"smtflex/internal/machstats"
	"smtflex/internal/memo"
	"smtflex/internal/obs"
)

// SchemaVersion is the snapshot document version. Readers reject documents
// from a different version instead of silently mis-attributing: a perf diff
// across schema generations is noise presented as signal.
const SchemaVersion = 1

// Canonical engine histogram buckets, shared between the daemon's /metrics
// export and snapshot capture so a baseline captured anywhere diffs cleanly
// against a snapshot captured anywhere else.
var (
	// SolverIterBuckets covers contention-solver iteration counts.
	SolverIterBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	// QueueSecondsBuckets covers pool queue waits in seconds.
	QueueSecondsBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
)

// Canonical histogram names used by the daemon and the CLIs.
const (
	HistSolverIterations = "solver_iterations"
	HistPoolQueueSeconds = "pool_queue_seconds"
)

// Build is buildinfo.Info with locked JSON field names, so the snapshot
// schema does not depend on another package's field spelling.
type Build struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
	Module    string `json:"module"`
	Version   string `json:"version"`
}

// BuildFromInfo converts the binary's build metadata to the snapshot form.
func BuildFromInfo(i buildinfo.Info) Build {
	return Build{GoVersion: i.GoVersion, Revision: i.Revision, Module: i.Module, Version: i.Version}
}

// HistogramState is one named histogram's full bucket state — enough to
// recompute quantiles offline via obs.HistogramSnapshot.Quantile.
type HistogramState struct {
	Name       string    `json:"name"`
	Bounds     []float64 `json:"bounds,omitempty"`
	Cumulative []int64   `json:"cumulative,omitempty"`
	Count      int64     `json:"count"`
	Sum        float64   `json:"sum"`
}

// HistState captures one histogram snapshot under a name.
func HistState(name string, s obs.HistogramSnapshot) HistogramState {
	return HistogramState{Name: name, Bounds: s.Bounds, Cumulative: s.Cumulative, Count: s.Count, Sum: s.Sum}
}

// Snapshot converts back to the obs form (for Quantile).
func (h HistogramState) Snapshot() obs.HistogramSnapshot {
	return obs.HistogramSnapshot{Bounds: h.Bounds, Cumulative: h.Cumulative, Count: h.Count, Sum: h.Sum}
}

// CacheCounter is one memo cache's hit/miss state with locked JSON names.
type CacheCounter struct {
	Name      string `json:"name"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Entries   int    `json:"entries"`
}

// CacheCounters converts memo counter snapshots to the snapshot form.
func CacheCounters(cs []memo.Counters) []CacheCounter {
	if len(cs) == 0 {
		return nil
	}
	out := make([]CacheCounter, len(cs))
	for i, c := range cs {
		out[i] = CacheCounter{Name: c.Name, Hits: c.Hits, Misses: c.Misses, Coalesced: c.Coalesced, Entries: c.Entries}
	}
	return out
}

// Profile is one captured pprof profile. Data is the raw gzipped protobuf;
// encoding/json transports it as base64.
type Profile struct {
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// CapturedAt is when the capture finished.
	CapturedAt time.Time `json:"captured_at"`
	// DurMs is the CPU profiling window (zero for heap).
	DurMs int64 `json:"dur_ms,omitempty"`
	// Data is the profile bytes.
	Data []byte `json:"data"`
}

// Snapshot is the versioned perf bundle. Every field only *reads* engine
// state: capturing a snapshot never perturbs results (the bit-identity suite
// asserts this on the nine-design sweep).
type Snapshot struct {
	SchemaVersion int       `json:"schema_version"`
	CapturedAt    time.Time `json:"captured_at"`
	Build         Build     `json:"build"`
	// Role labels the capturing process: "daemon", "coordinator", "worker",
	// or a CLI name.
	Role string `json:"role,omitempty"`
	// TimeStacks is the engine-phase self-time decomposition per trace group.
	TimeStacks []obs.TimeStack `json:"time_stacks,omitempty"`
	// FleetStacks is the fabric-phase decomposition from a coordinator's
	// stitched sweep traces (empty for single-process captures).
	FleetStacks []obs.TimeStack `json:"fleet_stacks,omitempty"`
	// MachStats carries the simulated-hardware counters and CPI stacks.
	MachStats *machstats.Snapshot `json:"machstats,omitempty"`
	// Histograms is the engine histogram state (solver iterations, queue).
	Histograms []HistogramState `json:"histograms,omitempty"`
	// Caches is the memo cache counter state.
	Caches []CacheCounter `json:"caches,omitempty"`
	// Bench embeds a benchjson report when the capture had one (CI attaches
	// the current run so perfdiff can attribute a bench regression).
	Bench *benchjson.Report `json:"bench,omitempty"`
	// Profiles carries optional pprof captures (?pprof=1, or the prof ring).
	Profiles []Profile `json:"profiles,omitempty"`
}

// CaptureOpts collects the engine state a Snapshot is built from. Every
// field is optional; Capture only packages what it is given.
type CaptureOpts struct {
	Role        string
	Traces      []obs.TraceJSON
	FleetStacks []obs.TimeStack
	Mach        *machstats.Snapshot
	Histograms  []HistogramState
	Caches      []memo.Counters
	Bench       *benchjson.Report
	Profiles    []Profile
}

// Capture builds a schema-stamped snapshot from already-collected state. It
// aggregates traces into time stacks but performs no collection of its own.
func Capture(o CaptureOpts) *Snapshot {
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		CapturedAt:    time.Now().UTC(),
		Build:         BuildFromInfo(buildinfo.Get()),
		Role:          o.Role,
		FleetStacks:   o.FleetStacks,
		MachStats:     o.Mach,
		Histograms:    o.Histograms,
		Caches:        CacheCounters(o.Caches),
		Bench:         o.Bench,
		Profiles:      o.Profiles,
	}
	if len(o.Traces) > 0 {
		s.TimeStacks = obs.TimeStacks(o.Traces)
	}
	return s
}

// Validate checks the schema stamp. Diff and every reader call it so a
// hand-edited or cross-generation document fails loudly.
func (s *Snapshot) Validate() error {
	if s == nil {
		return errors.New("perfdiff: nil snapshot")
	}
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("perfdiff: snapshot schema version %d, this build reads %d",
			s.SchemaVersion, SchemaVersion)
	}
	return nil
}

// Histogram returns the named histogram state and whether it was captured.
func (s *Snapshot) Histogram(name string) (HistogramState, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramState{}, false
}

// MarshalIndent renders the snapshot as the canonical indented JSON document.
func (s *Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteFile writes the snapshot atomically (temp file + rename in the target
// directory, like the journal and flight-recorder dumps) so a crash mid-write
// never leaves a torn document for a later diff to choke on.
func (s *Snapshot) WriteFile(path string) error {
	data, err := s.MarshalIndent()
	if err != nil {
		return fmt.Errorf("perfdiff: marshal snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".perfsnap-*.tmp")
	if err != nil {
		return fmt.Errorf("perfdiff: write snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("perfdiff: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("perfdiff: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("perfdiff: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("perfdiff: rename snapshot: %w", err)
	}
	return nil
}

// WriteDir writes the snapshot into dir under a timestamped name
// (<prefix>-<UTC stamp>.json), creating dir if needed, and returns the path.
func (s *Snapshot) WriteDir(dir, prefix string) (string, error) {
	if prefix == "" {
		prefix = "perfsnap"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("perfdiff: %w", err)
	}
	stamp := s.CapturedAt
	if stamp.IsZero() {
		stamp = time.Now().UTC()
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.json", prefix, stamp.UTC().Format("20060102T150405.000000000")))
	if err := s.WriteFile(path); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile reads and validates a snapshot document.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfdiff: read snapshot: %w", err)
	}
	s := &Snapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("perfdiff: parse snapshot %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ReadAuto reads a perf snapshot, falling back to a raw benchjson report
// wrapped as a bench-only snapshot — so CI can hand perfdiff the same
// documents the bench job already produces without a conversion step.
func ReadAuto(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perfdiff: read snapshot: %w", err)
	}
	probe := struct {
		SchemaVersion *int `json:"schema_version"`
	}{}
	if err := json.Unmarshal(data, &probe); err == nil && probe.SchemaVersion != nil {
		s := &Snapshot{}
		if err := json.Unmarshal(data, s); err != nil {
			return nil, fmt.Errorf("perfdiff: parse snapshot %s: %w", path, err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	rep, err := benchjson.DecodeJSON(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("perfdiff: %s is neither a perf snapshot nor a benchjson report: %w", path, err)
	}
	s := Capture(CaptureOpts{Role: "benchjson", Bench: rep})
	return s, nil
}

// CaptureCPUProfile profiles the process for dur and returns the profile.
// It fails (without blocking) when another CPU profile is already running —
// pprof allows one at a time process-wide.
func CaptureCPUProfile(dur time.Duration) (Profile, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return Profile{}, fmt.Errorf("perfdiff: cpu profile: %w", err)
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()
	return Profile{
		Kind:       "cpu",
		CapturedAt: time.Now().UTC(),
		DurMs:      dur.Milliseconds(),
		Data:       buf.Bytes(),
	}, nil
}

// CaptureHeapProfile snapshots the heap profile (after a GC, so the numbers
// reflect live objects rather than garbage awaiting collection).
func CaptureHeapProfile() (Profile, error) {
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return Profile{}, fmt.Errorf("perfdiff: heap profile: %w", err)
	}
	return Profile{Kind: "heap", CapturedAt: time.Now().UTC(), Data: buf.Bytes()}, nil
}

package perfdiff_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"smtflex/internal/benchjson"
	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/faults"
	"smtflex/internal/machstats"
	"smtflex/internal/obs"
	"smtflex/internal/perfdiff"
	"smtflex/internal/profiler"
	"smtflex/internal/workload"
)

// shared profiling source: measuring profiles is the expensive part, so the
// engine-backed tests in this package reuse one cache.
var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(60_000) })
	return src
}

// place builds a placement of the given benchmarks round-robin over the
// design's cores.
func place(t *testing.T, designName string, benches ...string) contention.Placement {
	t.Helper()
	d, err := config.DesignByName(designName, true)
	if err != nil {
		t.Fatal(err)
	}
	p := contention.Placement{Design: d}
	for i, b := range benches {
		c := i % d.NumCores()
		spec, err := workload.ByName(b)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := source().Profile(spec, d.Cores[c].Type)
		if err != nil {
			t.Fatal(err)
		}
		p.CoreOf = append(p.CoreOf, c)
		p.Profiles = append(p.Profiles, prof)
	}
	return p
}

// solveSnapshot runs solves traced solves of pl under one root trace and
// captures a perf snapshot from the collected state: the same pipeline a
// live daemon's /debug/perfsnap walks, minus HTTP.
func solveSnapshot(t *testing.T, pl contention.Placement, solves int) *perfdiff.Snapshot {
	t.Helper()
	col := obs.NewCollector(4)
	iters := obs.NewHistogram(perfdiff.SolverIterBuckets)
	ctx, root := obs.StartTrace(context.Background(), col, "bench.solve")
	s := contention.NewSolver()
	for i := 0; i < solves; i++ {
		res, err := s.SolveModelCtx(ctx, pl, contention.Model{})
		if err != nil {
			t.Fatal(err)
		}
		iters.Observe(float64(res.Diag.Iterations))
	}
	root.End()
	mach := machstats.Default().Snapshot()
	return perfdiff.Capture(perfdiff.CaptureOpts{
		Role:   "test",
		Traces: col.Snapshots(),
		Mach:   &mach,
		Histograms: []perfdiff.HistogramState{
			perfdiff.HistState(perfdiff.HistSolverIterations, iters.Snapshot()),
		},
	})
}

// TestDiffSelfClean is the self-cleanliness acceptance criterion: two
// snapshots of the same build doing the same work must report no deltas over
// the default noise floor — the analog of TestCommittedBaselineIsSelfClean
// for the bench gate.
func TestDiffSelfClean(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	machstats.Enable()
	defer machstats.Disable()
	pl := place(t, "4B", "tonto", "gcc", "mcf", "hmmer", "soplex", "bzip2")

	machstats.Reset()
	base := solveSnapshot(t, pl, 100)
	machstats.Reset()
	cur := solveSnapshot(t, pl, 100)
	machstats.Reset()

	rep, err := perfdiff.Diff(base, cur, perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exceeded != 0 {
		t.Fatalf("same-build diff not self-clean: %d exceeded\n%s", rep.Exceeded, rep.RenderText())
	}
	if len(rep.Deltas) == 0 {
		t.Fatal("diff of two captured snapshots reported no deltas at all (capture broken?)")
	}
	// The identical solver work must make identical histograms, bit for bit.
	for _, d := range rep.Deltas {
		if d.Kind == "quantile" && d.Baseline != d.Current {
			t.Errorf("quantile %s/%s differs on identical work: %g vs %g", d.Group, d.Metric, d.Baseline, d.Current)
		}
	}
}

// TestDiffRanksInjectedSolveRegression is the attribution acceptance
// criterion: slow the solver synthetically (faults latency at every solver
// iteration) and the diff must rank contention.solve as the top regression.
func TestDiffRanksInjectedSolveRegression(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	pl := place(t, "4B", "tonto", "gcc", "mcf", "hmmer")

	base := solveSnapshot(t, pl, 10)

	faults.Enable(faults.SiteSolver, faults.Injection{Mode: faults.ModeLatency, Latency: 50 * time.Microsecond})
	defer faults.Reset()
	cur := solveSnapshot(t, pl, 10)
	faults.Reset()

	rep, err := perfdiff.Diff(base, cur, perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exceeded == 0 {
		t.Fatalf("injected solver latency not detected\n%s", rep.RenderText())
	}
	top := rep.Deltas[0]
	if top.Kind != "phase" || top.Metric != obs.CatSolve || !top.Exceeds {
		t.Fatalf("top delta is %s/%s/%s (exceeds=%v), want phase/%s regression\n%s",
			top.Kind, top.Group, top.Metric, top.Exceeds, obs.CatSolve, rep.RenderText())
	}
	// The injection slows wall time but must not change solver arithmetic:
	// iteration-count quantiles stay bit-identical, proving the report
	// attributes the slowdown to time, not to behavior.
	for _, d := range rep.Deltas {
		if d.Kind == "quantile" && d.Exceeds {
			t.Errorf("iteration quantile flagged under pure latency injection: %+v", d)
		}
	}
}

// TestSnapshotSchemaLocked locks the JSON field names of every snapshot
// section: renaming a field breaks every archived baseline, so it must break
// this test first.
func TestSnapshotSchemaLocked(t *testing.T) {
	snap := &perfdiff.Snapshot{
		SchemaVersion: perfdiff.SchemaVersion,
		CapturedAt:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Build:         perfdiff.Build{GoVersion: "go", Revision: "r", Module: "m", Version: "v"},
		Role:          "test",
		TimeStacks: []obs.TimeStack{{
			Name: "g", Traces: 1, WallNs: 10,
			ByNs: map[string]int64{"solve": 10}, Percent: map[string]float64{"solve": 100},
		}},
		MachStats: &machstats.Snapshot{
			Counters: []machstats.CounterSample{{Name: "c", Value: 1}},
			Cycles:   []machstats.CycleSample{{Name: "y", Cycles: 2}},
			Stacks: []machstats.StackRecord{{
				Engine: "interval", Design: "4B", Benchmark: "gcc",
				Components: []machstats.Component{{Name: "base", CPI: 1}},
			}},
		},
		Histograms: []perfdiff.HistogramState{{Name: "h", Bounds: []float64{1}, Cumulative: []int64{1}, Count: 1, Sum: 1}},
		Caches:     []perfdiff.CacheCounter{{Name: "p", Hits: 1, Misses: 2, Coalesced: 3, Entries: 4}},
		Bench:      &benchjson.Report{Results: []benchjson.Result{{Name: "B", Procs: 1, Iterations: 1, NsPerOp: 2}}},
		Profiles:   []perfdiff.Profile{{Kind: "cpu", CapturedAt: time.Date(2026, 1, 2, 3, 4, 6, 0, time.UTC), DurMs: 100, Data: []byte{1}}},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{
		"schema_version", "captured_at", "build", "role", "time_stacks",
		"machstats", "histograms", "caches", "bench", "profiles",
	}
	for _, k := range wantKeys {
		if _, ok := doc[k]; !ok {
			t.Errorf("snapshot JSON missing locked key %q", k)
		}
	}
	if len(doc) != len(wantKeys) {
		t.Errorf("snapshot JSON has %d top-level keys, schema locks %d: %s", len(doc), len(wantKeys), data)
	}
	for section, keys := range map[string][]string{
		"build":      {"go_version", "revision", "module", "version"},
		"histograms": {"name", "bounds", "cumulative", "count", "sum"},
		"caches":     {"name", "hits", "misses", "coalesced", "entries"},
		"profiles":   {"kind", "captured_at", "dur_ms", "data"},
	} {
		var raw any
		if err := json.Unmarshal(doc[section], &raw); err != nil {
			t.Fatalf("%s: %v", section, err)
		}
		obj, ok := raw.(map[string]any)
		if !ok {
			obj = raw.([]any)[0].(map[string]any)
		}
		for _, k := range keys {
			if _, present := obj[k]; !present {
				t.Errorf("%s JSON missing locked key %q", section, k)
			}
		}
		if len(obj) != len(keys) {
			t.Errorf("%s JSON has %d keys, schema locks %d", section, len(obj), len(keys))
		}
	}

	// And the document round-trips losslessly.
	back := &perfdiff.Snapshot{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot does not round-trip:\n%+v\nvs\n%+v", snap, back)
	}
}

func TestSnapshotWriteReadAtomic(t *testing.T) {
	dir := t.TempDir()
	snap := perfdiff.Capture(perfdiff.CaptureOpts{Role: "test"})
	path := filepath.Join(dir, "snap.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := perfdiff.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Role != "test" || back.SchemaVersion != perfdiff.SchemaVersion {
		t.Errorf("round trip lost fields: %+v", back)
	}
	// Atomic write leaves no temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	// WriteDir stamps the filename.
	p2, err := snap.WriteDir(dir, "perfsnap")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(p2), "perfsnap-") || !strings.HasSuffix(p2, ".json") {
		t.Errorf("WriteDir name %q", p2)
	}
}

func TestValidateRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := perfdiff.ReadFile(path); err == nil {
		t.Fatal("schema version 99 accepted")
	}
	wrong := &perfdiff.Snapshot{SchemaVersion: 2}
	if _, err := perfdiff.Diff(wrong, wrong, perfdiff.DefaultThresholds()); err == nil {
		t.Fatal("Diff accepted mismatched schema version")
	}
}

func TestReadAutoWrapsBenchReport(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	raw := `{"results":[{"name":"BenchmarkX","procs":1,"iterations":10,"ns_per_op":100,"metrics":{"allocs/op":5}}]}`
	if err := os.WriteFile(bench, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := perfdiff.ReadAuto(bench)
	if err != nil {
		t.Fatal(err)
	}
	if s.Bench == nil || len(s.Bench.Results) != 1 || s.Bench.Results[0].Name != "BenchmarkX" {
		t.Fatalf("benchjson not wrapped: %+v", s)
	}
	// A real snapshot reads through the same entry point.
	snapPath := filepath.Join(dir, "snap.json")
	if err := perfdiff.Capture(perfdiff.CaptureOpts{Role: "x"}).WriteFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if s, err = perfdiff.ReadAuto(snapPath); err != nil || s.Role != "x" {
		t.Fatalf("snapshot through ReadAuto: %v %+v", err, s)
	}
	// Garbage is neither.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"hello": 1}`), 0o644)
	if _, err := perfdiff.ReadAuto(bad); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDiffBenchEmbedded(t *testing.T) {
	mkSnap := func(ns, allocs float64) *perfdiff.Snapshot {
		return perfdiff.Capture(perfdiff.CaptureOpts{Bench: &benchjson.Report{Results: []benchjson.Result{{
			Name: "BenchmarkSolve", Procs: 1, Iterations: 10, NsPerOp: ns,
			Metrics: map[string]float64{"allocs/op": allocs},
		}}}})
	}
	rep, err := perfdiff.Diff(mkSnap(10_000, 0), mkSnap(100_000, 500), perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exceeded == 0 {
		t.Fatalf("10x ns/op + 500 allocs not flagged\n%s", rep.RenderText())
	}
	var kinds []string
	for _, d := range rep.Deltas {
		if d.Exceeds {
			kinds = append(kinds, d.Kind+"/"+d.Metric)
		}
	}
	want := map[string]bool{"bench/ns/op": false, "bench/allocs/op": false}
	for _, k := range kinds {
		want[k] = true
	}
	for k, hit := range want {
		if !hit {
			t.Errorf("expected exceeding delta %s, got %v", k, kinds)
		}
	}
}

func TestDiffQuantileShift(t *testing.T) {
	mk := func(vals ...float64) perfdiff.HistogramState {
		h := obs.NewHistogram(perfdiff.SolverIterBuckets)
		for _, v := range vals {
			h.Observe(v)
		}
		return perfdiff.HistState(perfdiff.HistSolverIterations, h.Snapshot())
	}
	base := perfdiff.Capture(perfdiff.CaptureOpts{Histograms: []perfdiff.HistogramState{mk(3, 3, 3, 3)}})
	cur := perfdiff.Capture(perfdiff.CaptureOpts{Histograms: []perfdiff.HistogramState{mk(120, 120, 120, 120)}})
	rep, err := perfdiff.Diff(base, cur, perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exceeded == 0 {
		t.Fatalf("40x iteration shift not flagged\n%s", rep.RenderText())
	}
	if top := rep.Deltas[0]; top.Kind != "quantile" || top.Group != perfdiff.HistSolverIterations {
		t.Errorf("top delta %+v, want quantile shift", top)
	}
	// Identical histograms stay clean.
	rep, err = perfdiff.Diff(base, base, perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exceeded != 0 {
		t.Errorf("identical histograms flagged\n%s", rep.RenderText())
	}
}

func TestDiffCPIShift(t *testing.T) {
	mk := func(memCPI float64) *perfdiff.Snapshot {
		return perfdiff.Capture(perfdiff.CaptureOpts{Mach: &machstats.Snapshot{Stacks: []machstats.StackRecord{{
			Engine: "interval", Design: "4B", Benchmark: "gcc",
			Components: []machstats.Component{{Name: "base", CPI: 0.5}, {Name: "mem", CPI: memCPI}},
		}}}})
	}
	rep, err := perfdiff.Diff(mk(0.2), mk(0.9), perfdiff.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	var flagged *perfdiff.Delta
	for i := range rep.Deltas {
		if rep.Deltas[i].Exceeds {
			flagged = &rep.Deltas[i]
		}
	}
	if flagged == nil || flagged.Kind != "cpi" || flagged.Metric != "mem" || flagged.Group != "interval" {
		t.Fatalf("mem CPI 0.2->0.9 not attributed: %+v\n%s", flagged, rep.RenderText())
	}
	// base stayed put and must not be flagged.
	for _, d := range rep.Deltas {
		if d.Metric == "base" && d.Exceeds {
			t.Errorf("unchanged base component flagged: %+v", d)
		}
	}
}

func TestDriftWatcher(t *testing.T) {
	mk := func(vals ...float64) []perfdiff.HistogramState {
		h := obs.NewHistogram(perfdiff.SolverIterBuckets)
		for _, v := range vals {
			h.Observe(v)
		}
		return []perfdiff.HistogramState{perfdiff.HistState(perfdiff.HistSolverIterations, h.Snapshot())}
	}
	base := perfdiff.Capture(perfdiff.CaptureOpts{Histograms: mk(3, 3, 3, 3)})
	w := perfdiff.NewDriftWatcher(base, perfdiff.DefaultDriftTolerance())
	if ds := w.Check(mk(3, 3, 3, 3)); len(ds) != 0 {
		t.Errorf("identical state drifted: %v", ds)
	}
	ds := w.Check(mk(120, 120, 120, 120))
	if len(ds) == 0 {
		t.Fatal("40x shift not detected")
	}
	if ds[0].Histogram != perfdiff.HistSolverIterations {
		t.Errorf("drift %+v", ds[0])
	}
	// Histograms absent from the baseline never fire.
	w2 := perfdiff.NewDriftWatcher(perfdiff.Capture(perfdiff.CaptureOpts{}), perfdiff.DefaultDriftTolerance())
	if ds := w2.Check(mk(120)); len(ds) != 0 {
		t.Errorf("baseline-free watcher fired: %v", ds)
	}
}

func TestProfRing(t *testing.T) {
	r := perfdiff.NewProfRing(2)
	if r.Armed() {
		t.Fatal("fresh ring armed")
	}
	for i := 0; i < 3; i++ {
		if err := r.CaptureOnce(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	ps := r.Snapshot()
	if len(ps) != 2 {
		t.Fatalf("ring holds %d profiles, want 2 (cap)", len(ps))
	}
	for _, p := range ps {
		if p.Kind != "cpu" || len(p.Data) == 0 {
			t.Errorf("bad profile %q with %d bytes", p.Kind, len(p.Data))
		}
	}
	if !ps[0].CapturedAt.Before(ps[1].CapturedAt) && !ps[0].CapturedAt.Equal(ps[1].CapturedAt) {
		t.Errorf("ring not oldest-first: %v then %v", ps[0].CapturedAt, ps[1].CapturedAt)
	}
	caps, skipped := r.Counts()
	if caps != 3 || skipped != 0 {
		t.Errorf("counts %d/%d, want 3/0", caps, skipped)
	}

	// Run arms the ring for its lifetime and stops cleanly on cancel.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx, 5*time.Millisecond, 2*time.Millisecond) }()
	deadline := time.Now().Add(2 * time.Second)
	for !r.Armed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !r.Armed() {
		t.Fatal("Run never armed the ring")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
	if r.Armed() {
		t.Fatal("ring still armed after Run returned")
	}
}

// TestProfRingDisarmedZeroAllocsOnSolverHotPath is the overhead acceptance
// criterion: with the profiling ring constructed but disarmed (the
// -prof-interval=0 default), the sweep hot path — a reused contention solver
// at steady state — must allocate nothing. The ring is fully decoupled from
// the engine; this guard keeps it that way.
func TestProfRingDisarmedZeroAllocsOnSolverHotPath(t *testing.T) {
	machstats.Disable()
	obs.Disable()
	ring := perfdiff.NewProfRing(0)
	pl := place(t, "4B", "tonto", "gcc", "mcf", "hmmer", "soplex", "bzip2")
	s := contention.NewSolver()
	m := contention.DefaultModel()
	if _, err := s.SolveModel(pl, m); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if ring.Armed() { // the daemon's one-atomic-load disabled check
			t.Fatal("ring unexpectedly armed")
		}
		if _, err := s.SolveModel(pl, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("solver hot path with disarmed ring allocates %.1f/run, want 0", allocs)
	}
}

// TestCaptureHeapProfile sanity-checks the heap capture used by ?pprof=1.
func TestCaptureHeapProfile(t *testing.T) {
	p, err := perfdiff.CaptureHeapProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "heap" || len(p.Data) == 0 {
		t.Errorf("heap profile %q with %d bytes", p.Kind, len(p.Data))
	}
}

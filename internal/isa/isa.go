// Package isa defines the micro-operation vocabulary shared by the trace
// generator and the core timing models.
//
// The simulator is trace driven: workloads are streams of micro-ops (µops)
// rather than real machine code. A µop carries only the information the
// timing models need — its class (which functional unit it occupies and for
// how long), its register dependencies, and, for memory and control µops,
// the effective address or branch outcome.
package isa

import "fmt"

// Class enumerates the µop classes distinguished by the timing models.
type Class uint8

const (
	// IntAlu is a simple single-cycle integer operation.
	IntAlu Class = iota
	// IntMul is an integer multiply (pipelined, multi-cycle).
	IntMul
	// IntDiv is an integer divide (unpipelined, long latency).
	IntDiv
	// FpAdd is a floating-point add/sub/compare.
	FpAdd
	// FpMul is a floating-point multiply.
	FpMul
	// FpDiv is a floating-point divide (unpipelined).
	FpDiv
	// Load reads memory.
	Load
	// Store writes memory.
	Store
	// Branch is a conditional branch.
	Branch
	// Jump is an unconditional control transfer (never mispredicted).
	Jump
	// NumClasses is the number of µop classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"int_alu", "int_mul", "int_div",
	"fp_add", "fp_mul", "fp_div",
	"load", "store", "branch", "jump",
}

// String returns the lower-case mnemonic for the class.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsControl reports whether the class redirects the fetch stream.
func (c Class) IsControl() bool { return c == Branch || c == Jump }

// IsFloat reports whether the class executes on the floating-point unit.
func (c Class) IsFloat() bool { return c == FpAdd || c == FpMul || c == FpDiv }

// Latency returns the execution latency of the class in cycles on a
// full-performance pipeline. Functional-unit occupancy for unpipelined units
// is modelled separately by the core models.
func (c Class) Latency() int {
	switch c {
	case IntAlu, Jump, Branch, Store:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case FpAdd:
		return 3
	case FpMul:
		return 4
	case FpDiv:
		return 24
	case Load:
		return 2 // L1 hit latency; misses are added by the cache model
	default:
		return 1
	}
}

// Pipelined reports whether the functional unit for this class accepts a new
// µop every cycle. Divides occupy their unit for the full latency.
func (c Class) Pipelined() bool { return c != IntDiv && c != FpDiv }

// MaxSrcRegs is the maximum number of source registers a µop can name.
const MaxSrcRegs = 2

// Uop is one micro-operation in a trace.
//
// Register identifiers are virtual: the trace generator emits them already
// renamed, so a source register value is the sequence number distance to the
// producing µop (dependency distance), which is what the timing models
// consume. Dest is implicit: every µop except Store/Branch/Jump produces a
// value consumed via SrcDist.
type Uop struct {
	// Class is the µop class.
	Class Class
	// SrcDist holds dependency distances: SrcDist[i] = d > 0 means source i
	// is produced by the µop d positions earlier in the same thread's trace.
	// Zero means no dependency (or a dependency old enough to be irrelevant).
	SrcDist [MaxSrcRegs]int32
	// Addr is the effective address for Load/Store, or the target block
	// address for instruction fetch modelling of Branch/Jump.
	Addr uint64
	// Taken records the branch direction for Branch µops.
	Taken bool
	// Mispredict marks Branch µops that the workload model has pre-resolved
	// as mispredicted under a reference predictor. Core models may either use
	// this bit or run a live predictor; both paths are supported.
	Mispredict bool
	// PC is the instruction's program counter, used for branch predictor
	// indexing and I-cache modelling.
	PC uint64
}

// MemBlockSize is the cache block size in bytes used across the hierarchy.
const MemBlockSize = 64

package isa

import (
	"strings"
	"testing"
)

func TestClassString(t *testing.T) {
	want := map[Class]string{
		IntAlu: "int_alu",
		IntMul: "int_mul",
		IntDiv: "int_div",
		FpAdd:  "fp_add",
		FpMul:  "fp_mul",
		FpDiv:  "fp_div",
		Load:   "load",
		Store:  "store",
		Branch: "branch",
		Jump:   "jump",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, s)
		}
	}
	if got := Class(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range class string %q should mention the value", got)
	}
}

func TestClassPredicates(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.IsMem() != (c == Load || c == Store) {
			t.Errorf("%v: IsMem wrong", c)
		}
		if c.IsControl() != (c == Branch || c == Jump) {
			t.Errorf("%v: IsControl wrong", c)
		}
		if c.IsFloat() != (c == FpAdd || c == FpMul || c == FpDiv) {
			t.Errorf("%v: IsFloat wrong", c)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%v: latency %d < 1", c, c.Latency())
		}
	}
}

func TestDividesUnpipelined(t *testing.T) {
	if IntDiv.Pipelined() || FpDiv.Pipelined() {
		t.Error("divides must be unpipelined")
	}
	for _, c := range []Class{IntAlu, IntMul, FpAdd, FpMul, Load, Store, Branch, Jump} {
		if !c.Pipelined() {
			t.Errorf("%v should be pipelined", c)
		}
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(IntDiv.Latency() > IntMul.Latency() && IntMul.Latency() > IntAlu.Latency()) {
		t.Error("integer latency ordering violated")
	}
	if !(FpDiv.Latency() > FpMul.Latency() && FpMul.Latency() >= FpAdd.Latency()) {
		t.Error("FP latency ordering violated")
	}
}

func TestMemBlockSizePowerOfTwo(t *testing.T) {
	if MemBlockSize&(MemBlockSize-1) != 0 {
		t.Fatalf("block size %d not a power of two", MemBlockSize)
	}
}

package cpu

import (
	"testing"

	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/isa"
	"smtflex/internal/trace"
)

// flatMem is a MemorySystem with fixed latencies and no state, so core
// behaviour can be tested in isolation from the cache hierarchy.
type flatMem struct {
	dataLat  float64
	fetchLat float64
}

func (m flatMem) Data(int, uint64, cache.AccessKind, float64) float64 { return m.dataLat }
func (m flatMem) Fetch(int, uint64, float64) float64                  { return m.fetchLat }

// uopScript replays a fixed µop slice (repeating at the end).
type uopScript struct {
	uops []isa.Uop
	pos  uint64
}

func (s *uopScript) Next() isa.Uop {
	u := s.uops[s.pos%uint64(len(s.uops))]
	s.pos++
	return u
}
func (s *uopScript) Reset()        { s.pos = 0 }
func (s *uopScript) Count() uint64 { return s.pos }

func alu() isa.Uop { return isa.Uop{Class: isa.IntAlu} }

func script(uops ...isa.Uop) *uopScript { return &uopScript{uops: uops} }

func run(c *Core, ti, n int) ThreadStats {
	for i := 0; i < n; i++ {
		c.StepThread(ti)
	}
	return c.ThreadStats(ti)
}

func newBig(t *testing.T, mem MemorySystem, smt bool, ideal Ideal) *Core {
	t.Helper()
	return mustCore(t, config.BigCore(), mem, smt, ideal)
}

func mustCore(t *testing.T, cfg config.Core, mem MemorySystem, smt bool, ideal Ideal) *Core {
	t.Helper()
	c, err := NewCore(cfg, 0, mem, smt, ideal)
	if err != nil {
		t.Fatalf("NewCore: %v", err)
	}
	return c
}

func mustGen(t *testing.T, spec trace.Spec, seed uint64) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestDispatchWidthBoundsIPC(t *testing.T) {
	// A balanced independent mix (2 ALU on 3 units, 1 FP add on the
	// pipelined FP unit, 1 load on 2 ports) can sustain the full dispatch
	// width of 4: CPI ≈ 1/4.
	mixed := script(alu(), alu(), isa.Uop{Class: isa.FpAdd}, isa.Uop{Class: isa.Load})
	c := newBig(t, flatMem{dataLat: 2}, false, Ideal{Branch: true, ICache: true, DCache: true})
	if _, err := c.AttachThread(mixed); err != nil {
		t.Fatal(err)
	}
	st := run(c, 0, 20000)
	cpi := st.CPI()
	want := 1.0 / 4
	if cpi < want*0.95 || cpi > want*1.25 {
		t.Fatalf("balanced mix CPI %.4f, want ~%.3f", cpi, want)
	}
}

func TestALUBoundThroughput(t *testing.T) {
	// An all-ALU stream is bound by the 3 integer ALUs, not the 4-wide
	// dispatch: CPI ≈ 1/3.
	c := newBig(t, flatMem{}, false, Ideal{Branch: true, ICache: true, DCache: true})
	c.AttachThread(script(alu()))
	cpi := run(c, 0, 20000).CPI()
	if cpi < 0.32 || cpi > 0.37 {
		t.Fatalf("ALU-bound CPI %.4f, want ~1/3", cpi)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// Every µop depends on the previous one: CPI ≈ 1 regardless of width.
	u := alu()
	u.SrcDist[0] = 1
	c := newBig(t, flatMem{}, false, Ideal{Branch: true, ICache: true, DCache: true})
	c.AttachThread(script(u))
	st := run(c, 0, 20000)
	if cpi := st.CPI(); cpi < 0.95 || cpi > 1.1 {
		t.Fatalf("chain CPI %.3f, want ~1", cpi)
	}
}

func TestFunctionalUnitContention(t *testing.T) {
	// All µops are FP adds on a single FP unit: CPI ≈ 1 even though the
	// core is 4-wide.
	u := isa.Uop{Class: isa.FpAdd}
	c := newBig(t, flatMem{}, false, Ideal{Branch: true, ICache: true, DCache: true})
	c.AttachThread(script(u))
	st := run(c, 0, 20000)
	if cpi := st.CPI(); cpi < 0.95 || cpi > 1.15 {
		t.Fatalf("FP-only CPI %.3f, want ~1 (single FP unit)", cpi)
	}
}

func TestUnpipelinedDivide(t *testing.T) {
	// Divides occupy the unit for their full latency: CPI ≈ latency.
	u := isa.Uop{Class: isa.IntDiv}
	c := newBig(t, flatMem{}, false, Ideal{Branch: true, ICache: true, DCache: true})
	c.AttachThread(script(u))
	st := run(c, 0, 2000)
	want := float64(isa.IntDiv.Latency())
	if cpi := st.CPI(); cpi < want*0.9 || cpi > want*1.1 {
		t.Fatalf("divide CPI %.2f, want ~%.0f", cpi, want)
	}
}

func TestROBSizeGatesMemoryOverlap(t *testing.T) {
	// Long-latency independent loads: a big window overlaps many misses, a
	// tiny window cannot. CPI(small ROB) must exceed CPI(big ROB).
	load := isa.Uop{Class: isa.Load, Addr: 0}
	mem := flatMem{dataLat: 100}

	bigCfg := config.BigCore()
	c1 := mustCore(t, bigCfg, mem, false, Ideal{Branch: true, ICache: true})
	c1.AttachThread(script(load))
	big := run(c1, 0, 5000).CPI()

	smallCfg := config.BigCore()
	smallCfg.ROBSize = 8
	c2 := mustCore(t, smallCfg, mem, false, Ideal{Branch: true, ICache: true})
	c2.AttachThread(script(load))
	small := run(c2, 0, 5000).CPI()

	if small <= big*1.5 {
		t.Fatalf("ROB gating too weak: small-ROB CPI %.2f vs big-ROB %.2f", small, big)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// Unpredictable branches cost front-end refill; compare against the
	// ideal-branch run of the same stream.
	g := mustGen(t, brSpec(), 1)
	c1 := newBig(t, flatMem{}, false, Ideal{Branch: true, ICache: true, DCache: true})
	c1.AttachThread(g)
	ideal := run(c1, 0, 30000).CPI()

	g2 := mustGen(t, brSpec(), 1)
	c2 := newBig(t, flatMem{}, false, Ideal{ICache: true, DCache: true})
	c2.AttachThread(g2)
	st := run(c2, 0, 30000)
	real := st.CPI()

	if st.Mispredicts == 0 {
		t.Fatal("random branches never mispredicted")
	}
	if real <= ideal {
		t.Fatalf("mispredictions free: %.3f <= %.3f", real, ideal)
	}
}

func brSpec() trace.Spec {
	var m [isa.NumClasses]float64
	m[isa.Branch] = 0.2
	m[isa.IntAlu] = 0.8
	return trace.Spec{
		Name: "brtest", Mix: m, MeanDepDist: 6, BranchRandomFrac: 1.0,
		CodeFootprintBytes: 4096,
		Streams:            []trace.MemStream{{Weight: 1, WorkingSetBytes: 4096}},
	}
}

func TestSMTPartitioningSharesWidth(t *testing.T) {
	// Two independent-ALU threads on one core: combined throughput still
	// bounded by the width; each thread gets about half.
	mixed := func() *uopScript {
		return script(alu(), alu(), isa.Uop{Class: isa.FpAdd}, isa.Uop{Class: isa.Load})
	}
	c := newBig(t, flatMem{dataLat: 2}, true, Ideal{Branch: true, ICache: true, DCache: true})
	c.AttachThread(mixed())
	c.AttachThread(mixed())
	// Drive the contexts in strict alternation — the round-robin fetch
	// policy of the paper's SMT cores (the chip driver achieves the same
	// with least-advanced-first plus round-robin tie-breaking).
	for i := 0; i < 40000; i++ {
		c.StepThread(i % 2)
	}
	st0, st1 := c.ThreadStats(0), c.ThreadStats(1)
	total := st0.IPC() + st1.IPC()
	if total > 4.2 {
		t.Fatalf("combined IPC %.2f exceeds width", total)
	}
	if total < 3.2 {
		t.Fatalf("combined IPC %.2f too low for independent ALU streams", total)
	}
	ratio := st0.IPC() / st1.IPC()
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair SMT split: %.2f vs %.2f", st0.IPC(), st1.IPC())
	}
}

func TestSMTContextLimit(t *testing.T) {
	c := newBig(t, flatMem{}, true, Ideal{})
	for i := 0; i < 6; i++ {
		if _, err := c.AttachThread(script(alu())); err != nil {
			t.Fatalf("context %d rejected: %v", i, err)
		}
	}
	if _, err := c.AttachThread(script(alu())); err == nil {
		t.Fatal("7th context accepted on a 6-context core")
	}
}

func TestNoSMTSingleContext(t *testing.T) {
	c := newBig(t, flatMem{}, false, Ideal{})
	if _, err := c.AttachThread(script(alu())); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AttachThread(script(alu())); err == nil {
		t.Fatal("second context accepted with SMT disabled")
	}
}

func TestInOrderStallsOnUse(t *testing.T) {
	// In-order core: a load followed by a dependent ALU op stalls issue; the
	// same stream on the OoO core hides some latency.
	load := isa.Uop{Class: isa.Load}
	dep := alu()
	dep.SrcDist[0] = 1
	indep := alu()
	mem := flatMem{dataLat: 30}

	co := mustCore(t, config.SmallCore(), mem, false, Ideal{Branch: true, ICache: true})
	co.AttachThread(script(load, dep, indep, indep))
	inorder := run(co, 0, 8000).CPI()

	cb := mustCore(t, config.BigCore(), mem, false, Ideal{Branch: true, ICache: true})
	cb.AttachThread(script(load, dep, indep, indep))
	ooo := run(cb, 0, 8000).CPI()

	if inorder <= ooo {
		t.Fatalf("in-order (%.2f) should be slower than OoO (%.2f) on load-use stalls", inorder, ooo)
	}
}

func TestStoresAreCheap(t *testing.T) {
	// Stores retire through the write buffer: a store stream is not bound
	// by memory latency.
	st := isa.Uop{Class: isa.Store}
	c := newBig(t, flatMem{dataLat: 200}, false, Ideal{Branch: true, ICache: true})
	c.AttachThread(script(st, alu()))
	got := run(c, 0, 10000).CPI()
	if got > 1.0 {
		t.Fatalf("store stream CPI %.2f, should not see memory latency", got)
	}
}

func TestIdealFlagsMonotone(t *testing.T) {
	// Adding realism (turning ideal flags off) never reduces CPI.
	spec := brSpec()
	spec.Streams = []trace.MemStream{{Weight: 1, WorkingSetBytes: 1 << 20}}
	spec.Mix[isa.Load] = 0.3
	spec.Mix[isa.IntAlu] = 0.5
	mem := flatMem{dataLat: 50, fetchLat: 20}
	cpis := make([]float64, 0, 3)
	for _, ideal := range []Ideal{
		{Branch: true, ICache: true, DCache: true},
		{ICache: true, DCache: true},
		{},
	} {
		g := mustGen(t, spec, 5)
		c := newBig(t, mem, false, ideal)
		c.AttachThread(g)
		cpis = append(cpis, run(c, 0, 20000).CPI())
	}
	for i := 1; i < len(cpis); i++ {
		if cpis[i] < cpis[i-1]*0.99 {
			t.Fatalf("more realism lowered CPI: %v", cpis)
		}
	}
}

func TestDeactivateRepartitions(t *testing.T) {
	c := newBig(t, flatMem{}, true, Ideal{})
	c.AttachThread(script(alu()))
	c.AttachThread(script(alu()))
	if got := c.robPartition(); got != 64 {
		t.Fatalf("partition %d with 2 threads, want 64", got)
	}
	c.Deactivate(1)
	if !c.ThreadDone(1) {
		t.Fatal("thread not marked done")
	}
	if got := c.robPartition(); got != 128 {
		t.Fatalf("partition %d after deactivation, want 128", got)
	}
}

func TestThreadStatsAccessors(t *testing.T) {
	var s ThreadStats
	if s.CPI() != 0 || s.IPC() != 0 {
		t.Fatal("zero stats should report zero")
	}
	s = ThreadStats{Uops: 100, StartTime: 0, FinishTime: 200}
	if s.CPI() != 2 || s.IPC() != 0.5 {
		t.Fatalf("CPI=%g IPC=%g", s.CPI(), s.IPC())
	}
}

// TestThreadStatsZeroUops pins the division-by-zero guards: a thread that
// retired nothing must report zero — not NaN — for every derived CPI, even
// when stall cycles were attributed before the first retirement, and its
// Stack() must be all-zero so exported records stay finite.
func TestThreadStatsZeroUops(t *testing.T) {
	s := ThreadStats{
		FinishTime:        100,
		MemStallCycles:    5,
		BranchStallCycles: 3,
		FetchStallCycles:  2,
	}
	for name, got := range map[string]float64{
		"CPI":            s.CPI(),
		"IPC":            s.IPC(),
		"MemStallCPI":    s.MemStallCPI(),
		"BranchStallCPI": s.BranchStallCPI(),
		"FetchStallCPI":  s.FetchStallCPI(),
	} {
		if got != 0 {
			t.Errorf("%s = %g with zero uops, want 0", name, got)
		}
	}
	for _, c := range s.Stack() {
		if c.CPI != 0 {
			t.Errorf("Stack component %s = %g with zero uops, want 0", c.Name, c.CPI)
		}
	}
}

func TestNewCoreRejectsBadInput(t *testing.T) {
	if _, err := NewCore(config.BigCore(), 0, nil, false, Ideal{}); err == nil {
		t.Fatal("nil memory accepted")
	}
	bad := config.BigCore()
	bad.Width = 0
	if _, err := NewCore(bad, 0, flatMem{}, false, Ideal{}); err == nil {
		t.Fatal("zero-width core accepted")
	}
}

func TestStallAttribution(t *testing.T) {
	// Memory stalls: loads beyond the L1 latency are attributed.
	load := isa.Uop{Class: isa.Load}
	c := newBig(t, flatMem{dataLat: 50}, false, Ideal{Branch: true, ICache: true})
	c.AttachThread(script(load, alu()))
	st := run(c, 0, 4000)
	if st.MemStallCycles <= 0 {
		t.Fatal("no memory stall attributed for 50-cycle loads")
	}
	wantPerLoad := 50.0 - float64(config.BigCore().L1D.LatencyCycles)
	perLoad := st.MemStallCycles / float64(st.Loads)
	if perLoad < wantPerLoad*0.99 || perLoad > wantPerLoad*1.01 {
		t.Fatalf("memory stall per load %.1f, want %.1f", perLoad, wantPerLoad)
	}

	// Branch stalls: mispredicted branches are attributed.
	g := mustGen(t, brSpec(), 2)
	c2 := newBig(t, flatMem{}, false, Ideal{ICache: true, DCache: true})
	c2.AttachThread(g)
	st2 := run(c2, 0, 20000)
	if st2.BranchStallCycles <= 0 {
		t.Fatal("no branch stall attributed for random branches")
	}
	if st2.MemStallCycles != 0 {
		t.Fatal("memory stall attributed with ideal D-cache")
	}

	// Fetch stalls: cold I-cache attributed.
	g3 := mustGen(t, brSpec(), 3)
	c3 := newBig(t, flatMem{fetchLat: 10}, false, Ideal{Branch: true, DCache: true})
	c3.AttachThread(g3)
	st3 := run(c3, 0, 20000)
	if st3.FetchStallCycles <= 0 {
		t.Fatal("no fetch stall attributed")
	}

	// Stall CPI accessors.
	if st.MemStallCPI() <= 0 || st2.BranchStallCPI() <= 0 || st3.FetchStallCPI() <= 0 {
		t.Fatal("stall CPI accessors returned zero")
	}
	var zero ThreadStats
	if zero.MemStallCPI() != 0 || zero.BranchStallCPI() != 0 || zero.FetchStallCPI() != 0 {
		t.Fatal("zero stats should report zero stall CPI")
	}
}

func TestBTBMissPenalty(t *testing.T) {
	// A taken branch alternating between two targets defeats the BTB and
	// pays a fetch bubble even with perfect direction prediction; the same
	// stream with a stable target does not.
	stable := []isa.Uop{
		{Class: isa.Branch, Taken: true, PC: 0x100},
		{Class: isa.IntAlu, PC: 0x200},
		{Class: isa.IntAlu, PC: 0x204},
		{Class: isa.IntAlu, PC: 0x208},
	}
	alternating := []isa.Uop{
		{Class: isa.Branch, Taken: true, PC: 0x100},
		{Class: isa.IntAlu, PC: 0x200},
		{Class: isa.Branch, Taken: true, PC: 0x100},
		{Class: isa.IntAlu, PC: 0x300}, // different target for the same PC
	}
	run := func(uops []isa.Uop) float64 {
		// Bimodal learns "taken" quickly; the direction is never mispredicted
		// after warmup, isolating the BTB effect.
		c := newBig(t, flatMem{}, false, Ideal{ICache: true, DCache: true})
		c.AttachThread(script(uops...))
		st := ThreadStats{}
		for i := 0; i < 20000; i++ {
			c.StepThread(0)
		}
		st = c.ThreadStats(0)
		return st.CPI()
	}
	if a, s := run(alternating), run(stable); a <= s {
		t.Fatalf("alternating targets (%.3f) not slower than stable (%.3f)", a, s)
	}
}

// Package cpu implements the cycle-level core timing models: the out-of-order
// cores (big, medium) and the in-order core (small) of Table 1, with SMT via
// static ROB partitioning and round-robin fetch, and fine-grained
// multithreading for the in-order core.
//
// The models are event-driven timestamp simulators: every µop receives
// dispatch, issue, completion and commit timestamps derived from its
// dependencies and from structural resources (dispatch bandwidth, functional
// units, load/store ports, the ROB partition, the memory hierarchy). This is
// the same level of abstraction as the Sniper simulator used in the paper —
// cycle-approximate, not RTL — and is deterministic for a given trace.
package cpu

import (
	"fmt"

	"smtflex/internal/branch"
	"smtflex/internal/cache"
	"smtflex/internal/config"
	"smtflex/internal/isa"
	"smtflex/internal/machstats"
	"smtflex/internal/trace"
)

// MemorySystem is the chip-level memory hierarchy a core issues accesses to.
// Implementations combine per-core private caches with the shared LLC and
// DRAM. Latencies are returned in core cycles.
type MemorySystem interface {
	// Data performs a data access for coreID at time now and returns the
	// total load-to-use latency in cycles.
	Data(coreID int, addr uint64, kind cache.AccessKind, now float64) float64
	// Fetch performs an instruction fetch for coreID at time now and returns
	// the fetch latency in cycles beyond a first-level hit.
	Fetch(coreID int, addr uint64, now float64) float64
}

// MispredictPenalty is the front-end refill penalty after a branch
// misprediction, in cycles, on top of waiting for the branch to resolve.
const MispredictPenalty = 5

// BTBMissPenalty is the fetch bubble when a taken control transfer's target
// is absent from the branch target buffer (the front end cannot redirect
// until the target is computed), in cycles.
const BTBMissPenalty = 2

// depWindow is how far back register dependencies are tracked; the trace
// generator never emits longer distances.
const depWindow = 512

// Ideal flags selectively perfect parts of the machine; the profiler uses
// them to measure CPI components by successive idealization.
type Ideal struct {
	// Branch makes every branch correctly predicted.
	Branch bool
	// ICache makes every instruction fetch hit.
	ICache bool
	// DCache makes every data access an L1 hit.
	DCache bool
}

// ThreadStats accumulates per-hardware-thread activity.
type ThreadStats struct {
	Uops        uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	// FinishTime is the commit time of the last retired µop, in cycles.
	FinishTime float64
	// StartTime is the dispatch time of the first µop.
	StartTime float64
	// Stall attribution, in cycles (approximate — the timestamp model
	// attributes each µop's issue delay beyond its dispatch to the memory
	// hierarchy, and front-end redirects to branches and instruction fetch).
	MemStallCycles    float64
	BranchStallCycles float64
	FetchStallCycles  float64
}

// CPI returns cycles per µop over the thread's active interval.
func (s ThreadStats) CPI() float64 {
	if s.Uops == 0 {
		return 0
	}
	return (s.FinishTime - s.StartTime) / float64(s.Uops)
}

// MemStallCPI returns the attributed memory-stall cycles per µop.
func (s ThreadStats) MemStallCPI() float64 {
	if s.Uops == 0 {
		return 0
	}
	return s.MemStallCycles / float64(s.Uops)
}

// BranchStallCPI returns the attributed branch-redirect cycles per µop.
func (s ThreadStats) BranchStallCPI() float64 {
	if s.Uops == 0 {
		return 0
	}
	return s.BranchStallCycles / float64(s.Uops)
}

// FetchStallCPI returns the attributed instruction-fetch cycles per µop.
func (s ThreadStats) FetchStallCPI() float64 {
	if s.Uops == 0 {
		return 0
	}
	return s.FetchStallCycles / float64(s.Uops)
}

// Stack returns the thread's measured CPI decomposition in machstats'
// canonical component vocabulary. The cycle engine's memory-stall attribution
// is level-blind, so the stack has four components (base, branch, icache,
// mem) with base as the residual — by construction the components sum to
// CPI() up to floating-point rounding, the conservation property the
// counter-conservation test checks. A thread that retired nothing returns an
// all-zero stack (every accessor guards the division).
func (s ThreadStats) Stack() []machstats.Component {
	br := s.BranchStallCPI()
	ic := s.FetchStallCPI()
	mem := s.MemStallCPI()
	return []machstats.Component{
		{Name: machstats.CompBase, CPI: s.CPI() - br - ic - mem},
		{Name: machstats.CompBranch, CPI: br},
		{Name: machstats.CompICache, CPI: ic},
		{Name: machstats.CompMem, CPI: mem},
	}
}

// IPC returns µops per cycle.
func (s ThreadStats) IPC() float64 {
	c := s.CPI()
	if c == 0 {
		return 0
	}
	return 1 / c
}

// threadCtx is one hardware thread context.
type threadCtx struct {
	reader trace.Reader
	active bool
	// seq is the number of µops dispatched.
	seq uint64
	// doneAt[i%depWindow] is the completion time of µop i.
	doneAt [depWindow]float64
	// commitAt[i%robCap] is the commit time of µop i; sized to the maximum
	// partition so repartitioning never reallocates.
	commitAt []float64
	// frontAvail is the earliest cycle the front end can deliver the next µop.
	frontAvail float64
	// lastCommit is the commit time of the previous µop (in-order commit).
	lastCommit float64
	// lastIssue is the previous issue time (in-order issue for small cores).
	lastIssue float64
	// fetchBlock is the current I-cache block.
	fetchBlock uint64
	pred       branch.Predictor
	btb        *branch.BTB
	// pendingCtl is the PC of the previous µop when it was a taken control
	// transfer; the next µop's PC is its target, checked against the BTB.
	pendingCtl    uint64
	hasPendingCtl bool
	stats         ThreadStats
}

// Core is one core with up to SMTContexts hardware threads.
type Core struct {
	cfg    config.Core
	id     int
	mem    MemorySystem
	ideal  Ideal
	smtOn  bool
	thread []*threadCtx

	// dispatchFree is the next cycle fraction at which a dispatch slot is
	// available; each µop consumes 1/width.
	dispatchFree float64
	// Functional-unit bandwidth watermarks, one per unit group. Contention
	// is modelled as bandwidth in processing-order time rather than as
	// future reservations: a µop whose operands are ready far in the future
	// must not block the unit for other (SMT) µops issuing earlier.
	aluClock, lsClock, mdClock, fpClock float64
	aluPerOp, lsPerOp, mdPerOp, fpPerOp float64
}

// NewCore builds a core. mem must not be nil; cfg must validate. Both
// failures return errors rather than panicking, so a malformed design point
// fails its own evaluation and nothing else.
func NewCore(cfg config.Core, id int, mem MemorySystem, smtOn bool, ideal Ideal) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("cpu: nil memory system for core %d", id)
	}
	c := &Core{
		cfg:      cfg,
		id:       id,
		mem:      mem,
		ideal:    ideal,
		smtOn:    smtOn,
		aluPerOp: 1 / float64(cfg.IntALUs),
		lsPerOp:  1 / float64(cfg.LoadStorePorts),
		mdPerOp:  1 / float64(cfg.MulDivUnits),
		fpPerOp:  1 / float64(cfg.FPUnits),
	}
	return c, nil
}

// Config returns the core configuration.
func (c *Core) Config() config.Core { return c.cfg }

// ID returns the core's chip-wide identifier.
func (c *Core) ID() int { return c.id }

// AttachThread binds a trace to the next free hardware context and returns
// the context index. It fails when all contexts are occupied (or one context
// without SMT).
func (c *Core) AttachThread(r trace.Reader) (int, error) {
	limit := c.cfg.SMTContexts
	if !c.smtOn {
		limit = 1
	}
	if len(c.thread) >= limit {
		return -1, fmt.Errorf("cpu: core %d has no free context (limit %d)", c.id, limit)
	}
	robCap := c.cfg.ROBSize
	if robCap == 0 {
		robCap = 2 * c.cfg.Width // in-order: small commit window
	}
	// A bimodal predictor reaches steady state within the simulated window;
	// with gshare the history randomization of synthetic traces would leave
	// the tables undertrained at SimPoint-scale run lengths.
	t := &threadCtx{
		reader:   r,
		active:   true,
		commitAt: make([]float64, robCap),
		pred:     branch.NewBimodal(13),
		btb:      branch.NewBTB(10),
	}
	c.thread = append(c.thread, t)
	return len(c.thread) - 1, nil
}

// NumThreads returns the number of attached threads.
func (c *Core) NumThreads() int { return len(c.thread) }

// activeThreads counts threads still running.
func (c *Core) activeThreads() int {
	n := 0
	for _, t := range c.thread {
		if t.active {
			n++
		}
	}
	return n
}

// robPartition is the per-thread ROB share under static partitioning.
func (c *Core) robPartition() int {
	n := c.activeThreads()
	if n == 0 {
		n = 1
	}
	p := c.cfg.ROBSize / n
	if p < c.cfg.Width {
		p = c.cfg.Width
	}
	return p
}

// ThreadTime returns the earliest time context ti can dispatch its next
// µop: the front-end clock, the shared dispatch bandwidth clock and the
// thread's ROB-partition gate. The chip scheduler advances the globally
// least-advanced thread first; including the ROB gate here is essential for
// SMT, otherwise a memory-stalled thread would be stepped anyway and its
// far-future dispatch reservation would drag the shared dispatch clock
// forward, starving its co-runners.
func (c *Core) ThreadTime(ti int) float64 {
	t := c.thread[ti]
	tm := t.frontAvail
	if c.dispatchFree > tm {
		tm = c.dispatchFree
	}
	if gate := c.robGate(t); gate > tm {
		tm = gate
	}
	return tm
}

// robGate returns the commit time of the µop whose ROB slot the thread's
// next µop needs, or 0 when the partition has room.
func (c *Core) robGate(t *threadCtx) float64 {
	robCap := len(t.commitAt)
	part := robCap
	if c.cfg.OutOfOrder {
		part = c.robPartition()
		if part > robCap {
			part = robCap
		}
	}
	if t.seq < uint64(part) {
		return 0
	}
	return t.commitAt[(t.seq-uint64(part))%uint64(robCap)]
}

// ThreadStats returns statistics for context ti.
func (c *Core) ThreadStats(ti int) ThreadStats { return c.thread[ti].stats }

// ThreadDone reports whether the context was deactivated.
func (c *Core) ThreadDone(ti int) bool { return !c.thread[ti].active }

// Deactivate marks a context finished; its ROB share is redistributed.
func (c *Core) Deactivate(ti int) { c.thread[ti].active = false }

// bucketIssue charges one µop against a unit group's bandwidth watermark
// and returns its issue time. The watermark never falls behind now (unused
// slots expire) and advances by occPerOp per µop; a µop whose operands are
// ready beyond the watermark issues at operand-ready time without blocking
// the group — bandwidth is consumed in processing order, future slots are
// never reserved (essential for SMT fairness).
func bucketIssue(clock *float64, now, ready, occPerOp float64) float64 {
	if *clock < now {
		*clock = now
	}
	issue := ready
	if *clock > issue {
		issue = *clock
	}
	*clock += occPerOp
	return issue
}

// fuIssue dispatches the µop to its functional-unit group.
func (c *Core) fuIssue(class isa.Class, now, ready float64) float64 {
	switch class {
	case isa.IntMul, isa.IntDiv:
		occ := c.mdPerOp
		if !class.Pipelined() {
			occ *= float64(class.Latency())
		}
		return bucketIssue(&c.mdClock, now, ready, occ)
	case isa.FpAdd, isa.FpMul, isa.FpDiv:
		occ := c.fpPerOp
		if !class.Pipelined() {
			occ *= float64(class.Latency())
		}
		return bucketIssue(&c.fpClock, now, ready, occ)
	case isa.Load, isa.Store:
		return bucketIssue(&c.lsClock, now, ready, c.lsPerOp)
	default:
		return bucketIssue(&c.aluClock, now, ready, c.aluPerOp)
	}
}

// StepThread dispatches and times one µop for context ti. It returns the
// µop's commit time.
func (c *Core) StepThread(ti int) float64 {
	t := c.thread[ti]
	u := t.reader.Next()

	if t.stats.Uops == 0 {
		t.stats.StartTime = t.frontAvail
	}

	// --- Front end: BTB + I-cache + dispatch bandwidth ---
	if t.hasPendingCtl {
		t.hasPendingCtl = false
		if !c.ideal.Branch && !t.btb.Lookup(t.pendingCtl, u.PC) {
			t.frontAvail += BTBMissPenalty
			t.stats.FetchStallCycles += BTBMissPenalty
		}
	}
	blk := cache.BlockAddr(u.PC)
	if blk != t.fetchBlock {
		t.fetchBlock = blk
		if !c.ideal.ICache {
			extra := c.mem.Fetch(c.id, u.PC, t.frontAvail)
			t.frontAvail += extra
			t.stats.FetchStallCycles += extra
		}
	}
	dispatch := t.frontAvail
	if c.dispatchFree > dispatch {
		dispatch = c.dispatchFree
	}

	// --- ROB partition gate (OoO) / issue-order gate (in-order) ---
	if gate := c.robGate(t); gate > dispatch {
		dispatch = gate
	}
	robCap := len(t.commitAt)
	c.dispatchFree = dispatch + 1/float64(c.cfg.Width)

	// --- Register dependencies ---
	ready := dispatch
	for _, d := range u.SrcDist {
		if d <= 0 || uint64(d) > t.seq || d >= depWindow {
			continue
		}
		src := t.doneAt[(t.seq-uint64(d))%depWindow]
		if src > ready {
			ready = src
		}
	}

	// --- In-order issue constraint ---
	if !c.cfg.OutOfOrder && t.lastIssue > ready {
		ready = t.lastIssue
	}

	// --- Functional unit ---
	issue := c.fuIssue(u.Class, dispatch, ready)
	if !c.cfg.OutOfOrder {
		t.lastIssue = issue
	}

	// --- Execution latency ---
	lat := float64(u.Class.Latency())
	switch u.Class {
	case isa.Load:
		t.stats.Loads++
		if c.ideal.DCache {
			lat = float64(c.cfg.L1D.LatencyCycles)
		} else {
			lat = c.mem.Data(c.id, u.Addr, cache.Read, issue)
			if extra := lat - float64(c.cfg.L1D.LatencyCycles); extra > 0 {
				t.stats.MemStallCycles += extra
			}
		}
	case isa.Store:
		t.stats.Stores++
		// Stores retire through a write buffer: the µop completes quickly,
		// but the access still updates cache state and consumes bandwidth.
		if !c.ideal.DCache {
			c.mem.Data(c.id, u.Addr, cache.Write, issue)
		}
		lat = 1
	}
	done := issue + lat
	t.doneAt[t.seq%depWindow] = done

	if u.Class.IsControl() && (u.Class == isa.Jump || u.Taken) {
		t.pendingCtl = u.PC
		t.hasPendingCtl = true
	}

	// --- Branch resolution ---
	if u.Class == isa.Branch {
		t.stats.Branches++
		misp := false
		if !c.ideal.Branch {
			pred := t.pred.Predict(u.PC)
			t.pred.Update(u.PC, u.Taken)
			misp = pred != u.Taken
		}
		if misp {
			t.stats.Mispredicts++
			redirect := done + MispredictPenalty
			if redirect > t.frontAvail {
				t.stats.BranchStallCycles += redirect - t.frontAvail
				t.frontAvail = redirect
			}
		}
	}

	// --- In-order commit ---
	commit := done
	if t.lastCommit > commit {
		commit = t.lastCommit
	}
	commit += 1 / float64(c.cfg.Width)
	t.lastCommit = commit
	t.commitAt[t.seq%uint64(robCap)] = commit
	t.seq++

	t.stats.Uops++
	t.stats.FinishTime = commit
	return commit
}

// Package benchjson parses the text output of `go test -bench` into a
// stable JSON document — the perf-trajectory format the CI bench job
// archives as BENCH_<date>.json so benchmark history survives as artifacts
// rather than scrollback.
//
// The parser is deliberately tolerant: it keeps the benchmark lines and the
// goos/goarch/pkg headers, and ignores everything else (test chatter, PASS
// lines, timings), so it can consume the raw combined stream of a full
// `go test -bench . ./...` run.
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is one benchmark line, e.g.
//
//	BenchmarkFigure8-8    1    123456789 ns/op    4567 B/op    89 allocs/op
type Result struct {
	// Name is the benchmark name with the -<procs> suffix stripped.
	Name string `json:"name"`
	// Package is the pkg: header in effect when the line was read ("" when
	// the stream carries none).
	Package string `json:"package,omitempty"`
	// Procs is GOMAXPROCS for the run (the -<n> name suffix), 1 if absent.
	Procs int `json:"procs"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline metric. Zero when the line carried none.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other "<value> <unit>" pair on the line keyed by
	// unit (B/op, allocs/op, MB/s, custom b.ReportMetric units...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the parsed document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the structured report.
// It fails only on malformed Benchmark lines (a name with no fields, or a
// non-numeric iteration count) — unrecognized lines are skipped.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Package = pkg
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName-P  N  v unit  v unit..." line. Lines
// that merely start with "Benchmark" but carry no fields (a test log line,
// a benchmark name echoed by -v) are skipped, not errors.
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false, nil
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
	}
	res := Result{Name: name, Procs: procs, Iterations: iters}
	// The rest of the line is "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	return res, true, nil
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8); a name with
// no suffix reports procs 1.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p <= 0 {
		return s, 1
	}
	return s[:i], p
}

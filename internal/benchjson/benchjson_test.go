package benchjson

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: smtflex
BenchmarkTable1-8   	       1	 123456789 ns/op	 4567 B/op	      89 allocs/op
BenchmarkTraceGeneration-8	12345678	        95.2 ns/op
BenchmarkCycleEngine-8 	 2000000	       512 ns/op	  42.5 MB/s
PASS
ok  	smtflex	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("goos/goarch = %q/%q", rep.Goos, rep.Goarch)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkTable1" || r.Procs != 8 || r.Package != "smtflex" {
		t.Errorf("result 0 identity: %+v", r)
	}
	if r.Iterations != 1 || r.NsPerOp != 123456789 {
		t.Errorf("result 0 metrics: %+v", r)
	}
	if r.Metrics["B/op"] != 4567 || r.Metrics["allocs/op"] != 89 {
		t.Errorf("result 0 extra metrics: %+v", r.Metrics)
	}
	if got := rep.Results[1].NsPerOp; got != 95.2 {
		t.Errorf("fractional ns/op = %g", got)
	}
	if got := rep.Results[2].Metrics["MB/s"]; got != 42.5 {
		t.Errorf("MB/s = %g", got)
	}
}

// TestParseTolerant checks that non-benchmark chatter (including lines that
// merely start with "Benchmark") is skipped, not fatal.
func TestParseTolerant(t *testing.T) {
	in := "=== RUN TestFoo\nBenchmarkNameOnly\n--- PASS: TestFoo\nBenchmarkReal-4 10 100 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "BenchmarkReal" {
		t.Fatalf("results: %+v", rep.Results)
	}
}

// TestParseErrors checks that malformed benchmark lines fail loudly: a
// silent skip there would quietly truncate the perf trajectory.
func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"BenchmarkBad-8 notanumber 100 ns/op\n",
		"BenchmarkBad-8 10 xyz ns/op\n",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) accepted malformed line", in)
		}
	}
}

// TestNoProcsSuffix covers benchmark names without the -<procs> suffix
// (GOMAXPROCS=1 runs) and names whose trailing -segment is not a number.
func TestNoProcsSuffix(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkSolo 5 200 ns/op\nBenchmarkAB-test-2 5 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.Results[0]; r.Name != "BenchmarkSolo" || r.Procs != 1 {
		t.Errorf("no-suffix name: %+v", r)
	}
	if r := rep.Results[1]; r.Name != "BenchmarkAB-test" || r.Procs != 2 {
		t.Errorf("dashed name: %+v", r)
	}
}

// TestJSONShape pins the document's key names — downstream trajectory
// tooling greps these.
func TestJSONShape(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"goos"`, `"goarch"`, `"results"`, `"name"`, `"procs"`, `"iterations"`, `"ns_per_op"`} {
		if !strings.Contains(string(body), key) {
			t.Errorf("JSON missing key %s:\n%s", key, body)
		}
	}
}

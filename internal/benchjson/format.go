package benchjson

import (
	"fmt"
	"sort"
	"strings"
)

// FormatComparison renders the full per-benchmark delta table for a compare
// run: every matched benchmark with its baseline and current ns/op and
// allocs/op and the signed percentage delta, worst wall-time movement first,
// regressions flagged. Improvements show up with negative deltas — the
// trajectory both ways, not just the gated direction. Benchmarks missing
// from the current run and new in it are listed after the matched rows.
func FormatComparison(baseline, current *Report, regs []Regression) string {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[key(r)] = r
	}
	base := make(map[string]bool, len(baseline.Results))

	// regressed marks name+metric pairs the gate flagged.
	regressed := make(map[string]bool, len(regs))
	for _, r := range regs {
		regressed[r.Name+"\x00"+r.Metric] = true
	}

	type row struct {
		name                 string
		baseNs, curNs        float64
		baseAllocs           float64
		curAllocs            float64
		hasAllocs            bool
		nsDelta, allocsDelta float64 // relative; NaN-free (0 when baseline 0)
		flags                []string
	}
	var rows []row
	var missing, added []string
	for _, b := range baseline.Results {
		base[key(b)] = true
		now, ok := cur[key(b)]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		r := row{name: b.Name, baseNs: b.NsPerOp, curNs: now.NsPerOp}
		if b.NsPerOp > 0 {
			r.nsDelta = (now.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		ba, bok := b.Metrics["allocs/op"]
		na, nok := now.Metrics["allocs/op"]
		if bok && nok {
			r.hasAllocs = true
			r.baseAllocs, r.curAllocs = ba, na
			if ba > 0 {
				r.allocsDelta = (na - ba) / ba
			} else if na > 0 {
				r.allocsDelta = 1
			}
		}
		if regressed[b.Name+"\x00ns/op"] {
			r.flags = append(r.flags, "ns/op OVER")
		}
		if regressed[b.Name+"\x00allocs/op"] {
			r.flags = append(r.flags, "allocs/op OVER")
		}
		rows = append(rows, r)
	}
	for _, c := range current.Results {
		if !base[key(c)] {
			added = append(added, c.Name)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].nsDelta != rows[j].nsDelta {
			return rows[i].nsDelta > rows[j].nsDelta
		}
		return rows[i].name < rows[j].name
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %12s %12s %8s %10s %10s %8s  %s\n",
		"benchmark", "ns/op base", "ns/op cur", "delta", "allocs", "allocs cur", "delta", "flags")
	for _, r := range rows {
		allocsBase, allocsCur, allocsDelta := "-", "-", "-"
		if r.hasAllocs {
			allocsBase = fmt.Sprintf("%.6g", r.baseAllocs)
			allocsCur = fmt.Sprintf("%.6g", r.curAllocs)
			allocsDelta = signedPct(r.allocsDelta)
		}
		fmt.Fprintf(&sb, "%-44s %12.6g %12.6g %8s %10s %10s %8s  %s\n",
			r.name, r.baseNs, r.curNs, signedPct(r.nsDelta),
			allocsBase, allocsCur, allocsDelta, strings.Join(r.flags, ", "))
	}
	for _, name := range missing {
		fmt.Fprintf(&sb, "%-44s missing from current run\n", name)
	}
	for _, name := range added {
		fmt.Fprintf(&sb, "%-44s new in current run (not gated)\n", name)
	}
	return sb.String()
}

// signedPct renders a relative delta as an explicitly signed percentage.
func signedPct(rel float64) string {
	return fmt.Sprintf("%+.1f%%", 100*rel)
}

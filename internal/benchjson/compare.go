package benchjson

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrNoResults reports a benchmark document with zero results — an empty
// trajectory artifact, which the pipeline must treat as a failure, never as
// a green run (a panicking benchmark run produces exactly this).
var ErrNoResults = errors.New("benchjson: no benchmark results parsed")

// DecodeJSON reads a Report previously encoded by cmd/benchjson (or any
// JSON in the same shape). A document with zero results fails with
// ErrNoResults: every consumer of the trajectory format treats "empty" as a
// broken pipeline, not a clean slate.
func DecodeJSON(r io.Reader) (*Report, error) {
	rep := &Report{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(rep); err != nil {
		return nil, fmt.Errorf("benchjson: decoding report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, ErrNoResults
	}
	return rep, nil
}

// Limit bounds how much one benchmark may regress before the gate fails.
// Percentages are relative increases over the baseline: NsPerOpPct 300
// allows the current ns/op to reach 4x the baseline.
type Limit struct {
	// NsPerOpPct is the allowed ns/op increase in percent. Wall time on
	// shared CI runners is noisy, so this is gated loosely.
	NsPerOpPct float64
	// AllocsPerOpPct is the allowed allocs/op increase in percent.
	// Allocation counts are deterministic, so this is gated strictly.
	AllocsPerOpPct float64
	// AllocsPerOpSlack is an absolute allocs/op allowance added on top of
	// the percentage, so near-zero-allocation benchmarks (the solver hot
	// path reports 0 allocs/op) tolerate incidental runtime allocations
	// without opening a percentage hole on big benchmarks.
	AllocsPerOpSlack float64
}

// Thresholds configures a Compare run.
type Thresholds struct {
	// Default applies to every benchmark without a PerBench override.
	Default Limit
	// PerBench overrides the default limit for specific benchmarks, keyed
	// by benchmark name (the -<procs> suffix stripped, as in Result.Name).
	PerBench map[string]Limit
	// MinNsPerOp exempts benchmarks whose baseline ns/op is below this
	// floor from ns/op gating: their runtimes are dominated by timer noise.
	// Allocs are still gated. Zero gates everything.
	MinNsPerOp float64
}

// DefaultThresholds is the gate configuration tuned for CI: allocs/op
// strictly (deterministic), ns/op loosely (1-core shared runners are noisy
// and the committed baseline may come from different hardware), and no ns
// gating below 1µs.
func DefaultThresholds() Thresholds {
	return Thresholds{
		Default:    Limit{NsPerOpPct: 300, AllocsPerOpPct: 10, AllocsPerOpSlack: 64},
		MinNsPerOp: 1000,
	}
}

// Regression is one benchmark metric that exceeded its threshold, or a
// benchmark that vanished from the current run.
type Regression struct {
	// Name and Package identify the benchmark.
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	// Metric is "ns/op", "allocs/op", or "missing" (the benchmark ran at
	// baseline time but produced no result now — a panic or a renamed
	// benchmark; refresh the baseline if the rename is intentional).
	Metric string `json:"metric"`
	// Baseline and Current are the metric's values (zero for "missing").
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Allowed is the largest Current the threshold permits.
	Allowed float64 `json:"allowed"`
}

// String renders the regression as one report line.
func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: missing from current run (baseline had it)", r.Name)
	}
	if r.Baseline <= 0 {
		return fmt.Sprintf("%s: %s %.6g -> %.6g (allowed <= %.6g)",
			r.Name, r.Metric, r.Baseline, r.Current, r.Allowed)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (allowed <= %.6g, +%.1f%%)",
		r.Name, r.Metric, r.Baseline, r.Current, r.Allowed,
		100*(r.Current-r.Baseline)/r.Baseline)
}

// key identifies a benchmark across reports.
func key(r Result) string { return r.Package + "\x00" + r.Name + "\x00" + fmt.Sprint(r.Procs) }

// Compare gates current against baseline: it returns one Regression per
// benchmark metric that regressed beyond its threshold, sorted
// worst-relative-increase first. Benchmarks new in current are ignored (they
// have no baseline); benchmarks missing from current are regressions.
// An empty baseline or current report is an error wrapping ErrNoResults —
// an empty side means the pipeline is broken, not that nothing regressed.
func Compare(baseline, current *Report, th Thresholds) ([]Regression, error) {
	if baseline == nil || len(baseline.Results) == 0 {
		return nil, fmt.Errorf("baseline: %w", ErrNoResults)
	}
	if current == nil || len(current.Results) == 0 {
		return nil, fmt.Errorf("current: %w", ErrNoResults)
	}
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[key(r)] = r
	}
	var regs []Regression
	for _, base := range baseline.Results {
		now, ok := cur[key(base)]
		if !ok {
			regs = append(regs, Regression{Name: base.Name, Package: base.Package, Metric: "missing"})
			continue
		}
		lim := th.Default
		if o, ok := th.PerBench[base.Name]; ok {
			lim = o
		}
		// ns/op: loose gate, skipped under the noise floor.
		if base.NsPerOp > 0 && now.NsPerOp > 0 && base.NsPerOp >= th.MinNsPerOp {
			allowed := base.NsPerOp * (1 + lim.NsPerOpPct/100)
			if now.NsPerOp > allowed {
				regs = append(regs, Regression{
					Name: base.Name, Package: base.Package, Metric: "ns/op",
					Baseline: base.NsPerOp, Current: now.NsPerOp, Allowed: allowed,
				})
			}
		}
		// allocs/op: strict gate whenever the baseline measured it.
		if baseAllocs, ok := base.Metrics["allocs/op"]; ok {
			nowAllocs, ok := now.Metrics["allocs/op"]
			if !ok {
				// The current run did not measure allocations (-benchmem
				// missing): the gate cannot see regressions, so fail loud.
				regs = append(regs, Regression{
					Name: base.Name, Package: base.Package, Metric: "allocs/op",
					Baseline: baseAllocs, Current: -1, Allowed: baseAllocs,
				})
				continue
			}
			allowed := baseAllocs*(1+lim.AllocsPerOpPct/100) + lim.AllocsPerOpSlack
			if nowAllocs > allowed {
				regs = append(regs, Regression{
					Name: base.Name, Package: base.Package, Metric: "allocs/op",
					Baseline: baseAllocs, Current: nowAllocs, Allowed: allowed,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		return relIncrease(regs[i]) > relIncrease(regs[j])
	})
	return regs, nil
}

// relIncrease orders regressions by severity; "missing" sorts first.
func relIncrease(r Regression) float64 {
	if r.Metric == "missing" || r.Baseline <= 0 {
		return 1e18
	}
	return (r.Current - r.Baseline) / r.Baseline
}

package benchjson

import (
	"errors"
	"strings"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{Goos: "linux", Goarch: "amd64", Results: results}
}

func bench(name string, ns float64, allocs float64) Result {
	return Result{
		Name: name, Package: "smtflex", Procs: 8, Iterations: 1, NsPerOp: ns,
		Metrics: map[string]float64{"allocs/op": allocs, "B/op": allocs * 48},
	}
}

func TestCompareClean(t *testing.T) {
	base := report(bench("BenchmarkA", 1e6, 100), bench("BenchmarkB", 5e6, 0))
	cur := report(bench("BenchmarkA", 1.2e6, 100), bench("BenchmarkB", 4e6, 2))
	regs, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("clean run flagged: %+v", regs)
	}
}

func TestCompareNsRegression(t *testing.T) {
	th := Thresholds{Default: Limit{NsPerOpPct: 50, AllocsPerOpPct: 10}, MinNsPerOp: 1000}
	base := report(bench("BenchmarkA", 1e6, 100))
	cur := report(bench("BenchmarkA", 1.6e6, 100))
	regs, err := Compare(base, cur, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("want one ns/op regression, got %+v", regs)
	}
	if regs[0].Allowed != 1.5e6 || regs[0].Current != 1.6e6 {
		t.Errorf("regression values: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "ns/op") {
		t.Errorf("report line: %q", regs[0].String())
	}
}

func TestCompareAllocRegressionStrict(t *testing.T) {
	th := Thresholds{Default: Limit{NsPerOpPct: 300, AllocsPerOpPct: 0, AllocsPerOpSlack: 2}}
	base := report(bench("BenchmarkSolver", 1e6, 0))
	// +2 allocs on a zero-alloc benchmark: inside the absolute slack.
	regs, err := Compare(base, report(bench("BenchmarkSolver", 1e6, 2)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("slack not applied: %+v", regs)
	}
	// +3 allocs: over the slack, and the percentage gate (0% of 0) adds nothing.
	regs, err = Compare(base, report(bench("BenchmarkSolver", 1e6, 3)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %+v", regs)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	th := Thresholds{Default: Limit{NsPerOpPct: 10}, MinNsPerOp: 1000}
	// 500ns baseline is under the 1µs floor: a 10x wall-time jump is noise.
	base := report(bench("BenchmarkTiny", 500, 1))
	regs, err := Compare(base, report(bench("BenchmarkTiny", 5000, 1)), th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("noise-floor benchmark gated: %+v", regs)
	}
}

func TestComparePerBenchOverride(t *testing.T) {
	th := Thresholds{
		Default:  Limit{NsPerOpPct: 10, AllocsPerOpPct: 0},
		PerBench: map[string]Limit{"BenchmarkNoisy": {NsPerOpPct: 1000, AllocsPerOpPct: 100}},
	}
	base := report(bench("BenchmarkNoisy", 1e6, 100), bench("BenchmarkQuiet", 1e6, 100))
	cur := report(bench("BenchmarkNoisy", 5e6, 150), bench("BenchmarkQuiet", 5e6, 150))
	regs, err := Compare(base, cur, th)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Name == "BenchmarkNoisy" {
			t.Errorf("override ignored: %+v", r)
		}
	}
	var quiet int
	for _, r := range regs {
		if r.Name == "BenchmarkQuiet" {
			quiet++
		}
	}
	if quiet != 2 {
		t.Errorf("want 2 regressions on BenchmarkQuiet (ns + allocs), got %d: %+v", quiet, regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := report(bench("BenchmarkA", 1e6, 1), bench("BenchmarkGone", 1e6, 1))
	cur := report(bench("BenchmarkA", 1e6, 1), bench("BenchmarkNew", 1e6, 1))
	regs, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Name != "BenchmarkGone" {
		t.Fatalf("want BenchmarkGone missing, got %+v", regs)
	}
	if !strings.Contains(regs[0].String(), "missing") {
		t.Errorf("report line: %q", regs[0].String())
	}
}

func TestCompareMissingAllocsMetric(t *testing.T) {
	base := report(bench("BenchmarkA", 1e6, 10))
	cur := report(Result{Name: "BenchmarkA", Package: "smtflex", Procs: 8, NsPerOp: 1e6})
	regs, err := Compare(base, cur, DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "allocs/op" || regs[0].Current != -1 {
		t.Fatalf("want allocs/op-unmeasured failure, got %+v", regs)
	}
}

func TestCompareEmptyReports(t *testing.T) {
	good := report(bench("BenchmarkA", 1e6, 1))
	for _, tc := range []struct{ base, cur *Report }{
		{nil, good}, {good, nil}, {&Report{}, good}, {good, &Report{}},
	} {
		if _, err := Compare(tc.base, tc.cur, DefaultThresholds()); !errors.Is(err, ErrNoResults) {
			t.Errorf("Compare(%v, %v) err = %v, want ErrNoResults", tc.base, tc.cur, err)
		}
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	th := Thresholds{Default: Limit{NsPerOpPct: 0, AllocsPerOpPct: 0}}
	base := report(bench("BenchmarkSmall", 1e6, 10), bench("BenchmarkBig", 1e6, 10), bench("BenchmarkGone", 1e6, 10))
	cur := report(bench("BenchmarkSmall", 1.1e6, 10), bench("BenchmarkBig", 3e6, 10))
	regs, err := Compare(base, cur, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("got %d regressions: %+v", len(regs), regs)
	}
	if regs[0].Metric != "missing" || regs[1].Name != "BenchmarkBig" || regs[2].Name != "BenchmarkSmall" {
		t.Errorf("order: %+v", regs)
	}
}

func TestDecodeJSONRoundTrip(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"results":[]}`)); !errors.Is(err, ErrNoResults) {
		t.Errorf("empty document err = %v, want ErrNoResults", err)
	}
	if _, err := DecodeJSON(strings.NewReader(`{broken`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	rep, err := DecodeJSON(strings.NewReader(
		`{"goos":"linux","results":[{"name":"BenchmarkA","procs":8,"iterations":1,"ns_per_op":5,"metrics":{"allocs/op":3}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Metrics["allocs/op"] != 3 {
		t.Errorf("round trip: %+v", rep.Results[0])
	}
}

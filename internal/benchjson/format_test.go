package benchjson

import (
	"strings"
	"testing"
)

func TestFormatComparisonSignedDeltas(t *testing.T) {
	base := report(bench("BenchmarkFast", 1e6, 100), bench("BenchmarkSlow", 2e6, 0))
	cur := report(bench("BenchmarkFast", 1.5e6, 100), bench("BenchmarkSlow", 1e6, 0))
	out := FormatComparison(base, cur, nil)
	// Regressions and improvements both carry explicit signs.
	if !strings.Contains(out, "+50.0%") {
		t.Errorf("missing signed regression delta:\n%s", out)
	}
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("missing signed improvement delta:\n%s", out)
	}
	// Worst wall-time movement sorts first.
	fast := strings.Index(out, "BenchmarkFast")
	slow := strings.Index(out, "BenchmarkSlow")
	if fast < 0 || slow < 0 || fast > slow {
		t.Errorf("rows not severity-sorted (fast@%d slow@%d):\n%s", fast, slow, out)
	}
}

func TestFormatComparisonFlagsRegressions(t *testing.T) {
	th := Thresholds{Default: Limit{NsPerOpPct: 10, AllocsPerOpPct: 10}, MinNsPerOp: 1000}
	base := report(bench("BenchmarkA", 1e6, 100))
	cur := report(bench("BenchmarkA", 2e6, 150))
	regs, err := Compare(base, cur, th)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparison(base, cur, regs)
	if !strings.Contains(out, "ns/op OVER") || !strings.Contains(out, "allocs/op OVER") {
		t.Errorf("flags missing:\n%s", out)
	}
}

func TestFormatComparisonMissingAndNew(t *testing.T) {
	base := report(bench("BenchmarkGone", 1e6, 0), bench("BenchmarkKept", 1e6, 0))
	cur := report(bench("BenchmarkKept", 1e6, 0), bench("BenchmarkNew", 1e6, 0))
	out := FormatComparison(base, cur, nil)
	if !strings.Contains(out, "BenchmarkGone") || !strings.Contains(out, "missing from current run") {
		t.Errorf("missing row absent:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew") || !strings.Contains(out, "new in current run") {
		t.Errorf("new row absent:\n%s", out)
	}
}

func TestFormatComparisonNoAllocsMetric(t *testing.T) {
	noAllocs := Result{Name: "BenchmarkBare", Package: "smtflex", Procs: 8, Iterations: 1, NsPerOp: 1e6}
	base := &Report{Results: []Result{noAllocs}}
	out := FormatComparison(base, base, nil)
	if !strings.Contains(out, "BenchmarkBare") || !strings.Contains(out, "-") {
		t.Errorf("alloc-less benchmark not rendered:\n%s", out)
	}
}

package config

import (
	"testing"
)

func TestTable1Cores(t *testing.T) {
	big, med, small := BigCore(), MediumCore(), SmallCore()

	// Paper Table 1 anchors.
	if big.Width != 4 || big.ROBSize != 128 || big.SMTContexts != 6 || !big.OutOfOrder {
		t.Errorf("big core mismatch: %+v", big)
	}
	if med.Width != 2 || med.ROBSize != 32 || med.SMTContexts != 3 || !med.OutOfOrder {
		t.Errorf("medium core mismatch: %+v", med)
	}
	if small.Width != 2 || small.SMTContexts != 2 || small.OutOfOrder {
		t.Errorf("small core mismatch: %+v", small)
	}
	if big.L1D.SizeBytes != 32<<10 || big.L2.SizeBytes != 256<<10 {
		t.Errorf("big caches mismatch")
	}
	if med.L1D.SizeBytes != 16<<10 || med.L2.SizeBytes != 128<<10 {
		t.Errorf("medium caches mismatch")
	}
	for _, c := range []Core{big, med, small} {
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", c.Type, err)
		}
		if c.FrequencyGHz != BaseFrequencyGHz {
			t.Errorf("%v frequency %g", c.Type, c.FrequencyGHz)
		}
	}
}

func TestCoreOfType(t *testing.T) {
	for _, ct := range []CoreType{Big, Medium, Small} {
		if got := CoreOfType(ct).Type; got != ct {
			t.Errorf("CoreOfType(%v).Type = %v", ct, got)
		}
	}
}

func TestCoreTypeStrings(t *testing.T) {
	if Big.String() != "big" || Medium.String() != "medium" || Small.String() != "small" {
		t.Error("core type names wrong")
	}
	if Big.Letter() != "B" || Medium.Letter() != "m" || Small.Letter() != "s" {
		t.Error("core type letters wrong")
	}
}

func TestNineDesigns(t *testing.T) {
	ds := NineDesigns(true)
	if len(ds) != 9 {
		t.Fatalf("%d designs", len(ds))
	}
	wantOrder := []string{"4B", "8m", "20s", "3B2m", "3B5s", "2B4m", "2B10s", "1B6m", "1B15s"}
	for i, d := range ds {
		if d.Name != wantOrder[i] {
			t.Fatalf("design %d = %s, want %s", i, d.Name, wantOrder[i])
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if !d.SMTEnabled {
			t.Errorf("%s: SMT should be enabled", d.Name)
		}
		// Power equivalence: 1 big = 2 medium = 5 small -> 20 small-units.
		units := 5*d.CountOfType(Big) + 5*d.CountOfType(Medium)/2 + d.CountOfType(Small)
		if units != 20 {
			t.Errorf("%s: %d small-core power units, want 20", d.Name, units)
		}
	}
}

func TestHardwareThreads(t *testing.T) {
	// All nine designs support at least 20 hardware threads with SMT;
	// 4B and 8m support exactly 24.
	for _, d := range NineDesigns(true) {
		ht := d.HardwareThreads()
		if ht < 20 || ht > 40 {
			t.Errorf("%s: %d hardware threads", d.Name, ht)
		}
	}
	fourB, _ := DesignByName("4B", true)
	if fourB.HardwareThreads() != 24 {
		t.Errorf("4B hardware threads %d, want 24", fourB.HardwareThreads())
	}
	if fourB.WithSMT(false).HardwareThreads() != 4 {
		t.Error("4B without SMT should expose 4 threads")
	}
}

func TestDesignByName(t *testing.T) {
	d, err := DesignByName("2B10s", false)
	if err != nil {
		t.Fatal(err)
	}
	if d.CountOfType(Big) != 2 || d.CountOfType(Small) != 10 || d.SMTEnabled {
		t.Fatalf("wrong design %+v", d)
	}
	if _, err := DesignByName("5B", true); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestDesignOrderingBigFirst(t *testing.T) {
	for _, d := range NineDesigns(true) {
		for i := 1; i < len(d.Cores); i++ {
			if d.Cores[i-1].Type > d.Cores[i].Type {
				t.Fatalf("%s: cores not big-first at %d", d.Name, i)
			}
		}
	}
}

func TestWithSMTIsolatedCopy(t *testing.T) {
	d, _ := DesignByName("4B", true)
	d2 := d.WithSMT(false)
	if d2.SMTEnabled || !d.SMTEnabled {
		t.Fatal("WithSMT wrong")
	}
	d2.Cores[0].Width = 99
	if d.Cores[0].Width == 99 {
		t.Fatal("WithSMT shares the cores slice")
	}
}

func TestWithBandwidth(t *testing.T) {
	d, _ := DesignByName("8m", true)
	d2 := d.WithBandwidth(16)
	if d2.MemBandwidthGBps != 16 || d.MemBandwidthGBps != 8 {
		t.Fatal("WithBandwidth wrong")
	}
}

func TestSummary(t *testing.T) {
	d, _ := DesignByName("3B5s", true)
	if got := d.Summary(); got != "3B+5s, SMT" {
		t.Fatalf("Summary() = %q", got)
	}
	if got := d.WithSMT(false).Summary(); got != "3B+5s" {
		t.Fatalf("Summary() = %q", got)
	}
}

func TestHomogeneousOnlySMT(t *testing.T) {
	for _, d := range HomogeneousOnlySMT() {
		homog := d.Name == "4B" || d.Name == "8m" || d.Name == "20s"
		if d.SMTEnabled != homog {
			t.Errorf("%s: SMT=%t", d.Name, d.SMTEnabled)
		}
	}
}

func TestAlternativeDesigns(t *testing.T) {
	alts := AlternativeDesigns(true)
	if len(alts) != 4 {
		t.Fatalf("%d alternative designs", len(alts))
	}
	byName := map[string]Design{}
	for _, d := range alts {
		byName[d.Name] = d
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	// Larger-cache designs carry the big core's private caches.
	big := BigCore()
	for _, name := range []string{"6m_lc", "16s_lc"} {
		d := byName[name]
		if d.Cores[0].L2.SizeBytes != big.L2.SizeBytes {
			t.Errorf("%s: L2 %d, want %d", name, d.Cores[0].L2.SizeBytes, big.L2.SizeBytes)
		}
	}
	// High-frequency designs run at 3.33 GHz.
	for _, name := range []string{"6m_hf", "16s_hf"} {
		if f := byName[name].Cores[0].FrequencyGHz; f != 3.33 {
			t.Errorf("%s: frequency %g", name, f)
		}
	}
	// Power-equivalent core counts per Section 8.1: 6 medium or 16 small.
	if byName["6m_lc"].NumCores() != 6 || byName["16s_lc"].NumCores() != 16 {
		t.Error("alternative core counts wrong")
	}
}

func TestMemConfig(t *testing.T) {
	mc := MemConfig(8)
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	if mc.Banks != 8 {
		t.Errorf("banks %d", mc.Banks)
	}
	// 45 ns at 2.66 GHz ≈ 119 cycles.
	if mc.AccessTimeCycles < 115 || mc.AccessTimeCycles > 125 {
		t.Errorf("access time %d cycles", mc.AccessTimeCycles)
	}
	// 8 GB/s at 2.66 GHz ≈ 3 bytes/cycle.
	if mc.BusBandwidthBytesPerCycle < 2.9 || mc.BusBandwidthBytesPerCycle > 3.1 {
		t.Errorf("bus bandwidth %g B/cycle", mc.BusBandwidthBytesPerCycle)
	}
	// Doubling bandwidth doubles bytes per cycle.
	if r := MemConfig(16).BusBandwidthBytesPerCycle / mc.BusBandwidthBytesPerCycle; r < 1.99 || r > 2.01 {
		t.Errorf("bandwidth scaling %g", r)
	}
}

func TestLLCConfig(t *testing.T) {
	llc := LLCConfig()
	if llc.SizeBytes != 8<<20 || llc.Assoc != 16 {
		t.Errorf("LLC %+v", llc)
	}
	if err := llc.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDesignValidateRejects(t *testing.T) {
	var d Design
	if err := d.Validate(); err == nil {
		t.Error("empty design accepted")
	}
	d = NewDesign("x", 1, 1, 0, true)
	d.Cores[0], d.Cores[1] = d.Cores[1], d.Cores[0] // violate big-first
	if err := d.Validate(); err == nil {
		t.Error("unordered design accepted")
	}
	d = NewDesign("y", 1, 0, 0, true)
	d.MemBandwidthGBps = 0
	if err := d.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

// Package config defines the microarchitectures of Table 1, the nine
// power-equivalent multi-core designs of Figure 2, and the alternative
// designs of Section 8 (larger caches, higher frequency, doubled memory
// bandwidth).
package config

import (
	"errors"
	"fmt"

	"smtflex/internal/cache"
	"smtflex/internal/isa"
	"smtflex/internal/mem"
)

// ErrBadConfig is wrapped by every core- and design-validation failure, so
// callers can classify configuration errors with errors.Is without matching
// message text.
var ErrBadConfig = errors.New("config: invalid configuration")

// CoreType names the three core microarchitectures of the study.
type CoreType uint8

const (
	// Big is the four-wide out-of-order core.
	Big CoreType = iota
	// Medium is the two-wide out-of-order core.
	Medium
	// Small is the two-wide in-order core.
	Small
	// NumCoreTypes is the number of core types.
	NumCoreTypes
)

var coreTypeNames = [NumCoreTypes]string{"big", "medium", "small"}

// String returns "big", "medium" or "small".
func (t CoreType) String() string {
	if int(t) < len(coreTypeNames) {
		return coreTypeNames[t]
	}
	return fmt.Sprintf("coretype(%d)", uint8(t))
}

// Letter returns the single-character design-name code: B, m or s.
func (t CoreType) Letter() string {
	return [NumCoreTypes]string{"B", "m", "s"}[t]
}

// Core describes one core microarchitecture (a row of Table 1).
type Core struct {
	// Type is the core class.
	Type CoreType
	// FrequencyGHz is the clock frequency.
	FrequencyGHz float64
	// OutOfOrder selects the OoO pipeline model; false selects in-order.
	OutOfOrder bool
	// Width is the fetch/dispatch/issue/commit width.
	Width int
	// ROBSize is the reorder buffer capacity (OoO only).
	ROBSize int
	// IntALUs, LoadStorePorts, MulDiv and FPUnits size the functional units.
	IntALUs        int
	LoadStorePorts int
	MulDivUnits    int
	FPUnits        int
	// SMTContexts is the maximum number of hardware threads.
	SMTContexts int
	// L1I, L1D and L2 are the private cache geometries.
	L1I, L1D, L2 cache.Config
}

// Validate reports configuration errors, including invalid cache geometry.
// Every failure wraps ErrBadConfig.
func (c Core) Validate() error {
	if err := c.validate(); err != nil {
		if errors.Is(err, ErrBadConfig) {
			return err
		}
		return fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return nil
}

func (c Core) validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("core %s: width %d", c.Type, c.Width)
	}
	if c.OutOfOrder && c.ROBSize <= 0 {
		return fmt.Errorf("core %s: OoO core needs a ROB", c.Type)
	}
	if c.SMTContexts <= 0 {
		return fmt.Errorf("core %s: SMT contexts %d", c.Type, c.SMTContexts)
	}
	if c.FrequencyGHz <= 0 {
		return fmt.Errorf("core %s: frequency %g", c.Type, c.FrequencyGHz)
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("core %s: %w", c.Type, err)
		}
	}
	return nil
}

// BaseFrequencyGHz is the study's common clock frequency.
const BaseFrequencyGHz = 2.66

// BigCore returns the four-wide out-of-order configuration of Table 1:
// 128-entry ROB, 3 int ALUs, 2 load/store ports, up to 6 SMT contexts,
// 32 KB L1 caches and a 256 KB L2.
func BigCore() Core {
	return Core{
		Type:           Big,
		FrequencyGHz:   BaseFrequencyGHz,
		OutOfOrder:     true,
		Width:          4,
		ROBSize:        128,
		IntALUs:        3,
		LoadStorePorts: 2,
		MulDivUnits:    1,
		FPUnits:        1,
		SMTContexts:    6,
		L1I:            cache.Config{Name: "L1I", SizeBytes: 32 << 10, Assoc: 4, BlockBytes: isa.MemBlockSize, LatencyCycles: 1},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 32 << 10, Assoc: 4, BlockBytes: isa.MemBlockSize, LatencyCycles: 2},
		L2:             cache.Config{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, BlockBytes: isa.MemBlockSize, LatencyCycles: 10},
	}
}

// MediumCore returns the two-wide out-of-order configuration of Table 1:
// 32-entry ROB, up to 3 SMT contexts, 16 KB L1 caches and a 128 KB L2.
func MediumCore() Core {
	return Core{
		Type:           Medium,
		FrequencyGHz:   BaseFrequencyGHz,
		OutOfOrder:     true,
		Width:          2,
		ROBSize:        32,
		IntALUs:        2,
		LoadStorePorts: 1,
		MulDivUnits:    1,
		FPUnits:        1,
		SMTContexts:    3,
		L1I:            cache.Config{Name: "L1I", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: isa.MemBlockSize, LatencyCycles: 1},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 16 << 10, Assoc: 2, BlockBytes: isa.MemBlockSize, LatencyCycles: 2},
		L2:             cache.Config{Name: "L2", SizeBytes: 128 << 10, Assoc: 4, BlockBytes: isa.MemBlockSize, LatencyCycles: 8},
	}
}

// SmallCore returns the two-wide in-order configuration of Table 1: up to 2
// threads via fine-grained multithreading, 6 KB L1 caches (8 KB geometry
// truncated to the paper's 6 KB capacity is approximated as 8 KB two-way with
// 6 KB effective capacity; we use an 8 KB power-of-two geometry) and a 48 KB
// L2 approximated as 64 KB four-way.
//
// The paper picks "numbers that are powers of two or just in between"; our
// cache model requires power-of-two set counts, so the small core uses the
// nearest power-of-two geometry and the power model charges it for the
// paper's nominal capacity.
func SmallCore() Core {
	return Core{
		Type:           Small,
		FrequencyGHz:   BaseFrequencyGHz,
		OutOfOrder:     false,
		Width:          2,
		ROBSize:        0,
		IntALUs:        2,
		LoadStorePorts: 1,
		MulDivUnits:    1,
		FPUnits:        1,
		SMTContexts:    2,
		L1I:            cache.Config{Name: "L1I", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: isa.MemBlockSize, LatencyCycles: 1},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: isa.MemBlockSize, LatencyCycles: 2},
		L2:             cache.Config{Name: "L2", SizeBytes: 64 << 10, Assoc: 4, BlockBytes: isa.MemBlockSize, LatencyCycles: 6},
	}
}

// CoreOfType returns the Table 1 configuration for t.
func CoreOfType(t CoreType) Core {
	switch t {
	case Big:
		return BigCore()
	case Medium:
		return MediumCore()
	default:
		return SmallCore()
	}
}

// LLCConfig is the shared 8 MB 16-way last-level cache, identical in every
// design point.
func LLCConfig() cache.Config {
	return cache.Config{Name: "LLC", SizeBytes: 8 << 20, Assoc: 16, BlockBytes: isa.MemBlockSize, LatencyCycles: 30}
}

// MemConfig returns the DRAM/bus configuration: 8 banks, 45 ns access
// (≈120 cycles at 2.66 GHz) and the given off-chip bandwidth in GB/s
// (8 GB/s in the base setup, 16 GB/s in Section 8.2).
func MemConfig(bandwidthGBps float64) mem.Config {
	accessNs := 45.0
	cycles := int(accessNs * BaseFrequencyGHz) // 45 ns at 2.66 GHz ≈ 120 cycles
	return mem.Config{
		Banks:                     8,
		AccessTimeCycles:          cycles,
		BusBandwidthBytesPerCycle: bandwidthGBps / BaseFrequencyGHz,
		BlockBytes:                isa.MemBlockSize,
	}
}

package config

import (
	"errors"
	"fmt"
	"strings"
)

// Design is one multi-core design point: an ordered list of cores sharing an
// LLC, a crossbar and a memory system. Ordering matters for scheduling: the
// policies fill cores front to back, and designs list bigger cores first.
type Design struct {
	// Name is the paper's code, e.g. "4B", "3B5s", "2B10s".
	Name string
	// Cores lists the per-core configurations, big cores first.
	Cores []Core
	// SMTEnabled gates multi-threading: when false every core runs at most
	// one thread at a time and excess threads time-share.
	SMTEnabled bool
	// LLC is the shared last-level cache.
	LLC struct {
		SizeBytes, Assoc, LatencyCycles int
	}
	// MemBandwidthGBps is the off-chip bandwidth (8 in the base setup).
	MemBandwidthGBps float64
}

// NewDesign assembles a design from counts of big, medium and small cores.
func NewDesign(name string, nBig, nMedium, nSmall int, smt bool) Design {
	d := Design{Name: name, SMTEnabled: smt, MemBandwidthGBps: 8}
	for i := 0; i < nBig; i++ {
		d.Cores = append(d.Cores, BigCore())
	}
	for i := 0; i < nMedium; i++ {
		d.Cores = append(d.Cores, MediumCore())
	}
	for i := 0; i < nSmall; i++ {
		d.Cores = append(d.Cores, SmallCore())
	}
	llc := LLCConfig()
	d.LLC.SizeBytes = llc.SizeBytes
	d.LLC.Assoc = llc.Assoc
	d.LLC.LatencyCycles = llc.LatencyCycles
	return d
}

// NumCores returns the core count.
func (d Design) NumCores() int { return len(d.Cores) }

// CountOfType returns how many cores of type t the design has.
func (d Design) CountOfType(t CoreType) int {
	n := 0
	for _, c := range d.Cores {
		if c.Type == t {
			n++
		}
	}
	return n
}

// HardwareThreads returns the total thread contexts with SMT, or the core
// count without.
func (d Design) HardwareThreads() int {
	if !d.SMTEnabled {
		return len(d.Cores)
	}
	n := 0
	for _, c := range d.Cores {
		n += c.SMTContexts
	}
	return n
}

// WithSMT returns a copy of the design with SMT enabled or disabled.
func (d Design) WithSMT(enabled bool) Design {
	d2 := d
	d2.SMTEnabled = enabled
	d2.Cores = append([]Core(nil), d.Cores...)
	return d2
}

// WithBandwidth returns a copy with a different off-chip bandwidth.
func (d Design) WithBandwidth(gbps float64) Design {
	d2 := d
	d2.MemBandwidthGBps = gbps
	d2.Cores = append([]Core(nil), d.Cores...)
	return d2
}

// Validate checks every core and the LLC.
func (d Design) Validate() error {
	if err := d.validate(); err != nil {
		if errors.Is(err, ErrBadConfig) {
			return err
		}
		return fmt.Errorf("%w: %w", ErrBadConfig, err)
	}
	return nil
}

func (d Design) validate() error {
	if len(d.Cores) == 0 {
		return fmt.Errorf("design %s: no cores", d.Name)
	}
	for i, c := range d.Cores {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("design %s core %d: %w", d.Name, i, err)
		}
		if i > 0 && d.Cores[i-1].Type > c.Type {
			return fmt.Errorf("design %s: cores not ordered big-first at %d", d.Name, i)
		}
	}
	if d.LLC.SizeBytes <= 0 || d.LLC.Assoc <= 0 {
		return fmt.Errorf("design %s: bad LLC", d.Name)
	}
	if d.MemBandwidthGBps <= 0 {
		return fmt.Errorf("design %s: bad bandwidth %g", d.Name, d.MemBandwidthGBps)
	}
	return nil
}

// String returns the design name.
func (d Design) String() string { return d.Name }

// Summary returns a human-readable composition like "2B+10s, SMT".
func (d Design) Summary() string {
	var parts []string
	for t := Big; t < NumCoreTypes; t++ {
		if n := d.CountOfType(t); n > 0 {
			parts = append(parts, fmt.Sprintf("%d%s", n, t.Letter()))
		}
	}
	s := strings.Join(parts, "+")
	if d.SMTEnabled {
		s += ", SMT"
	}
	return s
}

// NineDesigns returns the nine power-equivalent design points of Figure 2,
// in the paper's order: 4B, 8m, 20s, 3B2m, 3B5s, 2B4m, 2B10s, 1B6m, 1B15s.
// The power-equivalence rule is 1 big = 2 medium = 5 small cores.
func NineDesigns(smt bool) []Design {
	return []Design{
		NewDesign("4B", 4, 0, 0, smt),
		NewDesign("8m", 0, 8, 0, smt),
		NewDesign("20s", 0, 0, 20, smt),
		NewDesign("3B2m", 3, 2, 0, smt),
		NewDesign("3B5s", 3, 0, 5, smt),
		NewDesign("2B4m", 2, 4, 0, smt),
		NewDesign("2B10s", 2, 0, 10, smt),
		NewDesign("1B6m", 1, 6, 0, smt),
		NewDesign("1B15s", 1, 0, 15, smt),
	}
}

// DesignByName returns the named design from the nine-design space.
func DesignByName(name string, smt bool) (Design, error) {
	for _, d := range NineDesigns(smt) {
		if d.Name == name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("config: unknown design %q", name)
}

// HomogeneousOnlySMT returns the nine designs with SMT enabled only in the
// homogeneous ones (4B, 8m, 20s), matching the Figure 7 setup.
func HomogeneousOnlySMT() []Design {
	ds := NineDesigns(false)
	for i := range ds {
		if ds[i].Name == "4B" || ds[i].Name == "8m" || ds[i].Name == "20s" {
			ds[i].SMTEnabled = true
		}
	}
	return ds
}

// AlternativeDesigns returns the Section 8.1 design points: medium/small
// configurations with private caches enlarged to the big core's (the "_lc"
// designs, power-equivalent to 1B = 1.5m = 4s) and with frequency raised to
// 3.33 GHz (the "_hf" designs, same equivalence).
func AlternativeDesigns(smt bool) []Design {
	largeCacheMedium := MediumCore()
	largeCacheMedium.L1I = BigCore().L1I
	largeCacheMedium.L1D = BigCore().L1D
	largeCacheMedium.L2 = BigCore().L2

	largeCacheSmall := SmallCore()
	largeCacheSmall.L1I = BigCore().L1I
	largeCacheSmall.L1D = BigCore().L1D
	largeCacheSmall.L2 = BigCore().L2

	hfMedium := MediumCore()
	hfMedium.FrequencyGHz = 3.33
	hfSmall := SmallCore()
	hfSmall.FrequencyGHz = 3.33

	mk := func(name string, core Core, n int) Design {
		d := Design{Name: name, SMTEnabled: smt, MemBandwidthGBps: 8}
		for i := 0; i < n; i++ {
			d.Cores = append(d.Cores, core)
		}
		llc := LLCConfig()
		d.LLC.SizeBytes = llc.SizeBytes
		d.LLC.Assoc = llc.Assoc
		d.LLC.LatencyCycles = llc.LatencyCycles
		return d
	}
	return []Design{
		mk("6m_lc", largeCacheMedium, 6),
		mk("16s_lc", largeCacheSmall, 16),
		mk("6m_hf", hfMedium, 6),
		mk("16s_hf", hfSmall, 16),
	}
}

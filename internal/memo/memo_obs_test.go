package memo

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"smtflex/internal/obs"
)

func TestCountersTrackHitsMissesCoalesced(t *testing.T) {
	var c Cache[int, int]
	c.Name = "profiles"

	if _, err := c.Get(1, func() (int, error) { return 10, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Get(1, func() (int, error) { return 10, nil }); err != nil {
			t.Fatal(err)
		}
	}

	// Coalesce: release holds the in-flight compute open while ten callers
	// pile onto the same key, so all of them must join it rather than miss.
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get(2, func() (int, error) { close(started); <-release; return 20, nil })
	}()
	<-started
	const followers = 10
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, err := c.Get(2, func() (int, error) { return -1, nil }); err != nil || v != 20 {
				panic("follower got wrong value") // panicgate:allow — test goroutine
			}
		}()
	}
	// The followers register as waiters (hits) before the compute finishes;
	// busy-wait on the counter to know they have all arrived.
	for c.Coalesced() < followers {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	got := c.Counters()
	want := Counters{Name: "profiles", Hits: 3 + followers, Misses: 2, Coalesced: followers, Entries: 2}
	if got != want {
		t.Fatalf("Counters() = %+v, want %+v", got, want)
	}
}

func TestCountersDefaultName(t *testing.T) {
	var c Cache[string, int]
	if got := c.Counters().Name; got != "cache" {
		t.Fatalf("unnamed cache labelled %q", got)
	}
}

// TestGetTracedSpans verifies the memo.get span policy: outcome=compute on a
// miss (with the compute's own spans nested inside) and NO span on a pure
// hit — hits are nanosecond lookups counted by Counters, and spanning them
// would flood a hot sweep's span budget.
func TestGetTracedSpans(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	col := obs.NewCollector(1)
	ctx, root := obs.StartTrace(context.Background(), col, "req")

	var c Cache[int, int]
	c.Name = "sweeps"
	compute := func(cctx context.Context) (int, error) {
		_, inner := obs.StartSpan(cctx, "contention.solve")
		inner.End()
		return 7, nil
	}
	if v, err := c.GetTraced(ctx, 1, compute); err != nil || v != 7 {
		t.Fatalf("miss: %v %v", v, err)
	}
	if v, err := c.GetTraced(ctx, 1, compute); err != nil || v != 7 {
		t.Fatalf("hit: %v %v", v, err)
	}
	root.End()

	snap := col.Traces()[0].Snapshot()
	var outcomes []string
	var solveParent, computeID string
	for _, s := range snap.Spans {
		switch s.Name {
		case "memo.get":
			if s.Attrs["cache"] != "sweeps" {
				t.Fatalf("memo.get cache attr = %v", s.Attrs["cache"])
			}
			out, _ := s.Attrs["outcome"].(string)
			outcomes = append(outcomes, out)
			if out == "compute" {
				computeID = s.ID
			}
		case "contention.solve":
			solveParent = s.Parent
		}
	}
	if len(outcomes) != 1 || outcomes[0] != "compute" {
		t.Fatalf("outcomes = %v, want [compute] (hits must not span)", outcomes)
	}
	if solveParent == "" || solveParent != computeID {
		t.Fatalf("solve span parent %q, want the compute memo.get span %q", solveParent, computeID)
	}
}

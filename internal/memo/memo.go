// Package memo provides a concurrency-safe memoizing cache with
// singleflight duplicate suppression: when several goroutines miss on the
// same key at once, exactly one runs the compute function while the others
// block and share its result. Successful results are cached forever by
// default; failures are not cached, so a later caller retries the
// computation.
//
// The experiment engine leans on this for the three compute-once tables the
// parallel sweep hammers — benchmark profiles, solo rates and design
// sweeps — where a plain check-then-compute cache would let N concurrent
// misses run the same expensive measurement N times.
//
// Two additions serve long-running daemons (see internal/server):
//
//   - GetCtx coalesces identical in-flight computations across requests and
//     threads cancellation through: every waiter is reference-counted, and
//     when the last interested waiter abandons the key, the shared compute's
//     context is cancelled so the work stops instead of burning workers for
//     a client that hung up.
//   - Bound caps the cache at a maximum number of completed entries with
//     least-recently-used eviction, so a server's sweep cache cannot grow
//     without limit across a long request history. Batch CLIs simply never
//     call Bound and keep the forever-cache semantics.
package memo

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"smtflex/internal/faults"
	"smtflex/internal/obs"
)

// ErrComputePanic is the sentinel wrapped by errors produced when a compute
// function panics. The panic is contained at the cache boundary: waiters
// receive this error, the entry is not cached (a later caller retries), and
// no goroutine deadlocks on a done channel that would never close.
var ErrComputePanic = errors.New("memo: compute panicked")

// protect runs compute, converting a panic into an error wrapping
// ErrComputePanic (with the stack) and applying the memo fault-injection
// site first.
func protect[V any](compute func() (V, error)) (val V, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", ErrComputePanic, r, debug.Stack())
		}
	}()
	if err = faults.Check(faults.SiteMemo); err != nil {
		return val, err
	}
	return compute()
}

// entry is one in-flight or completed computation. done is closed once val
// and err are final.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error

	// waiters counts GetCtx callers currently interested in this entry;
	// cancel (set only for GetCtx-created entries) aborts the compute when
	// the count drops to zero before completion.
	waiters int
	cancel  context.CancelFunc
	// elem is the entry's node in the LRU list; nil while in flight or when
	// the cache is unbounded and the entry predates Bound.
	elem *list.Element
}

// Cache memoizes compute results by key. The zero value is ready to use.
// It must not be copied after first use.
type Cache[K comparable, V any] struct {
	// Name labels the cache in spans and metrics ("profiles", "sweeps", …).
	// Set it once before concurrent use; the zero value renders as "cache".
	Name string

	mu  sync.Mutex
	m   map[K]*entry[V]
	lru *list.List // completed entries, most recent first; values are keys
	cap int        // 0 = unbounded

	hits, misses, coalesced atomic.Int64
}

// label returns the cache's span/metric name.
func (c *Cache[K, V]) label() string {
	if c.Name == "" {
		return "cache"
	}
	return c.Name
}

// init lazily allocates the map and LRU list. Callers hold mu.
func (c *Cache[K, V]) init() {
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	if c.lru == nil {
		c.lru = list.New()
	}
}

// recordLocked registers a completed successful entry in the LRU order and
// evicts past the bound. Callers hold mu.
func (c *Cache[K, V]) recordLocked(key K, e *entry[V]) {
	e.elem = c.lru.PushFront(key)
	c.evictLocked()
}

// touchLocked marks a completed entry as recently used. Callers hold mu.
func (c *Cache[K, V]) touchLocked(e *entry[V]) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// evictLocked removes least-recently-used completed entries until the cache
// is within its bound. In-flight entries are never on the list and are never
// evicted. Callers hold mu.
func (c *Cache[K, V]) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		key := back.Value.(K)
		c.lru.Remove(back)
		if e, ok := c.m[key]; ok && e.elem == back {
			delete(c.m, key)
		}
	}
}

// Bound caps the cache at maxEntries completed entries, evicting the least
// recently used beyond that. Zero (the default) means unbounded. Entries
// cached before the first Bound call are not tracked for eviction; bound a
// cache before filling it.
func (c *Cache[K, V]) Bound(maxEntries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.init()
	c.cap = maxEntries
	c.evictLocked()
}

// Stats returns the cumulative hit and miss counts across Get and GetCtx.
// A hit is a call that found an entry (completed or in flight); a miss is a
// call that started a computation.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Coalesced returns how many calls joined an in-flight computation for their
// key instead of finding a completed entry — the subset of hits that the
// singleflight machinery actually deduplicated.
func (c *Cache[K, V]) Coalesced() int64 {
	return c.coalesced.Load()
}

// Counters is a point-in-time snapshot of one cache's lookup counters, the
// unit the daemon's per-cache /metrics series are built from.
type Counters struct {
	Name                    string
	Hits, Misses, Coalesced int64
	Entries                 int
}

// Counters snapshots the cache's name, counters and entry count.
func (c *Cache[K, V]) Counters() Counters {
	return Counters{
		Name:      c.label(),
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Entries:   c.Len(),
	}
}

// Get returns the cached value for key, computing it with compute on the
// first call. Concurrent calls for the same key run compute exactly once and
// all receive its result. compute must not call Get for the same key on the
// same cache (it would deadlock); distinct keys may recurse freely, and the
// cache's lock is never held while compute runs.
func (c *Cache[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	return c.get(context.Background(), key, func(context.Context) (V, error) { return compute() })
}

// GetTraced is Get with observability: when the context carries an active
// trace, the time a lookup actually spends working is recorded as a
// "memo.get" span annotated with the cache name and outcome — "compute" for
// the caller that runs compute (whose own spans nest inside), "coalesced"
// for callers that block on another's in-flight compute. Lookups served
// instantly from a completed entry are counted (see Counters) but NOT
// spanned: a hot sweep performs thousands of nanosecond hits, and spanning
// them would flood the trace's span budget with zero-duration noise.
// Lookup semantics are identical to Get — the two share the same
// singleflight entries.
func (c *Cache[K, V]) GetTraced(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, error) {
	return c.get(ctx, key, compute)
}

// get implements Get and GetTraced; ctx carries the parent span, if any.
func (c *Cache[K, V]) get(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, error) {
	c.mu.Lock()
	c.init()
	if e, ok := c.m[key]; ok {
		c.hits.Add(1)
		c.touchLocked(e)
		c.mu.Unlock()
		select {
		case <-e.done:
			// Completed entry: a pure hit, counted but not spanned.
		default:
			c.coalesced.Add(1)
			_, sp := obs.StartSpan(ctx, "memo.get")
			sp.SetAttr("cache", c.label())
			sp.SetAttr("outcome", "coalesced")
			<-e.done
			sp.End()
		}
		<-e.done
		return e.val, e.err
	}
	c.misses.Add(1)
	e := &entry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	sctx, sp := obs.StartSpan(ctx, "memo.get")
	sp.SetAttr("cache", c.label())
	sp.SetAttr("outcome", "compute")
	e.val, e.err = protect(func() (V, error) { return compute(sctx) })
	sp.End()
	c.mu.Lock()
	if e.err != nil {
		// Leave failures uncached so the next caller can retry.
		if cur, ok := c.m[key]; ok && cur == e {
			delete(c.m, key)
		}
	} else if cur, ok := c.m[key]; ok && cur == e {
		// Not replaced by Put while computing: track for eviction.
		c.recordLocked(key, e)
	}
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// GetCtx is Get with cancellation: identical in-flight calls coalesce onto
// one compute, and each caller waits only as long as its own ctx allows. The
// compute runs under a context of its own that is cancelled when every
// caller interested in the key has gone — so abandoning a request stops the
// shared work, but only once nobody else still wants the result. A compute
// aborted that way is uncached like any failure; a later caller with a live
// context transparently restarts it.
//
// Entries created by GetCtx must not be awaited with plain Get on the same
// key (Get does not register as an interested waiter, so the compute could
// be cancelled underneath it).
func (c *Cache[K, V]) GetCtx(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, error) {
	for {
		if err := ctx.Err(); err != nil {
			return *new(V), err
		}
		c.mu.Lock()
		c.init()
		e, ok := c.m[key]
		// sp times the caller's wait on a compute or coalesced entry; pure
		// hits are counted but not spanned (see GetTraced).
		var sp *obs.Span
		if ok {
			c.hits.Add(1)
			select {
			case <-e.done:
				// Completed entry: return it, unless it is the residue of an
				// abandoned compute — then loop and recompute.
				c.touchLocked(e)
				c.mu.Unlock()
				if errors.Is(e.err, context.Canceled) {
					continue
				}
				return e.val, e.err
			default:
			}
			c.coalesced.Add(1)
			e.waiters++
			c.mu.Unlock()
			_, sp = obs.StartSpan(ctx, "memo.get")
			sp.SetAttr("cache", c.label())
			sp.SetAttr("outcome", "coalesced")
		} else {
			c.misses.Add(1)
			var sctx context.Context
			sctx, sp = obs.StartSpan(ctx, "memo.get")
			sp.SetAttr("cache", c.label())
			sp.SetAttr("outcome", "compute")
			// The compute's context descends from obs.Detach(sctx): it carries
			// the leader's trace identity — so profiler/solver spans inside
			// the shared compute attach to the leader's trace, nested under
			// its memo.get span — but no deadline; its lifetime is governed
			// solely by the refcounted cancel below.
			cctx, cancel := context.WithCancel(obs.Detach(sctx))
			e = &entry[V]{done: make(chan struct{}), waiters: 1, cancel: cancel}
			c.m[key] = e
			c.mu.Unlock()
			go func() {
				val, err := protect(func() (V, error) { return compute(cctx) })
				cancel()
				c.mu.Lock()
				e.val, e.err = val, err
				if err != nil {
					if cur, ok := c.m[key]; ok && cur == e {
						delete(c.m, key)
					}
				} else if cur, ok := c.m[key]; ok && cur == e {
					c.recordLocked(key, e)
				}
				c.mu.Unlock()
				close(e.done)
			}()
		}

		select {
		case <-e.done:
			c.mu.Lock()
			e.waiters--
			c.mu.Unlock()
			sp.End()
			if errors.Is(e.err, context.Canceled) {
				continue
			}
			return e.val, e.err
		case <-ctx.Done():
			c.mu.Lock()
			e.waiters--
			abandoned := e.waiters == 0
			c.mu.Unlock()
			if abandoned && e.cancel != nil {
				e.cancel()
			}
			sp.SetAttr("error", ctx.Err().Error())
			sp.End()
			return *new(V), ctx.Err()
		}
	}
}

// Cached returns the completed value for key, if present. It does not wait
// for an in-flight computation.
func (c *Cache[K, V]) Cached(key K) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default:
		return *new(V), false
	}
}

// Put stores a completed value for key, replacing any finished entry. It is
// how persisted results are seeded into the cache. An in-flight computation
// for the same key keeps its own entry (its waiters get its result); Put
// then installs val for later lookups.
func (c *Cache[K, V]) Put(key K, val V) {
	e := &entry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	c.mu.Lock()
	c.init()
	if old, ok := c.m[key]; ok && old.elem != nil {
		c.lru.Remove(old.elem)
		old.elem = nil
	}
	c.m[key] = e
	c.recordLocked(key, e)
	c.mu.Unlock()
}

// Range calls fn for every completed successful entry. In-flight
// computations are skipped, not waited for.
func (c *Cache[K, V]) Range(fn func(key K, val V)) {
	c.mu.Lock()
	snapshot := make(map[K]*entry[V], len(c.m))
	for k, e := range c.m {
		snapshot[k] = e
	}
	c.mu.Unlock()
	for k, e := range snapshot {
		select {
		case <-e.done:
			if e.err == nil {
				fn(k, e.val)
			}
		default:
		}
	}
}

// Len returns the number of cached or in-flight entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

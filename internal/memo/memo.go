// Package memo provides a concurrency-safe memoizing cache with
// singleflight duplicate suppression: when several goroutines miss on the
// same key at once, exactly one runs the compute function while the others
// block and share its result. Successful results are cached forever;
// failures are not cached, so a later caller retries the computation.
//
// The experiment engine leans on this for the three compute-once tables the
// parallel sweep hammers — benchmark profiles, solo rates and design
// sweeps — where a plain check-then-compute cache would let N concurrent
// misses run the same expensive measurement N times.
package memo

import "sync"

// entry is one in-flight or completed computation. done is closed once val
// and err are final.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache memoizes compute results by key. The zero value is ready to use.
// It must not be copied after first use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*entry[V]
}

// Get returns the cached value for key, computing it with compute on the
// first call. Concurrent calls for the same key run compute exactly once and
// all receive its result. compute must not call Get for the same key on the
// same cache (it would deadlock); distinct keys may recurse freely, and the
// cache's lock is never held while compute runs.
func (c *Cache[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &entry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		// Leave failures uncached so the next caller can retry.
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Cached returns the completed value for key, if present. It does not wait
// for an in-flight computation.
func (c *Cache[K, V]) Cached(key K) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default:
		return *new(V), false
	}
}

// Put stores a completed value for key, replacing any finished entry. It is
// how persisted results are seeded into the cache. An in-flight computation
// for the same key keeps its own entry (its waiters get its result); Put
// then installs val for later lookups.
func (c *Cache[K, V]) Put(key K, val V) {
	e := &entry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*entry[V])
	}
	c.m[key] = e
	c.mu.Unlock()
}

// Range calls fn for every completed successful entry. In-flight
// computations are skipped, not waited for.
func (c *Cache[K, V]) Range(fn func(key K, val V)) {
	c.mu.Lock()
	snapshot := make(map[K]*entry[V], len(c.m))
	for k, e := range c.m {
		snapshot[k] = e
	}
	c.mu.Unlock()
	for k, e := range snapshot {
		select {
		case <-e.done:
			if e.err == nil {
				fn(k, e.val)
			}
		default:
		}
	}
}

// Len returns the number of cached or in-flight entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

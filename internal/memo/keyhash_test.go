package memo

import (
	"sync"
	"testing"
)

// TestKeyHashGolden pins the hash of fixed inputs to known SHA-256 values.
// This is the cross-process stability regression test: any change to the
// hash function breaks the fleet-wide dedup contract (a coordinator and its
// workers hash keys independently and must agree), so the expected values
// are hard-coded rather than computed.
func TestKeyHashGolden(t *testing.T) {
	cases := []struct{ key, want string }{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"4B|smt=true|bw=8|homogeneous|n=3|progs=mcf,mcf,mcf",
			"d2af6838d784251c06f73bc728d13e5b8cd9fe24972f445609ceacff306b4813"},
	}
	for _, c := range cases {
		if got := KeyHash(c.key); got != c.want {
			t.Errorf("KeyHash(%q) = %s, want %s", c.key, got, c.want)
		}
	}
}

// TestKeyHashDeterministic hammers the hash from many goroutines and asserts
// every call agrees — no hidden process state, no data races (run under
// -race in CI).
func TestKeyHashDeterministic(t *testing.T) {
	const key = "design|smt=true|bw=8|heterogeneous|n=17|progs=a,b,c"
	want := KeyHash(key)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if got := KeyHash(key); got != want {
					t.Errorf("KeyHash diverged: %s != %s", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestKeyHashDistinct sanity-checks that distinct keys get distinct hashes.
func TestKeyHashDistinct(t *testing.T) {
	if KeyHash("a") == KeyHash("b") {
		t.Fatal("distinct keys hashed equal")
	}
}

// TestKeyHashBytesMatchesKeyHash pins KeyHashBytes to the same function as
// KeyHash: the cluster integrity digests depend on both sides hashing the
// same bytes to the same value.
func TestKeyHashBytesMatchesKeyHash(t *testing.T) {
	for _, s := range []string{"", "x", `{"stp":0.30000000000000004}`} {
		if got, want := KeyHashBytes([]byte(s)), KeyHash(s); got != want {
			t.Errorf("KeyHashBytes(%q) = %s, want %s", s, got, want)
		}
	}
}

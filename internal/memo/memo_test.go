package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetMemoizes(t *testing.T) {
	var c Cache[string, int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("got %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestConcurrentMissesComputeOnce(t *testing.T) {
	var c Cache[string, int]
	var calls atomic.Int64
	var release sync.WaitGroup
	release.Add(1)

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				calls.Add(1)
				release.Wait() // hold every other goroutine in the miss path
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	release.Done()
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent misses, want 1", n)
	}
	for g, v := range results {
		if v != 7 {
			t.Fatalf("goroutine %d got %d", g, v)
		}
	}
}

func TestDistinctKeysIndependent(t *testing.T) {
	var c Cache[int, int]
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := c.Get(k, func() (int, error) { return k * k, nil })
			if err != nil || v != k*k {
				t.Errorf("key %d: got %d, %v", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
}

func TestErrorsNotCached(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, err := c.Get("k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry got %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (failure must not be cached)", calls)
	}
}

func TestCached(t *testing.T) {
	var c Cache[string, int]
	if _, ok := c.Cached("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if _, err := c.Get("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Cached("k")
	if !ok || v != 5 {
		t.Fatalf("Cached = %d, %t", v, ok)
	}
}

package memo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetMemoizes(t *testing.T) {
	var c Cache[string, int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("got %d, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestConcurrentMissesComputeOnce(t *testing.T) {
	var c Cache[string, int]
	var calls atomic.Int64
	var release sync.WaitGroup
	release.Add(1)

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.Get("k", func() (int, error) {
				calls.Add(1)
				release.Wait() // hold every other goroutine in the miss path
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	release.Done()
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrent misses, want 1", n)
	}
	for g, v := range results {
		if v != 7 {
			t.Fatalf("goroutine %d got %d", g, v)
		}
	}
}

func TestDistinctKeysIndependent(t *testing.T) {
	var c Cache[int, int]
	var wg sync.WaitGroup
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := c.Get(k, func() (int, error) { return k * k, nil })
			if err != nil || v != k*k {
				t.Errorf("key %d: got %d, %v", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
}

func TestErrorsNotCached(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Get("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	v, err := c.Get("k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry got %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (failure must not be cached)", calls)
	}
}

func TestCached(t *testing.T) {
	var c Cache[string, int]
	if _, ok := c.Cached("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if _, err := c.Get("k", func() (int, error) { return 5, nil }); err != nil {
		t.Fatal(err)
	}
	v, ok := c.Cached("k")
	if !ok || v != 5 {
		t.Fatalf("Cached = %d, %t", v, ok)
	}
}

func TestGetCtxCoalesces(t *testing.T) {
	var c Cache[string, int]
	var calls atomic.Int64
	var release sync.WaitGroup
	release.Add(1)

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetCtx(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				release.Wait()
				return 11, nil
			})
			if err != nil || v != 11 {
				t.Errorf("got %d, %v", v, err)
			}
		}()
	}
	release.Done()
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
}

// TestGetCtxCancelsAbandonedCompute is the daemon cancellation contract:
// when every waiter abandons an in-flight key, the compute's context is
// cancelled, the failed entry is not cached, and a later caller recomputes.
func TestGetCtxCancelsAbandonedCompute(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	computeCancelled := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.GetCtx(ctx, "k", func(cctx context.Context) (int, error) {
			close(started)
			<-cctx.Done() // the compute observes the abandonment
			close(computeCancelled)
			return 0, cctx.Err()
		})
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter got %v, want context.Canceled", err)
	}
	<-computeCancelled

	// The aborted compute must not be cached: a fresh caller recomputes.
	v, err := c.GetCtx(context.Background(), "k", func(context.Context) (int, error) { return 23, nil })
	if err != nil || v != 23 {
		t.Fatalf("recompute got %d, %v", v, err)
	}
}

// TestGetCtxSurvivingWaiterKeepsCompute: one waiter leaving must not cancel
// a compute another waiter still wants.
func TestGetCtxSurvivingWaiterKeepsCompute(t *testing.T) {
	var c Cache[string, int]
	started := make(chan struct{})
	var release sync.WaitGroup
	release.Add(1)

	survivor := make(chan error, 1)
	go func() {
		v, err := c.GetCtx(context.Background(), "k", func(cctx context.Context) (int, error) {
			close(started)
			release.Wait()
			if cctx.Err() != nil {
				return 0, cctx.Err()
			}
			return 31, nil
		})
		if v != 31 && err == nil {
			err = errors.New("wrong value")
		}
		survivor <- err
	}()
	<-started

	quitCtx, quit := context.WithCancel(context.Background())
	joined := make(chan error, 1)
	go func() {
		_, err := c.GetCtx(quitCtx, "k", func(context.Context) (int, error) {
			return 0, errors.New("must coalesce, not recompute")
		})
		joined <- err
	}()
	// Let the second waiter join, then abandon it.
	for {
		if h, _ := c.Stats(); h > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	quit()
	if err := <-joined; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}
	release.Done()
	if err := <-survivor; err != nil {
		t.Fatalf("surviving waiter got %v, want 31", err)
	}
}

func TestBoundEvictsLRU(t *testing.T) {
	var c Cache[int, int]
	c.Bound(3)
	for k := 0; k < 3; k++ {
		if _, err := c.Get(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is now least recently used.
	if _, err := c.Get(0, func() (int, error) { return -1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(3, func() (int, error) { return 3, nil }); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Cached(1); ok {
		t.Fatal("LRU key 1 still cached after eviction")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Cached(k); !ok {
			t.Fatalf("key %d evicted, want it kept", k)
		}
	}
	// An evicted key recomputes on demand.
	recomputed := false
	if _, err := c.Get(1, func() (int, error) { recomputed = true; return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("evicted key served from cache")
	}
}

func TestBoundShrinksExisting(t *testing.T) {
	var c Cache[int, int]
	c.Bound(100)
	for k := 0; k < 10; k++ {
		c.Put(k, k)
	}
	c.Bound(4)
	if c.Len() != 4 {
		t.Fatalf("Len = %d after shrink, want 4", c.Len())
	}
}

func TestPutReplaceKeepsSingleLRUEntry(t *testing.T) {
	var c Cache[string, int]
	c.Bound(2)
	c.Put("a", 1)
	c.Put("a", 2)
	c.Put("b", 3)
	if v, ok := c.Cached("a"); !ok || v != 2 {
		t.Fatalf("a = %d, %t; want 2", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

package memo

import (
	"crypto/sha256"
	"encoding/hex"
)

// KeyHash is the canonical content hash of a cache key: the lowercase hex
// SHA-256 of the key's bytes. It is the fleet-wide deduplication contract of
// the cluster layer (internal/cluster): a coordinator and its workers each
// derive the hash independently from the same canonical key string, so the
// function must be a pure function of the bytes — stable across processes,
// architectures and binary versions, with no dependence on map iteration
// order, pointer identity or process state. Callers are responsible for
// building the key string canonically (fixed field order, no map ranging);
// KeyHash then guarantees the rest.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// KeyHashBytes is KeyHash for a byte payload rather than a key string. The
// cluster layer's integrity digests (SHA-256 over a canonical cell encoding)
// use it so coordinator and workers agree on the hash of the same bytes with
// the same stability guarantees as KeyHash.
func KeyHashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

package memo

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"smtflex/internal/faults"
)

// Tests for panic containment and fault injection at the cache boundary: a
// compute that panics or fails must never poison the cache, never deadlock
// waiters, and must be retried by the next caller.

func TestGetContainsPanic(t *testing.T) {
	var c Cache[string, int]
	_, err := c.Get("k", func() (int, error) { panic("boom") })
	if !errors.Is(err, ErrComputePanic) {
		t.Fatalf("got %v, want ErrComputePanic", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic value lost: %v", err)
	}
	if !strings.Contains(err.Error(), "panic_test.go") {
		t.Fatalf("stack trace missing from %q", err)
	}
	// The failure is not cached: the next Get retries and succeeds.
	v, err := c.Get("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry after panic: v=%d err=%v", v, err)
	}
	if _, ok := c.Cached("k"); !ok {
		t.Fatal("successful retry not cached")
	}
}

func TestGetCtxContainsPanic(t *testing.T) {
	var c Cache[string, int]
	_, err := c.GetCtx(context.Background(), "k", func(context.Context) (int, error) { panic(42) })
	if !errors.Is(err, ErrComputePanic) {
		t.Fatalf("got %v, want ErrComputePanic", err)
	}
	v, err := c.GetCtx(context.Background(), "k", func(context.Context) (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("retry after panic: v=%d err=%v", v, err)
	}
}

func TestConcurrentWaitersAllSeePanic(t *testing.T) {
	// Every goroutine coalesced onto a panicking compute must receive the
	// error; none may hang on a done channel that never closes.
	var c Cache[string, int]
	release := make(chan struct{})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = c.Get("k", func() (int, error) {
				<-release
				panic("shared boom")
			})
		}(g)
	}
	close(release)
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrComputePanic) {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("panicked entry left in cache (len %d)", c.Len())
	}
}

func TestInjectedErrorRetried(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteMemo, faults.Injection{Mode: faults.ModeError, Count: 1})

	var c Cache[string, int]
	calls := 0
	compute := func() (int, error) { calls++; return 5, nil }

	if _, err := c.Get("k", compute); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("got %v, want injected error", err)
	}
	if calls != 0 {
		t.Fatal("injection fired after the compute ran")
	}
	v, err := c.Get("k", compute)
	if err != nil || v != 5 || calls != 1 {
		t.Fatalf("retry: v=%d err=%v calls=%d", v, err, calls)
	}
	// Now cached: no further computes.
	if _, err := c.Get("k", compute); err != nil || calls != 1 {
		t.Fatalf("cached read recomputed (calls=%d, err=%v)", calls, err)
	}
}

func TestInjectedPanicContained(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	faults.Enable(faults.SiteMemo, faults.Injection{Mode: faults.ModePanic, Count: 1})

	var c Cache[string, int]
	if _, err := c.Get("k", func() (int, error) { return 1, nil }); !errors.Is(err, ErrComputePanic) {
		t.Fatalf("injected panic not contained: %v", err)
	}
	v, err := c.Get("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("retry after injected panic: v=%d err=%v", v, err)
	}
}

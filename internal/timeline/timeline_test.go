package timeline

import (
	"math"
	"sync"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/power"
	"smtflex/internal/profiler"
)

var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(60_000) })
	return src
}

func design(t *testing.T, name string, smt bool) config.Design {
	t.Helper()
	d, err := config.DesignByName(name, smt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAllJobsComplete(t *testing.T) {
	jobs := PoissonWorkload(20, 2e6, 20e6, 1)
	res, err := Simulate(design(t, "4B", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 20 {
		t.Fatalf("%d of 20 jobs completed", len(res.Jobs))
	}
	for _, jr := range res.Jobs {
		if jr.FinishNs <= jr.ArrivalNs {
			t.Fatalf("job finished before arriving: %+v", jr)
		}
		if jr.TurnaroundNs != jr.FinishNs-jr.ArrivalNs {
			t.Fatal("turnaround inconsistent")
		}
	}
	if res.MakespanNs <= 0 || res.MeanTurnaroundNs <= 0 || res.EnergyJoules <= 0 {
		t.Fatalf("implausible summary %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	jobs := PoissonWorkload(12, 1e6, 10e6, 7)
	a, err := Simulate(design(t, "2B4m", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(design(t, "2B4m", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanNs != b.MakespanNs || a.EnergyJoules != b.EnergyJoules {
		t.Fatal("simulation not deterministic")
	}
}

func TestHigherLoadMoreActive(t *testing.T) {
	light := PoissonWorkload(15, 20e6, 10e6, 3)
	heavy := PoissonWorkload(15, 1e6, 10e6, 3)
	rl, err := Simulate(design(t, "4B", true), light, source())
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Simulate(design(t, "4B", true), heavy, source())
	if err != nil {
		t.Fatal(err)
	}
	if rh.MeanActive <= rl.MeanActive {
		t.Fatalf("mean active: heavy %.2f <= light %.2f", rh.MeanActive, rl.MeanActive)
	}
}

func TestLightLoadFavorsBigCores(t *testing.T) {
	// At low load (mostly 1-2 active jobs), 4B turns jobs around faster
	// than 20s — the paper's core argument.
	jobs := PoissonWorkload(10, 30e6, 15e6, 5)
	r4, err := Simulate(design(t, "4B", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	r20, err := Simulate(design(t, "20s", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	if r4.MeanTurnaroundNs >= r20.MeanTurnaroundNs {
		t.Fatalf("4B turnaround %.0f >= 20s %.0f at light load",
			r4.MeanTurnaroundNs, r20.MeanTurnaroundNs)
	}
}

func TestIdleGapsBurnOnlyUncore(t *testing.T) {
	// Two widely separated tiny jobs: energy over the long idle gap is the
	// uncore floor only (power gating).
	jobs := []Job{
		{Benchmark: "hmmer", ArrivalNs: 0, WorkUops: 1e6},
		{Benchmark: "hmmer", ArrivalNs: 100e6, WorkUops: 1e6},
	}
	res, err := Simulate(design(t, "4B", true), jobs, source())
	if err != nil {
		t.Fatal(err)
	}
	// Idle ~100 ms at 7 W = 0.7 J; the two short jobs add little.
	idleJ := power.UncoreWatts * 0.1
	if res.EnergyJoules < idleJ*0.9 || res.EnergyJoules > idleJ*1.6 {
		t.Fatalf("energy %.3f J, want near the %.2f J uncore floor", res.EnergyJoules, idleJ)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(design(t, "4B", true), nil, source()); err == nil {
		t.Fatal("empty job list accepted")
	}
	bad := []Job{{Benchmark: "", ArrivalNs: 0, WorkUops: 1}}
	if _, err := Simulate(design(t, "4B", true), bad, source()); err == nil {
		t.Fatal("invalid job accepted")
	}
}

func TestPoissonWorkloadShape(t *testing.T) {
	jobs := PoissonWorkload(400, 1e6, 10e6, 11)
	if len(jobs) != 400 {
		t.Fatalf("%d jobs", len(jobs))
	}
	var sum float64
	prev := 0.0
	for _, j := range jobs {
		if j.ArrivalNs < prev {
			t.Fatal("arrivals not sorted")
		}
		sum += j.ArrivalNs - prev
		prev = j.ArrivalNs
	}
	mean := sum / 400
	if math.Abs(mean-1e6)/1e6 > 0.2 {
		t.Fatalf("mean inter-arrival %.0f, want ~1e6", mean)
	}
	for _, j := range jobs {
		if j.WorkUops < 0.5*10e6 || j.WorkUops > 1.5*10e6 {
			t.Fatalf("work %g outside [0.5,1.5]x mean", j.WorkUops)
		}
	}
}

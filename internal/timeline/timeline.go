// Package timeline simulates dynamic multiprogramming: jobs arrive over
// time, run concurrently on a multi-core design, and depart when their work
// completes — so the active thread count varies the way the paper's
// motivation describes ("jobs come and go"). Between scheduling events the
// chip is in steady state and per-job progress rates come from the interval
// engine; at every arrival and completion the schedule is rebuilt and the
// rates re-solved.
//
// The simulation reports per-job turnaround, makespan, mean active thread
// count and energy (with power gating), allowing design points to be
// compared under genuinely time-varying parallelism rather than a static
// thread-count distribution.
package timeline

import (
	"fmt"
	"math"
	"sort"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/power"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// Job is one single-threaded program instance.
type Job struct {
	// Benchmark names the workload spec.
	Benchmark string
	// ArrivalNs is the arrival time.
	ArrivalNs float64
	// WorkUops is the job's total work.
	WorkUops float64
}

// Validate reports parameter errors.
func (j Job) Validate() error {
	if j.Benchmark == "" {
		return fmt.Errorf("timeline: job without benchmark")
	}
	if j.ArrivalNs < 0 || j.WorkUops <= 0 {
		return fmt.Errorf("timeline: job %s: arrival %g, work %g", j.Benchmark, j.ArrivalNs, j.WorkUops)
	}
	return nil
}

// JobResult records one job's fate.
type JobResult struct {
	Job
	// FinishNs is the completion time.
	FinishNs float64
	// TurnaroundNs = FinishNs - ArrivalNs.
	TurnaroundNs float64
}

// Result summarizes a timeline simulation.
type Result struct {
	Jobs []JobResult
	// MakespanNs is the completion time of the last job.
	MakespanNs float64
	// MeanActive is the time-averaged number of running jobs.
	MeanActive float64
	// EnergyJoules integrates gated chip power over the makespan.
	EnergyJoules float64
	// MeanTurnaroundNs averages the per-job turnaround times.
	MeanTurnaroundNs float64
}

// maxEvents bounds the event loop against pathological inputs.
const maxEvents = 1_000_000

// Simulate runs the jobs on the design. Jobs are admitted immediately on
// arrival (the scheduler time-shares when they outnumber hardware
// contexts).
func Simulate(d config.Design, jobs []Job, src sched.ProfileSource) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("timeline: no jobs")
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return Result{}, err
		}
	}
	pending := append([]Job(nil), jobs...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].ArrivalNs < pending[j].ArrivalNs })

	type active struct {
		job       Job
		remaining float64
	}
	var running []active
	var res Result
	now := 0.0
	var activeIntegral float64

	for events := 0; ; events++ {
		if events > maxEvents {
			return Result{}, fmt.Errorf("timeline: event limit exceeded")
		}
		// Admit arrivals at the current time.
		for len(pending) > 0 && pending[0].ArrivalNs <= now+1e-9 {
			running = append(running, active{job: pending[0], remaining: pending[0].WorkUops})
			pending = pending[1:]
		}
		if len(running) == 0 {
			if len(pending) == 0 {
				break
			}
			// Idle gap: jump to the next arrival; only uncore power burns.
			dt := pending[0].ArrivalNs - now
			res.EnergyJoules += power.UncoreWatts * dt * 1e-9
			now = pending[0].ArrivalNs
			continue
		}

		// Steady state for the current job set.
		progs := make([]string, len(running))
		for i, a := range running {
			progs[i] = a.job.Benchmark
		}
		placement, err := sched.Place(d, workload.Mix{ID: "timeline", Programs: progs}, src)
		if err != nil {
			return Result{}, err
		}
		solved, err := contention.Solve(placement)
		if err != nil {
			return Result{}, err
		}

		// Next event: first completion or next arrival.
		dt := math.Inf(1)
		for i, a := range running {
			rate := solved.Threads[i].UopsPerNs
			if rate <= 0 {
				return Result{}, fmt.Errorf("timeline: job %d has zero rate", i)
			}
			if t := a.remaining / rate; t < dt {
				dt = t
			}
		}
		if len(pending) > 0 {
			if t := pending[0].ArrivalNs - now; t < dt {
				dt = t
			}
		}

		// Integrate power and progress over dt.
		activeCores := make([]bool, d.NumCores())
		for _, c := range placement.CoreOf {
			activeCores[c] = true
		}
		watts, err := power.ChipWatts(power.ChipState{
			Design: d, CoreUtilization: solved.CoreUtilization,
			CoreActive: activeCores, Gating: true,
		})
		if err != nil {
			return Result{}, err
		}
		res.EnergyJoules += watts * dt * 1e-9
		activeIntegral += float64(len(running)) * dt
		now += dt

		// Apply progress; retire finished jobs.
		var still []active
		for i, a := range running {
			a.remaining -= solved.Threads[i].UopsPerNs * dt
			if a.remaining <= 1e-6 {
				res.Jobs = append(res.Jobs, JobResult{
					Job: a.job, FinishNs: now, TurnaroundNs: now - a.job.ArrivalNs,
				})
			} else {
				still = append(still, a)
			}
		}
		running = still
	}

	res.MakespanNs = now
	if now > 0 {
		res.MeanActive = activeIntegral / now
	}
	var sum float64
	for _, jr := range res.Jobs {
		sum += jr.TurnaroundNs
	}
	res.MeanTurnaroundNs = sum / float64(len(res.Jobs))
	return res, nil
}

// PoissonWorkload builds a deterministic pseudo-random job stream: n jobs
// with exponential inter-arrival times of the given mean, benchmarks drawn
// round-robin from the suite, and work uniform in [0.5, 1.5]×meanWork.
func PoissonWorkload(n int, meanInterArrivalNs, meanWorkUops float64, seed uint64) []Job {
	names := workload.Names()
	jobs := make([]Job, n)
	state := seed ^ 0x9E3779B97F4A7C15
	next := func() float64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	t := 0.0
	for i := range jobs {
		t += -meanInterArrivalNs * math.Log(1-next())
		jobs[i] = Job{
			Benchmark: names[i%len(names)],
			ArrivalNs: t,
			WorkUops:  meanWorkUops * (0.5 + next()),
		}
	}
	return jobs
}

package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.train(false)
	}
	if c != 0 {
		t.Fatalf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Fatalf("counter should saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Fatal("saturated counter should predict taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(10)
	const pc = 0x4000
	// Train an always-not-taken branch.
	for i := 0; i < 4; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal failed to learn not-taken bias")
	}
	// A different PC keeps its default.
	if !b.Predict(pc + 1<<14) {
		t.Skip("aliased") // different index expected; guard against aliasing
	}
}

func TestBimodalAccuracyOnBiasedStream(t *testing.T) {
	b := NewBimodal(12)
	rng := rand.New(rand.NewSource(1))
	// 64 static branches, each with a fixed direction.
	dirs := make([]bool, 64)
	for i := range dirs {
		dirs[i] = rng.Intn(2) == 0
	}
	var stats Stats
	for i := 0; i < 20000; i++ {
		slot := rng.Intn(64)
		pc := uint64(0x1000 + slot*4)
		pred := b.Predict(pc)
		taken := dirs[slot]
		stats.Lookups++
		if pred != taken {
			stats.Mispredicts++
		}
		b.Update(pc, taken)
	}
	if r := stats.MispredictRate(); r > 0.02 {
		t.Fatalf("bimodal mispredict rate %g on fully biased stream", r)
	}
}

func TestGshareLearnsHistoryPattern(t *testing.T) {
	// A single branch alternating T/N is unpredictable for bimodal but
	// trivial for gshare once history distinguishes the two contexts.
	g := NewGshare(12, 8)
	const pc = 0x2000
	taken := false
	mis := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.Predict(pc) != taken {
			mis++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if rate := float64(mis) / n; rate > 0.05 {
		t.Fatalf("gshare mispredict rate %g on alternating branch", rate)
	}
}

func TestGshareHistoryBounded(t *testing.T) {
	g := NewGshare(10, 4)
	for i := 0; i < 100; i++ {
		g.Update(0x100, true)
	}
	if g.history >= 1<<4 {
		t.Fatalf("history %b exceeds 4 bits", g.history)
	}
}

func TestAlwaysTaken(t *testing.T) {
	var p AlwaysTaken
	if !p.Predict(123) {
		t.Fatal("AlwaysTaken predicted not-taken")
	}
	p.Update(123, false) // must not panic
}

func TestOracle(t *testing.T) {
	o := &Oracle{}
	o.Next = true
	if !o.Predict(0) {
		t.Fatal("oracle ignored Next")
	}
	o.Next = false
	if o.Predict(0) {
		t.Fatal("oracle ignored Next=false")
	}
}

func TestStatsZero(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("zero stats should report rate 0")
	}
}

func TestBimodalEventuallyConsistentProperty(t *testing.T) {
	// Property: after 4 consistent updates, a bimodal entry predicts the
	// trained direction, for any PC.
	f := func(pc uint64, dir bool) bool {
		b := NewBimodal(12)
		for i := 0; i < 4; i++ {
			b.Update(pc, dir)
		}
		return b.Predict(pc) == dir
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBTBLearnsTargets(t *testing.T) {
	b := NewBTB(8)
	if b.Lookup(0x100, 0x500) {
		t.Fatal("cold BTB hit")
	}
	if !b.Lookup(0x100, 0x500) {
		t.Fatal("trained BTB missed")
	}
	// Target change is a miss, then learned.
	if b.Lookup(0x100, 0x600) {
		t.Fatal("stale target hit")
	}
	if !b.Lookup(0x100, 0x600) {
		t.Fatal("updated target missed")
	}
}

func TestBTBAliasing(t *testing.T) {
	b := NewBTB(4) // 16 entries: pc and pc+16*4 collide
	b.Lookup(0x100, 0x1)
	b.Lookup(0x100+16*4, 0x2) // evicts
	if b.Lookup(0x100, 0x1) {
		t.Fatal("evicted entry hit")
	}
	if b.Stats.Lookups != 3 || b.Stats.Mispredicts != 3 {
		t.Fatalf("stats %+v", b.Stats)
	}
}

// Package branch implements the branch direction predictors used by the
// core timing models: a bimodal table, a gshare predictor, and trivial
// static baselines. Predictors are per hardware thread context (the paper's
// SMT cores statically partition predictor state along with the ROB).
package branch

import "smtflex/internal/machstats"

// Predictor predicts conditional branch directions and learns from outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
}

// Stats tracks prediction accuracy.
type Stats struct {
	Lookups     uint64
	Mispredicts uint64
}

// MispredictRate returns mispredictions per lookup, or zero when idle.
func (s Stats) MispredictRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Lookups)
}

// Publish adds the stats to the machine-counter registry under scope (e.g.
// "branch" yields branch.lookups and branch.mispredicts). A no-op costing
// one atomic load while machstats is disabled.
func (s Stats) Publish(scope string) {
	if !machstats.Enabled() {
		return
	}
	machstats.Add(scope+".lookups", s.Lookups)
	machstats.Add(scope+".mispredicts", s.Mispredicts)
}

// counter is a 2-bit saturating counter; values 2..3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) train(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize entries, initialized
// weakly taken.
func NewBimodal(logSize uint) *Bimodal {
	n := 1 << logSize
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[(pc>>2)&b.mask].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := (pc >> 2) & b.mask
	b.table[i] = b.table[i].train(taken)
}

// Gshare XORs a global history register into the table index.
type Gshare struct {
	table   []counter
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare returns a gshare predictor with 2^logSize counters and histLen
// bits of global history.
func NewGshare(logSize, histLen uint) *Gshare {
	n := 1 << logSize
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(n - 1), histLen: histLen}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It trains the counter and shifts the outcome
// into the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// AlwaysTaken is the static baseline that predicts every branch taken.
type AlwaysTaken struct{}

// Predict implements Predictor.
func (AlwaysTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(uint64, bool) {}

// Oracle is a perfect predictor used to isolate branch effects in tests.
type Oracle struct {
	// Next is the outcome Predict will return; tests set it before each call.
	Next bool
}

// Predict implements Predictor.
func (o *Oracle) Predict(uint64) bool { return o.Next }

// Update implements Predictor.
func (o *Oracle) Update(uint64, bool) {}

// BTB is a direct-mapped branch target buffer. The core models use it for
// taken control transfers: a taken branch or jump whose target is absent
// costs a front-end bubble even when the direction was predicted correctly
// (the fetch unit cannot redirect until the target is computed).
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
	// Stats is exported accumulated activity.
	Stats Stats
}

// NewBTB returns a BTB with 2^logSize entries.
func NewBTB(logSize uint) *BTB {
	n := 1 << logSize
	return &BTB{tags: make([]uint64, n), targets: make([]uint64, n), mask: uint64(n - 1)}
}

// Lookup reports whether the BTB holds the correct target for the control
// transfer at pc, then installs/updates the entry. A miss (absent entry or
// stale target) means the front end must wait for the target computation.
func (b *BTB) Lookup(pc, target uint64) bool {
	i := (pc >> 2) & b.mask
	b.Stats.Lookups++
	hit := b.tags[i] == pc && b.targets[i] == target
	if !hit {
		b.Stats.Mispredicts++
		b.tags[i] = pc
		b.targets[i] = target
	}
	return hit
}

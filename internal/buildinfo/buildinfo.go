// Package buildinfo surfaces the binary's own build metadata — Go toolchain
// version, VCS revision, module version — read once from the runtime's
// embedded build information. It backs every binary's -version flag and the
// daemon's smtflexd_build_info metric.
package buildinfo

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info is the subset of build metadata the project reports.
type Info struct {
	GoVersion string // toolchain that built the binary
	Revision  string // VCS revision, possibly suffixed "+dirty"
	Module    string // main module path
	Version   string // main module version ("(devel)" for source builds)
}

var (
	once   sync.Once
	cached Info
)

// Get reads the embedded build information once and caches it. Binaries
// built without module support report "unknown" fields rather than failing.
func Get() Info {
	once.Do(func() {
		cached = Info{GoVersion: "unknown", Revision: "unknown", Module: "unknown", Version: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		cached.GoVersion = bi.GoVersion
		if bi.Main.Path != "" {
			cached.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			cached.Version = bi.Main.Version
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			cached.Revision = rev + dirty
		}
	})
	return cached
}

// String renders the info as the one-line output of -version.
func (i Info) String() string {
	return fmt.Sprintf("%s %s (revision %s, %s)", i.Module, i.Version, i.Revision, i.GoVersion)
}

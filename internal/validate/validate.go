// Package validate cross-checks the two simulation engines: it runs the same
// workload through the detailed cycle engine and the interval engine and
// reports the prediction error. The interval model is calibrated from
// single-thread cycle-engine runs, so single-thread agreement is close to
// exact by construction; the interesting validation is multi-thread and SMT
// behaviour, where the interval engine extrapolates.
//
// The original study used Sniper, itself validated against hardware; here
// the cycle engine plays the role of the reference.
package validate

import (
	"fmt"
	"math"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/cpu"
	"smtflex/internal/multicore"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// Comparison is the outcome of one cross-engine run.
type Comparison struct {
	// Design and Mix identify the experiment.
	Design string
	Mix    []string
	// CycleIPC and IntervalIPC are per-thread µops per (core) cycle.
	CycleIPC    []float64
	IntervalIPC []float64
}

// MeanAbsRelError returns the mean absolute relative error of the interval
// prediction versus the cycle reference.
func (c Comparison) MeanAbsRelError() float64 {
	if len(c.CycleIPC) == 0 {
		return 0
	}
	var sum float64
	for i := range c.CycleIPC {
		sum += math.Abs(c.IntervalIPC[i]-c.CycleIPC[i]) / c.CycleIPC[i]
	}
	return sum / float64(len(c.CycleIPC))
}

// ThroughputRelError compares total chip throughput between the engines.
func (c Comparison) ThroughputRelError() float64 {
	var cy, iv float64
	for i := range c.CycleIPC {
		cy += c.CycleIPC[i]
		iv += c.IntervalIPC[i]
	}
	if cy == 0 {
		return 0
	}
	return (iv - cy) / cy
}

// Source supplies profiles for the interval side; package profiler
// implements it.
type Source = sched.ProfileSource

// Run executes the mix on the named design with both engines. The cycle
// engine runs warmupUops of warmup plus measureUops of measurement per
// thread; thread placement follows the same scheduling policy on both sides.
func Run(src Source, designName string, smt bool, programs []string, warmupUops, measureUops uint64) (Comparison, error) {
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		return Comparison{}, err
	}
	mix := workload.Mix{ID: "validate", Programs: programs}
	placement, err := sched.Place(d, mix, src)
	if err != nil {
		return Comparison{}, err
	}

	cmp := Comparison{Design: designName, Mix: programs}

	// Interval engine.
	solved, err := contention.Solve(placement)
	if err != nil {
		return Comparison{}, err
	}
	for i := range programs {
		// Express as per-core-cycle IPC on the thread's core.
		cc := d.Cores[placement.CoreOf[i]]
		cmp.IntervalIPC = append(cmp.IntervalIPC, solved.Threads[i].UopsPerNs/cc.FrequencyGHz)
	}

	// Cycle engine, same placement.
	chip, err := multicore.New(d, cpu.Ideal{})
	if err != nil {
		return Comparison{}, err
	}
	readers, err := mix.Readers(0x5EED)
	if err != nil {
		return Comparison{}, err
	}
	ids := make([]int, len(readers))
	for i, r := range readers {
		id, err := chip.AttachThread(placement.CoreOf[i], r)
		if err != nil {
			return Comparison{}, fmt.Errorf("validate: %w", err)
		}
		ids[i] = id
	}
	chip.Run(warmupUops)
	warm := make([]cpu.ThreadStats, len(ids))
	for i, id := range ids {
		warm[i] = chip.ThreadStats(id)
	}
	chip.Run(warmupUops + measureUops)
	for i, id := range ids {
		fin := chip.ThreadStats(id)
		duops := float64(fin.Uops - warm[i].Uops)
		dt := fin.FinishTime - warm[i].FinishTime
		cmp.CycleIPC = append(cmp.CycleIPC, duops/dt)
	}
	return cmp, nil
}

package validate

import (
	"math"
	"testing"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/cpu"
	"smtflex/internal/multicore"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// TestCounterConservationNineDesigns pins the conservation invariant across
// the paper's whole power-equivalent design space: on every one of the nine
// design points, the cycle engine's per-thread stall attribution
// (cpu.ThreadStats.Stack) must sum to the thread's total CPI within 1e-9,
// and the interval engine's CPIStack components must reproduce Total()
// exactly (same additions, same order — no float slack needed).
func TestCounterConservationNineDesigns(t *testing.T) {
	progs := []string{"tonto", "gcc"}
	for _, d := range config.NineDesigns(true) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mix := workload.Mix{ID: "conserve", Programs: progs}

			// Cycle engine: a short real run, then component-sum vs CPI.
			chip, err := multicore.New(d, cpu.Ideal{})
			if err != nil {
				t.Fatal(err)
			}
			readers, err := mix.Readers(7)
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]int, len(readers))
			for i, r := range readers {
				id, err := chip.AttachThread(i%d.NumCores(), r)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			chip.Run(2000)
			for i, id := range ids {
				st := chip.ThreadStats(id)
				if st.Uops == 0 {
					t.Fatalf("thread %d retired nothing", i)
				}
				var sum float64
				for _, c := range st.Stack() {
					sum += c.CPI
				}
				if diff := math.Abs(sum - st.CPI()); diff > 1e-9 {
					t.Errorf("thread %d (%s): cycle stack sums to %.12f, CPI %.12f (|Δ|=%.3g)",
						i, progs[i], sum, st.CPI(), diff)
				}
			}

			// Interval engine: solve the same mix under the design's placement
			// and check each thread's stack against its own total.
			placement, err := sched.Place(d, mix, source())
			if err != nil {
				t.Fatal(err)
			}
			solved, err := contention.Solve(placement)
			if err != nil {
				t.Fatal(err)
			}
			for i, th := range solved.Threads {
				var sum float64
				for _, c := range th.Stack.Components() {
					sum += c.CPI
				}
				if sum != th.Stack.Total() {
					t.Errorf("thread %d (%s): interval components sum to %v, Total() %v",
						i, progs[i], sum, th.Stack.Total())
				}
				if th.Stack.Total() <= 0 {
					t.Errorf("thread %d (%s): non-positive interval CPI %v", i, progs[i], th.Stack.Total())
				}
			}
		})
	}
}

package validate

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"smtflex/internal/config"
	"smtflex/internal/contention"
	"smtflex/internal/cpu"
	"smtflex/internal/machstats"
	"smtflex/internal/multicore"
	"smtflex/internal/sched"
	"smtflex/internal/workload"
)

// DefaultTolerance is the per-component relative-delta bound CrossCheck uses
// when the caller passes zero. Component deltas are normalized by the cycle
// engine's total CPI, so the bound reads as "no component may misattribute
// more than this fraction of the thread's cycles".
const DefaultTolerance = 0.25

// ComponentDelta compares one CPI-stack component between the engines.
type ComponentDelta struct {
	// Component is the canonical component name (machstats vocabulary), or
	// "total" for the whole-stack row.
	Component string
	// CycleCPI and IntervalCPI are the component's cycles per µop under each
	// engine. The cycle engine's four-way attribution is compared against the
	// interval engine's six-way stack with L2+LLC+Mem folded into "mem".
	CycleCPI    float64
	IntervalCPI float64
	// RelDelta is |CycleCPI−IntervalCPI| normalized by the cycle engine's
	// total CPI — the fraction of the thread's cycles the engines disagree
	// on for this component.
	RelDelta float64
}

// ThreadCrossCheck is one thread's component-by-component comparison.
type ThreadCrossCheck struct {
	// Thread is the chip-wide thread id, Program its benchmark, Core its
	// placement.
	Thread  int
	Program string
	Core    int
	// Deltas holds base, branch, icache, mem and total rows, in that order.
	Deltas []ComponentDelta
}

// CrossCheck is a component-resolved cross-validation of the interval engine
// against the cycle engine on one (design, mix) point.
type CrossCheck struct {
	// Design and Mix identify the experiment.
	Design string
	Mix    []string
	// Tolerance is the per-component RelDelta bound violations are judged by.
	Tolerance float64
	// Threads holds the per-thread comparisons.
	Threads []ThreadCrossCheck
}

// cycleCPIs runs the mix once on the design with the given idealization and
// returns each thread's windowed CPI (measureUops after warmupUops of
// warmup). The last (fully real) level additionally publishes the chip's
// machine counters.
func cycleCPIs(d config.Design, placement contention.Placement, mix workload.Mix, ideal cpu.Ideal, warmupUops, measureUops uint64, publish []string) ([]float64, error) {
	chip, err := multicore.New(d, ideal)
	if err != nil {
		return nil, err
	}
	readers, err := mix.Readers(0x5EED)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(readers))
	for i, r := range readers {
		id, err := chip.AttachThread(placement.CoreOf[i], r)
		if err != nil {
			return nil, fmt.Errorf("validate: %w", err)
		}
		ids[i] = id
	}
	chip.Run(warmupUops)
	warm := make([]cpu.ThreadStats, len(ids))
	for i, id := range ids {
		warm[i] = chip.ThreadStats(id)
	}
	chip.Run(warmupUops + measureUops)
	if publish != nil {
		chip.PublishMachStats(publish)
	}
	cpis := make([]float64, len(ids))
	for i, id := range ids {
		fin := chip.ThreadStats(id)
		duops := float64(fin.Uops - warm[i].Uops)
		if duops > 0 {
			cpis[i] = (fin.FinishTime - warm[i].FinishTime) / duops
		}
	}
	return cpis, nil
}

// RunCrossCheck executes the mix on the named design with both engines under
// the same placement and compares their CPI stacks component by component.
//
// The cycle engine's stack is decomposed by successive idealization — the
// same methodology the profiler calibrates the interval model with: four
// co-simulations at increasing realism (all-ideal, real branches, real
// I-cache, fully real), with each component the windowed-CPI difference
// between adjacent levels. The components therefore sum to the real run's
// total CPI exactly, and each is defined identically to its interval-model
// counterpart. The single-run stall attributions (cpu.ThreadStats.Stack) are
// NOT used here: attributed stalls overlap, which makes their residual base
// component meaningless for comparison.
//
// The cycle engine runs warmupUops of warmup plus measureUops of measurement
// per thread at each level; tolerance zero selects DefaultTolerance. When
// machstats is armed, both engines' stacks land in the registry (engines
// "cycle" and "interval"), so -machstats exports carry the raw stacks behind
// the deltas.
func RunCrossCheck(src Source, designName string, smt bool, programs []string, warmupUops, measureUops uint64, tolerance float64) (*CrossCheck, error) {
	if tolerance <= 0 {
		tolerance = DefaultTolerance
	}
	d, err := config.DesignByName(designName, smt)
	if err != nil {
		return nil, err
	}
	mix := workload.Mix{ID: "xcheck", Programs: programs}
	placement, err := sched.Place(d, mix, src)
	if err != nil {
		return nil, err
	}

	// Interval engine.
	solved, err := contention.Solve(placement)
	if err != nil {
		return nil, err
	}

	// Cycle engine: successive idealization under the same placement.
	levels := []cpu.Ideal{
		{Branch: true, ICache: true, DCache: true}, // base
		{ICache: true, DCache: true},               // + real branches
		{DCache: true},                             // + real I-cache
		{},                                         // + real data hierarchy
	}
	cpis := make([][]float64, len(levels))
	for li, ideal := range levels {
		var publish []string
		if li == len(levels)-1 {
			publish = programs
		}
		cpis[li], err = cycleCPIs(d, placement, mix, ideal, warmupUops, measureUops, publish)
		if err != nil {
			return nil, err
		}
	}

	ck := &CrossCheck{Design: designName, Mix: programs, Tolerance: tolerance}
	for i := range programs {
		cyBase := cpis[0][i]
		cyBranch := cpis[1][i] - cpis[0][i]
		cyICache := cpis[2][i] - cpis[1][i]
		cyMem := cpis[3][i] - cpis[2][i]
		cyTotal := cpis[3][i]
		iv := solved.Threads[i].Stack
		ivMem := iv.L2 + iv.LLC + iv.Mem
		tc := ThreadCrossCheck{Thread: i, Program: programs[i], Core: placement.CoreOf[i]}
		rows := []struct {
			name   string
			cy, in float64
		}{
			{machstats.CompBase, cyBase, iv.Base},
			{machstats.CompBranch, cyBranch, iv.Branch},
			{machstats.CompICache, cyICache, iv.ICache},
			{machstats.CompMem, cyMem, ivMem},
			{"total", cyTotal, iv.Total()},
		}
		for _, r := range rows {
			delta := ComponentDelta{Component: r.name, CycleCPI: r.cy, IntervalCPI: r.in}
			if cyTotal > 0 {
				delta.RelDelta = math.Abs(r.cy-r.in) / cyTotal
			}
			tc.Deltas = append(tc.Deltas, delta)
		}
		ck.Threads = append(ck.Threads, tc)
	}
	return ck, nil
}

// Failures lists every component delta exceeding the tolerance, one line per
// violation. An empty result means the check passed.
func (c *CrossCheck) Failures() []string {
	var out []string
	for _, tc := range c.Threads {
		for _, d := range tc.Deltas {
			if d.RelDelta > c.Tolerance {
				out = append(out, fmt.Sprintf(
					"thread %d (%s, core %d): %s cycle=%.4f interval=%.4f |Δ|/total=%.1f%% > %.1f%%",
					tc.Thread, tc.Program, tc.Core, d.Component,
					d.CycleCPI, d.IntervalCPI, 100*d.RelDelta, 100*c.Tolerance))
			}
		}
	}
	return out
}

// OK reports whether every component delta is within tolerance.
func (c *CrossCheck) OK() bool { return len(c.Failures()) == 0 }

// Render formats the cross-check as an aligned text table: one row per
// (thread, component) with both engines' CPI contributions, the normalized
// delta, and a pass/FAIL verdict against the tolerance.
func (c *CrossCheck) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross-check %s mix=%v tolerance=%.1f%%\n",
		c.Design, c.Mix, 100*c.Tolerance)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "thr\tprogram\tcore\tcomponent\tcycle\tinterval\t|Δ|/total\tverdict")
	for _, tc := range c.Threads {
		for _, d := range tc.Deltas {
			verdict := "ok"
			if d.RelDelta > c.Tolerance {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%.4f\t%.4f\t%.1f%%\t%s\n",
				tc.Thread, tc.Program, tc.Core, d.Component,
				d.CycleCPI, d.IntervalCPI, 100*d.RelDelta, verdict)
		}
	}
	w.Flush()
	if fails := c.Failures(); len(fails) > 0 {
		fmt.Fprintf(&b, "FAIL: %d component delta(s) exceed tolerance\n", len(fails))
	} else {
		fmt.Fprintf(&b, "PASS: all component deltas within tolerance\n")
	}
	return b.String()
}

package validate

import (
	"math"
	"strings"
	"testing"
)

func mustCrossCheck(t *testing.T, design string, smt bool, programs []string, tol float64) *CrossCheck {
	t.Helper()
	s := source()
	ck, err := RunCrossCheck(s, design, smt, programs, s.Warmup, s.UopCount, tol)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestCrossCheckSingleThreadAgreement pins the calibration contract at
// component granularity: solo runs sit at the interval model's calibration
// point, so every CPI-stack component must agree with the cycle engine to
// within a few percent of total CPI (see EXPERIMENTS.md for the tolerance
// rationale).
func TestCrossCheckSingleThreadAgreement(t *testing.T) {
	for _, tc := range []struct {
		design string
		bench  string
	}{
		{"4B", "tonto"},
		{"4B", "hmmer"},
		{"20s", "gcc"},
	} {
		ck := mustCrossCheck(t, tc.design, true, []string{tc.bench}, 0.10)
		if !ck.OK() {
			t.Errorf("%s solo on %s: component deltas exceed 10%%:\n%s",
				tc.bench, tc.design, strings.Join(ck.Failures(), "\n"))
		}
	}
}

// TestCrossCheckConservation checks that both engines' reported components
// sum to their reported totals: the cycle side by construction of successive
// idealization, the interval side by the stack's definition. Float rounding
// is the only slack.
func TestCrossCheckConservation(t *testing.T) {
	ck := mustCrossCheck(t, "4B", true, []string{"tonto", "hmmer"}, 0)
	for _, th := range ck.Threads {
		var cySum, ivSum float64
		var cyTotal, ivTotal float64
		for _, d := range th.Deltas {
			if d.Component == "total" {
				cyTotal, ivTotal = d.CycleCPI, d.IntervalCPI
				continue
			}
			cySum += d.CycleCPI
			ivSum += d.IntervalCPI
		}
		if math.Abs(cySum-cyTotal) > 1e-9 {
			t.Errorf("thread %d: cycle components sum to %.12f, total %.12f", th.Thread, cySum, cyTotal)
		}
		if math.Abs(ivSum-ivTotal) > 1e-9 {
			t.Errorf("thread %d: interval components sum to %.12f, total %.12f", th.Thread, ivSum, ivTotal)
		}
	}
}

// TestCrossCheckToleranceAndRender checks the verdict machinery: a zero
// tolerance selects the default, an absurdly tight tolerance flags
// violations with a non-empty failure list, and Render carries the verdict.
func TestCrossCheckToleranceAndRender(t *testing.T) {
	ck := mustCrossCheck(t, "4B", true, []string{"tonto"}, 0)
	if ck.Tolerance != DefaultTolerance {
		t.Errorf("zero tolerance resolved to %g, want %g", ck.Tolerance, DefaultTolerance)
	}
	if len(ck.Threads) != 1 || len(ck.Threads[0].Deltas) != 5 {
		t.Fatalf("unexpected shape: %+v", ck)
	}
	out := ck.Render()
	for _, want := range []string{"cross-check 4B", "component", "base", "branch", "icache", "mem", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if ck.OK() && !strings.Contains(out, "PASS") {
		t.Errorf("passing check renders no PASS verdict:\n%s", out)
	}

	tight := mustCrossCheck(t, "4B", true, []string{"tonto"}, 1e-12)
	if tight.OK() {
		t.Fatal("1e-12 tolerance reported no violations")
	}
	if got := tight.Render(); !strings.Contains(got, "FAIL") {
		t.Errorf("failing check renders no FAIL verdict:\n%s", got)
	}
}

// TestCrossCheckErrors covers the error paths.
func TestCrossCheckErrors(t *testing.T) {
	if _, err := RunCrossCheck(source(), "9B", true, []string{"tonto"}, 1000, 1000, 0); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := RunCrossCheck(source(), "4B", true, []string{"nope"}, 1000, 1000, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

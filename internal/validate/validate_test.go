package validate

import (
	"math"
	"sync"
	"testing"

	"smtflex/internal/profiler"
)

var (
	srcOnce sync.Once
	src     *profiler.Source
)

func source() *profiler.Source {
	srcOnce.Do(func() { src = profiler.NewSource(100_000) })
	return src
}

func mustRun(t *testing.T, design string, smt bool, programs []string) Comparison {
	t.Helper()
	// Match the profiler's calibration window exactly: the benchmarks'
	// multi-megabyte streams warm over millions of µops, so agreement is
	// defined at equal warmup, not at (unreachable) absolute steady state.
	s := source()
	cmp, err := Run(s, design, smt, programs, s.Warmup, s.UopCount)
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}

func TestSingleThreadAgreement(t *testing.T) {
	// Single-thread runs are close to the calibration point: tight bound.
	for _, bench := range []string{"tonto", "hmmer", "bzip2", "libquantum"} {
		cmp := mustRun(t, "4B", true, []string{bench})
		if e := cmp.MeanAbsRelError(); e > 0.20 {
			t.Errorf("%s solo on 4B: interval vs cycle error %.1f%%", bench, 100*e)
		}
	}
}

func TestSingleThreadSmallCore(t *testing.T) {
	for _, bench := range []string{"gcc", "calculix"} {
		cmp := mustRun(t, "20s", true, []string{bench})
		if e := cmp.MeanAbsRelError(); e > 0.25 {
			t.Errorf("%s solo on 20s: error %.1f%%", bench, 100*e)
		}
	}
}

func TestMultiProgramThroughput(t *testing.T) {
	// Four distinct programs, one per big core: the extrapolated chip
	// throughput must stay within a modest band of the cycle engine.
	cmp := mustRun(t, "4B", true, []string{"tonto", "hmmer", "gobmk", "bzip2"})
	if e := math.Abs(cmp.ThroughputRelError()); e > 0.30 {
		t.Errorf("4-program 4B throughput error %.1f%%", 100*e)
	}
}

func TestSMTExtrapolation(t *testing.T) {
	// Two SMT threads per core (8 on 4B): the interval engine extrapolates
	// ROB partitioning, width and cache sharing. Accept a wider band: the
	// published interval models report 5-15% per-thread error; shared-cache
	// LRU dynamics push co-scheduled synthetic workloads somewhat higher.
	cmp := mustRun(t, "4B", true, []string{
		"tonto", "tonto", "hmmer", "hmmer", "bzip2", "bzip2", "gobmk", "gobmk"})
	if e := math.Abs(cmp.ThroughputRelError()); e > 0.40 {
		t.Errorf("8-thread SMT 4B throughput error %.1f%%", 100*e)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(source(), "9B", true, []string{"tonto"}, 1000, 1000); err == nil {
		t.Fatal("unknown design accepted")
	}
	if _, err := Run(source(), "4B", true, []string{"nope"}, 1000, 1000); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestComparisonMath(t *testing.T) {
	cmp := Comparison{CycleIPC: []float64{1, 2}, IntervalIPC: []float64{1.1, 1.8}}
	if e := cmp.MeanAbsRelError(); math.Abs(e-0.1) > 1e-9 {
		t.Fatalf("mean abs rel error %g, want 0.1", e)
	}
	if e := cmp.ThroughputRelError(); math.Abs(e-(-0.1/3)) > 1e-9 {
		t.Fatalf("throughput error %g", e)
	}
	var empty Comparison
	if empty.MeanAbsRelError() != 0 || empty.ThroughputRelError() != 0 {
		t.Fatal("empty comparison should be zero")
	}
}
